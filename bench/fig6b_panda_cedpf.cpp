/// Regenerates Fig. 6b: the cost-EXPECTED-damage Pareto front of the
/// panda IoT AT (probabilistic setting, Thm 9).

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/panda.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "util/timer.hpp"

using namespace atcd;

int main() {
  bench::print_header(
      "Fig. 6b — cost-expected-damage Pareto front of the panda IoT AT",
      "paper Sec. X-A, Fig. 6b");
  const auto m = casestudies::make_panda();

  Timer t;
  const auto f = cedpf_bottom_up(m);
  const double secs = t.seconds();

  std::printf("\n%-4s %6s %10s  %s\n", "A", "cost", "E[damage]", "attack");
  int k = 0;
  for (const auto& p : f) {
    if (p.value.cost == 0) continue;
    std::printf("A%-3d %6g %10.4g  %s\n", ++k, p.value.cost, p.value.damage,
                attack_to_string(m.tree, p.witness).c_str());
  }

  const auto det = cdpf_bottom_up(m.deterministic());
  std::printf("\nfront sizes: probabilistic %zu vs deterministic %zu — "
              "redundant OR children buy activation probability "
              "(paper: 31 vs 9 on its exact tree; Example 10)\n",
              f.size(), det.size());
  std::printf("paper Fig. 6b head: A1 (3,18.0) A2 (7,27.6) A3 (11,30.8) "
              "A4 (13,37.0) A5 (16,39.8)\n");
  std::printf("b18 (internal leakage) is part of every optimal attack: ");
  const auto b18 = m.tree.bas_index(*m.tree.find("b18_internal_leakage"));
  bool all = true;
  for (std::size_t i = 1; i < f.size(); ++i) all &= f[i].witness.test(b18);
  std::printf("%s\n", all ? "confirmed" : "NOT CONFIRMED");
  std::printf("bottom-up time: %.4fs (paper: 0.047s; enumeration 49h)\n",
              secs);
  return 0;
}
