/// Ablation A2 — the min_U budget pruning of Thm 3.
///
/// DgC can be answered (a) by computing the complete Pareto front and
/// querying it (eq. (1)), or (b) by discarding over-budget attacks at
/// every node during the sweep (Thm 3).  The paper notes (b) "improves on
/// the efficiency of CDPF in practice".  This bench measures the front
/// sizes and times of both on the panda AT and on random trees, across
/// budgets.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/panda.hpp"
#include "core/bottom_up.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

int main() {
  print_header("Ablation A2 — DgC with vs without min_U budget pruning",
               "paper Sec. VI-B, Thm 3");
  const auto panda = casestudies::make_panda().deterministic();

  std::printf("\npanda AT (|B| = 22), DgC per budget:\n");
  std::printf("%8s %14s %14s %10s\n", "budget", "pruned (s)", "full+query (s)",
              "speedup");
  for (double budget : {3.0, 7.0, 13.0, 22.0, 30.0, 60.0}) {
    const double t_pruned =
        time_once([&] { (void)dgc_bottom_up(panda, budget); });
    double damage_full = 0;
    const double t_full = time_once([&] {
      const auto f = cdpf_bottom_up(panda);
      damage_full = f.max_damage_within_cost(budget)->value.damage;
    });
    // Same answers, different work.
    const double damage_pruned = dgc_bottom_up(panda, budget).damage;
    std::printf("%8g %13.5fs %13.5fs %9.2fx%s\n", budget, t_pruned, t_full,
                t_full / std::max(1e-9, t_pruned),
                damage_pruned == damage_full ? "" : "  MISMATCH");
  }

  std::printf("\nrandom treelike models (|B| = 16), tight budget "
              "(20%% of total cost):\n");
  Rng rng(2718);
  double sum_pruned = 0, sum_full = 0;
  const int trials = 50;
  for (int it = 0; it < trials; ++it) {
    AttackTree t;
    {
      std::vector<NodeId> open;
      for (int i = 0; i < 16; ++i)
        open.push_back(t.add_bas("b" + std::to_string(i)));
      int g = 0;
      while (open.size() > 1) {
        std::vector<NodeId> cs;
        const std::size_t arity = std::min<std::size_t>(open.size(), 2);
        for (std::size_t i = 0; i < arity; ++i) {
          const std::size_t pick = rng.below(open.size());
          cs.push_back(open[pick]);
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        open.push_back(t.add_gate(
            rng.chance(0.5) ? NodeType::OR : NodeType::AND,
            "g" + std::to_string(g++), cs));
      }
      t.set_root(open[0]);
      t.finalize();
    }
    const auto m = randomize_decorations(t, rng).deterministic();
    double total = 0;
    for (double c : m.cost) total += c;
    const double budget = 0.2 * total;
    sum_pruned += time_once([&] { (void)dgc_bottom_up(m, budget); });
    sum_full += time_once([&] {
      (void)cdpf_bottom_up(m).max_damage_within_cost(budget);
    });
  }
  std::printf("mean over %d models: pruned %.5fs vs full %.5fs "
              "(%.2fx)\n", trials, sum_pruned / trials, sum_full / trials,
              sum_full / std::max(1e-9, sum_pruned));
  std::printf("\nconclusion: budget pruning never changes the answer and "
              "pays off most when the budget is small relative to the "
              "model's total cost.\n");
  return 0;
}
