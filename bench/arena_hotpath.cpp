/// arena_hotpath — quantifies the arena/SoA hot-path win: the same
/// bottom-up sweep (identical results, byte for byte) run twice per
/// model, once through the default arena stack machine
/// (bottom_up_arena.cpp) and once through the recursive pointer-chasing
/// sweep over AoS fronts (BottomUpOptions::pointer_path).
///
/// Models are complete binary AND/OR trees with paper-range random
/// decorations, the same family the incremental bench uses, in both
/// budget classes:
///
///   * dgc(U=15): budget-pruned sweep — per-node fronts stay small, so
///     the traversal/allocation machinery dominates and the arena win is
///     largest.  The headline gate lives here: depth >= 12 solves must
///     be >= 2x faster than the pointer path.
///   * cdpf: unbudgeted full fronts — the cross-product/prune kernels
///     dominate; reported to show the win in the compute-bound regime.
///
/// Every timed pair is checked for byte-identical fronts; a bench that
/// drifts from correctness is measuring nothing.
///
/// Usage: bench_arena_hotpath [--rounds N] [--smoke | --full]
///                            [--json <path>]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "util/rng.hpp"

using namespace atcd;

namespace {

/// Complete binary tree of the given depth, alternating OR/AND levels,
/// with Sec. X random decorations (same family as bench_incremental_edits).
CdAt complete_binary_model(Rng& rng, int depth) {
  AttackTree t;
  std::vector<NodeId> level;
  const std::size_t n_leaves = std::size_t{1} << depth;
  for (std::size_t i = 0; i < n_leaves; ++i)
    level.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  for (int d = depth; d > 0; --d) {
    const NodeType type = d % 2 ? NodeType::OR : NodeType::AND;
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(t.add_gate(type, "g" + std::to_string(g++),
                                {level[i], level[i + 1]}));
    level = std::move(next);
  }
  t.set_root(level[0]);
  t.finalize();
  return randomize_decorations(t, rng).deterministic();
}

bool same_front(const std::vector<AttrTriple>& a,
                const std::vector<AttrTriple>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].t != b[i].t || a[i].witness != b[i].witness) return false;
  return true;
}

struct Case {
  double budget;
  const char* label;
  std::vector<int> depths;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool full = bench::has_flag(argc, argv, "--full");
  std::size_t rounds = full ? 9 : (smoke ? 2 : 5);
  if (const std::string v = bench::flag_value(argc, argv, "--rounds");
      !v.empty())
    rounds = std::strtoull(v.c_str(), nullptr, 10);

  // The gate depth stays in every mode — a smoke run that skips the gate
  // would let nightly CI go green on a regressed hot path.
  std::vector<Case> cases;
  if (smoke) {
    cases = {{15.0, "dgc(U=15)", {8, 12}}, {kNoBudget, "cdpf", {8}}};
  } else if (full) {
    cases = {{15.0, "dgc(U=15)", {8, 10, 12, 14}},
             {kNoBudget, "cdpf", {6, 8, 10}}};
  } else {
    cases = {{15.0, "dgc(U=15)", {8, 10, 12}}, {kNoBudget, "cdpf", {6, 8, 10}}};
  }

  std::printf(
      "arena_hotpath: arena/SoA stack machine vs recursive pointer sweep\n"
      "(complete binary trees, %zu rounds per point; times are mean "
      "microseconds per solve)\n\n",
      rounds);

  bench::JsonReport report("arena_hotpath");
  bool gate_seen = false;
  bool gate_ok = true;

  for (const Case& c : cases) {
    std::printf("%-10s %6s %8s %14s %14s %9s\n", c.label, "depth", "nodes",
                "pointer(us)", "arena(us)", "speedup");
    for (const int depth : c.depths) {
      Rng rng(0xA7E7Aull * 131 + static_cast<std::uint64_t>(depth));
      const CdAt m = complete_binary_model(rng, depth);
      const std::vector<double> prob(m.cost.size(), 1.0);

      detail::BottomUpOptions arena_opt;
      arena_opt.budget = c.budget;
      detail::BottomUpOptions pointer_opt = arena_opt;
      pointer_opt.pointer_path = true;

      // One untimed warm-up pair, also the equivalence check.
      const auto ref = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                    prob, pointer_opt);
      const auto got = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                    prob, arena_opt);
      if (!same_front(ref, got)) {
        std::fprintf(stderr, "MISMATCH: arena front != pointer front "
                             "(%s depth %d)\n",
                     c.label, depth);
        return 1;
      }

      std::vector<double> pointer_rounds_s, arena_rounds_s;
      for (std::size_t round = 0; round < rounds; ++round) {
        std::vector<AttrTriple> out;
        pointer_rounds_s.push_back(bench::time_once([&] {
          out = detail::bottom_up_root_front(m.tree, m.cost, m.damage, prob,
                                             pointer_opt);
        }));
        arena_rounds_s.push_back(bench::time_once([&] {
          out = detail::bottom_up_root_front(m.tree, m.cost, m.damage, prob,
                                             arena_opt);
        }));
      }
      const bench::Stats pointer_stats = bench::stats_of(pointer_rounds_s);
      const bench::Stats arena_stats = bench::stats_of(arena_rounds_s);
      const double pointer_us = pointer_stats.mean * 1e6;
      const double arena_us = arena_stats.mean * 1e6;
      // Median-over-median: robust to a scheduling hiccup poisoning one
      // round (a mean-based ratio flips by whole multiples on smoke
      // round counts).
      const double speedup = bench::median_of(pointer_rounds_s) /
                             bench::median_of(arena_rounds_s);
      std::printf("%-10s %6d %8zu %14.1f %14.1f %8.2fx\n", "", depth,
                  m.tree.node_count(), pointer_us, arena_us, speedup);
      report.add(std::string(c.label) + "/depth" + std::to_string(depth),
                 {{"nodes", double(m.tree.node_count())},
                  {"pointer_us", pointer_us},
                  {"arena_us", arena_us},
                  {"speedup", speedup},
                  {"p50_us", arena_stats.p50_us},
                  {"p95_us", arena_stats.p95_us},
                  {"p99_us", arena_stats.p99_us}});
      if (c.budget != kNoBudget && depth >= 12) {
        gate_seen = true;
        if (speedup < 2.0) gate_ok = false;
      }
    }
    std::printf("\n");
  }

  const bool pass = gate_seen && gate_ok;
  std::printf(
      "gate: arena sweep >= 2x over the pointer sweep on depth-12+ budgeted "
      "tree solves: %s\n",
      pass ? "PASS" : "FAIL");
  report.write(bench::flag_value(argc, argv, "--json"));
  return pass ? 0 : 1;
}
