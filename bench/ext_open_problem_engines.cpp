/// Extension bench — the paper's open problem (probabilistic DAG-like
/// ATs), solved two ways:
///
///   * the BDD engine (bdd/at_bdd.hpp): cost depends on the whole
///     structure function's BDD size;
///   * the polynomial-ring engine (poly/poly_engine.hpp) — the approach
///     the paper's conclusion sketches: formal variables only for BASs
///     on multiple root paths.
///
/// Both are exact (cross-validated in tests); this bench compares their
/// scaling on random DAGs as sharing grows, and reports the CEDPF of the
/// probabilistic data server from both.

#include <cstdio>

#include "bench/common.hpp"
#include "bdd/at_bdd.hpp"
#include "casestudies/dataserver.hpp"
#include "gen/random_at.hpp"
#include "poly/poly_engine.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

int main() {
  print_header("Extension — probabilistic DAG engines (open problem)",
               "paper Sec. IX end + Conclusion (polynomial-ring proposal)");

  // Case study: probabilistic data server.
  const auto det = casestudies::make_dataserver();
  CdpAt m{det.tree, det.cost, det.damage,
          std::vector<double>(det.tree.bas_count(), 0.7)};
  Front2d f_bdd, f_poly;
  const double t_bdd = time_once([&] { f_bdd = cedpf_bdd(m); });
  const double t_poly = time_once([&] { f_poly = cedpf_poly(m); });
  const PolyEngine pe(m.tree);
  std::printf("\nprobabilistic data server (p = 0.7 everywhere):\n");
  std::printf("  shared BASs needing formal variables: %zu of %zu\n",
              pe.shared_bas_count(), m.tree.bas_count());
  std::printf("  CEDPF: %zu points; BDD %.4fs, polynomial %.4fs, fronts "
              "agree: %s\n", f_bdd.size(), t_bdd, t_poly,
              f_bdd.same_values(f_poly, 1e-7) ? "yes" : "NO");
  std::printf("  front head:");
  for (std::size_t i = 0; i < std::min<std::size_t>(4, f_bdd.size()); ++i)
    std::printf(" (%g, %.3f)", f_bdd[i].value.cost, f_bdd[i].value.damage);
  std::printf(" ...\n");

  // Scaling on random DAGs grouped by node count.
  std::printf("\nrandom DAGs (per-attack expected-damage evaluation, mean "
              "over 32 attacks):\n");
  std::printf("%8s %8s %10s %12s %12s\n", "|N|", "|B|", "shared",
              "BDD (s)", "poly (s)");
  Rng rng(515);
  gen::SuiteOptions sopt;
  sopt.max_n = 45;
  sopt.per_size = 1;
  sopt.treelike = false;
  sopt.max_bas = 26;
  const auto suite = gen::make_suite(sopt, rng);
  for (const auto& e : suite) {
    if (e.tree.node_count() % 10 != 5) continue;  // sample a few sizes
    const auto model = randomize_decorations(e.tree, rng);
    std::size_t shared = 0;
    try {
      shared = PolyEngine(e.tree).shared_bas_count();
    } catch (const CapacityError&) {
      continue;
    }
    const AtBdd bdd_engine(e.tree);
    const PolyEngine poly_engine(e.tree);
    const std::size_t nb = e.tree.bas_count();
    std::vector<Attack> attacks;
    for (int k = 0; k < 32; ++k)
      attacks.push_back(Attack::from_mask(
          nb, rng.next() & ((nb >= 64 ? ~0ull : (1ull << nb) - 1))));
    const double tb = time_once([&] {
      for (const auto& x : attacks)
        (void)bdd_engine.expected_damage(model, x);
    });
    const double tp = time_once([&] {
      for (const auto& x : attacks)
        (void)poly_engine.expected_damage(model, x);
    });
    std::printf("%8zu %8zu %10zu %11.5fs %11.5fs\n", e.tree.node_count(),
                nb, shared, tb, tp);
  }
  std::printf("\nshape: the polynomial engine tracks the number of SHARED "
              "BASs, the BDD engine the global structure — they are "
              "complementary exact solvers for the paper's open problem.\n");
  return 0;
}
