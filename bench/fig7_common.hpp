#pragma once
/// Shared machinery for the Fig. 7 benches: generate a random AT suite
/// (Sec. X-D), run a set of engines per AT grouped by ⌊N/10⌋, and print
/// mean times per group plus the Fig. 7d overall statistics.
///
/// Scaling: the paper runs 500 ATs up to N=121 and tolerates hour-long
/// runs (its Fig. 7d maxima are 3917-5619 s).  Defaults here are sized so
/// one bench binary finishes in ~1 minute: smaller suite, per-(group,
/// engine) wall-clock budgets, and per-AT capacity guards.  --full uses
/// the paper's suite dimensions (still with time budgets, raised 10x).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/cdat.hpp"
#include "engine/registry.hpp"
#include "gen/random_at.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace atcd::bench {

struct Fig7Engine {
  std::string name;
  /// Runs the engine; returns false if the model was skipped (capacity).
  std::function<bool(const CdpAt&)> run;
  /// Hard upper bound on |B| for this engine (enumeration guard).
  std::size_t max_bas = 1u << 20;
};

/// A bench's engine line-up entry: a registry name plus an optional
/// tighter |B| cap (the paper caps enumeration below each engine's own
/// capacity guard to keep default runs quick).
struct Fig7EngineSpec {
  std::string name;
  std::size_t max_bas = 1u << 20;
};

struct Fig7Options {
  std::size_t max_n = 60;        // paper: 100
  std::size_t per_size = 2;      // paper: 5
  bool treelike = true;
  std::size_t max_bas = 64;      // decoration/evaluation guard
  double group_budget_s = 4.0;   // per (group, engine) wall-clock budget
  std::uint64_t seed = 2023;
  std::string engine;            // --engine <name>: run only this engine
};

inline Fig7Options fig7_options(int argc, char** argv, bool treelike) {
  Fig7Options opt;
  opt.treelike = treelike;
  opt.engine = flag_value(argc, argv, "--engine");
  if (has_flag(argc, argv, "--full")) {
    opt.max_n = 100;
    opt.per_size = 5;
    opt.group_budget_s = 40.0;
    opt.max_bas = 128;
  } else if (has_flag(argc, argv, "--smoke")) {
    opt.max_n = 30;
    opt.per_size = 1;
    opt.group_budget_s = 1.0;
  }
  return opt;
}

/// Resolves one line-up entry through the engine registry: the returned
/// Fig7Engine runs `problem` via the backend's polymorphic entry points
/// and skips (returns false) models outside the backend's capabilities.
/// Unknown names throw UnsupportedError listing the registered engines —
/// so `--engine <name>` reaches any future backend without bench changes.
inline Fig7Engine fig7_engine(const Fig7EngineSpec& spec,
                              engine::Problem problem) {
  const engine::Backend& b = engine::default_registry().at(spec.name);
  Fig7Engine e;
  e.name = spec.name;
  e.max_bas = std::min(spec.max_bas, b.capabilities().max_bas);
  e.run = [&b, problem](const CdpAt& m) {
    if (engine::is_probabilistic(problem)) {
      if (!b.supports(problem, engine::traits_of(m))) return false;
      (void)b.cedpf(m);
    } else {
      const CdAt det = m.deterministic();
      if (!b.supports(problem, engine::traits_of(det))) return false;
      (void)b.cdpf(det);
    }
    return true;
  };
  return e;
}

/// Per-engine overall timing statistics (the Fig. 7d table), returned so
/// the bench mains can emit their BENCH_<area>.json reports.
using Fig7Summary = std::vector<std::pair<std::string, Stats>>;

inline Fig7Summary run_fig7(const Fig7Options& opt,
                            const std::vector<Fig7Engine>& engines);

/// Registry-resolved variant: the benches name their engine line-up and
/// --engine <name> narrows the run to a single (possibly non-default)
/// registered backend.
inline Fig7Summary run_fig7(const Fig7Options& opt, engine::Problem problem,
                            std::vector<Fig7EngineSpec> specs) {
  if (!opt.engine.empty()) specs = {{opt.engine}};
  std::vector<Fig7Engine> engines;
  engines.reserve(specs.size());
  for (const auto& s : specs) engines.push_back(fig7_engine(s, problem));
  return run_fig7(opt, engines);
}

inline Fig7Summary run_fig7(const Fig7Options& opt,
                            const std::vector<Fig7Engine>& engines) {
  Rng rng(opt.seed);
  gen::SuiteOptions sopt;
  sopt.max_n = opt.max_n;
  sopt.per_size = opt.per_size;
  sopt.treelike = opt.treelike;
  sopt.max_bas = opt.max_bas;
  const auto suite = gen::make_suite(sopt, rng);
  std::printf("suite: %zu ATs (%s), sizes 1..%zu, %zu per size, seed %llu\n",
              suite.size(), opt.treelike ? "treelike" : "DAG",
              opt.max_n, opt.per_size,
              static_cast<unsigned long long>(opt.seed));
  std::printf("per-(group,engine) budget: %.0fs; capacity-skipped or "
              "budget-cut ATs are excluded from that mean (count shown)\n\n",
              opt.group_budget_s);

  // Group ATs by floor(N/10) as in the paper.
  std::map<std::size_t, std::vector<const gen::SuiteEntry*>> groups;
  for (const auto& e : suite)
    groups[e.tree.node_count() / 10].push_back(&e);

  std::printf("%-8s %-6s", "group", "#ATs");
  for (const auto& e : engines) std::printf(" %16s", e.name.c_str());
  std::printf("\n");

  std::map<std::string, std::vector<double>> overall;
  for (const auto& [g, entries] : groups) {
    std::printf("N=%02zu-%02zu %-6zu", g * 10, g * 10 + 9, entries.size());
    for (const auto& eng : engines) {
      std::vector<double> times;
      double spent = 0.0;
      std::size_t skipped = 0;
      for (const auto* e : entries) {
        if (spent > opt.group_budget_s) {
          ++skipped;
          continue;
        }
        if (e->tree.bas_count() > eng.max_bas) {
          ++skipped;
          continue;
        }
        Rng drng(opt.seed ^ (e->tree.node_count() * 7919));
        const auto m = randomize_decorations(e->tree, drng);
        Timer t;
        bool ok = false;
        try {
          ok = eng.run(m);
        } catch (const CapacityError&) {
          ok = false;
        }
        const double secs = t.seconds();
        spent += secs;
        if (ok) {
          times.push_back(secs);
          overall[eng.name].push_back(secs);
        } else {
          ++skipped;
        }
      }
      if (times.empty())
        std::printf(" %16s", "-");
      else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%10.4fs(%zu)", stats_of(times).mean,
                      times.size());
        std::printf(" %16s", buf);
      }
      (void)skipped;
    }
    std::printf("\n");
  }

  std::printf("\nOverall statistics (Fig. 7d):\n");
  std::printf("%-16s %8s %10s %10s %10s\n", "engine", "#runs", "min",
              "mean", "max");
  Fig7Summary summary;
  for (const auto& eng : engines) {
    const auto it = overall.find(eng.name);
    if (it == overall.end() || it->second.empty()) {
      std::printf("%-16s %8s\n", eng.name.c_str(), "-");
      summary.emplace_back(eng.name, Stats{});
      continue;
    }
    const auto s = stats_of(it->second);
    std::printf("%-16s %8zu %9.4fs %9.4fs %9.4fs\n", eng.name.c_str(), s.n,
                s.min, s.mean, s.max);
    summary.emplace_back(eng.name, s);
  }
  return summary;
}

}  // namespace atcd::bench
