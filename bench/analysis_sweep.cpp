/// analysis_sweep — quantifies the session-backed sweep win: a 1D grid
/// over one leaf's cost, replayed as an ordered edit script through an
/// incremental session (analysis::sweep), against the naive baseline
/// that rebuilds and solves the edited model from scratch at every grid
/// point.  Each sweep step dirties only the edited leaf's root-path, so
/// on deep trees the session pays O(depth) node recomputes where the
/// baseline pays O(#nodes).
///
/// Two problem settings, mirroring bench_incremental_edits:
///
///   * dgc  (budget-pruned sweep): per-node fronts stay small; the
///     headline case, required to be >= 3x at depth 8.
///   * cdpf (full fronts): the root-path recombination dominates, so
///     the structural win is bounded — reported for honesty.
///
/// Every grid point is equivalence-checked against the scratch solve —
/// a bench that drifts from correctness measures nothing.
///
/// Usage: bench_analysis_sweep [--points N] [--depth D] [--smoke]
///                             [--json <path>]
///   --smoke: tiny grid on a shallow tree, no speedup gate (CI's
///            nightly job runs this to keep the harness honest).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/sweep.hpp"
#include "bench/common.hpp"
#include "core/cdat.hpp"
#include "engine/batch.hpp"
#include "util/rng.hpp"

using namespace atcd;

namespace {

/// Complete binary tree of the given depth, alternating OR/AND levels,
/// with Sec. X random decorations.
CdAt complete_binary_model(Rng& rng, int depth) {
  AttackTree t;
  std::vector<NodeId> level;
  const std::size_t n_leaves = std::size_t{1} << depth;
  for (std::size_t i = 0; i < n_leaves; ++i)
    level.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  for (int d = depth; d > 0; --d) {
    const NodeType type = d % 2 ? NodeType::OR : NodeType::AND;
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(t.add_gate(type, "g" + std::to_string(g++),
                                {level[i], level[i + 1]}));
    level = std::move(next);
  }
  t.set_root(level[0]);
  t.finalize();
  return randomize_decorations(t, rng).deterministic();
}

struct Case {
  engine::Problem problem;
  double bound;
  const char* label;
};

bool cells_match(const analysis::SweepCell& cell,
                 const engine::SolveResult& ref, engine::Problem p) {
  if (!cell.result.ok || !ref.ok) return false;
  if (engine::is_front(p)) return cell.result.front.same_values(ref.front);
  return cell.result.attack.feasible == ref.attack.feasible &&
         (!ref.attack.feasible ||
          (cell.result.attack.cost == ref.attack.cost &&
           cell.result.attack.damage == ref.attack.damage));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  int depth = smoke ? 6 : 8;
  std::size_t points = smoke ? 8 : 64;
  if (const std::string v = bench::flag_value(argc, argv, "--depth");
      !v.empty())
    depth = std::atoi(v.c_str());
  if (const std::string v = bench::flag_value(argc, argv, "--points");
      !v.empty())
    points = std::strtoull(v.c_str(), nullptr, 10);

  std::printf(
      "analysis_sweep: session-backed 1D leaf-cost sweep vs from-scratch "
      "per-point solves\n"
      "(complete binary tree, depth %d, %zu grid points over b0's cost; "
      "times are total ms per sweep)\n\n",
      depth, points);

  Rng rng(0x5EEDull * 131 + static_cast<std::uint64_t>(depth));
  const CdAt base = complete_binary_model(rng, depth);
  const analysis::Axis axis =
      analysis::Axis::linspace(analysis::Attribute::Cost, "b0", 1.0, 10.0,
                               points);

  const Case cases[] = {
      {engine::Problem::Dgc, 15.0, "dgc(U=15)"},
      {engine::Problem::Cdpf, 0.0, "cdpf"},
  };

  bench::JsonReport report("analysis_sweep");
  bool headline_ok = false;
  double headline_speedup = 0.0;
  std::printf("%-10s %14s %14s %9s\n", "case", "scratch(ms)", "sweep(ms)",
              "speedup");
  for (const Case& c : cases) {
    analysis::Options aopt;
    aopt.problem = c.problem;
    aopt.bound = c.bound;

    analysis::SweepResult swept;
    const double sweep_ms =
        1e3 * bench::time_once([&] { swept = analysis::sweep(base, {axis},
                                                             aopt); });
    if (!swept.incremental) {
      std::fprintf(stderr, "expected the incremental fast path\n");
      return 1;
    }

    // Scratch baseline: rebuild the edited model and solve from nothing
    // (no session, no caches) at every grid point.
    std::vector<double> scratch_point_s;
    scratch_point_s.reserve(axis.values.size());
    const std::uint32_t b0 = base.tree.bas_index(*base.tree.find("b0"));
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      CdAt edited = base;
      edited.cost[b0] = axis.values[i];
      engine::SolveResult ref;
      scratch_point_s.push_back(bench::time_once([&] {
        ref = engine::solve_one(
            engine::Instance::of(c.problem, edited, c.bound));
      }));
      if (!cells_match(swept.cells[i], ref, c.problem)) {
        std::fprintf(stderr, "MISMATCH at grid point %zu: sweep != scratch\n",
                     i);
        return 1;
      }
    }
    double scratch_ms = 0.0;
    for (const double s : scratch_point_s) scratch_ms += 1e3 * s;

    const double speedup = scratch_ms / sweep_ms;
    std::printf("%-10s %14.2f %14.2f %8.1fx\n", c.label, scratch_ms,
                sweep_ms, speedup);
    // Percentiles digest the per-grid-point scratch solves (the unit of
    // work the sweep amortizes).
    auto metrics = bench::stats_metrics(bench::stats_of(scratch_point_s));
    metrics.emplace_back("scratch_total_s", scratch_ms / 1e3);
    metrics.emplace_back("sweep_total_s", sweep_ms / 1e3);
    metrics.emplace_back("speedup", speedup);
    report.add(c.label, std::move(metrics));
    if (c.problem == engine::Problem::Dgc) {
      headline_speedup = speedup;
      headline_ok = speedup >= 3.0;
    }
  }
  report.write(bench::flag_value(argc, argv, "--json"));

  if (smoke) {
    std::printf("\nsmoke run: equivalence checks passed (no speedup gate)\n");
    return 0;
  }
  std::printf(
      "\nheadline: dgc depth-%d session-backed sweep is %.1fx the "
      "from-scratch per-point baseline (target >= 3x): %s\n",
      depth, headline_speedup, headline_ok ? "PASS" : "FAIL");
  return headline_ok ? 0 : 1;
}
