/// Ablation A5 — the lexicographic refinement inside the ε-constraint
/// sweep (ilp/bilp.hpp).
///
/// Each sweep iteration solves TWO ILPs: max damage under the cost bound,
/// then min cost at that damage.  A cheaper variant skips the second
/// solve and trusts the first solution's cost.  This bench shows the
/// cheap variant (a) returns weakly dominated points (same damage,
/// higher cost) and (b) can terminate the sweep early — quantifying why
/// the refinement is worth 2x the ILP solves.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/dataserver.hpp"
#include "core/bilp_method.hpp"
#include "core/enumerative.hpp"
#include "ilp/ilp.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

namespace {

/// The no-refinement sweep: one ILP per point.
std::vector<CdPoint> sweep_without_refinement(const CdAt& m,
                                              std::size_t* solves) {
  auto bp = make_bilp(m);
  std::vector<CdPoint> pts;
  lp::LinearProgram region = bp.base;
  std::vector<std::pair<int, double>> cost_terms;
  for (int v = 0; v < region.num_vars(); ++v)
    if (bp.obj2[static_cast<std::size_t>(v)] != 0.0)
      cost_terms.emplace_back(v, bp.obj2[static_cast<std::size_t>(v)]);
  const double eps = 0.5;  // integer costs in these models
  for (;;) {
    lp::LinearProgram prog = region;
    for (int v = 0; v < prog.num_vars(); ++v)
      prog.set_obj(v, bp.obj1[static_cast<std::size_t>(v)]);
    const auto r = ilp::solve(ilp::IntegerProgram{prog, bp.integer_vars});
    ++*solves;
    if (r.status != ilp::IlpStatus::Optimal) break;
    double cost = 0, damage = 0;
    for (int v = 0; v < prog.num_vars(); ++v) {
      cost += bp.obj2[static_cast<std::size_t>(v)] *
              r.x[static_cast<std::size_t>(v)];
      damage -= bp.obj1[static_cast<std::size_t>(v)] *
                r.x[static_cast<std::size_t>(v)];
    }
    pts.push_back({cost, damage});
    if (cost < eps) break;  // reached the zero-cost point
    region.add_row(cost_terms, lp::Sense::LE, cost - eps);
  }
  return pts;
}

}  // namespace

int main() {
  print_header("Ablation A5 — ε-constraint sweep with/without "
               "lexicographic refinement",
               "paper Sec. VII / [18] (implementation strategy)");
  const auto ds = casestudies::make_dataserver();

  BilpRunStats with_stats;
  Front2d with_ref;
  const double t_with =
      time_once([&] { with_ref = cdpf_bilp(ds, &with_stats); });

  std::size_t without_solves = 0;
  std::vector<CdPoint> without_ref;
  const double t_without = time_once(
      [&] { without_ref = sweep_without_refinement(ds, &without_solves); });

  std::printf("\ndata server AT:\n");
  std::printf("with refinement:    %zu points, %zu ILP solves, %.4fs\n",
              with_ref.size(), with_stats.ilp_solves, t_with);
  std::printf("without refinement: %zu points, %zu ILP solves, %.4fs\n",
              without_ref.size(), without_solves, t_without);

  // How many of the unrefined points are actually Pareto-optimal?
  const auto exact = cdpf_enumerative(ds);
  std::size_t optimal = 0;
  for (const auto& p : without_ref)
    for (const auto& e : exact)
      if (std::abs(p.cost - e.value.cost) < 1e-6 &&
          std::abs(p.damage - e.value.damage) < 1e-6) {
        ++optimal;
        break;
      }
  std::printf("unrefined points that lie on the true front: %zu/%zu\n",
              optimal, without_ref.size());
  std::printf("refined front matches enumeration: %s\n",
              with_ref.same_values(exact, 1e-7) ? "yes" : "NO");

  // Random DAG models: count how often the cheap sweep is wrong.
  Rng rng(4711);
  int wrong = 0;
  const int trials = 20;
  for (int it = 0; it < trials; ++it) {
    const auto rnd = randomize_decorations(ds.tree, rng).deterministic();
    std::size_t s = 0;
    const auto cheap = sweep_without_refinement(rnd, &s);
    const auto truth = cdpf_enumerative(rnd);
    bool all_on_front = cheap.size() == truth.size();
    for (const auto& p : cheap) {
      bool found = false;
      for (const auto& e : truth)
        found |= std::abs(p.cost - e.value.cost) < 1e-6 &&
                 std::abs(p.damage - e.value.damage) < 1e-6;
      all_on_front &= found;
    }
    if (!all_on_front) ++wrong;
  }
  std::printf("\nrandom decorations on the same DAG: cheap sweep deviates "
              "from the true front on %d/%d models\n", wrong, trials);
  std::printf("conclusion: the second (tie-breaking) ILP per point is "
              "required for exact fronts; it costs ~2x solves but the "
              "sweep length is identical.\n");
  return 0;
}
