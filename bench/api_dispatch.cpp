/// api_dispatch — micro-benchmark gating the api::Dispatcher facade
/// overhead against direct SolveService calls.
///
/// The facade adds per-request work on top of the service front door:
/// the operation variant dispatch, typed error classification, atomic
/// op counters, and building the transport-independent SolvePayload
/// (including witness rendering).  This bench measures both paths on
/// the same steady-state serving workload — text request, warm result
/// cache, DgC (single-witness) solves, so the per-call cost is
/// parse + canonical hash + cache hit on both sides — and FAILS when
/// the facade costs more than 5% over the direct path.  A CDPF row is
/// reported for reference without a gate (rendering a whole front's
/// witness strings is facade work a raw SolveService caller would have
/// to do themselves anyway).
///
/// A second gate isolates the always-on observability cost: the same
/// workload through two facades, one with Options::record_metrics off
/// (no dispatch-level counter adds, histogram records, or slow-request
/// check), FAILS when registry recording adds 2% or more.
///
/// Usage: bench_api_dispatch [--iters N] [--trials N] [--smoke]
///                           [--json <path>]
///
/// Runs in CI's nightly job; --smoke shrinks it for quick local runs.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/dispatcher.hpp"
#include "bench/common.hpp"
#include "service/service.hpp"
#include "util/timer.hpp"

using namespace atcd;

namespace {

/// A layered treelike model: `leaves` BASs grouped 4 at a time under
/// alternating OR/AND gates — big enough that parsing and canonical
/// hashing (the shared per-request cost) dominate a cache-hit solve.
std::string make_model(std::size_t leaves) {
  std::ostringstream m;
  std::vector<std::string> open;
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::string name = "b" + std::to_string(i);
    m << "bas " << name << " cost=" << (1 + i % 7) << " damage="
      << (1 + (i * 3) % 5) << "\n";
    open.push_back(name);
  }
  std::size_t g = 0;
  while (open.size() > 1) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i < open.size(); i += 4) {
      const std::size_t hi = std::min(open.size(), i + 4);
      if (hi - i == 1) {
        next.push_back(open[i]);
        continue;
      }
      const std::string name = "g" + std::to_string(g);
      m << (g % 2 ? "and " : "or ") << name << " = ";
      for (std::size_t k = i; k < hi; ++k)
        m << open[k] << (k + 1 < hi ? ", " : "");
      m << " damage=" << (g % 3) << "\n";
      next.push_back(name);
      ++g;
    }
    open = std::move(next);
  }
  return m.str();
}

struct Timing {
  double direct_us = 0.0;
  double facade_us = 0.0;
  double overhead() const { return facade_us / direct_us - 1.0; }
};

/// Best-of-`trials` per-request micros for both paths, trials
/// interleaved so thermal/scheduler noise hits both sides alike.
Timing measure(service::SolveService& direct, api::Dispatcher& facade,
               const service::Request& sreq, const api::Request& areq,
               std::size_t iters, std::size_t trials) {
  // Warm the caches so both paths run their steady-state hit path.
  (void)direct.handle(sreq);
  (void)facade.dispatch(areq);
  Timing best;
  best.direct_us = best.facade_us = 1e300;
  for (std::size_t t = 0; t < trials; ++t) {
    Timer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      const auto r = direct.handle(sreq);
      if (!r.result.ok) {
        std::fprintf(stderr, "direct solve failed: %s\n",
                     r.result.error.c_str());
        std::exit(1);
      }
    }
    best.direct_us = std::min(best.direct_us,
                              timer.seconds() * 1e6 /
                                  static_cast<double>(iters));
    timer = Timer();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto r = facade.dispatch(areq);
      if (r.code != api::ErrorCode::Ok) {
        std::fprintf(stderr, "facade solve failed: %s\n", r.error.c_str());
        std::exit(1);
      }
    }
    best.facade_us = std::min(best.facade_us,
                              timer.seconds() * 1e6 /
                                  static_cast<double>(iters));
  }
  return best;
}

/// Per-request micros for the same request through two facades (metrics
/// recording on vs off).  The recording delta is tens of nanoseconds on
/// a ~60us request, far below run-to-run scheduler/thermal noise, so a
/// best-of-trials comparison of two long runs (as measure() does for
/// the 5% facade gate) is too coarse for a 2% gate.  Instead each trial
/// alternates short on/off blocks — drift hits both sides alike and
/// cancels in the ratio — and the gate reads the *median* per-trial
/// overhead, robust to the odd descheduled block.
Timing measure_recording(api::Dispatcher& on, api::Dispatcher& off,
                         const api::Request& areq, std::size_t iters,
                         std::size_t trials) {
  (void)on.dispatch(areq);
  (void)off.dispatch(areq);
  const auto run_block = [&](api::Dispatcher& d, std::size_t n) {
    Timer timer;
    for (std::size_t i = 0; i < n; ++i) {
      const auto r = d.dispatch(areq);
      if (r.code != api::ErrorCode::Ok) {
        std::fprintf(stderr, "solve failed: %s\n", r.error.c_str());
        std::exit(1);
      }
    }
    return timer.seconds();
  };
  constexpr std::size_t kBlocks = 16;
  const std::size_t block = std::max<std::size_t>(1, iters / kBlocks);
  std::vector<double> overheads;
  double best_on = 1e300, best_off = 1e300;
  for (std::size_t t = 0; t < trials; ++t) {
    double on_s = 0.0, off_s = 0.0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
      // Swap which side goes first each block so any per-block warmup
      // cost alternates sides too.
      if ((t + b) % 2 == 0) {
        off_s += run_block(off, block);
        on_s += run_block(on, block);
      } else {
        on_s += run_block(on, block);
        off_s += run_block(off, block);
      }
    }
    overheads.push_back(on_s / off_s - 1.0);
    const double per = 1e6 / static_cast<double>(block * kBlocks);
    best_off = std::min(best_off, off_s * per);
    best_on = std::min(best_on, on_s * per);
  }
  std::sort(overheads.begin(), overheads.end());
  const double median = overheads[overheads.size() / 2];
  Timing rec;
  rec.direct_us = best_off;  // direct = recording off
  // Report the on-side so that overhead() reproduces the median ratio
  // the gate reads.
  rec.facade_us = best_off * (1.0 + median);
  (void)best_on;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 4000, trials = 5;
  if (const std::string v = bench::flag_value(argc, argv, "--iters");
      !v.empty())
    iters = std::stoull(v);
  if (const std::string v = bench::flag_value(argc, argv, "--trials");
      !v.empty())
    trials = std::stoull(v);
  if (bench::has_flag(argc, argv, "--smoke")) {
    iters = 300;
    trials = 2;
  }

  const std::string model = make_model(48);

  service::SolveService direct;
  api::Dispatcher facade;

  const service::Request sreq_dgc =
      service::Request::of_text(engine::Problem::Dgc, model, 10.0);
  api::Request areq_dgc;
  areq_dgc.op =
      api::SolveRequest{{engine::Problem::Dgc, 10.0, true, "", model}};

  const service::Request sreq_cdpf =
      service::Request::of_text(engine::Problem::Cdpf, model, 0.0);
  api::Request areq_cdpf;
  areq_cdpf.op =
      api::SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", model}};

  std::printf("# api_dispatch: facade overhead over direct SolveService "
              "(48-leaf model, warm cache, %zu iters x %zu trials)\n",
              iters, trials);
  std::printf("%-8s %14s %14s %10s\n", "problem", "direct us/req",
              "facade us/req", "overhead");

  const Timing dgc =
      measure(direct, facade, sreq_dgc, areq_dgc, iters, trials);
  std::printf("%-8s %14.2f %14.2f %9.2f%%\n", "dgc", dgc.direct_us,
              dgc.facade_us, 100.0 * dgc.overhead());

  const Timing cdpf =
      measure(direct, facade, sreq_cdpf, areq_cdpf, iters, trials);
  std::printf("%-8s %14.2f %14.2f %9.2f%%  (reference, ungated: includes "
              "front witness rendering)\n",
              "cdpf", cdpf.direct_us, cdpf.facade_us,
              100.0 * cdpf.overhead());

  // Observability gate: identical facades except dispatch-level
  // recording; the delta is exactly the always-on instrument cost.
  api::Dispatcher::Options rec_off;
  rec_off.record_metrics = false;
  api::Dispatcher recording_off(std::move(rec_off));
  api::Dispatcher recording_on;
  const Timing rec = measure_recording(recording_on, recording_off,
                                       areq_dgc, iters, trials);
  std::printf("%-8s %14.2f %14.2f %9.2f%%  (metrics recording off vs on)\n",
              "obs", rec.direct_us, rec.facade_us, 100.0 * rec.overhead());

  // Tail latencies as the serving stack itself recorded them.
  obs::Histogram& h =
      recording_on.metrics().histogram("atcd_api_request_micros");

  bench::JsonReport report("api_dispatch");
  report.add("dgc", {{"direct_us", dgc.direct_us},
                     {"facade_us", dgc.facade_us},
                     {"overhead", dgc.overhead()}});
  report.add("cdpf", {{"direct_us", cdpf.direct_us},
                      {"facade_us", cdpf.facade_us},
                      {"overhead", cdpf.overhead()}});
  report.add("metrics_recording",
             {{"off_us", rec.direct_us},
              {"on_us", rec.facade_us},
              {"overhead", rec.overhead()},
              {"p50_us", h.percentile(0.50)},
              {"p99_us", h.percentile(0.99)}});
  report.write(bench::flag_value(argc, argv, "--json"));

  const bool facade_ok = dgc.overhead() < 0.05;
  std::printf("# gate: dgc facade overhead %.2f%% < 5%% : %s\n",
              100.0 * dgc.overhead(), facade_ok ? "PASS" : "FAIL");
  const bool obs_ok = rec.overhead() < 0.02;
  std::printf("# gate: metrics recording overhead %.2f%% < 2%% : %s\n",
              100.0 * rec.overhead(), obs_ok ? "PASS" : "FAIL");
  return facade_ok && obs_ok ? 0 : 1;
}
