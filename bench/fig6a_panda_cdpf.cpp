/// Regenerates Fig. 6a: the deterministic cost-damage Pareto front of the
/// panda-reservation IoT AT (Fig. 4), with the attack-set table A1-A8.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/panda.hpp"
#include "core/bottom_up.hpp"
#include "util/timer.hpp"

using namespace atcd;

int main() {
  bench::print_header("Fig. 6a — deterministic CDPF of the panda IoT AT",
                      "paper Sec. X-A, Fig. 6a");
  const auto m = casestudies::make_panda().deterministic();
  std::printf("model: |N| = %zu, |B| = %zu, treelike = %s\n",
              m.tree.node_count(), m.tree.bas_count(),
              m.tree.is_treelike() ? "yes" : "no");

  Timer t;
  const auto f = cdpf_bottom_up(m);
  const double secs = t.seconds();

  std::printf("\n%-4s %6s %8s  %-4s %s\n", "A", "cost", "damage", "top",
              "attack");
  int k = 0;
  for (const auto& p : f) {
    if (p.value.cost == 0) continue;
    std::printf("A%-3d %6g %8g  %-4s %s\n", ++k, p.value.cost,
                p.value.damage,
                is_successful(m.tree, p.witness) ? "y" : "n",
                attack_to_string(m.tree, p.witness).c_str());
  }
  std::printf("\npaper Fig. 6a: (3,20) (4,50) (7,65) (11,75) (13,80) "
              "(17,90) (22,95) (30,100), all reaching the top\n");
  std::printf("bottom-up time: %.4fs (paper: 0.044s on an i7 laptop; "
              "enumeration of 2^22 attacks took 34h)\n", secs);
  return 0;
}
