/// Ablation A1 — why the third DTrip coordinate exists (paper Example 4).
///
/// The bottom-up engine propagates (cost, damage, activation) triples; a
/// "naive" 2-D propagation drops the activation coordinate and prunes
/// attacks that are locally non-optimal but could unlock ancestor damage.
/// This bench runs both on random treelike models and reports how often —
/// and by how much — the naive variant UNDER-reports the achievable
/// damage.  It is faster, but wrong; this quantifies the trade.

#include <cstdio>

#include "bench/common.hpp"
#include "core/bottom_up.hpp"
#include "core/enumerative.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

namespace {

AttackTree random_tree(Rng& rng, std::size_t n_bas) {
  AttackTree t;
  std::vector<NodeId> open;
  for (std::size_t i = 0; i < n_bas; ++i)
    open.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  while (open.size() > 1) {
    const std::size_t arity = std::min<std::size_t>(open.size(), 2 + rng.below(2));
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < arity; ++i) {
      const std::size_t pick = rng.below(open.size());
      cs.push_back(open[pick]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    open.push_back(t.add_gate(rng.chance(0.5) ? NodeType::OR : NodeType::AND,
                              "g" + std::to_string(g++), cs));
  }
  t.set_root(open[0]);
  t.finalize();
  return t;
}

}  // namespace

int main() {
  print_header("Ablation A1 — DTrip activation coordinate on vs off",
               "paper Sec. VI, Example 4 (soundness of the triple domain)");
  Rng rng(314);
  const int trials = 200;
  int wrong = 0;
  double worst_rel_err = 0.0, t_sound = 0.0, t_naive = 0.0;
  for (int it = 0; it < trials; ++it) {
    const auto t = random_tree(rng, 10);
    const auto m = randomize_decorations(t, rng).deterministic();
    const std::vector<double> unit(m.tree.bas_count(), 1.0);

    Timer timer;
    const auto sound =
        detail::bottom_up_root_front(m.tree, m.cost, m.damage, unit);
    t_sound += timer.seconds();

    detail::BottomUpOptions naive_opt;
    naive_opt.ignore_activation = true;
    timer.restart();
    const auto naive = detail::bottom_up_root_front(m.tree, m.cost,
                                                    m.damage, unit, naive_opt);
    t_naive += timer.seconds();

    double dmax_sound = 0, dmax_naive = 0;
    for (const auto& x : sound) dmax_sound = std::max(dmax_sound, x.t.damage);
    for (const auto& x : naive) dmax_naive = std::max(dmax_naive, x.t.damage);
    if (dmax_naive < dmax_sound - 1e-9) {
      ++wrong;
      worst_rel_err = std::max(
          worst_rel_err, (dmax_sound - dmax_naive) / std::max(1.0, dmax_sound));
    }
  }
  std::printf("\nrandom treelike models: %d  (|B| = 10, paper Sec. X "
              "decorations)\n", trials);
  std::printf("naive 2-D propagation under-reports max damage on %d/%d "
              "models (%.0f%%)\n", wrong, trials, 100.0 * wrong / trials);
  std::printf("worst relative damage error: %.1f%%\n", 100.0 * worst_rel_err);
  std::printf("time: sound %.4fs vs naive %.4fs (the naive variant is "
              "%.2fx faster — and wrong)\n",
              t_sound, t_naive, t_sound / std::max(1e-9, t_naive));
  std::printf("\nconclusion: the activation coordinate is load-bearing; "
              "Example 4 generalises to ~%d%% of random models.\n",
              static_cast<int>(100.0 * wrong / trials));
  return 0;
}
