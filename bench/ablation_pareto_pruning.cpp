/// Ablation A3 — staircase vs quadratic Pareto pruning.
///
/// The min_U map is the inner loop of both bottom-up engines.  Our
/// implementation keeps a (damage, activation) staircase and runs in
/// O(n log n); the textbook implementation compares all pairs in O(n^2).
/// On the probabilistic engine — where per-node fronts grow large
/// (Example 10) — the difference dominates the total runtime.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/panda.hpp"
#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "pareto/triple.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

int main() {
  print_header("Ablation A3 — staircase vs O(n^2) Pareto pruning",
               "implementation choice inside Thms 4 & 9 (min_U)");

  // Microbenchmark on raw triple sets.
  std::printf("\nraw prune_min on n random PTrip triples (10 rounds "
              "each):\n%10s %14s %14s %9s\n", "n", "staircase", "quadratic",
              "speedup");
  Rng rng(99);
  for (std::size_t n : {100u, 400u, 1600u, 6400u}) {
    std::vector<AttrTriple> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      AttrTriple a;
      a.t = {rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform()};
      a.witness = DynBitset(8);
      xs.push_back(std::move(a));
    }
    double t_fast = 0, t_slow = 0;
    for (int round = 0; round < 10; ++round) {
      t_fast += time_once([&] { (void)prune_min(xs); });
      t_slow += time_once([&] { (void)prune_min_quadratic(xs); });
    }
    std::printf("%10zu %13.5fs %13.5fs %8.1fx\n", n, t_fast, t_slow,
                t_slow / std::max(1e-9, t_fast));
  }

  // End-to-end on the probabilistic panda sweep.
  const auto m = casestudies::make_panda();
  detail::BottomUpOptions fast, slow;
  slow.quadratic_prune = true;
  const double t_fast = time_once([&] {
    (void)detail::bottom_up_root_front(m.tree, m.cost, m.damage, m.prob,
                                       fast);
  });
  const double t_slow = time_once([&] {
    (void)detail::bottom_up_root_front(m.tree, m.cost, m.damage, m.prob,
                                       slow);
  });
  std::printf("\nprobabilistic panda sweep (Thm 9): staircase %.5fs vs "
              "quadratic %.5fs (%.1fx)\n", t_fast, t_slow,
              t_slow / std::max(1e-9, t_fast));
  std::printf("both variants produce identical fronts (asserted in "
              "tests/test_pareto.cpp).\n");
  return 0;
}
