#pragma once
/// Shared utilities for the benchmark harness.
///
/// Every bench binary regenerates one table or figure of the paper (see
/// DESIGN.md §3) and prints it in a stable textual form.  Binaries run
/// with laptop-friendly defaults; pass --full for paper-scale workloads
/// (documented per binary).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace atcd::bench {

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i)
    if (argv[i] == flag) return true;
  return false;
}

/// Value following "--flag" (e.g. --engine bilp); empty when absent.
inline std::string flag_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return {};
}

/// Times a callable once, returning seconds.
template <typename Fn>
double time_once(Fn&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

struct Stats {
  double min = 0, mean = 0, max = 0, stddev = 0;
  std::size_t n = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace atcd::bench
