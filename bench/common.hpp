#pragma once
/// Shared utilities for the benchmark harness.
///
/// Every bench binary regenerates one table or figure of the paper (see
/// DESIGN.md §3) and prints it in a stable textual form.  Binaries run
/// with laptop-friendly defaults; pass --full for paper-scale workloads
/// (documented per binary).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace atcd::bench {

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i)
    if (argv[i] == flag) return true;
  return false;
}

/// Value following "--flag" (e.g. --engine bilp); empty when absent.
inline std::string flag_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return {};
}

/// Times a callable once, returning seconds.
template <typename Fn>
double time_once(Fn&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

struct Stats {
  double min = 0, mean = 0, max = 0, stddev = 0;
  /// Latency digest in microseconds, from the same log-scale
  /// obs::Histogram the serving stack records into (so bench tails and
  /// production tails share bucket resolution).
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::size_t n = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0;
  obs::Histogram hist;
  for (double x : xs) {
    sum += x;
    hist.record(static_cast<std::uint64_t>(std::max(0.0, x) * 1e6));
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  s.p50_us = hist.percentile(0.50);
  s.p95_us = hist.percentile(0.95);
  s.p99_us = hist.percentile(0.99);
  return s;
}

/// Exact median (not the histogram-bucketed p50): the robust center
/// for speedup ratios — a single scheduling hiccup shifts a mean by
/// whole multiples but leaves the median untouched.
inline double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    const double lo = *std::max_element(xs.begin(), xs.begin() + mid);
    m = (m + lo) / 2.0;
  }
  return m;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Machine-readable bench output.  Every bench binary keeps its stable
/// textual report for humans and additionally writes BENCH_<area>.json —
/// one flat object per named row, numeric metrics only — so CI trend
/// tracking and the checked-in baseline snapshots need no log scraping.
///
///   JsonReport report("arena_hotpath");
///   report.add("depth12/dgc", {{"arena_us", 812.0}, {"speedup", 3.1}});
///   report.write();   // ./BENCH_arena_hotpath.json (or --json <path>)
class JsonReport {
 public:
  explicit JsonReport(std::string area) : area_(std::move(area)) {}

  /// Appends one row.  Rows keep insertion order; metric keys too.
  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({name, std::move(metrics)});
  }

  std::string default_path() const { return "BENCH_" + area_ + ".json"; }

  /// Writes the report; empty \p path means default_path() in the
  /// current directory.  Returns false (and says so on stderr) if the
  /// file cannot be written — benches report, they don't abort.
  bool write(const std::string& path = {}) const {
    const std::string target = path.empty() ? default_path() : path;
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", target.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 area_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"name\": \"%s\"", r.name.c_str());
      for (const auto& [k, v] : r.metrics) {
        if (std::isfinite(v))
          std::fprintf(f, ", \"%s\": %.10g", k.c_str(), v);
        else
          std::fprintf(f, ", \"%s\": null", k.c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", target.c_str());
    return true;
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string area_;
  std::vector<Row> rows_;
};

/// Canonical Stats -> JSON metrics rendering, shared by the benches.
inline std::vector<std::pair<std::string, double>> stats_metrics(
    const Stats& s) {
  return {{"runs", static_cast<double>(s.n)},
          {"min_s", s.min},
          {"mean_s", s.mean},
          {"max_s", s.max},
          {"stddev_s", s.stddev},
          {"p50_us", s.p50_us},
          {"p95_us", s.p95_us},
          {"p99_us", s.p99_us}};
}

}  // namespace atcd::bench
