/// model_zoo — scales generated models until each engine falls over,
/// and records where.  Two families:
///
///   * binary/depthD — complete binary AND/OR trees, depth 10..14
///     (1k..16k leaves): the breadth axis, where per-node front sizes
///     and solver scaling dominate.
///   * deep/depthD — depth-15..20 caterpillar trees (a gate chain with
///     one leaf per level, a small binary crown at the bottom): the
///     depth axis, where recursion/propagation depth dominates.
///
/// Every (family size, engine, problem) point first *probes* in a
/// forked child with a hard wall-clock kill — a front blowing up
/// combinatorially (e.g. CDPF Minkowski sums over thousands of leaves)
/// is killed at the deadline instead of running away with time and
/// memory — then, only when the probe survives the budget, times the
/// solve in-process for clean numbers.  The first over-budget,
/// capacity-rejected or killed solve marks the engine fallen-over for
/// that family (completed=0 rows), and larger sizes are skipped — so
/// the bench's own runtime stays bounded while the report pins each
/// engine's frontier.
///
/// Usage: bench_model_zoo [--smoke | --full] [--budget S] [--json <path>]

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/cdat.hpp"
#include "engine/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace atcd;

namespace {

/// Complete binary tree of the given depth, alternating OR/AND levels.
AttackTree binary_tree(int depth) {
  AttackTree t;
  std::vector<NodeId> level;
  const std::size_t n_leaves = std::size_t{1} << depth;
  for (std::size_t i = 0; i < n_leaves; ++i)
    level.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  for (int d = depth; d > 0; --d) {
    const NodeType type = d % 2 ? NodeType::OR : NodeType::AND;
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(t.add_gate(type, "g" + std::to_string(g++),
                                {level[i], level[i + 1]}));
    level = std::move(next);
  }
  t.set_root(level[0]);
  t.finalize();
  return t;
}

/// Caterpillar of the given depth: each level is a gate over one fresh
/// leaf and the level below; the bottom is a depth-5 binary crown.  The
/// longest root-to-leaf path is `depth`, with only depth+2^5 leaves —
/// the pure depth-stress shape.
AttackTree caterpillar_tree(int depth) {
  const int crown = 5;
  AttackTree t;
  std::vector<NodeId> level;
  for (std::size_t i = 0; i < (std::size_t{1} << crown); ++i)
    level.push_back(t.add_bas("c" + std::to_string(i)));
  int g = 0;
  for (int d = crown; d > 0; --d) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(t.add_gate(d % 2 ? NodeType::OR : NodeType::AND,
                                "g" + std::to_string(g++),
                                {level[i], level[i + 1]}));
    level = std::move(next);
  }
  NodeId spine = level[0];
  for (int d = crown; d < depth; ++d)
    spine = t.add_gate(d % 2 ? NodeType::AND : NodeType::OR,
                       "s" + std::to_string(d),
                       {t.add_bas("b" + std::to_string(d)), spine});
  t.set_root(spine);
  t.finalize();
  return t;
}

struct ZooProblem {
  engine::Problem problem;
  double bound;
  const char* label;
};

enum class Probe { Ok, Threw, Killed };

/// Runs one solve in a forked child with a hard wall-clock deadline.
/// The child exits 0 on success and 2 on a typed engine Error; a child
/// still alive at the deadline is SIGKILLed (runaway time *and* memory
/// die with it).  Returns Killed on any abnormal end.
Probe probe_solve(const engine::Backend& b, const CdAt& m,
                  const ZooProblem& p, double deadline_s) {
  const pid_t pid = fork();
  if (pid < 0) return Probe::Killed;  // fork failure: treat as fallen over
  if (pid == 0) {
    try {
      if (p.problem == engine::Problem::Cdpf)
        (void)b.cdpf(m);
      else
        (void)b.dgc(m, p.bound);
    } catch (const Error&) {
      _exit(2);
    } catch (...) {
      _exit(3);
    }
    _exit(0);
  }
  Timer timer;
  int status = 0;
  while (true) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) return Probe::Killed;
    if (timer.seconds() > deadline_s) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return Probe::Killed;
    }
    usleep(2000);
  }
  if (!WIFEXITED(status)) return Probe::Killed;
  if (WEXITSTATUS(status) == 0) return Probe::Ok;
  if (WEXITSTATUS(status) == 2) return Probe::Threw;
  return Probe::Killed;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool full = bench::has_flag(argc, argv, "--full");
  double budget_s = full ? 10.0 : (smoke ? 0.5 : 2.0);
  if (const std::string v = bench::flag_value(argc, argv, "--budget");
      !v.empty())
    budget_s = std::atof(v.c_str());
  const std::size_t runs = smoke ? 2 : 3;

  std::vector<int> binary_depths = smoke ? std::vector<int>{8, 10}
                                         : std::vector<int>{10, 12, 14};
  std::vector<int> deep_depths = smoke ? std::vector<int>{15, 18}
                                       : std::vector<int>{15, 18, 20};

  const ZooProblem problems[] = {
      {engine::Problem::Dgc, 15.0, "dgc"},
      {engine::Problem::Cdpf, 0.0, "cdpf"},
  };
  const std::vector<std::string> engines = {"enumerative", "bottom-up",
                                            "bilp"};

  std::printf("model_zoo: engine frontiers on scaled models "
              "(per-solve budget %.1fs, %zu runs per completed point)\n\n",
              budget_s, runs);
  std::printf("%-26s %8s %8s %10s %12s\n", "point", "nodes", "leaves",
              "status", "mean");

  bench::JsonReport report("model_zoo");
  struct Family {
    const char* name;
    std::vector<int> depths;
    AttackTree (*build)(int);
  };
  const Family families[] = {
      {"binary", binary_depths, &binary_tree},
      {"deep", deep_depths, &caterpillar_tree},
  };

  for (const Family& fam : families) {
    for (const ZooProblem& p : problems) {
      // An engine that falls over at one size skips the larger ones in
      // the same (family, problem) column.
      std::vector<bool> dead(engines.size(), false);
      for (const int depth : fam.depths) {
        const AttackTree t = fam.build(depth);
        Rng rng(0x200ull * 131 + static_cast<std::uint64_t>(depth));
        const CdAt m = randomize_decorations(t, rng).deterministic();
        const engine::Traits traits = engine::traits_of(m);

        for (std::size_t e = 0; e < engines.size(); ++e) {
          const std::string point = std::string(fam.name) + "/depth" +
                                    std::to_string(depth) + "/" + engines[e] +
                                    "/" + p.label;
          std::vector<std::pair<std::string, double>> metrics = {
              {"nodes", double(t.node_count())},
              {"leaves", double(t.bas_count())},
              {"depth", double(depth)}};
          const engine::Backend& b = engine::default_registry().at(engines[e]);
          std::string status;
          if (dead[e]) {
            status = "skipped";
          } else if (t.bas_count() > b.capabilities().max_bas) {
            status = "capacity";
            dead[e] = true;
          } else if (!b.supports(p.problem, traits)) {
            status = "unsupported";
          }
          if (!status.empty()) {
            metrics.emplace_back("completed", 0.0);
            std::printf("%-26s %8zu %8zu %10s %12s\n", point.c_str(),
                        t.node_count(), t.bas_count(), status.c_str(), "-");
            report.add(point, std::move(metrics));
            continue;
          }

          std::vector<double> times;
          bool over_budget = false, threw = false;
          // Hard-deadline probe first: a blowing-up solve is killed at
          // the budget instead of running away.
          switch (probe_solve(b, m, p, budget_s)) {
            case Probe::Threw:
              threw = true;
              break;
            case Probe::Killed:
              over_budget = true;
              break;
            case Probe::Ok:
              for (std::size_t r = 0; r < runs && !over_budget; ++r) {
                Timer timer;
                if (p.problem == engine::Problem::Cdpf)
                  (void)b.cdpf(m);
                else
                  (void)b.dgc(m, p.bound);
                const double secs = timer.seconds();
                times.push_back(secs);
                if (secs > budget_s) over_budget = true;
              }
              break;
          }
          const bool completed = !threw && !over_budget;
          if (!completed) dead[e] = true;

          metrics.emplace_back("completed", completed ? 1.0 : 0.0);
          if (!times.empty()) {
            const bench::Stats s = bench::stats_of(times);
            metrics.emplace_back("mean_s", s.mean);
            metrics.emplace_back("p50_us", s.p50_us);
            metrics.emplace_back("p95_us", s.p95_us);
            metrics.emplace_back("p99_us", s.p99_us);
          }
          char mean_buf[32];
          if (times.empty())
            std::snprintf(mean_buf, sizeof mean_buf, "-");
          else
            std::snprintf(mean_buf, sizeof mean_buf, "%.4fs",
                          bench::stats_of(times).mean);
          std::printf("%-26s %8zu %8zu %10s %12s\n", point.c_str(),
                      t.node_count(), t.bas_count(),
                      completed ? "ok"
                                : (threw ? "capacity" : "over-budget"),
                      mean_buf);
          report.add(point, std::move(metrics));
        }
      }
    }
  }

  report.write(bench::flag_value(argc, argv, "--json"));
  std::printf("\nmodel_zoo is a survey, not a gate: rows with completed=0 "
              "record each engine's frontier\n");
  return 0;
}
