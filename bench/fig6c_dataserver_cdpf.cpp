/// Regenerates Fig. 6c: the deterministic CDPF of the DAG-shaped data
/// server AT (Fig. 5) via the BILP engine, cross-checked against
/// enumeration (2^12 attacks).

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/dataserver.hpp"
#include "core/bilp_method.hpp"
#include "core/enumerative.hpp"
#include "util/timer.hpp"

using namespace atcd;

int main() {
  bench::print_header("Fig. 6c — deterministic CDPF of the data-server AT",
                      "paper Sec. X-B, Fig. 6c");
  const auto m = casestudies::make_dataserver();
  std::printf("model: |N| = %zu, |B| = %zu, treelike = %s\n",
              m.tree.node_count(), m.tree.bas_count(),
              m.tree.is_treelike() ? "yes" : "no");

  Timer t;
  BilpRunStats stats;
  const auto f = cdpf_bilp(m, &stats);
  const double bilp_secs = t.seconds();
  t.restart();
  const auto fe = cdpf_enumerative(m);
  const double enum_secs = t.seconds();

  std::printf("\n%-4s %8s %8s  %-4s %s\n", "A", "cost", "damage", "top",
              "attack");
  int k = 0;
  for (const auto& p : f) {
    if (p.value.cost == 0) continue;
    std::printf("A%-3d %8g %8g  %-4s %s\n", ++k, p.value.cost,
                p.value.damage,
                is_successful(m.tree, p.witness) ? "y" : "n",
                attack_to_string(m.tree, p.witness).c_str());
  }
  std::printf("\npaper Fig. 6c: (250,24,n) (568,60,y) (976,70.8,y) "
              "(1131,75.8,y) (1281,82.8,y); each contains the previous\n");
  std::printf("BILP == enumeration: %s\n",
              f.same_values(fe, 1e-7) ? "yes" : "NO — MISMATCH");
  std::printf("BILP time: %.4fs (%zu ILP solves, %zu B&B nodes); "
              "enumeration: %.4fs (paper: 0.380s vs 79.5s)\n",
              bilp_secs, stats.ilp_solves, stats.bnb_nodes, enum_secs);
  return 0;
}
