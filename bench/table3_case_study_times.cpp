/// Regenerates Table III: computation time of C(E)DPF on the two case
/// studies, per engine, with the true decorations and with 100 random
/// decorations (c ∈ {1..10}, d ∈ {0..10}, p ∈ {0.1..1.0}).
///
/// Uses google-benchmark.  The enumerative method on the panda AT (2^22
/// attacks; the paper measured 34-49 h in Matlab) is gated behind
/// --benchmark_filter to keep default runs quick — it completes in
/// minutes here, but is excluded from the default filter below.

#include <benchmark/benchmark.h>

#include "casestudies/dataserver.hpp"
#include "casestudies/panda.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "util/rng.hpp"

using namespace atcd;

namespace {

CdpAt random_panda(Rng& rng) {
  return randomize_decorations(casestudies::make_panda().tree, rng);
}

CdAt random_dataserver(Rng& rng) {
  return randomize_decorations(casestudies::make_dataserver().tree, rng)
      .deterministic();
}

// ---- True decorations (Table III left half). ----

void BM_Panda_Det_BottomUp_True(benchmark::State& state) {
  const auto m = casestudies::make_panda().deterministic();
  for (auto _ : state) benchmark::DoNotOptimize(cdpf_bottom_up(m));
}
BENCHMARK(BM_Panda_Det_BottomUp_True);

void BM_Panda_Det_Bilp_True(benchmark::State& state) {
  const auto m = casestudies::make_panda().deterministic();
  for (auto _ : state) benchmark::DoNotOptimize(cdpf_bilp(m));
}
BENCHMARK(BM_Panda_Det_Bilp_True);

void BM_Panda_Prob_BottomUp_True(benchmark::State& state) {
  const auto m = casestudies::make_panda();
  for (auto _ : state) benchmark::DoNotOptimize(cedpf_bottom_up(m));
}
BENCHMARK(BM_Panda_Prob_BottomUp_True);

void BM_DataServer_Det_Bilp_True(benchmark::State& state) {
  const auto m = casestudies::make_dataserver();
  for (auto _ : state) benchmark::DoNotOptimize(cdpf_bilp(m));
}
BENCHMARK(BM_DataServer_Det_Bilp_True);

void BM_DataServer_Det_Enumerative_True(benchmark::State& state) {
  const auto m = casestudies::make_dataserver();
  for (auto _ : state) benchmark::DoNotOptimize(cdpf_enumerative(m));
}
BENCHMARK(BM_DataServer_Det_Enumerative_True);

// The paper's 34h entry: full 2^22 enumeration on the panda AT.  Runs in
// minutes in C++; opt in with --benchmark_filter=Panda_Det_Enumerative.
void BM_Panda_Det_Enumerative_True(benchmark::State& state) {
  const auto m = casestudies::make_panda().deterministic();
  for (auto _ : state) benchmark::DoNotOptimize(cdpf_enumerative(m));
}
BENCHMARK(BM_Panda_Det_Enumerative_True)->Iterations(1);

// ---- Random decorations (Table III right half; 100 draws in the
// paper).  Each iteration draws a fresh decoration, like the paper's
// averaged runs; the per-iteration time is the quantity Table III
// reports as mean ± stddev. ----

void BM_Panda_Det_BottomUp_Random(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    const auto m = random_panda(rng).deterministic();
    state.ResumeTiming();
    benchmark::DoNotOptimize(cdpf_bottom_up(m));
  }
}
BENCHMARK(BM_Panda_Det_BottomUp_Random)->Iterations(100);

void BM_Panda_Det_Bilp_Random(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    const auto m = random_panda(rng).deterministic();
    state.ResumeTiming();
    benchmark::DoNotOptimize(cdpf_bilp(m));
  }
}
BENCHMARK(BM_Panda_Det_Bilp_Random)->Iterations(20);

void BM_Panda_Prob_BottomUp_Random(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    const auto m = random_panda(rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(cedpf_bottom_up(m));
  }
}
BENCHMARK(BM_Panda_Prob_BottomUp_Random)->Iterations(100);

void BM_DataServer_Det_Bilp_Random(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    const auto m = random_dataserver(rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(cdpf_bilp(m));
  }
}
BENCHMARK(BM_DataServer_Det_Bilp_Random)->Iterations(100);

void BM_DataServer_Det_Enumerative_Random(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    const auto m = random_dataserver(rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(cdpf_enumerative(m));
  }
}
BENCHMARK(BM_DataServer_Det_Enumerative_Random)->Iterations(100);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table III — C(E)DPF computation time per engine on the case "
      "studies\n(paper, i7 laptop/Matlab:  panda det: BU 0.044s, BILP "
      "0.438s, enum 34h;\n panda prob: BU 0.047s, enum 49h;  data server: "
      "BILP 0.380s, enum 79.5s)\nThe claim reproduced is the ORDERING "
      "BU < BILP << enumerative.\n\n");
  benchmark::Initialize(&argc, argv);
  // Exclude the 2^22 panda enumeration by default (paper: 34 h).
  if (argc == 1) {
    static char filter[] = "--benchmark_filter=-.*Panda_Det_Enumerative.*";
    char* extra[] = {argv[0], filter};
    int extra_argc = 2;
    benchmark::Initialize(&extra_argc, extra);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
