/// Extension bench — the sequential attacker of Sec. VIII ("the attacker
/// may choose to reallocate their budget based on BASs that have
/// succeeded or failed"), which the paper leaves to future work.
///
/// Quantifies the *adaptivity gain*: optimal adaptive expected damage vs
/// the paper's static EDgC, across budgets, on the factory example and on
/// random treelike models.  A large gap means the static model
/// underestimates a reactive adversary at that budget.

#include <cstdio>
#include <vector>

#include "adaptive/adaptive.hpp"
#include "bench/common.hpp"
#include "casestudies/factory.hpp"
#include "core/bottom_up_prob.hpp"
#include "util/rng.hpp"

using namespace atcd;
using namespace atcd::bench;

namespace {

AttackTree random_tree(Rng& rng, std::size_t n_bas) {
  AttackTree t;
  std::vector<NodeId> open;
  for (std::size_t i = 0; i < n_bas; ++i)
    open.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  while (open.size() > 1) {
    const std::size_t arity =
        std::min<std::size_t>(open.size(), 2 + rng.below(2));
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < arity; ++i) {
      const std::size_t pick = rng.below(open.size());
      cs.push_back(open[pick]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    open.push_back(t.add_gate(rng.chance(0.5) ? NodeType::OR : NodeType::AND,
                              "g" + std::to_string(g++), cs));
  }
  t.set_root(open[0]);
  t.finalize();
  return t;
}

}  // namespace

int main() {
  print_header("Extension — adaptive (sequential) attacker vs static EDgC",
               "paper Sec. VIII extensions (left to future work)");

  const auto fac = casestudies::make_factory_probabilistic();
  std::printf("\nfactory running example:\n");
  std::printf("%8s %14s %14s %10s %12s\n", "budget", "static EDgC",
              "adaptive", "gain", "first move");
  for (double budget : {1.0, 3.0, 4.0, 5.0, 6.0}) {
    const auto s = edgc_bottom_up(fac, budget);
    const auto a = adaptive::adaptive_edgc(fac, budget);
    std::printf("%8g %14.4f %14.4f %9.2f%% %12s\n", budget, s.damage,
                a.expected_damage,
                100.0 * (a.expected_damage - s.damage) /
                    std::max(1e-12, s.damage),
                a.first_move == kNoNode
                    ? "-"
                    : fac.tree.name(a.first_move).c_str());
  }

  std::printf("\nrandom treelike models (|B| = 10, paper decorations), "
              "budget = 30%% of total cost:\n");
  Rng rng(909);
  const int trials = 40;
  double sum_gain = 0, max_gain = 0;
  int positive = 0;
  double t_static = 0, t_adaptive = 0;
  for (int it = 0; it < trials; ++it) {
    const auto t = random_tree(rng, 10);
    const auto m = randomize_decorations(t, rng);
    double total = 0;
    for (double c : m.cost) total += c;
    const double budget = 0.3 * total;
    double s_val = 0, a_val = 0;
    t_static += time_once([&] { s_val = edgc_bottom_up(m, budget).damage; });
    t_adaptive += time_once(
        [&] { a_val = adaptive::adaptive_edgc(m, budget).expected_damage; });
    const double gain = (a_val - s_val) / std::max(1e-12, s_val);
    sum_gain += gain;
    max_gain = std::max(max_gain, gain);
    if (gain > 1e-9) ++positive;
  }
  std::printf("adaptivity helps on %d/%d models; mean gain %.2f%%, max "
              "gain %.2f%%\n", positive, trials,
              100.0 * sum_gain / trials, 100.0 * max_gain);
  std::printf("time: static EDgC %.4fs total vs adaptive expectimax %.4fs "
              "total (3^|B| states)\n", t_static, t_adaptive);
  std::printf("\nconclusion: the static model of the paper is a lower "
              "bound on a reactive adversary; the gap is model- and "
              "budget-dependent and can be substantial on AND/OR mixes "
              "with cheap 'probe' steps.\n");
  return 0;
}
