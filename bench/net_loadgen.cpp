/// net_loadgen — concurrent load harness for the network transport
/// (ROADMAP item 1; the PASS-gated socket-vs-pipe comparison of
/// ISSUE 8).
///
/// N client connections (default 16) replay mixed traffic against an
/// in-process net::Server: zipf-repeated solves over a model pool
/// (cdpf and budgeted dgc), small analysis sweeps, and lockstep
/// session chains (open -> set-cost edit -> resolve -> close).  The
/// identical logical workload then replays through N concurrent
/// in-memory serving loops — the stdin-pipe transport minus the
/// kernel — on a twin dispatcher, giving an equal-thread-count
/// baseline that isolates exactly the socket overhead.
///
/// PASS gate:
///   * byte parity: every solve/sweep/resolve/edit/close response is
///     byte-identical between the two transports (after normalizing
///     the one legitimately scheduling-dependent member, the solve
///     cache disposition "hit"/"miss"/"coalesced"; session-open
///     responses carry allocation-order session numbers and are
///     excluded).
///   * throughput: the socket transport stays within 4x of the
///     in-memory pipe at equal concurrency (lockstep clients pay one
///     loopback RTT per request, so parity of *throughput* is not
///     expected — unboundedly worse is what the gate catches).
///
/// Reports throughput and p50/p95/p99 client-side latency per
/// transport and writes BENCH_net_throughput.json.
///
///   bench_net_loadgen [--smoke] [--full] [--conns N] [--json <path>]

#include <atomic>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "api/server.hpp"
#include "bench/common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace atcd {
namespace {

using namespace atcd::api;

// ---------------------------------------------------------------------------
// Workload: a deterministic per-connection request stream.
// ---------------------------------------------------------------------------

constexpr std::size_t kPoolSize = 16;

std::string pool_model(std::size_t k) {
  const std::size_t leaves = 3 + k % 4;
  std::string m;
  for (std::size_t i = 0; i < leaves; ++i)
    m += "bas l" + std::to_string(i) + " cost=" +
         std::to_string(1 + (k * 7 + i * 3) % 9) + " damage=" +
         std::to_string(1 + (k * 5 + i * 2) % 7) + "\n";
  m += "or root = l0";
  for (std::size_t i = 1; i < leaves; ++i) m += ", l" + std::to_string(i);
  m += " damage=" + std::to_string(5 + k % 9) + "\n";
  return m;
}

/// Zipf-ish rank sampler over the model pool: rank k with weight
/// 1/(k+1), so a handful of hot models dominate — the repeat-heavy
/// traffic shape the result cache exists for.
std::size_t zipf_pick(Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform() * cdf.back();
  for (std::size_t k = 0; k < cdf.size(); ++k)
    if (u <= cdf[k]) return k;
  return cdf.size() - 1;
}

/// One connection's lockstep request generator.  next() hands out the
/// encoded request lines one by one; session chains consume the
/// previous response to learn their session id, exactly like a real
/// lockstep client.  The same object drives a socket client and an
/// in-memory serving loop, so both transports see identical bytes.
class ConnScript {
 public:
  ConnScript(std::size_t conn, std::size_t n_requests,
             const std::vector<std::string>* pool,
             const std::vector<double>* cdf)
      : conn_(conn), n_(n_requests), pool_(pool), cdf_(cdf),
        rng_(0x10ad0000 + conn) {}

  /// The id of the line most recently returned by next().
  const std::string& last_id() const { return last_id_; }

  /// Ids whose responses take part in the byte-parity check (all but
  /// session opens, whose payload carries the allocation-order session
  /// number).
  const std::vector<std::string>& parity_ids() const { return parity_ids_; }

  std::optional<std::string> next(const std::string& prev_response) {
    if (i_ >= n_) return std::nullopt;
    Request r;
    r.id = "c";
    r.id += std::to_string(conn_);
    r.id += "-";
    r.id += std::to_string(i_);
    last_id_ = r.id;
    bool parity = true;
    switch (i_ % 24) {
      case 7: {  // session chain: open …
        SessionOpenRequest o;
        o.spec = {engine::Problem::Dgc, 5.0, true, "",
                  (*pool_)[conn_ % kPoolSize]};
        r.op = std::move(o);
        parity = false;  // the payload is the session number
        break;
      }
      case 8: {  // … edit …
        SessionEditRequest e;
        e.session = session_of(prev_response);
        e.op = EditOp::SetCost;
        e.target = "l0";
        e.value = 1.0 + static_cast<double>(i_ % 7);
        r.op = std::move(e);
        break;
      }
      case 9: {  // … resolve …
        SessionResolveRequest res;
        res.session = last_session_;
        r.op = res;
        break;
      }
      case 10: {  // … close.
        SessionCloseRequest c;
        c.session = last_session_;
        r.op = c;
        break;
      }
      case 15: {  // small analysis sweep
        AnalyzeSweepRequest a;
        a.problem = engine::Problem::Dgc;
        a.axes = {"cost:l0:1:3:3"};
        a.bound = 4.0;
        a.has_bound = true;
        a.model = (*pool_)[(conn_ + i_) % kPoolSize];
        r.op = std::move(a);
        break;
      }
      default: {  // zipf-repeated solve
        const std::size_t k = zipf_pick(rng_, *cdf_);
        SolveRequest s;
        if (k % 2 == 0)
          s.spec = {engine::Problem::Cdpf, 0.0, false, "", (*pool_)[k]};
        else
          s.spec = {engine::Problem::Dgc,
                    1.0 + static_cast<double>(k % 5), true, "", (*pool_)[k]};
        r.op = std::move(s);
        break;
      }
    }
    if (parity) parity_ids_.push_back(r.id);
    ++i_;
    return encode_request(r);
  }

 private:
  std::uint64_t session_of(const std::string& response) {
    const Decoded<Response> dec = decode_response(response);
    if (dec.code == ErrorCode::Ok)
      if (const auto* p =
              std::get_if<SessionOpenedPayload>(&dec.value.payload))
        last_session_ = p->session;
    return last_session_;
  }

  std::size_t conn_;
  std::size_t n_;
  const std::vector<std::string>* pool_;
  const std::vector<double>* cdf_;
  Rng rng_;
  std::size_t i_ = 0;
  std::uint64_t last_session_ = 0;
  std::string last_id_;
  std::vector<std::string> parity_ids_;
};

/// Blanks the solve cache-disposition member: whether a repeated solve
/// reads "hit", "miss", or "coalesced" depends on cross-connection
/// arrival order — the payload values are identical either way.
std::string normalize(std::string line) {
  const std::string key = "\"cache\":\"";
  const std::size_t p = line.find(key);
  if (p == std::string::npos) return line;
  const std::size_t v = p + key.size();
  const std::size_t q = line.find('"', v);
  if (q == std::string::npos) return line;
  return line.substr(0, v) + "x" + line.substr(q);
}

struct ConnResult {
  std::map<std::string, std::string> responses;  ///< id -> normalized line
  std::vector<double> latencies;                 ///< seconds per request
  std::vector<std::string> parity_ids;
  bool ok = true;
};

// ---------------------------------------------------------------------------
// The two transports under comparison.
// ---------------------------------------------------------------------------

ConnResult run_socket_conn(std::uint16_t port, std::size_t conn,
                           std::size_t n_requests,
                           const std::vector<std::string>* pool,
                           const std::vector<double>* cdf) {
  ConnResult out;
  std::string err;
  net::Client client("127.0.0.1", port, &err);
  if (!client.valid()) {
    std::fprintf(stderr, "loadgen: connect failed: %s\n", err.c_str());
    out.ok = false;
    return out;
  }
  ConnScript script(conn, n_requests, pool, cdf);
  std::string prev, resp;
  Timer t;
  while (auto line = script.next(prev)) {
    t.restart();
    if (!client.request(*line, &resp)) {
      out.ok = false;
      return out;
    }
    out.latencies.push_back(t.seconds());
    out.responses[script.last_id()] = normalize(resp);
    prev = resp;
  }
  out.parity_ids = script.parity_ids();
  // Half-close and collect the server's structured shutdown response —
  // the orderly end of a JSON-lines connection.
  client.half_close();
  std::string last;
  while (client.read_line(&resp)) last = resp;
  if (last.find("\"kind\":\"shutdown\"") == std::string::npos) {
    std::fprintf(stderr, "loadgen: conn %zu missing shutdown line\n", conn);
    out.ok = false;
  }
  return out;
}

/// The in-memory twin of a socket connection: the same ConnScript fed
/// straight into the serving core, no kernel in between.
class ScriptedTransport final : public LineTransport {
 public:
  ScriptedTransport(ConnScript script, ConnResult* out)
      : script_(std::move(script)), out_(out) {}

  ReadStatus read_line(std::string& line, std::size_t) override {
    const std::optional<std::string> next = script_.next(prev_);
    if (!next) return ReadStatus::Eof;
    line = *next;
    pending_ = true;
    timer_.restart();
    return ReadStatus::Line;
  }

  bool write_line(const std::string& line) override {
    if (pending_) {  // the final shutdown response has no pending request
      out_->latencies.push_back(timer_.seconds());
      out_->responses[script_.last_id()] = normalize(line);
      prev_ = line;
      pending_ = false;
    }
    return true;
  }

  void finish() { out_->parity_ids = script_.parity_ids(); }

 private:
  ConnScript script_;
  ConnResult* out_;
  std::string prev_;
  bool pending_ = false;
  Timer timer_;
};

// ---------------------------------------------------------------------------

struct TransportRun {
  double wall_s = 0.0;
  std::size_t requests = 0;
  bench::Stats lat;
  std::map<std::string, std::string> responses;
  std::vector<std::string> parity_ids;
  bool ok = true;
};

TransportRun merge(std::vector<ConnResult>& conns, double wall_s) {
  TransportRun run;
  run.wall_s = wall_s;
  std::vector<double> lats;
  for (ConnResult& c : conns) {
    run.ok = run.ok && c.ok;
    run.requests += c.latencies.size();
    lats.insert(lats.end(), c.latencies.begin(), c.latencies.end());
    run.responses.insert(c.responses.begin(), c.responses.end());
    run.parity_ids.insert(run.parity_ids.end(), c.parity_ids.begin(),
                          c.parity_ids.end());
  }
  run.lat = bench::stats_of(lats);
  return run;
}

}  // namespace
}  // namespace atcd

int main(int argc, char** argv) {
  using namespace atcd;
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool full = bench::has_flag(argc, argv, "--full");
  std::size_t conns = 16;
  if (const std::string v = bench::flag_value(argc, argv, "--conns");
      !v.empty())
    conns = std::strtoull(v.c_str(), nullptr, 10);
  const std::size_t per_conn = smoke ? 48 : (full ? 960 : 240);

  bench::print_header("net_loadgen — socket vs in-memory pipe, mixed traffic",
                      "ROADMAP item 1 (network transport load harness)");
  std::printf("conns=%zu requests/conn=%zu (zipf solves + sweeps + session "
              "chains)\n\n",
              conns, per_conn);

  std::vector<std::string> pool;
  for (std::size_t k = 0; k < kPoolSize; ++k) pool.push_back(pool_model(k));
  std::vector<double> cdf;
  double acc = 0.0;
  for (std::size_t k = 0; k < kPoolSize; ++k) {
    acc += 1.0 / static_cast<double>(k + 1);
    cdf.push_back(acc);
  }

  // --- Socket transport. -------------------------------------------------
  api::Dispatcher socket_dispatcher;
  net::ServerOptions nopt;
  nopt.max_conns = conns + 4;
  net::Server server(socket_dispatcher, nopt);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "loadgen: server start failed: %s\n", err.c_str());
    return 1;
  }
  std::vector<ConnResult> socket_conns(conns);
  Timer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c)
      clients.emplace_back([&, c] {
        socket_conns[c] =
            run_socket_conn(server.port(), c, per_conn, &pool, &cdf);
      });
    for (auto& th : clients) th.join();
  }
  const double socket_wall = wall.seconds();
  server.request_drain();
  server.wait();
  TransportRun socket_run = merge(socket_conns, socket_wall);

  // --- In-memory pipe baseline (twin dispatcher, equal concurrency). -----
  api::Dispatcher pipe_dispatcher;
  std::vector<ConnResult> pipe_conns(conns);
  wall.restart();
  {
    std::vector<std::thread> streams;
    streams.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c)
      streams.emplace_back([&, c] {
        ScriptedTransport t(ConnScript(c, per_conn, &pool, &cdf),
                            &pipe_conns[c]);
        api::serve_lines(t, pipe_dispatcher, {});
        t.finish();
      });
    for (auto& th : streams) th.join();
  }
  const double pipe_wall = wall.seconds();
  TransportRun pipe_run = merge(pipe_conns, pipe_wall);

  // --- Parity. ------------------------------------------------------------
  std::size_t mismatches = 0;
  for (const std::string& id : socket_run.parity_ids) {
    const auto a = socket_run.responses.find(id);
    const auto b = pipe_run.responses.find(id);
    if (a == socket_run.responses.end() || b == pipe_run.responses.end() ||
        a->second != b->second) {
      if (++mismatches <= 3)
        std::fprintf(stderr,
                     "parity mismatch id=%s\n  socket: %s\n  pipe:   %s\n",
                     id.c_str(),
                     a == socket_run.responses.end() ? "<missing>"
                                                     : a->second.c_str(),
                     b == pipe_run.responses.end() ? "<missing>"
                                                   : b->second.c_str());
    }
  }
  const bool parity_ok = mismatches == 0 && socket_run.ok && pipe_run.ok &&
                         !socket_run.parity_ids.empty();

  const double socket_rps =
      static_cast<double>(socket_run.requests) / socket_run.wall_s;
  const double pipe_rps =
      static_cast<double>(pipe_run.requests) / pipe_run.wall_s;
  const double ratio = pipe_rps / socket_rps;

  std::printf("socket : %6zu req  %7.3f s  %9.0f req/s  p50=%.0fus "
              "p95=%.0fus p99=%.0fus\n",
              socket_run.requests, socket_run.wall_s, socket_rps,
              socket_run.lat.p50_us, socket_run.lat.p95_us,
              socket_run.lat.p99_us);
  std::printf("pipe   : %6zu req  %7.3f s  %9.0f req/s  p50=%.0fus "
              "p95=%.0fus p99=%.0fus\n",
              pipe_run.requests, pipe_run.wall_s, pipe_rps, pipe_run.lat.p50_us,
              pipe_run.lat.p95_us, pipe_run.lat.p99_us);
  std::printf("pipe/socket throughput ratio: %.2fx (gate: <= 4x)\n", ratio);
  std::printf("parity: %s (%zu ids compared, %zu mismatches)\n",
              parity_ok ? "ok" : "FAILED", socket_run.parity_ids.size(),
              mismatches);

  bench::JsonReport report("net_throughput");
  report.add("socket/mixed",
             {{"conns", static_cast<double>(conns)},
              {"requests", static_cast<double>(socket_run.requests)},
              {"wall_s", socket_run.wall_s},
              {"rps", socket_rps},
              {"p50_us", socket_run.lat.p50_us},
              {"p95_us", socket_run.lat.p95_us},
              {"p99_us", socket_run.lat.p99_us}});
  report.add("pipe/mixed",
             {{"conns", static_cast<double>(conns)},
              {"requests", static_cast<double>(pipe_run.requests)},
              {"wall_s", pipe_run.wall_s},
              {"rps", pipe_rps},
              {"p50_us", pipe_run.lat.p50_us},
              {"p95_us", pipe_run.lat.p95_us},
              {"p99_us", pipe_run.lat.p99_us}});
  report.add("gate", {{"pipe_over_socket", ratio},
                      {"parity_ok", parity_ok ? 1.0 : 0.0}});
  report.write(bench::flag_value(argc, argv, "--json"));

  const bool pass = parity_ok && ratio <= 4.0;
  std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
