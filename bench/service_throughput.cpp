/// service_throughput — replays a mixed text-protocol workload against
/// the solve service with the cache on and off, demonstrating the
/// serving-layer win: on a 90%-repeat workload the cached path must be
/// >= 10x faster than solving every request.
///
/// Workload model: a pool of P random treelike models (~B BASs each,
/// solved exactly with the enumerative engine so a single solve is
/// genuinely expensive).  A request stream of N requests is generated per
/// repeat rate r: with probability r the request re-issues an earlier
/// request's text verbatim; otherwise it submits a *fresh isomorphic
/// permutation* of a pool model (renamed nodes, shuffled child lists) —
/// textually new, semantically known.  Canonical hashing is what lets the
/// cache absorb both kinds, so the cached path performs only P distinct
/// solves per sweep point.
///
/// A warm-restart scenario rides along: the 90%-repeat stream fills a
/// cached service, the caches are snapshotted (src/persist/), a fresh
/// service loads the snapshot, and the same stream replays against it.
/// The restored cache must retain >= 90% of the pre-restart hit rate
/// (it actually exceeds it: after a warm load even the stream's first
/// occurrences hit).
///
/// Usage: bench_service_throughput [--requests N] [--pool P] [--bas B]
///                                 [--smoke] [--json <path>]
///   --smoke: small pool/stream for CI smoke runs (same gates).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "at/parser.hpp"
#include "bench/common.hpp"
#include "core/cdat.hpp"
#include "persist/snapshot.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace atcd;

namespace {

/// Treelike random model with exactly n_bas leaves (same construction as
/// the test helpers, kept local so the bench stays standalone).
AttackTree random_tree(Rng& rng, std::size_t n_bas) {
  AttackTree t;
  std::vector<NodeId> open;
  for (std::size_t i = 0; i < n_bas; ++i)
    open.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  while (open.size() > 1) {
    const std::size_t arity =
        std::min<std::size_t>(open.size(), 2 + rng.below(2));
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < arity; ++i) {
      const std::size_t pick = rng.below(open.size());
      cs.push_back(open[pick]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    open.push_back(t.add_gate(rng.chance(0.5) ? NodeType::OR : NodeType::AND,
                              "g" + std::to_string(g++), cs));
  }
  t.set_root(open[0]);
  t.finalize();
  return t;
}

/// Re-serializes a model with renamed nodes and shuffled child lists:
/// textually different, canonically identical.
std::string permuted_text(const CdAt& m, Rng& rng, int salt) {
  AttackTree t;
  const std::string tag = "p" + std::to_string(salt) + "_";
  for (NodeId v = 0; v < static_cast<NodeId>(m.tree.node_count()); ++v) {
    const auto& n = m.tree.node(v);
    if (n.type == NodeType::BAS) {
      t.add_bas(tag + n.name);
    } else {
      std::vector<NodeId> cs = n.children;
      for (std::size_t i = cs.size(); i > 1; --i)
        std::swap(cs[i - 1], cs[rng.below(i)]);
      t.add_gate(n.type, tag + n.name, std::move(cs));
    }
  }
  t.set_root(m.tree.root());
  t.finalize();
  return serialize_model(t, m.cost, m.damage, nullptr);
}

struct RunStats {
  double seconds = 0;
  std::size_t solves = 0;  // backend invocations (insertions ~= solves)
  std::uint64_t hits = 0;
  std::vector<double> request_s;  // per-request wall times
};

RunStats replay_into(service::SolveService& svc,
                     const std::vector<std::string>& texts, bool cache_on) {
  RunStats s;
  s.request_s.reserve(texts.size());
  Timer timer;
  for (const auto& text : texts) {
    Timer per_request;
    const auto r = svc.handle(service::Request::of_text(
        engine::Problem::Cdpf, text, 0.0, "enumerative"));
    s.request_s.push_back(per_request.seconds());
    if (!r.result.ok) {
      std::fprintf(stderr, "solve failed: %s\n", r.result.error.c_str());
      std::exit(1);
    }
  }
  s.seconds = timer.seconds();
  const auto cs = svc.cache().stats();
  s.hits = cs.hits;
  s.solves = cache_on ? cs.insertions : texts.size();
  return s;
}

RunStats replay(const std::vector<std::string>& texts, bool cache_on) {
  service::SolveService::Options opt;
  opt.enable_cache = cache_on;
  service::SolveService svc(opt);
  return replay_into(svc, texts, cache_on);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  std::size_t requests = smoke ? 80 : 240, pool = smoke ? 3 : 6,
              bas = smoke ? 10 : 14;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--pool") == 0 && i + 1 < argc)
      pool = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--bas") == 0 && i + 1 < argc)
      bas = std::strtoull(argv[++i], nullptr, 10);
  }

  Rng rng(20230707);
  std::vector<CdAt> models;
  for (std::size_t i = 0; i < pool; ++i)
    models.push_back(randomize_decorations(random_tree(rng, bas), rng)
                         .deterministic());

  std::printf("service_throughput: pool=%zu models, %zu BASs each, "
              "enumerative CDPF, %zu requests per sweep point\n",
              pool, bas, requests);
  std::printf("%8s %10s %10s %12s %12s %9s\n", "repeat", "solves", "hits",
              "req/s(off)", "req/s(on)", "speedup");

  bench::JsonReport report("service_throughput");
  double speedup_at_90 = 0;
  int salt = 0;
  for (const double repeat : {0.5, 0.9, 0.99}) {
    std::vector<std::string> texts;
    texts.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      if (!texts.empty() && rng.chance(repeat))
        texts.push_back(texts[rng.below(texts.size())]);
      else
        texts.push_back(
            permuted_text(models[rng.below(models.size())], rng, salt++));
    }
    const RunStats off = replay(texts, /*cache_on=*/false);
    const RunStats on = replay(texts, /*cache_on=*/true);
    const double tp_off = static_cast<double>(requests) / off.seconds;
    const double tp_on = static_cast<double>(requests) / on.seconds;
    const double speedup = tp_on / tp_off;
    if (repeat == 0.9) speedup_at_90 = speedup;
    std::printf("%7.0f%% %10zu %10llu %12.0f %12.0f %8.1fx\n", repeat * 100,
                on.solves, static_cast<unsigned long long>(on.hits), tp_off,
                tp_on, speedup);

    // Percentiles come from the cached path (the serving configuration);
    // the uncached path's digest rides along with an off_ prefix.
    const bench::Stats on_stats = bench::stats_of(on.request_s);
    const bench::Stats off_stats = bench::stats_of(off.request_s);
    std::vector<std::pair<std::string, double>> metrics = {
        {"repeat_pct", repeat * 100.0},
        {"solves", static_cast<double>(on.solves)},
        {"hits", static_cast<double>(on.hits)},
        {"req_s_off", tp_off},
        {"req_s_on", tp_on},
        {"speedup", speedup},
        {"p50_us", on_stats.p50_us},
        {"p95_us", on_stats.p95_us},
        {"p99_us", on_stats.p99_us},
        {"off_p50_us", off_stats.p50_us},
        {"off_p99_us", off_stats.p99_us}};
    char row[32];
    std::snprintf(row, sizeof row, "repeat%.0f", repeat * 100);
    report.add(row, std::move(metrics));
  }
  // Warm restart: fill the caches with the 90%-repeat stream, snapshot,
  // load into a *fresh* service, replay the same stream.  The restored
  // cache must retain >= 90% of the pre-restart hit rate.
  std::vector<std::string> warm_texts;
  warm_texts.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    if (!warm_texts.empty() && rng.chance(0.9))
      warm_texts.push_back(warm_texts[rng.below(warm_texts.size())]);
    else
      warm_texts.push_back(
          permuted_text(models[rng.below(models.size())], rng, salt++));
  }
  service::SolveService filled;
  const RunStats before = replay_into(filled, warm_texts, /*cache_on=*/true);
  const double rate_before =
      static_cast<double>(before.hits) / static_cast<double>(requests);

  const std::string snap_path = "/tmp/atcd_bench_snapshot_" +
                                std::to_string(::getpid()) + ".atcd";
  persist::SnapshotInfo info;
  std::string persist_err;
  Timer save_timer;
  if (!persist::save_snapshot(snap_path, filled.cache(),
                              filled.subtree_cache(), &info, &persist_err)) {
    std::fprintf(stderr, "snapshot save failed: %s\n", persist_err.c_str());
    return 1;
  }
  const double save_ms = save_timer.seconds() * 1e3;

  service::SolveService restarted;
  Timer load_timer;
  if (persist::load_snapshot(snap_path, &restarted.cache(),
                             &restarted.subtree_cache(), nullptr,
                             &persist_err) != persist::LoadStatus::Ok) {
    std::fprintf(stderr, "snapshot load failed: %s\n", persist_err.c_str());
    return 1;
  }
  const double load_ms = load_timer.seconds() * 1e3;
  ::unlink(snap_path.c_str());

  const RunStats after =
      replay_into(restarted, warm_texts, /*cache_on=*/true);
  const double rate_after =
      static_cast<double>(after.hits) / static_cast<double>(requests);
  const double hit_retention = rate_before > 0 ? rate_after / rate_before : 0;

  std::printf("\nwarm restart: %llu/%zu hits before, %llu/%zu after "
              "(retention %.2fx; snapshot %zu bytes, save %.1fms, "
              "load %.1fms)\n",
              static_cast<unsigned long long>(before.hits), requests,
              static_cast<unsigned long long>(after.hits), requests,
              hit_retention, info.bytes, save_ms, load_ms);

  report.add("warm_restart",
             {{"requests", static_cast<double>(requests)},
              {"hits_before", static_cast<double>(before.hits)},
              {"hits_after", static_cast<double>(after.hits)},
              {"hit_rate_before", rate_before},
              {"hit_rate_after", rate_after},
              {"hit_retention", hit_retention},
              {"snapshot_bytes", static_cast<double>(info.bytes)},
              {"save_ms", save_ms},
              {"load_ms", load_ms}});
  report.write(bench::flag_value(argc, argv, "--json"));

  const bool speedup_ok = speedup_at_90 >= 10.0;
  const bool warm_ok = rate_after >= 0.9 * rate_before;
  std::printf("\n90%%-repeat workload speedup: %.1fx (requirement: >= 10x) "
              "— %s\n",
              speedup_at_90, speedup_ok ? "PASS" : "FAIL");
  std::printf("warm-restart hit retention: %.2fx (requirement: >= 0.9x) "
              "— %s\n",
              hit_retention, warm_ok ? "PASS" : "FAIL");
  return speedup_ok && warm_ok ? 0 : 1;
}
