/// incremental_edits — quantifies the incremental-session win: after k
/// random leaf cost edits, how much faster is a session re-solve (which
/// recomputes only the dirtied root-paths, pulling every untouched
/// subtree's front from the per-session memo) than a full from-scratch
/// solve of the same edited model?
///
/// Sweeps the edit rate (edits per re-solve) at several depths on
/// complete binary AND/OR trees with paper-range random decorations.
/// Two problem settings:
///
///   * dgc  (budget-pruned sweep): per-node fronts stay small, so the
///     per-node work is roughly uniform and the speedup approaches
///     #nodes / #dirty-path-nodes — the headline case, required to be
///     >= 5x for single-leaf edits at depth 8.
///   * cdpf (full fronts): fronts grow toward the root and the root-path
///     recombination dominates, so the speedup is structurally smaller —
///     reported for honesty about the regime.
///
/// Usage: bench_incremental_edits [--rounds N] [--depths "6 8"] [--full]

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/cdat.hpp"
#include "engine/batch.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"

using namespace atcd;

namespace {

/// Complete binary tree of the given depth, alternating OR/AND levels,
/// with Sec. X random decorations.
CdAt complete_binary_model(Rng& rng, int depth) {
  AttackTree t;
  std::vector<NodeId> level;
  const std::size_t n_leaves = std::size_t{1} << depth;
  for (std::size_t i = 0; i < n_leaves; ++i)
    level.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  for (int d = depth; d > 0; --d) {
    const NodeType type = d % 2 ? NodeType::OR : NodeType::AND;
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(t.add_gate(type, "g" + std::to_string(g++),
                                {level[i], level[i + 1]}));
    level = std::move(next);
  }
  t.set_root(level[0]);
  t.finalize();
  return randomize_decorations(t, rng).deterministic();
}

struct Case {
  engine::Problem problem;
  double bound;
  const char* label;
};

struct Row {
  int depth;
  std::size_t edits;
  double scratch_us;
  double session_us;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  std::size_t rounds = full ? 60 : 25;
  if (const std::string v = bench::flag_value(argc, argv, "--rounds");
      !v.empty())
    rounds = std::strtoull(v.c_str(), nullptr, 10);
  std::vector<int> depths{6, 8};
  if (const std::string v = bench::flag_value(argc, argv, "--depths");
      !v.empty()) {
    depths.clear();
    std::istringstream in(v);
    for (int d; in >> d;) depths.push_back(d);
  }
  const std::vector<std::size_t> edit_rates{1, 2, 4, 8, 16};

  std::printf(
      "incremental_edits: session re-solve vs full re-solve after k "
      "random leaf cost edits\n"
      "(complete binary trees, %zu rounds per point; times are "
      "mean microseconds per re-solve)\n\n",
      rounds);

  const Case cases[] = {
      {engine::Problem::Dgc, 15.0, "dgc(U=15)"},
      {engine::Problem::Cdpf, 0.0, "cdpf"},
  };

  bool dgc_depth8_single_ok = false;
  double dgc_depth8_single_speedup = 0.0;
  bench::JsonReport report("incremental_edits");

  for (const Case& c : cases) {
    std::printf("%-10s %6s %6s %14s %14s %9s\n", c.label, "depth", "edits",
                "scratch(us)", "session(us)", "speedup");
    for (const int depth : depths) {
      Rng rng(0xBE7Cull * 97 + static_cast<std::uint64_t>(depth));
      const CdAt base = complete_binary_model(rng, depth);

      for (const std::size_t k : edit_rates) {
        service::Session::Options sopt;
        sopt.problem = c.problem;
        sopt.bound = c.bound;
        service::Session session(base, std::move(sopt));
        // Warm the memo: the first resolve is the cold full solve.
        if (!session.resolve().result.ok) {
          std::fprintf(stderr, "cold resolve failed\n");
          return 1;
        }

        std::vector<double> scratch_rounds_s, session_rounds_s;
        for (std::size_t round = 0; round < rounds; ++round) {
          // k random leaf cost edits between re-solves.
          for (std::size_t e = 0; e < k; ++e) {
            const std::string leaf =
                "b" + std::to_string(rng.below(base.tree.bas_count()));
            if (!session.set_cost(leaf, double(rng.range(1, 10))).empty()) {
              std::fprintf(stderr, "edit failed\n");
              return 1;
            }
          }
          service::Response r;
          session_rounds_s.push_back(
              bench::time_once([&] { r = session.resolve(); }));
          if (!r.result.ok) {
            std::fprintf(stderr, "resolve failed: %s\n",
                         r.result.error.c_str());
            return 1;
          }
          // Scratch baseline: solve the identical effective model from
          // nothing (no memo, no caches).
          const auto snap = session.snapshot_det();
          engine::Instance in;
          in.problem = c.problem;
          in.det = snap.get();
          in.bound = c.bound;
          engine::SolveResult ref;
          scratch_rounds_s.push_back(
              bench::time_once([&] { ref = engine::solve_one(in); }));
          if (!ref.ok) {
            std::fprintf(stderr, "scratch solve failed: %s\n",
                         ref.error.c_str());
            return 1;
          }
          // Equivalence guard: a bench that drifts from correctness is
          // measuring nothing.
          const bool same =
              engine::is_front(c.problem)
                  ? r.result.front.same_values(ref.front)
                  : r.result.attack.feasible == ref.attack.feasible &&
                        (!ref.attack.feasible ||
                         (r.result.attack.cost == ref.attack.cost &&
                          r.result.attack.damage == ref.attack.damage));
          if (!same) {
            std::fprintf(stderr, "MISMATCH: session != scratch\n");
            return 1;
          }
        }
        const bench::Stats scratch_stats = bench::stats_of(scratch_rounds_s);
        const bench::Stats session_stats = bench::stats_of(session_rounds_s);
        const double scratch_us = scratch_stats.mean * 1e6;
        const double session_us = session_stats.mean * 1e6;
        // Median-over-median: robust to one hiccuped round (see
        // arena_hotpath).
        const double speedup = bench::median_of(scratch_rounds_s) /
                               bench::median_of(session_rounds_s);
        std::printf("%-10s %6d %6zu %14.1f %14.1f %8.1fx\n", "", depth, k,
                    scratch_us, session_us, speedup);
        report.add(std::string(c.label) + "/depth" + std::to_string(depth) +
                       "/edits" + std::to_string(k),
                   {{"scratch_us", scratch_us},
                    {"session_us", session_us},
                    {"speedup", speedup},
                    {"p50_us", session_stats.p50_us},
                    {"p95_us", session_stats.p95_us},
                    {"p99_us", session_stats.p99_us}});
        if (c.problem == engine::Problem::Dgc && depth == 8 && k == 1) {
          dgc_depth8_single_ok = speedup >= 5.0;
          dgc_depth8_single_speedup = speedup;
        }
      }
    }
    std::printf("\n");
  }

  std::printf(
      "headline: dgc depth-8 single-leaf-edit session re-solve is %.1fx "
      "the full re-solve (target >= 5x): %s\n",
      dgc_depth8_single_speedup, dgc_depth8_single_ok ? "PASS" : "FAIL");
  report.write(bench::flag_value(argc, argv, "--json"));
  return dgc_depth8_single_ok ? 0 : 1;
}
