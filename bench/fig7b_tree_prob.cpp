/// Regenerates Fig. 7b: mean CEDPF computation time on Ttree,
/// probabilistic setting — enumeration vs bottom-up.  Paper shape:
/// probabilistic BU is slower than deterministic BU on large ATs (fronts
/// are larger, Example 10), but still orders of magnitude below
/// enumeration.
///
/// Engines are resolved by name through the engine registry; pass
/// --engine <name> to time a single registered backend.

#include "bench/fig7_common.hpp"

using namespace atcd;
using namespace atcd::bench;

int main(int argc, char** argv) {
  print_header("Fig. 7b — Ttree, probabilistic CEDPF",
               "paper Sec. X-D, Fig. 7b (Enum/BU)");
  const auto opt = fig7_options(argc, argv, /*treelike=*/true);
  const auto summary = run_fig7(opt, engine::Problem::Cedpf,
                                {
                                    {"enumerative", 18},
                                    {"bottom-up"},
                                });
  JsonReport report("fig7b");
  for (const auto& [name, s] : summary) report.add(name, stats_metrics(s));
  report.write(flag_value(argc, argv, "--json"));
  return 0;
}
