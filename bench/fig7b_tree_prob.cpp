/// Regenerates Fig. 7b: mean CEDPF computation time on Ttree,
/// probabilistic setting — enumeration vs bottom-up.  Paper shape:
/// probabilistic BU is slower than deterministic BU on large ATs (fronts
/// are larger, Example 10), but still orders of magnitude below
/// enumeration.

#include "bench/fig7_common.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"

using namespace atcd;
using namespace atcd::bench;

int main(int argc, char** argv) {
  print_header("Fig. 7b — Ttree, probabilistic CEDPF",
               "paper Sec. X-D, Fig. 7b (Enum/BU)");
  auto opt = fig7_options(argc, argv, /*treelike=*/true);
  run_fig7(opt,
           {
               {"enum",
                [](const CdpAt& m) {
                  (void)cedpf_enumerative(m, 18);
                  return true;
                },
                18},
               {"bottom-up",
                [](const CdpAt& m) {
                  (void)cedpf_bottom_up(m);
                  return true;
                }},
           });
  return 0;
}
