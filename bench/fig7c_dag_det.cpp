/// Regenerates Fig. 7c: mean CDPF computation time on the random DAG
/// suite TDAG, deterministic setting — enumeration vs BILP.  (Bottom-up
/// does not apply: sub-AT attack spaces overlap on DAGs.)
///
/// Engines are resolved by name through the engine registry; pass
/// --engine <name> to time a single registered backend.

#include "bench/fig7_common.hpp"

using namespace atcd;
using namespace atcd::bench;

int main(int argc, char** argv) {
  print_header("Fig. 7c — TDAG, deterministic CDPF",
               "paper Sec. X-D, Fig. 7c (Enum/BILP over 500 random DAG "
               "ATs)");
  auto opt = fig7_options(argc, argv, /*treelike=*/false);
  if (!has_flag(argc, argv, "--full")) opt.max_n = 50;
  const auto summary = run_fig7(opt, engine::Problem::Cdpf,
                                {
                                    {"enumerative", 20},
                                    {"bilp"},
                                });
  JsonReport report("fig7c");
  for (const auto& [name, s] : summary) report.add(name, stats_metrics(s));
  report.write(flag_value(argc, argv, "--json"));
  return 0;
}
