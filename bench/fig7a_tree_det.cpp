/// Regenerates Fig. 7a: mean CDPF computation time on the random treelike
/// suite Ttree, deterministic setting — enumeration vs bottom-up vs BILP.
/// Paper shape to reproduce: BU < BILP << enumeration, with enumeration
/// only feasible on the smallest groups.
///
/// Engines are resolved by name through the engine registry; pass
/// --engine <name> to time a single (possibly non-default) backend, e.g.
/// --engine nsga2.

#include "bench/fig7_common.hpp"

using namespace atcd;
using namespace atcd::bench;

int main(int argc, char** argv) {
  print_header("Fig. 7a — Ttree, deterministic CDPF",
               "paper Sec. X-D, Fig. 7a (Enum/BU/BILP over 500 random "
               "treelike ATs)");
  const auto opt = fig7_options(argc, argv, /*treelike=*/true);
  const auto summary =
      run_fig7(opt, engine::Problem::Cdpf,
               {
                   {"enumerative", 20},  // paper: enumeration only for N < 30
                   {"bottom-up"},
                   {"bilp"},
               });
  JsonReport report("fig7a");
  for (const auto& [name, s] : summary) report.add(name, stats_metrics(s));
  report.write(flag_value(argc, argv, "--json"));
  return 0;
}
