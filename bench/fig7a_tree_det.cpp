/// Regenerates Fig. 7a: mean CDPF computation time on the random treelike
/// suite Ttree, deterministic setting — enumeration vs bottom-up vs BILP.
/// Paper shape to reproduce: BU < BILP << enumeration, with enumeration
/// only feasible on the smallest groups.

#include "bench/fig7_common.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/enumerative.hpp"

using namespace atcd;
using namespace atcd::bench;

int main(int argc, char** argv) {
  print_header("Fig. 7a — Ttree, deterministic CDPF",
               "paper Sec. X-D, Fig. 7a (Enum/BU/BILP over 500 random "
               "treelike ATs)");
  const auto opt = fig7_options(argc, argv, /*treelike=*/true);
  run_fig7(opt,
           {
               {"enum",
                [](const CdpAt& m) {
                  (void)cdpf_enumerative(m.deterministic(), 20);
                  return true;
                },
                20},  // paper: enumeration only for N < 30
               {"bottom-up",
                [](const CdpAt& m) {
                  (void)cdpf_bottom_up(m.deterministic());
                  return true;
                }},
               {"bilp",
                [](const CdpAt& m) {
                  (void)cdpf_bilp(m.deterministic());
                  return true;
                }},
           });
  return 0;
}
