/// Regenerates Fig. 3 / Examples 1-2 of the paper: the full cost-damage
/// table of the factory AT and its Pareto front, via all three engines.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/factory.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/enumerative.hpp"

using namespace atcd;

int main() {
  bench::print_header("Fig. 3 — CDPF of the running example (factory AT)",
                      "paper Examples 1-2, eq. (3), Fig. 3");
  const auto m = casestudies::make_factory();

  std::printf("\nExample 1 table (all 2^3 attacks):\n");
  std::printf("%-14s %6s %8s\n", "attack", "cost", "damage");
  for (std::uint64_t mask = 0; mask < 8; ++mask) {
    const Attack x = Attack::from_mask(3, mask);
    std::printf("%-14s %6g %8g\n", attack_to_string(m.tree, x).c_str(),
                total_cost(m, x), total_damage(m, x));
  }

  auto show = [&](const char* engine, const Front2d& f) {
    std::printf("\nPF(T) via %s:\n", engine);
    std::printf("%6s %8s  %s\n", "cost", "damage", "witness");
    for (const auto& p : f)
      std::printf("%6g %8g  %s\n", p.value.cost, p.value.damage,
                  attack_to_string(m.tree, p.witness).c_str());
  };
  show("bottom-up (Thm 4)", cdpf_bottom_up(m));
  show("BILP (Thm 6)", cdpf_bilp(m));
  show("enumeration", cdpf_enumerative(m));

  std::printf("\npaper eq. (3):  (0,0) (1,200) (3,210) (5,310)\n");
  std::printf("DgC for U=2 (paper Example 2): d_opt = %g (expect 200)\n",
              dgc_bottom_up(m, 2.0).damage);
  return 0;
}
