/// trajectory — the unified perf-trajectory runner.  Merges every bench
/// area's BENCH_<area>.json report into one versioned
/// BENCH_trajectory.json and compares it against the previous
/// trajectory with per-metric regression thresholds, so performance
/// drift across PRs is a red CI job instead of archaeology.
///
/// Usage: bench_trajectory [--dir D] [--out PATH] [--baseline PATH]
///                         [--run --bin-dir D] [--smoke]
///                         [--threshold X] [--gate ratios|all]
///
///   --dir D          where BENCH_*.json reports live (default ".")
///   --out PATH       merged trajectory (default <dir>/BENCH_trajectory.json)
///   --baseline PATH  previous trajectory to gate against; when absent
///                    and --out already exists, the old file is the
///                    baseline (compare, then overwrite)
///   --run            first regenerate the reports by running every
///                    bench binary from --bin-dir (default ".")
///   --smoke          with --run: each bench's quick configuration
///   --threshold X    relative worsening that fails (default 0.5 = 50%)
///   --gate M         "ratios" (default: only machine-portable
///                    dimensionless metrics) or "all" (absolute times
///                    too — same-machine comparisons only)
///
/// Exit code: 0 clean, 1 on regressions / missing coverage / unreadable
/// reports.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "suite/trajectory.hpp"

using namespace atcd;
namespace fs = std::filesystem;

namespace {

struct BenchCmd {
  const char* binary;  // bench_<name>
  const char* area;    // BENCH_<area>.json it writes
  const char* args;    // extra arguments (full mode)
  const char* smoke;   // extra arguments (smoke mode)
};

/// Every bench area the trajectory covers, in the order they run.
const BenchCmd kBenches[] = {
    {"bench_api_dispatch", "api_dispatch", "", ""},
    {"bench_arena_hotpath", "arena_hotpath", "", "--smoke"},
    {"bench_incremental_edits", "incremental_edits", "", "--rounds 12"},
    {"bench_analysis_sweep", "analysis_sweep", "", "--smoke"},
    {"bench_service_throughput", "service_throughput", "", "--smoke"},
    {"bench_net_loadgen", "net_throughput", "", "--smoke"},
    {"bench_fig7a_tree_det", "fig7a", "", "--smoke"},
    {"bench_fig7b_tree_prob", "fig7b", "", "--smoke"},
    {"bench_fig7c_dag_det", "fig7c", "", "--smoke"},
    {"bench_model_zoo", "model_zoo", "", "--smoke"},
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool run = bench::has_flag(argc, argv, "--run");
  std::string dir = bench::flag_value(argc, argv, "--dir");
  if (dir.empty()) dir = ".";
  std::string bin_dir = bench::flag_value(argc, argv, "--bin-dir");
  if (bin_dir.empty()) bin_dir = ".";
  std::string out_path = bench::flag_value(argc, argv, "--out");
  if (out_path.empty()) out_path = dir + "/BENCH_trajectory.json";
  std::string baseline_path = bench::flag_value(argc, argv, "--baseline");

  suite::CompareOptions copt;
  if (const std::string v = bench::flag_value(argc, argv, "--threshold");
      !v.empty())
    copt.threshold = std::atof(v.c_str());
  if (const std::string v = bench::flag_value(argc, argv, "--gate");
      !v.empty()) {
    if (v == "all") {
      copt.gate = suite::GateMode::All;
    } else if (v != "ratios") {
      std::fprintf(stderr, "unknown --gate %s (want ratios|all)\n", v.c_str());
      return 1;
    }
  }

  // The previous trajectory must be read before --run / the rewrite
  // clobbers it.
  std::string baseline_text;
  if (baseline_path.empty() && fs::exists(out_path)) baseline_path = out_path;
  const bool have_baseline =
      !baseline_path.empty() && read_file(baseline_path, &baseline_text);
  if (!baseline_path.empty() && !have_baseline) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }

  if (run) {
    for (const BenchCmd& b : kBenches) {
      const std::string json = dir + "/BENCH_" + b.area + ".json";
      std::string cmd = bin_dir + "/" + b.binary;
      const char* extra = smoke ? b.smoke : b.args;
      if (*extra) cmd += std::string(" ") + extra;
      cmd += " --json \"" + json + "\" > /dev/null";
      std::printf("run: %s\n", cmd.c_str());
      std::fflush(stdout);
      // A failed self-gate still writes its report; the trajectory
      // comparison below is this binary's verdict.
      if (const int rc = std::system(cmd.c_str()); rc != 0)
        std::fprintf(stderr, "warning: %s exited %d\n", b.binary, rc);
    }
  }

  std::vector<suite::TrajectoryArea> areas;
  std::vector<std::string> report_files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Skip merged trajectories (BENCH_trajectory*.json — the full and
    // smoke baselines both live next to the per-area reports).
    if (name.rfind("BENCH_", 0) != 0 ||
        name.rfind("BENCH_trajectory", 0) == 0 ||
        entry.path().extension() != ".json")
      continue;
    report_files.push_back(entry.path().string());
  }
  std::sort(report_files.begin(), report_files.end());
  for (const std::string& path : report_files) {
    std::string text, error;
    suite::TrajectoryArea area;
    if (!read_file(path, &text) ||
        !suite::parse_bench_report(text, &area, &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   error.empty() ? "unreadable" : error.c_str());
      return 1;
    }
    areas.push_back(std::move(area));
  }
  if (areas.empty()) {
    std::fprintf(stderr, "no BENCH_*.json reports in %s\n", dir.c_str());
    return 1;
  }

  suite::Trajectory current;
  std::string error;
  if (!suite::merge_trajectory(std::move(areas), &current, &error)) {
    std::fprintf(stderr, "merge failed: %s\n", error.c_str());
    return 1;
  }

  std::vector<suite::Regression> regressions;
  if (have_baseline) {
    suite::Trajectory baseline;
    if (!suite::parse_trajectory(baseline_text, &baseline, &error)) {
      std::fprintf(stderr, "baseline %s: %s\n", baseline_path.c_str(),
                   error.c_str());
      return 1;
    }
    regressions = suite::compare_trajectories(baseline, current, copt);
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << suite::dump_trajectory(current);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();

  std::size_t row_count = 0;
  for (const auto& a : current.areas) row_count += a.rows.size();
  std::printf("wrote %s: %zu areas, %zu rows\n", out_path.c_str(),
              current.areas.size(), row_count);
  if (!have_baseline) {
    std::printf("no baseline — nothing to gate against\n");
    return 0;
  }
  if (regressions.empty()) {
    std::printf("vs %s: no regressions (threshold %.0f%%, gate %s)\n",
                baseline_path.c_str(), copt.threshold * 100.0,
                copt.gate == suite::GateMode::Ratios ? "ratios" : "all");
    return 0;
  }
  std::printf("vs %s: %zu regression(s)\n%s", baseline_path.c_str(),
              regressions.size(), suite::to_text(regressions).c_str());
  return 1;
}
