/// Ablation A4 — exact engines vs NSGA-II approximation.
///
/// The paper's conclusion proposes comparing its provably optimal methods
/// against a genetic multiobjective optimiser "to establish to what
/// extent the performance gain (if any) comes at an accuracy cost".
/// This bench runs that comparison on the panda AT and the data server:
/// front coverage and hypervolume ratio vs wall-clock across NSGA-II
/// generation counts.
///
/// The exact reference front comes from the engine planner (the paper's
/// Table I choice per model class); pass --engine <name> to force any
/// registered exact backend instead — the name resolves through the
/// engine registry, so newly added engines are benchable without code
/// changes.

#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "casestudies/dataserver.hpp"
#include "casestudies/panda.hpp"
#include "engine/planner.hpp"
#include "ga/nsga2.hpp"

using namespace atcd;
using namespace atcd::bench;

namespace {

void compare(const char* name, const CdAt& m, const Front2d& exact,
             const std::string& exact_engine, double t_exact) {
  double ref_cost = 0;
  for (double c : m.cost) ref_cost += c;
  const double hv_exact = ga::hypervolume(exact, ref_cost, 0.0);
  std::printf("\n%s: exact front (%s) %zu points in %.4fs (hv %.4g)\n", name,
              exact_engine.c_str(), exact.size(), t_exact, hv_exact);
  std::printf("%12s %10s %10s %12s %10s\n", "generations", "time", "points",
              "coverage", "hv ratio");
  for (std::size_t gens : {5u, 20u, 60u, 200u}) {
    ga::Nsga2Options opt;
    opt.generations = gens;
    Front2d approx;
    const double t = time_once([&] { approx = ga::nsga2_cdpf(m, opt); });
    std::printf("%12zu %9.4fs %10zu %11.0f%% %10.4f\n", gens, t,
                approx.size(), 100.0 * ga::front_coverage(exact, approx),
                ga::hypervolume(approx, ref_cost, 0.0) /
                    std::max(1e-12, hv_exact));
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation A4 — exact methods vs NSGA-II approximation",
               "paper Conclusion (genetic-algorithm comparison)");

  const std::string forced = flag_value(argc, argv, "--engine");
  const engine::Planner planner;
  auto exact_cdpf = [&](const CdAt& m, std::string& used) {
    const engine::Traits t = engine::traits_of(m);
    const engine::Backend& b =
        forced.empty() ? planner.plan(engine::Problem::Cdpf, t)
                       : planner.resolve(forced, engine::Problem::Cdpf, t);
    if (!b.capabilities().exact)
      throw UnsupportedError(std::string("--engine ") + b.name() +
                             " is approximate and cannot serve as the "
                             "exact reference front");
    used = b.name();
    return b.cdpf(m);
  };

  const auto panda = casestudies::make_panda().deterministic();
  Front2d exact_panda;
  std::string engine_panda;
  const double t_panda =
      time_once([&] { exact_panda = exact_cdpf(panda, engine_panda); });
  compare("panda (treelike, |B|=22)", panda, exact_panda, engine_panda,
          t_panda);

  const auto ds = casestudies::make_dataserver();
  Front2d exact_ds;
  std::string engine_ds;
  const double t_ds = time_once([&] { exact_ds = exact_cdpf(ds, engine_ds); });
  compare("data server (DAG, |B|=12)", ds, exact_ds, engine_ds, t_ds);

  std::printf("\nconclusion: on models of this size the exact engines are "
              "both faster AND complete; NSGA-II only becomes interesting "
              "when fronts blow up exponentially (Example 6).\n");
  return 0;
}
