/// Ablation A4 — exact engines vs NSGA-II approximation.
///
/// The paper's conclusion proposes comparing its provably optimal methods
/// against a genetic multiobjective optimiser "to establish to what
/// extent the performance gain (if any) comes at an accuracy cost".
/// This bench runs that comparison on the panda AT and the data server:
/// front coverage and hypervolume ratio vs wall-clock across NSGA-II
/// generation counts.

#include <cstdio>

#include "bench/common.hpp"
#include "casestudies/dataserver.hpp"
#include "casestudies/panda.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "ga/nsga2.hpp"

using namespace atcd;
using namespace atcd::bench;

namespace {

void compare(const char* name, const CdAt& m, const Front2d& exact,
             double t_exact) {
  double ref_cost = 0;
  for (double c : m.cost) ref_cost += c;
  const double hv_exact = ga::hypervolume(exact, ref_cost, 0.0);
  std::printf("\n%s: exact front %zu points in %.4fs (hv %.4g)\n", name,
              exact.size(), t_exact, hv_exact);
  std::printf("%12s %10s %10s %12s %10s\n", "generations", "time", "points",
              "coverage", "hv ratio");
  for (std::size_t gens : {5u, 20u, 60u, 200u}) {
    ga::Nsga2Options opt;
    opt.generations = gens;
    Front2d approx;
    const double t = time_once([&] { approx = ga::nsga2_cdpf(m, opt); });
    std::printf("%12zu %9.4fs %10zu %11.0f%% %10.4f\n", gens, t,
                approx.size(), 100.0 * ga::front_coverage(exact, approx),
                ga::hypervolume(approx, ref_cost, 0.0) /
                    std::max(1e-12, hv_exact));
  }
}

}  // namespace

int main() {
  print_header("Ablation A4 — exact methods vs NSGA-II approximation",
               "paper Conclusion (genetic-algorithm comparison)");

  const auto panda = casestudies::make_panda().deterministic();
  Front2d exact_panda;
  const double t_panda =
      time_once([&] { exact_panda = cdpf_bottom_up(panda); });
  compare("panda (treelike, |B|=22, exact = bottom-up)", panda, exact_panda,
          t_panda);

  const auto ds = casestudies::make_dataserver();
  Front2d exact_ds;
  const double t_ds = time_once([&] { exact_ds = cdpf_bilp(ds); });
  compare("data server (DAG, |B|=12, exact = BILP)", ds, exact_ds, t_ds);

  std::printf("\nconclusion: on models of this size the exact engines are "
              "both faster AND complete; NSGA-II only becomes interesting "
              "when fronts blow up exponentially (Example 6).\n");
  return 0;
}
