/// Tests for the batch solve API (engine/batch.hpp): parallel solve_all
/// must produce results identical to sequential per-instance calls, and
/// per-instance failures must be captured without tearing down the batch.

#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using engine::BatchOptions;
using engine::Instance;
using engine::Problem;
using engine::SolveResult;
using engine::solve_all;
using engine::solve_one;

void expect_same(const SolveResult& a, const SolveResult& b,
                 const std::string& where) {
  ASSERT_EQ(a.ok, b.ok) << where << ": " << a.error << " vs " << b.error;
  EXPECT_EQ(a.backend, b.backend) << where;
  if (!a.ok) {
    EXPECT_EQ(a.error, b.error) << where;
    return;
  }
  EXPECT_TRUE(a.front.same_values(b.front)) << where;
  EXPECT_EQ(a.attack.feasible, b.attack.feasible) << where;
  EXPECT_DOUBLE_EQ(a.attack.cost, b.attack.cost) << where;
  EXPECT_DOUBLE_EQ(a.attack.damage, b.attack.damage) << where;
  EXPECT_EQ(a.attack.witness, b.attack.witness) << where;
}

/// A mixed workload over the case studies and random models: all six
/// problems, treelike and DAG, auto and explicit engines.
struct Workload {
  CdAt factory;
  CdAt dataserver;
  CdpAt factory_prob;
  CdpAt random_tree_prob;
  std::vector<CdAt> random_dags;
  std::vector<Instance> instances;

  Workload() {
    factory = casestudies::make_factory();
    dataserver = casestudies::make_dataserver();
    factory_prob = casestudies::make_factory_probabilistic();
    Rng rng(5150);
    random_tree_prob = atcd::testing::random_cdpat(rng, 6, true);
    for (int i = 0; i < 4; ++i)
      random_dags.push_back(atcd::testing::random_cdat(rng, 5, false));

    instances.push_back(Instance::of(Problem::Cdpf, factory));
    instances.push_back(Instance::of(Problem::Dgc, factory, 2.0));
    instances.push_back(Instance::of(Problem::Cgd, factory, 201.0));
    instances.push_back(Instance::of(Problem::Cdpf, dataserver));
    instances.push_back(
        Instance::of(Problem::Cdpf, factory, 0.0, "enumerative"));
    instances.push_back(Instance::of(Problem::Cedpf, factory_prob));
    instances.push_back(Instance::of(Problem::Edgc, factory_prob, 3.0));
    instances.push_back(Instance::of(Problem::Cged, factory_prob, 1.0));
    instances.push_back(Instance::of(Problem::Cedpf, random_tree_prob));
    for (const auto& m : random_dags)
      instances.push_back(Instance::of(Problem::Dgc, m, 10.0));
  }
};

TEST(Batch, ParallelMatchesSequential) {
  const Workload w;
  ASSERT_GE(w.instances.size(), 8u);

  std::vector<SolveResult> sequential;
  sequential.reserve(w.instances.size());
  for (const auto& in : w.instances) sequential.push_back(solve_one(in));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    BatchOptions opt;
    opt.threads = threads;
    const auto parallel = solve_all(w.instances, opt);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i)
      expect_same(parallel[i], sequential[i],
                  "threads=" + std::to_string(threads) + " instance #" +
                      std::to_string(i));
  }
}

TEST(Batch, RecordsThePlannedBackend) {
  const Workload w;
  const auto r = solve_all(w.instances, {});
  EXPECT_EQ(r[0].backend, "bottom-up");    // treelike det CDPF
  EXPECT_EQ(r[3].backend, "bilp");         // DAG det CDPF
  EXPECT_EQ(r[4].backend, "enumerative");  // explicit request
  EXPECT_EQ(r[5].backend, "bottom-up");    // treelike prob CEDPF
}

TEST(Batch, CapturesPerInstanceFailuresWithoutAbortingTheBatch) {
  const auto factory = casestudies::make_factory();
  const auto ds = casestudies::make_dataserver();
  std::vector<Instance> batch;
  batch.push_back(Instance::of(Problem::Cdpf, factory));
  batch.push_back(Instance::of(Problem::Cdpf, ds, 0.0, "bottom-up"));  // DAG
  batch.push_back(Instance::of(Problem::Cdpf, factory, 0.0, "no-such"));
  Instance missing_model;  // det problem without a det model
  missing_model.problem = Problem::Dgc;
  batch.push_back(missing_model);

  const auto r = solve_all(batch, {});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_TRUE(r[0].ok);
  EXPECT_FALSE(r[1].ok);
  EXPECT_NE(r[1].error.find("treelike"), std::string::npos) << r[1].error;
  EXPECT_FALSE(r[2].ok);
  EXPECT_NE(r[2].error.find("unknown engine"), std::string::npos)
      << r[2].error;
  EXPECT_FALSE(r[3].ok);
  EXPECT_NE(r[3].error.find("lacks a"), std::string::npos) << r[3].error;
}

TEST(Batch, EmptyBatchAndOversizedThreadCount) {
  EXPECT_TRUE(solve_all({}, {}).empty());
  const auto factory = casestudies::make_factory();
  std::vector<Instance> one{Instance::of(Problem::Cdpf, factory)};
  BatchOptions opt;
  opt.threads = 64;  // more threads than work
  const auto r = solve_all(one, opt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].ok);
  EXPECT_EQ(r[0].front.size(), 4u);
}

}  // namespace
}  // namespace atcd
