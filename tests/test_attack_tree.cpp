#include "at/attack_tree.hpp"

#include <gtest/gtest.h>

#include "at/structure.hpp"
#include "at/transform.hpp"
#include "casestudies/factory.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

AttackTree small_tree() {
  AttackTree t;
  const auto a = t.add_bas("a");
  const auto b = t.add_bas("b");
  const auto c = t.add_bas("c");
  const auto g = t.add_gate(NodeType::AND, "g", {a, b});
  t.add_gate(NodeType::OR, "root", {g, c});
  t.finalize();
  return t;
}

TEST(AttackTree, BasicAccessors) {
  const auto t = small_tree();
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.bas_count(), 3u);
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_TRUE(t.is_treelike());
  EXPECT_EQ(t.name(t.root()), "root");
  EXPECT_EQ(t.type(*t.find("g")), NodeType::AND);
  EXPECT_TRUE(t.is_bas(*t.find("a")));
  EXPECT_FALSE(t.find("nope").has_value());
}

TEST(AttackTree, BasIndexingIsDenseAndStable) {
  const auto t = small_tree();
  for (std::uint32_t i = 0; i < t.bas_count(); ++i)
    EXPECT_EQ(t.bas_index(t.bas_id(i)), i);
  EXPECT_EQ(t.name(t.bas_id(0)), "a");
  EXPECT_EQ(t.name(t.bas_id(2)), "c");
}

TEST(AttackTree, ParentsComputedByFinalize) {
  const auto t = small_tree();
  const auto a = *t.find("a");
  ASSERT_EQ(t.parents(a).size(), 1u);
  EXPECT_EQ(t.name(t.parents(a)[0]), "g");
  EXPECT_TRUE(t.parents(t.root()).empty());
}

TEST(AttackTree, TopologicalOrderIsChildrenFirst) {
  const auto t = small_tree();
  std::vector<std::size_t> pos(t.node_count());
  const auto& topo = t.topological_order();
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId v = 0; v < t.node_count(); ++v)
    for (NodeId c : t.children(v)) EXPECT_LT(pos[c], pos[v]);
}

TEST(AttackTree, RejectsDuplicateNames) {
  AttackTree t;
  t.add_bas("x");
  EXPECT_THROW(t.add_bas("x"), ModelError);
  EXPECT_THROW(t.add_gate(NodeType::OR, "x", {0}), ModelError);
}

TEST(AttackTree, RejectsEmptyAndBadGates) {
  AttackTree t;
  const auto a = t.add_bas("a");
  EXPECT_THROW(t.add_gate(NodeType::OR, "g", {}), ModelError);
  EXPECT_THROW(t.add_gate(NodeType::BAS, "g", {a}), ModelError);
  EXPECT_THROW(t.add_gate(NodeType::OR, "g", {a, a}), ModelError);
  EXPECT_THROW(t.add_gate(NodeType::OR, "g", {99}), ModelError);
}

TEST(AttackTree, FinalizeRejectsAmbiguousRoot) {
  AttackTree t;
  t.add_bas("a");
  t.add_bas("b");
  EXPECT_THROW(t.finalize(), ModelError);  // two parentless nodes
}

TEST(AttackTree, FinalizeRejectsUnreachableNodes) {
  AttackTree t;
  const auto a = t.add_bas("a");
  t.add_bas("stray");
  t.set_root(t.add_gate(NodeType::OR, "root", {a}));
  EXPECT_THROW(t.finalize(), ModelError);
}

TEST(AttackTree, FinalizeRejectsEmptyTree) {
  AttackTree t;
  EXPECT_THROW(t.finalize(), ModelError);
}

TEST(AttackTree, NoModificationAfterFinalize) {
  auto t = small_tree();
  EXPECT_THROW(t.add_bas("new"), ModelError);
  EXPECT_THROW(t.set_root(0), ModelError);
}

TEST(AttackTree, SingleBasTreeIsValid) {
  AttackTree t;
  t.add_bas("only");
  t.finalize();
  EXPECT_EQ(t.root(), 0u);
  EXPECT_TRUE(t.is_treelike());
}

TEST(AttackTree, DagDetection) {
  AttackTree t;
  const auto a = t.add_bas("a");
  const auto b = t.add_bas("b");
  const auto g1 = t.add_gate(NodeType::AND, "g1", {a, b});
  const auto g2 = t.add_gate(NodeType::OR, "g2", {a, b});  // a,b shared
  t.add_gate(NodeType::OR, "root", {g1, g2});
  t.finalize();
  EXPECT_FALSE(t.is_treelike());
}

// ---- transforms ----

TEST(Transform, BinarizePreservesSmallGates) {
  const auto t = small_tree();
  const auto r = binarize(t);
  EXPECT_EQ(r.tree.node_count(), t.node_count());
  EXPECT_TRUE(r.tree.is_treelike());
}

TEST(Transform, BinarizeSplitsWideGates) {
  AttackTree t;
  std::vector<NodeId> cs;
  for (int i = 0; i < 5; ++i) cs.push_back(t.add_bas("b" + std::to_string(i)));
  t.add_gate(NodeType::OR, "root", cs);
  t.finalize();
  const auto r = binarize(t);
  // 5 leaves need 4 binary ORs: root + 3 aux.
  EXPECT_EQ(r.tree.node_count(), 9u);
  for (NodeId v = 0; v < r.tree.node_count(); ++v)
    if (!r.tree.is_bas(v)) EXPECT_LE(r.tree.children(v).size(), 2u);
  // Same structure function on every attack.
  for (std::uint64_t m = 0; m < 32; ++m) {
    const Attack x = Attack::from_mask(5, m);
    EXPECT_EQ(structure(t, x, t.root()),
              structure(r.tree, x, r.tree.root()))
        << m;
  }
}

TEST(Transform, BinarizeMapsOriginalNodes) {
  AttackTree t;
  std::vector<NodeId> cs;
  for (int i = 0; i < 4; ++i) cs.push_back(t.add_bas("b" + std::to_string(i)));
  const auto g = t.add_gate(NodeType::AND, "wide", cs);
  t.add_gate(NodeType::OR, "root", {g});
  t.finalize();
  const auto r = binarize(t);
  EXPECT_EQ(r.tree.name(r.node_map[g]), "wide");
  EXPECT_EQ(r.origin[r.node_map[g]], g);
  // Aux nodes have no origin.
  std::size_t aux = 0;
  for (NodeId v = 0; v < r.tree.node_count(); ++v)
    if (r.origin[v] == kNoNode) ++aux;
  EXPECT_EQ(aux, 2u);  // 4-ary AND -> 2 aux gates
}

TEST(Transform, BinarizeRandomTreesPreserveStructureFunction) {
  Rng rng(99);
  for (int it = 0; it < 20; ++it) {
    const auto t = atcd::testing::random_tree(rng, 6);
    const auto r = binarize(t);
    for (std::uint64_t m = 0; m < 64; ++m) {
      const Attack x = Attack::from_mask(6, m);
      ASSERT_EQ(structure(t, x, t.root()),
                structure(r.tree, x, r.tree.root()));
    }
  }
}

TEST(Transform, SubtreeExtractsClosedSubDag) {
  const auto fac = casestudies::make_factory();
  const auto dr = *fac.tree.find("dr");
  const auto s = subtree(fac.tree, dr);
  EXPECT_EQ(s.tree.node_count(), 3u);  // pb, fd, dr
  EXPECT_EQ(s.tree.name(s.tree.root()), "dr");
  EXPECT_EQ(s.node_map[*fac.tree.find("ca")], kNoNode);
}

TEST(Transform, SubtreeOfRootIsWholeTree) {
  const auto t = small_tree();
  const auto s = subtree(t, t.root());
  EXPECT_EQ(s.tree.node_count(), t.node_count());
}

}  // namespace
}  // namespace atcd
