/// Tests for the engine subsystem: registry lookups, capability
/// metadata, the planner's dispatch matrix (paper Table I), explicit
/// engine mismatch errors, and cross-validation of every exact backend
/// against the enumerative oracle on small random models.

#include "engine/planner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "casestudies/dataserver.hpp"
#include "core/knapsack.hpp"
#include "casestudies/factory.hpp"
#include "core/problems.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::fronts_equal;
using engine::Problem;
using engine::Traits;

Traits tree_det() { return Traits{true, false, false, 8}; }
Traits dag_det() { return Traits{false, false, false, 8}; }
Traits tree_prob() { return Traits{true, true, false, 8}; }
Traits dag_prob() { return Traits{false, true, false, 8}; }

// ---- Registry. ----

TEST(Registry, BuiltinsAreRegisteredInOrder) {
  const auto all = engine::default_registry().all();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_STREQ(all[0]->name(), "enumerative");
  EXPECT_STREQ(all[1]->name(), "bottom-up");
  EXPECT_STREQ(all[2]->name(), "bilp");
  EXPECT_STREQ(all[3]->name(), "bdd");
  EXPECT_STREQ(all[4]->name(), "nsga2");
  EXPECT_STREQ(all[5]->name(), "knapsack");
}

TEST(Registry, FindAndAt) {
  const auto& r = engine::default_registry();
  ASSERT_NE(r.find("bilp"), nullptr);
  EXPECT_EQ(r.find("no-such-engine"), nullptr);
  EXPECT_THROW(r.at("no-such-engine"), UnsupportedError);
  try {
    r.at("no-such-engine");
  } catch (const UnsupportedError& e) {
    // The error lists the registered names, for CLI/bench UX.
    EXPECT_NE(std::string(e.what()).find("bottom-up"), std::string::npos);
  }
}

TEST(Registry, RejectsDuplicateNames) {
  engine::Registry r = engine::Registry::with_builtins();
  class Fake final : public engine::Backend {
   public:
    const char* name() const override { return "bilp"; }
    engine::Capabilities capabilities() const override { return {}; }
  };
  EXPECT_THROW(r.add(std::make_shared<Fake>()), Error);
}

TEST(Registry, CapabilityMetadataMatchesTableOne) {
  const auto& r = engine::default_registry();
  const auto bu = r.at("bottom-up").capabilities();
  EXPECT_TRUE(bu.tree_det && bu.tree_prob);
  EXPECT_FALSE(bu.dag_det || bu.dag_prob);
  const auto bilp = r.at("bilp").capabilities();
  EXPECT_TRUE(bilp.tree_det && bilp.dag_det);
  EXPECT_FALSE(bilp.tree_prob || bilp.dag_prob);
  const auto bdd = r.at("bdd").capabilities();
  EXPECT_TRUE(bdd.tree_prob && bdd.dag_prob);
  EXPECT_FALSE(bdd.tree_det || bdd.dag_det);
  const auto ga = r.at("nsga2").capabilities();
  EXPECT_TRUE(ga.tree_det && ga.dag_det && ga.tree_prob && ga.dag_prob);
  EXPECT_FALSE(ga.exact);
  const auto ks = r.at("knapsack").capabilities();
  EXPECT_TRUE(ks.additive_only);
  EXPECT_FALSE(ks.fronts);
}

// ---- Planner dispatch matrix (Table I). ----

TEST(Planner, AutoFollowsTableOne) {
  const engine::Planner p;
  EXPECT_STREQ(p.plan(Problem::Cdpf, tree_det()).name(), "bottom-up");
  EXPECT_STREQ(p.plan(Problem::Dgc, tree_det()).name(), "bottom-up");
  EXPECT_STREQ(p.plan(Problem::Cgd, tree_det()).name(), "bottom-up");
  EXPECT_STREQ(p.plan(Problem::Cdpf, dag_det()).name(), "bilp");
  EXPECT_STREQ(p.plan(Problem::Dgc, dag_det()).name(), "bilp");
  EXPECT_STREQ(p.plan(Problem::Cedpf, tree_prob()).name(), "bottom-up");
  EXPECT_STREQ(p.plan(Problem::Edgc, tree_prob()).name(), "bottom-up");
  EXPECT_STREQ(p.plan(Problem::Cedpf, dag_prob()).name(), "bdd");
  EXPECT_STREQ(p.plan(Problem::Cged, dag_prob()).name(), "bdd");
}

TEST(Planner, NeverAutoSelectsApproximateBackends) {
  // Probabilistic DAG beyond the BDD capacity: the planner still prefers
  // the exact capped backend (which then capacity-errors) over silently
  // degrading to NSGA-II.
  Traits big = dag_prob();
  big.bas = 40;
  const engine::Planner p;
  EXPECT_STREQ(p.plan(Problem::Cedpf, big).name(), "bdd");
}

TEST(Planner, CustomPreferenceOrderOverridesTableOne) {
  const engine::TableOnePolicy prefer_bilp({"bilp", "bottom-up"});
  const engine::Planner p(engine::default_registry(), prefer_bilp);
  EXPECT_STREQ(p.plan(Problem::Cdpf, tree_det()).name(), "bilp");
  // bilp cannot do probabilistic problems: next preference wins.
  EXPECT_STREQ(p.plan(Problem::Cedpf, tree_prob()).name(), "bottom-up");
}

TEST(Planner, CustomRegistryWithoutApplicableEngineThrows) {
  engine::Registry r;  // empty
  const engine::Planner p(r);
  EXPECT_THROW(p.plan(Problem::Cdpf, tree_det()), UnsupportedError);
}

TEST(Planner, ResolveNamesTheMissingCapability) {
  const engine::Planner p;
  try {
    p.resolve("bottom-up", Problem::Cdpf, dag_det());
    FAIL() << "expected UnsupportedError";
  } catch (const UnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("DAG"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("treelike"), std::string::npos)
        << e.what();
  }
  try {
    p.resolve("bilp", Problem::Cedpf, tree_prob());
    FAIL() << "expected UnsupportedError";
  } catch (const UnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("probabilistic"), std::string::npos)
        << e.what();
  }
  try {
    p.resolve("knapsack", Problem::Cdpf, tree_det());
    FAIL() << "expected UnsupportedError";
  } catch (const UnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("front"), std::string::npos)
        << e.what();
  }
}

// ---- Explicit engine requests through the problems.hpp front-end. ----

TEST(EngineDispatch, ExplicitMismatchThrowsUnsupported) {
  const auto ds = casestudies::make_dataserver();  // DAG
  EXPECT_THROW(cdpf(ds, Engine::BottomUp), UnsupportedError);
  EXPECT_THROW(cdpf(ds, Engine::Bdd), UnsupportedError);
  EXPECT_THROW(dgc(ds, 3.0, Engine::Knapsack), UnsupportedError);  // not additive
  const auto fac = casestudies::make_factory_probabilistic();
  EXPECT_THROW(cedpf(fac, Engine::Bilp), UnsupportedError);
  EXPECT_THROW(cedpf(fac, Engine::Knapsack), UnsupportedError);
}

TEST(EngineDispatch, Nsga2IsSelectableByName) {
  const auto m = casestudies::make_factory();
  const auto exact = cdpf(m);
  const auto approx = cdpf(m, Engine::Nsga2);
  EXPECT_GT(approx.size(), 0u);
  // Every NSGA-II point is attainable: witness evaluations must match.
  for (const auto& p : approx) {
    EXPECT_NEAR(total_cost(m, p.witness), p.value.cost, 1e-9);
    EXPECT_NEAR(total_damage(m, p.witness), p.value.damage, 1e-9);
  }
  // On this small model the GA finds the whole front.
  EXPECT_TRUE(fronts_equal(approx, exact));
}

TEST(EngineDispatch, KnapsackIsSelectableOnAdditiveModels) {
  const KnapsackInstance inst{{10, 13, 7, 9}, {3, 4, 2, 5}, 7};
  const auto m = knapsack_to_cdat(inst);  // additive by construction
  const auto ks = dgc(m, inst.capacity, Engine::Knapsack);
  const auto oracle = dgc(m, inst.capacity, Engine::Enumerative);
  ASSERT_TRUE(ks.feasible);
  EXPECT_DOUBLE_EQ(ks.damage, oracle.damage);
  const auto cover = cgd(m, 20.0, Engine::Knapsack);
  const auto cover_oracle = cgd(m, 20.0, Engine::Enumerative);
  ASSERT_EQ(cover.feasible, cover_oracle.feasible);
  EXPECT_DOUBLE_EQ(cover.cost, cover_oracle.cost);
}

// ---- Cross-validation: every exact engine vs the enumerative oracle. ----

TEST(EngineCrossValidation, TreelikeDeterministic) {
  Rng rng(7401);
  for (int rep = 0; rep < 8; ++rep) {
    const auto m = atcd::testing::random_cdat(rng, 3 + rng.below(6), true);
    const auto oracle = cdpf(m, Engine::Enumerative);
    EXPECT_TRUE(fronts_equal(cdpf(m, Engine::BottomUp), oracle)) << rep;
    EXPECT_TRUE(fronts_equal(cdpf(m, Engine::Bilp), oracle)) << rep;
    const double budget = 1.0 + static_cast<double>(rng.below(20));
    EXPECT_DOUBLE_EQ(dgc(m, budget, Engine::BottomUp).damage,
                     dgc(m, budget, Engine::Enumerative).damage)
        << rep;
  }
}

TEST(EngineCrossValidation, DagDeterministic) {
  Rng rng(7402);
  for (int rep = 0; rep < 8; ++rep) {
    const auto m = atcd::testing::random_cdat(rng, 3 + rng.below(6), false);
    const auto oracle = cdpf(m, Engine::Enumerative);
    EXPECT_TRUE(fronts_equal(cdpf(m, Engine::Bilp), oracle)) << rep;
    EXPECT_TRUE(fronts_equal(cdpf(m), oracle)) << rep;  // Auto == bilp
  }
}

TEST(EngineCrossValidation, TreelikeProbabilistic) {
  Rng rng(7403);
  for (int rep = 0; rep < 6; ++rep) {
    const auto m = atcd::testing::random_cdpat(rng, 3 + rng.below(5), true);
    const auto oracle = cedpf(m, Engine::Enumerative);
    EXPECT_TRUE(fronts_equal(cedpf(m, Engine::BottomUp), oracle, 1e-7))
        << rep;
    EXPECT_TRUE(fronts_equal(cedpf(m, Engine::Bdd), oracle, 1e-7)) << rep;
  }
}

TEST(EngineCrossValidation, AdditiveKnapsackOnRandomInstances) {
  Rng rng(7404);
  for (int rep = 0; rep < 8; ++rep) {
    KnapsackInstance inst;
    const int n = 2 + static_cast<int>(rng.below(8));
    for (int i = 0; i < n; ++i) {
      inst.value.push_back(static_cast<double>(rng.range(0, 15)));
      inst.weight.push_back(static_cast<double>(rng.range(1, 9)));
    }
    inst.capacity = static_cast<double>(rng.range(0, 3 * n));
    const auto m = knapsack_to_cdat(inst);
    EXPECT_DOUBLE_EQ(dgc(m, inst.capacity, Engine::Knapsack).damage,
                     dgc(m, inst.capacity, Engine::Enumerative).damage)
        << rep;
  }
}

}  // namespace
}  // namespace atcd
