#include "at/structure.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "core/cdat.hpp"

namespace atcd {
namespace {

// Example 1 of the paper: the full cost/damage table of the factory AT.
// Attack order in vectors: (x_ca, x_pb, x_fd).
struct Example1Row {
  bool ca, pb, fd;
  double cost, damage;
};

constexpr Example1Row kExample1[] = {
    {false, false, false, 0, 0}, {false, false, true, 2, 10},
    {false, true, false, 3, 0},  {false, true, true, 5, 310},
    {true, false, false, 1, 200}, {true, false, true, 3, 210},
    {true, true, false, 4, 200}, {true, true, true, 6, 310},
};

class Example1Table : public ::testing::TestWithParam<Example1Row> {};

TEST_P(Example1Table, CostAndDamageMatchThePaper) {
  const auto m = casestudies::make_factory();
  const auto& row = GetParam();
  Attack x(3);
  if (row.ca) x.set(m.tree.bas_index(*m.tree.find("ca")));
  if (row.pb) x.set(m.tree.bas_index(*m.tree.find("pb")));
  if (row.fd) x.set(m.tree.bas_index(*m.tree.find("fd")));
  EXPECT_DOUBLE_EQ(total_cost(m, x), row.cost);
  EXPECT_DOUBLE_EQ(total_damage(m, x), row.damage);
}

INSTANTIATE_TEST_SUITE_P(Paper, Example1Table,
                         ::testing::ValuesIn(kExample1));

TEST(Structure, OrGatePropagation) {
  const auto m = casestudies::make_factory();
  const auto x = make_attack(m.tree, {"ca"});
  const auto s = evaluate_structure(m.tree, x);
  EXPECT_TRUE(s[*m.tree.find("ca")]);
  EXPECT_TRUE(s[*m.tree.find("ps")]);   // OR reached via one child
  EXPECT_FALSE(s[*m.tree.find("dr")]);  // AND not reached
}

TEST(Structure, AndGateNeedsAllChildren) {
  const auto m = casestudies::make_factory();
  EXPECT_FALSE(structure(m.tree, make_attack(m.tree, {"pb"}),
                         *m.tree.find("dr")));
  EXPECT_FALSE(structure(m.tree, make_attack(m.tree, {"fd"}),
                         *m.tree.find("dr")));
  EXPECT_TRUE(structure(m.tree, make_attack(m.tree, {"pb", "fd"}),
                        *m.tree.find("dr")));
}

TEST(Structure, SuccessfulAttackMeansRootReached) {
  const auto m = casestudies::make_factory();
  EXPECT_TRUE(is_successful(m.tree, make_attack(m.tree, {"ca"})));
  EXPECT_FALSE(is_successful(m.tree, make_attack(m.tree, {"fd"})));
  EXPECT_FALSE(is_successful(m.tree, empty_attack(m.tree)));
}

TEST(Structure, MonotoneInTheAttack) {
  // The structure function is monotone: growing an attack can only reach
  // more nodes (the partial order of Def. 2).
  const auto m = casestudies::make_factory();
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      if ((a & b) != a) continue;  // a not a subset of b
      const auto sa = evaluate_structure(m.tree, Attack::from_mask(3, a));
      const auto sb = evaluate_structure(m.tree, Attack::from_mask(3, b));
      for (NodeId v = 0; v < m.tree.node_count(); ++v)
        EXPECT_LE(sa[v], sb[v]);
    }
  }
}

TEST(Structure, RejectsSizeMismatch) {
  const auto m = casestudies::make_factory();
  EXPECT_THROW(evaluate_structure(m.tree, Attack(2)), ModelError);
}

TEST(Structure, MakeAttackRejectsUnknownOrInternalNames) {
  const auto m = casestudies::make_factory();
  EXPECT_THROW(make_attack(m.tree, {"nope"}), ModelError);
  EXPECT_THROW(make_attack(m.tree, {"dr"}), ModelError);  // gate, not BAS
}

TEST(Structure, AttackToStringListsBasNames) {
  const auto m = casestudies::make_factory();
  EXPECT_EQ(attack_to_string(m.tree, make_attack(m.tree, {"pb", "fd"})),
            "{pb, fd}");
  EXPECT_EQ(attack_to_string(m.tree, empty_attack(m.tree)), "{}");
}

}  // namespace
}  // namespace atcd
