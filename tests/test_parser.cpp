#include "at/parser.hpp"

#include <gtest/gtest.h>

#include "at/dot.hpp"
#include "casestudies/factory.hpp"
#include "core/cdat.hpp"
#include "core/problems.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

constexpr const char* kFactoryText = R"(
# Fig. 1 of the paper: factory production shutdown.
bas ca cost=1
bas pb cost=3
bas fd cost=2 damage=10
and dr = pb, fd damage=100
or ps = ca, dr damage=200
root ps
)";

TEST(Parser, ParsesTheFactoryModel) {
  const auto m = parse_model(kFactoryText);
  EXPECT_EQ(m.tree.node_count(), 5u);
  EXPECT_EQ(m.tree.bas_count(), 3u);
  EXPECT_EQ(m.tree.name(m.tree.root()), "ps");
  EXPECT_DOUBLE_EQ(m.cost[m.tree.bas_index(*m.tree.find("pb"))], 3.0);
  EXPECT_DOUBLE_EQ(m.damage[*m.tree.find("dr")], 100.0);
  EXPECT_DOUBLE_EQ(m.prob[0], 1.0);  // default
}

TEST(Parser, ParsedModelMatchesBuiltModel) {
  const auto parsed = parse_model(kFactoryText);
  const CdAt from_text{parsed.tree, parsed.cost, parsed.damage};
  const auto built = casestudies::make_factory();
  EXPECT_TRUE(atcd::testing::fronts_equal(cdpf(from_text), cdpf(built)));
}

TEST(Parser, RootStatementOptionalWhenUnique) {
  const auto m = parse_model("bas a\nbas b\nor top = a, b\n");
  EXPECT_EQ(m.tree.name(m.tree.root()), "top");
}

TEST(Parser, ProbAttribute) {
  const auto m = parse_model("bas a prob=0.25 cost=2\nor top = a\n");
  EXPECT_DOUBLE_EQ(m.prob[0], 0.25);
}

TEST(Parser, ReportsLineNumbers) {
  try {
    parse_model("bas a\nbas a\n");
    FAIL() << "expected ModelError/ParseError";
  } catch (const Error& e) {
    // Duplicate name is a structural error raised while parsing line 2.
    SUCCEED();
  }
  try {
    parse_model("bas a\nxyzzy b\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsForwardReferences) {
  EXPECT_THROW(parse_model("or top = a\nbas a\n"), ParseError);
}

TEST(Parser, RejectsBadProbability) {
  EXPECT_THROW(parse_model("bas a prob=1.5\n"), ParseError);
}

TEST(Parser, RejectsUnknownAttribute) {
  EXPECT_THROW(parse_model("bas a foo=1\n"), ParseError);
}

TEST(Parser, RejectsUndefinedRoot) {
  EXPECT_THROW(parse_model("bas a\nroot zz\n"), ParseError);
}

TEST(Parser, RoundTripSerialisation) {
  Rng rng(7);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 8, it % 2 == 0);
    const auto text = serialize_model(m.tree, m.cost, m.damage, &m.prob);
    const auto back = parse_model(text);
    ASSERT_EQ(back.tree.node_count(), m.tree.node_count());
    ASSERT_EQ(back.tree.bas_count(), m.tree.bas_count());
    ASSERT_EQ(back.cost, m.cost);
    ASSERT_EQ(back.prob, m.prob);
    ASSERT_EQ(back.damage, m.damage);
    ASSERT_EQ(back.tree.name(back.tree.root()), m.tree.name(m.tree.root()));
  }
}

TEST(Dot, ContainsNodesEdgesAndDecorations) {
  const auto m = casestudies::make_factory();
  const auto dot = to_dot(m.tree, m.cost, m.damage);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ps"), std::string::npos);
  EXPECT_NE(dot.find("d=200"), std::string::npos);
  EXPECT_NE(dot.find("c=3"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  AttackTree t;
  t.add_bas("a\"b");
  t.finalize();
  const auto dot = to_dot(t);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace atcd
