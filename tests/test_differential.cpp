/// Seeded cross-engine differential fuzzing: for N random tree/DAG
/// models per problem, every capable *exact* backend must agree with the
/// enumerative oracle (or, for probabilistic DAGs where enumeration is
/// unsupported, a local brute-force oracle) on the optimal value — and
/// every reported witness must actually evaluate to the reported
/// (cost, damage), so an engine can't be right by accident.
///
/// On any mismatch the failing model's parser text and seed are printed,
/// so the case replays as a one-liner through atcd_cli / atcd_server.
///
/// Iteration count: ATCD_FUZZ_ITERS (default 30; CI's nightly fuzz-smoke
/// job runs 200).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "at/parser.hpp"
#include "core/cdat.hpp"
#include "core/enumerative.hpp"
#include "engine/batch.hpp"
#include "helpers.hpp"
#include "pareto/metrics.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

using engine::Instance;
using engine::Problem;
using testing::fronts_equal;

constexpr double kTol = 1e-6;

std::size_t iters() {
  if (const char* env = std::getenv("ATCD_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 30;
}

std::string dump(const CdAt& m, std::uint64_t seed) {
  return "seed=" + std::to_string(seed) + "\nmodel:\n" +
         serialize_model(m.tree, m.cost, m.damage);
}

std::string dump(const CdpAt& m, std::uint64_t seed) {
  return "seed=" + std::to_string(seed) + "\nmodel:\n" +
         serialize_model(m.tree, m.cost, m.damage, &m.prob);
}

/// The exact backends whose capabilities cover (p, traits), by name.
std::vector<std::string> capable_exact_engines(Problem p,
                                               const engine::Traits& t) {
  std::vector<std::string> names;
  for (const engine::Backend* b : engine::default_registry().all()) {
    const auto caps = b->capabilities();
    if (!caps.exact) continue;  // nsga2: approximate, no agreement claim
    if (caps.max_bas < t.bas) continue;
    if (!b->supports(p, t)) continue;
    names.push_back(b->name());
  }
  return names;
}

engine::SolveResult run(Problem p, const CdAt& m, double bound,
                        const std::string& backend) {
  return engine::solve_one(Instance::of(p, m, bound, backend));
}

engine::SolveResult run(Problem p, const CdpAt& m, double bound,
                        const std::string& backend) {
  return engine::solve_one(Instance::of(p, m, bound, backend));
}

// -- Witness evaluation (independent of any engine). ----------------------

double witness_damage(const CdAt& m, const Attack& x) {
  return total_damage(m, x);
}

/// d̂_E by brute force over actualizations — deliberately *not* the BDD,
/// so the BDD engine is checked against independent arithmetic.
double witness_damage(const CdpAt& m, const Attack& x) {
  return expected_damage_exact(m, x);
}

template <class Model>
void check_front_witnesses(const Model& m, const Front2d& front,
                           const std::string& engine_name,
                           const std::string& context) {
  for (std::size_t i = 0; i < front.size(); ++i) {
    const FrontPoint& pt = front[i];
    ASSERT_EQ(pt.witness.size(), m.tree.bas_count())
        << engine_name << " front point " << i << ": bad witness size\n"
        << context;
    EXPECT_NEAR(total_cost(m, pt.witness), pt.value.cost, kTol)
        << engine_name << " front point " << i
        << ": witness cost != reported cost\n" << context;
    EXPECT_NEAR(witness_damage(m, pt.witness), pt.value.damage, kTol)
        << engine_name << " front point " << i
        << ": witness damage != reported damage\n" << context;
  }
}

/// gtest wrapper over pareto/metrics.hpp's epsilon-domination check.
/// Two fronts that epsilon-cover each other describe the same frontier —
/// point-for-point equality is too strict for probabilistic models,
/// where summation order makes 1e-15-scale damage differences flip the
/// survival of dominated-up-to-noise points between engines.
::testing::AssertionResult covers_up_to_eps(const Front2d& a, const Front2d& b,
                                          double tol) {
  std::string unmatched;
  if (!atcd::epsilon_covers(a, b, tol, &unmatched))
    return ::testing::AssertionFailure() << unmatched;
  return ::testing::AssertionSuccess();
}

/// One (problem, model) differential round: every capable exact engine
/// vs the given oracle result.  \p exact_arithmetic marks deterministic
/// models (integer decorations, exact sums): fronts must then match
/// point-for-point and single-objective cost tie-breaks must agree.
/// Probabilistic rounds compare fronts by mutual epsilon-domination and
/// skip the cost tie-break for the damage-maximization problems.
template <class Model>
void differential_round(Problem p, const Model& m, double bound,
                        const engine::SolveResult& oracle,
                        const std::string& oracle_name,
                        const std::string& context,
                        bool exact_arithmetic) {
  ASSERT_TRUE(oracle.ok) << oracle_name << ": " << oracle.error << "\n"
                         << context;
  const engine::Traits traits = engine::traits_of(m);
  for (const std::string& name : capable_exact_engines(p, traits)) {
    if (name == oracle_name) continue;
    const engine::SolveResult r = run(p, m, bound, name);
    ASSERT_TRUE(r.ok) << name << ": " << r.error << "\n" << context;
    if (engine::is_front(p)) {
      const bool agree =
          exact_arithmetic
              ? r.front.same_values(oracle.front, kTol)
              : covers_up_to_eps(r.front, oracle.front, kTol) &&
                    covers_up_to_eps(oracle.front, r.front, kTol);
      EXPECT_TRUE(agree)
          << name << " front disagrees with " << oracle_name << "\n"
          << name << ":\n" << r.front.to_string() << oracle_name << ":\n"
          << oracle.front.to_string() << context;
      check_front_witnesses(m, r.front, name, context);
    } else {
      ASSERT_EQ(r.attack.feasible, oracle.attack.feasible)
          << name << " feasibility disagrees with " << oracle_name << "\n"
          << context;
      if (!oracle.attack.feasible) continue;
      // Optimal values must agree; witnesses may differ but must
      // actually achieve the reported numbers and satisfy the bound.
      EXPECT_NEAR(r.attack.damage, oracle.attack.damage, kTol)
          << name << " vs " << oracle_name << " (" << engine::to_string(p)
          << ", bound=" << bound << ")\n" << context;
      // DgC/EDgC maximize damage; cost only breaks ties, and ties at
      // float-noise scale resolve differently per engine — compare the
      // cost only where arithmetic is exact.  CgD/CgED *minimize* cost,
      // so there the cost is the optimum and must always agree.
      if (exact_arithmetic || p == Problem::Cgd || p == Problem::Cged)
        EXPECT_NEAR(r.attack.cost, oracle.attack.cost, kTol)
            << name << " vs " << oracle_name << " (" << engine::to_string(p)
            << ", bound=" << bound << ")\n" << context;
      EXPECT_NEAR(total_cost(m, r.attack.witness), r.attack.cost, kTol)
          << name << ": witness cost != reported cost\n" << context;
      EXPECT_NEAR(witness_damage(m, r.attack.witness), r.attack.damage, kTol)
          << name << ": witness damage != reported damage\n" << context;
      if (p == Problem::Dgc || p == Problem::Edgc)
        EXPECT_LE(r.attack.cost, bound + kTol)
            << name << ": witness over budget\n" << context;
      if (p == Problem::Cgd || p == Problem::Cged)
        EXPECT_GE(r.attack.damage, bound - kTol)
            << name << ": witness under threshold\n" << context;
    }
  }
}

/// A damage threshold placed safely *between* achievable damages (or
/// beyond the maximum), so float noise around an achievable value can't
/// flip feasibility decisions between engines.
double pick_threshold(const Front2d& oracle_front, Rng& rng) {
  if (oracle_front.empty()) return 1.0;
  const std::size_t i = rng.below(oracle_front.size() + 1);
  if (i == 0) return 0.0;  // always feasible (the empty attack)
  const double below = oracle_front[i - 1].value.damage;
  if (i == oracle_front.size()) return below * 1.25 + 1.0;  // infeasible
  return (below + oracle_front[i].value.damage) / 2.0;
}

double total_cost_sum(const std::vector<double>& cost) {
  double s = 0.0;
  for (double c : cost) s += c;
  return s;
}

TEST(Differential, DeterministicTreeAndDagEnginesAgree) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xD1FFull * 1000 + seed);
    const bool treelike = seed % 2 == 0;
    CdAt m = testing::random_cdat(rng, 2 + rng.below(9), treelike);
    // Every third deterministic model is made additive (zero internal
    // damage) so the knapsack backend joins the differential pool.
    if (seed % 3 == 0)
      for (NodeId v = 0; v < static_cast<NodeId>(m.tree.node_count()); ++v)
        if (!m.tree.is_bas(v)) m.damage[v] = 0.0;
    const std::string context = dump(m, seed);

    const engine::SolveResult oracle_front =
        run(Problem::Cdpf, m, 0.0, "enumerative");
    differential_round(Problem::Cdpf, m, 0.0, oracle_front, "enumerative",
                       context, /*exact_arithmetic=*/true);
    if (::testing::Test::HasFailure()) return;

    const double budget = rng.uniform(0.0, total_cost_sum(m.cost) * 1.1);
    differential_round(Problem::Dgc, m, budget,
                       run(Problem::Dgc, m, budget, "enumerative"),
                       "enumerative", context, /*exact_arithmetic=*/true);
    ASSERT_TRUE(oracle_front.ok);
    const double threshold = pick_threshold(oracle_front.front, rng);
    differential_round(Problem::Cgd, m, threshold,
                       run(Problem::Cgd, m, threshold, "enumerative"),
                       "enumerative", context, /*exact_arithmetic=*/true);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(Differential, ProbabilisticTreeEnginesAgree) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xF0F5ull * 1000 + seed);
    const CdpAt m =
        testing::random_cdpat(rng, 2 + rng.below(8), /*treelike=*/true);
    const std::string context = dump(m, seed);

    const engine::SolveResult oracle_front =
        run(Problem::Cedpf, m, 0.0, "enumerative");
    differential_round(Problem::Cedpf, m, 0.0, oracle_front, "enumerative",
                       context, /*exact_arithmetic=*/false);
    if (::testing::Test::HasFailure()) return;

    const double budget = rng.uniform(0.0, total_cost_sum(m.cost) * 1.1);
    differential_round(Problem::Edgc, m, budget,
                       run(Problem::Edgc, m, budget, "enumerative"),
                       "enumerative", context, /*exact_arithmetic=*/false);
    ASSERT_TRUE(oracle_front.ok);
    const double threshold = pick_threshold(oracle_front.front, rng);
    differential_round(Problem::Cged, m, threshold,
                       run(Problem::Cged, m, threshold, "enumerative"),
                       "enumerative", context, /*exact_arithmetic=*/false);
    if (::testing::Test::HasFailure()) return;
  }
}

/// Probabilistic DAGs: enumeration is unsupported (per-node independence
/// breaks), so the oracle is a local brute force — all attacks scored
/// with expected_damage_exact(), fronts/optima derived here.  This
/// checks the BDD engine against completely independent arithmetic.
TEST(Differential, ProbabilisticDagBddAgreesWithBruteForce) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xDA6ull * 1000 + seed);
    const CdpAt m =
        testing::random_cdpat(rng, 2 + rng.below(6), /*treelike=*/false);
    if (m.tree.is_treelike()) continue;  // rare: sharing didn't trigger
    const std::string context = dump(m, seed);
    const std::size_t bas = m.tree.bas_count();
    ASSERT_LE(bas, 12u);

    std::vector<FrontPoint> candidates;
    OptAttack best_within;  // EDgC oracle
    const double budget = rng.uniform(0.0, total_cost_sum(m.cost) * 1.1);
    for (std::uint64_t mask = 0; mask < (1ull << bas); ++mask) {
      const Attack x = Attack::from_mask(bas, mask);
      const double c = total_cost(m, x);
      const double d = expected_damage_exact(m, x);
      candidates.push_back({CdPoint{c, d}, x});
      if (c <= budget &&
          (!best_within.feasible || d > best_within.damage ||
           (d == best_within.damage && c < best_within.cost)))
        best_within = OptAttack{true, c, d, x};
    }
    const Front2d oracle_front = Front2d::of_candidates(std::move(candidates));

    const engine::SolveResult bdd_front =
        run(Problem::Cedpf, m, 0.0, "bdd");
    ASSERT_TRUE(bdd_front.ok) << bdd_front.error << "\n" << context;
    EXPECT_TRUE(covers_up_to_eps(bdd_front.front, oracle_front, kTol) &&
                covers_up_to_eps(oracle_front, bdd_front.front, kTol))
        << "bdd front disagrees with brute force\nbdd:\n"
        << bdd_front.front.to_string() << "brute:\n"
        << oracle_front.to_string() << context;
    check_front_witnesses(m, bdd_front.front, "bdd", context);

    const engine::SolveResult bdd_edgc = run(Problem::Edgc, m, budget, "bdd");
    ASSERT_TRUE(bdd_edgc.ok) << bdd_edgc.error << "\n" << context;
    ASSERT_EQ(bdd_edgc.attack.feasible, best_within.feasible) << context;
    if (best_within.feasible) {
      EXPECT_NEAR(bdd_edgc.attack.damage, best_within.damage, kTol)
          << "bdd EDgC disagrees with brute force (budget=" << budget
          << ")\n" << context;
      EXPECT_LE(bdd_edgc.attack.cost, budget + kTol) << context;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

/// The models behind the failing prints must round-trip through the
/// parser, or the "reproducibility" promise above is hollow.
TEST(Differential, FailureDumpsRoundTripThroughTheParser) {
  Rng rng(77);
  const CdpAt m = testing::random_cdpat(rng, 8, /*treelike=*/false);
  const ParsedModel p =
      parse_model(serialize_model(m.tree, m.cost, m.damage, &m.prob));
  CdpAt back;
  back.tree = p.tree;
  back.cost = p.cost;
  back.damage = p.damage;
  back.prob = p.prob;
  const engine::SolveResult a = run(Problem::Cedpf, m, 0.0, "bdd");
  const engine::SolveResult b = run(Problem::Cedpf, back, 0.0, "bdd");
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_TRUE(fronts_equal(a.front, b.front));
}

}  // namespace
}  // namespace atcd
