#include "poly/poly_engine.hpp"

#include <gtest/gtest.h>

#include "bdd/at_bdd.hpp"
#include "casestudies/dataserver.hpp"
#include "core/bottom_up_prob.hpp"
#include "helpers.hpp"
#include "poly/multilinear.hpp"

namespace atcd {
namespace {

using atcd::testing::fronts_equal;
using poly::Multilinear;

// ---- Multilinear arithmetic. ----

TEST(Multilinear, ConstantsAndVariables) {
  const auto c = Multilinear::constant(3.5);
  EXPECT_DOUBLE_EQ(c.coefficient(0), 3.5);
  EXPECT_DOUBLE_EQ(c.evaluate({}), 3.5);
  const auto t0 = Multilinear::variable(0);
  EXPECT_DOUBLE_EQ(t0.evaluate({0.25}), 0.25);
  EXPECT_TRUE(Multilinear().is_zero());
  EXPECT_TRUE(Multilinear::constant(0.0).is_zero());
}

TEST(Multilinear, IdempotentProduct) {
  // t0 * t0 == t0 (indicator variables).
  const auto t0 = Multilinear::variable(0);
  const auto sq = t0 * t0;
  EXPECT_DOUBLE_EQ(sq.coefficient(1), 1.0);
  EXPECT_EQ(sq.term_count(), 1u);
  EXPECT_DOUBLE_EQ(sq.evaluate({0.3}), 0.3);
}

TEST(Multilinear, ProductExpandsCorrectly) {
  // (1 + t0)(2 + t1) = 2 + t1 + 2 t0 + t0 t1.
  const auto p = (Multilinear::constant(1) + Multilinear::variable(0)) *
                 (Multilinear::constant(2) + Multilinear::variable(1));
  EXPECT_DOUBLE_EQ(p.coefficient(0b00), 2.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0b01), 2.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0b10), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(0b11), 1.0);
}

TEST(Multilinear, OrCombineMatchesProbabilityRule) {
  const auto t0 = Multilinear::variable(0);
  const auto t1 = Multilinear::variable(1);
  const auto p = or_combine(t0, t1);
  // E = q0 + q1 - q0 q1.
  EXPECT_DOUBLE_EQ(p.evaluate({0.3, 0.5}), 0.3 + 0.5 - 0.15);
  // Idempotence through OR: t0 ⋆ t0 = t0.
  const auto same = or_combine(t0, t0);
  EXPECT_DOUBLE_EQ(same.evaluate({0.3}), 0.3);
}

TEST(Multilinear, CancellationErasesTerms) {
  const auto t0 = Multilinear::variable(0);
  auto z = t0;
  z -= t0;
  EXPECT_TRUE(z.is_zero());
}

TEST(Multilinear, VariableIndexRange) {
  EXPECT_THROW(Multilinear::variable(poly::kMaxVars), Error);
}

// ---- The engine. ----

TEST(PolyEngine, NoSharedVariablesOnTrees) {
  Rng rng(81);
  const auto t = atcd::testing::random_tree(rng, 8);
  const PolyEngine e(t);
  EXPECT_EQ(e.shared_bas_count(), 0u);
}

TEST(PolyEngine, DetectsSharedBassOnTheDataServer) {
  const auto m = casestudies::make_dataserver();
  const PolyEngine e(m.tree);
  // b6 feeds three exploits; b1/b2/b3 feed the terminal chain and the
  // connect OR through user_access_smtp.
  EXPECT_GE(e.shared_bas_count(), 4u);
}

TEST(PolyEngine, MatchesTreeFormulaOnTrees) {
  Rng rng(82);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 7, /*treelike=*/true);
    const PolyEngine e(m.tree);
    const Attack x = Attack::from_mask(7, rng.below(128));
    const auto a = e.probabilistic_structure(m, x);
    const auto b = probabilistic_structure(m, x);
    for (NodeId v = 0; v < m.tree.node_count(); ++v)
      ASSERT_NEAR(a[v], b[v], 1e-12);
  }
}

TEST(PolyEngine, MatchesBddAndExactEnumerationOnDags) {
  Rng rng(83);
  int dags = 0;
  for (int it = 0; it < 25 && dags < 8; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 7, /*treelike=*/false);
    if (m.tree.is_treelike()) continue;
    ++dags;
    const PolyEngine pe(m.tree);
    const AtBdd be(m.tree);
    for (int rep = 0; rep < 4; ++rep) {
      const Attack x = Attack::from_mask(7, rng.below(128));
      const double dp = pe.expected_damage(m, x);
      ASSERT_NEAR(dp, be.expected_damage(m, x), 1e-9);
      ASSERT_NEAR(dp, expected_damage_exact(m, x), 1e-9);
    }
  }
  EXPECT_GE(dags, 4);
}

TEST(PolyEngine, PerNodeProbabilitiesMatchBddOnDags) {
  Rng rng(84);
  for (int it = 0; it < 15; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/false);
    const PolyEngine pe(m.tree);
    const AtBdd be(m.tree);
    const Attack x = Attack::from_mask(6, rng.below(64));
    const auto a = pe.probabilistic_structure(m, x);
    const auto b = be.probabilistic_structure(m, x);
    for (NodeId v = 0; v < m.tree.node_count(); ++v)
      ASSERT_NEAR(a[v], b[v], 1e-9);
  }
}

TEST(PolyEngine, CedpfPolyMatchesCedpfBdd) {
  const auto det = casestudies::make_dataserver();
  CdpAt m{det.tree, det.cost, det.damage,
          std::vector<double>(det.tree.bas_count(), 0.6)};
  EXPECT_TRUE(fronts_equal(cedpf_poly(m), cedpf_bdd(m), 1e-7));
}

TEST(PolyEngine, CedpfPolyMatchesBottomUpOnTrees) {
  Rng rng(85);
  const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/true);
  EXPECT_TRUE(fronts_equal(cedpf_poly(m), cedpf_bottom_up(m), 1e-9));
}

TEST(PolyEngine, CapacityGuards) {
  Rng rng(86);
  const auto m = atcd::testing::random_cdpat(rng, 10, true);
  EXPECT_THROW(cedpf_poly(m, /*max_bas=*/8), CapacityError);
}

}  // namespace
}  // namespace atcd
