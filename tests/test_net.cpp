/// Tests for the network transport (src/net/): loopback JSON-lines
/// serving with byte parity against the stdin transport on twin
/// dispatchers, multi-client pipelining with out-of-order id matching,
/// connection caps, malformed and truncated HTTP/JSON frames answered
/// with typed errors (never a crash), and SIGTERM/SIGINT graceful
/// drain delivering the structured shutdown response as the final line
/// of every open connection.

#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "api/server.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace atcd {
namespace {

using namespace atcd::api;

const char* kDetModel =
    "bas a cost=1 damage=2\n"
    "bas b cost=4 damage=1\n"
    "or r = a, b damage=10\n";

std::string solve_line(const std::string& id, double bound = 0.0,
                       bool has_bound = false) {
  Request r;
  r.id = id;
  SolveRequest s;
  s.spec = {has_bound ? engine::Problem::Dgc : engine::Problem::Cdpf, bound,
            has_bound, "", kDetModel};
  r.op = std::move(s);
  return encode_request(r);
}

std::string shutdown_line(const std::string& id) {
  Request r;
  r.id = id;
  r.op = ShutdownRequest{};
  return encode_request(r);
}

/// Sweep big enough to still be in flight when a drain lands.
std::string sweep_line(const std::string& id) {
  Request r;
  r.id = id;
  AnalyzeSweepRequest a;
  a.problem = engine::Problem::Dgc;
  a.axes = {"cost:a:1:8:40", "damage:b:1:8:40"};
  a.bound = 6.0;
  a.has_bound = true;
  a.model = kDetModel;
  r.op = std::move(a);
  return encode_request(r);
}

std::string id_of(const std::string& response) {
  const Decoded<Response> dec = decode_response(response);
  return dec.code == ErrorCode::Ok ? dec.value.id : std::string();
}

bool is_shutdown(const std::string& response) {
  return response.find("\"kind\":\"shutdown\"") != std::string::npos;
}

/// Blanks the scheduling-dependent cache-disposition member so
/// cross-connection runs compare byte-stably (the payload values are
/// identical either way).
std::string normalize(std::string line) {
  const std::string key = "\"cache\":\"";
  const std::size_t p = line.find(key);
  if (p == std::string::npos) return line;
  const std::size_t v = p + key.size();
  const std::size_t q = line.find('"', v);
  return line.substr(0, v) + "x" + line.substr(q);
}

struct ServerFixture {
  explicit ServerFixture(net::ServerOptions opt = {}) : server(dispatcher, opt) {
    std::string err;
    ok = server.start(&err);
    EXPECT_TRUE(ok) << err;
  }
  ~ServerFixture() {
    if (ok) {
      server.request_drain();
      server.wait();
    }
  }
  api::Dispatcher dispatcher;
  net::Server server;
  bool ok = false;
};

net::Client connect_to(const net::Server& server) {
  std::string err;
  net::Client c("127.0.0.1", server.port(), &err);
  EXPECT_TRUE(c.valid()) << err;
  return c;
}

// ---------------------------------------------------------------------------
// JSON-lines over TCP.
// ---------------------------------------------------------------------------

TEST(NetServe, LockstepParityWithStdinTransport) {
  // The same script through a socket and through serve_json on a twin
  // dispatcher: every response line must be byte-identical (single
  // lockstep connection, so even cache dispositions are deterministic).
  std::vector<std::string> script = {
      solve_line("1"), solve_line("2", 3.0, true), solve_line("3"),
      sweep_line("4"), shutdown_line("5")};

  std::string joined;
  for (const auto& line : script) joined += line + "\n";
  api::Dispatcher twin;
  std::istringstream in(joined);
  std::ostringstream out;
  serve_json(in, out, twin, {});
  std::vector<std::string> expected;
  {
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line)) expected.push_back(line);
  }

  ServerFixture fx;
  net::Client client = connect_to(fx.server);
  std::vector<std::string> got;
  std::string resp;
  for (const auto& line : script) {
    ASSERT_TRUE(client.request(line, &resp));
    got.push_back(resp);
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "line " << i;
  EXPECT_TRUE(is_shutdown(got.back()));
}

TEST(NetServe, PipelinedOutOfOrderIdMatching) {
  net::ServerOptions opt;
  opt.serve.threads = 4;
  ServerFixture fx(opt);
  net::Client client = connect_to(fx.server);

  // Fire 12 requests before reading anything; responses may come back
  // in any order but must cover exactly the sent ids.
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(client.send_line(solve_line(std::to_string(i), 1.0 + i, true)));
  std::map<std::string, std::string> by_id;
  std::string resp;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(client.read_line(&resp));
    by_id[id_of(resp)] = resp;
  }
  ASSERT_EQ(by_id.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = by_id.find(std::to_string(i));
    ASSERT_NE(it, by_id.end()) << "missing id " << i;
    EXPECT_EQ(decode_response(it->second).value.code, ErrorCode::Ok);
  }
  client.half_close();
  ASSERT_TRUE(client.read_line(&resp));
  EXPECT_TRUE(is_shutdown(resp));
  EXPECT_FALSE(client.read_line(&resp));  // then EOF
}

TEST(NetServe, MultiClientParityOnTwinDispatchers) {
  const std::size_t conns = 4, per_conn = 10;
  const auto script_line = [](std::size_t c, std::size_t i) {
    return solve_line("c" + std::to_string(c) + "-" + std::to_string(i),
                      1.0 + static_cast<double>((c * per_conn + i) % 5),
                      i % 2 == 0);
  };

  // Baseline: every script through the stdin transport on one twin
  // dispatcher (same shared caches as the server's).
  api::Dispatcher twin;
  std::map<std::string, std::string> expected;
  for (std::size_t c = 0; c < conns; ++c) {
    std::string joined;
    for (std::size_t i = 0; i < per_conn; ++i)
      joined += script_line(c, i) + "\n";
    std::istringstream in(joined);
    std::ostringstream out;
    serve_json(in, out, twin, {});
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
      if (!is_shutdown(line)) expected[id_of(line)] = normalize(line);
  }

  ServerFixture fx;
  std::map<std::string, std::string> got;
  std::mutex mu;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < conns; ++c)
    clients.emplace_back([&, c] {
      net::Client client = connect_to(fx.server);
      std::string resp;
      for (std::size_t i = 0; i < per_conn; ++i) {
        ASSERT_TRUE(client.request(script_line(c, i), &resp));
        std::lock_guard<std::mutex> lock(mu);
        got[id_of(resp)] = normalize(resp);
      }
    });
  for (auto& t : clients) t.join();

  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [id, line] : expected) {
    const auto it = got.find(id);
    ASSERT_NE(it, got.end()) << "missing id " << id;
    EXPECT_EQ(it->second, line) << "id " << id;
  }
}

TEST(NetServe, MalformedJsonGetsTypedErrorAndConnectionSurvives) {
  ServerFixture fx;
  net::Client client = connect_to(fx.server);
  std::string resp;
  ASSERT_TRUE(client.request("this is not json", &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::MalformedRequest);
  ASSERT_TRUE(client.request("{\"v\":1,\"op\":\"nope\"}", &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::UnknownOperation);
  // The connection keeps serving after both.
  ASSERT_TRUE(client.request(solve_line("after"), &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Ok);
  EXPECT_EQ(id_of(resp), "after");
}

TEST(NetServe, OversizedLineGetsCapacityError) {
  net::ServerOptions opt;
  opt.serve.max_line_bytes = 256;
  ServerFixture fx(opt);
  net::Client client = connect_to(fx.server);
  std::string resp;
  ASSERT_TRUE(client.request(std::string(4096, 'x'), &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Capacity);
  // Under-cap traffic still flows on the same connection.
  const std::string ok_line = solve_line("ok");
  ASSERT_LT(ok_line.size(), 256u);
  ASSERT_TRUE(client.request(ok_line, &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Ok);
}

TEST(NetServe, ConnectionCapRejectsWithTypedError) {
  net::ServerOptions opt;
  opt.max_conns = 2;
  ServerFixture fx(opt);
  net::Client a = connect_to(fx.server);
  net::Client b = connect_to(fx.server);
  std::string resp;
  ASSERT_TRUE(a.request(solve_line("a"), &resp));
  ASSERT_TRUE(b.request(solve_line("b"), &resp));
  // Both slots taken: the third client reads one typed capacity error,
  // then EOF.
  net::Client c = connect_to(fx.server);
  ASSERT_TRUE(c.read_line(&resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Capacity);
  EXPECT_FALSE(c.read_line(&resp));
  // The earlier connections were not disturbed.
  ASSERT_TRUE(a.request(solve_line("a2"), &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Ok);
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(NetDrain, CompletesInFlightAndDeliversShutdownOnEveryConnection) {
  net::ServerOptions opt;
  opt.serve.threads = 2;  // pipelined, so the sweep stays in flight
  api::Dispatcher dispatcher;
  net::Server server(dispatcher, opt);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  // One busy connection: a heavy sweep followed by a quick solve.
  // Receiving the solve's response proves the reader consumed the sweep
  // line first, so the sweep is genuinely in flight at drain time.
  net::Client busy = connect_to(server);
  ASSERT_TRUE(busy.send_line(sweep_line("heavy")));
  ASSERT_TRUE(busy.send_line(solve_line("quick")));
  std::string resp;
  ASSERT_TRUE(busy.read_line(&resp));
  EXPECT_EQ(id_of(resp), "quick");

  // Two idle connections (established: each did one exchange).
  net::Client idle1 = connect_to(server);
  net::Client idle2 = connect_to(server);
  ASSERT_TRUE(idle1.request(solve_line("i1"), &resp));
  ASSERT_TRUE(idle2.request(solve_line("i2"), &resp));

  server.request_drain();

  // The busy connection first gets the completed in-flight sweep, then
  // the structured shutdown response as its final line.
  ASSERT_TRUE(busy.read_line(&resp));
  EXPECT_EQ(id_of(resp), "heavy");
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Ok);
  ASSERT_TRUE(busy.read_line(&resp));
  EXPECT_TRUE(is_shutdown(resp));
  EXPECT_FALSE(busy.read_line(&resp));

  // Every idle connection's final line is the shutdown response too.
  for (net::Client* c : {&idle1, &idle2}) {
    ASSERT_TRUE(c->read_line(&resp));
    EXPECT_TRUE(is_shutdown(resp));
    EXPECT_FALSE(c->read_line(&resp));
  }

  server.wait();
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(NetDrain, SignalTriggersDrain) {
  api::Dispatcher dispatcher;
  net::Server server(dispatcher, {});
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  server.install_signal_handlers();

  net::Client client = connect_to(server);
  std::string resp;
  ASSERT_TRUE(client.request(solve_line("sig"), &resp));
  EXPECT_EQ(decode_response(resp).value.code, ErrorCode::Ok);

  std::raise(SIGTERM);
  ASSERT_TRUE(client.read_line(&resp));
  EXPECT_TRUE(is_shutdown(resp));
  EXPECT_FALSE(client.read_line(&resp));
  server.wait();
  EXPECT_EQ(server.handled(), 1u);
}

// ---------------------------------------------------------------------------
// HTTP transport.
// ---------------------------------------------------------------------------

net::ServerOptions http_options() {
  net::ServerOptions opt;
  opt.http = true;
  return opt;
}

TEST(NetHttp, PostSolveAndBuiltinGets) {
  ServerFixture fx(http_options());
  net::Client client = connect_to(fx.server);
  int status = 0;
  std::string body;
  ASSERT_TRUE(client.http_post("/api/v1", solve_line("h1"), &status, &body));
  EXPECT_EQ(status, 200);
  const Decoded<Response> dec = decode_response(body);
  EXPECT_EQ(dec.code, ErrorCode::Ok);
  EXPECT_EQ(dec.value.id, "h1");

  // Keep-alive: the same connection serves the built-in GETs.
  ASSERT_TRUE(client.http_get("/healthz", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  ASSERT_TRUE(client.http_get("/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("atcd_net_accepted_total"), std::string::npos);
}

TEST(NetHttp, TypedStatusMapping) {
  ServerFixture fx(http_options());
  int status = 0;
  std::string body;

  {  // malformed envelope -> 400 with a typed JSON body
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.http_post("/api/v1", "not json", &status, &body));
    EXPECT_EQ(status, 400);
    EXPECT_EQ(decode_response(body).value.code, ErrorCode::MalformedRequest);
  }
  {  // unknown path -> 404 (connection survives, it was a clean frame)
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.http_get("/nope", &status, &body));
    EXPECT_EQ(status, 404);
    EXPECT_EQ(decode_response(body).value.code, ErrorCode::UnknownOperation);
    ASSERT_TRUE(c.http_get("/healthz", &status, &body));
    EXPECT_EQ(status, 200);
  }
  {  // no such session -> 404 through the dispatcher's own taxonomy
    net::Client c = connect_to(fx.server);
    Request r;
    r.id = "s";
    SessionResolveRequest res;
    res.session = 424242;
    r.op = res;
    ASSERT_TRUE(c.http_post("/api/v1", encode_request(r), &status, &body));
    EXPECT_EQ(status, 404);
    EXPECT_EQ(decode_response(body).value.code, ErrorCode::NoSuchSession);
  }
}

TEST(NetHttp, MalformedFramesAreTypedNeverFatal) {
  ServerFixture fx(http_options());
  int status = 0;
  std::string body;

  {  // garbage request line -> 400, connection closed
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.send_line("GARBAGE"));
    ASSERT_TRUE(c.send_line(""));
    std::string resp;
    ASSERT_TRUE(c.read_line(&resp));
    EXPECT_NE(resp.find("400"), std::string::npos);
  }
  {  // POST without Content-Length -> 411
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.send_line("POST /api/v1 HTTP/1.1"));
    ASSERT_TRUE(c.send_line(""));
    std::string resp;
    ASSERT_TRUE(c.read_line(&resp));
    EXPECT_NE(resp.find("411"), std::string::npos);
  }
  {  // wrong method -> 405
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.send_line("DELETE /api/v1 HTTP/1.1"));
    ASSERT_TRUE(c.send_line(""));
    std::string resp;
    ASSERT_TRUE(c.read_line(&resp));
    EXPECT_NE(resp.find("405"), std::string::npos);
  }
  {  // truncated frame: headers cut mid-way, then close
    net::Client c = connect_to(fx.server);
    ASSERT_TRUE(c.send_line("POST /api/v1 HTTP/1.1"));
    ASSERT_TRUE(c.send_line("Content-Length: 100"));
    c.half_close();  // body never arrives
    std::string resp;
    EXPECT_FALSE(c.read_line(&resp));  // server just closes, no crash
  }
  // After all of the above the server still serves.
  net::Client c = connect_to(fx.server);
  ASSERT_TRUE(c.http_get("/healthz", &status, &body));
  EXPECT_EQ(status, 200);
}

TEST(NetHttp, OversizedBodyGets413) {
  net::ServerOptions opt = http_options();
  opt.serve.max_line_bytes = 256;
  ServerFixture fx(opt);
  net::Client client = connect_to(fx.server);
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      client.http_post("/api/v1", std::string(4096, 'x'), &status, &body));
  EXPECT_EQ(status, 413);
  EXPECT_EQ(decode_response(body).value.code, ErrorCode::Capacity);
}

}  // namespace
}  // namespace atcd
