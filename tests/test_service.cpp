/// Tests for the solve-service subsystem (src/service/): canonical model
/// hashing, the sharded LRU result cache (eviction order, byte budget,
/// shard independence, collision safety), the SolveService front door
/// (cache hits for repeated and isomorphic-permuted submissions,
/// in-flight coalescing), the line protocol, and the parser round-trip
/// property wired through the canonical hash.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "at/parser.hpp"
#include "casestudies/factory.hpp"
#include "gen/random_at.hpp"
#include "helpers.hpp"
#include "service/cache.hpp"
#include "service/canon.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace atcd {
namespace {

using engine::Problem;
using service::CacheKey;
using service::canonical_hash;
using service::equal_canonical;
using service::Request;
using service::Response;
using service::ResultCache;
using service::SolveService;

// ---------------------------------------------------------------------------
// Canonical hashing.
// ---------------------------------------------------------------------------

CdAt small_model(const char* text) {
  const ParsedModel p = parse_model(text);
  return CdAt{p.tree, p.cost, p.damage};
}

CdpAt small_prob_model(const char* text) {
  const ParsedModel p = parse_model(text);
  return CdpAt{p.tree, p.cost, p.damage, p.prob};
}

constexpr const char* kBase =
    "bas a cost=1 damage=2\n"
    "bas b cost=3\n"
    "bas c cost=2 damage=1\n"
    "and g = a, b\n"
    "or root = g, c damage=5\n";

TEST(Canon, PermutedChildrenAndRenamedNodesHashEqual) {
  const CdAt m = small_model(kBase);
  // Same model: children listed in the other order, all nodes renamed,
  // statements reordered where the grammar allows.
  const CdAt iso = small_model(
      "bas z2 cost=2 damage=1\n"
      "bas z0 cost=1 damage=2\n"
      "bas z1 cost=3\n"
      "and h = z1, z0\n"
      "or top = z2, h damage=5\n");
  EXPECT_EQ(canonical_hash(m), canonical_hash(iso));
  EXPECT_TRUE(equal_canonical(m, iso));
}

TEST(Canon, DecorationsAndStructureAreSignificant) {
  const CdAt m = small_model(kBase);
  // Different cost on one BAS.
  const CdAt cost_changed = small_model(
      "bas a cost=7 damage=2\nbas b cost=3\nbas c cost=2 damage=1\n"
      "and g = a, b\nor root = g, c damage=5\n");
  // Gate type flipped.
  const CdAt gate_changed = small_model(
      "bas a cost=1 damage=2\nbas b cost=3\nbas c cost=2 damage=1\n"
      "or g = a, b\nor root = g, c damage=5\n");
  EXPECT_NE(canonical_hash(m), canonical_hash(cost_changed));
  EXPECT_NE(canonical_hash(m), canonical_hash(gate_changed));
  EXPECT_FALSE(equal_canonical(m, cost_changed));
  EXPECT_FALSE(equal_canonical(m, gate_changed));
}

TEST(Canon, SharingIsDistinguishedFromDuplication) {
  // DAG: one BAS `a` shared by both gates...
  const CdAt shared = small_model(
      "bas a cost=1\nbas b cost=2\nbas c cost=3\n"
      "and g1 = a, b\nand g2 = a, c\nor root = g1, g2\n");
  // ...vs two distinct BASs with identical decorations.
  const CdAt duplicated = small_model(
      "bas a1 cost=1\nbas a2 cost=1\nbas b cost=2\nbas c cost=3\n"
      "and g1 = a1, b\nand g2 = a2, c\nor root = g1, g2\n");
  EXPECT_NE(canonical_hash(shared), canonical_hash(duplicated));
  EXPECT_FALSE(equal_canonical(shared, duplicated));
}

TEST(Canon, DetAndProbKindsHashDifferently) {
  const char* text = "bas a cost=1\nbas b cost=2\nor root = a, b damage=3\n";
  const CdAt det = small_model(text);
  const CdpAt prob = small_prob_model(text);  // prob defaults to 1 everywhere
  EXPECT_NE(canonical_hash(det), canonical_hash(prob));
}

TEST(Canon, ProbabilityDecorationIsSignificant) {
  const CdpAt a = small_prob_model(
      "bas a cost=1 prob=0.5\nbas b cost=2\nor root = a, b damage=3\n");
  const CdpAt b = small_prob_model(
      "bas a cost=1 prob=0.9\nbas b cost=2\nor root = a, b damage=3\n");
  EXPECT_NE(canonical_hash(a), canonical_hash(b));
  EXPECT_FALSE(equal_canonical(a, b));
}

// Satellite: parser round-trip.  serialize_model() then parse_model()
// must reproduce an identical canonical model for generated random ATs.
TEST(Canon, ParserRoundTripPreservesCanonicalHash) {
  Rng rng(424242);
  gen::SuiteOptions opt;
  opt.max_n = 24;
  opt.per_size = 2;
  opt.treelike = false;  // TDAG exercises shared nodes too
  const auto suite = gen::make_suite(opt, rng);
  ASSERT_FALSE(suite.empty());
  for (const auto& entry : suite) {
    const CdpAt m = randomize_decorations(entry.tree, rng);
    const std::string text =
        serialize_model(m.tree, m.cost, m.damage, &m.prob);
    const ParsedModel back = parse_model(text);
    const CdpAt m2{back.tree, back.cost, back.damage, back.prob};
    ASSERT_EQ(canonical_hash(m), canonical_hash(m2))
        << "round-trip changed the canonical hash for:\n" << text;
    ASSERT_TRUE(equal_canonical(m, m2));
    // Deterministic view round-trips as well (prob attributes dropped).
    const CdAt d = m.deterministic();
    const ParsedModel back_d =
        parse_model(serialize_model(d.tree, d.cost, d.damage));
    ASSERT_EQ(canonical_hash(d),
              canonical_hash(CdAt{back_d.tree, back_d.cost, back_d.damage}));
  }
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

engine::SolveResult dummy_result(const char* backend) {
  engine::SolveResult r;
  r.ok = true;
  r.backend = backend;
  r.attack.feasible = true;
  r.attack.cost = 1;
  r.attack.damage = 2;
  return r;
}

CacheKey key_for(const CdAt& m, Problem p = Problem::Dgc, double bound = 0,
                 std::string backend = {}) {
  return CacheKey{canonical_hash(m), p, bound, std::move(backend)};
}

TEST(Cache, LruEvictionOrder) {
  ResultCache::Config cfg;
  cfg.shards = 1;
  cfg.max_entries = 3;
  ResultCache cache(cfg);

  std::vector<std::shared_ptr<const CdAt>> models;
  Rng rng(7);
  for (int i = 0; i < 4; ++i)
    models.push_back(
        std::make_shared<CdAt>(atcd::testing::random_cdat(rng, 5, true)));

  // Insert A, B, C; touch A; insert D -> B (the LRU) is evicted.
  for (int i = 0; i < 3; ++i)
    cache.insert(key_for(*models[i]), models[i], nullptr,
                 dummy_result("bottom-up"));
  EXPECT_TRUE(cache.lookup(key_for(*models[0]), models[0].get(), nullptr)
                  .has_value());
  cache.insert(key_for(*models[3]), models[3], nullptr,
               dummy_result("bottom-up"));

  EXPECT_TRUE(cache.lookup(key_for(*models[0]), models[0].get(), nullptr));
  EXPECT_FALSE(cache.lookup(key_for(*models[1]), models[1].get(), nullptr));
  EXPECT_TRUE(cache.lookup(key_for(*models[2]), models[2].get(), nullptr));
  EXPECT_TRUE(cache.lookup(key_for(*models[3]), models[3].get(), nullptr));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(Cache, ByteBudgetIsEnforced) {
  Rng rng(11);
  const auto model =
      std::make_shared<CdAt>(atcd::testing::random_cdat(rng, 6, true));
  // Size one entry (same model under every key, so all entries weigh the
  // same), then budget for exactly 2.5 of them.
  ResultCache::Config probe_cfg;
  probe_cfg.shards = 1;
  ResultCache sizing(probe_cfg);
  sizing.insert(key_for(*model, Problem::Dgc, 0.0), model, nullptr,
                dummy_result("x"));
  const std::size_t per_entry = sizing.stats().bytes;
  ASSERT_GT(per_entry, 0u);

  ResultCache::Config cfg;
  cfg.shards = 1;
  cfg.max_entries = 100;  // entry budget not the binding constraint
  cfg.max_bytes = per_entry * 2 + per_entry / 2;
  ResultCache cache(cfg);
  for (int i = 0; i < 5; ++i)  // distinct keys via the bound component
    cache.insert(key_for(*model, Problem::Dgc, 1.0 + i), model, nullptr,
                 dummy_result("x"));
  const auto s = cache.stats();
  EXPECT_LE(s.bytes, cfg.max_bytes);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 3u);

  // An entry bigger than the whole budget is rejected outright.
  ResultCache::Config tiny;
  tiny.shards = 1;
  tiny.max_bytes = 16;
  ResultCache tiny_cache(tiny);
  tiny_cache.insert(key_for(*model), model, nullptr, dummy_result("x"));
  EXPECT_EQ(tiny_cache.stats().entries, 0u);
}

TEST(Cache, ShardsEvictIndependently) {
  ResultCache::Config cfg;
  cfg.shards = 4;
  cfg.max_entries = 8;  // 2 per shard
  ResultCache cache(cfg);

  Rng rng(13);
  std::vector<std::shared_ptr<const CdAt>> models;
  std::vector<CacheKey> keys;
  // Collect 3 models landing on one shard and 2 on a different shard.
  std::size_t shard_a = SIZE_MAX, shard_b = SIZE_MAX;
  std::vector<std::size_t> in_a, in_b;
  while (in_a.size() < 3 || in_b.size() < 2) {
    auto m = std::make_shared<CdAt>(
        atcd::testing::random_cdat(rng, 5, rng.chance(0.5)));
    const CacheKey k = key_for(*m);
    const std::size_t s = cache.shard_index(k);
    if (shard_a == SIZE_MAX) shard_a = s;
    if (s == shard_a && in_a.size() < 3) {
      in_a.push_back(models.size());
    } else if (s != shard_a) {
      if (shard_b == SIZE_MAX) shard_b = s;
      if (s == shard_b && in_b.size() < 2)
        in_b.push_back(models.size());
      else
        continue;
    } else {
      continue;
    }
    models.push_back(std::move(m));
    keys.push_back(k);
  }

  // Fill shard B first, then overflow shard A: shard B's entries survive.
  for (std::size_t i : in_b)
    cache.insert(keys[i], models[i], nullptr, dummy_result("x"));
  for (std::size_t i : in_a)
    cache.insert(keys[i], models[i], nullptr, dummy_result("x"));

  EXPECT_EQ(cache.stats().evictions, 1u);  // only shard A overflowed
  for (std::size_t i : in_b)
    EXPECT_TRUE(cache.lookup(keys[i], models[i].get(), nullptr))
        << "shard-B entry evicted by shard-A pressure";
  // The first shard-A insert is the one LRU evicted.
  EXPECT_FALSE(cache.lookup(keys[in_a[0]], models[in_a[0]].get(), nullptr));
  EXPECT_TRUE(cache.lookup(keys[in_a[1]], models[in_a[1]].get(), nullptr));
  EXPECT_TRUE(cache.lookup(keys[in_a[2]], models[in_a[2]].get(), nullptr));
}

TEST(Cache, ForcedHashCollisionNeverServesTheWrongResult) {
  Rng rng(17);
  const auto a =
      std::make_shared<CdAt>(atcd::testing::random_cdat(rng, 5, true));
  const auto b =
      std::make_shared<CdAt>(atcd::testing::random_cdat(rng, 6, true));
  ASSERT_FALSE(equal_canonical(*a, *b));

  // Force both models onto one key, as if canonical_hash() collided.
  CacheKey forced{0xDEADBEEFull, Problem::Dgc, 5.0, ""};
  ResultCache::Config cfg;
  cfg.shards = 1;
  ResultCache cache(cfg);
  cache.insert(forced, a, nullptr, dummy_result("model-a-result"));

  // Lookup with model B on the colliding key: the deep check must refuse
  // to serve model A's result.
  const auto r = cache.lookup(forced, b.get(), nullptr);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);

  // Insert for model B under the same key: the incumbent is kept, and
  // model A still gets its own (correct) result.
  cache.insert(forced, b, nullptr, dummy_result("model-b-result"));
  const auto ra = cache.lookup(forced, a.get(), nullptr);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->backend, "model-a-result");
}

TEST(Cache, EngineHookMemoizesSolveOne) {
  const CdAt factory = casestudies::make_factory();
  ResultCache cache;
  engine::BatchOptions opt;
  opt.cache = &cache;
  const engine::Instance in = engine::Instance::of(Problem::Cdpf, factory);

  const auto cold = engine::solve_one(in, opt);
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cache.stats().hits, 0u);
  const auto warm = engine::solve_one(in, opt);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(warm.front.same_values(cold.front));

  // solve_all with repeated instances also flows through the hook.
  std::vector<engine::Instance> batch(4, in);
  const auto rs = engine::solve_all(batch, opt);
  for (const auto& r : rs) EXPECT_TRUE(r.ok);
  EXPECT_GE(cache.stats().hits, 4u);
}

// ---------------------------------------------------------------------------
// SolveService.
// ---------------------------------------------------------------------------

void expect_identical(const engine::SolveResult& a,
                      const engine::SolveResult& b) {
  ASSERT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.backend, b.backend);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].value, b.front[i].value);
    EXPECT_EQ(a.front[i].witness, b.front[i].witness);
  }
  EXPECT_EQ(a.attack.feasible, b.attack.feasible);
  EXPECT_EQ(a.attack.cost, b.attack.cost);
  EXPECT_EQ(a.attack.damage, b.attack.damage);
  EXPECT_EQ(a.attack.witness, b.attack.witness);
}

TEST(Service, RepeatedSubmissionsHitTheCache) {
  SolveService svc;
  const CdAt factory = casestudies::make_factory();
  const Request req = Request::of(Problem::Cdpf, factory);

  // Reference: an uncached engine solve.
  const auto uncached =
      engine::solve_one(engine::Instance::of(Problem::Cdpf, factory));
  ASSERT_TRUE(uncached.ok);

  const Response first = svc.handle(req);
  ASSERT_TRUE(first.result.ok);
  EXPECT_FALSE(first.cache_hit);
  const Response second = svc.handle(req);
  ASSERT_TRUE(second.result.ok);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(svc.cache().stats().hits, 1u);

  expect_identical(first.result, uncached);
  expect_identical(second.result, uncached);
}

TEST(Service, IsomorphicPermutedSubmissionHitsTheCache) {
  SolveService svc;
  // The same DAG model submitted twice: different node names, different
  // statement order, permuted child lists.
  const Response a = svc.handle(Request::of_text(
      Problem::Cdpf,
      "bas pick cost=1 damage=2\nbas drill cost=4\nbas bribe cost=3\n"
      "and two = pick, drill\nor top = two, bribe damage=9\n"));
  const Response b = svc.handle(Request::of_text(
      Problem::Cdpf,
      "bas x3 cost=3\nbas x1 cost=4\nbas x0 cost=1 damage=2\n"
      "and inner = x1, x0\nor r = x3, inner damage=9\n"));
  ASSERT_TRUE(a.result.ok);
  ASSERT_TRUE(b.result.ok);
  EXPECT_EQ(a.model_hash, b.model_hash);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  ASSERT_EQ(a.result.front.size(), b.result.front.size());
  for (std::size_t i = 0; i < a.result.front.size(); ++i) {
    EXPECT_EQ(a.result.front[i].value, b.result.front[i].value);
    // The served witnesses must be valid in the *second* submission's
    // BAS indexing: evaluating them under its model reproduces the
    // point values exactly.
    const auto& p = b.result.front[i];
    EXPECT_EQ(total_cost(*b.det, p.witness), p.value.cost);
    EXPECT_EQ(total_damage(*b.det, p.witness), p.value.damage);
  }
}

TEST(Service, CachedWitnessesAreTranslatedIntoTheProbesIndexing) {
  // Regression: the cached entry's witnesses are indexed by *its* BAS
  // creation order.  Submit a model whose resubmission swaps the two BAS
  // statements; serving the stored bitset verbatim would name the
  // expensive leaf instead of the cheap one.
  SolveService svc;
  const Response a = svc.handle(Request::of_text(
      Problem::Dgc,
      "bas cheap cost=1 damage=9\nbas pricey cost=8 damage=1\n"
      "or root = cheap, pricey\n",
      2.0));
  ASSERT_TRUE(a.result.ok);
  EXPECT_EQ(a.result.attack.cost, 1);
  EXPECT_EQ(a.result.attack.damage, 9);

  const Response b = svc.handle(Request::of_text(
      Problem::Dgc,
      "bas pricey cost=8 damage=1\nbas cheap cost=1 damage=9\n"
      "or root = cheap, pricey\n",
      2.0));
  ASSERT_TRUE(b.result.ok);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(b.result.attack.cost, 1);
  EXPECT_EQ(b.result.attack.damage, 9);
  // In the second submission "cheap" has BAS index 1, not 0.
  const auto cheap = b.det->tree.find("cheap");
  ASSERT_TRUE(cheap.has_value());
  EXPECT_TRUE(b.result.attack.witness.test(b.det->tree.bas_index(*cheap)));
  EXPECT_EQ(b.result.attack.witness.count(), 1u);
  EXPECT_EQ(total_cost(*b.det, b.result.attack.witness), 1);
  EXPECT_EQ(total_damage(*b.det, b.result.attack.witness), 9);
}

TEST(Service, NonFiniteBoundsBypassTheCache) {
  SolveService svc;
  const CdAt factory = casestudies::make_factory();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Response a = svc.handle(Request::of(Problem::Dgc, factory, nan));
  const Response b = svc.handle(Request::of(Problem::Dgc, factory, nan));
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  // NaN keys never enter the cache (NaN != NaN would make them
  // unfindable and unevictable).
  EXPECT_EQ(svc.cache().stats().entries, 0u);
  EXPECT_EQ(svc.cache().stats().insertions, 0u);
}

TEST(Service, DifferentBoundsAndEnginesDoNotShareEntries) {
  SolveService svc;
  const CdAt factory = casestudies::make_factory();
  const Response a = svc.handle(Request::of(Problem::Dgc, factory, 2.0));
  const Response b = svc.handle(Request::of(Problem::Dgc, factory, 3.0));
  ASSERT_TRUE(a.result.ok);
  ASSERT_TRUE(b.result.ok);
  EXPECT_FALSE(b.cache_hit);
  const Response c =
      svc.handle(Request::of(Problem::Cdpf, factory, 0.0, "enumerative"));
  const Response d = svc.handle(Request::of(Problem::Cdpf, factory));
  ASSERT_TRUE(c.result.ok);
  ASSERT_TRUE(d.result.ok);
  EXPECT_FALSE(d.cache_hit);  // auto-selection is a distinct key
  // But front problems ignore the bound: same key regardless of bound.
  const Response e = svc.handle(Request::of(Problem::Cdpf, factory, 17.0));
  EXPECT_TRUE(e.cache_hit);
}

/// A deliberately slow backend that counts invocations — the coalescing
/// test's probe.
class CountingBackend : public engine::Backend {
 public:
  explicit CountingBackend(std::atomic<int>& calls) : calls_(calls) {}
  const char* name() const override { return "counting"; }
  engine::Capabilities capabilities() const override {
    engine::Capabilities c;
    c.tree_det = c.dag_det = c.tree_prob = c.dag_prob = true;
    return c;
  }
  Front2d cdpf(const CdAt& m) const override {
    calls_.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Front2d::of_candidates(
        {FrontPoint{{0.0, 0.0}, DynBitset(m.tree.bas_count())}});
  }

 private:
  std::atomic<int>& calls_;
};

TEST(Service, ConcurrentIdenticalRequestsCoalesceToOneSolve) {
  std::atomic<int> calls{0};
  engine::Registry registry;
  registry.add(std::make_shared<CountingBackend>(calls));

  SolveService::Options opt;
  opt.batch.registry = &registry;
  SolveService svc(opt);

  Rng rng(23);
  const CdAt model = atcd::testing::random_cdat(rng, 6, true);
  const Request req = Request::of(Problem::Cdpf, model, 0.0, "counting");

  constexpr int kThreads = 8;
  std::vector<Response> responses(kThreads);
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&, i] { responses[i] = svc.handle(req); });
  for (auto& t : pool) t.join();

  EXPECT_EQ(calls.load(), 1) << "identical concurrent requests must "
                                "coalesce to a single backend invocation";
  int leaders = 0;
  for (const auto& r : responses) {
    ASSERT_TRUE(r.result.ok) << r.result.error;
    EXPECT_EQ(r.result.backend, "counting");
    expect_identical(r.result, responses[0].result);
    if (!r.cache_hit && !r.coalesced) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Service, TextParseFailuresComeBackAsErrors) {
  SolveService svc;
  const Response r = svc.handle(
      Request::of_text(Problem::Cdpf, "bas a cost=1\nxyzzy b\n"));
  EXPECT_FALSE(r.result.ok);
  EXPECT_NE(r.result.error.find("line 2"), std::string::npos)
      << r.result.error;
}

// Satellite: solve_one validates the model/problem pairing up front.
TEST(Service, InstanceModelMismatchIsAClearError) {
  const CdAt det = casestudies::make_factory();
  const CdpAt prob = casestudies::make_factory_probabilistic();

  engine::Instance wrong_kind;  // det model on a probabilistic problem
  wrong_kind.problem = Problem::Edgc;
  wrong_kind.det = &det;
  auto r = engine::solve_one(wrong_kind);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("lacks a probabilistic model"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("deterministic model"), std::string::npos);

  engine::Instance wrong_kind2;  // prob model on a deterministic problem
  wrong_kind2.problem = Problem::Cgd;
  wrong_kind2.prob = &prob;
  r = engine::solve_one(wrong_kind2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("lacks a deterministic model"), std::string::npos)
      << r.error;

  engine::Instance both;
  both.problem = Problem::Cdpf;
  both.det = &det;
  both.prob = &prob;
  r = engine::solve_one(both);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("both"), std::string::npos) << r.error;

  engine::Instance neither;
  neither.problem = Problem::Cdpf;
  r = engine::solve_one(neither);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("lacks a model"), std::string::npos) << r.error;

  // The service front door reports the same validation errors.
  SolveService svc;
  Request req;
  req.problem = Problem::Edgc;
  req.det = std::make_shared<CdAt>(det);
  const Response resp = svc.handle(req);
  EXPECT_FALSE(resp.result.ok);
  EXPECT_NE(resp.result.error.find("lacks a probabilistic model"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------------

TEST(Protocol, SolveStatsAndErrorsOverOneSession) {
  SolveService svc;
  std::istringstream in(
      "solve cdpf\n"
      "bas a cost=1 damage=2\n"
      "bas b cost=3\n"
      "or root = a, b damage=4\n"
      "end\n"
      "solve cdpf\n"
      "bas a cost=1 damage=2\n"
      "bas b cost=3\n"
      "or root = a, b damage=4\n"
      "end\n"
      "solve dgc bound=1 engine=enumerative\n"
      "bas a cost=1 damage=2\n"
      "bas b cost=3\n"
      "or root = a, b damage=4\n"
      "end\n"
      "solve nope\n"
      "bas z cost=1\n"
      "end\n"
      "stats\n"
      "quit\n");
  std::ostringstream out;
  const std::size_t handled = service::serve(in, out, svc);
  EXPECT_EQ(handled, 3u);
  const std::string o = out.str();

  EXPECT_NE(o.find("ok=true\n"), std::string::npos);
  EXPECT_NE(o.find("cache=miss\n"), std::string::npos);
  EXPECT_NE(o.find("cache=hit\n"), std::string::npos);
  EXPECT_NE(o.find("kind=front\n"), std::string::npos);
  EXPECT_NE(o.find("kind=attack\n"), std::string::npos);
  EXPECT_NE(o.find("engine=enumerative\n"), std::string::npos);
  EXPECT_NE(o.find("unknown problem 'nope'"), std::string::npos);
  EXPECT_NE(o.find("hits=1\n"), std::string::npos);
  // `quit` answers with a structured shutdown block, never a silent
  // exit; handled = the three solves.
  EXPECT_NE(o.find("kind=shutdown\nhandled=3\n"), std::string::npos);
  // Every response block is terminated.
  std::size_t dones = 0;
  for (auto pos = o.find("done\n"); pos != std::string::npos;
       pos = o.find("done\n", pos + 1))
    ++dones;
  EXPECT_EQ(dones, 6u);  // 3 solves + 1 error + 1 stats + shutdown
}

TEST(Protocol, UnterminatedModelBlockIsAnError) {
  SolveService svc;
  std::istringstream in("solve cdpf\nbas a cost=1\n");
  std::ostringstream out;
  service::serve(in, out, svc);
  EXPECT_NE(out.str().find("unterminated model block"), std::string::npos);
}

TEST(Protocol, EndTerminatorMayCarryAComment) {
  SolveService svc;
  std::istringstream in(
      "solve cdpf\n"
      "bas a cost=1\n"
      "bas b cost=2\n"
      "or r = a, b damage=3\n"
      "end  # that's the model\n"
      "quit\n");
  std::ostringstream out;
  const std::size_t handled = service::serve(in, out, svc);
  EXPECT_EQ(handled, 1u);
  EXPECT_NE(out.str().find("ok=true"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("unterminated"), std::string::npos);
}

TEST(Protocol, BadHeaderStillConsumesTheModelBlock) {
  // Regression: a solve line with a bad header must swallow the model
  // block that follows, or its lines get re-parsed as commands and the
  // session desyncs (one response per request is the contract).
  SolveService svc;
  std::istringstream in(
      "solve dgc bound=abc\n"
      "bas a cost=1\n"
      "bas b cost=2\n"
      "or r = a, b damage=3\n"
      "end\n"
      "solve dgc bound=nan\n"
      "bas a cost=1\n"
      "end\n"
      "solve dgc bound=5,\n"
      "bas a cost=1\n"
      "end\n"
      "quit\n");
  std::ostringstream out;
  const std::size_t handled = service::serve(in, out, svc);
  EXPECT_EQ(handled, 0u);
  const std::string o = out.str();
  EXPECT_NE(o.find("bad bound 'bound=abc'"), std::string::npos) << o;
  EXPECT_NE(o.find("must be finite"), std::string::npos) << o;
  EXPECT_NE(o.find("bad bound 'bound=5,'"), std::string::npos) << o;
  EXPECT_EQ(o.find("unknown command"), std::string::npos) << o;
  std::size_t dones = 0;
  for (auto pos = o.find("done\n"); pos != std::string::npos;
       pos = o.find("done\n", pos + 1))
    ++dones;
  EXPECT_EQ(dones, 4u);  // one block per request + the shutdown block
}

}  // namespace
}  // namespace atcd
