#include "defense/defense.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "casestudies/panda.hpp"
#include "core/problems.hpp"

namespace atcd::defense {
namespace {

std::vector<Countermeasure> factory_catalogue() {
  return {
      {"patch_it", 5.0, {"ca"}},          // stops the cyberattack
      {"steel_door", 2.0, {"fd"}},        // stops forcing the door
      {"bomb_detector", 4.0, {"pb"}},     // stops the bomb
  };
}

TEST(Defense, HardenMakesBassUnaffordable) {
  const auto m = casestudies::make_factory();
  const auto cat = factory_catalogue();
  const auto hardened =
      harden(m, cat, {true, false, false}, HardeningSemantics{});
  // The cyberattack path is gone: DgC with any sane budget can only use
  // the robot path.
  const auto r = dgc(hardened, 10.0);
  EXPECT_DOUBLE_EQ(r.damage, 310.0);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
  const auto tight = dgc(hardened, 2.0);
  EXPECT_DOUBLE_EQ(tight.damage, 10.0);  // only {fd}
}

TEST(Defense, FiniteCostFactorScalesInsteadOfRemoving) {
  const auto m = casestudies::make_factory();
  HardeningSemantics s;
  s.cost_factor = 10.0;
  const auto hardened =
      harden(m, factory_catalogue(), {true, false, false}, s);
  // ca now costs 10: still possible, just expensive.
  const auto r = dgc(hardened, 10.0);
  EXPECT_DOUBLE_EQ(r.damage, 310.0);  // robot path is cheaper anyway
  EXPECT_DOUBLE_EQ(dgc(hardened, 100.0).damage, 310.0);  // all damage nodes
}

TEST(Defense, ProbabilisticHardeningScalesProbability) {
  const auto m = casestudies::make_factory_probabilistic();
  HardeningSemantics s;
  s.cost_factor = 1.0;
  s.prob_factor = 0.5;
  const auto hardened =
      harden(m, factory_catalogue(), {true, false, false}, s);
  EXPECT_DOUBLE_EQ(hardened.prob[m.tree.bas_index(*m.tree.find("ca"))], 0.1);
  EXPECT_DOUBLE_EQ(hardened.prob[m.tree.bas_index(*m.tree.find("pb"))], 0.4);
}

TEST(Defense, RejectsBadInput) {
  const auto m = casestudies::make_factory();
  EXPECT_THROW(harden(m, factory_catalogue(), {true}, {}), ModelError);
  std::vector<Countermeasure> bad{{"x", 1.0, {"nonexistent"}}};
  EXPECT_THROW(harden(m, bad, {true}, {}), ModelError);
  std::vector<Countermeasure> gate{{"x", 1.0, {"dr"}}};
  EXPECT_THROW(harden(m, gate, {true}, {}), ModelError);
}

TEST(Defense, FrontIsAParetoStaircase) {
  const auto m = casestudies::make_factory();
  const auto front = defense_front(m, factory_catalogue());
  ASSERT_GE(front.size(), 2u);
  // First point: empty portfolio, full residual damage 310.
  EXPECT_DOUBLE_EQ(front[0].defense_cost, 0.0);
  EXPECT_DOUBLE_EQ(front[0].residual_damage, 310.0);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].defense_cost, front[i - 1].defense_cost);
    EXPECT_LT(front[i].residual_damage, front[i - 1].residual_damage);
  }
  // Full catalogue kills all damage; the cheapest all-stopping portfolio
  // costs at most 11.
  EXPECT_DOUBLE_EQ(front.back().residual_damage, 0.0);
  EXPECT_LE(front.back().defense_cost, 11.0);
}

TEST(Defense, FrontAgainstBudgetedAttacker) {
  const auto m = casestudies::make_factory();
  DefenseOptions opt;
  opt.attacker_budget = 2.0;  // attacker can only afford ca or fd
  const auto front = defense_front(m, factory_catalogue(), opt);
  EXPECT_DOUBLE_EQ(front[0].residual_damage, 200.0);  // {ca}
  // Patching ca leaves only {fd}: residual 10 for defense cost 5.
  bool found = false;
  for (const auto& p : front)
    if (p.portfolio == std::vector<std::string>{"patch_it"}) {
      EXPECT_DOUBLE_EQ(p.residual_damage, 10.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Defense, ExhaustiveCapacityGuard) {
  const auto m = casestudies::make_factory();
  std::vector<Countermeasure> big;
  for (int i = 0; i < 20; ++i) big.push_back({"cm" + std::to_string(i), 1.0, {"ca"}});
  DefenseOptions opt;
  opt.max_exhaustive = 10;
  EXPECT_THROW(defense_front(m, big, opt), CapacityError);
}

TEST(Defense, GreedyTraceIsMonotone) {
  const auto m = casestudies::make_panda().deterministic();
  std::vector<Countermeasure> cat{
      {"vet_insiders", 6.0, {"b18_internal_leakage"}},
      {"guard_station", 5.0,
       {"b19_look_for_base_station", "b15_find_base_station"}},
      {"code_signing", 4.0,
       {"b21_send_malicious_codes", "b22_malicious_codes_ran"}},
      {"encrypt_traffic", 7.0,
       {"b8_physical_layer", "b9_mac_layer", "b10_appliance_layer"}},
  };
  const auto trace = greedy_defense(m, cat, 15.0);
  ASSERT_GE(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].residual_damage, trace[i - 1].residual_damage);
    EXPECT_LE(trace[i].defense_cost, 15.0);
  }
  // The first pick should target the base station or internal leakage —
  // the paper's own advice.
  ASSERT_FALSE(trace.back().portfolio.empty());
}

TEST(Defense, GreedyStopsWhenNothingHelps) {
  const auto m = casestudies::make_factory();
  std::vector<Countermeasure> cat{{"useless", 1.0, {"ca"}}};
  // Hardening ca when the attacker has no budget anyway changes nothing.
  DefenseOptions opt;
  opt.attacker_budget = 0.0;
  const auto trace = greedy_defense(m, cat, 100.0, opt);
  EXPECT_EQ(trace.size(), 1u);  // only the empty starting point
}

}  // namespace
}  // namespace atcd::defense
