#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace atcd {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next(), vb = b.next(), vc = c.next();
    all_equal &= (va == vb);
    any_diff_c |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(7), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng r(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.5, 7.5);
    ASSERT_GE(v, 2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(7);
  const auto first = r.next();
  r.next();
  r.reseed(7);
  EXPECT_EQ(r.next(), first);
}

}  // namespace
}  // namespace atcd
