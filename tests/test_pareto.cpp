#include <gtest/gtest.h>

#include <algorithm>

#include "pareto/front2d.hpp"
#include "pareto/point.hpp"
#include "pareto/triple.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

// ---- CdPoint domination (Sec. IV-A). ----

TEST(CdPoint, DominationIsCheaperAndMoreDamaging) {
  // From Example 2: (1,200) ⊏ (2,10), (3,0), (4,200).
  const CdPoint good{1, 200};
  EXPECT_TRUE(dominates(good, CdPoint{2, 10}));
  EXPECT_TRUE(dominates(good, CdPoint{3, 0}));
  EXPECT_TRUE(dominates(good, CdPoint{4, 200}));
  EXPECT_FALSE(dominates(good, CdPoint{0, 0}));   // incomparable
  EXPECT_FALSE(dominates(good, CdPoint{1, 200})); // equal, not strict
  EXPECT_TRUE(dominates(CdPoint{5, 310}, CdPoint{6, 310}));
}

TEST(Triple, ThirdCoordinateBreaksDomination) {
  // Example 4: (0,0,0) does NOT dominate (3,0,1) — the activation bit
  // keeps the more expensive attack alive.
  EXPECT_FALSE(dominates(Triple{0, 0, 0}, Triple{3, 0, 1}));
  EXPECT_TRUE(dominates(Triple{0, 0, 0}, Triple{3, 0, 0}));
  EXPECT_TRUE(dominates(Triple{1, 5, 1}, Triple{2, 4, 0.5}));
  EXPECT_FALSE(dominates(Triple{1, 5, 0.4}, Triple{2, 4, 0.5}));
}

// ---- Front2d. ----

TEST(Front2d, KeepsExactlyTheMinimalElements) {
  std::vector<FrontPoint> cands;
  auto add = [&](double c, double d) {
    cands.push_back({CdPoint{c, d}, DynBitset(1)});
  };
  // Example 2 values.
  add(0, 0); add(2, 10); add(3, 0); add(5, 310);
  add(1, 200); add(3, 210); add(4, 200); add(6, 310);
  const auto f = Front2d::of_candidates(std::move(cands));
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0].value, (CdPoint{0, 0}));
  EXPECT_EQ(f[1].value, (CdPoint{1, 200}));
  EXPECT_EQ(f[2].value, (CdPoint{3, 210}));
  EXPECT_EQ(f[3].value, (CdPoint{5, 310}));
}

TEST(Front2d, DeduplicatesEqualValues) {
  std::vector<FrontPoint> cands;
  DynBitset w1(2), w2(2);
  w1.set(0);
  w2.set(1);
  cands.push_back({CdPoint{1, 1}, w1});
  cands.push_back({CdPoint{1, 1}, w2});
  const auto f = Front2d::of_candidates(std::move(cands));
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].witness, w1);  // first witness wins
}

TEST(Front2d, DgcAndCgdQueries) {
  std::vector<FrontPoint> cands;
  for (auto [c, d] : {std::pair{0.0, 0.0}, {1.0, 200.0}, {3.0, 210.0},
                      {5.0, 310.0}})
    cands.push_back({CdPoint{c, d}, DynBitset(1)});
  const auto f = Front2d::of_candidates(std::move(cands));
  // Eq. (1): DgC for U = 2 is 200 (paper Example 2).
  ASSERT_NE(f.max_damage_within_cost(2.0), nullptr);
  EXPECT_DOUBLE_EQ(f.max_damage_within_cost(2.0)->value.damage, 200.0);
  EXPECT_DOUBLE_EQ(f.max_damage_within_cost(0.0)->value.damage, 0.0);
  EXPECT_DOUBLE_EQ(f.max_damage_within_cost(100.0)->value.damage, 310.0);
  // Eq. (2): CgD.
  EXPECT_DOUBLE_EQ(f.min_cost_with_damage(201.0)->value.cost, 3.0);
  EXPECT_DOUBLE_EQ(f.min_cost_with_damage(310.0)->value.cost, 5.0);
  EXPECT_EQ(f.min_cost_with_damage(311.0), nullptr);
  EXPECT_EQ(f.max_damage_within_cost(-1.0), nullptr);
}

TEST(Front2d, SameValuesComparison) {
  std::vector<FrontPoint> a, b;
  a.push_back({CdPoint{1, 2}, DynBitset(1)});
  b.push_back({CdPoint{1, 2 + 1e-12}, DynBitset(1)});
  const auto fa = Front2d::of_candidates(a);
  const auto fb = Front2d::of_candidates(b);
  EXPECT_TRUE(fa.same_values(fb, 1e-9));
  EXPECT_FALSE(fa.same_values(fb, 1e-15));
}

// ---- prune_min (the min_U map). ----

std::vector<AttrTriple> make_triples(Rng& rng, std::size_t n,
                                     bool discrete_act) {
  std::vector<AttrTriple> xs;
  for (std::size_t i = 0; i < n; ++i) {
    AttrTriple a;
    a.t.cost = static_cast<double>(rng.range(0, 8));
    a.t.damage = static_cast<double>(rng.range(0, 8));
    a.t.act = discrete_act ? static_cast<double>(rng.range(0, 1))
                           : 0.25 * static_cast<double>(rng.range(0, 4));
    a.witness = DynBitset(4);
    xs.push_back(std::move(a));
  }
  return xs;
}

struct PruneCase {
  std::uint64_t seed;
  std::size_t n;
  bool discrete;
  double budget;
};

class PruneMin : public ::testing::TestWithParam<PruneCase> {};

TEST_P(PruneMin, MatchesQuadraticReference) {
  const auto& pc = GetParam();
  Rng rng(pc.seed);
  const auto xs = make_triples(rng, pc.n, pc.discrete);
  auto fast = prune_min(xs, pc.budget);
  auto slow = prune_min_quadratic(xs, pc.budget);
  auto key = [](const AttrTriple& a) {
    return std::tuple(a.t.cost, a.t.damage, a.t.act);
  };
  auto cmp = [&](const AttrTriple& a, const AttrTriple& b) {
    return key(a) < key(b);
  };
  std::sort(fast.begin(), fast.end(), cmp);
  std::sort(slow.begin(), slow.end(), cmp);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_EQ(key(fast[i]), key(slow[i]));
}

TEST_P(PruneMin, OutputIsAnAntichainWithinBudget) {
  const auto& pc = GetParam();
  Rng rng(pc.seed ^ 0x5555);
  const auto kept = prune_min(make_triples(rng, pc.n, pc.discrete), pc.budget);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_LE(kept[i].t.cost, pc.budget);
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(kept[j].t, kept[i].t));
      EXPECT_FALSE(kept[i].t == kept[j].t) << "duplicate survived";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruneMin,
    ::testing::Values(PruneCase{1, 0, true, kNoBudget},
                      PruneCase{2, 1, true, kNoBudget},
                      PruneCase{3, 50, true, kNoBudget},
                      PruneCase{4, 50, false, kNoBudget},
                      PruneCase{5, 200, true, 5.0},
                      PruneCase{6, 200, false, 5.0},
                      PruneCase{7, 500, false, kNoBudget},
                      PruneCase{8, 500, true, 3.0},
                      PruneCase{9, 1000, false, 6.0}));

TEST(PruneMin, KeepsIncomparableTriples) {
  // Example 4's front at node dr.
  std::vector<AttrTriple> xs;
  for (auto [c, d, b] :
       {std::tuple{0.0, 0.0, 0.0}, {3.0, 0.0, 0.0}, {2.0, 10.0, 0.0},
        {5.0, 110.0, 1.0}})
    xs.push_back({Triple{c, d, b}, DynBitset(2)});
  const auto kept = prune_min(xs);
  ASSERT_EQ(kept.size(), 3u);  // (3,0,0) is dominated by (0,0,0)
  for (const auto& k : kept) EXPECT_FALSE((k.t == Triple{3.0, 0.0, 0.0}));
}

TEST(PruneMin, BudgetFiltersBeforeMinimising) {
  std::vector<AttrTriple> xs;
  xs.push_back({Triple{10.0, 100.0, 1.0}, DynBitset(1)});
  xs.push_back({Triple{1.0, 1.0, 0.0}, DynBitset(1)});
  const auto kept = prune_min(xs, 5.0);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].t.cost, 1.0);
}

}  // namespace
}  // namespace atcd
