#include "bdd/at_bdd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "core/bottom_up_prob.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::fronts_equal;

// ---- Manager primitives. ----

TEST(BddManager, TerminalsAndVariables) {
  bdd::Manager m(3);
  const auto x = m.var(0);
  EXPECT_TRUE(m.evaluate(x, {true, false, false}));
  EXPECT_FALSE(m.evaluate(x, {false, true, true}));
  EXPECT_TRUE(m.evaluate(bdd::kTrue, {false, false, false}));
  EXPECT_FALSE(m.evaluate(bdd::kFalse, {true, true, true}));
  EXPECT_THROW(m.var(3), Error);
}

TEST(BddManager, ApplyIsCanonical) {
  bdd::Manager m(2);
  const auto a = m.var(0), b = m.var(1);
  EXPECT_EQ(m.apply_and(a, b), m.apply_and(b, a));
  EXPECT_EQ(m.apply_or(a, b), m.apply_or(b, a));
  EXPECT_EQ(m.apply_and(a, a), a);
  EXPECT_EQ(m.apply_and(a, bdd::kTrue), a);
  EXPECT_EQ(m.apply_and(a, bdd::kFalse), bdd::kFalse);
  EXPECT_EQ(m.apply_or(a, bdd::kTrue), bdd::kTrue);
  // (a AND b) OR (a AND b) == a AND b, shared node.
  const auto ab = m.apply_and(a, b);
  EXPECT_EQ(m.apply_or(ab, ab), ab);
}

TEST(BddManager, NegationIsInvolutive) {
  bdd::Manager m(3);
  const auto f = m.apply_or(m.apply_and(m.var(0), m.var(1)), m.var(2));
  EXPECT_EQ(m.negate(m.negate(f)), f);
  EXPECT_EQ(m.apply_and(f, m.negate(f)), bdd::kFalse);
  EXPECT_EQ(m.apply_or(f, m.negate(f)), bdd::kTrue);
}

TEST(BddManager, RestrictFixesAVariable) {
  bdd::Manager m(2);
  const auto f = m.apply_and(m.var(0), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, false), bdd::kFalse);
  EXPECT_EQ(m.restrict_var(f, 0, true), m.var(1));
}

TEST(BddManager, ProbabilityOfIndependentVars) {
  bdd::Manager m(2);
  const auto f_and = m.apply_and(m.var(0), m.var(1));
  const auto f_or = m.apply_or(m.var(0), m.var(1));
  EXPECT_NEAR(m.probability(f_and, {0.3, 0.5}), 0.15, 1e-12);
  EXPECT_NEAR(m.probability(f_or, {0.3, 0.5}), 0.65, 1e-12);
  EXPECT_NEAR(m.probability(bdd::kTrue, {0.3, 0.5}), 1.0, 1e-12);
  EXPECT_NEAR(m.probability(bdd::kFalse, {0.3, 0.5}), 0.0, 1e-12);
}

TEST(BddManager, ProbabilityHandlesSharedVariables) {
  // f = x0 AND (x0 OR x1): equals x0, so P = p0 — a tree-product rule
  // would instead give p0 * (p0 + p1 - p0 p1).
  bdd::Manager m(2);
  const auto f = m.apply_and(m.var(0), m.apply_or(m.var(0), m.var(1)));
  EXPECT_EQ(f, m.var(0));
  EXPECT_NEAR(m.probability(f, {0.3, 0.9}), 0.3, 1e-12);
}

TEST(BddManager, SatCount) {
  bdd::Manager m(3);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(1)), 4.0);  // x1 free over 2 others
  const auto f = m.apply_or(m.var(0), m.var(1));
  EXPECT_DOUBLE_EQ(m.sat_count(f), 6.0);
  EXPECT_DOUBLE_EQ(m.sat_count(bdd::kTrue), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(bdd::kFalse), 0.0);
}

TEST(BddManager, MinTrueWeight) {
  bdd::Manager m(3);
  const auto f =
      m.apply_or(m.apply_and(m.var(0), m.var(1)), m.var(2));
  EXPECT_DOUBLE_EQ(m.min_true_weight(f, {2, 3, 6}), 5.0);  // x0&x1
  EXPECT_DOUBLE_EQ(m.min_true_weight(f, {2, 3, 4}), 4.0);  // x2
  EXPECT_TRUE(std::isinf(m.min_true_weight(bdd::kFalse, {1, 1, 1})));
}

// ---- AT compilation. ----

TEST(AtBdd, StructureFunctionsMatchDirectEvaluation) {
  Rng rng(51);
  for (int it = 0; it < 10; ++it) {
    const auto t = it % 2 ? atcd::testing::random_tree(rng, 6)
                          : atcd::testing::random_dag(rng, 6);
    const AtBdd compiled(t);
    for (std::uint64_t mask = 0; mask < 64; ++mask) {
      const Attack x = Attack::from_mask(6, mask);
      const auto s = evaluate_structure(t, x);
      std::vector<bool> assign(6);
      for (std::size_t i = 0; i < 6; ++i) assign[i] = x.test(i);
      for (NodeId v = 0; v < t.node_count(); ++v)
        ASSERT_EQ(compiled.manager().evaluate(compiled.node_function(v),
                                              assign),
                  s[v] != 0);
    }
  }
}

TEST(AtBdd, ProbabilisticStructureMatchesTreeFormulaOnTrees) {
  Rng rng(52);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/true);
    const AtBdd compiled(m.tree);
    const Attack x = Attack::from_mask(6, rng.below(64));
    const auto a = compiled.probabilistic_structure(m, x);
    const auto b = probabilistic_structure(m, x);
    for (NodeId v = 0; v < m.tree.node_count(); ++v)
      ASSERT_NEAR(a[v], b[v], 1e-12);
  }
}

TEST(AtBdd, ExpectedDamageOnDagsMatchesExactEnumeration) {
  Rng rng(53);
  int dag_count = 0;
  for (int it = 0; it < 20 && dag_count < 6; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/false);
    if (m.tree.is_treelike()) continue;
    ++dag_count;
    const AtBdd compiled(m.tree);
    for (int rep = 0; rep < 5; ++rep) {
      const Attack x = Attack::from_mask(6, rng.below(64));
      ASSERT_NEAR(compiled.expected_damage(m, x),
                  expected_damage_exact(m, x), 1e-9);
    }
  }
  EXPECT_GE(dag_count, 3);
}

TEST(AtBdd, CedpfBddMatchesBottomUpOnTrees) {
  Rng rng(54);
  for (int it = 0; it < 5; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/true);
    EXPECT_TRUE(fronts_equal(cedpf_bdd(m), cedpf_bottom_up(m), 1e-9));
  }
}

TEST(AtBdd, CedpfCapacityGuard) {
  Rng rng(55);
  const auto m = atcd::testing::random_cdpat(rng, 10, true);
  EXPECT_THROW(cedpf_bdd(m, /*max_bas=*/8), CapacityError);
}

TEST(AtBdd, EdgcAndCgedOnDag) {
  // Probabilistic data server (paper leaves this open; we solve small
  // instances exactly).  Uniform p = 0.5 on all BASs.
  const auto det = casestudies::make_dataserver();
  CdpAt m{det.tree, det.cost, det.damage,
          std::vector<double>(det.tree.bas_count(), 0.5)};
  const auto front = cedpf_bdd(m);
  EXPECT_GE(front.size(), 5u);
  const auto r = edgc_bdd(m, 568.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.cost, 568.0);
  const auto c = cged_bdd(m, r.damage - 1e-9);
  ASSERT_TRUE(c.feasible);
  EXPECT_LE(c.cost, r.cost + 1e-9);
}

// ---- Classic metrics. ----

TEST(ClassicMetrics, MinCostOfSuccessfulAttack) {
  // Factory: cheapest successful attack is {ca} at cost 1.
  EXPECT_DOUBLE_EQ(min_cost_of_successful_attack(casestudies::make_factory()),
                   1.0);
  // Data server: {b6,b8,b11,b12} at 568 (matches A2 of Fig. 6c — the
  // minimal-attack analysis the paper contrasts with).
  EXPECT_DOUBLE_EQ(
      min_cost_of_successful_attack(casestudies::make_dataserver()), 568.0);
}

TEST(ClassicMetrics, CountSuccessfulAttacks) {
  const auto m = casestudies::make_factory();
  // Successful: ca on (4 combos of pb/fd) + {pb,fd} without ca = 5.
  EXPECT_DOUBLE_EQ(count_successful_attacks(m.tree), 5.0);
}

TEST(ClassicMetrics, RootReachProbabilityAllIn) {
  const auto m = casestudies::make_factory_probabilistic();
  // P(ca or (pb and fd)) = 0.2 + 0.36 - 0.2*0.36 = 0.488.
  EXPECT_NEAR(root_reach_probability_all_in(m), 0.488, 1e-12);
}

}  // namespace
}  // namespace atcd
