/// Tests for the scenario-analysis subsystem (src/analysis/) and the
/// pareto front metrics it builds on: sweep cells must equal
/// from-scratch solves of the correspondingly edited model (including
/// the DAG fallback and defense axes), portfolio optimization must
/// cross-validate against plain brute-force subset enumeration, and all
/// rendered tables must be byte-identical across worker thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/portfolio.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweep.hpp"
#include "at/parser.hpp"
#include "helpers.hpp"
#include "pareto/metrics.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

using analysis::Attribute;
using analysis::Axis;
using engine::Problem;
using testing::fronts_equal;

constexpr const char* kDetModel =
    "bas pick cost=1 damage=2\n"
    "bas drill cost=4 damage=1\n"
    "bas phish cost=2 damage=0\n"
    "and break = pick, drill damage=3\n"
    "or open = break, phish damage=10\n";

constexpr const char* kProbModel =
    "bas pick cost=1 damage=2 prob=0.5\n"
    "bas drill cost=4 damage=1 prob=0.9\n"
    "bas phish cost=2 damage=0 prob=0.6\n"
    "and break = pick, drill damage=3\n"
    "or open = break, phish damage=10\n";

CdAt det_model() {
  ParsedModel p = parse_model(kDetModel);
  return CdAt{std::move(p.tree), std::move(p.cost), std::move(p.damage)};
}

CdpAt prob_model() {
  ParsedModel p = parse_model(kProbModel);
  return CdpAt{std::move(p.tree), std::move(p.cost), std::move(p.damage),
               std::move(p.prob)};
}

Front2d front_of(std::vector<std::pair<double, double>> pts,
                 std::size_t bas = 2) {
  std::vector<FrontPoint> cands;
  for (const auto& [c, d] : pts)
    cands.push_back({CdPoint{c, d}, Attack(bas)});
  return Front2d::of_candidates(std::move(cands));
}

// ---------------------------------------------------------------------------
// Pareto metrics.
// ---------------------------------------------------------------------------

TEST(Metrics, HypervolumeOfStaircase) {
  const Front2d f = front_of({{0, 0}, {1, 4}, {3, 6}});
  // (4-1)*4 for the middle step plus (4-3)*(6-4) for the top one.
  EXPECT_DOUBLE_EQ(hypervolume(f, 4.0), 14.0);
  EXPECT_DOUBLE_EQ(hypervolume(f, 1.0), 0.0);   // only (1,4) is in range
  EXPECT_DOUBLE_EQ(hypervolume(Front2d{}, 4.0), 0.0);
}

TEST(Metrics, FrontGapDistanceAndEpsilonCovers) {
  const Front2d a = front_of({{0, 0}, {1, 4}});
  const Front2d b = front_of({{0, 0}, {1, 5}});
  EXPECT_DOUBLE_EQ(front_gap(a, b), 1.0);  // a misses (1,5) by 1 damage
  EXPECT_DOUBLE_EQ(front_gap(b, a), 0.0);  // b covers a outright
  EXPECT_DOUBLE_EQ(front_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(front_distance(a, a), 0.0);

  std::string why;
  EXPECT_TRUE(epsilon_covers(b, a, 1e-9));
  EXPECT_FALSE(epsilon_covers(a, b, 0.5, &why));
  EXPECT_NE(why.find("(1, 5)"), std::string::npos) << why;
  EXPECT_TRUE(epsilon_equal(a, b, 1.0));
  EXPECT_FALSE(epsilon_equal(a, b, 0.5));
}

// ---------------------------------------------------------------------------
// Axis / countermeasure parsing.
// ---------------------------------------------------------------------------

TEST(Analysis, ParsesAxisSpecs) {
  std::string err;
  const auto axis = analysis::parse_axis("cost:ca:0:5:6", &err);
  ASSERT_TRUE(axis) << err;
  EXPECT_EQ(axis->attribute, Attribute::Cost);
  EXPECT_EQ(axis->node, "ca");
  ASSERT_EQ(axis->values.size(), 6u);
  EXPECT_DOUBLE_EQ(axis->values.front(), 0.0);
  EXPECT_DOUBLE_EQ(axis->values[1], 1.0);
  EXPECT_DOUBLE_EQ(axis->values.back(), 5.0);

  const auto toggle = analysis::parse_axis("defense:fd", &err);
  ASSERT_TRUE(toggle) << err;
  EXPECT_EQ(toggle->attribute, Attribute::Defense);
  EXPECT_EQ(toggle->values, (std::vector<double>{0.0, 1.0}));

  EXPECT_FALSE(analysis::parse_axis("size:ca:0:5:6", &err));
  EXPECT_FALSE(analysis::parse_axis("cost:ca:0:5:0", &err));
  EXPECT_FALSE(analysis::parse_axis("cost:ca:x:5:6", &err));
  EXPECT_FALSE(analysis::parse_axis("cost:ca", &err));
  EXPECT_FALSE(analysis::parse_axis("defense:a:b", &err));
}

TEST(Analysis, ParsesCountermeasureSpecs) {
  std::string err;
  const auto cm = analysis::parse_countermeasure("patch:2.5:ca+pb", &err);
  ASSERT_TRUE(cm) << err;
  EXPECT_EQ(cm->name, "patch");
  EXPECT_DOUBLE_EQ(cm->cost, 2.5);
  EXPECT_EQ(cm->hardened_bas, (std::vector<std::string>{"ca", "pb"}));

  EXPECT_FALSE(analysis::parse_countermeasure("patch:2.5", &err));
  EXPECT_FALSE(analysis::parse_countermeasure("patch:-1:ca", &err));
  EXPECT_FALSE(analysis::parse_countermeasure("patch:x:ca", &err));
  EXPECT_FALSE(analysis::parse_countermeasure(":1:ca", &err));
}

// ---------------------------------------------------------------------------
// Sweeps.
// ---------------------------------------------------------------------------

/// Applies one axis value to a plain model copy, mirroring the session
/// edit semantics (defense: the analysis-default hardening {1e6, 0}).
template <class Model>
void apply_axis(Model& m, const Axis& axis, double value) {
  const auto v = m.tree.find(axis.node);
  ASSERT_TRUE(v.has_value());
  switch (axis.attribute) {
    case Attribute::Cost:
      m.cost[m.tree.bas_index(*v)] = value;
      break;
    case Attribute::Damage:
      m.damage[*v] = value;
      break;
    case Attribute::Prob:
      if constexpr (std::is_same_v<Model, CdpAt>)
        m.prob[m.tree.bas_index(*v)] = value;
      break;
    case Attribute::Defense:
      if (value != 0.0) {
        double& c = m.cost[m.tree.bas_index(*v)];
        c = c > 0.0 ? c * 1e6 : 1e6;
        if constexpr (std::is_same_v<Model, CdpAt>)
          m.prob[m.tree.bas_index(*v)] = 0.0;
      }
      break;
  }
}

/// Every cell of the sweep must equal a from-scratch solve of the
/// correspondingly edited model.
template <class Model>
void check_sweep_against_scratch(const Model& base,
                                 const analysis::SweepResult& r) {
  const std::size_t nx = r.axes[0].values.size();
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const analysis::SweepCell& cell = r.cells[i];
    Model edited = base;
    apply_axis(edited, r.axes[0], cell.x);
    if (r.axes.size() == 2) apply_axis(edited, r.axes[1], cell.y);
    SCOPED_TRACE("cell " + std::to_string(i) + " (x=" +
                 std::to_string(cell.x) + ", y=" + std::to_string(cell.y) +
                 ")");
    ASSERT_EQ(cell.x, r.axes[0].values[i % nx]);
    const engine::SolveResult ref = engine::solve_one(
        engine::Instance::of(r.problem, edited,
                             r.problem == Problem::Dgc ? 3.0 : 0.0));
    ASSERT_TRUE(cell.result.ok) << cell.result.error;
    ASSERT_TRUE(ref.ok) << ref.error;
    if (engine::is_front(r.problem)) {
      EXPECT_TRUE(fronts_equal(cell.result.front, ref.front));
    } else {
      ASSERT_EQ(cell.result.attack.feasible, ref.attack.feasible);
      if (ref.attack.feasible) {
        EXPECT_NEAR(cell.result.attack.cost, ref.attack.cost, 1e-9);
        EXPECT_NEAR(cell.result.attack.damage, ref.attack.damage, 1e-9);
      }
    }
  }
}

TEST(Sweep, OneDimensionalDgcMatchesScratch) {
  const CdAt m = det_model();
  analysis::Options opt;
  opt.problem = Problem::Dgc;
  opt.bound = 3.0;
  const auto r = analysis::sweep(
      m, {Axis::linspace(Attribute::Cost, "pick", 0.0, 5.0, 6)}, opt);
  EXPECT_TRUE(r.incremental);
  ASSERT_EQ(r.cells.size(), 6u);
  check_sweep_against_scratch(m, r);
}

TEST(Sweep, TwoDimensionalWithDefenseAxisMatchesScratch) {
  const CdAt m = det_model();
  analysis::Options opt;
  opt.problem = Problem::Cdpf;
  const auto r = analysis::sweep(
      m,
      {Axis::linspace(Attribute::Cost, "pick", 1.0, 3.0, 3),
       Axis::toggle("drill")},
      opt);
  ASSERT_EQ(r.cells.size(), 6u);
  // Row-major: the defense axis (outer) toggles once, halfway through.
  EXPECT_EQ(r.cells[0].y, 0.0);
  EXPECT_EQ(r.cells[3].y, 1.0);
  check_sweep_against_scratch(m, r);
}

TEST(Sweep, ProbabilisticAxesMatchScratch) {
  const CdpAt m = prob_model();
  analysis::Options opt;
  opt.problem = Problem::Cedpf;
  const auto r = analysis::sweep(
      m, {Axis::linspace(Attribute::Prob, "pick", 0.0, 1.0, 5)}, opt);
  ASSERT_EQ(r.cells.size(), 5u);
  check_sweep_against_scratch(m, r);
}

TEST(Sweep, DagModelsFallBackAndMatchScratch) {
  // random_dag occasionally comes out treelike; scan for a seed whose
  // sharing actually triggered.
  CdAt dag;
  for (std::uint64_t seed = 42; dag.tree.node_count() == 0 ||
                                dag.tree.is_treelike();
       ++seed) {
    Rng rng(seed);
    dag = testing::random_cdat(rng, 6, /*treelike=*/false);
  }
  ASSERT_FALSE(dag.tree.is_treelike());
  const std::string leaf = dag.tree.name(dag.tree.bas_id(0));
  analysis::Options opt;
  opt.problem = Problem::Cdpf;
  service::SubtreeCache shared;
  opt.shared = &shared;
  const auto r = analysis::sweep(
      dag, {Axis::linspace(Attribute::Cost, leaf, 1.0, 4.0, 4)}, opt);
  EXPECT_FALSE(r.incremental);
  ASSERT_EQ(r.cells.size(), 4u);
  check_sweep_against_scratch(dag, r);
}

TEST(Sweep, RejectsBadAxes) {
  const CdAt m = det_model();
  analysis::Options opt;
  opt.problem = Problem::Cdpf;
  EXPECT_THROW(
      analysis::sweep(m, {Axis::linspace(Attribute::Cost, "nope", 0, 1, 2)},
                      opt),
      ModelError);
  EXPECT_THROW(
      analysis::sweep(m, {Axis::linspace(Attribute::Cost, "break", 0, 1, 2)},
                      opt),
      ModelError);  // not a BAS
  EXPECT_THROW(
      analysis::sweep(m, {Axis::linspace(Attribute::Prob, "pick", 0, 1, 2)},
                      opt),
      ModelError);  // prob axis on a deterministic problem
  EXPECT_THROW(analysis::sweep(m,
                               {Axis::linspace(Attribute::Cost, "pick", 0,
                                               1, 2),
                                Axis::linspace(Attribute::Cost, "pick", 2,
                                               3, 2)},
                               opt),
               ModelError);  // both axes target the same parameter
  EXPECT_THROW(analysis::sweep(m, {}, opt), ModelError);
}

// ---------------------------------------------------------------------------
// Sensitivity.
// ---------------------------------------------------------------------------

TEST(Sensitivity, RanksEveryLeafParameterDescending) {
  const CdAt m = det_model();
  analysis::Options opt;
  const auto report = analysis::sensitivity(m, opt);
  EXPECT_EQ(report.problem, Problem::Cdpf);
  // cost + damage per BAS on deterministic models.
  ASSERT_EQ(report.ranking.size(), 2 * m.tree.bas_count());
  for (std::size_t i = 1; i < report.ranking.size(); ++i)
    EXPECT_GE(report.ranking[i - 1].distance, report.ranking[i].distance);
  for (const auto& e : report.ranking) {
    EXPECT_TRUE(e.error.empty()) << e.error;
    EXPECT_GE(e.distance, 0.0);
  }
  // The base front is the plain CDPF front.
  const auto ref =
      engine::solve_one(engine::Instance::of(Problem::Cdpf, m));
  ASSERT_TRUE(ref.ok);
  EXPECT_TRUE(fronts_equal(report.base, ref.front));
}

TEST(Sensitivity, ProbabilisticModelsIncludeProbEntries) {
  const CdpAt m = prob_model();
  analysis::Options opt;
  opt.sensitivity_step = 0.1;
  const auto report = analysis::sensitivity(m, opt);
  EXPECT_EQ(report.problem, Problem::Cedpf);
  ASSERT_EQ(report.ranking.size(), 3 * m.tree.bas_count());
  std::size_t prob_entries = 0;
  for (const auto& e : report.ranking) {
    if (e.attribute != Attribute::Prob) continue;
    ++prob_entries;
    EXPECT_NEAR(e.perturbed, e.base / 1.1, 1e-12);
  }
  EXPECT_EQ(prob_entries, m.tree.bas_count());
}

// ---------------------------------------------------------------------------
// Portfolio.
// ---------------------------------------------------------------------------

/// Brute-force reference: score *every* subset (no pruning, no
/// batching), track the best affordable one and the per-investment
/// minimum residual.
template <class Model>
void brute_force(const Model& m,
                 const std::vector<defense::Countermeasure>& catalogue,
                 double defense_budget, double attacker_budget,
                 const defense::HardeningSemantics& hardening,
                 analysis::PortfolioPoint* best,
                 std::vector<analysis::PortfolioPoint>* all) {
  constexpr bool probabilistic = std::is_same_v<Model, CdpAt>;
  const Problem problem = probabilistic ? Problem::Edgc : Problem::Dgc;
  const std::size_t n = catalogue.size();
  bool have_best = false;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    analysis::PortfolioPoint p;
    std::vector<bool> sel(n, false);
    for (std::size_t i = 0; i < n; ++i)
      if (mask >> i & 1) {
        sel[i] = true;
        p.invest += catalogue[i].cost;
        p.selected.push_back(catalogue[i].name);
      }
    if (p.invest > defense_budget) continue;
    const Model hardened = defense::harden(m, catalogue, sel, hardening);
    const auto r = engine::solve_one(
        engine::Instance::of(problem, hardened, attacker_budget));
    ASSERT_TRUE(r.ok) << r.error;
    p.residual = r.attack.feasible ? r.attack.damage : 0.0;
    if (all) all->push_back(p);
    if (!have_best || p.residual < best->residual - 1e-12 ||
        (std::abs(p.residual - best->residual) <= 1e-12 &&
         p.invest < best->invest))
      *best = p, have_best = true;
  }
  ASSERT_TRUE(have_best);
}

TEST(Portfolio, CrossValidatesAgainstBruteForceOnRandomModels) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(0x9F0ull * 1000 + seed);
    const bool treelike = seed % 2 == 0;
    const CdAt m = testing::random_cdat(rng, 4 + rng.below(4), treelike);
    // 3-4 random countermeasures over random BAS subsets.
    std::vector<defense::Countermeasure> catalogue;
    const std::size_t n_cm = 3 + rng.below(2);
    for (std::size_t k = 0; k < n_cm; ++k) {
      defense::Countermeasure cm;
      cm.name = "d" + std::to_string(k);
      cm.cost = static_cast<double>(rng.range(1, 5));
      const std::size_t bas =
          static_cast<std::size_t>(rng.below(m.tree.bas_count()));
      cm.hardened_bas.push_back(m.tree.name(m.tree.bas_id(
          static_cast<std::uint32_t>(bas))));
      catalogue.push_back(std::move(cm));
    }
    double total_cost = 0.0;
    for (double c : m.cost) total_cost += c;
    const double defense_budget = static_cast<double>(rng.range(0, 10));
    const double attacker_budget = rng.uniform(0.0, total_cost);

    analysis::Options opt;
    opt.bound = attacker_budget;
    // Random DAG instances meet the embedded BILP here; keep the
    // hardened cost coefficients in its comfortable numeric range (the
    // brute-force reference hardens identically, so the
    // cross-validation is unaffected).
    opt.hardening = defense::HardeningSemantics{100.0, 0.0};
    const auto result =
        analysis::portfolio(m, catalogue, defense_budget, opt);

    analysis::PortfolioPoint best;
    std::vector<analysis::PortfolioPoint> all;
    brute_force(m, catalogue, defense_budget, attacker_budget,
                opt.hardening, &best, &all);
    const std::string context = "seed=" + std::to_string(seed);
    EXPECT_NEAR(result.best.residual, best.residual, 1e-9) << context;
    EXPECT_NEAR(result.best.invest, best.invest, 1e-9) << context;

    // Frontier property: each point's residual is the true minimum over
    // all affordable subsets of its investment level, and the frontier
    // is strictly improving.
    for (const auto& p : result.frontier) {
      double min_residual = std::numeric_limits<double>::infinity();
      for (const auto& q : all)
        if (q.invest <= p.invest + 1e-12)
          min_residual = std::min(min_residual, q.residual);
      EXPECT_NEAR(p.residual, min_residual, 1e-9) << context;
    }
    for (std::size_t i = 1; i < result.frontier.size(); ++i) {
      EXPECT_GT(result.frontier[i].invest, result.frontier[i - 1].invest)
          << context;
      EXPECT_LT(result.frontier[i].residual,
                result.frontier[i - 1].residual)
          << context;
    }
    EXPECT_EQ(result.evaluated + result.pruned,
              std::uint64_t{1} << catalogue.size())
        << context;
  }
}

TEST(Portfolio, ProbabilisticResidualsCrossValidate) {
  Rng rng(7);
  const CdpAt m = testing::random_cdpat(rng, 5, /*treelike=*/true);
  std::vector<defense::Countermeasure> catalogue{
      {"a", 1.0, {m.tree.name(m.tree.bas_id(0))}},
      {"b", 2.0, {m.tree.name(m.tree.bas_id(1)),
                  m.tree.name(m.tree.bas_id(2))}},
  };
  analysis::Options opt;
  opt.bound = 6.0;
  const auto result = analysis::portfolio(m, catalogue, 3.0, opt);
  analysis::PortfolioPoint best;
  brute_force(m, catalogue, 3.0, 6.0, opt.hardening, &best, nullptr);
  EXPECT_NEAR(result.best.residual, best.residual, 1e-9);
  EXPECT_NEAR(result.best.invest, best.invest, 1e-9);
}

TEST(Portfolio, GuardsTheExhaustiveCap) {
  const CdAt m = det_model();
  std::vector<defense::Countermeasure> catalogue(
      21, defense::Countermeasure{"x", 1.0, {"pick"}});
  analysis::Options opt;
  EXPECT_THROW(analysis::portfolio(m, catalogue, 1.0, opt), CapacityError);
}

// ---------------------------------------------------------------------------
// Determinism: same inputs yield byte-identical tables on any thread
// count, with or without the shared subtree cache warm.
// ---------------------------------------------------------------------------

TEST(Analysis, TablesAreByteIdenticalAcrossThreadCounts) {
  const CdAt det = det_model();
  const CdpAt prob = prob_model();
  std::vector<defense::Countermeasure> catalogue{
      {"patch", 2.0, {"pick"}}, {"lock", 1.0, {"drill"}}};

  std::vector<std::string> sweep_tables, sens_tables, pf_tables;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    service::SubtreeCache shared;  // fresh per run; reused within it
    analysis::Options opt;
    opt.batch.threads = threads;
    opt.shared = &shared;

    opt.problem = Problem::Dgc;
    opt.bound = 4.0;
    sweep_tables.push_back(analysis::to_table(analysis::sweep(
        det,
        {analysis::Axis::linspace(Attribute::Cost, "pick", 0.0, 5.0, 6),
         analysis::Axis::toggle("drill")},
        opt)));
    sens_tables.push_back(
        analysis::to_table(analysis::sensitivity(prob, opt)));
    opt.bound = 5.0;
    pf_tables.push_back(
        analysis::to_table(analysis::portfolio(det, catalogue, 3.0, opt)));
  }
  for (std::size_t i = 1; i < sweep_tables.size(); ++i) {
    EXPECT_EQ(sweep_tables[i], sweep_tables[0]);
    EXPECT_EQ(sens_tables[i], sens_tables[0]);
    EXPECT_EQ(pf_tables[i], pf_tables[0]);
  }
  // And rerunning against the now-warm shared cache of the last round
  // must not change a byte either (cached fronts are value-identical).
  service::SubtreeCache shared;
  analysis::Options opt;
  opt.shared = &shared;
  opt.problem = Problem::Dgc;
  opt.bound = 4.0;
  const std::vector<analysis::Axis> axes{
      analysis::Axis::linspace(Attribute::Cost, "pick", 0.0, 5.0, 6),
      analysis::Axis::toggle("drill")};
  const std::string cold = analysis::to_table(analysis::sweep(det, axes, opt));
  const std::string warm = analysis::to_table(analysis::sweep(det, axes, opt));
  EXPECT_EQ(cold, sweep_tables[0]);
  EXPECT_EQ(warm, cold);
}

}  // namespace
}  // namespace atcd
