/// Tests for the observability layer (src/obs/): histogram bucket math
/// and exact-rank percentiles, sharded counter merges (single- and
/// multi-threaded — the tsan job runs these), registry exposition
/// determinism and kind checking, per-request trace spans through the
/// full dispatch stack, and the two invariants the layer guarantees:
/// tracing never changes solve results, and untraced responses are
/// byte-identical no matter how the stack is threaded or instrumented.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "api/line.hpp"
#include "api/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"

namespace atcd {
namespace {

using namespace atcd::api;

const char* kModel =
    "bas a cost=1 damage=2\n"
    "bas b cost=4 damage=1\n"
    "or r = a, b damage=10\n";

Request solve_request(bool trace = false) {
  Request req;
  req.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", kModel}};
  req.trace = trace;
  return req;
}

// ---------------------------------------------------------------------------
// Histogram bucket math.
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < obs::Histogram::kSub; ++v) {
    EXPECT_EQ(obs::Histogram::bucket_of(v), v);
    EXPECT_EQ(obs::Histogram::bucket_upper(v), v);
  }
}

TEST(Histogram, EveryValueFallsInsideItsBucket) {
  // Around every octave boundary the invariant is
  //   upper(bucket(v)-1) < v <= upper(bucket(v)).
  std::vector<std::uint64_t> probes;
  for (unsigned exp = 0; exp < 63; ++exp) {
    const std::uint64_t p = std::uint64_t{1} << exp;
    for (std::uint64_t d : {std::uint64_t{0}, std::uint64_t{1}, p / 2, p - 1})
      probes.push_back(p + d);
  }
  probes.push_back(~std::uint64_t{0});
  for (std::uint64_t v : probes) {
    const std::size_t b = obs::Histogram::bucket_of(v);
    ASSERT_LT(b, obs::Histogram::kBuckets) << v;
    EXPECT_LE(v, obs::Histogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GT(v, obs::Histogram::bucket_upper(b - 1)) << v;
  }
}

TEST(Histogram, BucketUppersAreStrictlyIncreasing) {
  for (std::size_t b = 1; b < obs::Histogram::kBuckets; ++b)
    EXPECT_GT(obs::Histogram::bucket_upper(b),
              obs::Histogram::bucket_upper(b - 1))
        << b;
}

TEST(Histogram, RelativeBucketErrorIsBounded) {
  // Log-scale with 8 sub-buckets per octave: the bucket's upper edge
  // overshoots any member by <= 12.5%.
  for (std::uint64_t v = obs::Histogram::kSub; v < 100000;
       v += 1 + v / 16) {
    const std::uint64_t up =
        obs::Histogram::bucket_upper(obs::Histogram::bucket_of(v));
    EXPECT_LE(static_cast<double>(up - v) / static_cast<double>(v), 0.125)
        << v;
  }
}

TEST(Histogram, ExactRankPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(0.50), 0.0);  // empty
  // 1..100: every value below kSub*2^... small values land in exact or
  // near-exact buckets, so the quantiles are tightly pinned.
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  // Rank 50 holds sample 50 (bucket [48,51] at this resolution).
  EXPECT_GE(h.percentile(0.50), 50.0);
  EXPECT_LE(h.percentile(0.50), 51.0);
  EXPECT_GE(h.percentile(0.99), 99.0);
  EXPECT_LE(h.percentile(0.99), 103.0);
  // q=0 clamps to rank 1, q=1 to rank n.
  EXPECT_LE(h.percentile(0.0), 1.0);
  EXPECT_GE(h.percentile(1.0), 100.0);
}

TEST(Histogram, SingleSampleDigest) {
  obs::Histogram h;
  h.record(7);  // exact bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 7u);
  EXPECT_EQ(h.percentile(0.50), 7.0);
  EXPECT_EQ(h.percentile(0.99), 7.0);
}

// ---------------------------------------------------------------------------
// Counters and gauges.
// ---------------------------------------------------------------------------

TEST(Counter, MergesAcrossShards) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreLossFree) {
  obs::Counter c;
  obs::Histogram h;
  constexpr std::size_t kThreads = 8, kPer = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < kPer; ++i) {
        c.add();
        h.record(i & 1023);
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
  EXPECT_EQ(h.count(), kThreads * kPer);
}

TEST(Gauge, LastSetWins) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableInstruments) {
  obs::Registry r;
  obs::Counter& a = r.counter("x_total");
  a.add(3);
  EXPECT_EQ(&r.counter("x_total"), &a);
  EXPECT_EQ(r.counter("x_total").value(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);
  EXPECT_THROW(r.histogram("x"), std::logic_error);
  r.histogram("h");
  EXPECT_THROW(r.counter("h"), std::logic_error);
}

TEST(Registry, JsonExpositionIsSortedAndDeterministic) {
  obs::Registry r;
  r.counter("b_total").add(2);
  r.counter("a_total").add(1);
  r.gauge("g").set(5);
  r.histogram("lat_micros").record(6);
  const std::string j = r.to_json();
  EXPECT_EQ(j,
            "{\"counters\":{\"a_total\":1,\"b_total\":2},"
            "\"gauges\":{\"g\":5},"
            "\"histograms\":{\"lat_micros\":{\"count\":1,\"sum\":6,"
            "\"p50\":6,\"p95\":6,\"p99\":6}}}");
  EXPECT_EQ(j, r.to_json());  // pure function of the instrument values
  // The exposition is valid JSON for the API's own parser.
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(j, &v, &err)) << err;
}

TEST(Registry, PrometheusExpositionHasTypedSamples) {
  obs::Registry r;
  r.counter("a_total").add(7);
  r.gauge("g").set(2.5);
  r.histogram("lat_micros").record(6);
  const std::string text = r.to_prometheus();
  EXPECT_NE(text.find("# TYPE a_total counter\na_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\ng 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_micros summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros{quantile=\"0.99\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_micros_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans through the dispatch stack.
// ---------------------------------------------------------------------------

TEST(Trace, SpansNestInPreOrderWithDepths) {
  obs::Trace tr;
  {
    obs::TraceActivation act(&tr);
    obs::SpanScope outer("outer");
    {
      obs::SpanScope inner("inner");
      obs::trace_fact("widgets", 2);
      obs::trace_fact("widgets", 3);
      obs::trace_fact_max("peak", 7);
      obs::trace_fact_max("peak", 4);
    }
    obs::SpanScope sibling("sibling");
  }
  ASSERT_EQ(tr.spans().size(), 3u);
  EXPECT_EQ(tr.spans()[0].name, "outer");
  EXPECT_EQ(tr.spans()[0].depth, 0u);
  EXPECT_EQ(tr.spans()[1].name, "inner");
  EXPECT_EQ(tr.spans()[1].depth, 1u);
  EXPECT_EQ(tr.spans()[2].name, "sibling");
  EXPECT_EQ(tr.spans()[2].depth, 1u);
  ASSERT_EQ(tr.facts().size(), 2u);
  EXPECT_EQ(tr.facts()[0], (std::pair<std::string, std::uint64_t>{
                               "widgets", 5}));
  EXPECT_EQ(tr.facts()[1],
            (std::pair<std::string, std::uint64_t>{"peak", 7}));
}

TEST(Trace, InactiveScopesRecordNothing) {
  obs::SpanScope s("ignored");
  obs::trace_fact("ignored", 1);
  EXPECT_EQ(obs::current_trace(), nullptr);
}

std::set<std::string> span_names(const TracePayload& tp) {
  std::set<std::string> names;
  for (const auto& s : tp.spans) names.insert(s.name);
  return names;
}

std::uint64_t fact_of(const TracePayload& tp, const std::string& name) {
  for (const auto& [k, v] : tp.facts)
    if (k == name) return v;
  return 0;
}

TEST(Trace, DispatchThreadsSpansThroughEveryLayer) {
  Dispatcher d;
  const Response cold = d.dispatch(solve_request(/*trace=*/true));
  ASSERT_EQ(cold.code, ErrorCode::Ok);
  ASSERT_TRUE(cold.trace.has_value());
  // Pre-order: the dispatch span is first and outermost, everything
  // else nests strictly inside it.
  ASSERT_FALSE(cold.trace->spans.empty());
  EXPECT_EQ(cold.trace->spans[0].name, "dispatch");
  EXPECT_EQ(cold.trace->spans[0].depth, 0u);
  for (std::size_t i = 1; i < cold.trace->spans.size(); ++i)
    EXPECT_GT(cold.trace->spans[i].depth, 0u);
  const auto names = span_names(*cold.trace);
  EXPECT_TRUE(names.count("service.solve"));
  EXPECT_TRUE(names.count("service.parse"));
  EXPECT_TRUE(names.count("engine.solve"));
  // A cold solve misses the result cache and sweeps the arena.
  EXPECT_GE(fact_of(*cold.trace, "result_cache_misses"), 1u);
  EXPECT_GE(fact_of(*cold.trace, "arena_nodes_swept"), 3u);
  EXPECT_GE(fact_of(*cold.trace, "arena_max_front"), 1u);

  // The warm repeat hits the cache and never reaches the engine.
  const Response warm = d.dispatch(solve_request(/*trace=*/true));
  ASSERT_EQ(warm.code, ErrorCode::Ok);
  ASSERT_TRUE(warm.trace.has_value());
  EXPECT_GE(fact_of(*warm.trace, "result_cache_hits"), 1u);
  EXPECT_FALSE(span_names(*warm.trace).count("engine.solve"));
}

TEST(Trace, SessionResolveRecordsMemoFacts) {
  Dispatcher d;
  Request open;
  open.op = SessionOpenRequest{{engine::Problem::Cdpf, 0.0, false, "",
                                kModel}};
  const Response opened = d.dispatch(open);
  ASSERT_EQ(opened.code, ErrorCode::Ok);
  const auto sid = std::get<SessionOpenedPayload>(opened.payload).session;

  Request resolve;
  resolve.op = SessionResolveRequest{sid};
  resolve.trace = true;
  const Response r = d.dispatch(resolve);
  ASSERT_EQ(r.code, ErrorCode::Ok);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_TRUE(span_names(*r.trace).count("session.resolve"));
  EXPECT_GE(fact_of(*r.trace, "session_memo_stores"), 1u);
}

TEST(Trace, TracingNeverChangesSolveResults) {
  Dispatcher d;
  Response traced = d.dispatch(solve_request(/*trace=*/true));
  Dispatcher d2;
  const Response plain = d2.dispatch(solve_request(/*trace=*/false));
  ASSERT_EQ(traced.code, ErrorCode::Ok);
  EXPECT_FALSE(plain.trace.has_value());
  // Identical payload bytes once the trace block is dropped.
  traced.trace.reset();
  EXPECT_EQ(encode_response(traced, false), encode_response(plain, false));
}

TEST(Trace, UntracedResponsesAreByteIdenticalAcrossThreadCounts) {
  // The same pipelined workload on 1 and 4 worker threads; with tracing
  // off, the response bytes (sorted by id) must not depend on threading
  // or on anything the instruments recorded.
  std::string script;
  for (int i = 0; i < 6; ++i) {
    Request req = solve_request();
    req.id = std::to_string(i);
    script += encode_request(req) + "\n";
  }
  std::vector<std::vector<std::string>> outputs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Dispatcher d;
    std::istringstream in(script);
    std::ostringstream out;
    JsonServeOptions opt;
    opt.threads = threads;
    serve_json(in, out, d, opt);
    std::istringstream lines(out.str());
    std::vector<std::string> sorted;
    std::string line;
    while (std::getline(lines, line)) sorted.push_back(line);
    std::sort(sorted.begin(), sorted.end());
    outputs.push_back(std::move(sorted));
    EXPECT_EQ(out.str().find("\"trace\""), std::string::npos);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

// ---------------------------------------------------------------------------
// The metrics operation and the stats latency digest.
// ---------------------------------------------------------------------------

TEST(MetricsOp, ExposesCoreInstrumentsOnEveryTransport) {
  Dispatcher d;
  ASSERT_EQ(d.dispatch(solve_request()).code, ErrorCode::Ok);

  Request req;
  req.op = MetricsRequest{};
  const Response resp = d.dispatch(req);
  ASSERT_EQ(resp.code, ErrorCode::Ok);
  const auto& p = std::get<MetricsPayload>(resp.payload);
  // Core instruments present with non-zero values in both renderings.
  EXPECT_NE(p.json.find("\"atcd_api_requests_total\":2"),
            std::string::npos)
      << p.json;
  EXPECT_NE(p.json.find("\"atcd_api_solves_total\":1"), std::string::npos);
  EXPECT_NE(p.json.find("\"atcd_result_cache_misses_total\":1"),
            std::string::npos);
  EXPECT_NE(p.json.find("\"atcd_api_request_micros\""), std::string::npos);
  EXPECT_NE(p.text.find("# TYPE atcd_api_requests_total counter\n"
                        "atcd_api_requests_total 2\n"),
            std::string::npos)
      << p.text;
  EXPECT_NE(p.text.find("atcd_result_cache_entries 1\n"),
            std::string::npos);

  // JSON wire round trip is byte-stable.
  const std::string once = encode_response(resp, false);
  const Decoded<Response> dec = decode_response(once);
  ASSERT_EQ(dec.code, ErrorCode::Ok) << dec.error;
  EXPECT_EQ(encode_response(dec.value, false), once);

  // Line transport: `metrics` renders the Prometheus text as rows,
  // `metrics --json` renders the registry JSON as one json= line.
  std::istringstream lin("metrics\nmetrics --json\nquit\n");
  std::ostringstream lout;
  service::serve(lin, lout, d);
  EXPECT_NE(lout.str().find("ok=true\nkind=metrics\n"), std::string::npos);
  EXPECT_NE(lout.str().find("=# TYPE atcd_api_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(lout.str().find("ok=true\njson={\"counters\":"),
            std::string::npos);
}

TEST(MetricsOp, RequestRoundTripsAndRejectsBadTraceFlag) {
  Request req;
  req.id = "9";
  req.op = MetricsRequest{};
  req.trace = true;
  const std::string wire = encode_request(req);
  EXPECT_EQ(wire, "{\"v\":1,\"id\":\"9\",\"op\":\"metrics\","
                  "\"trace\":true}");
  const Decoded<Request> dec = decode_request(wire);
  ASSERT_EQ(dec.code, ErrorCode::Ok) << dec.error;
  EXPECT_TRUE(dec.value.trace);
  EXPECT_TRUE(std::holds_alternative<MetricsRequest>(dec.value.op));
  EXPECT_EQ(encode_request(dec.value), wire);

  const Decoded<Request> bad =
      decode_request("{\"v\":1,\"op\":\"stats\",\"trace\":1}");
  EXPECT_EQ(bad.code, ErrorCode::MalformedRequest);
}

TEST(StatsLatency, DigestCoversEveryDispatchedRequest) {
  Dispatcher d;
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(d.dispatch(solve_request()).code, ErrorCode::Ok);
  const StatsPayload s = d.stats();
  EXPECT_EQ(s.latency.count, 3u);
  EXPECT_GE(s.latency.p99, s.latency.p50);
  EXPECT_GE(s.latency.sum_micros, s.latency.count - 1);

  // Wall-clock data stays out of the deterministic (timing-off) wire
  // encoding and rides with it when timing echo is on.
  Response resp;
  resp.payload = s;
  EXPECT_EQ(encode_response(resp, false).find("latency"),
            std::string::npos);
  EXPECT_NE(encode_response(resp, true).find("\"latency\":{\"count\":3"),
            std::string::npos);

  // The line renderings always carry the digest (line stats blocks are
  // not byte-pinned across runs).
  EXPECT_NE(format_line(resp).find("latency_count=3\n"), std::string::npos);
  EXPECT_NE(format_stats_json_line(s).find("\"latency\":{\"count\":3"),
            std::string::npos);
}

TEST(StatsLatency, RecordMetricsOffKeepsDispatchUninstrumented) {
  Dispatcher::Options opt;
  opt.record_metrics = false;
  Dispatcher d(std::move(opt));
  ASSERT_EQ(d.dispatch(solve_request()).code, ErrorCode::Ok);
  EXPECT_EQ(d.stats().latency.count, 0u);
  EXPECT_EQ(d.metrics().counter("atcd_api_requests_total").value(), 0u);
  // Layers below dispatch() still record into the shared registry.
  EXPECT_EQ(d.metrics().counter("atcd_result_cache_misses_total").value(),
            1u);
}

}  // namespace
}  // namespace atcd
