#include "ga/nsga2.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "helpers.hpp"

namespace atcd::ga {
namespace {

TEST(Nsga2, RecoversTheExactFactoryFront) {
  // 3 BASs, 8 attacks: NSGA-II must find the complete exact front.
  const auto m = casestudies::make_factory();
  const auto exact = cdpf_bottom_up(m);
  const auto approx = nsga2_cdpf(m);
  EXPECT_DOUBLE_EQ(front_coverage(exact, approx), 1.0);
}

TEST(Nsga2, WitnessesAreConsistentWithTheModel) {
  const auto m = casestudies::make_factory();
  for (const auto& p : nsga2_cdpf(m)) {
    EXPECT_DOUBLE_EQ(total_cost(m, p.witness), p.value.cost);
    EXPECT_DOUBLE_EQ(total_damage(m, p.witness), p.value.damage);
  }
}

TEST(Nsga2, NeverClaimsPointsBeyondTheExactFront) {
  // Soundness: an approximation point can be dominated by an exact point
  // but must never dominate one.
  Rng rng(61);
  for (int it = 0; it < 5; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 8, /*treelike=*/true);
    const auto exact = cdpf_bottom_up(m);
    Nsga2Options opt;
    opt.generations = 20;
    opt.seed = 1000 + static_cast<std::uint64_t>(it);
    for (const auto& a : nsga2_cdpf(m, opt))
      for (const auto& e : exact)
        EXPECT_FALSE(dominates(a.value, e.value))
            << "approximation dominates the exact front";
  }
}

TEST(Nsga2, ProbabilisticVariantTracksTheExactFront) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto exact = cedpf_bottom_up(m);
  const auto approx = nsga2_cedpf(m);
  EXPECT_GE(front_coverage(exact, approx, 1e-9), 0.9);
}

TEST(Nsga2, DeterministicGivenSeed) {
  const auto m = casestudies::make_factory();
  Nsga2Options opt;
  opt.seed = 5;
  const auto a = nsga2_cdpf(m, opt);
  const auto b = nsga2_cdpf(m, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(Nsga2, HypervolumeNeverExceedsExact) {
  Rng rng(62);
  for (int it = 0; it < 4; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 8, true);
    const auto exact = cdpf_bottom_up(m);
    Nsga2Options opt;
    opt.generations = 15;
    const auto approx = nsga2_cdpf(m, opt);
    double ref_cost = 0.0;
    for (double c : m.cost) ref_cost += c;
    const double hv_exact = hypervolume(exact, ref_cost, 0.0);
    const double hv_approx = hypervolume(approx, ref_cost, 0.0);
    EXPECT_LE(hv_approx, hv_exact + 1e-9);
    EXPECT_GE(hv_approx, 0.0);
  }
}

TEST(FrontCoverage, CountsMatches) {
  std::vector<FrontPoint> xs;
  xs.push_back({CdPoint{0, 0}, DynBitset(1)});
  xs.push_back({CdPoint{1, 5}, DynBitset(1)});
  const auto exact = Front2d::of_candidates(xs);
  xs.pop_back();
  const auto partial = Front2d::of_candidates(xs);
  EXPECT_DOUBLE_EQ(front_coverage(exact, partial), 0.5);
  EXPECT_DOUBLE_EQ(front_coverage(exact, exact), 1.0);
  EXPECT_DOUBLE_EQ(front_coverage(Front2d{}, partial), 1.0);
}

TEST(Hypervolume, SimpleStaircase) {
  std::vector<FrontPoint> xs;
  xs.push_back({CdPoint{0, 0}, DynBitset(1)});
  xs.push_back({CdPoint{1, 2}, DynBitset(1)});
  xs.push_back({CdPoint{3, 5}, DynBitset(1)});
  const auto f = Front2d::of_candidates(xs);
  // ref (4, 0): [1,3)x2 + [3,4)x5 = 4 + 5 = 9.
  EXPECT_DOUBLE_EQ(hypervolume(f, 4.0, 0.0), 9.0);
}

}  // namespace
}  // namespace atcd::ga
