#include "gen/random_at.hpp"

#include <gtest/gtest.h>

#include "gen/literature.hpp"
#include "util/rng.hpp"

namespace atcd::gen {
namespace {

TEST(Literature, TableIvNodeCountsAndShapes) {
  // |N| and treelike flags exactly as in the paper's Table IV.
  struct Expect {
    const char* name;
    std::size_t n;
    bool treelike;
  };
  const Expect expect[] = {
      {"kumar_fig1", 12, false},    {"kumar_fig8", 20, false},
      {"kumar_fig9", 12, false},    {"arnold15_fig1", 16, false},
      {"kordy_fig1", 15, true},     {"arnold14_fig3", 8, true},
      {"arnold14_fig5", 21, true},  {"arnold14_fig7", 25, true},
      {"fraile_fig2", 20, true},
  };
  const auto blocks = literature_blocks();
  ASSERT_EQ(blocks.size(), 9u);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_STREQ(blocks[i].name, expect[i].name);
    EXPECT_EQ(blocks[i].tree.node_count(), expect[i].n) << expect[i].name;
    EXPECT_EQ(blocks[i].tree.is_treelike(), expect[i].treelike)
        << expect[i].name;
    EXPECT_TRUE(blocks[i].tree.finalized());
  }
}

TEST(Literature, TreelikeSubsetHasFiveBlocks) {
  const auto blocks = literature_blocks_treelike();
  ASSERT_EQ(blocks.size(), 5u);
  for (const auto& b : blocks) EXPECT_TRUE(b.tree.is_treelike());
}

TEST(Combine, LeafSubstitutionJoinsTheTrees) {
  Rng rng(1);
  const auto blocks = literature_blocks_treelike();
  const auto& a = blocks[1].tree;  // arnold14_fig3, 8 nodes
  const auto& b = blocks[0].tree;  // kordy_fig1, 15 nodes
  const auto c = combine(a, b, CombineMethod::LeafSubstitution, "t0.", rng);
  // One BAS of `a` is replaced by all of `b`: |c| = |a| - 1 + |b|.
  EXPECT_EQ(c.node_count(), a.node_count() - 1 + b.node_count());
  EXPECT_EQ(c.bas_count(), a.bas_count() - 1 + b.bas_count());
  EXPECT_TRUE(c.is_treelike());
}

TEST(Combine, NewRootAddsOneNode) {
  Rng rng(2);
  const auto blocks = literature_blocks_treelike();
  const auto& a = blocks[0].tree;
  const auto& b = blocks[1].tree;
  const auto c = combine(a, b, CombineMethod::NewRoot, "t1.", rng);
  EXPECT_EQ(c.node_count(), a.node_count() + b.node_count() + 1);
  EXPECT_TRUE(c.is_treelike());
  EXPECT_EQ(c.children(c.root()).size(), 2u);
}

TEST(Combine, NewRootIdentifyCreatesADag) {
  Rng rng(3);
  const auto blocks = literature_blocks_treelike();
  const auto& a = blocks[0].tree;
  const auto& b = blocks[1].tree;
  const auto c = combine(a, b, CombineMethod::NewRootIdentify, "t2.", rng);
  // New root added, one BAS of b identified away.
  EXPECT_EQ(c.node_count(), a.node_count() + b.node_count());
  EXPECT_FALSE(c.is_treelike());
}

TEST(Combine, DeterministicGivenSeed) {
  const auto blocks = literature_blocks();
  for (int m = 0; m < 3; ++m) {
    Rng r1(77), r2(77);
    const auto c1 = combine(blocks[0].tree, blocks[4].tree,
                            static_cast<CombineMethod>(m), "x.", r1);
    const auto c2 = combine(blocks[0].tree, blocks[4].tree,
                            static_cast<CombineMethod>(m), "x.", r2);
    ASSERT_EQ(c1.node_count(), c2.node_count());
    for (NodeId v = 0; v < c1.node_count(); ++v)
      ASSERT_EQ(c1.name(v), c2.name(v));
  }
}

TEST(MakeSuite, ProducesRequestedSizesAndCount) {
  Rng rng(9);
  SuiteOptions opt;
  opt.max_n = 30;
  opt.per_size = 2;
  opt.treelike = true;
  const auto suite = make_suite(opt, rng);
  ASSERT_EQ(suite.size(), 60u);
  for (const auto& e : suite) {
    EXPECT_GE(e.tree.node_count(), e.size_target);
    EXPECT_TRUE(e.tree.is_treelike());
    EXPECT_TRUE(e.tree.finalized());
  }
}

TEST(MakeSuite, DagSuiteContainsDags) {
  Rng rng(10);
  SuiteOptions opt;
  opt.max_n = 40;
  opt.per_size = 2;
  opt.treelike = false;
  const auto suite = make_suite(opt, rng);
  std::size_t dags = 0;
  for (const auto& e : suite)
    if (!e.tree.is_treelike()) ++dags;
  EXPECT_GT(dags, suite.size() / 4);  // plenty of sharing
}

TEST(MakeSuite, RespectsBasCap) {
  Rng rng(11);
  SuiteOptions opt;
  opt.max_n = 50;
  opt.per_size = 2;
  opt.treelike = true;
  opt.max_bas = 40;
  const auto suite = make_suite(opt, rng);
  for (const auto& e : suite) EXPECT_LE(e.tree.bas_count(), 40u);
}

TEST(MakeSuite, DeterministicGivenSeed) {
  SuiteOptions opt;
  opt.max_n = 15;
  opt.per_size = 1;
  Rng r1(5), r2(5);
  const auto s1 = make_suite(opt, r1);
  const auto s2 = make_suite(opt, r2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_EQ(s1[i].tree.node_count(), s2[i].tree.node_count());
}

}  // namespace
}  // namespace atcd::gen
