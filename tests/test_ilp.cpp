#include "ilp/ilp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace atcd::ilp {
namespace {

TEST(Ilp, SolvesAKnapsackExactly) {
  // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6  -> b + c = 20 at weight 6.
  IntegerProgram ip;
  const int a = ip.base.add_var(0, 1, -10);
  const int b = ip.base.add_var(0, 1, -13);
  const int c = ip.base.add_var(0, 1, -7);
  ip.base.add_row({{a, 3}, {b, 4}, {c, 2}}, lp::Sense::LE, 6);
  ip.integer_vars = {a, b, c};
  const auto r = solve(ip);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.x[a], 0.0);
  EXPECT_DOUBLE_EQ(r.x[b], 1.0);
  EXPECT_DOUBLE_EQ(r.x[c], 1.0);
}

TEST(Ilp, IntegralityChangesTheOptimum) {
  // LP relaxation optimum is fractional; ILP must round properly.
  // max x + y s.t. 2x + 2y <= 3, binaries: LP gives 1.5, ILP gives 1.
  IntegerProgram ip;
  const int x = ip.base.add_var(0, 1, -1);
  const int y = ip.base.add_var(0, 1, -1);
  ip.base.add_row({{x, 2}, {y, 2}}, lp::Sense::LE, 3);
  ip.integer_vars = {x, y};
  const auto rel = lp::solve(ip.base);
  ASSERT_EQ(rel.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(rel.objective, -1.5, 1e-9);
  const auto r = solve(ip);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(Ilp, DetectsInfeasibility) {
  IntegerProgram ip;
  const int x = ip.base.add_var(0, 1, 1);
  ip.base.add_row({{x, 2}}, lp::Sense::GE, 3);  // needs x = 1.5
  ip.integer_vars = {x};
  EXPECT_EQ(solve(ip).status, IlpStatus::Infeasible);
}

TEST(Ilp, GeneralIntegerVariables) {
  // min -x s.t. 3x <= 10, x integer in [0, 10] -> x = 3.
  IntegerProgram ip;
  const int x = ip.base.add_var(0, 10, -1);
  ip.base.add_row({{x, 3}}, lp::Sense::LE, 10);
  ip.integer_vars = {x};
  const auto r = solve(ip);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_DOUBLE_EQ(r.x[x], 3.0);
}

TEST(Ilp, MixedIntegerContinuous) {
  // min -y - x, y binary, x continuous in [0, 0.5], x + y <= 1.2.
  IntegerProgram ip;
  const int y = ip.base.add_var(0, 1, -1);
  const int x = ip.base.add_var(0, 0.5, -1);
  ip.base.add_row({{x, 1}, {y, 1}}, lp::Sense::LE, 1.2);
  ip.integer_vars = {y};
  const auto r = solve(ip);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_DOUBLE_EQ(r.x[y], 1.0);
  EXPECT_NEAR(r.x[x], 0.2, 1e-9);
}

TEST(Ilp, RejectsUnboundedIntegers) {
  IntegerProgram ip;
  ip.base.add_var(0, lp::kInf, -1);
  ip.integer_vars = {0};
  EXPECT_THROW(solve(ip), SolverError);
}

struct RandomIlpCase {
  std::uint64_t seed;
  int n_vars;
  int n_rows;
};

class RandomBinaryIlp : public ::testing::TestWithParam<RandomIlpCase> {};

TEST_P(RandomBinaryIlp, MatchesBruteForce) {
  const auto& pc = GetParam();
  Rng rng(pc.seed);
  for (int rep = 0; rep < 10; ++rep) {
    IntegerProgram ip;
    std::vector<double> c(pc.n_vars);
    for (int j = 0; j < pc.n_vars; ++j) {
      c[j] = static_cast<double>(rng.range(-9, 9));
      ip.base.add_var(0, 1, c[j]);
      ip.integer_vars.push_back(j);
    }
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int i = 0; i < pc.n_rows; ++i) {
      std::vector<double> row(pc.n_vars);
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < pc.n_vars; ++j) {
        row[j] = static_cast<double>(rng.range(-3, 5));
        terms.emplace_back(j, row[j]);
      }
      const double b = static_cast<double>(rng.range(0, 8));
      ip.base.add_row(terms, lp::Sense::LE, b);
      rows.push_back(row);
      rhs.push_back(b);
    }
    // Brute force over all binary vectors.
    double best = 1e18;
    bool feasible = false;
    for (int mask = 0; mask < (1 << pc.n_vars); ++mask) {
      bool ok = true;
      for (std::size_t i = 0; i < rows.size() && ok; ++i) {
        double lhs = 0;
        for (int j = 0; j < pc.n_vars; ++j)
          if (mask >> j & 1) lhs += rows[i][j];
        ok = lhs <= rhs[i] + 1e-12;
      }
      if (!ok) continue;
      feasible = true;
      double obj = 0;
      for (int j = 0; j < pc.n_vars; ++j)
        if (mask >> j & 1) obj += c[j];
      best = std::min(best, obj);
    }
    const auto r = solve(ip);
    if (!feasible) {
      EXPECT_EQ(r.status, IlpStatus::Infeasible);
      continue;
    }
    ASSERT_EQ(r.status, IlpStatus::Optimal) << "rep " << rep;
    EXPECT_NEAR(r.objective, best, 1e-7) << "rep " << rep;
    // Returned solution must itself be feasible and integral.
    for (std::size_t i = 0; i < rows.size(); ++i) {
      double lhs = 0;
      for (int j = 0; j < pc.n_vars; ++j) lhs += rows[i][j] * r.x[j];
      EXPECT_LE(lhs, rhs[i] + 1e-7);
    }
    for (int j = 0; j < pc.n_vars; ++j)
      EXPECT_DOUBLE_EQ(r.x[j], std::round(r.x[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBinaryIlp,
                         ::testing::Values(RandomIlpCase{101, 4, 2},
                                           RandomIlpCase{102, 6, 3},
                                           RandomIlpCase{103, 8, 2},
                                           RandomIlpCase{104, 8, 5},
                                           RandomIlpCase{105, 10, 4},
                                           RandomIlpCase{106, 12, 3}));

}  // namespace
}  // namespace atcd::ilp
