#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "bdd/at_bdd.hpp"
#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "casestudies/panda.hpp"
#include "helpers.hpp"

namespace atcd::metrics {
namespace {

TEST(Metrics, MinAttackCostOnTheFactory) {
  // Cheapest successful attack: {ca} at cost 1.
  EXPECT_DOUBLE_EQ(min_attack_cost(casestudies::make_factory()), 1.0);
}

TEST(Metrics, MinAttackCostMatchesBddOnRandomTrees) {
  Rng rng(95);
  for (int it = 0; it < 15; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 8, /*treelike=*/true);
    ASSERT_NEAR(min_attack_cost(m), min_cost_of_successful_attack(m), 1e-9);
  }
}

TEST(Metrics, MinAttackCostOnThePanda) {
  // Cheapest way to the root: {b18} (OR of purchased info) at cost 3.
  EXPECT_DOUBLE_EQ(
      min_attack_cost(casestudies::make_panda().deterministic()), 3.0);
}

TEST(Metrics, RefusesDags) {
  const auto ds = casestudies::make_dataserver();
  EXPECT_THROW(min_attack_cost(ds), UnsupportedError);
  CdpAt p{ds.tree, ds.cost, ds.damage,
          std::vector<double>(ds.tree.bas_count(), 0.5)};
  EXPECT_THROW(max_success_probability(p), UnsupportedError);
  EXPECT_THROW(all_in_success_probability(p), UnsupportedError);
}

TEST(Metrics, MinAttackSkill) {
  // skill: OR = min over options, AND = max over needed steps.
  const auto m = casestudies::make_factory();
  // skills: ca = 5, pb = 2, fd = 3 -> robot path needs max(2,3) = 3,
  // root min(5, 3) = 3.
  EXPECT_DOUBLE_EQ(min_attack_skill(m.tree, {5, 2, 3}), 3.0);
  EXPECT_DOUBLE_EQ(min_attack_skill(m.tree, {1, 2, 3}), 1.0);
  EXPECT_THROW(min_attack_skill(m.tree, {1, 2}), ModelError);
}

TEST(Metrics, MaxSuccessProbability) {
  const auto m = casestudies::make_factory_probabilistic();
  // Best single path: max(0.2, 0.4*0.9) = 0.36.
  EXPECT_DOUBLE_EQ(max_success_probability(m), 0.36);
}

TEST(Metrics, AllInSuccessProbabilityMatchesBdd) {
  const auto m = casestudies::make_factory_probabilistic();
  EXPECT_NEAR(all_in_success_probability(m), 0.488, 1e-12);
  EXPECT_NEAR(all_in_success_probability(m),
              root_reach_probability_all_in(m), 1e-12);
  // And on random trees.
  Rng rng(96);
  for (int it = 0; it < 10; ++it) {
    const auto rm = atcd::testing::random_cdpat(rng, 7, /*treelike=*/true);
    ASSERT_NEAR(all_in_success_probability(rm),
                root_reach_probability_all_in(rm), 1e-9);
  }
}

TEST(Metrics, AllInIsAtLeastBestSinglePath) {
  Rng rng(97);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 8, /*treelike=*/true);
    EXPECT_GE(all_in_success_probability(m),
              max_success_probability(m) - 1e-12);
  }
}

}  // namespace
}  // namespace atcd::metrics
