#include "core/problems.hpp"

#include <gtest/gtest.h>

#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "engine/registry.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::front_is;

TEST(Problems, AutoSelectsBottomUpForTrees) {
  const auto m = casestudies::make_factory();
  EXPECT_TRUE(front_is(cdpf(m), {{0, 0}, {1, 200}, {3, 210}, {5, 310}}));
  EXPECT_TRUE(front_is(cdpf(m, Engine::BottomUp),
                       {{0, 0}, {1, 200}, {3, 210}, {5, 310}}));
}

TEST(Problems, AutoSelectsBilpForDags) {
  const auto m = casestudies::make_dataserver();
  const auto f = cdpf(m);  // must not throw UnsupportedError
  EXPECT_EQ(f.size(), 6u);
}

TEST(Problems, AutoSelectsBddForProbabilisticDags) {
  const auto det = casestudies::make_dataserver();
  CdpAt m{det.tree, det.cost, det.damage,
          std::vector<double>(det.tree.bas_count(), 0.5)};
  const auto f = cedpf(m);  // BDD fallback, 2^12 attacks
  EXPECT_GT(f.size(), 1u);
}

TEST(Problems, ExplicitEngineMismatchThrows) {
  const auto ds = casestudies::make_dataserver();
  EXPECT_THROW(cdpf(ds, Engine::BottomUp), UnsupportedError);
  EXPECT_THROW(cdpf(ds, Engine::Bdd), UnsupportedError);
  const auto fac = casestudies::make_factory_probabilistic();
  EXPECT_THROW(cedpf(fac, Engine::Bilp), UnsupportedError);
}

TEST(Problems, AllSixProblemsRunOnTheFactory) {
  const auto m = casestudies::make_factory();
  const auto mp = casestudies::make_factory_probabilistic();
  EXPECT_EQ(cdpf(m).size(), 4u);
  EXPECT_DOUBLE_EQ(dgc(m, 2.0).damage, 200.0);
  EXPECT_DOUBLE_EQ(cgd(m, 201.0).cost, 3.0);
  EXPECT_GT(cedpf(mp).size(), 1u);
  EXPECT_GT(edgc(mp, 3.0).damage, 0.0);
  EXPECT_TRUE(cged(mp, 1.0).feasible);
}

TEST(Problems, EngineNames) {
  EXPECT_STREQ(to_string(Engine::Auto), "auto");
  EXPECT_STREQ(to_string(Engine::Enumerative), "enumerative");
  EXPECT_STREQ(to_string(Engine::BottomUp), "bottom-up");
  EXPECT_STREQ(to_string(Engine::Bilp), "bilp");
  EXPECT_STREQ(to_string(Engine::Bdd), "bdd");
  EXPECT_STREQ(to_string(Engine::Nsga2), "nsga2");
  EXPECT_STREQ(to_string(Engine::Knapsack), "knapsack");
}

TEST(Problems, EngineNamesAreRegistryKeys) {
  // Every non-Auto enumerator resolves to a registered backend of the
  // same name, so string- and enum-based selection cannot drift apart.
  for (const Engine e : {Engine::Enumerative, Engine::BottomUp, Engine::Bilp,
                         Engine::Bdd, Engine::Nsga2, Engine::Knapsack}) {
    const auto* b = engine::default_registry().find(to_string(e));
    ASSERT_NE(b, nullptr) << to_string(e);
    EXPECT_STREQ(b->name(), to_string(e));
  }
}

TEST(Problems, EnumerativeEngineIsSelectable) {
  const auto m = casestudies::make_factory();
  EXPECT_TRUE(front_is(cdpf(m, Engine::Enumerative),
                       {{0, 0}, {1, 200}, {3, 210}, {5, 310}}));
  EXPECT_DOUBLE_EQ(dgc(m, 2.0, Engine::Enumerative).damage, 200.0);
  EXPECT_DOUBLE_EQ(cgd(m, 201.0, Engine::Enumerative).cost, 3.0);
}

}  // namespace
}  // namespace atcd
