#pragma once
/// Shared test utilities: small random model generators and front
/// comparison helpers used by the unit and property tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cdat.hpp"
#include "pareto/front2d.hpp"
#include "util/rng.hpp"

namespace atcd::testing {

/// Builds a random *treelike* AT with exactly `n_bas` leaves: leaves are
/// grouped bottom-up under random OR/AND gates of arity 2-3 until one
/// root remains.
inline AttackTree random_tree(Rng& rng, std::size_t n_bas) {
  AttackTree t;
  std::vector<NodeId> open;
  for (std::size_t i = 0; i < n_bas; ++i)
    open.push_back(t.add_bas("b" + std::to_string(i)));
  int g = 0;
  while (open.size() > 1) {
    const std::size_t arity =
        std::min<std::size_t>(open.size(), 2 + rng.below(2));
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < arity; ++i) {
      const std::size_t pick = rng.below(open.size());
      cs.push_back(open[pick]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    open.push_back(t.add_gate(rng.chance(0.5) ? NodeType::OR : NodeType::AND,
                              "g" + std::to_string(g++), cs));
  }
  t.set_root(open[0]);
  t.finalize();
  return t;
}

/// Builds a random *DAG-shaped* AT: a random tree plus extra edges from
/// random gates to random non-descendant... simpler: gates may pick
/// already-used nodes as extra children, which creates sharing.
inline AttackTree random_dag(Rng& rng, std::size_t n_bas) {
  AttackTree t;
  std::vector<NodeId> all;  // candidate children created so far
  std::vector<NodeId> open;
  for (std::size_t i = 0; i < n_bas; ++i) {
    const NodeId b = t.add_bas("b" + std::to_string(i));
    all.push_back(b);
    open.push_back(b);
  }
  int g = 0;
  while (open.size() > 1) {
    const std::size_t arity =
        std::min<std::size_t>(open.size(), 2 + rng.below(2));
    std::vector<NodeId> cs;
    for (std::size_t i = 0; i < arity; ++i) {
      const std::size_t pick = rng.below(open.size());
      cs.push_back(open[pick]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // With probability 1/2 adopt one extra already-combined node: it then
    // has two parents, making the AT DAG-shaped.
    if (rng.chance(0.5)) {
      const NodeId extra = all[rng.below(all.size())];
      bool dup = false;
      for (NodeId c : cs) dup |= (c == extra);
      if (!dup) cs.push_back(extra);
    }
    const NodeId gate = t.add_gate(
        rng.chance(0.5) ? NodeType::OR : NodeType::AND,
        "g" + std::to_string(g++), cs);
    all.push_back(gate);
    open.push_back(gate);
  }
  t.set_root(open[0]);
  t.finalize();
  return t;
}

/// Random decorated models over the paper's Sec. X value ranges.
inline CdpAt random_cdpat(Rng& rng, std::size_t n_bas, bool treelike) {
  const AttackTree t =
      treelike ? random_tree(rng, n_bas) : random_dag(rng, n_bas);
  return randomize_decorations(t, rng);
}

inline CdAt random_cdat(Rng& rng, std::size_t n_bas, bool treelike) {
  return random_cdpat(rng, n_bas, treelike).deterministic();
}

/// gtest assertion: two fronts carry the same (cost, damage) values.
inline ::testing::AssertionResult fronts_equal(const Front2d& a,
                                               const Front2d& b,
                                               double tol = 1e-9) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "front sizes differ: " << a.size() << " vs " << b.size()
           << "\nA:\n" << a.to_string() << "B:\n" << b.to_string();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a[i].value;
    const auto& pb = b[i].value;
    if (std::abs(pa.cost - pb.cost) > tol ||
        std::abs(pa.damage - pb.damage) > tol)
      return ::testing::AssertionFailure()
             << "point " << i << " differs: (" << pa.cost << "," << pa.damage
             << ") vs (" << pb.cost << "," << pb.damage << ")";
  }
  return ::testing::AssertionSuccess();
}

/// gtest assertion: the front contains exactly these (cost, damage) pairs.
inline ::testing::AssertionResult front_is(
    const Front2d& f, const std::vector<std::pair<double, double>>& expect,
    double tol = 1e-9) {
  if (f.size() != expect.size())
    return ::testing::AssertionFailure()
           << "front size " << f.size() << " != expected " << expect.size()
           << "\n" << f.to_string();
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (std::abs(f[i].value.cost - expect[i].first) > tol ||
        std::abs(f[i].value.damage - expect[i].second) > tol)
      return ::testing::AssertionFailure()
             << "point " << i << ": (" << f[i].value.cost << ","
             << f[i].value.damage << ") != (" << expect[i].first << ","
             << expect[i].second << ")";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace atcd::testing
