/// Golden-corpus regression: ~10 small checked-in .atcd fixtures
/// (running example, tricky shapes: shared subtrees, deep chains,
/// defense-heavy, wide gates, probabilistic DAGs) with expected optima
/// pinned in a table.  Tier-1 ctest runs this, so engine/planner
/// refactors can't silently shift answers.
///
/// Every case is solved twice: with the planner's choice of engine and
/// with the enumerative oracle (where supported) — both must match the
/// table.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "at/parser.hpp"
#include "engine/batch.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using engine::Instance;
using engine::Problem;
using testing::front_is;

#ifndef ATCD_TESTS_DIR
#error "ATCD_TESTS_DIR must point at the tests/ source directory"
#endif

CdpAt load(const std::string& name) {
  ParsedModel p =
      parse_model_file(std::string(ATCD_TESTS_DIR) + "/golden/" + name);
  CdpAt m;
  m.tree = std::move(p.tree);
  m.cost = std::move(p.cost);
  m.damage = std::move(p.damage);
  m.prob = std::move(p.prob);
  m.validate();
  return m;
}

/// Solves fixture `name` with the planner and (when supported) the
/// enumerative oracle; returns both results.
std::vector<engine::SolveResult> solve_both(const CdpAt& m, Problem p,
                                            double bound) {
  std::vector<engine::SolveResult> out;
  const CdAt det = m.deterministic();
  const bool prob = engine::is_probabilistic(p);
  out.push_back(engine::solve_one(prob ? Instance::of(p, m, bound)
                                       : Instance::of(p, det, bound)));
  const engine::Traits t =
      prob ? engine::traits_of(m) : engine::traits_of(det);
  if (engine::default_registry().at("enumerative").supports(p, t))
    out.push_back(
        engine::solve_one(prob ? Instance::of(p, m, bound, "enumerative")
                               : Instance::of(p, det, bound, "enumerative")));
  return out;
}

void expect_front(const std::string& fixture, Problem p,
                  const std::vector<std::pair<double, double>>& points,
                  double tol = 1e-9) {
  const CdpAt m = load(fixture);
  for (const auto& r : solve_both(m, p, 0.0)) {
    ASSERT_TRUE(r.ok) << fixture << " (" << r.backend << "): " << r.error;
    EXPECT_TRUE(front_is(r.front, points, tol))
        << fixture << " via " << r.backend;
  }
}

void expect_attack(const std::string& fixture, Problem p, double bound,
                   double cost, double damage,
                   const std::string& engine_name = {}) {
  const CdpAt m = load(fixture);
  if (!engine_name.empty()) {
    const CdAt det = m.deterministic();
    const auto r =
        engine::solve_one(Instance::of(p, det, bound, engine_name));
    ASSERT_TRUE(r.ok) << fixture << " (" << engine_name << "): " << r.error;
    ASSERT_TRUE(r.attack.feasible) << fixture << " via " << engine_name;
    EXPECT_NEAR(r.attack.cost, cost, 1e-9) << fixture << " via " << engine_name;
    EXPECT_NEAR(r.attack.damage, damage, 1e-9)
        << fixture << " via " << engine_name;
    return;
  }
  for (const auto& r : solve_both(m, p, bound)) {
    ASSERT_TRUE(r.ok) << fixture << " (" << r.backend << "): " << r.error;
    ASSERT_TRUE(r.attack.feasible) << fixture << " via " << r.backend;
    EXPECT_NEAR(r.attack.cost, cost, 1e-9) << fixture << " via " << r.backend;
    EXPECT_NEAR(r.attack.damage, damage, 1e-9)
        << fixture << " via " << r.backend;
  }
}

// ---- The table.  Values were cross-checked against the enumerative ----
// ---- oracle when first recorded; solve_both re-checks on every run. ----

TEST(Golden, FactoryRunningExample) {
  expect_front("factory.atcd", Problem::Cdpf,
               {{0, 0}, {1, 200}, {3, 210}, {5, 310}});
  expect_attack("factory.atcd", Problem::Dgc, /*budget=*/4, 3, 210);
  expect_front("factory.atcd", Problem::Cedpf,
               {{0, 0}, {1, 40}, {3, 49}, {5, 117}, {6, 142.6}}, 1e-6);
}

TEST(Golden, DeepChain) {
  expect_front("deep_chain.atcd", Problem::Cdpf, {{0, 0}, {3, 37}});
  expect_attack("deep_chain.atcd", Problem::Cgd, /*threshold=*/10, 3, 37);
}

TEST(Golden, SharedSubtreeDag) {
  expect_front("shared_subtree.atcd", Problem::Cdpf,
               {{0, 0}, {2, 5}, {7, 38}, {15, 40}});
  expect_attack("shared_subtree.atcd", Problem::Dgc, /*budget=*/10, 7, 38);
}

TEST(Golden, DefenseHeavy) {
  expect_front("defense_heavy.atcd", Problem::Cdpf,
               {{0, 0},
                {40, 1},
                {70, 5},
                {95, 131},
                {130, 155},
                {170, 156},
                {225, 186}});
  expect_attack("defense_heavy.atcd", Problem::Cgd, /*threshold=*/150, 130,
                155);
}

TEST(Golden, WideOr) {
  expect_attack("wide_or.atcd", Problem::Dgc, /*budget=*/10, 10, 20);
  expect_attack("wide_or.atcd", Problem::Cgd, /*threshold=*/30, 17, 30);
}

TEST(Golden, WideAnd) {
  expect_front("wide_and.atcd", Problem::Cdpf,
               {{0, 0}, {1, 1}, {3, 2}, {4, 3}, {6, 4}, {12, 29}});
}

TEST(Golden, AdditiveKnapsack) {
  expect_attack("additive.atcd", Problem::Dgc, /*budget=*/9, 9, 13);
  expect_attack("additive.atcd", Problem::Cgd, /*threshold=*/15, 10, 15);
  // The additive model is knapsack territory: the dedicated solver must
  // land on the same optima.
  expect_attack("additive.atcd", Problem::Dgc, 9, 9, 13, "knapsack");
  expect_attack("additive.atcd", Problem::Cgd, 15, 10, 15, "knapsack");
}

TEST(Golden, BinaryDeep) {
  expect_front("binary_deep.atcd", Problem::Cdpf,
               {{0, 0},
                {1, 5},
                {2, 21},
                {3, 26},
                {4, 28},
                {5, 36},
                {7, 38},
                {8, 39},
                {9, 40},
                {10, 41},
                {12, 42},
                {15, 43}});
}

TEST(Golden, ProbabilisticMixedTree) {
  expect_front("prob_mixed.atcd", Problem::Cedpf,
               {{0, 0}, {1, 2.7}, {3, 3.3}, {5, 4.3}, {6, 9.4}, {7, 10.804}},
               1e-6);
}

TEST(Golden, ProbabilisticSharedDag) {
  // Probabilistic DAG: enumerative is unsupported, the BDD engine
  // answers alone — pinned here so its semantics can't drift.
  expect_front("shared_prob.atcd", Problem::Cedpf,
               {{0, 0}, {3, 0.5}, {5, 7.5}, {9, 9.95}, {11, 13.17}}, 1e-6);
}

}  // namespace
}  // namespace atcd
