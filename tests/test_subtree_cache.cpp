/// Tests for service/subtree_cache.hpp: cross-model subtree reuse,
/// budget keying, LRU/byte budgets, and the byte-accounting independence
/// of the subtree cache and the whole-model result cache when both are
/// enabled on one BatchOptions.

#include "service/subtree_cache.hpp"

#include <gtest/gtest.h>

#include "at/parser.hpp"
#include "core/enumerative.hpp"
#include "helpers.hpp"
#include "service/cache.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

using engine::BatchOptions;
using engine::Instance;
using engine::Problem;
using service::ResultCache;
using service::SubtreeCache;
using testing::fronts_equal;

/// A small handmade model: OR(sub, extra) with sub = AND(a, b).
CdAt host_with_shared_subtree(const std::string& prefix, double extra_cost) {
  AttackTree t;
  const NodeId a = t.add_bas(prefix + "a");
  const NodeId b = t.add_bas(prefix + "b");
  const NodeId sub = t.add_gate(NodeType::AND, prefix + "sub", {a, b});
  const NodeId x = t.add_bas(prefix + "x");
  t.add_gate(NodeType::OR, prefix + "root", {sub, x});
  t.finalize();
  CdAt m;
  m.tree = std::move(t);
  // BAS order: a, b, x.
  m.cost = {2.0, 3.0, extra_cost};
  m.damage = std::vector<double>(m.tree.node_count(), 0.0);
  m.damage[a] = 4.0;
  m.damage[b] = 1.0;
  m.damage[sub] = 5.0;
  return m;
}

TEST(SubtreeCache, ReusesFrontsAcrossDistinctModels) {
  SubtreeCache cache;
  BatchOptions opt;
  opt.subtree = &cache;

  // Two different models (different extra leaf, different names) that
  // share the decorated AND(a,b) subtree.
  const CdAt m1 = host_with_shared_subtree("p.", 7.0);
  const CdAt m2 = host_with_shared_subtree("q.", 9.0);

  const auto r1 = engine::solve_one(Instance::of(Problem::Cdpf, m1), opt);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_EQ(r1.backend, "bottom-up");
  const auto after_first = cache.stats();
  EXPECT_GT(after_first.insertions, 0u);
  EXPECT_EQ(after_first.hits, 0u);

  const auto r2 = engine::solve_one(Instance::of(Problem::Cdpf, m2), opt);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_GT(cache.stats().hits, after_first.hits);  // the shared subtree

  // Results are unchanged by memoization.
  EXPECT_TRUE(fronts_equal(r1.front, cdpf_enumerative(m1)));
  EXPECT_TRUE(fronts_equal(r2.front, cdpf_enumerative(m2)));
}

TEST(SubtreeCache, SecondSolveOfSameModelHitsEverywhere) {
  SubtreeCache::Config cfg;
  cfg.min_leaves = 2;
  SubtreeCache cache(cfg);
  BatchOptions opt;
  opt.subtree = &cache;

  Rng rng(99);
  const CdAt m = testing::random_cdat(rng, 9, /*treelike=*/true);
  const auto r1 = engine::solve_one(Instance::of(Problem::Cdpf, m), opt);
  ASSERT_TRUE(r1.ok) << r1.error;
  const auto s1 = cache.stats();
  const auto r2 = engine::solve_one(Instance::of(Problem::Cdpf, m), opt);
  ASSERT_TRUE(r2.ok) << r2.error;
  const auto s2 = cache.stats();
  // The root front comes straight from the cache: exactly one hit, no
  // new insertions (every reachable node short-circuits at the root).
  EXPECT_EQ(s2.hits, s1.hits + 1);
  EXPECT_EQ(s2.insertions, s1.insertions);
  EXPECT_TRUE(fronts_equal(r1.front, r2.front));
}

TEST(SubtreeCache, RenamedAndPermutedSubtreesShareEntries) {
  SubtreeCache cache;
  BatchOptions opt;
  opt.subtree = &cache;

  // Same decorated structure, different names and child order.
  const auto parse = [](const std::string& text) {
    ParsedModel p = parse_model(text);
    CdAt m;
    m.tree = std::move(p.tree);
    m.cost = std::move(p.cost);
    m.damage = std::move(p.damage);
    return m;
  };
  const CdAt m1 = parse(
      "bas a cost=1 damage=2\n"
      "bas b cost=4 damage=1\n"
      "and g = a, b damage=3\n");
  const CdAt m2 = parse(
      "bas u cost=4 damage=1\n"
      "bas v cost=1 damage=2\n"
      "and h = u, v damage=3\n");

  ASSERT_TRUE(engine::solve_one(Instance::of(Problem::Cdpf, m1), opt).ok);
  const auto r = engine::solve_one(Instance::of(Problem::Cdpf, m2), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(fronts_equal(r.front, cdpf_enumerative(m2)));
  // The reused witnesses are re-indexed into m2's BAS space: every front
  // point's witness must evaluate to its own (cost, damage).
  for (const auto& p : r.front) {
    EXPECT_NEAR(total_cost(m2, p.witness), p.value.cost, 1e-9);
    EXPECT_NEAR(total_damage(m2, p.witness), p.value.damage, 1e-9);
  }
}

TEST(SubtreeCache, BudgetIsPartOfTheKey) {
  SubtreeCache cache;
  BatchOptions opt;
  opt.subtree = &cache;

  Rng rng(7);
  const CdAt m = testing::random_cdat(rng, 8, /*treelike=*/true);
  const auto r1 =
      engine::solve_one(Instance::of(Problem::Dgc, m, /*bound=*/10.0), opt);
  ASSERT_TRUE(r1.ok) << r1.error;
  const auto s1 = cache.stats();
  // A different budget prunes differently: it must not see budget-10
  // entries (no hits), and its results stay exact.
  const auto r2 =
      engine::solve_one(Instance::of(Problem::Dgc, m, /*bound=*/5.0), opt);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(cache.stats().hits, s1.hits);
  const auto oracle = dgc_enumerative(m, 5.0);
  EXPECT_EQ(r2.attack.feasible, oracle.feasible);
  if (oracle.feasible) EXPECT_NEAR(r2.attack.damage, oracle.damage, 1e-9);
}

TEST(SubtreeCache, DagModelsBypassTheCache) {
  SubtreeCache cache;
  Rng rng(3);
  const CdAt dag = testing::random_cdat(rng, 6, /*treelike=*/false);
  EXPECT_EQ(cache.bind(dag, kNoBudget), nullptr);
}

TEST(SubtreeCache, EvictsToEntryBudget) {
  SubtreeCache::Config cfg;
  cfg.shards = 1;
  cfg.max_entries = 4;
  SubtreeCache cache(cfg);
  BatchOptions opt;
  opt.subtree = &cache;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    const CdAt m = testing::random_cdat(rng, 10, /*treelike=*/true);
    ASSERT_TRUE(engine::solve_one(Instance::of(Problem::Cdpf, m), opt).ok);
  }
  const auto s = cache.stats();
  EXPECT_LE(s.entries, 4u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.entries + s.evictions, s.insertions);
}

TEST(SubtreeCache, ClearResetsResidency) {
  SubtreeCache cache;
  BatchOptions opt;
  opt.subtree = &cache;
  Rng rng(12);
  const CdAt m = testing::random_cdat(rng, 8, /*treelike=*/true);
  ASSERT_TRUE(engine::solve_one(Instance::of(Problem::Cdpf, m), opt).ok);
  EXPECT_GT(cache.stats().entries, 0u);
  EXPECT_GT(cache.stats().bytes, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

/// The double-count guard: SubtreeCache entries retain only signatures
/// and local fronts, ResultCache entries retain models and results —
/// enabling both on one BatchOptions must account every byte exactly
/// once, i.e. each cache's byte counter equals what it reports when
/// enabled alone, and a whole-model hit must not re-run (or re-store)
/// the subtree path.
TEST(SubtreeCache, NoDoubleCountingWithResultCache) {
  Rng rng(21);
  std::vector<CdAt> models;
  for (int i = 0; i < 6; ++i)
    models.push_back(testing::random_cdat(rng, 9, /*treelike=*/true));

  const auto run = [&](ResultCache* rc, SubtreeCache* sc) {
    BatchOptions opt;
    opt.cache = rc;
    opt.subtree = sc;
    for (const CdAt& m : models) {
      const auto r = engine::solve_one(Instance::of(Problem::Cdpf, m), opt);
      ASSERT_TRUE(r.ok) << r.error;
    }
  };

  ResultCache rc_alone, rc_both;
  SubtreeCache sc_alone, sc_both;
  run(&rc_alone, nullptr);
  run(nullptr, &sc_alone);
  run(&rc_both, &sc_both);

  // Byte/entry accounting is independent: enabling the other cache does
  // not inflate (or deflate) either counter.
  EXPECT_EQ(rc_both.stats().bytes, rc_alone.stats().bytes);
  EXPECT_EQ(rc_both.stats().entries, rc_alone.stats().entries);
  EXPECT_EQ(sc_both.stats().bytes, sc_alone.stats().bytes);
  EXPECT_EQ(sc_both.stats().insertions, sc_alone.stats().insertions);

  // A whole-model result-cache hit short-circuits before the subtree
  // memo is bound: replaying the same workload adds result-cache hits
  // but leaves the subtree counters untouched.
  const auto sc_before = sc_both.stats();
  const auto rc_hits_before = rc_both.stats().hits;
  run(&rc_both, &sc_both);
  EXPECT_EQ(rc_both.stats().hits, rc_hits_before + models.size());
  const auto sc_after = sc_both.stats();
  EXPECT_EQ(sc_after.hits, sc_before.hits);
  EXPECT_EQ(sc_after.misses, sc_before.misses);
  EXPECT_EQ(sc_after.insertions, sc_before.insertions);
  EXPECT_EQ(sc_after.bytes, sc_before.bytes);
}

/// Memoized solves must be bit-compatible with unmemoized ones across
/// problems and model kinds.
TEST(SubtreeCache, MemoizedEqualsUnmemoized) {
  Rng rng(31);
  SubtreeCache cache;
  BatchOptions with, without;
  with.subtree = &cache;
  for (int i = 0; i < 20; ++i) {
    const CdpAt mp = testing::random_cdpat(rng, 8, /*treelike=*/true);
    const CdAt md = mp.deterministic();
    for (const Problem p : {Problem::Cdpf, Problem::Dgc, Problem::Cgd}) {
      const double bound = p == Problem::Cdpf ? 0.0 : rng.uniform(0.0, 30.0);
      const auto a = engine::solve_one(Instance::of(p, md, bound), with);
      const auto b = engine::solve_one(Instance::of(p, md, bound), without);
      ASSERT_EQ(a.ok, b.ok) << a.error << b.error;
      if (engine::is_front(p)) {
        EXPECT_TRUE(fronts_equal(a.front, b.front));
      } else {
        EXPECT_EQ(a.attack.feasible, b.attack.feasible);
        if (a.attack.feasible) {
          EXPECT_DOUBLE_EQ(a.attack.cost, b.attack.cost);
          EXPECT_DOUBLE_EQ(a.attack.damage, b.attack.damage);
        }
      }
    }
    for (const Problem p : {Problem::Cedpf, Problem::Edgc, Problem::Cged}) {
      const double bound = p == Problem::Cedpf ? 0.0 : rng.uniform(0.0, 30.0);
      const auto a = engine::solve_one(Instance::of(p, mp, bound), with);
      const auto b = engine::solve_one(Instance::of(p, mp, bound), without);
      ASSERT_EQ(a.ok, b.ok) << a.error << b.error;
      if (engine::is_front(p)) {
        EXPECT_TRUE(fronts_equal(a.front, b.front));
      } else {
        EXPECT_EQ(a.attack.feasible, b.attack.feasible);
        if (a.attack.feasible) {
          EXPECT_DOUBLE_EQ(a.attack.cost, b.attack.cost);
          EXPECT_DOUBLE_EQ(a.attack.damage, b.attack.damage);
        }
      }
    }
  }
}

}  // namespace
}  // namespace atcd
