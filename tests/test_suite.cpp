/// Tests for the scenario-suite subsystem (src/suite/) and its two
/// observability companions:
///
///   * suite-file parsing — a malformed-input table asserting typed,
///     line-numbered errors (parse never crashes on any input), plus
///     full-fidelity parsing of a kitchen-sink suite
///   * model materialization — golden files, seeded generators
///     (deterministic per seed), literature blocks, typed failures
///   * the cross-transport drift detector — a deliberately corrupting
///     Path injected next to the dispatcher path must fail the case
///     with its name and a first-difference diff
///   * expectation checking — wrong expect_cost / expect_hash /
///     expect_front pins fail with the offending value in the note
///   * every checked-in suites/*.suite file parses and replays cleanly
///     through the in-process dispatcher path
///   * Chrome trace-event export — the emitted JSON validates against
///     the trace-event schema (traceEvents array of "ph" events with
///     name/ts/dur/pid/tid, metadata process_name first)
///   * the perf trajectory — BENCH report parsing, merge rules,
///     dump/parse round-trip, metric classification, and regression
///     comparison (ratio gating, noise floor, coverage loss)

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "suite/trajectory.hpp"

namespace atcd {
namespace {

using namespace atcd::suite;

const std::string kSuitesDir = std::string(ATCD_TESTS_DIR) + "/../suites";
const std::string kGoldenDir = std::string(ATCD_TESTS_DIR) + "/golden";

// ---------------------------------------------------------------------------
// Suite-file parsing

TEST(SuiteParse, KitchenSink) {
  const std::string text =
      "# header comment\n"
      "suite everything\n"
      "\n"
      "case solve/basic\n"
      "model = file:models/a.atcd\n"
      "problem = dgc\n"
      "bound = 7.5\n"
      "engine = bilp\n"
      "expect_cost = 3\n"
      "expect_damage = 12\n"
      "expect_hash = 00ff00ff00ff00ff\n"
      "end\n"
      "\n"
      "case gen/tree\n"
      "model = gen:tree:42:40\n"
      "problem = cdpf\n"
      "expect_front = 0:0,1:200,3:210\n"
      "end\n"
      "\n"
      "case lit/block\n"
      "model = lit:kumar_fig1:9\n"
      "problem = cedpf\n"
      "expect_infeasible = true\n"
      "end\n"
      "\n"
      "case analysis/sweep\n"
      "model = gen:dag:1:20\n"
      "op = sweep\n"
      "problem = cdpf\n"
      "axis = cost:a:1:5:5\n"
      "axis = damage:b:1:4:2\n"
      "end\n"
      "\n"
      "case analysis/portfolio\n"
      "model = file:m.atcd\n"
      "op = portfolio\n"
      "problem = dgc\n"
      "bound = 3\n"
      "budget = 20\n"
      "defense = cams:10:x\n"
      "expect_error = invalid_argument\n"
      "end\n";
  Suite s;
  std::string error;
  ASSERT_TRUE(parse_suite(text, &s, &error)) << error;
  EXPECT_EQ(s.name, "everything");
  ASSERT_EQ(s.cases.size(), 5u);

  const Case& solve = s.cases[0];
  EXPECT_EQ(solve.name, "solve/basic");
  EXPECT_EQ(solve.op, CaseOp::Solve);
  EXPECT_EQ(solve.problem, engine::Problem::Dgc);
  EXPECT_EQ(solve.model.kind, ModelSpec::Kind::File);
  EXPECT_EQ(solve.model.path, "models/a.atcd");
  ASSERT_TRUE(solve.bound);
  EXPECT_DOUBLE_EQ(*solve.bound, 7.5);
  EXPECT_EQ(solve.engine, "bilp");
  ASSERT_TRUE(solve.expect.cost);
  EXPECT_DOUBLE_EQ(*solve.expect.cost, 3.0);
  ASSERT_TRUE(solve.expect.hash);
  EXPECT_EQ(hash_hex(*solve.expect.hash), "00ff00ff00ff00ff");

  const Case& gen = s.cases[1];
  EXPECT_EQ(gen.model.kind, ModelSpec::Kind::Gen);
  EXPECT_TRUE(gen.model.treelike);
  EXPECT_EQ(gen.model.seed, 42u);
  EXPECT_EQ(gen.model.size, 40u);
  ASSERT_TRUE(gen.expect.front);
  ASSERT_EQ(gen.expect.front->size(), 3u);
  EXPECT_DOUBLE_EQ((*gen.expect.front)[1].first, 1.0);
  EXPECT_DOUBLE_EQ((*gen.expect.front)[1].second, 200.0);

  const Case& lit = s.cases[2];
  EXPECT_EQ(lit.model.kind, ModelSpec::Kind::Lit);
  EXPECT_EQ(lit.model.block, "kumar_fig1");
  EXPECT_TRUE(lit.expect.infeasible);

  const Case& sweep = s.cases[3];
  EXPECT_EQ(sweep.op, CaseOp::Sweep);
  EXPECT_FALSE(sweep.model.treelike);
  ASSERT_EQ(sweep.axes.size(), 2u);
  EXPECT_EQ(sweep.axes[0], "cost:a:1:5:5");

  const Case& port = s.cases[4];
  EXPECT_EQ(port.op, CaseOp::Portfolio);
  ASSERT_TRUE(port.budget);
  ASSERT_EQ(port.defenses.size(), 1u);
  ASSERT_TRUE(port.expect.error);
  EXPECT_EQ(*port.expect.error, api::ErrorCode::InvalidArgument);
}

struct BadInput {
  const char* text;
  const char* needle;  ///< must appear in the error message
};

TEST(SuiteParse, MalformedInputsGetTypedErrors) {
  const BadInput kBad[] = {
      {"", "suite"},
      {"case x\nend\n", "suite"},
      {"suite s\ncase a\nmodel = file:m\nproblem = cdpf\n", "end"},
      {"suite s\nmodel = file:m\n", "expected"},
      {"suite s\ncase a\nbogus_key = 1\nend\n", "bogus_key"},
      {"suite s\ncase a\nmodel = telepathy:m\nend\n", "model"},
      {"suite s\ncase a\nmodel = gen:tree:nope:40\nend\n", "gen:"},
      {"suite s\ncase a\nmodel = file:m\nproblem = frisbee\nend\n",
       "unknown problem"},
      {"suite s\ncase a\nmodel = file:m\nbound = elephants\nend\n", "number"},
      {"suite s\ncase a\nmodel = file:m\nop = levitate\nend\n", "op"},
      {"suite s\ncase a\nmodel = file:m\nexpect_error = not_a_code\nend\n",
       "error code"},
      {"suite s\ncase a\nmodel = file:m\nexpect_hash = xyz\nend\n", "hash"},
      {"suite s\ncase a\nmodel = file:m\nexpect_front = 1-2\nend\n", "front"},
      // validation failures: inexpressible cases are parse errors too
      {"suite s\ncase a\nmodel = file:m\nproblem = dgc\nend\n", "bound"},
      {"suite s\ncase a\nmodel = file:m\nop = sweep\nproblem = cdpf\nend\n",
       "axis"},
      {"suite s\ncase a\nmodel = file:m\nop = portfolio\nproblem = dgc\n"
       "budget = 5\nend\n",
       "defense"},
      {"suite s\ncase a\nmodel = file:m\nop = sensitivity\nproblem = dgc\n"
       "bound = 2\nend\n",
       "sensitivity"},
  };
  for (const BadInput& b : kBad) {
    Suite s;
    std::string error;
    EXPECT_FALSE(parse_suite(b.text, &s, &error)) << b.text;
    EXPECT_NE(error.find(b.needle), std::string::npos)
        << "error for <" << b.text << "> was: " << error;
  }
}

TEST(SuiteParse, ErrorsAreLineNumbered) {
  Suite s;
  std::string error;
  ASSERT_FALSE(parse_suite("suite s\n\ncase a\nwat = 1\nend\n", &s, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
}

TEST(SuiteParse, NeverCrashesOnGarbage) {
  // Byte soup, truncation, and structural abuse: parse must return
  // false (or true) but never throw or crash.
  const char* kGarbage[] = {
      "\x01\x02\xff\xfe",
      "suite",
      "suite s\ncase\nend",
      "suite s\ncase a\nmodel =\nend\n",
      "suite s\ncase a\nmodel file:m\nend\n",
      "= = =\n",
      "suite s\ncase a\ncase b\nend\n",
      "end\nend\nend\n",
  };
  for (const char* g : kGarbage) {
    Suite s;
    std::string error;
    (void)parse_suite(g, &s, &error);
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Model materialization

TEST(SuiteModel, GoldenFileReads) {
  ModelSpec spec;
  spec.kind = ModelSpec::Kind::File;
  spec.path = "factory.atcd";
  std::string text, error;
  ASSERT_TRUE(materialize_model(spec, kGoldenDir, &text, &error)) << error;
  EXPECT_NE(text.find("root ps"), std::string::npos);
}

TEST(SuiteModel, MissingFileIsTypedError) {
  ModelSpec spec;
  spec.kind = ModelSpec::Kind::File;
  spec.path = "no_such_model.atcd";
  std::string text, error;
  EXPECT_FALSE(materialize_model(spec, kGoldenDir, &text, &error));
  EXPECT_NE(error.find("no_such_model.atcd"), std::string::npos) << error;
}

TEST(SuiteModel, GeneratorIsDeterministicPerSeed) {
  ModelSpec spec;
  spec.kind = ModelSpec::Kind::Gen;
  spec.treelike = true;
  spec.seed = 7;
  spec.size = 40;
  std::string a, b, error;
  ASSERT_TRUE(materialize_model(spec, ".", &a, &error)) << error;
  ASSERT_TRUE(materialize_model(spec, ".", &b, &error)) << error;
  EXPECT_EQ(a, b);  // suites replay: same seed must mean same model
  spec.seed = 8;
  std::string c;
  ASSERT_TRUE(materialize_model(spec, ".", &c, &error)) << error;
  EXPECT_NE(a, c);
}

TEST(SuiteModel, UnknownLiteratureBlockIsTypedError) {
  ModelSpec spec;
  spec.kind = ModelSpec::Kind::Lit;
  spec.block = "escher_fig1";
  spec.seed = 1;
  std::string text, error;
  EXPECT_FALSE(materialize_model(spec, ".", &text, &error));
  EXPECT_NE(error.find("escher_fig1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Drift detection and expectation checking

Suite one_case_suite() {
  Suite s;
  std::string error;
  const std::string text =
      "suite drift\n"
      "case factory/cdpf\n"
      "model = file:factory.atcd\n"
      "problem = cdpf\n"
      "end\n";
  EXPECT_TRUE(parse_suite(text, &s, &error)) << error;
  return s;
}

TEST(SuiteRunner, InjectedDriftFailsWithNameAndDiff) {
  const Suite s = one_case_suite();
  // A path that byte-corrupts the dispatcher's response: replace the
  // first '2' it finds (factory optima are all 2xx damages).
  Path corrupt = dispatcher_path();
  auto inner = corrupt.run;
  corrupt.name = "corrupted";
  corrupt.run = [inner](const Case& c, const api::Request& r,
                        const std::string& m) {
    PathOutcome out = inner(c, r, m);
    const std::size_t pos = out.response.find('2');
    if (pos != std::string::npos) out.response[pos] = '3';
    return out;
  };
  const SuiteReport report =
      run_suite(s, kGoldenDir, {dispatcher_path(), corrupt});
  EXPECT_EQ(report.failures, 1u);
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_FALSE(report.cases[0].ok);
  EXPECT_EQ(report.cases[0].name, "factory/cdpf");
  const std::string text = to_text(report);
  EXPECT_NE(text.find("factory/cdpf"), std::string::npos) << text;
  EXPECT_NE(text.find("DRIFT"), std::string::npos) << text;
  EXPECT_NE(text.find("first difference at byte"), std::string::npos) << text;
}

TEST(SuiteRunner, IdenticalPathsPass) {
  const Suite s = one_case_suite();
  const SuiteReport report =
      run_suite(s, kGoldenDir, {dispatcher_path(), dispatcher_path()});
  EXPECT_EQ(report.failures, 0u) << to_text(report);
}

TEST(SuiteRunner, WrongExpectationsFail) {
  Suite s;
  std::string error;
  ASSERT_TRUE(parse_suite("suite bad-pins\n"
                          "case factory/wrong-cost\n"
                          "model = file:factory.atcd\n"
                          "problem = dgc\n"
                          "bound = 4\n"
                          "expect_cost = 99\n"
                          "end\n"
                          "case factory/wrong-hash\n"
                          "model = file:factory.atcd\n"
                          "problem = cdpf\n"
                          "expect_hash = deadbeefdeadbeef\n"
                          "end\n",
                          &s, &error))
      << error;
  const SuiteReport report = run_suite(s, kGoldenDir, {dispatcher_path()});
  EXPECT_EQ(report.failures, 2u) << to_text(report);
  const std::string text = to_text(report);
  EXPECT_NE(text.find("expect_cost"), std::string::npos) << text;
  EXPECT_NE(text.find("deadbeefdeadbeef"), std::string::npos) << text;
}

TEST(SuiteRunner, CheckedInSuitesReplayCleanly) {
  // Every suites/*.suite file in the repo parses and passes through the
  // in-process dispatcher path (expectations + hash pins).  The CLI and
  // server paths are exercised by atcd_suite itself (CI nightly).
  const char* kSuites[] = {"golden.suite", "zoo.suite", "analysis.suite"};
  for (const char* name : kSuites) {
    Suite s;
    std::string error, base_dir;
    ASSERT_TRUE(
        load_suite_file(kSuitesDir + "/" + name, &s, &error, &base_dir))
        << name << ": " << error;
    EXPECT_FALSE(s.cases.empty()) << name;
    const SuiteReport report = run_suite(s, base_dir, {dispatcher_path()});
    EXPECT_EQ(report.failures, 0u) << name << ":\n" << to_text(report);
  }
}

TEST(SuiteHash, StableAndHexRoundTrips) {
  const std::uint64_t h = response_hash("{\"v\":1,\"code\":\"ok\"}");
  EXPECT_EQ(h, response_hash("{\"v\":1,\"code\":\"ok\"}"));
  EXPECT_NE(h, response_hash("{\"v\":1,\"code\":\"ok\" }"));
  EXPECT_EQ(hash_hex(h).size(), 16u);
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(hash_hex(response_hash("")), "cbf29ce484222325");
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

TEST(TraceExport, ValidatesAgainstChromeTraceEventSchema) {
  obs::Trace trace;
  {
    obs::TraceActivation active(&trace);
    obs::SpanScope outer("dispatch");
    { obs::SpanScope inner("solve.bottom_up"); }
    trace.fact("memo_hits", 42);
  }
  const std::string json = obs::chrome_trace_json(trace, "unit");

  api::json::Value doc;
  std::string error;
  ASSERT_TRUE(api::json::parse(json, &doc, &error)) << error << "\n" << json;
  ASSERT_EQ(doc.kind, api::json::Value::Kind::Object);
  const api::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, api::json::Value::Kind::Array);
  // Metadata event + one X event per span.
  ASSERT_EQ(events->items.size(), 3u);

  const api::json::Value& meta = events->items[0];
  ASSERT_NE(meta.find("ph"), nullptr);
  EXPECT_EQ(meta.find("ph")->string, "M");
  EXPECT_EQ(meta.find("name")->string, "process_name");

  bool saw_outer = false, saw_inner = false;
  for (std::size_t i = 1; i < events->items.size(); ++i) {
    const api::json::Value& ev = events->items[i];
    // The trace-event schema: every complete event carries these.
    for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid", "cat"})
      ASSERT_NE(ev.find(key), nullptr) << key;
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_EQ(ev.find("pid")->number, 1.0);
    EXPECT_EQ(ev.find("tid")->number, 1.0);
    EXPECT_GE(ev.find("dur")->number, 0.0);
    if (ev.find("name")->string == "dispatch") {
      saw_outer = true;
      // Facts ride as args on the outermost span.
      const api::json::Value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("memo_hits"), nullptr);
      EXPECT_EQ(args->find("memo_hits")->number, 42.0);
    }
    if (ev.find("name")->string == "solve.bottom_up") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(TraceExport, NeutralSpansAndEscaping) {
  std::vector<obs::ExportSpan> spans;
  spans.push_back({"quote\"back\\slash", 0, 0, 10});
  const std::string json = obs::chrome_trace_json(spans, {}, "l\"bl");
  api::json::Value doc;
  std::string error;
  ASSERT_TRUE(api::json::parse(json, &doc, &error)) << error << "\n" << json;
  const api::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items[1].find("name")->string, "quote\"back\\slash");
}

// ---------------------------------------------------------------------------
// Perf trajectory

const char* kBenchA =
    "{\"bench\": \"alpha\", \"rows\": ["
    "{\"name\": \"r1\", \"p50_us\": 100, \"speedup\": 2.0, \"rows\": 7},"
    "{\"name\": \"r2\", \"p50_us\": 5, \"overhead\": 0.02, \"nan_metric\": "
    "null}]}";
const char* kBenchB =
    "{\"bench\": \"beta\", \"rows\": ["
    "{\"name\": \"r1\", \"rps\": 1000, \"pipe_over_socket\": 2.5}]}";

TEST(Trajectory, ParseBenchReport) {
  TrajectoryArea area;
  std::string error;
  ASSERT_TRUE(parse_bench_report(kBenchA, &area, &error)) << error;
  EXPECT_EQ(area.bench, "alpha");
  ASSERT_EQ(area.rows.size(), 2u);
  const TrajectoryRow* r1 = area.find("r1");
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r1->find("p50_us"), nullptr);
  EXPECT_DOUBLE_EQ(*r1->find("p50_us"), 100.0);
  // null (non-finite) metrics are dropped, not zeroed
  const TrajectoryRow* r2 = area.find("r2");
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->find("nan_metric"), nullptr);

  EXPECT_FALSE(parse_bench_report("{\"rows\": []}", &area, &error));
  EXPECT_FALSE(parse_bench_report("not json", &area, &error));
}

Trajectory make_trajectory() {
  TrajectoryArea a, b;
  std::string error;
  EXPECT_TRUE(parse_bench_report(kBenchA, &a, &error)) << error;
  EXPECT_TRUE(parse_bench_report(kBenchB, &b, &error)) << error;
  Trajectory t;
  EXPECT_TRUE(merge_trajectory({b, a}, &t, &error)) << error;  // unsorted in
  return t;
}

TEST(Trajectory, MergeSortsAndRejectsDuplicates) {
  const Trajectory t = make_trajectory();
  ASSERT_EQ(t.areas.size(), 2u);
  EXPECT_EQ(t.areas[0].bench, "alpha");  // sorted on merge
  EXPECT_EQ(t.areas[1].bench, "beta");

  TrajectoryArea a;
  std::string error;
  ASSERT_TRUE(parse_bench_report(kBenchA, &a, &error));
  Trajectory dup;
  EXPECT_FALSE(merge_trajectory({a, a}, &dup, &error));
  EXPECT_NE(error.find("alpha"), std::string::npos) << error;
}

TEST(Trajectory, DumpParseRoundTrip) {
  const Trajectory t = make_trajectory();
  const std::string json = dump_trajectory(t);
  EXPECT_NE(json.find("\"trajectory_version\""), std::string::npos);
  Trajectory back;
  std::string error;
  ASSERT_TRUE(parse_trajectory(json, &back, &error)) << error;
  EXPECT_EQ(dump_trajectory(back), json);  // byte-stable round trip
  ASSERT_EQ(back.areas.size(), 2u);
  const TrajectoryArea* alpha = back.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_DOUBLE_EQ(*alpha->find("r1")->find("speedup"), 2.0);
}

TEST(Trajectory, ClassifyMetric) {
  EXPECT_EQ(classify_metric("p99_us"), MetricKind::LowerBetter);
  EXPECT_EQ(classify_metric("total_s"), MetricKind::LowerBetter);
  EXPECT_EQ(classify_metric("overhead"), MetricKind::LowerBetter);
  EXPECT_EQ(classify_metric("pipe_over_socket"), MetricKind::LowerBetter);
  EXPECT_EQ(classify_metric("speedup"), MetricKind::HigherBetter);
  EXPECT_EQ(classify_metric("rps"), MetricKind::HigherBetter);
  EXPECT_EQ(classify_metric("req_s_on"), MetricKind::HigherBetter);
  EXPECT_EQ(classify_metric("rows"), MetricKind::Informational);
  EXPECT_EQ(classify_metric("bas_count"), MetricKind::Informational);

  EXPECT_TRUE(is_ratio_metric("speedup"));
  EXPECT_TRUE(is_ratio_metric("overhead"));
  EXPECT_TRUE(is_ratio_metric("pipe_over_socket"));
  EXPECT_FALSE(is_ratio_metric("p50_us"));
  EXPECT_FALSE(is_ratio_metric("rps"));
}

Trajectory with_metric(const std::string& bench, const std::string& row,
                       const std::string& key, double value) {
  Trajectory t = make_trajectory();
  for (TrajectoryArea& a : t.areas)
    if (a.bench == bench)
      for (TrajectoryRow& r : a.rows)
        if (r.name == row)
          for (auto& kv : r.metrics)
            if (kv.first == key) kv.second = value;
  return t;
}

TEST(Trajectory, CompareGatesRatiosAndSkipsNoise) {
  const Trajectory base = make_trajectory();
  CompareOptions opt;  // Ratios mode, threshold 0.5

  // No change: no regressions.
  EXPECT_TRUE(compare_trajectories(base, base, opt).empty());

  // speedup 2.0 -> 0.5 on a gated ratio metric: worsening is measured
  // as before/after - 1 (how many times worse), here 3x.
  auto regs =
      compare_trajectories(base, with_metric("alpha", "r1", "speedup", 0.5),
                           opt);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].area, "alpha");
  EXPECT_EQ(regs[0].row, "r1");
  EXPECT_EQ(regs[0].metric, "speedup");
  EXPECT_NEAR(regs[0].relative_change, 3.0, 1e-9);
  EXPECT_NE(to_text(regs).find("alpha"), std::string::npos);

  // p50_us 100 -> 10000: absolute latencies are NOT gated in Ratios
  // mode (machine-dependent), but ARE in All mode.
  const Trajectory slow = with_metric("alpha", "r1", "p50_us", 10000.0);
  EXPECT_TRUE(compare_trajectories(base, slow, opt).empty());
  CompareOptions all = opt;
  all.gate = GateMode::All;
  EXPECT_EQ(compare_trajectories(base, slow, all).size(), 1u);

  // r2's p50_us is 5us — below the 50us noise floor, never gated even
  // in All mode and even when it grows 5x.
  const Trajectory noisy = with_metric("alpha", "r2", "p50_us", 25.0);
  EXPECT_TRUE(compare_trajectories(base, noisy, all).empty());

  // Improvements never regress: overhead shrinking is fine.
  const Trajectory better =
      with_metric("alpha", "r2", "overhead", 0.001);
  EXPECT_TRUE(compare_trajectories(base, better, opt).empty());
}

TEST(Trajectory, SubFloorRowsDontGateTheirRatios) {
  // A row whose own p50_us is below the noise floor on both sides is a
  // micro-measurement: its speedup flipping is noise, not a regression.
  const char* micro =
      "{\"bench\": \"micro\", \"rows\": ["
      "{\"name\": \"tiny\", \"p50_us\": 17, \"speedup\": 2.5},"
      "{\"name\": \"big\", \"p50_us\": 5000, \"speedup\": 2.5}]}";
  TrajectoryArea area;
  std::string error;
  ASSERT_TRUE(parse_bench_report(micro, &area, &error)) << error;
  Trajectory base;
  ASSERT_TRUE(merge_trajectory({area}, &base, &error)) << error;

  Trajectory cur = base;
  for (TrajectoryRow& r : cur.areas[0].rows)
    for (auto& kv : r.metrics)
      if (kv.first == "speedup") kv.second = 0.4;  // collapse both

  const auto regs = compare_trajectories(base, cur, CompareOptions{});
  ASSERT_EQ(regs.size(), 1u) << to_text(regs);
  EXPECT_EQ(regs[0].row, "big");  // only the above-floor row gates
}

TEST(Trajectory, MissingAreaIsCoverageRegression) {
  const Trajectory base = make_trajectory();
  Trajectory current = base;
  current.areas.erase(current.areas.begin());  // drop "alpha"
  const auto regs = compare_trajectories(base, current, CompareOptions{});
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs[0].area, "alpha");
  EXPECT_TRUE(std::isnan(regs[0].after));
}

}  // namespace
}  // namespace atcd
