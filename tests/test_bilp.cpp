#include "ilp/bilp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace atcd::ilp {
namespace {

TEST(DetectGrid, FindsDecimalGrids) {
  EXPECT_EQ(detect_grid({1, 2, 30}), 1.0);
  EXPECT_EQ(detect_grid({0.5, 1.5}), 0.1);
  EXPECT_EQ(detect_grid({10.8, 5.0, 7.0, 13.5}), 0.1);
  EXPECT_EQ(detect_grid({0.25}), 0.01);
  EXPECT_EQ(detect_grid({}), 1.0);
  EXPECT_FALSE(detect_grid({1.0 / 3.0}).has_value());
}

/// Builds a random biobjective binary program and computes its
/// nondominated set by brute force.
struct BiCase {
  BiObjectiveProgram bp;
  std::vector<std::pair<double, double>> expect;  // sorted by f2
};

BiCase random_bicase(Rng& rng, int n_vars, int n_rows) {
  BiCase bc;
  std::vector<double> f1(n_vars), f2(n_vars);
  for (int j = 0; j < n_vars; ++j) {
    // f1: signed (damage-like when negative); f2: nonnegative cost-like.
    f1[j] = static_cast<double>(rng.range(-9, 3));
    f2[j] = static_cast<double>(rng.range(0, 9));
    bc.bp.base.add_var(0, 1, 0.0);
    bc.bp.integer_vars.push_back(j);
  }
  bc.bp.obj1 = f1;
  bc.bp.obj2 = f2;
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int i = 0; i < n_rows; ++i) {
    std::vector<double> row(n_vars);
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n_vars; ++j) {
      row[j] = static_cast<double>(rng.range(-2, 4));
      terms.emplace_back(j, row[j]);
    }
    const double b = static_cast<double>(rng.range(1, 10));
    bc.bp.base.add_row(terms, lp::Sense::LE, b);
    rows.push_back(row);
    rhs.push_back(b);
  }
  // Brute-force nondominated set.
  std::vector<std::pair<double, double>> points;
  for (int mask = 0; mask < (1 << n_vars); ++mask) {
    bool ok = true;
    for (std::size_t i = 0; i < rows.size() && ok; ++i) {
      double lhs = 0;
      for (int j = 0; j < n_vars; ++j)
        if (mask >> j & 1) lhs += rows[i][j];
      ok = lhs <= rhs[i] + 1e-12;
    }
    if (!ok) continue;
    double v1 = 0, v2 = 0;
    for (int j = 0; j < n_vars; ++j)
      if (mask >> j & 1) {
        v1 += f1[j];
        v2 += f2[j];
      }
    points.emplace_back(v1, v2);
  }
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (q.first <= p.first && q.second <= p.second && q != p) {
        dominated = true;
        break;
      }
    }
    if (!dominated) bc.expect.push_back(p);
  }
  std::sort(bc.expect.begin(), bc.expect.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  bc.expect.erase(std::unique(bc.expect.begin(), bc.expect.end()),
                  bc.expect.end());
  return bc;
}

class RandomBilp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBilp, NondominatedSetMatchesBruteForce) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 6; ++rep) {
    const auto bc = random_bicase(rng, 7, 3);
    const auto nd = nondominated_set(bc.bp);
    ASSERT_EQ(nd.size(), bc.expect.size()) << "rep " << rep;
    for (std::size_t i = 0; i < nd.size(); ++i) {
      EXPECT_NEAR(nd[i].f1, bc.expect[i].first, 1e-7) << "rep " << rep;
      EXPECT_NEAR(nd[i].f2, bc.expect[i].second, 1e-7) << "rep " << rep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBilp,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Bilp, LexMinOrdersObjectivesCorrectly) {
  // Feasible points (f1, f2): (0,0), (-5,4), (-5,2), (-9,9).
  // lex_min(f1 first) must return (-9,9); lex_min(f2 first) -> (0,0).
  BiObjectiveProgram bp;
  const int a = bp.base.add_var(0, 1, 0);  // f1 -5, f2 2
  const int b = bp.base.add_var(0, 1, 0);  // f1 -4, f2 7
  bp.integer_vars = {a, b};
  bp.obj1 = {-5, -4};
  bp.obj2 = {2, 7};
  const auto p1 = lex_min(bp, true);
  ASSERT_TRUE(p1.has_value());
  EXPECT_NEAR(p1->f1, -9, 1e-9);
  EXPECT_NEAR(p1->f2, 9, 1e-9);
  const auto p2 = lex_min(bp, false);
  ASSERT_TRUE(p2.has_value());
  EXPECT_NEAR(p2->f2, 0, 1e-9);
  EXPECT_NEAR(p2->f1, 0, 1e-9);
}

TEST(Bilp, LexMinTieBreaksOnSecondObjective) {
  // Two solutions with equal f1 = -5: f2 = 2 (a) and f2 = 7 (c).  The
  // lexicographic refinement must pick f2 = 2.
  BiObjectiveProgram bp;
  const int a = bp.base.add_var(0, 1, 0);
  const int c = bp.base.add_var(0, 1, 0);
  bp.base.add_row({{a, 1}, {c, 1}}, lp::Sense::LE, 1);  // at most one
  bp.integer_vars = {a, c};
  bp.obj1 = {-5, -5};
  bp.obj2 = {2, 7};
  const auto p = lex_min(bp, true);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->f1, -5, 1e-9);
  EXPECT_NEAR(p->f2, 2, 1e-9);
}

TEST(Bilp, InfeasibleRegionYieldsNullopt) {
  BiObjectiveProgram bp;
  const int x = bp.base.add_var(0, 1, 0);
  bp.base.add_row({{x, 2}}, lp::Sense::GE, 3);
  bp.integer_vars = {x};
  bp.obj1 = {1};
  bp.obj2 = {1};
  EXPECT_FALSE(lex_min(bp, true).has_value());
  EXPECT_TRUE(nondominated_set(bp).empty());
}

TEST(Bilp, StatsAreAccumulated) {
  BiObjectiveProgram bp;
  bp.base.add_var(0, 1, 0);
  bp.integer_vars = {0};
  bp.obj1 = {-1};
  bp.obj2 = {1};
  BilpStats stats;
  const auto nd = nondominated_set(bp, 0.0, &stats);
  EXPECT_EQ(nd.size(), 2u);  // (0,0) and (-1,1)
  EXPECT_GE(stats.ilp_solves, 4u);
}

TEST(Bilp, ExplicitEpsilonOverridesGridDetection) {
  BiObjectiveProgram bp;
  bp.base.add_var(0, 1, 0);
  bp.integer_vars = {0};
  bp.obj1 = {-1};
  bp.obj2 = {1.0 / 3.0};  // not on a decimal grid
  EXPECT_THROW(nondominated_set(bp), SolverError);
  const auto nd = nondominated_set(bp, 0.1);
  EXPECT_EQ(nd.size(), 2u);
}

}  // namespace
}  // namespace atcd::ilp
