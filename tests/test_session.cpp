/// Tests for service/session.hpp: edit semantics, the incremental
/// re-solve fast path, the incremental-vs-scratch equivalence property
/// over random edit scripts, and session concurrency (run under tsan in
/// CI).

#include "service/session.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "helpers.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

using engine::Problem;
using service::Response;
using service::Session;
using service::SessionManager;
using service::SubtreeCache;
using testing::fronts_equal;

constexpr const char* kModel =
    "bas pick cost=1 damage=2 prob=0.5\n"
    "bas drill cost=4 damage=1 prob=0.9\n"
    "bas phish cost=2 damage=0 prob=0.6\n"
    "and break = pick, drill damage=3\n"
    "or open = break, phish damage=10\n";

Session::Options opts(Problem p, double bound = 0.0) {
  Session::Options o;
  o.problem = p;
  o.bound = bound;
  return o;
}

/// Scratch solve of the session's current effective model.
engine::SolveResult scratch(Session& s) {
  engine::Instance in;
  in.problem = s.problem();
  const auto det = s.snapshot_det();
  const auto prob = s.snapshot_prob();
  in.det = det.get();
  in.prob = prob.get();
  in.bound = 0.0;
  return engine::solve_one(in);
}

TEST(Session, ResolveMatchesScratchAndEditsTakeEffect) {
  Session s(kModel, opts(Problem::Cdpf));
  const Response r1 = s.resolve();
  ASSERT_TRUE(r1.result.ok) << r1.result.error;
  EXPECT_TRUE(fronts_equal(r1.result.front, scratch(s).front));

  ASSERT_EQ(s.set_cost("pick", 6.0), "");
  const Response r2 = s.resolve();
  ASSERT_TRUE(r2.result.ok) << r2.result.error;
  EXPECT_TRUE(fronts_equal(r2.result.front, scratch(s).front));
  EXPECT_FALSE(r1.result.front.same_values(r2.result.front));
  EXPECT_EQ(s.edit_count(), 1u);
  EXPECT_EQ(s.resolve_count(), 2u);
}

TEST(Session, SnapshotsOffReturnsNoModelButSameResults) {
  Session with(kModel, opts(Problem::Cdpf));
  Session::Options o = opts(Problem::Cdpf);
  o.snapshots = false;
  Session without(kModel, o);

  const Response r1 = without.resolve();
  ASSERT_TRUE(r1.result.ok) << r1.result.error;
  EXPECT_EQ(r1.det, nullptr);
  EXPECT_EQ(r1.prob, nullptr);
  EXPECT_TRUE(fronts_equal(r1.result.front, with.resolve().result.front));

  // Edit-resolve loops behave identically; only the snapshot is absent.
  ASSERT_EQ(with.set_cost("pick", 6.0), "");
  ASSERT_EQ(without.set_cost("pick", 6.0), "");
  const Response r2 = without.resolve();
  ASSERT_TRUE(r2.result.ok) << r2.result.error;
  EXPECT_EQ(r2.det, nullptr);
  EXPECT_TRUE(fronts_equal(r2.result.front, with.resolve().result.front));
  EXPECT_EQ(r2.model_hash, with.resolve().model_hash);

  // snapshot_det() still works on demand — only responses skip it.
  EXPECT_NE(without.snapshot_det(), nullptr);
}

TEST(Session, EditErrorsLeaveTheSessionUntouched) {
  Session s(kModel, opts(Problem::Cdpf));
  const Response before = s.resolve();
  EXPECT_NE(s.set_cost("nope", 1.0), "");
  EXPECT_NE(s.set_cost("break", 1.0), "");   // a gate, not a BAS
  EXPECT_NE(s.set_cost("pick", -1.0), "");
  EXPECT_NE(s.set_prob("pick", 0.5), "");    // det session
  EXPECT_NE(s.set_damage("open", -2.0), "");
  EXPECT_NE(s.replace_subtree("nope", "bas z cost=1\n"), "");
  EXPECT_EQ(s.edit_count(), 0u);
  const Response after = s.resolve();
  EXPECT_TRUE(fronts_equal(before.result.front, after.result.front));
}

TEST(Session, ToggleDefenseHardensAndRestores) {
  Session s(kModel, opts(Problem::Cdpf));
  const Response base = s.resolve();
  ASSERT_EQ(s.toggle_defense("phish"), "");
  const Response hardened = s.resolve();
  ASSERT_TRUE(hardened.result.ok) << hardened.result.error;
  // phish got expensive: the cheap phish-only point is gone.
  EXPECT_FALSE(base.result.front.same_values(hardened.result.front));
  EXPECT_TRUE(fronts_equal(hardened.result.front, scratch(s).front));
  ASSERT_EQ(s.toggle_defense("phish"), "");
  const Response restored = s.resolve();
  EXPECT_TRUE(fronts_equal(base.result.front, restored.result.front));
}

TEST(Session, ReplaceSubtreeRewiresTheModel) {
  Session s(kModel, opts(Problem::Cdpf));
  ASSERT_TRUE(s.resolve().result.ok);
  // Swap the AND(pick, drill) component for a single cheap leaf.
  ASSERT_EQ(s.replace_subtree("break", "bas jimmy cost=1 damage=7\n"), "");
  const Response r = s.resolve();
  ASSERT_TRUE(r.result.ok) << r.result.error;
  const auto det = s.snapshot_det();
  EXPECT_TRUE(det->tree.find("jimmy").has_value());
  EXPECT_FALSE(det->tree.find("break").has_value());
  EXPECT_FALSE(det->tree.find("pick").has_value());
  EXPECT_TRUE(fronts_equal(r.result.front, scratch(s).front));
}

TEST(Session, ReplaceSubtreeAtTheRootSwapsTheWholeModel) {
  Session s(kModel, opts(Problem::Cdpf));
  ASSERT_EQ(s.replace_subtree("open", "bas solo cost=3 damage=4\n"), "");
  const Response r = s.resolve();
  ASSERT_TRUE(r.result.ok) << r.result.error;
  ASSERT_EQ(r.result.front.size(), 2u);  // {} and {solo}
  EXPECT_DOUBLE_EQ(r.result.front[1].value.cost, 3.0);
  EXPECT_DOUBLE_EQ(r.result.front[1].value.damage, 4.0);
}

TEST(Session, ReplaceSubtreeRejectsNameCollisions) {
  Session s(kModel, opts(Problem::Cdpf));
  EXPECT_NE(s.replace_subtree("break", "bas phish cost=1\n"), "");
}

TEST(Session, IncrementalResolveReusesUneditedSubtrees) {
  Session s(kModel, opts(Problem::Cdpf));
  ASSERT_TRUE(s.resolve().result.ok);
  const auto cold = s.memo_stats();
  EXPECT_GT(cold.stores, 0u);
  // Editing phish dirties only the root path (open): the break subtree
  // comes back from the memo.
  ASSERT_EQ(s.set_cost("phish", 5.0), "");
  ASSERT_TRUE(s.resolve().result.ok);
  const auto warm = s.memo_stats();
  EXPECT_GT(warm.hits, cold.hits);
}

TEST(Session, SharedCacheCrossesSessions) {
  SubtreeCache shared;
  Session::Options o = opts(Problem::Cdpf);
  o.shared = &shared;
  Session s1(kModel, o);
  ASSERT_TRUE(s1.resolve().result.ok);
  const auto after_first = shared.stats();
  EXPECT_GT(after_first.insertions, 0u);
  // A second session over the same model reuses the first one's fronts
  // through the shared layer.
  Session s2(kModel, o);
  ASSERT_TRUE(s2.resolve().result.ok);
  EXPECT_GT(shared.stats().hits, after_first.hits);
}

TEST(Session, ProbabilisticSessionsWork) {
  Session s(kModel, opts(Problem::Cedpf));
  const Response r1 = s.resolve();
  ASSERT_TRUE(r1.result.ok) << r1.result.error;
  ASSERT_EQ(s.set_prob("pick", 1.0), "");
  const Response r2 = s.resolve();
  ASSERT_TRUE(r2.result.ok) << r2.result.error;
  engine::Instance in;
  in.problem = Problem::Cedpf;
  const auto snap = s.snapshot_prob();
  in.prob = snap.get();
  const auto fresh = engine::solve_one(in);
  EXPECT_TRUE(fronts_equal(r2.result.front, fresh.front));
}

TEST(Session, DagModelsFallBackToFullSolves) {
  // A DAG-shaped model: sessions still work, the planner routes around
  // the incremental backend (bilp for det DAGs), the memo stays cold.
  Rng rng(5);
  const CdAt dag = testing::random_cdat(rng, 7, /*treelike=*/false);
  ASSERT_FALSE(dag.tree.is_treelike());
  Session s(dag, opts(Problem::Cdpf));
  const Response r = s.resolve();
  ASSERT_TRUE(r.result.ok) << r.result.error;
  EXPECT_EQ(r.result.backend, "bilp");
  EXPECT_EQ(s.memo_stats().stores, 0u);
  ASSERT_EQ(s.set_damage(dag.tree.name(dag.tree.root()), 3.0), "");
  EXPECT_TRUE(s.resolve().result.ok);
}

TEST(Session, DagResolvePopulatesSharedCacheForTreelikePortions) {
  // A DAG whose shared gate sits beside an exclusively-owned treelike
  // portion (sub = AND(a, b)): the full-solve fallback must still sweep
  // that portion into the shared cache, so treelike models containing
  // an isomorphic subtree reuse it.
  const char* dag_model =
      "bas a cost=1 damage=2\n"
      "bas b cost=4 damage=1\n"
      "bas s cost=2 damage=3\n"
      "and sub = a, b damage=5\n"
      "or g1 = sub, s damage=1\n"
      "and g2 = g1, s damage=2\n"  // s shared: g1 and g2 -> DAG
      "or top = g1, g2 damage=10\n";
  SubtreeCache shared;
  Session::Options o = opts(Problem::Cdpf);
  o.shared = &shared;
  Session s(dag_model, o);
  ASSERT_FALSE(s.snapshot_det()->tree.is_treelike());
  ASSERT_TRUE(s.resolve().result.ok);
  const auto cold = shared.stats();
  EXPECT_GT(cold.insertions, 0u);

  // Warm resolves skip the portion sweep via the root-front lookup, so
  // the cache gains no new entries.
  ASSERT_TRUE(s.resolve().result.ok);
  EXPECT_EQ(shared.stats().insertions, cold.insertions);

  // A *treelike* one-shot solve containing the isomorphic portion
  // (renamed, children permuted) hits the session-populated entries.
  const ParsedModel host = parse_model(
      "bas y cost=4 damage=1\n"
      "bas x cost=1 damage=2\n"
      "bas z cost=7 damage=0\n"
      "and mirror = y, x damage=5\n"
      "or root = mirror, z damage=3\n");
  const CdAt host_model{host.tree, host.cost, host.damage};
  engine::BatchOptions bopt;
  bopt.subtree = &shared;
  const auto r = engine::solve_one(
      engine::Instance::of(Problem::Cdpf, host_model), bopt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(shared.stats().hits, cold.hits);

  // And the fronts stay correct: the cached-portion solve equals a
  // cacheless scratch solve.
  const auto scratch_r =
      engine::solve_one(engine::Instance::of(Problem::Cdpf, host_model));
  ASSERT_TRUE(scratch_r.ok);
  EXPECT_TRUE(fronts_equal(r.front, scratch_r.front));
}

// ---------------------------------------------------------------------------
// Incremental-vs-scratch equivalence: random edit scripts over random
// models; after every edit the session's re-solve must equal a fresh
// solve_one of the session's current effective model.  Seed count scales
// with ATCD_FUZZ_ITERS (default 12; CI's nightly fuzz-smoke runs 200).
// ---------------------------------------------------------------------------

std::size_t equivalence_seeds() {
  if (const char* env = std::getenv("ATCD_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 12;
}

std::string random_leaf_model(Rng& rng, int tag) {
  std::ostringstream out;
  out << "bas n" << tag << "_a cost=" << rng.range(1, 9)
      << " damage=" << rng.range(0, 9) << " prob=0." << rng.range(1, 9)
      << "\n";
  if (rng.chance(0.5)) {
    out << "bas n" << tag << "_b cost=" << rng.range(1, 9)
        << " damage=" << rng.range(0, 9) << " prob=0." << rng.range(1, 9)
        << "\n"
        << (rng.chance(0.5) ? "and" : "or") << " n" << tag << "_g = n" << tag
        << "_a, n" << tag << "_b damage=" << rng.range(0, 5) << "\n";
  }
  return out.str();
}

void apply_random_edit(Session& s, const AttackTree& tree, Rng& rng,
                       int tag) {
  const auto random_bas = [&] {
    return tree.name(tree.bas_id(
        static_cast<std::uint32_t>(rng.below(tree.bas_count()))));
  };
  switch (rng.below(s.probabilistic() ? 5 : 4)) {
    case 0:
      ASSERT_EQ(s.set_cost(random_bas(), double(rng.range(0, 12))), "");
      break;
    case 1:
      ASSERT_EQ(s.set_damage(tree.name(static_cast<NodeId>(
                                 rng.below(tree.node_count()))),
                             double(rng.range(0, 12))),
                "");
      break;
    case 2:
      ASSERT_EQ(s.toggle_defense(random_bas()), "");
      break;
    case 3: {
      // Replace a random node's subtree with a fresh 1-3 node model.  On
      // DAG models the picked subtree may be shared with the outside —
      // that rejection is the only acceptable failure.
      const NodeId target = static_cast<NodeId>(rng.below(tree.node_count()));
      const std::string err =
          s.replace_subtree(tree.name(target), random_leaf_model(rng, tag));
      if (!err.empty())
        ASSERT_NE(err.find("shared"), std::string::npos) << err;
      break;
    }
    default:
      ASSERT_EQ(s.set_prob(random_bas(), rng.below(11) / 10.0), "");
      break;
  }
}

void check_equal(const Response& inc, const engine::SolveResult& ref,
                 Problem p, const std::string& context) {
  ASSERT_EQ(inc.result.ok, ref.ok)
      << context << "\nsession: " << inc.result.error
      << "\nscratch: " << ref.error;
  if (!ref.ok) return;
  if (engine::is_front(p)) {
    EXPECT_TRUE(fronts_equal(inc.result.front, ref.front)) << context;
  } else {
    ASSERT_EQ(inc.result.attack.feasible, ref.attack.feasible) << context;
    if (ref.attack.feasible) {
      EXPECT_NEAR(inc.result.attack.cost, ref.attack.cost, 1e-9) << context;
      EXPECT_NEAR(inc.result.attack.damage, ref.attack.damage, 1e-9)
          << context;
    }
  }
}

TEST(Session, IncrementalEqualsScratchOverRandomEditScripts) {
  SubtreeCache shared;
  int tag = 0;
  const std::uint64_t seeds = equivalence_seeds();
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    Rng rng(1000 + seed);
    const bool treelike = seed % 3 != 2;  // every third model is a DAG
    const Problem p = static_cast<Problem>(rng.below(6));
    const bool probabilistic = engine::is_probabilistic(p);
    const double bound = engine::is_front(p) ? 0.0 : rng.uniform(0.0, 25.0);
    // Probabilistic DAGs route to the BDD engine; keep them small.
    const std::size_t n_bas = probabilistic && !treelike ? 6 : 8;
    const CdpAt base = testing::random_cdpat(rng, n_bas, treelike);

    Session::Options o = opts(p, bound);
    o.shared = &shared;
    auto session = probabilistic
                       ? std::make_unique<Session>(base, o)
                       : std::make_unique<Session>(base.deterministic(), o);

    for (int step = 0; step < 6; ++step) {
      const std::string context = "seed=" + std::to_string(seed) +
                                  " step=" + std::to_string(step) +
                                  " problem=" + engine::to_string(p);
      const Response inc = session->resolve();
      engine::Instance in;
      in.problem = p;
      const auto det = session->snapshot_det();
      const auto prob = session->snapshot_prob();
      in.det = det.get();
      in.prob = prob.get();
      in.bound = bound;
      check_equal(inc, engine::solve_one(in), p, context);
      const AttackTree& tree = det ? det->tree : prob->tree;
      apply_random_edit(*session, tree, rng, ++tag);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under tsan in CI): concurrent edits and
// resolves on one session, and concurrent sessions over one shared
// subtree cache.
// ---------------------------------------------------------------------------

TEST(Session, ConcurrentEditsAndResolvesAreSafe) {
  SubtreeCache shared;
  Session::Options o = opts(Problem::Cdpf);
  o.shared = &shared;
  Session s(kModel, o);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < 25; ++i) {
        if (t % 2 == 0) {
          ASSERT_EQ(s.set_cost(i % 2 ? "pick" : "drill",
                               double(1 + (t + i) % 7)),
                    "");
        }
        const Response r = s.resolve();
        ASSERT_TRUE(r.result.ok) << r.result.error;
        // The response snapshot is immutable: its front matches a
        // scratch solve of that same snapshot even while other threads
        // keep editing.
        engine::Instance in;
        in.problem = Problem::Cdpf;
        in.det = r.det.get();
        const auto ref = engine::solve_one(in);
        ASSERT_TRUE(ref.ok);
        ASSERT_TRUE(fronts_equal(r.result.front, ref.front));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(s.resolve_count(), 100u);
}

TEST(Session, ConcurrentSessionsShareTheSubtreeCacheSafely) {
  SubtreeCache shared;
  SessionManager mgr;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    Session::Options o = opts(Problem::Cdpf);
    o.shared = &shared;
    ids.push_back(mgr.open(std::make_unique<Session>(kModel, o)));
  }
  std::vector<std::thread> threads;
  for (const std::uint64_t id : ids) {
    threads.emplace_back([&mgr, id] {
      const auto s = mgr.find(id);
      ASSERT_NE(s, nullptr);
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(s->set_cost("phish", double(1 + i % 5)), "");
        ASSERT_TRUE(s->resolve().result.ok);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::uint64_t id : ids) EXPECT_TRUE(mgr.close(id));
  EXPECT_EQ(mgr.size(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol: open / edit / resolve / close round trip.
// ---------------------------------------------------------------------------

TEST(Session, ProtocolSessionRoundTrip) {
  service::SolveService svc;
  std::istringstream in(
      "open cdpf\n" +
      std::string(kModel) +
      "end\n"
      "resolve 1\n"
      "edit 1 set-cost pick 6\n"
      "resolve 1\n"
      "edit 1 replace-subtree break\n"
      "bas jimmy cost=1 damage=7\n"
      "end\n"
      "resolve 1\n"
      "edit 1 toggle-defense jimmy\n"
      "resolve 1\n"
      "stats\n"
      "edit 99 set-cost pick 1\n"   // unknown session
      "edit 1 set-cost nope 1\n"    // unknown BAS
      "edit replace-subtree open\n" // missing sid: block must be consumed
      "bas stray cost=1\n"
      "end\n"
      "close 1\n"
      "resolve 1\n"                 // closed
      "quit\n");
  std::ostringstream out;
  const std::size_t handled = service::serve(in, out, svc);
  EXPECT_EQ(handled, 4u);  // four resolves counted
  const std::string o = out.str();
  EXPECT_NE(o.find("session=1\n"), std::string::npos);
  EXPECT_NE(o.find("kind=front"), std::string::npos);
  EXPECT_NE(o.find("subtree_hits="), std::string::npos);
  EXPECT_NE(o.find("sessions=1\n"), std::string::npos);
  EXPECT_NE(o.find("error=no session 99"), std::string::npos);
  EXPECT_NE(o.find("error=set-cost: no BAS named 'nope'"), std::string::npos);
  EXPECT_NE(o.find("error=no session 1"), std::string::npos);
  // The malformed edit's model block was consumed, not re-parsed as
  // commands — the stream never desyncs.
  EXPECT_EQ(o.find("unknown command"), std::string::npos) << o;
}

}  // namespace
}  // namespace atcd
