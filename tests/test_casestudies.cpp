#include <gtest/gtest.h>

#include <algorithm>

#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "casestudies/panda.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "core/bilp_method.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::front_is;
using atcd::testing::fronts_equal;

// ---- Fig. 1 / Fig. 3 (running example). ----

TEST(Factory, ShapeMatchesFig1) {
  const auto m = casestudies::make_factory();
  EXPECT_EQ(m.tree.node_count(), 5u);
  EXPECT_EQ(m.tree.bas_count(), 3u);
  EXPECT_TRUE(m.tree.is_treelike());
}

TEST(Factory, Fig3ParetoFront) {
  const auto m = casestudies::make_factory();
  const std::vector<std::pair<double, double>> expect{
      {0, 0}, {1, 200}, {3, 210}, {5, 310}};
  EXPECT_TRUE(front_is(cdpf_bottom_up(m), expect));
  EXPECT_TRUE(front_is(cdpf_enumerative(m), expect));
  EXPECT_TRUE(front_is(cdpf_bilp(m), expect));
}

// ---- Fig. 4 (panda IoT sensor network). ----

TEST(Panda, ShapeMatchesFig4) {
  const auto m = casestudies::make_panda();
  EXPECT_EQ(m.tree.node_count(), 38u);  // paper: N = 38
  EXPECT_EQ(m.tree.bas_count(), 22u);   // paper: 2^22 attacks
  EXPECT_TRUE(m.tree.is_treelike());
  // Total damage across all nodes is 100 (the top of Fig. 6a).
  double total = 0;
  for (double d : m.damage) total += d;
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(Panda, Fig6aDeterministicFront) {
  const auto f = cdpf_bottom_up(casestudies::make_panda().deterministic());
  EXPECT_TRUE(front_is(f, {{0, 0},
                           {3, 20},
                           {4, 50},
                           {7, 65},
                           {11, 75},
                           {13, 80},
                           {17, 90},
                           {22, 95},
                           {30, 100}}));
}

TEST(Panda, Fig6aAttackSets) {
  // The paper's attack table: A1 = {b18}; every optimal attack contains
  // at least one of the minimal attacks {b18}, {b19,b20}, {b21,b22}.
  const auto m = casestudies::make_panda().deterministic();
  const auto f = cdpf_bottom_up(m);
  const auto b18 = m.tree.bas_index(*m.tree.find("b18_internal_leakage"));
  const auto b19 =
      m.tree.bas_index(*m.tree.find("b19_look_for_base_station"));
  const auto b20 = m.tree.bas_index(*m.tree.find("b20_crack_password"));
  const auto b21 = m.tree.bas_index(*m.tree.find("b21_send_malicious_codes"));
  const auto b22 = m.tree.bas_index(*m.tree.find("b22_malicious_codes_ran"));
  // A1 at (3,20) is exactly {b18}.
  ASSERT_DOUBLE_EQ(f[1].value.cost, 3.0);
  EXPECT_TRUE(f[1].witness.test(b18));
  EXPECT_EQ(f[1].witness.count(), 1u);
  // Every nonzero optimal attack contains one of the three minimal attacks.
  for (std::size_t i = 1; i < f.size(); ++i) {
    const auto& w = f[i].witness;
    const bool has_min = w.test(b18) || (w.test(b19) && w.test(b20)) ||
                         (w.test(b21) && w.test(b22));
    EXPECT_TRUE(has_min) << "front point " << i;
  }
  // All Pareto-optimal attacks reach the top node (Fig. 6a table, "top").
  for (std::size_t i = 1; i < f.size(); ++i)
    EXPECT_TRUE(is_successful(m.tree, f[i].witness));
}

TEST(Panda, Fig6aViaBilpAgrees) {
  const auto m = casestudies::make_panda().deterministic();
  EXPECT_TRUE(fronts_equal(cdpf_bilp(m), cdpf_bottom_up(m)));
}

TEST(Panda, Fig6bProbabilisticFrontHeadMatchesThePaper) {
  // Paper Fig. 6b lists A1 = {b18} at (3, 18.0), A2 = A1 ∪ {b19,b20} at
  // (7, 27.6), A3 = A2 ∪ {b21,b22} at (11, 30.8) — values rounded to one
  // decimal in the paper.
  const auto m = casestudies::make_panda();
  const auto f = cedpf_bottom_up(m);
  ASSERT_GE(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[1].value.cost, 3.0);
  EXPECT_NEAR(f[1].value.damage, 18.0, 1e-9);
  EXPECT_DOUBLE_EQ(f[2].value.cost, 7.0);
  EXPECT_NEAR(f[2].value.damage, 27.6, 0.1);
  // b18 is part of every nonzero Pareto-optimal attack (the paper's
  // headline observation for the probabilistic analysis).
  const auto b18 = m.tree.bas_index(*m.tree.find("b18_internal_leakage"));
  for (std::size_t i = 1; i < f.size(); ++i)
    EXPECT_TRUE(f[i].witness.test(b18)) << "front point " << i;
}

TEST(Panda, ProbabilisticFrontIsLargerThanDeterministic) {
  // Sec. X-A: 31 Pareto-optimal attacks probabilistically vs 9
  // deterministic points — redundancy buys activation probability.  Our
  // reconstruction gives 29; assert the qualitative claim.
  const auto m = casestudies::make_panda();
  EXPECT_GT(cedpf_bottom_up(m).size(),
            cdpf_bottom_up(m.deterministic()).size() * 2);
}

// ---- Fig. 5 (data server). ----

TEST(DataServer, ShapeMatchesFig5) {
  const auto m = casestudies::make_dataserver();
  EXPECT_EQ(m.tree.bas_count(), 12u);
  EXPECT_EQ(m.tree.node_count(), 25u);
  EXPECT_FALSE(m.tree.is_treelike());  // DAG-shaped
}

TEST(DataServer, Fig6cFrontViaBilp) {
  const auto f = cdpf_bilp(casestudies::make_dataserver());
  EXPECT_TRUE(front_is(f, {{0, 0},
                           {250, 24},
                           {568, 60},
                           {976, 70.8},
                           {1131, 75.8},
                           {1281, 82.8}}));
}

TEST(DataServer, Fig6cFrontViaEnumerationAgrees) {
  const auto m = casestudies::make_dataserver();
  EXPECT_TRUE(fronts_equal(cdpf_bilp(m), cdpf_enumerative(m)));
}

TEST(DataServer, Fig6cAttackChain) {
  // Paper: every Pareto-optimal attack contains the previous one, and
  // only A1 = {b6, b8} misses the top node.
  const auto m = casestudies::make_dataserver();
  const auto f = cdpf_enumerative(m);
  ASSERT_EQ(f.size(), 6u);
  for (std::size_t i = 1; i + 1 < f.size(); ++i)
    EXPECT_TRUE(f[i].witness.is_subset_of(f[i + 1].witness))
        << "chain broken at " << i;
  EXPECT_FALSE(is_successful(m.tree, f[1].witness));  // A1
  for (std::size_t i = 2; i < f.size(); ++i)
    EXPECT_TRUE(is_successful(m.tree, f[i].witness));
  // A1 is exactly {b6, b8}.
  const auto b6 =
      m.tree.bas_index(*m.tree.find("b6_internet_connection_ftp"));
  const auto b8 = m.tree.bas_index(*m.tree.find("b8_attack_via_ftp"));
  EXPECT_TRUE(f[1].witness.test(b6));
  EXPECT_TRUE(f[1].witness.test(b8));
  EXPECT_EQ(f[1].witness.count(), 2u);
}

TEST(DataServer, SuperfluousTerminalNodesOnlyMatterForDamage) {
  // Removing b4/b5 from any successful attack keeps it successful —
  // they only add damage (the paper's UserAccessToTerminal remark).
  const auto m = casestudies::make_dataserver();
  const auto x = make_attack(
      m.tree, {"b1_internet_connection_smtp", "b2_ftp_rhost_attack_smtp",
               "b3_rsh_login_smtp", "b4_licq_remote_to_user",
               "b5_local_bo_at_daemon", "b11_licq_remote_to_user_ds",
               "b12_suid_buffer_overflow"});
  ASSERT_TRUE(is_successful(m.tree, x));
  const double with_terminal = total_damage(m, x);
  auto without = x;
  without.set(m.tree.bas_index(*m.tree.find("b4_licq_remote_to_user")),
              false);
  without.set(m.tree.bas_index(*m.tree.find("b5_local_bo_at_daemon")),
              false);
  EXPECT_TRUE(is_successful(m.tree, without));
  EXPECT_DOUBLE_EQ(with_terminal - total_damage(m, without), 12.0);
}

// ---- Random decorations (Table III robustness check). ----

TEST(CaseStudies, EnginesAgreeUnderRandomDecorations) {
  Rng rng(2023);
  // Panda with random c,d: BU vs BILP (enumeration would take 2^22).
  const auto panda = casestudies::make_panda();
  for (int rep = 0; rep < 2; ++rep) {
    const auto rnd = randomize_decorations(panda.tree, rng).deterministic();
    EXPECT_TRUE(fronts_equal(cdpf_bottom_up(rnd), cdpf_bilp(rnd)))
        << "rep " << rep;
  }
  // Data server with random c,d: BILP vs enumeration (2^12).
  const auto ds = casestudies::make_dataserver();
  for (int rep = 0; rep < 2; ++rep) {
    const auto rnd = randomize_decorations(ds.tree, rng).deterministic();
    EXPECT_TRUE(fronts_equal(cdpf_bilp(rnd), cdpf_enumerative(rnd)))
        << "rep " << rep;
  }
}

}  // namespace
}  // namespace atcd
