#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace atcd {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynBitset, SetAndClearAcrossWordBoundaries) {
  DynBitset b(130);
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    b.set(i);
    EXPECT_TRUE(b.test(i)) << i;
  }
  EXPECT_EQ(b.count(), 7u);
  b.set(64, false);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 6u);
  b.reset();
  EXPECT_TRUE(b.none());
}

TEST(DynBitset, SubsetOrder) {
  DynBitset a(70), b(70);
  a.set(3);
  a.set(65);
  b = a;
  b.set(10);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(DynBitset(70).is_subset_of(a));
}

TEST(DynBitset, UnionIntersectionDifference) {
  DynBitset a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ((a | b).ones(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ((a & b).ones(), (std::vector<std::size_t>{2}));
  DynBitset c = a;
  c.subtract(b);
  EXPECT_EQ(c.ones(), (std::vector<std::size_t>{1}));
}

TEST(DynBitset, FromMaskMatchesBitPattern) {
  const auto b = DynBitset::from_mask(10, 0b1010110101);
  EXPECT_EQ(b.to_string(), "1010110101");
  EXPECT_EQ(b.count(), 6u);
}

TEST(DynBitset, FromMaskClipsBeyondSize) {
  // Bits beyond the size must be dropped so equality stays canonical.
  const auto b = DynBitset::from_mask(4, 0xFF);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_EQ(b, DynBitset::from_mask(4, 0x0F));
}

TEST(DynBitset, EqualityAndOrdering) {
  DynBitset a(5), b(5);
  EXPECT_EQ(a, b);
  a.set(2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a || a < b);
}

TEST(DynBitset, HashDistinguishesTypicalValues) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t m = 0; m < 256; ++m)
    hashes.insert(DynBitset::from_mask(8, m).hash());
  // FNV over words: collisions over 256 tiny values would be alarming.
  EXPECT_EQ(hashes.size(), 256u);
}

TEST(DynBitset, ZeroSized) {
  DynBitset b(0);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.to_string(), "");
  EXPECT_EQ(b, DynBitset::from_mask(0, 0));
}

}  // namespace
}  // namespace atcd
