#include "pareto/io.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "core/problems.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

TEST(FrontIo, CsvRoundTripWithTree) {
  const auto m = casestudies::make_factory();
  const auto f = cdpf(m);
  const auto csv = front_to_csv(f, &m.tree);
  EXPECT_NE(csv.find("cost,damage,attack"), std::string::npos);
  EXPECT_NE(csv.find("pb+fd"), std::string::npos);
  const auto back = front_from_csv(csv, &m.tree);
  EXPECT_TRUE(atcd::testing::fronts_equal(f, back));
  // Witnesses survive the round trip.
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_EQ(f[i].witness, back[i].witness);
}

TEST(FrontIo, CsvWithoutTreeUsesIndices) {
  const auto m = casestudies::make_factory();
  const auto csv = front_to_csv(cdpf(m), nullptr);
  EXPECT_NE(csv.find("1+2"), std::string::npos);  // pb, fd indices
  const auto back = front_from_csv(csv, nullptr);
  EXPECT_TRUE(atcd::testing::fronts_equal(cdpf(m), back));
}

TEST(FrontIo, JsonShape) {
  const auto m = casestudies::make_factory();
  const auto json = front_to_json(cdpf(m), &m.tree);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"cost\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"damage\": 310"), std::string::npos);
  EXPECT_NE(json.find("\"pb\", \"fd\""), std::string::npos);
  EXPECT_NE(json.find("\"attack\": []"), std::string::npos);  // empty attack
}

TEST(FrontIo, CsvParserRejectsGarbage) {
  EXPECT_THROW(front_from_csv("nope"), ParseError);
  EXPECT_THROW(front_from_csv("cost,damage,attack\nx,y,z\n"), ParseError);
  EXPECT_THROW(front_from_csv("cost,damage,attack\n1\n"), ParseError);
  const auto m = casestudies::make_factory();
  EXPECT_THROW(front_from_csv("cost,damage,attack\n1,2,unknown_bas\n",
                              &m.tree),
               ParseError);
}

TEST(FrontIo, EmptyFront) {
  const auto csv = front_to_csv(Front2d{});
  EXPECT_EQ(front_from_csv(csv).size(), 0u);
  EXPECT_EQ(front_to_json(Front2d{}), "[\n]\n");
}

TEST(FrontIo, ReminimizesOnLoad) {
  // The loader runs of_candidates, so a CSV with dominated rows yields a
  // proper front.
  const auto f = front_from_csv(
      "cost,damage,attack\n0,0,\n1,5,\n2,3,\n");  // (2,3) dominated
  EXPECT_EQ(f.size(), 2u);
}

}  // namespace
}  // namespace atcd
