#include "lp/lp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atcd::lp {
namespace {

TEST(Lp, SimpleTwoVariableOptimum) {
  // max x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x,y >= 0
  // (minimize the negation).  Optimum at (1.6, 1.2) -> -2.8.
  LinearProgram p;
  const int x = p.add_var(0, kInf, -1.0);
  const int y = p.add_var(0, kInf, -1.0);
  p.add_row({{x, 1}, {y, 2}}, Sense::LE, 4);
  p.add_row({{x, 3}, {y, 1}}, Sense::LE, 6);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -2.8, 1e-9);
  EXPECT_NEAR(r.x[0], 1.6, 1e-9);
  EXPECT_NEAR(r.x[1], 1.2, 1e-9);
}

TEST(Lp, EqualityConstraints) {
  // min x + y  s.t.  x + y = 3, x - y = 1  ->  (2,1), objective 3.
  LinearProgram p;
  const int x = p.add_var(0, kInf, 1.0);
  const int y = p.add_var(0, kInf, 1.0);
  p.add_row({{x, 1}, {y, 1}}, Sense::EQ, 3);
  p.add_row({{x, 1}, {y, -1}}, Sense::EQ, 1);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Lp, GreaterEqualAndNegativeRhs) {
  // min 2x + y  s.t.  x + y >= 2,  -x - y >= -10  ->  (0,2), obj 2.
  LinearProgram p;
  const int x = p.add_var(0, kInf, 2.0);
  const int y = p.add_var(0, kInf, 1.0);
  p.add_row({{x, 1}, {y, 1}}, Sense::GE, 2);
  p.add_row({{x, -1}, {y, -1}}, Sense::GE, -10);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Lp, DetectsInfeasible) {
  LinearProgram p;
  const int x = p.add_var(0, kInf, 1.0);
  p.add_row({{x, 1}}, Sense::GE, 5);
  p.add_row({{x, 1}}, Sense::LE, 3);
  EXPECT_EQ(solve(p).status, LpStatus::Infeasible);
}

TEST(Lp, DetectsUnbounded) {
  LinearProgram p;
  const int x = p.add_var(0, kInf, -1.0);  // max x, no constraint
  p.add_var(0, 1, 0.0);
  const auto r = solve(p);
  EXPECT_EQ(r.status, LpStatus::Unbounded);
}

TEST(Lp, VariableBoundsAreRespected) {
  // min -x - 2y with x in [0,3], y in [1,2].
  LinearProgram p;
  p.add_var(0, 3, -1.0);
  p.add_var(1, 2, -2.0);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
  EXPECT_NEAR(r.objective, -7.0, 1e-9);
}

TEST(Lp, NonzeroLowerBoundsShiftCorrectly) {
  // min x + y with x >= 2, y in [3, 10], x + y <= 20.
  LinearProgram p;
  const int x = p.add_var(2, kInf, 1.0);
  const int y = p.add_var(3, 10, 1.0);
  p.add_row({{x, 1}, {y, 1}}, Sense::LE, 20);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
}

TEST(Lp, FixedVariablesViaEqualBounds) {
  LinearProgram p;
  const int x = p.add_var(1, 1, 5.0);  // fixed at 1
  const int y = p.add_var(0, kInf, 1.0);
  p.add_row({{x, 1}, {y, 1}}, Sense::GE, 4);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Classic cycling-prone setup (Beale); Bland fallback must terminate.
  LinearProgram p;
  const int x1 = p.add_var(0, kInf, -0.75);
  const int x2 = p.add_var(0, kInf, 150.0);
  const int x3 = p.add_var(0, kInf, -0.02);
  const int x4 = p.add_var(0, kInf, 6.0);
  p.add_row({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, Sense::LE, 0);
  p.add_row({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, Sense::LE, 0);
  p.add_row({{x3, 1}}, Sense::LE, 1);
  const auto r = solve(p);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(Lp, RejectsMalformedModels) {
  LinearProgram p;
  EXPECT_THROW(p.add_var(kInf, kInf, 0.0), SolverError);
  EXPECT_THROW(p.add_var(2, 1, 0.0), SolverError);
  p.add_var(0, 1, 0.0);
  EXPECT_THROW(p.add_row({{5, 1.0}}, Sense::LE, 0), SolverError);
  EXPECT_THROW(p.set_bounds(3, 0, 1), SolverError);
  EXPECT_THROW(p.set_obj(3, 1.0), SolverError);
}

TEST(Lp, RandomFeasibleBoxProblemsAgreeWithVertexEnumeration) {
  // min c.x over a random box [0,1]^3 with <= constraints whose rhs keeps
  // the origin feasible.  The optimum of an LP over a polytope is attained
  // at a vertex; with n=3 we can check against coarse grid enumeration of
  // the box corners only when constraints are inactive at the optimum —
  // instead simply verify feasibility and objective <= all corners.
  Rng rng(21);
  for (int it = 0; it < 30; ++it) {
    LinearProgram p;
    double c[3];
    for (int j = 0; j < 3; ++j) {
      c[j] = rng.uniform(-5, 5);
      p.add_var(0, 1, c[j]);
    }
    double a[2][3], rhs[2];
    for (int i = 0; i < 2; ++i) {
      rhs[i] = rng.uniform(0.5, 3.0);
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < 3; ++j) {
        a[i][j] = rng.uniform(0, 2);
        terms.emplace_back(j, a[i][j]);
      }
      p.add_row(terms, Sense::LE, rhs[i]);
    }
    const auto r = solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    // Feasibility of the reported solution.
    for (int i = 0; i < 2; ++i) {
      double lhs = 0;
      for (int j = 0; j < 3; ++j) lhs += a[i][j] * r.x[j];
      EXPECT_LE(lhs, rhs[i] + 1e-7);
    }
    // No feasible box corner beats it.
    for (int corner = 0; corner < 8; ++corner) {
      double obj = 0, lhs0 = 0, lhs1 = 0;
      for (int j = 0; j < 3; ++j) {
        const double v = (corner >> j) & 1;
        obj += c[j] * v;
        lhs0 += a[0][j] * v;
        lhs1 += a[1][j] * v;
      }
      if (lhs0 <= rhs[0] && lhs1 <= rhs[1])
        EXPECT_GE(obj, r.objective - 1e-7);
    }
  }
}

}  // namespace
}  // namespace atcd::lp
