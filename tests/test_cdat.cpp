#include "core/cdat.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

TEST(CdAt, ValidateRejectsBadDecorations) {
  auto m = casestudies::make_factory();
  auto bad_cost = m;
  bad_cost.cost.pop_back();
  EXPECT_THROW(bad_cost.validate(), ModelError);
  auto bad_damage = m;
  bad_damage.damage[0] = -1.0;
  EXPECT_THROW(bad_damage.validate(), ModelError);
  auto short_damage = m;
  short_damage.damage.pop_back();
  EXPECT_THROW(short_damage.validate(), ModelError);
}

TEST(CdpAt, ValidateRejectsBadProbabilities) {
  auto m = casestudies::make_factory_probabilistic();
  m.prob[0] = 1.5;
  EXPECT_THROW(m.validate(), ModelError);
  m.prob[0] = -0.1;
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(CdpAt, DeterministicForgetsProbabilities) {
  const auto p = casestudies::make_factory_probabilistic();
  const auto d = p.deterministic();
  EXPECT_EQ(d.cost, p.cost);
  EXPECT_EQ(d.damage, p.damage);
}

// ---- Probabilistic semantics (Sec. VIII). ----

TEST(ExpectedDamage, Example9OfThePaper) {
  // d̂_E(0,1,1) with p = (0.2, 0.4, 0.9): PS(fd) = 0.9, PS(dr) = 0.36,
  // PS(ps) = 0.36, so 10*0.9 + 100*0.36 + 200*0.36 = 117.
  // (The paper's Example 9 prints 112, but its own arithmetic swaps the
  // damage of actualizations (0,0,1) and (0,1,0) relative to the Example 1
  // table; 117 is the value consistent with Defs. 4-6.  See EXPERIMENTS.md.)
  const auto m = casestudies::make_factory_probabilistic();
  const auto x = make_attack(m.tree, {"pb", "fd"});
  EXPECT_NEAR(expected_damage(m, x), 117.0, 1e-12);
  EXPECT_NEAR(expected_damage_exact(m, x), 117.0, 1e-12);
}

TEST(ExpectedDamage, ActualizationDistributionOfExample8) {
  // P(Y_(0,1,1) = y) from Example 8, checked through the exact enumerator
  // by probing single actualizations via degenerate probabilities.
  const auto m = casestudies::make_factory_probabilistic();
  const auto x = make_attack(m.tree, {"pb", "fd"});
  // E[d] = .06*0 + .54*10 + .04*0 + .36*310 = 117 decomposes the same way.
  EXPECT_NEAR(0.06 * 0 + 0.54 * 10 + 0.04 * 0 + 0.36 * 310, 117.0, 1e-12);
  EXPECT_NEAR(expected_damage_exact(m, x), 117.0, 1e-12);
}

TEST(ExpectedDamage, MatchesExactEnumerationOnRandomTrees) {
  Rng rng(11);
  for (int it = 0; it < 25; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 7, /*treelike=*/true);
    const std::uint64_t mask = rng.below(128);
    const Attack x = Attack::from_mask(7, mask);
    ASSERT_NEAR(expected_damage(m, x), expected_damage_exact(m, x), 1e-9)
        << "seed iteration " << it;
  }
}

TEST(ExpectedDamage, DeterministicLimit) {
  // p = 1 must reproduce the deterministic damage.
  const auto det = casestudies::make_factory();
  CdpAt m{det.tree, det.cost, det.damage, {1.0, 1.0, 1.0}};
  for (std::uint64_t mask = 0; mask < 8; ++mask) {
    const Attack x = Attack::from_mask(3, mask);
    EXPECT_DOUBLE_EQ(expected_damage(m, x), total_damage(det, x));
  }
}

TEST(ExpectedDamage, ZeroProbabilityMeansZeroDamage) {
  const auto det = casestudies::make_factory();
  CdpAt m{det.tree, det.cost, det.damage, {0.0, 0.0, 0.0}};
  const auto x = make_attack(m.tree, {"ca", "pb", "fd"});
  EXPECT_DOUBLE_EQ(expected_damage(m, x), 0.0);
}

TEST(ExpectedDamage, ExactEnumeratorCapacityGuard) {
  Rng rng(3);
  const auto m = atcd::testing::random_cdpat(rng, 8, true);
  Attack x(8);
  for (std::size_t i = 0; i < 8; ++i) x.set(i);
  EXPECT_THROW(expected_damage_exact(m, x, /*max_attempted=*/4),
               CapacityError);
}

TEST(ProbabilisticStructure, RefusesDagModels) {
  Rng rng(5);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 6, /*treelike=*/false);
    if (m.tree.is_treelike()) continue;  // sharing is probabilistic
    EXPECT_THROW(probabilistic_structure(m, Attack(6)), UnsupportedError);
    return;
  }
  FAIL() << "random_dag never produced a DAG";
}

TEST(SampleDamage, MonteCarloConvergesToExpectedDamage) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto x = make_attack(m.tree, {"pb", "fd"});
  Rng rng(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += sample_damage(m, x, rng);
  EXPECT_NEAR(sum / n, 117.0, 2.5);  // ~3 sigma for this variance
}

// ---- Fig. 2: internal costs are syntactic sugar, internal damage is not. ----

TEST(WithInternalCosts, AndGateGainsDummyChild) {
  // Left AT of Fig. 2: AND with internal cost 1 over two cost-1 BASs.
  CdAt m;
  const auto a = m.tree.add_bas("a");
  const auto b = m.tree.add_bas("b");
  const auto g = m.tree.add_gate(NodeType::AND, "g", {a, b});
  m.tree.set_root(g);
  m.tree.finalize();
  m.cost = {1.0, 1.0};
  m.damage.assign(3, 0.0);
  m.damage[g] = 1.0;

  std::vector<double> internal(3, 0.0);
  internal[g] = 1.0;
  const auto rewritten = with_internal_costs(m, internal);
  EXPECT_TRUE(rewritten.tree.find("g#cost").has_value());
  EXPECT_EQ(rewritten.tree.bas_count(), 3u);
  // Damage 1 now requires paying all three costs: total cost 3.
  Attack all(3);
  for (std::size_t i = 0; i < 3; ++i) all.set(i);
  EXPECT_DOUBLE_EQ(total_cost(rewritten, all), 3.0);
  EXPECT_DOUBLE_EQ(total_damage(rewritten, all), 1.0);
  // Without the dummy, the gate (and its damage) is not reached.
  const auto x = make_attack(rewritten.tree, {"a", "b"});
  EXPECT_DOUBLE_EQ(total_damage(rewritten, x), 0.0);
}

TEST(WithInternalCosts, OrGateWrappedInAnd) {
  CdAt m;
  const auto a = m.tree.add_bas("a");
  const auto b = m.tree.add_bas("b");
  const auto g = m.tree.add_gate(NodeType::OR, "g", {a, b});
  m.tree.set_root(g);
  m.tree.finalize();
  m.cost = {1.0, 1.0};
  m.damage.assign(3, 0.0);
  m.damage[g] = 7.0;

  std::vector<double> internal(3, 0.0);
  internal[g] = 2.0;
  const auto r = with_internal_costs(m, internal);
  // One child reached + dummy paid => damage 7 at cost 3.
  const auto x = make_attack(r.tree, {"a", "g#cost"});
  EXPECT_DOUBLE_EQ(total_cost(r, x), 3.0);
  EXPECT_DOUBLE_EQ(total_damage(r, x), 7.0);
  // Child alone: no damage (cost not paid).
  EXPECT_DOUBLE_EQ(total_damage(r, make_attack(r.tree, {"a"})), 0.0);
  // Dummy alone: no damage either — this is exactly why damage must stay
  // on the internal node (Fig. 2 right would be wrong).
  EXPECT_DOUBLE_EQ(total_damage(r, make_attack(r.tree, {"g#cost"})), 0.0);
}

TEST(WithInternalCosts, RejectsCostsOnBasEntries) {
  const auto m = casestudies::make_factory();
  std::vector<double> internal(m.tree.node_count(), 0.0);
  internal[*m.tree.find("ca")] = 1.0;
  EXPECT_THROW(with_internal_costs(m, internal), ModelError);
}

TEST(RandomizeDecorations, RespectsPaperRanges) {
  Rng rng(17);
  const auto t = atcd::testing::random_tree(rng, 10);
  const auto m = randomize_decorations(t, rng);
  for (double c : m.cost) {
    EXPECT_GE(c, 1.0);
    EXPECT_LE(c, 10.0);
  }
  for (double d : m.damage) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 10.0);
  }
  for (double p : m.prob) {
    EXPECT_GE(p, 0.1);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace atcd
