/// End-to-end integration tests across module boundaries: literature
/// building blocks -> random decorations -> text serialisation -> parse
/// -> engines -> front I/O.  Each test exercises a pipeline a downstream
/// user would actually run.

#include <gtest/gtest.h>

#include "at/dot.hpp"
#include "at/parser.hpp"
#include "bdd/at_bdd.hpp"
#include "core/enumerative.hpp"
#include "core/problems.hpp"
#include "gen/literature.hpp"
#include "gen/random_at.hpp"
#include "helpers.hpp"
#include "pareto/io.hpp"
#include "poly/poly_engine.hpp"

namespace atcd {
namespace {

using atcd::testing::fronts_equal;

TEST(Integration, EnginesAgreeOnEveryLiteratureBlock) {
  Rng rng(1001);
  for (const auto& block : gen::literature_blocks()) {
    const auto m = randomize_decorations(block.tree, rng);
    const auto det = m.deterministic();
    const auto oracle = cdpf(det, Engine::Enumerative);
    EXPECT_TRUE(fronts_equal(cdpf(det), oracle)) << block.name;
    if (block.treelike) {
      EXPECT_TRUE(fronts_equal(cdpf(det, Engine::Bilp), oracle))
          << block.name;
      EXPECT_TRUE(
          fronts_equal(cedpf(m), cedpf(m, Engine::Enumerative), 1e-7))
          << block.name;
    } else {
      // Probabilistic DAGs: the two open-problem engines must agree.
      EXPECT_TRUE(
          fronts_equal(cedpf(m, Engine::Bdd), cedpf_poly(m), 1e-7))
          << block.name;
    }
  }
}

TEST(Integration, SerialiseParseAnalyzePipeline) {
  // Generated model -> text -> parse -> identical analysis results.
  Rng rng(1002);
  gen::SuiteOptions opt;
  opt.max_n = 25;
  opt.per_size = 1;
  opt.treelike = true;
  for (const auto& e : gen::make_suite(opt, rng)) {
    if (e.tree.bas_count() > 14) continue;
    const auto m = randomize_decorations(e.tree, rng);
    const auto text = serialize_model(m.tree, m.cost, m.damage, &m.prob);
    const auto parsed = parse_model(text);
    const CdpAt back{parsed.tree, parsed.cost, parsed.damage, parsed.prob};
    ASSERT_TRUE(fronts_equal(cedpf(m), cedpf(back), 1e-9));
    ASSERT_TRUE(
        fronts_equal(cdpf(m.deterministic()), cdpf(back.deterministic())));
  }
}

TEST(Integration, FrontExportReimportPreservesAnalysis) {
  Rng rng(1003);
  const auto m = atcd::testing::random_cdat(rng, 10, /*treelike=*/true);
  const auto f = cdpf(m);
  const auto back = front_from_csv(front_to_csv(f, &m.tree), &m.tree);
  ASSERT_TRUE(fronts_equal(f, back));
  // Reimported witnesses still evaluate to the stated points.
  for (const auto& p : back) {
    EXPECT_DOUBLE_EQ(total_cost(m, p.witness), p.value.cost);
    EXPECT_DOUBLE_EQ(total_damage(m, p.witness), p.value.damage);
  }
}

TEST(Integration, DotExportCoversWholeGeneratedModels) {
  Rng rng(1004);
  const auto m = atcd::testing::random_cdpat(rng, 12, /*treelike=*/false);
  const auto dot = to_dot(m.tree, m.cost, m.damage, m.prob);
  // Every node appears exactly once as a declaration.
  for (NodeId v = 0; v < m.tree.node_count(); ++v) {
    const std::string decl = "n" + std::to_string(v) + " [";
    EXPECT_NE(dot.find(decl), std::string::npos) << v;
  }
  // Edge count matches the model.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1))
    ++arrows;
  EXPECT_EQ(arrows, m.tree.edge_count());
}

TEST(Integration, ClassicAndCostDamageMetricsAreConsistent) {
  // min cost of a successful attack (BDD) equals the cheapest front
  // point that reaches the root.
  Rng rng(1005);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 9, it % 2 == 0);
    const double classic = min_cost_of_successful_attack(m);
    double from_front = std::numeric_limits<double>::infinity();
    // Scan all attacks for the cheapest successful one via the oracle
    // front + witnesses is not enough (front witnesses may be
    // unsuccessful), so enumerate.
    const std::size_t nb = m.tree.bas_count();
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << nb); ++mask) {
      const Attack x = Attack::from_mask(nb, mask);
      if (!is_successful(m.tree, x)) continue;
      from_front = std::min(from_front, total_cost(m, x));
    }
    ASSERT_NEAR(classic, from_front, 1e-9);
  }
}

TEST(Integration, BinarizationCommutesWithEveryEngine) {
  Rng rng(1006);
  for (int it = 0; it < 5; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 8, /*treelike=*/true);
    const auto bin = binarize_model(m);
    ASSERT_TRUE(fronts_equal(cedpf(m), cedpf(bin), 1e-9));
    ASSERT_TRUE(fronts_equal(cdpf(m.deterministic(), Engine::Bilp),
                             cdpf(bin.deterministic(), Engine::Bilp)));
  }
}

}  // namespace
}  // namespace atcd
