#include "core/bottom_up.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "at/transform.hpp"
#include "casestudies/factory.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::front_is;
using atcd::testing::fronts_equal;

TEST(BottomUpDet, FactoryFrontMatchesEq3) {
  // PF(T) = {(0,0), (1,200), (3,210), (5,310)} (paper eq. (3), Fig. 3).
  const auto f = cdpf_bottom_up(casestudies::make_factory());
  EXPECT_TRUE(front_is(f, {{0, 0}, {1, 200}, {3, 210}, {5, 310}}));
}

TEST(BottomUpDet, FactoryWitnessesAreCorrectAttacks) {
  const auto m = casestudies::make_factory();
  const auto f = cdpf_bottom_up(m);
  for (const auto& p : f) {
    EXPECT_DOUBLE_EQ(total_cost(m, p.witness), p.value.cost);
    EXPECT_DOUBLE_EQ(total_damage(m, p.witness), p.value.damage);
  }
  // The (1,200) point is the cyberattack.
  EXPECT_EQ(attack_to_string(m.tree, f[1].witness), "{ca}");
}

TEST(BottomUpDet, DgcMatchesExample2) {
  const auto m = casestudies::make_factory();
  const auto r = dgc_bottom_up(m, 2.0);  // paper: d_opt = 200 for U = 2
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.damage, 200.0);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
}

TEST(BottomUpDet, DgcBudgetEdgeCases) {
  const auto m = casestudies::make_factory();
  // Zero budget: only the empty attack.
  const auto r0 = dgc_bottom_up(m, 0.0);
  ASSERT_TRUE(r0.feasible);
  EXPECT_DOUBLE_EQ(r0.damage, 0.0);
  // Budget exactly on an attack cost boundary is inclusive.
  EXPECT_DOUBLE_EQ(dgc_bottom_up(m, 1.0).damage, 200.0);
  EXPECT_DOUBLE_EQ(dgc_bottom_up(m, 4.999).damage, 210.0);
  EXPECT_DOUBLE_EQ(dgc_bottom_up(m, 5.0).damage, 310.0);
}

TEST(BottomUpDet, CgdMatchesFront) {
  const auto m = casestudies::make_factory();
  const auto r = cgd_bottom_up(m, 201.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_DOUBLE_EQ(r.damage, 210.0);
  EXPECT_FALSE(cgd_bottom_up(m, 311.0).feasible);
  // L = 0 is satisfied by the empty attack.
  const auto zero = cgd_bottom_up(m, 0.0);
  ASSERT_TRUE(zero.feasible);
  EXPECT_DOUBLE_EQ(zero.cost, 0.0);
}

TEST(BottomUpDet, RefusesDagModels) {
  Rng rng(31);
  for (int it = 0; it < 10; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 6, /*treelike=*/false);
    if (m.tree.is_treelike()) continue;
    EXPECT_THROW(cdpf_bottom_up(m), UnsupportedError);
    return;
  }
  FAIL() << "no DAG generated";
}

TEST(BottomUpDet, Example6ExponentialFront) {
  // OR over BASs with c(v_i) = d(v_i) = 2^i: every one of the 2^n attacks
  // is Pareto-optimal (paper Example 6 / Thm 5).
  const int n = 8;
  CdAt m;
  std::vector<NodeId> cs;
  for (int i = 0; i < n; ++i) {
    cs.push_back(m.tree.add_bas("v" + std::to_string(i)));
    m.cost.push_back(std::pow(2.0, i));
  }
  m.tree.set_root(m.tree.add_gate(NodeType::OR, "root", cs));
  m.tree.finalize();
  m.damage.assign(m.tree.node_count(), 0.0);
  for (int i = 0; i < n; ++i) m.damage[cs[i]] = std::pow(2.0, i);
  const auto f = cdpf_bottom_up(m);
  EXPECT_EQ(f.size(), std::size_t{1} << n);
  // The front is the diagonal (k, k).
  for (std::size_t k = 0; k < f.size(); ++k) {
    EXPECT_DOUBLE_EQ(f[k].value.cost, static_cast<double>(k));
    EXPECT_DOUBLE_EQ(f[k].value.damage, static_cast<double>(k));
  }
}

TEST(BottomUpDet, SingleBasTree) {
  CdAt m;
  const auto b = m.tree.add_bas("b");
  m.tree.set_root(b);
  m.tree.finalize();
  m.cost = {2.0};
  m.damage = {5.0};
  const auto f = cdpf_bottom_up(m);
  EXPECT_TRUE(front_is(f, {{0, 0}, {2, 5}}));
  (void)b;
}

TEST(BottomUpDet, ZeroCostBasIsAlwaysTaken) {
  // A damage-carrying BAS with zero cost collapses the front's left edge.
  CdAt m;
  const auto a = m.tree.add_bas("free");
  const auto b = m.tree.add_bas("paid");
  m.tree.set_root(m.tree.add_gate(NodeType::OR, "root", {a, b}));
  m.tree.finalize();
  m.cost = {0.0, 1.0};
  m.damage.assign(m.tree.node_count(), 0.0);
  m.damage[a] = 3.0;
  m.damage[b] = 4.0;
  m.damage[m.tree.root()] = 1.0;
  const auto f = cdpf_bottom_up(m);
  // (0,4): free BAS + root; (1,8): both.
  EXPECT_TRUE(front_is(f, {{0, 4}, {1, 8}}));
}

TEST(BottomUpDet, NaryGatesEqualBinarizedForm) {
  // The n-ary fold must agree with the paper's binary formulation.
  Rng rng(77);
  for (int it = 0; it < 15; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 8, /*treelike=*/true);
    const auto bin = binarize_model(m);
    EXPECT_TRUE(fronts_equal(cdpf_bottom_up(m), cdpf_bottom_up(bin)));
  }
}

TEST(BottomUpDet, AblationIgnoringActivationIsUnsound) {
  // Dropping the third DTrip coordinate must lose the (5,310) point of
  // the factory front: {pb} is pruned at dr (Example 4's failure mode).
  const auto m = casestudies::make_factory();
  detail::BottomUpOptions opt;
  opt.ignore_activation = true;
  const auto triples = detail::bottom_up_root_front(
      m.tree, m.cost, m.damage, std::vector<double>(3, 1.0), opt);
  double best = 0;
  for (const auto& t : triples) best = std::max(best, t.t.damage);
  EXPECT_LT(best, 310.0);
}

TEST(BottomUpDet, Examples3To5IntermediateFronts) {
  // The paper's worked Examples 3-5 give the incomplete Pareto fronts
  // C^D_inf(v) at every node of the factory AT.  We reproduce them by
  // running the sweep on extracted subtrees (activation probabilities 1).
  const auto m = casestudies::make_factory();
  auto sub_front = [&](const char* node) {
    const auto s = subtree(m.tree, *m.tree.find(node));
    // Carry the decorations over to the subtree.
    CdAt sm;
    sm.tree = s.tree;
    sm.cost.resize(s.tree.bas_count());
    sm.damage.assign(s.tree.node_count(), 0.0);
    for (NodeId v = 0; v < m.tree.node_count(); ++v) {
      if (s.node_map[v] == kNoNode) continue;
      sm.damage[s.node_map[v]] = m.damage[v];
      if (m.tree.is_bas(v))
        sm.cost[s.tree.bas_index(s.node_map[v])] =
            m.cost[m.tree.bas_index(v)];
    }
    return detail::bottom_up_root_front(
        sm.tree, sm.cost, sm.damage,
        std::vector<double>(sm.tree.bas_count(), 1.0));
  };
  auto has = [](const std::vector<AttrTriple>& f, double c, double d,
                double b) {
    for (const auto& t : f)
      if (t.t == Triple{c, d, b}) return true;
    return false;
  };
  // Example 3/4: C at dr = {(0,0,0), (2,10,0), (5,110,1)};
  // (3,0,0) was discarded as dominated.
  const auto dr = sub_front("dr");
  EXPECT_EQ(dr.size(), 3u);
  EXPECT_TRUE(has(dr, 0, 0, 0));
  EXPECT_TRUE(has(dr, 2, 10, 0));
  EXPECT_TRUE(has(dr, 5, 110, 1));
  EXPECT_FALSE(has(dr, 3, 0, 0));
  // Example 5 at ps (root): of the six combined triples, (6,310,1) is
  // dominated by (5,310,1) and (2,10,0) by (1,200,1) (its underlines are
  // lost in the paper's text form but follow from ⊑), leaving four; their
  // projection is exactly eq. (3).
  const auto ps = sub_front("ps");
  EXPECT_EQ(ps.size(), 4u);
  EXPECT_TRUE(has(ps, 0, 0, 0));
  EXPECT_TRUE(has(ps, 1, 200, 1));
  EXPECT_TRUE(has(ps, 3, 210, 1));
  EXPECT_TRUE(has(ps, 5, 310, 1));
  EXPECT_FALSE(has(ps, 6, 310, 1));
  EXPECT_FALSE(has(ps, 2, 10, 0));
}

TEST(BottomUpProb, Example10TwoChildrenOr) {
  // OR(v1, v2), c = 1, p = 0.5 each, d(root) = 1: the probabilistic front
  // has the extra point (2, 0.75) that the deterministic front lacks.
  CdpAt m;
  const auto v1 = m.tree.add_bas("v1");
  const auto v2 = m.tree.add_bas("v2");
  const auto w = m.tree.add_gate(NodeType::OR, "w", {v1, v2});
  m.tree.set_root(w);
  m.tree.finalize();
  m.cost = {1.0, 1.0};
  m.prob = {0.5, 0.5};
  m.damage.assign(3, 0.0);
  m.damage[w] = 1.0;
  EXPECT_TRUE(
      front_is(cedpf_bottom_up(m), {{0, 0}, {1, 0.5}, {2, 0.75}}));
  // Deterministic: attacking both is wasted cost.
  EXPECT_TRUE(
      front_is(cdpf_bottom_up(m.deterministic()), {{0, 0}, {1, 1}}));
}

TEST(BottomUpProb, EdgcRespectsBudget) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto r = edgc_bottom_up(m, 3.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.cost, 3.0);
  // Check optimality against enumeration.
  const auto e = edgc_enumerative(m, 3.0);
  EXPECT_NEAR(r.damage, e.damage, 1e-9);
}

TEST(BottomUpProb, CgedMatchesEnumeration) {
  const auto m = casestudies::make_factory_probabilistic();
  for (double L : {0.0, 10.0, 40.0, 117.0}) {
    const auto r = cged_bottom_up(m, L);
    const auto e = cged_enumerative(m, L);
    ASSERT_EQ(r.feasible, e.feasible) << L;
    if (r.feasible) EXPECT_NEAR(r.cost, e.cost, 1e-9) << L;
  }
}

TEST(BottomUpProb, InfeasibleThreshold) {
  const auto m = casestudies::make_factory_probabilistic();
  EXPECT_FALSE(cged_bottom_up(m, 1e6).feasible);
}

}  // namespace
}  // namespace atcd
