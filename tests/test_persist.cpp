/// Tests for the snapshot persistence subsystem (src/persist/): the
/// save → load → save byte-identity property (scaled by
/// ATCD_FUZZ_ITERS), warm restarts serving cache hits for repeated and
/// isomorphic-permuted submissions, typed rejection of truncated,
/// bit-flipped, and version-bumped images (never a crash, never a
/// partially populated cache), atomic write-to-temp-then-rename saves,
/// and budget enforcement on load (an over-budget image evicts its
/// least-recent entries instead of talking the cache out of its
/// configured limits).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include "persist/snapshot.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "service/subtree_cache.hpp"

namespace atcd {
namespace {

using engine::Problem;
using persist::LoadStatus;
using persist::SnapshotInfo;
using service::ResultCache;
using service::SolveService;
using service::SubtreeCache;

std::size_t fuzz_iters(std::size_t dflt) {
  if (const char* env = std::getenv("ATCD_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return dflt;
}

/// A family of small distinct models: the (i % 7, i / 7) cost pair is
/// unique for i < 49, so every index has its own canonical hash.
std::string model_text(unsigned i) {
  std::ostringstream o;
  o << "bas a cost=" << (1 + i % 7) << " damage=2\n"
    << "bas b cost=" << (2 + i % 5) << " damage=1\n"
    << "bas c cost=" << (3 + i / 7) << "\n"
    << "and g = a, b\n"
    << "or root = g, c damage=" << (5 + i % 3) << "\n";
  return o.str();
}

/// The same model as model_text(i) with every node renamed and the
/// statements and child lists reordered — isomorphic, so it must hash
/// to the same canonical key.
std::string permuted_model_text(unsigned i) {
  std::ostringstream o;
  o << "bas z1 cost=" << (2 + i % 5) << " damage=1\n"
    << "bas z2 cost=" << (3 + i / 7) << "\n"
    << "bas z0 cost=" << (1 + i % 7) << " damage=2\n"
    << "and h = z1, z0\n"
    << "or top = z2, h damage=" << (5 + i % 3) << "\n";
  return o.str();
}

/// Solves `count` distinct models so both caches hold real entries
/// (fronts, witnesses, canonical keys).
void fill(SolveService& svc, unsigned count, unsigned salt = 0) {
  for (unsigned i = 0; i < count; ++i) {
    const auto resp = svc.handle(
        service::Request::of_text(Problem::Cdpf, model_text(salt + i)));
    ASSERT_TRUE(resp.result.ok) << resp.result.error;
  }
}

SolveService::Options single_shard_options() {
  SolveService::Options opt;
  opt.cache.shards = 1;
  opt.subtree.shards = 1;
  return opt;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem + std::to_string(::getpid()) + ".atcd";
}

// ---------------------------------------------------------------------------
// Round-trip property: save -> load -> save is byte-identical.
// ---------------------------------------------------------------------------

TEST(Persist, SaveLoadSaveByteIdentical) {
  const std::size_t iters = fuzz_iters(8);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    SolveService svc(single_shard_options());
    fill(svc, 3 + iter % 6, static_cast<unsigned>(iter * 7) % 40);

    SnapshotInfo info1;
    const std::string img1 =
        persist::encode_snapshot(svc.cache(), svc.subtree_cache(), &info1);
    EXPECT_EQ(info1.bytes, img1.size());
    EXPECT_GT(info1.result_entries, 0u);

    ResultCache::Config rcfg;
    rcfg.shards = 1;
    SubtreeCache::Config scfg;
    scfg.shards = 1;
    ResultCache rc(rcfg);
    SubtreeCache sc(scfg);
    SnapshotInfo info2;
    std::string err;
    ASSERT_EQ(persist::decode_snapshot(img1, &rc, &sc, &info2, &err),
              LoadStatus::Ok)
        << err;
    EXPECT_EQ(info2.result_entries, info1.result_entries);
    EXPECT_EQ(info2.subtree_entries, info1.subtree_entries);

    const std::string img2 = persist::encode_snapshot(rc, sc);
    EXPECT_EQ(img1, img2) << "iteration " << iter;
  }
}

TEST(Persist, EmptyCachesRoundTrip) {
  SolveService svc;
  SnapshotInfo info;
  const std::string img =
      persist::encode_snapshot(svc.cache(), svc.subtree_cache(), &info);
  EXPECT_EQ(info.result_entries, 0u);
  EXPECT_EQ(info.subtree_entries, 0u);

  ResultCache rc;
  SubtreeCache sc;
  ASSERT_EQ(persist::decode_snapshot(img, &rc, &sc), LoadStatus::Ok);
  EXPECT_EQ(persist::encode_snapshot(rc, sc), img);
}

TEST(Persist, NullCachePointersValidateWithoutRestoring) {
  SolveService svc(single_shard_options());
  fill(svc, 4);
  const std::string img =
      persist::encode_snapshot(svc.cache(), svc.subtree_cache());
  SnapshotInfo info;
  ASSERT_EQ(persist::decode_snapshot(img, nullptr, nullptr, &info),
            LoadStatus::Ok);
  EXPECT_EQ(info.result_entries, 4u);
}

// ---------------------------------------------------------------------------
// Warm restart through files.
// ---------------------------------------------------------------------------

TEST(Persist, FileRoundTripServesWarmHits) {
  const std::string path = temp_path("persist_warm_");
  {
    SolveService svc(single_shard_options());
    fill(svc, 5);
    SnapshotInfo info;
    std::string err;
    ASSERT_TRUE(persist::save_snapshot(path, svc.cache(),
                                       svc.subtree_cache(), &info, &err))
        << err;
    EXPECT_EQ(info.result_entries, 5u);
    // Atomic save: the temp file must not survive a successful rename.
    struct stat st;
    EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    EXPECT_EQ(static_cast<std::size_t>(st.st_size), info.bytes);
  }

  SolveService fresh(single_shard_options());
  std::string err;
  ASSERT_EQ(persist::load_snapshot(path, &fresh.cache(),
                                   &fresh.subtree_cache(), nullptr, &err),
            LoadStatus::Ok)
      << err;

  // Every model solved before the restart is a hit now — including an
  // isomorphic renamed/reordered resubmission (canonical keys persist).
  for (unsigned i = 0; i < 5; ++i) {
    const auto same = fresh.handle(
        service::Request::of_text(Problem::Cdpf, model_text(i)));
    ASSERT_TRUE(same.result.ok);
    EXPECT_TRUE(same.cache_hit) << "model " << i;
    const auto iso = fresh.handle(
        service::Request::of_text(Problem::Cdpf, permuted_model_text(i)));
    ASSERT_TRUE(iso.result.ok);
    EXPECT_TRUE(iso.cache_hit) << "permuted model " << i;
  }
  ::unlink(path.c_str());
}

TEST(Persist, MissingFileIsIoError) {
  ResultCache rc;
  SubtreeCache sc;
  std::string err;
  EXPECT_EQ(persist::load_snapshot("/nonexistent/dir/none.atcd", &rc, &sc,
                                   nullptr, &err),
            LoadStatus::IoError);
  EXPECT_FALSE(err.empty());
}

TEST(Persist, UnwritablePathFailsSaveWithError) {
  SolveService svc;
  std::string err;
  EXPECT_FALSE(persist::save_snapshot("/nonexistent/dir/none.atcd",
                                      svc.cache(), svc.subtree_cache(),
                                      nullptr, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Corruption: typed errors, never a crash, never a partial restore.
// ---------------------------------------------------------------------------

std::string valid_image() {
  SolveService svc(single_shard_options());
  fill(svc, 5);
  return persist::encode_snapshot(svc.cache(), svc.subtree_cache());
}

/// Decoding a damaged image must fail with a typed status and leave
/// the target caches exactly as they were (here: empty).
void expect_rejected(const std::string& bytes) {
  ResultCache rc;
  SubtreeCache sc;
  std::string err;
  const LoadStatus status =
      persist::decode_snapshot(bytes, &rc, &sc, nullptr, &err);
  EXPECT_NE(status, LoadStatus::Ok);
  EXPECT_FALSE(err.empty());
  EXPECT_STRNE(persist::to_string(status), "ok");
  EXPECT_EQ(rc.stats().entries, 0u);
  EXPECT_EQ(rc.stats().insertions, 0u);
  EXPECT_EQ(sc.stats().entries, 0u);
  EXPECT_EQ(sc.stats().insertions, 0u);
}

TEST(Persist, TruncationIsTypedAndAtomic) {
  const std::string img = valid_image();
  const std::size_t cuts[] = {0,  4,  8,  12,           15,
                              16, 24, 40, img.size() / 4, img.size() / 2,
                              img.size() - 1};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, img.size());
    expect_rejected(img.substr(0, cut));
  }
}

TEST(Persist, BitFlipFuzzIsTypedAndAtomic) {
  const std::string img = valid_image();
  const std::size_t iters = fuzz_iters(32);
  std::mt19937 rng(20230808);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    std::string bad = img;
    const std::size_t byte = rng() % bad.size();
    bad[byte] = static_cast<char>(bad[byte] ^ (1u << (rng() % 8)));
    expect_rejected(bad);
  }
}

TEST(Persist, VersionBumpIsRejected) {
  std::string img = valid_image();
  // u32 format version lives at bytes 8..12 (little-endian).
  img[8] = static_cast<char>(img[8] + 1);
  ResultCache rc;
  SubtreeCache sc;
  std::string err;
  EXPECT_EQ(persist::decode_snapshot(img, &rc, &sc, nullptr, &err),
            LoadStatus::BadVersion);
  EXPECT_NE(err.find("format v"), std::string::npos);
  EXPECT_EQ(rc.stats().entries, 0u);
}

TEST(Persist, BadMagicIsRejected) {
  std::string img = valid_image();
  img[0] = 'X';
  expect_rejected(img);
  expect_rejected("not a snapshot at all");
}

TEST(Persist, UnknownSectionTagIsCorrupt) {
  std::string img = valid_image();
  // First section tag sits right after the 16-byte header.
  img[16] = static_cast<char>(img[16] ^ 0x40);
  ResultCache rc;
  SubtreeCache sc;
  EXPECT_EQ(persist::decode_snapshot(img, &rc, &sc), LoadStatus::Corrupt);
  EXPECT_EQ(rc.stats().entries, 0u);
}

TEST(Persist, TrailingBytesAreCorrupt) {
  std::string img = valid_image();
  img += "extra";
  ResultCache rc;
  SubtreeCache sc;
  EXPECT_EQ(persist::decode_snapshot(img, &rc, &sc), LoadStatus::Corrupt);
  EXPECT_EQ(rc.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Budgets: a load can never talk a cache out of its configured limits.
// ---------------------------------------------------------------------------

TEST(Persist, OverBudgetLoadEvictsLeastRecentEntries) {
  // Source: 10 entries, single shard so the image's LRU->MRU order is
  // the global recency order.
  SolveService src(single_shard_options());
  fill(src, 10);
  const std::string img =
      persist::encode_snapshot(src.cache(), src.subtree_cache());

  // Target: same caches, much smaller entry budgets.
  SolveService::Options small = single_shard_options();
  small.cache.max_entries = 3;
  small.subtree.max_entries = 4;
  SolveService dst(small);
  std::string err;
  ASSERT_EQ(persist::decode_snapshot(img, &dst.cache(), &dst.subtree_cache(),
                                     nullptr, &err),
            LoadStatus::Ok)
      << err;

  // Budgets hold: the replay inserted 10 and evicted down to 3.
  EXPECT_LE(dst.cache().stats().entries, 3u);
  EXPECT_EQ(dst.cache().stats().insertions, 10u);
  EXPECT_GE(dst.cache().stats().evictions, 7u);
  EXPECT_LE(dst.subtree_cache().stats().entries, 4u);

  // The *most recent* entries survived: the last model solved before
  // the snapshot hits, the first misses.
  const auto newest =
      dst.handle(service::Request::of_text(Problem::Cdpf, model_text(9)));
  EXPECT_TRUE(newest.cache_hit);
  const auto oldest =
      dst.handle(service::Request::of_text(Problem::Cdpf, model_text(0)));
  EXPECT_FALSE(oldest.cache_hit);
}

/// Byte bookkeeping is recomputed by the receiving cache, never read
/// from the image: a restored cache reports exactly the bytes of the
/// entries it holds (no double count between the two sections, no
/// stale source-side accounting).
TEST(Persist, RestoredByteAccountingMatchesSource) {
  SolveService src(single_shard_options());
  fill(src, 6);
  const std::string img =
      persist::encode_snapshot(src.cache(), src.subtree_cache());

  SolveService dst(single_shard_options());
  ASSERT_EQ(persist::decode_snapshot(img, &dst.cache(), &dst.subtree_cache()),
            LoadStatus::Ok);
  EXPECT_EQ(dst.cache().stats().bytes, src.cache().stats().bytes);
  EXPECT_EQ(dst.cache().stats().entries, src.cache().stats().entries);
  // Subtree fronts charge vector capacity; the decoder reserves
  // exactly, so a restored cache can only be tighter than the source
  // (whose fronts carry push_back growth slack).
  EXPECT_LE(dst.subtree_cache().stats().bytes,
            src.subtree_cache().stats().bytes);
  EXPECT_GT(dst.subtree_cache().stats().bytes, 0u);
  EXPECT_EQ(dst.subtree_cache().stats().entries,
            src.subtree_cache().stats().entries);
  EXPECT_GT(dst.cache().stats().bytes, 0u);
}

}  // namespace
}  // namespace atcd
