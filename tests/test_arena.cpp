/// Arena representation and SoA front kernels (at/arena.hpp,
/// pareto/front_soa.hpp) — structural invariants, bit-exact evaluator
/// equivalence, kernel-vs-reference equivalence, and the headline
/// property test: the arena/SoA bottom-up sweep produces *byte-identical*
/// fronts to the recursive pointer sweep on random models, in both the
/// deterministic and probabilistic settings and both budget classes.
/// Those four (setting x budget) sweeps are the computational substrate
/// of all six problems: CDPF/CgD read the unbudgeted deterministic root
/// front, DgC the budgeted one, CEDPF/CgED and EDgC likewise in the
/// probabilistic setting.
///
/// Iteration count: ATCD_FUZZ_ITERS (default 25; CI's nightly fuzz-smoke
/// job raises it).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>
#include <vector>

#include "at/arena.hpp"
#include "at/structure.hpp"
#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "helpers.hpp"
#include "pareto/front_soa.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

std::size_t iters() {
  if (const char* env = std::getenv("ATCD_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 25;
}

Attack random_attack(Rng& rng, std::size_t bas) {
  Attack x(bas);
  for (std::size_t i = 0; i < bas; ++i)
    if (rng.chance(0.5)) x.set(i);
  return x;
}

double cost_sum(const std::vector<double>& cost) {
  double s = 0.0;
  for (double c : cost) s += c;
  return s;
}

::testing::AssertionResult triple_fronts_identical(
    const std::vector<AttrTriple>& a, const std::vector<AttrTriple>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "front sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t)  // exact ==, no tolerance: byte-identical claim
      return ::testing::AssertionFailure()
             << "triple " << i << " differs: (" << a[i].t.cost << ","
             << a[i].t.damage << "," << a[i].t.act << ") vs (" << b[i].t.cost
             << "," << b[i].t.damage << "," << b[i].t.act << ")";
    if (a[i].witness != b[i].witness)
      return ::testing::AssertionFailure() << "witness " << i << " differs";
  }
  return ::testing::AssertionSuccess();
}

// -- Arena structure. ------------------------------------------------------

TEST(Arena, PostOrderInvariantsOnRandomTreesAndDags) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(0xA4E1ull * 1000 + seed);
    const bool treelike = seed % 2 == 0;
    const AttackTree t = treelike
                             ? testing::random_tree(rng, 2 + rng.below(12))
                             : testing::random_dag(rng, 2 + rng.below(12));
    const ArenaTree at = ArenaTree::of(t);

    ASSERT_EQ(at.size(), t.node_count());
    EXPECT_EQ(at.bas_count(), t.bas_count());
    EXPECT_EQ(at.treelike(), t.is_treelike());
    EXPECT_EQ(at.orig_of(at.root()), t.root());

    for (std::uint32_t a = 0; a < at.size(); ++a) {
      const NodeId v = at.orig_of(a);
      EXPECT_EQ(at.arena_of(v), a);  // mappings are mutually inverse
      EXPECT_EQ(at.type(a), t.type(v));
      if (at.is_bas(a)) {
        EXPECT_EQ(at.bas_index(a), t.bas_index(v));
        EXPECT_EQ(at.child_count(a), 0u);
        EXPECT_EQ(at.subtree_size(a), 1u);
      }
      // CSR children map 1:1, in the original child order, and post-order
      // places every child strictly before its parent.
      const auto& cs = t.children(v);
      ASSERT_EQ(at.child_count(a), cs.size());
      const std::uint32_t* ac = at.child_begin(a);
      for (std::size_t i = 0; i < cs.size(); ++i) {
        EXPECT_EQ(at.orig_of(ac[i]), cs[i]);
        EXPECT_LT(ac[i], a);
      }
      if (treelike) {
        // Subtrees are contiguous: [a - size + 1, a], and a node's
        // children partition that range below a.
        std::uint32_t sum = 1;
        for (std::size_t i = 0; i < cs.size(); ++i) sum += at.subtree_size(ac[i]);
        EXPECT_EQ(at.subtree_size(a), sum);
        if (!cs.empty()) {
          EXPECT_EQ(a - at.subtree_size(a) + 1,
                    ac[0] - at.subtree_size(ac[0]) + 1);
        }
      }
    }
  }
}

TEST(Arena, RejectsUnfinalizedTrees) {
  AttackTree t;
  t.add_bas("b0");
  EXPECT_THROW(ArenaTree::of(t), ModelError);
}

// -- Evaluators: bit-exact vs the NodeId-order originals. ------------------

TEST(Arena, StructureAndDamageEvaluatorsAreBitExact) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xA4E2ull * 1000 + seed);
    const bool treelike = seed % 2 == 0;
    const CdAt m = testing::random_cdat(rng, 2 + rng.below(10), treelike);
    const ArenaTree at = ArenaTree::of(m.tree);

    std::vector<char> s;
    for (int round = 0; round < 8; ++round) {
      const Attack x = random_attack(rng, m.tree.bas_count());
      const std::vector<char> ref = evaluate_structure(m.tree, x);
      arena_structure(at, x, &s);
      ASSERT_EQ(s.size(), ref.size());
      for (std::uint32_t a = 0; a < at.size(); ++a)
        EXPECT_EQ(s[a], ref[at.orig_of(a)]);
      // Same FP addition order => the very same double, not just close.
      EXPECT_EQ(arena_total_damage(at, x, m.damage, &s), total_damage(m, x));
    }
  }
}

TEST(Arena, ProbabilisticEvaluatorsAreBitExactOnTrees) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xA4E3ull * 1000 + seed);
    const CdpAt m = testing::random_cdpat(rng, 2 + rng.below(10), true);
    const ArenaModel am = ArenaModel::of(m);

    std::vector<double> ps;
    for (int round = 0; round < 8; ++round) {
      const Attack x = random_attack(rng, m.tree.bas_count());
      const std::vector<double> ref = probabilistic_structure(m, x);
      arena_probabilistic_structure(am, x, &ps);
      ASSERT_EQ(ps.size(), ref.size());
      for (std::uint32_t a = 0; a < am.tree.size(); ++a)
        EXPECT_EQ(ps[a], ref[am.tree.orig_of(a)]);
      EXPECT_EQ(arena_expected_damage(am, x, m.damage, &ps),
                expected_damage(m, x));
    }
  }
}

TEST(Arena, ProbabilisticEvaluatorRejectsDags) {
  Rng rng(0xA4E4);
  for (int i = 0; i < 20; ++i) {
    const CdpAt m = testing::random_cdpat(rng, 6, false);
    if (m.tree.is_treelike()) continue;  // rare: sharing didn't trigger
    const ArenaModel am = ArenaModel::of(m);
    std::vector<double> ps;
    const Attack x = random_attack(rng, m.tree.bas_count());
    EXPECT_THROW(arena_probabilistic_structure(am, x, &ps), UnsupportedError);
    return;
  }
  FAIL() << "no DAG generated";
}

// -- SoA kernels vs their AoS references. ----------------------------------

std::vector<AttrTriple> random_triples(Rng& rng, std::size_t n,
                                       std::size_t nbits) {
  std::vector<AttrTriple> xs;
  for (std::size_t i = 0; i < n; ++i) {
    AttrTriple t;
    t.t.cost = double(rng.below(12));
    t.t.damage = double(rng.below(12));
    t.t.act = rng.chance(0.5) ? 1.0 : rng.uniform(0.0, 1.0);
    t.witness = random_attack(rng, nbits);
    xs.push_back(std::move(t));
  }
  return xs;
}

TEST(FrontSoa, TripleBufRoundTripsAos) {
  Rng rng(0x50A1);
  for (const std::size_t nbits : {0ull, 3ull, 64ull, 65ull, 130ull}) {
    const auto xs = random_triples(rng, 7, nbits);
    const TripleBuf buf = TripleBuf::from_aos(xs, nbits);
    EXPECT_EQ(buf.size(), xs.size());
    EXPECT_EQ(buf.wpa(), (nbits + 63) / 64);
    EXPECT_TRUE(triple_fronts_identical(buf.to_aos(nbits), xs));
  }
}

TEST(FrontSoa, PruneSoaMatchesPruneMinPointForPoint) {
  const std::size_t n = iters();
  PruneScratch scratch;
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0x50A2ull * 1000 + seed);
    const std::size_t nbits = 1 + rng.below(90);
    // Duplicate-rich input: value-dedup ("first witness wins") and the
    // same-damage staircase update paths must all fire.
    auto xs = random_triples(rng, 2 + rng.below(40), nbits);
    if (xs.size() > 4)
      for (std::size_t i = 0; i < xs.size() / 4; ++i)
        xs[rng.below(xs.size())].t = xs[rng.below(xs.size())].t;
    for (const double budget : {kNoBudget, double(rng.below(14))}) {
      const std::vector<AttrTriple> ref = prune_min(xs, budget);
      TripleBuf buf = TripleBuf::from_aos(xs, nbits);
      prune_soa(&buf, budget, &scratch);
      EXPECT_TRUE(triple_fronts_identical(buf.to_aos(nbits), ref))
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(FrontSoa, CombineSoaMatchesCrossProductReference) {
  Rng rng(0x50A3);
  const std::size_t nbits = 70;
  const auto as = random_triples(rng, 5, nbits);
  const auto bs = random_triples(rng, 4, nbits);
  const TripleBuf a = TripleBuf::from_aos(as, nbits);
  const TripleBuf b = TripleBuf::from_aos(bs, nbits);
  for (const NodeType gate : {NodeType::AND, NodeType::OR}) {
    // a-major / b-minor reference, the pointer path's combine order.
    std::vector<AttrTriple> ref;
    for (const auto& x : as)
      for (const auto& y : bs) {
        AttrTriple t;
        t.t.cost = x.t.cost + y.t.cost;
        t.t.damage = x.t.damage + y.t.damage;
        t.t.act = gate == NodeType::AND
                      ? x.t.act * y.t.act
                      : x.t.act + y.t.act - x.t.act * y.t.act;
        t.witness = x.witness;
        t.witness |= y.witness;
        ref.push_back(std::move(t));
      }
    TripleBuf out(a.wpa());
    combine_soa(a.view(), b.view(), gate, &out);
    EXPECT_TRUE(triple_fronts_identical(out.to_aos(nbits), ref));

    // Budgeted combine elides exactly the over-budget rows, keeping the
    // survivors' relative order.
    const double budget = 9.0;
    std::vector<AttrTriple> within;
    for (const auto& t : ref)
      if (t.t.cost <= budget) within.push_back(t);
    combine_soa(a.view(), b.view(), gate, &out, budget);
    EXPECT_TRUE(triple_fronts_identical(out.to_aos(nbits), within));
  }
}

TEST(FrontSoa, TripleFrontStackKeepsFrameDiscipline) {
  Rng rng(0x50A4);
  const std::size_t nbits = 10;
  const auto f0 = random_triples(rng, 3, nbits);
  const auto f1 = random_triples(rng, 1, nbits);
  const auto f2 = random_triples(rng, 4, nbits);
  TripleFrontStack s((nbits + 63) / 64);
  s.push(TripleBuf::from_aos(f0, nbits));
  s.push(TripleBuf::from_aos(f1, nbits));
  s.push(TripleBuf::from_aos(f2, nbits));
  ASSERT_EQ(s.frames(), 3u);
  EXPECT_EQ(s.from_top(0).n, f2.size());
  EXPECT_EQ(s.from_top(1).n, f1.size());
  EXPECT_EQ(s.from_top(2).n, f0.size());
  EXPECT_TRUE(triple_fronts_identical(s.top_to_aos(nbits), f2));
  s.pop(2);  // fold the top two away; f0 becomes the top again
  ASSERT_EQ(s.frames(), 1u);
  EXPECT_TRUE(triple_fronts_identical(s.top_to_aos(nbits), f0));
  s.push(TripleBuf::from_aos(f1, nbits));  // reclaimed rows get reused
  EXPECT_TRUE(triple_fronts_identical(s.top_to_aos(nbits), f1));
}

// -- 2-D packed fronts and their kernels. ----------------------------------

Front2d random_front(Rng& rng, std::size_t n, std::size_t nbits) {
  std::vector<FrontPoint> cs;
  for (std::size_t i = 0; i < n; ++i)
    cs.push_back({CdPoint{double(rng.below(20)), double(rng.below(20))},
                  random_attack(rng, nbits)});
  return Front2d::of_candidates(std::move(cs));
}

TEST(FrontSoaStore, RoundTripsThroughBytes) {
  Rng rng(0x50A5);
  FrontSoaStore store;
  std::vector<Front2d> fronts;
  fronts.push_back(Front2d{});  // empty fronts must survive the trip too
  for (int i = 0; i < 6; ++i)
    fronts.push_back(random_front(rng, 1 + rng.below(12), 5 + rng.below(80)));
  for (std::size_t i = 0; i < fronts.size(); ++i)
    EXPECT_EQ(store.add(fronts[i]), i);

  const std::string bytes = store.to_bytes();
  const auto back = FrontSoaStore::from_bytes(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == store);
  for (std::size_t i = 0; i < fronts.size(); ++i) {
    const Front2d g = back->get(static_cast<std::uint32_t>(i));
    ASSERT_EQ(g.size(), fronts[i].size());
    for (std::size_t p = 0; p < g.size(); ++p) {
      EXPECT_EQ(g[p].value.cost, fronts[i][p].value.cost);
      EXPECT_EQ(g[p].value.damage, fronts[i][p].value.damage);
      EXPECT_EQ(g[p].witness, fronts[i][p].witness);
    }
  }
}

TEST(FrontSoaStore, RejectsCorruptImages) {
  Rng rng(0x50A6);
  FrontSoaStore store;
  store.add(random_front(rng, 8, 40));
  const std::string bytes = store.to_bytes();

  EXPECT_FALSE(FrontSoaStore::from_bytes("").has_value());
  for (const std::size_t cut : {1ul, bytes.size() / 2, bytes.size() - 1})
    EXPECT_FALSE(FrontSoaStore::from_bytes(bytes.substr(0, cut)).has_value());
  EXPECT_FALSE(FrontSoaStore::from_bytes(bytes + '\0').has_value());
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x5A;
  EXPECT_FALSE(FrontSoaStore::from_bytes(bad_magic).has_value());
}

TEST(Front2d, AssumeSortedFastPathMatchesPlainOfCandidates) {
  Rng rng(0x50A7);
  for (int round = 0; round < 30; ++round) {
    auto cs = [&] {
      std::vector<FrontPoint> v;
      const std::size_t n = 1 + rng.below(25);
      for (std::size_t i = 0; i < n; ++i)
        v.push_back({CdPoint{double(rng.below(10)), double(rng.below(10))},
                     random_attack(rng, 6)});
      return v;
    }();
    auto sorted = cs;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FrontPoint& a, const FrontPoint& b) {
                       return a.value.cost != b.value.cost
                                  ? a.value.cost < b.value.cost
                                  : a.value.damage > b.value.damage;
                     });
    const Front2d plain = Front2d::of_candidates(cs);
    const Front2d fast = Front2d::of_candidates(sorted, assume_sorted);
    ASSERT_EQ(fast.size(), plain.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].value.cost, plain[i].value.cost);
      EXPECT_EQ(fast[i].value.damage, plain[i].value.damage);
      // Identical stable orders => identical "first witness wins" picks.
      EXPECT_EQ(fast[i].witness, plain[i].witness);
    }
  }
}

TEST(FrontSoa, MergeAndMinkowskiMatchOfCandidates) {
  Rng rng(0x50A8);
  for (int round = 0; round < 30; ++round) {
    const std::size_t nbits = 4 + rng.below(70);
    const Front2d a = random_front(rng, rng.below(12), nbits);
    const Front2d b = random_front(rng, rng.below(12), nbits);

    std::vector<FrontPoint> uni(a.begin(), a.end());
    uni.insert(uni.end(), b.begin(), b.end());
    const Front2d merged_ref = Front2d::of_candidates(std::move(uni));
    const Front2d merged = merge_fronts(a, b);
    ASSERT_EQ(merged.size(), merged_ref.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].value.cost, merged_ref[i].value.cost);
      EXPECT_EQ(merged[i].value.damage, merged_ref[i].value.damage);
    }

    std::vector<FrontPoint> sums;
    for (const FrontPoint& x : a)
      for (const FrontPoint& y : b) {
        FrontPoint p{CdPoint{x.value.cost + y.value.cost,
                             x.value.damage + y.value.damage},
                     x.witness};
        p.witness |= y.witness;
        sums.push_back(std::move(p));
      }
    const Front2d mink_ref = Front2d::of_candidates(std::move(sums));
    const Front2d mink = minkowski_fronts(a, b);
    ASSERT_EQ(mink.size(), mink_ref.size());
    for (std::size_t i = 0; i < mink.size(); ++i) {
      EXPECT_EQ(mink[i].value.cost, mink_ref[i].value.cost);
      EXPECT_EQ(mink[i].value.damage, mink_ref[i].value.damage);
    }
  }
}

// -- The headline property: arena sweep == pointer sweep, byte for byte. ---

TEST(Arena, SweepMatchesPointerPathByteForByte) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xA4E5ull * 1000 + seed);
    const CdpAt m = testing::random_cdpat(rng, 2 + rng.below(10), true);
    const std::vector<double> ones(m.cost.size(), 1.0);
    const double finite = rng.uniform(0.0, cost_sum(m.cost) * 1.1);

    // det/prob x {no budget, finite budget} — the substrate of all six
    // problems (CDPF/CgD, DgC, CEDPF/CgED, EDgC).
    for (const std::vector<double>* prob : {&ones, &m.prob}) {
      for (const double budget : {kNoBudget, finite}) {
        detail::BottomUpOptions arena_opt;
        arena_opt.budget = budget;
        detail::BottomUpOptions pointer_opt = arena_opt;
        pointer_opt.pointer_path = true;
        const auto ref = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                      *prob, pointer_opt);
        const auto got = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                      *prob, arena_opt);
        EXPECT_TRUE(triple_fronts_identical(got, ref))
            << "seed " << seed << " prob=" << (prob == &m.prob)
            << " budget=" << budget;
      }
    }
  }
}

TEST(Arena, SweepRejectsDagsLikeThePointerPath) {
  Rng rng(0xA4E6);
  for (int i = 0; i < 20; ++i) {
    const CdAt m = testing::random_cdat(rng, 6, false);
    if (m.tree.is_treelike()) continue;
    const std::vector<double> ones(m.cost.size(), 1.0);
    detail::BottomUpOptions arena_opt;
    detail::BottomUpOptions pointer_opt;
    pointer_opt.pointer_path = true;
    EXPECT_THROW(detail::bottom_up_root_front(m.tree, m.cost, m.damage, ones,
                                              pointer_opt),
                 UnsupportedError);
    EXPECT_THROW(detail::bottom_up_root_front(m.tree, m.cost, m.damage, ones,
                                              arena_opt),
                 UnsupportedError);
    return;
  }
  FAIL() << "no DAG generated";
}

/// Both paths must speak the SubtreeVisitor protocol identically: same
/// lookup/store sequence (pre-order lookups, post-order stores, memo-hit
/// subtrees never descended into) — otherwise session memos and the
/// cross-model subtree cache would behave differently depending on which
/// sweep populated them.
class RecordingVisitor : public detail::SubtreeVisitor {
 public:
  bool lookup(NodeId v, std::vector<AttrTriple>* out) override {
    const auto it = memo_.find(v);
    events.push_back({'L', v, it != memo_.end()});
    if (it == memo_.end()) return false;
    *out = it->second;
    return true;
  }
  void store(NodeId v, const std::vector<AttrTriple>& front) override {
    events.push_back({'S', v, false});
    memo_[v] = front;
  }

  std::vector<std::tuple<char, NodeId, bool>> events;

 private:
  std::map<NodeId, std::vector<AttrTriple>> memo_;
};

TEST(Arena, VisitorProtocolMatchesPointerPath) {
  const std::size_t n = iters();
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    Rng rng(0xA4E7ull * 1000 + seed);
    const CdAt m = testing::random_cdat(rng, 2 + rng.below(10), true);
    const std::vector<double> ones(m.cost.size(), 1.0);
    const double budget =
        seed % 2 ? rng.uniform(0.0, cost_sum(m.cost) * 1.1) : kNoBudget;

    RecordingVisitor pv, av;
    detail::BottomUpOptions pointer_opt;
    pointer_opt.budget = budget;
    pointer_opt.pointer_path = true;
    pointer_opt.visitor = &pv;
    detail::BottomUpOptions arena_opt;
    arena_opt.budget = budget;
    arena_opt.visitor = &av;

    // Cold solve then warm re-solve on each path: the warm pass must hit
    // the memo at the root (one lookup, no store) on both.
    for (int pass = 0; pass < 2; ++pass) {
      const auto ref = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                    ones, pointer_opt);
      const auto got = detail::bottom_up_root_front(m.tree, m.cost, m.damage,
                                                    ones, arena_opt);
      EXPECT_TRUE(triple_fronts_identical(got, ref)) << "seed " << seed;
    }
    EXPECT_EQ(av.events, pv.events) << "seed " << seed;
    const auto last = pv.events.back();
    EXPECT_EQ(std::get<0>(last), 'L');
    EXPECT_EQ(std::get<1>(last), m.tree.root());
    EXPECT_TRUE(std::get<2>(last));  // warm pass: root memo hit
  }
}

}  // namespace
}  // namespace atcd
