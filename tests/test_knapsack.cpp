#include "core/knapsack.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <bit>

#include "core/bilp_method.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

// ---- Thm 1: knapsack -> cd-AT. ----

TEST(KnapsackReduction, EmbeddingShape) {
  const KnapsackInstance inst{{10, 13, 7}, {3, 4, 2}, 6};
  const auto m = knapsack_to_cdat(inst);
  EXPECT_EQ(m.tree.bas_count(), 3u);
  EXPECT_EQ(m.tree.node_count(), 4u);
  EXPECT_EQ(m.tree.type(m.tree.root()), NodeType::AND);
  EXPECT_DOUBLE_EQ(m.damage[m.tree.root()], 0.0);
}

TEST(KnapsackReduction, SolvesTheTextbookInstance) {
  const KnapsackInstance inst{{10, 13, 7}, {3, 4, 2}, 6};
  const auto r = solve_knapsack_via_at(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.damage, 20.0);  // items 1 and 2
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  EXPECT_FALSE(r.witness.test(0));
  EXPECT_TRUE(r.witness.test(1));
  EXPECT_TRUE(r.witness.test(2));
}

class RandomKnapsack : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomKnapsack, AtSolutionMatchesBruteForce) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 10; ++rep) {
    KnapsackInstance inst;
    const int n = 2 + static_cast<int>(rng.below(9));
    for (int i = 0; i < n; ++i) {
      inst.value.push_back(static_cast<double>(rng.range(0, 20)));
      inst.weight.push_back(static_cast<double>(rng.range(1, 15)));
    }
    inst.capacity = static_cast<double>(rng.range(0, 4 * n));
    const auto via_at = solve_knapsack_via_at(inst);
    const auto brute = solve_knapsack_bruteforce(inst);
    ASSERT_TRUE(via_at.feasible);
    EXPECT_DOUBLE_EQ(via_at.damage, brute.damage) << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomKnapsack,
                         ::testing::Values(201, 202, 203, 204));

// ---- Exact branch-and-bound solver (the "knapsack" engine backend). ----

TEST(KnapsackBnb, MatchesBruteForceOnRandomInstances) {
  Rng rng(3301);
  for (int rep = 0; rep < 40; ++rep) {
    KnapsackInstance inst;
    const int n = 1 + static_cast<int>(rng.below(12));
    for (int i = 0; i < n; ++i) {
      inst.value.push_back(static_cast<double>(rng.range(0, 20)));
      // Occasional zero weights exercise the density sort's edge case.
      inst.weight.push_back(static_cast<double>(rng.range(0, 15)));
    }
    inst.capacity = static_cast<double>(rng.range(0, 4 * n));
    const auto bnb = solve_knapsack(inst);
    const auto brute = solve_knapsack_bruteforce(inst);
    ASSERT_TRUE(bnb.feasible);
    EXPECT_DOUBLE_EQ(bnb.damage, brute.damage) << "rep " << rep;
    // Witness must be consistent with the reported totals.
    double w = 0, v = 0;
    for (std::size_t i = 0; i < inst.value.size(); ++i)
      if (bnb.witness.test(i)) {
        w += inst.weight[i];
        v += inst.value[i];
      }
    EXPECT_DOUBLE_EQ(w, bnb.cost);
    EXPECT_DOUBLE_EQ(v, bnb.damage);
    EXPECT_LE(w, inst.capacity);
  }
}

TEST(KnapsackBnb, NegativeCapacityIsInfeasible) {
  EXPECT_FALSE(solve_knapsack({{1, 2}, {1, 1}, -1.0}).feasible);
}

TEST(KnapsackBnb, CoverMatchesBruteForceMinimum) {
  Rng rng(3302);
  for (int rep = 0; rep < 40; ++rep) {
    KnapsackInstance inst;
    const int n = 1 + static_cast<int>(rng.below(10));
    double total_value = 0;
    for (int i = 0; i < n; ++i) {
      inst.value.push_back(static_cast<double>(rng.range(0, 12)));
      inst.weight.push_back(static_cast<double>(rng.range(1, 9)));
      total_value += inst.value.back();
    }
    const double target = static_cast<double>(rng.range(0, 14));
    const auto cover = solve_knapsack_cover(inst, target);
    // Brute-force reference for min Σw s.t. Σv >= target.
    bool feasible = false;
    double best_w = 0;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
      double w = 0, v = 0;
      for (int i = 0; i < n; ++i)
        if (mask >> i & 1) {
          w += inst.weight[i];
          v += inst.value[i];
        }
      if (v < target) continue;
      if (!feasible || w < best_w) {
        feasible = true;
        best_w = w;
      }
    }
    ASSERT_EQ(cover.feasible, feasible) << "rep " << rep;
    if (feasible) {
      EXPECT_DOUBLE_EQ(cover.cost, best_w) << "rep " << rep;
      EXPECT_GE(cover.damage, target);
    }
  }
}

TEST(KnapsackBnb, CoverInfeasibleBeyondTotalValue) {
  EXPECT_FALSE(solve_knapsack_cover({{1, 2}, {1, 1}, 0}, 4.0).feasible);
  const auto zero = solve_knapsack_cover({{1, 2}, {5, 7}, 0}, 0.0);
  ASSERT_TRUE(zero.feasible);
  EXPECT_DOUBLE_EQ(zero.cost, 0.0);
}

TEST(KnapsackReduction, AlsoSolvableViaBilp) {
  // The reduction is engine-independent: Thm 7's single-objective ILP
  // solves the same embedded knapsack.
  const KnapsackInstance inst{{5, 4, 3, 2}, {4, 3, 2, 1}, 6};
  const auto m = knapsack_to_cdat(inst);
  const auto r = dgc_bilp(m, inst.capacity);
  const auto brute = solve_knapsack_bruteforce(inst);
  EXPECT_DOUBLE_EQ(r.damage, brute.damage);
}

TEST(KnapsackReduction, RejectsMalformedInstances) {
  EXPECT_THROW(knapsack_to_cdat({{1}, {1, 2}, 1}), ModelError);
  EXPECT_THROW(knapsack_to_cdat({{}, {}, 1}), ModelError);
}

// ---- Thm 2: nondecreasing functions are exactly the damage functions. ----

double submodular_example(std::uint64_t mask) {
  // f(S) = sqrt(|S|) scaled — nondecreasing but not modular.
  return 10.0 * std::sqrt(static_cast<double>(std::popcount(mask)));
}

TEST(Theorem2, ReconstructsASubmodularFunction) {
  const std::size_t n = 3;
  const auto m = nondecreasing_to_cdat(n, submodular_example,
                                       std::vector<double>(n, 1.0));
  for (std::uint64_t mask = 0; mask < (1u << n); ++mask) {
    const Attack x = Attack::from_mask(n, mask);
    EXPECT_NEAR(total_damage(m, x), submodular_example(mask), 1e-9)
        << "mask " << mask;
  }
}

TEST(Theorem2, ReconstructsRandomMonotoneFunctions) {
  Rng rng(71);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 4;
    // Random monotone table: f(S) = max over chosen base points + noise,
    // built by propagating max over subsets.
    std::vector<double> table(1u << n, 0.0);
    for (std::uint64_t mask = 1; mask < table.size(); ++mask) {
      double lower = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        if (mask >> i & 1)
          lower = std::max(lower, table[mask ^ (1ull << i)]);
      table[mask] = lower + static_cast<double>(rng.range(0, 3));
    }
    const auto m = nondecreasing_to_cdat(
        n, [&table](std::uint64_t mask) { return table[mask]; },
        std::vector<double>(n, 1.0));
    EXPECT_FALSE(m.tree.is_treelike());  // the construction is DAG-shaped
    for (std::uint64_t mask = 0; mask < table.size(); ++mask) {
      const Attack x = Attack::from_mask(n, mask);
      ASSERT_NEAR(total_damage(m, x), table[mask], 1e-9)
          << "rep " << rep << " mask " << mask;
    }
  }
}

TEST(Theorem2, CostVectorCarriesOver) {
  const auto m = nondecreasing_to_cdat(
      2, [](std::uint64_t mask) { return static_cast<double>(mask != 0); },
      {3.0, 4.0});
  EXPECT_DOUBLE_EQ(total_cost(m, Attack::from_mask(2, 0b11)), 7.0);
}

TEST(Theorem2, RejectsNonMonotoneOrBadF) {
  const std::vector<double> cost{1, 1};
  // f(0) != 0.
  EXPECT_THROW(
      nondecreasing_to_cdat(2, [](std::uint64_t) { return 1.0; }, cost),
      ModelError);
  // Decreasing somewhere.
  EXPECT_THROW(nondecreasing_to_cdat(
                   2,
                   [](std::uint64_t mask) {
                     return mask == 1 ? 2.0 : (mask == 3 ? 1.0 : 0.0);
                   },
                   cost),
               ModelError);
  // Negative.
  EXPECT_THROW(nondecreasing_to_cdat(
                   2,
                   [](std::uint64_t mask) {
                     return mask == 0 ? 0.0 : -1.0;
                   },
                   cost),
               ModelError);
  // Size constraints.
  EXPECT_THROW(
      nondecreasing_to_cdat(0, [](std::uint64_t) { return 0.0; }, {}),
      ModelError);
  EXPECT_THROW(
      nondecreasing_to_cdat(2, [](std::uint64_t) { return 0.0; }, {1.0}),
      ModelError);
}

}  // namespace
}  // namespace atcd
