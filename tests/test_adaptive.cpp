#include "adaptive/adaptive.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "helpers.hpp"

namespace atcd::adaptive {
namespace {

TEST(Adaptive, AtLeastAsGoodAsStaticEdgc) {
  // The adaptive attacker can always replay the optimal static attack,
  // so its value dominates EDgC at every budget.
  const auto m = casestudies::make_factory_probabilistic();
  for (double budget : {0.0, 1.0, 3.0, 5.0, 6.0, 100.0}) {
    const auto adaptive = adaptive_edgc(m, budget);
    const auto static_opt = edgc_bottom_up(m, budget);
    EXPECT_GE(adaptive.expected_damage, static_opt.damage - 1e-9)
        << "budget " << budget;
  }
}

TEST(Adaptive, StrictGainOnAnOrOfUncertainOptions) {
  // OR(v1, v2), c = 1 each, p = 0.5, d(root) = 1, budget 1... no gap at
  // budget 1.  With budget 2 the static attacker commits both up front
  // (E = 0.75); the adaptive one attempts v1 and only spends on v2 after
  // a failure — same E here (costs don't matter once affordable), BUT
  // with a third spending opportunity the saved budget pays off:
  // OR(v1,v2) plus an independent BAS v3 with its own damage, budget 2.
  CdpAt m;
  const auto v1 = m.tree.add_bas("v1");
  const auto v2 = m.tree.add_bas("v2");
  const auto v3 = m.tree.add_bas("v3");
  const auto w = m.tree.add_gate(NodeType::OR, "w", {v1, v2});
  const auto root = m.tree.add_gate(NodeType::OR, "root", {w, v3});
  m.tree.set_root(root);
  m.tree.finalize();
  m.cost = {1.0, 1.0, 1.0};
  m.prob = {0.5, 0.5, 1.0};
  m.damage.assign(m.tree.node_count(), 0.0);
  m.damage[w] = 1.0;
  m.damage[v3] = 0.6;
  m.damage[root] = 0.0;

  const double budget = 2.0;
  const auto adaptive = adaptive_edgc(m, budget);
  const auto static_opt = edgc_enumerative(m, budget);
  // Static: best pair is {v1 or v2, v3}: 0.5 + 0.6 = 1.1
  // (vs {v1,v2}: 0.75).  Adaptive: try v1; on success (0.5) take v3
  // (1 + 0.6); on failure take v2 (0.5·1) or v3 (0.6 -> better).
  // E = 0.5·1.6 + 0.5·0.6 = 1.1... same.  Try v3 first is forced-success:
  // then v1: E = 0.6 + 0.5 = 1.1.  Hmm — with these numbers adaptivity
  // ties; make v3's damage depend on w NOT succeeding being the fallback:
  // instead test the documented general inequality plus exact value.
  EXPECT_NEAR(static_opt.damage, 1.1, 1e-9);
  EXPECT_GE(adaptive.expected_damage, static_opt.damage - 1e-9);
}

TEST(Adaptive, StrictGainExample) {
  // AND(a, b) with d on the AND: a cheap unreliable, b expensive reliable.
  // Budget only covers a + b.  Static must commit both: E = p_a·1.
  // Adaptive tries a first and SKIPS b when a failed — same E...  the
  // gain needs an alternative use of the saved budget:
  //   root = OR( AND(a, b), c ) with d(AND)=10, d(c)=4,
  //   costs a=1, b=3, c=3, budget 4, p_a = 0.5, p_b = p_c = 1.
  // Static options: {a,b}: 0.5·10 = 5; {a,c}: 0.5·0 + 4 = 4; {c}: 4.
  //   best static = 5.
  // Adaptive: try a (cost 1).  Success -> b (total 4): damage 10.
  //   Failure -> c (total 4): damage 4.  E = 0.5·10 + 0.5·4 = 7 > 5.
  CdpAt m;
  const auto a = m.tree.add_bas("a");
  const auto b = m.tree.add_bas("b");
  const auto c = m.tree.add_bas("c");
  const auto g = m.tree.add_gate(NodeType::AND, "g", {a, b});
  const auto root = m.tree.add_gate(NodeType::OR, "root", {g, c});
  m.tree.set_root(root);
  m.tree.finalize();
  m.cost = {1.0, 3.0, 3.0};
  m.prob = {0.5, 1.0, 1.0};
  m.damage.assign(m.tree.node_count(), 0.0);
  m.damage[g] = 10.0;
  m.damage[c] = 4.0;

  const auto static_opt = edgc_enumerative(m, 4.0);
  EXPECT_NEAR(static_opt.damage, 5.0, 1e-9);
  const auto adaptive = adaptive_edgc(m, 4.0);
  EXPECT_NEAR(adaptive.expected_damage, 7.0, 1e-9);
  // The optimal first move is the cheap probe `a`.
  ASSERT_NE(adaptive.first_move, kNoNode);
  EXPECT_EQ(m.tree.name(adaptive.first_move), "a");
}

TEST(Adaptive, DeterministicStepsCollapseToStatic) {
  // With p = 1 everywhere there is nothing to react to: adaptive equals
  // the deterministic DgC value.
  const auto det = casestudies::make_factory();
  CdpAt m{det.tree, det.cost, det.damage, {1.0, 1.0, 1.0}};
  for (double budget : {0.0, 2.0, 5.0, 6.0}) {
    EXPECT_NEAR(adaptive_edgc(m, budget).expected_damage,
                dgc_enumerative(det, budget).damage, 1e-12)
        << budget;
  }
}

TEST(Adaptive, ZeroBudgetMeansNoMoves) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto r = adaptive_edgc(m, 0.0);
  EXPECT_DOUBLE_EQ(r.expected_damage, 0.0);
  EXPECT_EQ(r.first_move, kNoNode);
}

TEST(Adaptive, MatchesBruteForceOnRandomModels) {
  // Cross-check against an independent brute-force expectimax written
  // directly over the recursion (no memo, fresh code path).
  struct Brute {
    const CdpAt& m;
    const CdAt det;
    double budget;
    double go(std::uint64_t att, std::uint64_t suc, double spent) const {
      double best = total_damage(
          det, Attack::from_mask(m.tree.bas_count(), suc));
      for (std::size_t b = 0; b < m.tree.bas_count(); ++b) {
        if (att >> b & 1 || spent + m.cost[b] > budget) continue;
        const std::uint64_t bit = std::uint64_t{1} << b;
        const double v =
            m.prob[b] * go(att | bit, suc | bit, spent + m.cost[b]) +
            (1 - m.prob[b]) * go(att | bit, suc, spent + m.cost[b]);
        best = std::max(best, v);
      }
      return best;
    }
  };
  Rng rng(777);
  for (int it = 0; it < 8; ++it) {
    const auto m = atcd::testing::random_cdpat(rng, 5, it % 2 == 0);
    const double budget = static_cast<double>(rng.range(0, 25));
    const Brute brute{m, {m.tree, m.cost, m.damage}, budget};
    EXPECT_NEAR(adaptive_edgc(m, budget).expected_damage,
                brute.go(0, 0, 0.0), 1e-9)
        << "it " << it;
  }
}

TEST(Adaptive, SimulationConvergesToTheValue) {
  const auto m = casestudies::make_factory_probabilistic();
  const double budget = 5.0;
  const auto r = adaptive_edgc(m, budget);
  Rng rng(31337);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    sum += simulate_adaptive_policy(m, budget, rng);
  EXPECT_NEAR(sum / n, r.expected_damage, 2.0);
}

TEST(Adaptive, CapacityGuard) {
  Rng rng(5);
  const auto m = atcd::testing::random_cdpat(rng, 16, true);
  EXPECT_THROW(adaptive_edgc(m, 10.0, /*max_bas=*/15), CapacityError);
}

}  // namespace
}  // namespace atcd::adaptive
