/// Cross-engine property tests: on random models, all applicable engines
/// must produce identical fronts and identical single-objective optima.
/// This is the repository's main correctness net — the enumerative
/// baseline is trusted as the oracle (it is a direct transcription of the
/// paper's Definitions 2-6).

#include <gtest/gtest.h>

#include "bdd/at_bdd.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "core/problems.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::fronts_equal;

struct PropCase {
  std::uint64_t seed;
  std::size_t n_bas;
};

void PrintTo(const PropCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " n_bas=" << c.n_bas;
}

class TreeDet : public ::testing::TestWithParam<PropCase> {};

TEST_P(TreeDet, BottomUpEqualsEnumerationAndBilp) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 4; ++rep) {
    const auto m = atcd::testing::random_cdat(rng, GetParam().n_bas, true);
    const auto oracle = cdpf_enumerative(m);
    ASSERT_TRUE(fronts_equal(cdpf_bottom_up(m), oracle)) << "rep " << rep;
    ASSERT_TRUE(fronts_equal(cdpf_bilp(m), oracle)) << "rep " << rep;
  }
}

TEST_P(TreeDet, DgcAgreesAcrossEnginesAndBudgets) {
  Rng rng(GetParam().seed ^ 0xD6C);
  const auto m = atcd::testing::random_cdat(rng, GetParam().n_bas, true);
  for (double budget : {0.0, 3.0, 7.5, 15.0, 1000.0}) {
    const auto oracle = dgc_enumerative(m, budget);
    const auto bu = dgc_bottom_up(m, budget);
    const auto bilp = dgc_bilp(m, budget);
    ASSERT_TRUE(oracle.feasible);
    EXPECT_NEAR(bu.damage, oracle.damage, 1e-9) << "budget " << budget;
    EXPECT_NEAR(bilp.damage, oracle.damage, 1e-7) << "budget " << budget;
    // Witness consistency.
    EXPECT_LE(bu.cost, budget);
    EXPECT_NEAR(total_damage(m, bu.witness), bu.damage, 1e-9);
  }
}

TEST_P(TreeDet, CgdAgreesAcrossEnginesAndThresholds) {
  Rng rng(GetParam().seed ^ 0xC6D);
  const auto m = atcd::testing::random_cdat(rng, GetParam().n_bas, true);
  const double dmax = dgc_enumerative(m, 1e18).damage;
  for (double frac : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    const double thr = frac * dmax;
    const auto oracle = cgd_enumerative(m, thr);
    const auto bu = cgd_bottom_up(m, thr);
    const auto bilp = cgd_bilp(m, thr);
    ASSERT_EQ(bu.feasible, oracle.feasible) << "thr " << thr;
    ASSERT_EQ(bilp.feasible, oracle.feasible) << "thr " << thr;
    if (oracle.feasible) {
      EXPECT_NEAR(bu.cost, oracle.cost, 1e-9) << "thr " << thr;
      EXPECT_NEAR(bilp.cost, oracle.cost, 1e-7) << "thr " << thr;
      EXPECT_GE(bu.damage, thr - 1e-9);
    }
  }
  // Above the maximum: everyone infeasible.
  EXPECT_FALSE(cgd_bottom_up(m, dmax + 1).feasible);
  EXPECT_FALSE(cgd_bilp(m, dmax + 1).feasible);
  EXPECT_FALSE(cgd_enumerative(m, dmax + 1).feasible);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeDet,
                         ::testing::Values(PropCase{301, 4}, PropCase{302, 6},
                                           PropCase{303, 8}, PropCase{304, 9},
                                           PropCase{305, 11}));

class DagDet : public ::testing::TestWithParam<PropCase> {};

TEST_P(DagDet, BilpEqualsEnumeration) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 4; ++rep) {
    const auto m = atcd::testing::random_cdat(rng, GetParam().n_bas, false);
    ASSERT_TRUE(fronts_equal(cdpf_bilp(m), cdpf_enumerative(m)))
        << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DagDet,
                         ::testing::Values(PropCase{401, 5}, PropCase{402, 7},
                                           PropCase{403, 8},
                                           PropCase{404, 10}));

class TreeProb : public ::testing::TestWithParam<PropCase> {};

TEST_P(TreeProb, BottomUpEqualsEnumerationAndBdd) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 3; ++rep) {
    const auto m = atcd::testing::random_cdpat(rng, GetParam().n_bas, true);
    const auto oracle = cedpf_enumerative(m);
    ASSERT_TRUE(fronts_equal(cedpf_bottom_up(m), oracle, 1e-7))
        << "rep " << rep;
    ASSERT_TRUE(fronts_equal(cedpf_bdd(m), oracle, 1e-7)) << "rep " << rep;
  }
}

TEST_P(TreeProb, EdgcAndCgedAgreeWithEnumeration) {
  Rng rng(GetParam().seed ^ 0xED6C);
  const auto m = atcd::testing::random_cdpat(rng, GetParam().n_bas, true);
  for (double budget : {0.0, 5.0, 12.0, 100.0}) {
    EXPECT_NEAR(edgc_bottom_up(m, budget).damage,
                edgc_enumerative(m, budget).damage, 1e-9)
        << "budget " << budget;
  }
  const double dmax = edgc_enumerative(m, 1e18).damage;
  for (double frac : {0.3, 0.7, 1.0}) {
    const auto a = cged_bottom_up(m, frac * dmax);
    const auto b = cged_enumerative(m, frac * dmax);
    ASSERT_EQ(a.feasible, b.feasible);
    if (a.feasible) EXPECT_NEAR(a.cost, b.cost, 1e-9) << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeProb,
                         ::testing::Values(PropCase{501, 4}, PropCase{502, 6},
                                           PropCase{503, 8}));

class DagProb : public ::testing::TestWithParam<PropCase> {};

TEST_P(DagProb, BddEnumerationIsInternallyConsistent) {
  // The open-problem engine: cross-check the BDD expected damage against
  // the actualization enumerator on the front's own witnesses.
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 2; ++rep) {
    const auto m = atcd::testing::random_cdpat(rng, GetParam().n_bas, false);
    const AtBdd compiled(m.tree);
    const auto f = cedpf_bdd(m);
    for (const auto& p : f) {
      ASSERT_NEAR(p.value.damage, expected_damage_exact(m, p.witness), 1e-9);
      ASSERT_NEAR(p.value.cost, total_cost(m, p.witness), 1e-12);
    }
    // Fronts are antichains.
    for (std::size_t i = 0; i < f.size(); ++i)
      for (std::size_t j = 0; j < f.size(); ++j)
        if (i != j) ASSERT_FALSE(dominates(f[j].value, f[i].value));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DagProb,
                         ::testing::Values(PropCase{601, 5},
                                           PropCase{602, 7}));

// ---- Structural invariants that hold on every model. ----

class Invariants : public ::testing::TestWithParam<PropCase> {};

TEST_P(Invariants, FrontsAreAntichainsContainingTheEmptyAttack) {
  Rng rng(GetParam().seed);
  const auto m =
      atcd::testing::random_cdat(rng, GetParam().n_bas, GetParam().seed % 2);
  const auto f = cdpf(m);
  ASSERT_FALSE(f.empty());
  // First point is always the empty attack at (0, 0).
  EXPECT_DOUBLE_EQ(f[0].value.cost, 0.0);
  // Strictly increasing in both coordinates.
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GT(f[i].value.cost, f[i - 1].value.cost);
    EXPECT_GT(f[i].value.damage, f[i - 1].value.damage);
  }
}

TEST_P(Invariants, DgcIsMonotoneInTheBudget) {
  Rng rng(GetParam().seed ^ 0x1234);
  const auto m =
      atcd::testing::random_cdat(rng, GetParam().n_bas, GetParam().seed % 2);
  double prev = -1;
  for (double budget : {0.0, 2.0, 5.0, 10.0, 20.0, 100.0}) {
    const auto r = dgc(m, budget);
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.damage, prev);
    prev = r.damage;
  }
}

TEST_P(Invariants, MoreProbableBassNeverReduceExpectedDamage) {
  Rng rng(GetParam().seed ^ 0x9999);
  auto m = atcd::testing::random_cdpat(rng, GetParam().n_bas, true);
  const Attack x = Attack::from_mask(
      GetParam().n_bas, rng.below(std::uint64_t{1} << GetParam().n_bas));
  const double before = expected_damage(m, x);
  for (auto& p : m.prob) p = std::min(1.0, p + 0.1);
  EXPECT_GE(expected_damage(m, x), before - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Invariants,
                         ::testing::Values(PropCase{701, 5}, PropCase{702, 6},
                                           PropCase{703, 7}, PropCase{704, 8},
                                           PropCase{705, 9}));

}  // namespace
}  // namespace atcd
