#include "core/bilp_method.hpp"

#include <gtest/gtest.h>

#include "casestudies/dataserver.hpp"
#include "casestudies/factory.hpp"
#include "core/bottom_up.hpp"
#include "core/enumerative.hpp"
#include "helpers.hpp"

namespace atcd {
namespace {

using atcd::testing::front_is;
using atcd::testing::fronts_equal;

TEST(BilpMethod, ProgramShapeMatchesTheorem6) {
  const auto m = casestudies::make_factory();
  const auto bp = make_bilp(m);
  // One binary per node.
  EXPECT_EQ(bp.base.num_vars(), 5);
  EXPECT_EQ(bp.integer_vars.size(), 5u);
  // AND dr contributes 2 rows (one per child); OR ps contributes 1.
  EXPECT_EQ(bp.base.num_rows(), 3u);
  // obj1 = -damage over all nodes; obj2 = cost over BASs only.
  EXPECT_DOUBLE_EQ(bp.obj1[*m.tree.find("ps")], -200.0);
  EXPECT_DOUBLE_EQ(bp.obj2[*m.tree.find("ca")], 1.0);
  EXPECT_DOUBLE_EQ(bp.obj2[*m.tree.find("dr")], 0.0);
}

TEST(BilpMethod, FactoryFrontViaBilp) {
  const auto f = cdpf_bilp(casestudies::make_factory());
  EXPECT_TRUE(front_is(f, {{0, 0}, {1, 200}, {3, 210}, {5, 310}}));
}

TEST(BilpMethod, AgreesWithBottomUpOnTreelikeModels) {
  Rng rng(41);
  for (int it = 0; it < 8; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 7, /*treelike=*/true);
    EXPECT_TRUE(fronts_equal(cdpf_bilp(m), cdpf_bottom_up(m)))
        << "iteration " << it;
  }
}

TEST(BilpMethod, AgreesWithEnumerationOnDags) {
  Rng rng(42);
  for (int it = 0; it < 8; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 7, /*treelike=*/false);
    EXPECT_TRUE(fronts_equal(cdpf_bilp(m), cdpf_enumerative(m)))
        << "iteration " << it;
  }
}

TEST(BilpMethod, DgcOnTheDataServer) {
  const auto m = casestudies::make_dataserver();
  // Below the cheapest damaging attack.
  EXPECT_DOUBLE_EQ(dgc_bilp(m, 249.0).damage, 0.0);
  // Fig. 6c points as budget thresholds.
  EXPECT_DOUBLE_EQ(dgc_bilp(m, 250.0).damage, 24.0);
  EXPECT_DOUBLE_EQ(dgc_bilp(m, 567.0).damage, 24.0);
  EXPECT_DOUBLE_EQ(dgc_bilp(m, 568.0).damage, 60.0);
  EXPECT_DOUBLE_EQ(dgc_bilp(m, 5000.0).damage, 82.8);
  // Negative budget: infeasible by convention.
  EXPECT_FALSE(dgc_bilp(m, -1.0).feasible);
}

TEST(BilpMethod, CgdOnTheDataServer) {
  const auto m = casestudies::make_dataserver();
  EXPECT_DOUBLE_EQ(cgd_bilp(m, 1.0).cost, 250.0);
  EXPECT_DOUBLE_EQ(cgd_bilp(m, 24.0).cost, 250.0);
  EXPECT_DOUBLE_EQ(cgd_bilp(m, 24.1).cost, 568.0);
  EXPECT_DOUBLE_EQ(cgd_bilp(m, 82.8).cost, 1281.0);
  EXPECT_FALSE(cgd_bilp(m, 83.0).feasible);
}

TEST(BilpMethod, DgcCgdMatchEnumerationOnRandomDags) {
  Rng rng(43);
  for (int it = 0; it < 6; ++it) {
    const auto m = atcd::testing::random_cdat(rng, 7, /*treelike=*/false);
    const double budget = static_cast<double>(rng.range(0, 30));
    const auto a = dgc_bilp(m, budget);
    const auto b = dgc_enumerative(m, budget);
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_NEAR(a.damage, b.damage, 1e-7) << "budget " << budget;

    const double thr = static_cast<double>(rng.range(0, 40));
    const auto c = cgd_bilp(m, thr);
    const auto d = cgd_enumerative(m, thr);
    ASSERT_EQ(c.feasible, d.feasible) << "thr " << thr;
    if (c.feasible) EXPECT_NEAR(c.cost, d.cost, 1e-7) << "thr " << thr;
  }
}

// Regression: hardened models put cost coefficients of ~1e6..1e10 into
// the BILP next to ±1 structure rows.  Before the simplex equilibrated
// its tableau (lp.cpp), rounding noise at that scale swamped the
// absolute pivot tolerances and these solves span until the iteration
// limit — the analysis module capped its hardening factor at 1e4 to
// dodge it.  The solves must now terminate and agree with enumeration.
TEST(BilpMethod, SolvesHardenedDagModelsAtLargeCostFactors) {
  Rng rng(44);
  for (const double factor : {1e6, 1e9}) {
    for (int it = 0; it < 3; ++it) {
      auto m = atcd::testing::random_cdat(rng, 7, /*treelike=*/false);
      // Harden every other BAS: cost scaled by the factor, exactly what
      // defense::harden does with HardeningSemantics{factor, 0}.
      double budget = 0.0;
      for (std::size_t i = 0; i < m.cost.size(); ++i) {
        if (i % 2 == 0) {
          m.cost[i] = std::max(1.0, m.cost[i]) * factor;
        } else {
          budget += m.cost[i];
        }
      }
      const auto a = dgc_bilp(m, budget);
      const auto b = dgc_enumerative(m, budget);
      ASSERT_EQ(a.feasible, b.feasible) << "factor " << factor;
      EXPECT_NEAR(a.damage, b.damage, 1e-7)
          << "factor " << factor << " iteration " << it;
    }
  }
}

TEST(BilpMethod, WitnessesSatisfyTheReportedValues) {
  const auto m = casestudies::make_dataserver();
  const auto f = cdpf_bilp(m);
  for (const auto& p : f) {
    EXPECT_DOUBLE_EQ(total_cost(m, p.witness), p.value.cost);
    EXPECT_DOUBLE_EQ(total_damage(m, p.witness), p.value.damage);
  }
}

TEST(BilpMethod, StatsAreReported) {
  BilpRunStats stats;
  (void)cdpf_bilp(casestudies::make_factory(), &stats);
  EXPECT_GT(stats.ilp_solves, 0u);
  EXPECT_GT(stats.bnb_nodes, 0u);
}

}  // namespace
}  // namespace atcd
