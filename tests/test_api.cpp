/// Tests for the versioned typed API facade (src/api/): the JSON wire
/// codec (round-trip byte-stability, strict malformed-input handling),
/// the legacy line-protocol transcoder, line/JSON behavioral parity
/// through the shared dispatcher, pipelined out-of-order serving with
/// request ids, the unified stats counters, the structured shutdown
/// responses, and the CLI exit-code mapping.
///
/// The round-trip property and the malformed tables scale with
/// ATCD_FUZZ_ITERS (default 60; CI's nightly job raises it).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "api/line.hpp"
#include "api/server.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace atcd {
namespace {

using namespace atcd::api;

std::size_t fuzz_iters() {
  if (const char* env = std::getenv("ATCD_FUZZ_ITERS"))
    return std::strtoull(env, nullptr, 10);
  return 60;
}

const char* kDetModel =
    "bas a cost=1 damage=2\n"
    "bas b cost=4 damage=1\n"
    "or r = a, b damage=10\n";

const char* kProbModel =
    "bas a cost=1 damage=2 prob=0.5\n"
    "bas b cost=4 damage=1 prob=0.25\n"
    "or r = a, b damage=10\n";

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

// ---------------------------------------------------------------------------
// JSON value layer.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsAndNesting) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true,"
                          "\"d\":null},\"e\":\"x\\ny\"}",
                          &v, &err))
      << err;
  ASSERT_EQ(v.kind, json::Value::Kind::Object);
  const json::Value* a = v.find("a");
  ASSERT_TRUE(a && a->kind == json::Value::Kind::Array);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, 2.5);
  EXPECT_EQ(a->items[2].number, -300.0);
  const json::Value* e = v.find("e");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->string, "x\ny");
  // dump() is canonical and reparseable.
  const std::string dumped = json::dump(v);
  json::Value v2;
  ASSERT_TRUE(json::parse(dumped, &v2, &err)) << err;
  EXPECT_EQ(json::dump(v2), dumped);
}

TEST(Json, EscapesRoundTrip) {
  json::Value v;
  v.kind = json::Value::Kind::String;
  v.string = "quote\" back\\ nl\n tab\t ctl\x01 utf\xC3\xA9";
  const std::string dumped = json::dump(v);
  json::Value v2;
  std::string err;
  ASSERT_TRUE(json::parse(dumped, &v2, &err)) << err;
  EXPECT_EQ(v2.string, v.string);
  EXPECT_EQ(json::dump(v2), dumped);
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",           "[1,2",        "{\"a\":}",
      "nullx",     "tru",         "01x",         "\"unterminated",
      "\"\\u12\"", "\"\\ud800\"", "{\"a\":1,}",  "[1 2]",
      "{\"a\" 1}", "1 2",         "\"a\"junk",   "{\"a\":1}}",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(text, &v, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
  // Depth cap: garbage nesting cannot blow the stack.
  std::string deep(512, '[');
  json::Value v;
  std::string err;
  EXPECT_FALSE(json::parse(deep, &v, &err));
}

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, WireStringsRoundTrip) {
  for (ErrorCode c :
       {ErrorCode::Ok, ErrorCode::MalformedRequest,
        ErrorCode::UnsupportedVersion, ErrorCode::UnknownOperation,
        ErrorCode::InvalidArgument, ErrorCode::ParseError,
        ErrorCode::ModelError, ErrorCode::NoSuchSession, ErrorCode::Capacity,
        ErrorCode::SolverFailure, ErrorCode::Internal}) {
    const auto back = parse_error_code(to_string(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(parse_error_code("nope").has_value());
}

TEST(ErrorTaxonomy, ExitCodesAreDeterministic) {
  EXPECT_EQ(exit_code(ErrorCode::Ok), 0);
  // Usage-class failures exit 2.
  EXPECT_EQ(exit_code(ErrorCode::MalformedRequest), 2);
  EXPECT_EQ(exit_code(ErrorCode::UnknownOperation), 2);
  EXPECT_EQ(exit_code(ErrorCode::InvalidArgument), 2);
  EXPECT_EQ(exit_code(ErrorCode::NoSuchSession), 2);
  // Model-class failures exit 3.
  EXPECT_EQ(exit_code(ErrorCode::ParseError), 3);
  EXPECT_EQ(exit_code(ErrorCode::ModelError), 3);
  // Solver-class failures exit 4.
  EXPECT_EQ(exit_code(ErrorCode::SolverFailure), 4);
  EXPECT_EQ(exit_code(ErrorCode::Capacity), 4);
  EXPECT_EQ(exit_code(ErrorCode::Internal), 4);
}

// ---------------------------------------------------------------------------
// Request round-trip property: encode -> decode -> encode is
// byte-stable over random requests (the nightly CI check).
// ---------------------------------------------------------------------------

std::string random_text(Rng& rng, std::size_t max_len) {
  static const char* pool[] = {"a", "b",  "Z", "0",  "_",  " ",  ":",
                               "\n", "\t", "\"", "\\", "{",  "}",
                               "\xC3\xA9" /* é */, "\xE2\x82\xAC" /* € */,
                               "\x01", "\x1f"};
  std::string out;
  const std::size_t len = rng.below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i)
    out += pool[rng.below(sizeof pool / sizeof pool[0])];
  return out;
}

double random_double(Rng& rng) {
  switch (rng.below(5)) {
    case 0: return 0.0;
    case 1: return static_cast<double>(rng.range(-1000, 1000));
    case 2: return rng.uniform(-10.0, 10.0);
    case 3: return rng.uniform() * 1e-9;
    default: return rng.uniform() * 1e12;
  }
}

engine::Problem random_problem(Rng& rng) {
  const engine::Problem all[] = {engine::Problem::Cdpf, engine::Problem::Dgc,
                                 engine::Problem::Cgd, engine::Problem::Cedpf,
                                 engine::Problem::Edgc, engine::Problem::Cged};
  return all[rng.below(6)];
}

SolveSpec random_spec(Rng& rng) {
  SolveSpec s;
  s.problem = random_problem(rng);
  if (rng.chance(0.5)) {
    s.bound = random_double(rng);
    s.has_bound = true;
  }
  if (rng.chance(0.4)) s.engine = random_text(rng, 12);
  s.model = random_text(rng, 64);
  return s;
}

Request random_request(Rng& rng) {
  Request req;
  if (rng.chance(0.8)) req.id = random_text(rng, 16);
  switch (rng.below(13)) {
    case 0: req.op = SolveRequest{random_spec(rng)}; break;
    case 1: {
      BatchRequest b;
      if (rng.chance(0.5)) b.threads = rng.below(16);
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) b.items.push_back(random_spec(rng));
      req.op = std::move(b);
      break;
    }
    case 2: req.op = SessionOpenRequest{random_spec(rng)}; break;
    case 3: {
      SessionEditRequest e;
      e.session = rng.below(1u << 20);
      e.op = static_cast<EditOp>(rng.below(5));
      e.target = random_text(rng, 12);
      if (e.op == EditOp::SetCost || e.op == EditOp::SetProb ||
          e.op == EditOp::SetDamage)
        e.value = random_double(rng);
      if (e.op == EditOp::ReplaceSubtree) e.model = random_text(rng, 40);
      req.op = std::move(e);
      break;
    }
    case 4: req.op = SessionResolveRequest{rng.below(1u << 20)}; break;
    case 5: req.op = SessionCloseRequest{rng.below(1u << 20)}; break;
    case 6: {
      AnalyzeSweepRequest a;
      a.problem = random_problem(rng);
      const std::size_t n = rng.below(3);
      for (std::size_t i = 0; i < n; ++i)
        a.axes.push_back(random_text(rng, 20));
      if (rng.chance(0.5)) {
        a.bound = random_double(rng);
        a.has_bound = true;
      }
      if (rng.chance(0.4)) a.engine = random_text(rng, 8);
      a.model = random_text(rng, 64);
      req.op = std::move(a);
      break;
    }
    case 7: {
      AnalyzeSensitivityRequest a;
      a.problem = random_problem(rng);
      if (rng.chance(0.5)) {
        a.step = rng.uniform(1e-6, 10.0);
        a.has_step = true;
      }
      if (rng.chance(0.4)) a.engine = random_text(rng, 8);
      a.model = random_text(rng, 64);
      req.op = std::move(a);
      break;
    }
    case 8: {
      AnalyzePortfolioRequest a;
      a.problem = random_problem(rng);
      const std::size_t n = rng.below(3);
      for (std::size_t i = 0; i < n; ++i)
        a.defenses.push_back(random_text(rng, 20));
      if (rng.chance(0.5)) {
        a.budget = rng.uniform(0.0, 1e6);
        a.has_budget = true;
      }
      if (rng.chance(0.5)) {
        a.bound = random_double(rng);
        a.has_bound = true;
      }
      if (rng.chance(0.4)) a.engine = random_text(rng, 8);
      a.model = random_text(rng, 64);
      req.op = std::move(a);
      break;
    }
    case 9: req.op = StatsRequest{}; break;
    case 10: req.op = SnapshotSaveRequest{random_text(rng, 24)}; break;
    case 11: req.op = SnapshotLoadRequest{random_text(rng, 24)}; break;
    default: req.op = ShutdownRequest{}; break;
  }
  return req;
}

TEST(JsonCodec, RequestRoundTripIsByteStable) {
  Rng rng(20260729);
  const std::size_t iters = fuzz_iters();
  for (std::size_t i = 0; i < iters; ++i) {
    const Request req = random_request(rng);
    const std::string once = encode_request(req);
    const Decoded<Request> dec = decode_request(once);
    ASSERT_EQ(dec.code, ErrorCode::Ok)
        << "iter " << i << ": " << dec.error << "\n" << once;
    EXPECT_EQ(dec.value.id, req.id);
    EXPECT_EQ(dec.value.op.index(), req.op.index());
    const std::string twice = encode_request(dec.value);
    ASSERT_EQ(once, twice) << "iter " << i;
  }
}

TEST(JsonCodec, NumericIdsAreAccepted) {
  const Decoded<Request> dec =
      decode_request("{\"v\":1,\"id\":42,\"op\":\"stats\"}");
  ASSERT_EQ(dec.code, ErrorCode::Ok) << dec.error;
  EXPECT_EQ(dec.value.id, "42");
}

// ---------------------------------------------------------------------------
// Response round-trip through the codec.
// ---------------------------------------------------------------------------

TEST(JsonCodec, ResponseRoundTripIsByteStable) {
  Dispatcher d;
  std::vector<Request> reqs;
  Request r;
  r.id = "front";
  r.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", kDetModel}};
  reqs.push_back(r);
  r.id = "attack";
  r.op = SolveRequest{{engine::Problem::Dgc, 2.0, true, "", kDetModel}};
  reqs.push_back(r);
  r.id = "err";
  r.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", "garbage!"}};
  reqs.push_back(r);
  r.id = "open";
  r.op = SessionOpenRequest{{engine::Problem::Dgc, 5.0, true, "", kDetModel}};
  reqs.push_back(r);
  r.id = "edit";
  r.op = SessionEditRequest{1, EditOp::SetCost, "a", 3.0, ""};
  reqs.push_back(r);
  r.id = "resolve";
  r.op = SessionResolveRequest{1};
  reqs.push_back(r);
  r.id = "close";
  r.op = SessionCloseRequest{1};
  reqs.push_back(r);
  r.id = "sweep";
  {
    AnalyzeSweepRequest a;
    a.problem = engine::Problem::Dgc;
    a.axes = {"cost:a:1:3:3"};
    a.bound = 5.0;
    a.has_bound = true;
    a.model = kDetModel;
    r.op = std::move(a);
  }
  reqs.push_back(r);
  r.id = "batch";
  {
    BatchRequest b;
    b.items.push_back({engine::Problem::Cdpf, 0.0, false, "", kDetModel});
    b.items.push_back({engine::Problem::Cdpf, 0.0, false, "", "broken"});
    r.op = std::move(b);
  }
  reqs.push_back(r);
  r.id = "stats";
  r.op = StatsRequest{};
  reqs.push_back(r);

  for (const Request& req : reqs) {
    const Response resp = d.dispatch(req);
    for (const bool with_micros : {false, true}) {
      const std::string once = encode_response(resp, with_micros);
      const Decoded<Response> dec = decode_response(once);
      ASSERT_EQ(dec.code, ErrorCode::Ok)
          << req.id << ": " << dec.error << "\n" << once;
      EXPECT_EQ(dec.value.id, resp.id);
      EXPECT_EQ(dec.value.code, resp.code);
      const std::string twice = encode_response(dec.value, with_micros);
      EXPECT_EQ(once, twice) << req.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Line/JSON parity: every operation reachable over the legacy line
// protocol round-trips through the v1 JSON envelope and produces the
// identical solver result on a fresh dispatcher.
// ---------------------------------------------------------------------------

/// Transcodes a full line-protocol script into typed requests (stopping
/// at quit), exactly as serve() would.
std::vector<Request> transcode_script(const std::string& script) {
  std::istringstream in(script);
  std::vector<Request> out;
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = trimmed(raw);
    if (const auto h = line.find('#'); h != std::string::npos)
      line = trimmed(line.substr(0, h));
    if (line.empty()) continue;
    const LineRequest lr = read_line_request(line, in);
    EXPECT_EQ(lr.code, ErrorCode::Ok) << line << ": " << lr.error;
    if (lr.code != ErrorCode::Ok) continue;
    if (std::holds_alternative<ShutdownRequest>(lr.request.op)) break;
    out.push_back(lr.request);
  }
  return out;
}

TEST(Parity, EveryLineOpIsJsonReachableWithIdenticalResults) {
  const std::string model = kDetModel;
  const std::string prob_model = kProbModel;
  std::string script;
  script += "solve cdpf\n" + model + "end\n";
  script += "solve dgc bound=2 engine=enumerative\n" + model + "end\n";
  script += "solve cedpf\n" + prob_model + "end\n";
  script += "open dgc bound=5\n" + model + "end\n";
  script += "edit 1 set-cost a 3\n";
  script += "edit 1 toggle-defense b\n";
  script += "resolve 1\n";
  script += "edit 1 replace-subtree b\nbas b2 cost=2 damage=4\nend\n";
  script += "resolve 1\n";
  script += "close 1\n";
  script += "analyze sweep dgc axis=cost:a:1:3:3 bound=5\n" + model + "end\n";
  script += "analyze sensitivity cdpf step=0.1\n" + model + "end\n";
  script +=
      "analyze portfolio dgc defense=cam:1:a defense=lock:2:b budget=3 "
      "bound=5\n" +
      model + "end\n";
  script += "stats\n";
  script += "quit\n";

  const std::vector<Request> line_reqs = transcode_script(script);
  ASSERT_EQ(line_reqs.size(), 14u);

  // Side A dispatches the line-transcoded requests; side B first pushes
  // each request through the JSON envelope (encode -> decode) and then
  // dispatches on its own fresh dispatcher.  Byte-identical responses
  // (timing excluded) prove the envelope loses nothing.
  Dispatcher line_side;
  Dispatcher json_side;
  for (std::size_t i = 0; i < line_reqs.size(); ++i) {
    const Response a = line_side.dispatch(line_reqs[i]);
    const Decoded<Request> dec = decode_request(encode_request(line_reqs[i]));
    ASSERT_EQ(dec.code, ErrorCode::Ok) << dec.error;
    const Response b = json_side.dispatch(dec.value);
    EXPECT_EQ(encode_response(a, false), encode_response(b, false))
        << "request " << i;
    EXPECT_EQ(a.code, ErrorCode::Ok) << "request " << i << ": " << a.error;
  }

  // Spot-check substance: the first request really produced a front.
  Dispatcher fresh;
  const Response front = fresh.dispatch(line_reqs[0]);
  ASSERT_TRUE(std::holds_alternative<SolvePayload>(front.payload));
  EXPECT_GT(std::get<SolvePayload>(front.payload).points.size(), 1u);
}

// ---------------------------------------------------------------------------
// Malformed-request handling: every bad input yields a typed error,
// never a crash or a silent drop, and the serving loops keep going.
// ---------------------------------------------------------------------------

TEST(Malformed, JsonRequestsGetTypedErrors) {
  const struct {
    const char* text;
    ErrorCode expect;
  } table[] = {
      {"", ErrorCode::MalformedRequest},
      {"{", ErrorCode::MalformedRequest},
      {"null", ErrorCode::MalformedRequest},
      {"[]", ErrorCode::MalformedRequest},
      {"\"solve\"", ErrorCode::MalformedRequest},
      {"{}", ErrorCode::MalformedRequest},
      {"{\"op\":\"stats\"}", ErrorCode::MalformedRequest},
      {"{\"v\":1}", ErrorCode::MalformedRequest},
      {"{\"v\":\"1\",\"op\":\"stats\"}", ErrorCode::UnsupportedVersion},
      {"{\"v\":2,\"op\":\"stats\"}", ErrorCode::UnsupportedVersion},
      {"{\"v\":1,\"op\":\"frobnicate\"}", ErrorCode::UnknownOperation},
      {"{\"v\":1,\"op\":\"solve\"}", ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"solve\",\"problem\":\"zzz\",\"model\":\"\"}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"solve\",\"problem\":\"cdpf\",\"model\":7}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"solve\",\"problem\":\"cdpf\",\"model\":\"\","
       "\"bound\":\"x\"}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"solve\",\"problem\":\"cdpf\",\"model\":\"\","
       "\"junk\":1}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"edit\",\"session\":-1,\"edit\":\"set-cost\","
       "\"target\":\"a\",\"value\":1}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"edit\",\"session\":1,\"edit\":\"warp\","
       "\"target\":\"a\"}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"edit\",\"session\":1,\"edit\":\"set-cost\","
       "\"target\":\"a\"}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"edit\",\"session\":1,\"edit\":\"toggle-defense\","
       "\"target\":\"a\",\"value\":3}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"resolve\"}", ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"sweep\",\"problem\":\"dgc\",\"model\":\"\"}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"sensitivity\",\"problem\":\"cdpf\","
       "\"model\":\"\",\"step\":-1}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"portfolio\",\"problem\":\"dgc\",\"model\":\"\","
       "\"defenses\":[1]}",
       ErrorCode::InvalidArgument},
      {"{\"v\":1,\"op\":\"quit\",\"id\":[1]}", ErrorCode::MalformedRequest},
  };
  for (const auto& row : table) {
    const Decoded<Request> dec = decode_request(row.text);
    EXPECT_EQ(dec.code, row.expect) << row.text << " -> " << dec.error;
    EXPECT_NE(dec.code, ErrorCode::Ok) << row.text;
  }
}

TEST(Malformed, DispatcherValidatesArgumentsOnEveryTransport) {
  // The wire codecs reject these too, but CLI and programmatic
  // api::Request callers reach the dispatcher directly — semantic
  // argument validation must live behind every transport.
  Dispatcher d;
  Request r;
  {
    AnalyzeSensitivityRequest a;
    a.problem = engine::Problem::Cdpf;
    a.step = -1.0;
    a.has_step = true;
    a.model = kDetModel;
    r.op = std::move(a);
  }
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::InvalidArgument);
  {
    AnalyzePortfolioRequest a;
    a.problem = engine::Problem::Dgc;
    a.defenses = {"cam:1:a"};
    a.budget = -3.0;
    a.has_budget = true;
    a.model = kDetModel;
    r.op = std::move(a);
  }
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::InvalidArgument);
  r.op = SolveRequest{{engine::Problem::Dgc,
                       std::numeric_limits<double>::quiet_NaN(), true, "",
                       kDetModel}};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::InvalidArgument);
  // An infinite solve bound stays legal: an unbounded DgC budget is a
  // meaningful instance (the cache simply declines such keys).
  r.op = SolveRequest{{engine::Problem::Dgc,
                       std::numeric_limits<double>::infinity(), true, "",
                       kDetModel}};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
}

TEST(Malformed, NonFiniteNumbersNeverSilentlyReachTheWire) {
  // encode_request renders a non-finite optional number as JSON null;
  // the decoder then rejects the field with a typed error instead of
  // the server silently optimizing under an inverted value.
  AnalyzePortfolioRequest a;
  a.problem = engine::Problem::Dgc;
  a.defenses = {"cam:1:a"};
  a.budget = std::numeric_limits<double>::infinity();
  a.has_budget = true;
  a.model = kDetModel;
  Request r;
  r.op = std::move(a);
  const std::string wire = encode_request(r);
  EXPECT_NE(wire.find("\"budget\":null"), std::string::npos) << wire;
  const Decoded<Request> dec = decode_request(wire);
  EXPECT_EQ(dec.code, ErrorCode::InvalidArgument);
}

TEST(Malformed, FuzzedJsonNeverCrashesTheDecoder) {
  // Truncations and mutations of a valid request: every outcome must be
  // a clean decode or a typed error — never a crash.
  const std::string valid =
      "{\"v\":1,\"id\":\"7\",\"op\":\"solve\",\"problem\":\"cdpf\","
      "\"bound\":1.5,\"model\":\"bas a cost=1\\n\"}";
  for (std::size_t cut = 0; cut < valid.size(); ++cut)
    (void)decode_request(valid.substr(0, cut));
  Rng rng(42);
  const std::size_t iters = fuzz_iters();
  for (std::size_t i = 0; i < iters; ++i) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t k = 0; k < flips; ++k)
      mutated[rng.below(mutated.size())] =
          static_cast<char>(rng.below(256));
    (void)decode_request(mutated);  // must not crash or throw
  }
  SUCCEED();
}

TEST(Malformed, JsonServeAnswersEveryLineAndKeepsGoing) {
  Dispatcher d;
  std::string script;
  script += "{\n";  // malformed: multi-line JSON is not a request
  script += "garbage\n";
  script += "{\"v\":1,\"id\":\"bad\",\"op\":\"nope\"}\n";
  script += "{\"v\":9,\"id\":\"ver\",\"op\":\"stats\"}\n";
  // A valid request after the garbage still works.
  Request solve;
  solve.id = "ok1";
  solve.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", kDetModel}};
  script += encode_request(solve) + "\n";
  // Model-level failures are typed, not crashes.
  Request bad_model;
  bad_model.id = "pe";
  bad_model.op =
      SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", "garbage!"}};
  script += encode_request(bad_model) + "\n";
  Request bad_decor;
  bad_decor.id = "me";
  bad_decor.op = SolveRequest{
      {engine::Problem::Cdpf, 0.0, false, "", "bas a cost=-1 damage=2\n"}};
  script += encode_request(bad_decor) + "\n";
  script += "{\"v\":1,\"id\":\"q\",\"op\":\"quit\"}\n";

  std::istringstream in(script);
  std::ostringstream out;
  const std::size_t handled = serve_json(in, out, d);
  EXPECT_EQ(handled, 3u);  // the three dispatched solves

  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 8u);  // one response per input line + shutdown
  std::map<std::string, ErrorCode> by_id;
  for (const std::string& line : lines) {
    const Decoded<Response> dec = decode_response(line);
    ASSERT_EQ(dec.code, ErrorCode::Ok) << line;
    by_id[dec.value.id] = dec.value.code;
  }
  EXPECT_EQ(by_id["bad"], ErrorCode::UnknownOperation);
  EXPECT_EQ(by_id["ver"], ErrorCode::UnsupportedVersion);
  EXPECT_EQ(by_id["ok1"], ErrorCode::Ok);
  EXPECT_EQ(by_id["pe"], ErrorCode::ParseError);
  EXPECT_EQ(by_id["me"], ErrorCode::ModelError);
  EXPECT_EQ(by_id["q"], ErrorCode::Ok);  // the shutdown response
  // The last line is the structured shutdown echoing the quit id.
  const Decoded<Response> last = decode_response(lines.back());
  ASSERT_TRUE(std::holds_alternative<ShutdownPayload>(last.value.payload));
  EXPECT_EQ(last.value.id, "q");
  EXPECT_EQ(std::get<ShutdownPayload>(last.value.payload).handled, 3u);
}

TEST(Malformed, LineServeAnswersEveryRequestAndKeepsGoing) {
  service::SolveService svc;
  std::istringstream in(
      "frobnicate\n"
      "solve\n"
      "bas a cost=1\n"
      "end\n"
      "solve dgc bound=abc\n"
      "bas a cost=1\n"
      "end\n"
      "edit nonsense\n"
      "resolve xyz\n"
      "analyze sweep dgc axis=zzz bound=1\n"
      "bas a cost=1 damage=1\n"
      "end\n"
      "analyze portfolio cdpf defense=cam:1:a\n"
      "bas a cost=1 damage=1\n"
      "end\n"
      "solve cdpf\n"  // still alive after all of the above
      "bas a cost=1 damage=2\n"
      "end\n"
      "quit\n");
  std::ostringstream out;
  const std::size_t handled = service::serve(in, out, svc);
  EXPECT_EQ(handled, 1u);
  const std::string o = out.str();
  EXPECT_NE(o.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(o.find("requires a problem name"), std::string::npos);
  EXPECT_NE(o.find("bad bound 'bound=abc'"), std::string::npos);
  EXPECT_NE(o.find("edit takes: <session-id> <op> ..."), std::string::npos);
  EXPECT_NE(o.find("resolve takes: <session-id>"), std::string::npos);
  EXPECT_NE(o.find("bad axis"), std::string::npos);
  EXPECT_NE(o.find("analyze portfolio takes dgc or edgc"),
            std::string::npos);
  EXPECT_NE(o.find("kind=front"), std::string::npos);
  EXPECT_NE(o.find("kind=shutdown\nhandled=1\n"), std::string::npos);
  std::size_t dones = 0;
  for (auto pos = o.find("done\n"); pos != std::string::npos;
       pos = o.find("done\n", pos + 1))
    ++dones;
  EXPECT_EQ(dones, 9u);  // 7 errors + 1 solve + shutdown
}

// ---------------------------------------------------------------------------
// Pipelined serving: out-of-order completion matched by request id,
// byte-identical across thread counts.
// ---------------------------------------------------------------------------

std::string pipelined_script(std::size_t n, std::vector<std::string>* ids) {
  // Distinct models (distinct costs) so the responses are genuinely
  // different and cache dispositions are deterministic (all misses).
  std::vector<std::string> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.id = "req-" + std::to_string(i);
    ids->push_back(r.id);
    std::ostringstream model;
    model << "bas a cost=" << (i + 1) << " damage=2\n"
          << "bas b cost=4 damage=1\nor r = a, b damage=10\n";
    r.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", model.str()}};
    reqs.push_back(encode_request(r));
  }
  // Shuffle deterministically so arrival order != id order.
  Rng rng(7);
  for (std::size_t i = reqs.size(); i > 1; --i)
    std::swap(reqs[i - 1], reqs[rng.below(i)]);
  std::string script;
  for (const std::string& r : reqs) script += r + "\n";
  script += "{\"v\":1,\"id\":\"quit\",\"op\":\"quit\"}\n";
  return script;
}

TEST(Pipelined, ResponsesMatchIdsAndAreThreadCountInvariant) {
  const std::size_t n = 16;
  std::vector<std::string> ids;
  const std::string script = pipelined_script(n, &ids);

  std::vector<std::vector<std::string>> sorted_runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    Dispatcher d;
    std::istringstream in(script);
    std::ostringstream out;
    JsonServeOptions opt;
    opt.threads = threads;
    const std::size_t handled = serve_json(in, out, d, opt);
    EXPECT_EQ(handled, n);

    std::vector<std::string> lines = lines_of(out.str());
    ASSERT_EQ(lines.size(), n + 1);
    // The shutdown response is always last and echoes the quit id.
    const Decoded<Response> last = decode_response(lines.back());
    ASSERT_EQ(last.code, ErrorCode::Ok);
    EXPECT_EQ(last.value.id, "quit");
    ASSERT_TRUE(std::holds_alternative<ShutdownPayload>(last.value.payload));
    lines.pop_back();

    // Every id answered exactly once, every response ok.
    std::map<std::string, std::size_t> seen;
    for (const std::string& line : lines) {
      const Decoded<Response> dec = decode_response(line);
      ASSERT_EQ(dec.code, ErrorCode::Ok) << line;
      EXPECT_EQ(dec.value.code, ErrorCode::Ok);
      ++seen[dec.value.id];
    }
    for (const std::string& id : ids) EXPECT_EQ(seen[id], 1u) << id;

    std::sort(lines.begin(), lines.end());
    sorted_runs.push_back(std::move(lines));
  }
  // Sorted by id, the bytes are identical for every --threads setting.
  EXPECT_EQ(sorted_runs[0], sorted_runs[1]);
  EXPECT_EQ(sorted_runs[0], sorted_runs[2]);
}

TEST(Pipelined, ConcurrentMixedOpsAllAnswered) {
  // Sessions, solves, analyses, stats and malformed lines interleaved
  // under a worker pool — exercised under tsan in CI.
  Dispatcher d;
  std::string script;
  Request r;
  r.id = "open";
  r.op = SessionOpenRequest{{engine::Problem::Dgc, 5.0, true, "", kDetModel}};
  script += encode_request(r) + "\n";
  for (int i = 0; i < 6; ++i) {
    r.id = "s" + std::to_string(i);
    std::ostringstream model;
    model << "bas a cost=" << (i + 1) << " damage=2\nbas b cost=4 damage=1\n"
          << "or r = a, b damage=10\n";
    r.op = SolveRequest{{engine::Problem::Dgc, 3.0, true, "", model.str()}};
    script += encode_request(r) + "\n";
  }
  r.id = "an";
  {
    AnalyzeSweepRequest a;
    a.problem = engine::Problem::Dgc;
    a.axes = {"cost:a:1:2:2"};
    a.bound = 5.0;
    a.has_bound = true;
    a.model = kDetModel;
    r.op = std::move(a);
  }
  script += encode_request(r) + "\n";
  r.id = "st";
  r.op = StatsRequest{};
  script += encode_request(r) + "\n";
  script += "not json\n";
  script += "{\"v\":1,\"op\":\"quit\"}\n";

  std::istringstream in(script);
  std::ostringstream out;
  JsonServeOptions opt;
  opt.threads = 4;
  serve_json(in, out, d, opt);
  const std::vector<std::string> lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), 11u);  // 9 requests + 1 malformed + shutdown
  for (const std::string& line : lines)
    EXPECT_EQ(decode_response(line).code, ErrorCode::Ok) << line;
}

// ---------------------------------------------------------------------------
// Stats: one source of truth across every protocol path.
// ---------------------------------------------------------------------------

TEST(Stats, DispatcherCountersCoverEveryPath) {
  Dispatcher d;
  Request r;
  r.op = SolveRequest{{engine::Problem::Dgc, 5.0, true, "", kDetModel}};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  r.op = SessionOpenRequest{{engine::Problem::Dgc, 5.0, true, "", kDetModel}};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  r.op = SessionEditRequest{1, EditOp::SetCost, "a", 2.0, ""};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  r.op = SessionResolveRequest{1};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  r.op = SessionCloseRequest{1};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  {
    AnalyzePortfolioRequest a;
    a.problem = engine::Problem::Dgc;
    a.defenses = {"cam:1:a", "lock:2:b"};
    a.budget = 3.0;
    a.has_budget = true;
    a.bound = 5.0;
    a.has_bound = true;
    a.model = kDetModel;
    r.op = std::move(a);
  }
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::Ok);
  r.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", "broken"}};
  EXPECT_EQ(d.dispatch(r).code, ErrorCode::ParseError);

  const StatsPayload s = d.stats();
  EXPECT_EQ(s.api.requests, 7u);
  EXPECT_EQ(s.api.solves, 3u);  // solve + resolve + failed solve
  EXPECT_EQ(s.api.session_opens, 1u);
  EXPECT_EQ(s.api.session_edits, 1u);
  EXPECT_EQ(s.api.session_resolves, 1u);
  EXPECT_EQ(s.api.session_closes, 1u);
  EXPECT_EQ(s.api.analyses, 1u);
  EXPECT_EQ(s.api.errors, 1u);
  // The drift fix: the portfolio's derived solves ran against the
  // service result cache, so the cache counters reflect analysis work
  // (the old protocol bypassed them entirely).
  EXPECT_GT(s.cache.insertions, 1u);

  // The same numbers surface over both wire formats.
  r.op = StatsRequest{};
  const Response resp = d.dispatch(r);
  const std::string json_line = encode_response(resp, false);
  const Decoded<Response> dec = decode_response(json_line);
  ASSERT_EQ(dec.code, ErrorCode::Ok);
  const auto& p = std::get<StatsPayload>(dec.value.payload);
  EXPECT_EQ(p.api.requests, 8u);  // + the stats request itself
  EXPECT_EQ(p.api.analyses, 1u);
  const std::string line_block = format_line(resp);
  EXPECT_NE(line_block.find("api_requests=8\n"), std::string::npos)
      << line_block;
  EXPECT_NE(line_block.find("api_analyses=1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured shutdown in both modes, on quit and on EOF.
// ---------------------------------------------------------------------------

TEST(Shutdown, LineModeAnswersOnEofAndQuit) {
  for (const bool with_quit : {false, true}) {
    service::SolveService svc;
    std::string script = "solve cdpf\n";
    script += kDetModel;
    script += "end\n";
    if (with_quit) script += "quit\n";
    std::istringstream in(script);
    std::ostringstream out;
    const std::size_t handled = service::serve(in, out, svc);
    EXPECT_EQ(handled, 1u);
    EXPECT_NE(out.str().find("ok=true\nkind=shutdown\nhandled=1\ndone\n"),
              std::string::npos)
        << out.str();
  }
}

TEST(Shutdown, JsonModeAnswersOnEof) {
  Dispatcher d;
  Request r;
  r.id = "x";
  r.op = SolveRequest{{engine::Problem::Cdpf, 0.0, false, "", kDetModel}};
  std::istringstream in(encode_request(r) + "\n");  // no quit: EOF ends it
  std::ostringstream out;
  serve_json(in, out, d);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  const Decoded<Response> last = decode_response(lines.back());
  ASSERT_EQ(last.code, ErrorCode::Ok);
  EXPECT_TRUE(last.value.id.empty());  // EOF has no request id to echo
  ASSERT_TRUE(std::holds_alternative<ShutdownPayload>(last.value.payload));
  EXPECT_EQ(std::get<ShutdownPayload>(last.value.payload).handled, 1u);
}

// ---------------------------------------------------------------------------
// Batch dispatch.
// ---------------------------------------------------------------------------

TEST(Batch, ItemsAreIndexAlignedAndFailIndependently) {
  Dispatcher d;
  BatchRequest b;
  b.threads = 4;
  for (int i = 0; i < 5; ++i) {
    std::ostringstream model;
    model << "bas a cost=" << (i + 1) << " damage=2\nbas b cost=4 damage=1\n"
          << "or r = a, b damage=10\n";
    b.items.push_back(
        {engine::Problem::Dgc, static_cast<double>(i + 1), true, "",
         model.str()});
  }
  b.items.push_back({engine::Problem::Cdpf, 0.0, false, "", "broken"});
  Request r;
  r.op = std::move(b);
  const Response resp = d.dispatch(r);
  ASSERT_EQ(resp.code, ErrorCode::Ok);
  const auto& items = std::get<BatchPayload>(resp.payload).items;
  ASSERT_EQ(items.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(items[static_cast<std::size_t>(i)].code, ErrorCode::Ok);
    // Item i solved its own model: budget i+1 affords exactly cost a.
    EXPECT_TRUE(items[static_cast<std::size_t>(i)].solve.feasible);
  }
  EXPECT_EQ(items[5].code, ErrorCode::ParseError);

  // Batch results are identical to one-by-one dispatch.
  Dispatcher solo;
  for (int i = 0; i < 5; ++i) {
    Request one;
    std::ostringstream model;
    model << "bas a cost=" << (i + 1) << " damage=2\nbas b cost=4 damage=1\n"
          << "or r = a, b damage=10\n";
    one.op = SolveRequest{{engine::Problem::Dgc, static_cast<double>(i + 1),
                           true, "", model.str()}};
    const Response single = solo.dispatch(one);
    ASSERT_EQ(single.code, ErrorCode::Ok);
    Response as_item;
    as_item.payload = items[static_cast<std::size_t>(i)].solve;
    EXPECT_EQ(encode_response(as_item, false),
              encode_response(single, false));
  }
}

// ---------------------------------------------------------------------------
// Serve-loop hardening regressions: the bounded pipelining queue, the
// input-line / decoder size caps, and write-failure detection.  Each of
// these fails on the pre-hardening serve loop.
// ---------------------------------------------------------------------------

/// Transport double with an instant reader: hands out scripted lines as
/// fast as the loop asks, records how many reads ran ahead of writes.
class CountingTransport final : public LineTransport {
 public:
  explicit CountingTransport(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  ReadStatus read_line(std::string& line, std::size_t) override {
    const std::size_t outstanding = reads_ - writes_.load();
    max_outstanding_ = std::max(max_outstanding_, outstanding);
    if (reads_ >= lines_.size()) return ReadStatus::Eof;
    line = lines_[reads_++];
    return ReadStatus::Line;
  }

  bool write_line(const std::string&) override {
    writes_.fetch_add(1);
    return true;
  }

  std::size_t max_outstanding() const { return max_outstanding_; }

 private:
  std::vector<std::string> lines_;
  std::size_t reads_ = 0;
  std::atomic<std::size_t> writes_{0};
  std::size_t max_outstanding_ = 0;
};

TEST(Hardening, PipelineQueueIsBoundedUnderFastReaderSlowWorkers) {
  // 64 distinct-model solves (all cache misses, real solver work) fed by
  // an instant reader.  The unbounded pre-fix loop let the reader race
  // the whole script into the queue; the bounded loop blocks it at
  // max_queue, so reads can never run more than queue depth + in-flight
  // workers ahead of completions.
  std::vector<std::string> script;
  for (int i = 0; i < 64; ++i) {
    Request r;
    r.id = std::to_string(i);
    SolveRequest s;
    s.spec = {engine::Problem::Dgc, 5.0, true, "",
              "bas a cost=" + std::to_string(1 + i) +
                  " damage=2\nbas b cost=4 damage=1\n"
                  "or r = a, b damage=10\n"};
    r.op = std::move(s);
    script.push_back(encode_request(r));
  }
  Dispatcher d;
  CountingTransport t(script);
  JsonServeOptions opt;
  opt.threads = 2;
  opt.max_queue = 3;
  serve_lines(t, d, opt);
  EXPECT_LE(t.max_outstanding(), opt.max_queue + opt.threads)
      << "reader ran ahead of the bounded queue";
}

TEST(Hardening, OversizedLineGetsTypedCapacityAndServeContinues) {
  JsonServeOptions opt;
  opt.max_line_bytes = 128;
  Request ok;
  ok.id = "ok";
  SolveRequest s;
  s.spec = {engine::Problem::Cdpf, 0.0, false, "", kDetModel};
  ok.op = std::move(s);
  const std::string ok_line = encode_request(ok);
  ASSERT_LE(ok_line.size(), opt.max_line_bytes);

  // An overlong line, a comment of exactly the cap (must pass the cap
  // and then be skipped), and a normal request.
  std::istringstream in(std::string(4096, 'x') + "\n" +
                        "#" + std::string(127, 'c') + "\n" + ok_line + "\n");
  std::ostringstream out;
  Dispatcher d;
  serve_json(in, out, d, opt);

  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);  // capacity error, solve, shutdown
  const Decoded<Response> cap = decode_response(lines[0]);
  ASSERT_EQ(cap.code, ErrorCode::Ok);
  EXPECT_EQ(cap.value.code, ErrorCode::Capacity);
  const Decoded<Response> solved = decode_response(lines[1]);
  EXPECT_EQ(solved.value.code, ErrorCode::Ok);
  EXPECT_EQ(solved.value.id, "ok");
  EXPECT_TRUE(std::holds_alternative<ShutdownPayload>(
      decode_response(lines[2]).value.payload));
}

TEST(Hardening, DecoderRejectsOversizedPayloads) {
  // The decoder's own entry-point cap guards transports that hand over
  // pre-assembled buffers (HTTP bodies) without a line-length check.
  const Decoded<Request> dec =
      decode_request(std::string(kMaxDecodeBytes + 1, 'x'));
  EXPECT_EQ(dec.code, ErrorCode::Capacity);
  EXPECT_EQ(decode_request("{\"v\":1,\"op\":\"stats\"}").code, ErrorCode::Ok);
}

/// Transport double whose sink is dead from the start: every write
/// fails, reads count how far the loop kept going.
class DeadSinkTransport final : public LineTransport {
 public:
  explicit DeadSinkTransport(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  ReadStatus read_line(std::string& line, std::size_t) override {
    if (reads_ >= lines_.size()) return ReadStatus::Eof;
    line = lines_[reads_++];
    return ReadStatus::Line;
  }

  bool write_line(const std::string&) override {
    write_attempts_.fetch_add(1);
    return false;
  }

  std::size_t reads() const { return reads_; }
  std::size_t write_attempts() const { return write_attempts_.load(); }

 private:
  std::vector<std::string> lines_;
  std::size_t reads_ = 0;
  std::atomic<std::size_t> write_attempts_{0};
};

TEST(Hardening, WriteFailureStopsTheLoopAndIsCounted) {
  // The pre-fix loop ignored emit failures and kept dispatching the
  // whole script into a dead sink.  Now the first failed write ends the
  // connection: no further dispatches, no shutdown write into the void,
  // and the failure is visible in atcd_net_write_errors_total.
  std::vector<std::string> script;
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.id = std::to_string(i);
    SolveRequest s;
    s.spec = {engine::Problem::Cdpf, 0.0, false, "", kDetModel};
    r.op = std::move(s);
    script.push_back(encode_request(r));
  }
  Dispatcher d;
  DeadSinkTransport t(script);
  serve_lines(t, d, {});
  EXPECT_EQ(t.write_attempts(), 1u) << "loop kept writing after sink death";
  EXPECT_LT(t.reads(), script.size()) << "loop kept reading after sink death";
  EXPECT_EQ(d.metrics().counter("atcd_net_write_errors_total").value(), 1u);
}

}  // namespace
}  // namespace atcd
