#include "robust/robust.hpp"

#include <gtest/gtest.h>

#include "casestudies/factory.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/problems.hpp"
#include "helpers.hpp"

namespace atcd::robust {
namespace {

TEST(Robust, WidenBuildsSymmetricIntervals) {
  const auto m = casestudies::make_factory();
  const auto im = widen(m, 0.2);
  const auto ca = m.tree.bas_index(*m.tree.find("ca"));
  EXPECT_DOUBLE_EQ(im.cost[ca].lo, 0.8);
  EXPECT_DOUBLE_EQ(im.cost[ca].hi, 1.2);
  EXPECT_DOUBLE_EQ(im.damage[*m.tree.find("ps")].lo, 160.0);
  EXPECT_DOUBLE_EQ(im.damage[*m.tree.find("ps")].hi, 240.0);
  EXPECT_THROW(widen(m, 1.5), ModelError);
  EXPECT_THROW(widen(m, -0.1), ModelError);
}

TEST(Robust, ZeroSlackReproducesThePointModel) {
  const auto m = casestudies::make_factory();
  const auto rf = robust_cdpf(widen(m, 0.0));
  EXPECT_TRUE(atcd::testing::fronts_equal(rf.optimistic, cdpf(m)));
  EXPECT_TRUE(atcd::testing::fronts_equal(rf.pessimistic, cdpf(m)));
}

TEST(Robust, ValidationRejectsBadIntervals) {
  auto im = widen(casestudies::make_factory(), 0.1);
  im.cost[0] = {2.0, 1.0};  // lo > hi
  EXPECT_THROW(im.validate(), ModelError);
  im.cost[0] = {-1.0, 1.0};
  EXPECT_THROW(im.validate(), ModelError);
}

TEST(Robust, CornerModelsBracketEverySampledRealization) {
  Rng rng(91);
  const auto base = atcd::testing::random_cdat(rng, 8, /*treelike=*/true);
  const auto im = widen(base, 0.3);
  const auto rd = robust_dgc(im, 12.0);
  EXPECT_LE(rd.damage_lo, rd.damage_hi);
  for (int rep = 0; rep < 20; ++rep) {
    const auto realized = im.sample(rng);
    const double d = dgc(realized, 12.0).damage;
    EXPECT_GE(d, rd.damage_lo - 1e-9) << rep;
    EXPECT_LE(d, rd.damage_hi + 1e-9) << rep;
  }
}

TEST(Robust, SampledFrontsLieBetweenTheEnvelopes) {
  Rng rng(92);
  const auto base = atcd::testing::random_cdat(rng, 7, /*treelike=*/true);
  const auto im = widen(base, 0.25);
  const auto rf = robust_cdpf(im);
  for (int rep = 0; rep < 10; ++rep) {
    const auto realized = im.sample(rng);
    const auto f = cdpf(realized);
    // Every realized point is covered (dominated-or-equalled) by some
    // pessimistic-front point...
    for (const auto& p : f) {
      bool below_pess = false;
      for (const auto& q : rf.pessimistic)
        below_pess |= q.value.cost <= p.value.cost + 1e-9 &&
                      q.value.damage >= p.value.damage - 1e-9;
      EXPECT_TRUE(below_pess);
    }
    // ...and every optimistic-front point is covered by some realized
    // point (the optimistic front is a lower envelope: its witness
    // attack only gets cheaper and more damaging in any realization).
    for (const auto& q : rf.optimistic) {
      bool covered = false;
      for (const auto& p : f)
        covered |= p.value.cost <= q.value.cost + 1e-9 &&
                   p.value.damage >= q.value.damage - 1e-9;
      EXPECT_TRUE(covered);
    }
  }
}

TEST(Robust, WorksOnDagsThroughTheBilpEngine) {
  Rng rng(93);
  const auto base = atcd::testing::random_cdat(rng, 6, /*treelike=*/false);
  const auto rf = robust_cdpf(widen(base, 0.2));
  EXPECT_FALSE(rf.optimistic.empty());
  EXPECT_FALSE(rf.pessimistic.empty());
  // Max damages are ordered.
  EXPECT_LE(rf.optimistic.points().back().value.damage,
            rf.pessimistic.points().back().value.damage + 1e-9);
}

// ---- Refund extension (Sec. VIII). ----

TEST(Refund, GammaZeroIsTheBaseModel) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto r = refund_model(m, 0.0);
  EXPECT_EQ(r.cost, m.cost);
}

TEST(Refund, FullRefundChargesOnlySuccesses) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto r = refund_model(m, 1.0);
  const auto ca = m.tree.bas_index(*m.tree.find("ca"));
  // E[cost of ca] = c * p = 1 * 0.2.
  EXPECT_DOUBLE_EQ(r.cost[ca], 0.2);
}

TEST(Refund, ExpectedCostInterpolatesLinearly) {
  const auto m = casestudies::make_factory_probabilistic();
  const auto pb = m.tree.bas_index(*m.tree.find("pb"));
  // c=3, p=0.4: gamma=0.5 -> 3*(0.4 + 0.6*0.5) = 2.1.
  EXPECT_DOUBLE_EQ(refund_model(m, 0.5).cost[pb], 2.1);
  EXPECT_THROW(refund_model(m, 1.5), ModelError);
}

// ---- Sensitivity (tornado) analysis. ----

TEST(Sensitivity, IdentifiesTheLoadBearingDecorations) {
  const auto m = casestudies::make_factory();
  // Budget 2: the optimal attack is {ca} doing 200 (the ps damage).
  const auto sens = dgc_sensitivity(m, 2.0, 0.1);
  ASSERT_FALSE(sens.empty());
  // The top swing must involve ps's damage (200 scales to 180/220) —
  // nothing else moves the optimum this much.
  EXPECT_EQ(sens[0].name, "ps");
  EXPECT_FALSE(sens[0].is_cost);
  EXPECT_DOUBLE_EQ(sens[0].dgc_minus, 180.0);
  EXPECT_DOUBLE_EQ(sens[0].dgc_plus, 220.0);
  EXPECT_DOUBLE_EQ(sens[0].swing, 40.0);
  // Sorted by descending swing.
  for (std::size_t i = 1; i < sens.size(); ++i)
    EXPECT_LE(sens[i].swing, sens[i - 1].swing);
}

TEST(Sensitivity, CostPerturbationCanFlipTheOptimalAttack) {
  const auto m = casestudies::make_factory();
  // Budget 5 admits {pb, fd} (310).  Raising pb's cost 3 -> 3.3 makes
  // that attack cost 5.3 > 5, collapsing DgC to 210: a big swing on a
  // *cost* entry.
  const auto sens = dgc_sensitivity(m, 5.0, 0.1);
  const auto pb = std::find_if(sens.begin(), sens.end(), [](const auto& s) {
    return s.name == "pb" && s.is_cost;
  });
  ASSERT_NE(pb, sens.end());
  EXPECT_DOUBLE_EQ(pb->dgc_minus, 310.0);
  EXPECT_DOUBLE_EQ(pb->dgc_plus, 210.0);
}

TEST(Sensitivity, LeavesTheModelUntouched) {
  const auto m = casestudies::make_factory();
  const auto cost_before = m.cost;
  const auto damage_before = m.damage;
  (void)dgc_sensitivity(m, 3.0, 0.2);
  EXPECT_EQ(m.cost, cost_before);
  EXPECT_EQ(m.damage, damage_before);
}

TEST(Sensitivity, RejectsBadDelta) {
  const auto m = casestudies::make_factory();
  EXPECT_THROW(dgc_sensitivity(m, 2.0, 0.0), ModelError);
  EXPECT_THROW(dgc_sensitivity(m, 2.0, 1.0), ModelError);
}

TEST(Refund, RefundsCanOnlyImproveTheAttackersFront) {
  // With refunds, every attack is (weakly) cheaper, so for any expected
  // damage level the required budget can only drop.
  const auto m = casestudies::make_factory_probabilistic();
  const auto base = cedpf_bottom_up(m);
  const auto refunded = cedpf_bottom_up(refund_model(m, 0.8));
  for (const auto& p : base) {
    const auto* q = refunded.min_cost_with_damage(p.value.damage - 1e-9);
    ASSERT_NE(q, nullptr);
    EXPECT_LE(q->value.cost, p.value.cost + 1e-9);
  }
}

}  // namespace
}  // namespace atcd::robust
