/// Case study: a data server on a network behind a firewall (paper
/// Sec. X-B, Fig. 5).  The AT is DAG-shaped — the FTP connection feeds
/// three exploits — so the bottom-up engine does not apply and the
/// analysis runs through the BILP engine (Thms 6-7).  Also demonstrates
/// the BDD extension for the probabilistic-DAG open problem, and the
/// classic "minimal attack" metrics the paper contrasts against.

#include <cmath>
#include <cstdio>

#include "bdd/at_bdd.hpp"
#include "casestudies/dataserver.hpp"
#include "core/problems.hpp"

using namespace atcd;

int main() {
  const auto m = casestudies::make_dataserver();
  std::printf("Data server behind a firewall (Fig. 5)\n");
  std::printf("nodes: %zu, attack steps: %zu, DAG-shaped: %s\n\n",
              m.tree.node_count(), m.tree.bas_count(),
              m.tree.is_treelike() ? "no" : "yes");

  // Engine::Auto resolves to BILP for deterministic DAGs.
  std::printf("Cost-damage Pareto front (cost = attack time, 1/100 s):\n");
  const auto front = cdpf(m);
  for (const auto& p : front) {
    if (p.value.cost == 0) continue;
    std::printf("  cost %5g -> damage %5g  top=%s  %s\n", p.value.cost,
                p.value.damage,
                is_successful(m.tree, p.witness) ? "yes" : "no ",
                attack_to_string(m.tree, p.witness).c_str());
  }
  std::printf("\nObservations (matching the paper):\n"
              " * every optimal attack contains the previous one, so the\n"
              "   defense priority order is unambiguous: FTP buffer\n"
              "   overflow (b6,b8) first, then the LICQ/suid pair, ...\n"
              " * the cheapest optimal attack does NOT reach the root —\n"
              "   a minimal-attack analysis would have missed it.\n");

  // Classic metrics for contrast.
  std::printf("\nClassic (successful-attack-only) metrics via BDD:\n");
  std::printf("  min cost of a successful attack: %g\n",
              min_cost_of_successful_attack(m));
  std::printf("  number of successful attacks:    %.0f of %.0f\n",
              count_successful_attacks(m.tree),
              std::pow(2.0, static_cast<double>(m.tree.bas_count())));

  // Constrained queries (Thm 7).
  const auto r = dgc(m, 600.0);
  std::printf("\nDgC: with 6s of attack time, worst case damage is %g "
              "(%s)\n", r.damage, attack_to_string(m.tree, r.witness).c_str());
  const auto c = cgd(m, 60.0);
  std::printf("CgD: damage >= 60 requires cost >= %g\n", c.cost);

  // Probabilistic DAG analysis — the paper's open problem, solved exactly
  // (exponential in |B| = 12, fine here) via the shared-BDD engine.
  CdpAt pm{m.tree, m.cost, m.damage,
           std::vector<double>(m.tree.bas_count(), 0.7)};
  std::printf("\nProbabilistic DAG front (p = 0.7 everywhere; BDD engine, "
              "exact):\n");
  std::size_t shown = 0;
  for (const auto& p : cedpf(pm)) {
    if (p.value.cost == 0) continue;
    std::printf("  cost %5g -> E[damage] %7.3f  %s\n", p.value.cost,
                p.value.damage, attack_to_string(m.tree, p.witness).c_str());
    if (++shown == 6) break;
  }
  std::printf("  (first %zu of %zu points)\n", shown, cedpf(pm).size());
  return 0;
}
