/// Defense planning on top of cost-damage analysis.
///
/// The paper's case study ends with advice ("security improvements should
/// focus on internal leakage and the base station; after defenses are put
/// in place, a new cost-damage analysis is needed").  This example
/// automates that loop with the defense module: a countermeasure
/// catalogue for the panda IoT network, the defender's own Pareto front
/// (defense budget vs residual attacker damage), and a robustness check
/// of the chosen portfolio under decoration uncertainty.

#include <cstdio>

#include "casestudies/panda.hpp"
#include "core/problems.hpp"
#include "defense/defense.hpp"
#include "robust/robust.hpp"

using namespace atcd;

int main() {
  const auto m = casestudies::make_panda().deterministic();

  const std::vector<defense::Countermeasure> catalogue{
      {"vet_insiders", 6.0, {"b18_internal_leakage"}},
      {"guard_base_station", 5.0,
       {"b19_look_for_base_station", "b15_find_base_station"}},
      {"code_signing", 4.0,
       {"b21_send_malicious_codes", "b22_malicious_codes_ran"}},
      {"encrypt_traffic", 7.0,
       {"b8_physical_layer", "b9_mac_layer", "b10_appliance_layer"}},
      {"tamper_proof_nodes", 3.0, {"b5_crack_security"}},
      {"vendor_audit", 2.0, {"b17_purchase_from_3rd_party"}},
  };

  std::printf("Defense planning for the panda IoT network\n");
  std::printf("catalogue: %zu countermeasures; attacker budget: 30\n\n",
              catalogue.size());

  defense::DefenseOptions opt;
  opt.attacker_budget = 30.0;

  // The defender's Pareto front: cheapest portfolio per residual level.
  std::printf("Defense-cost vs residual-damage Pareto front:\n");
  std::printf("%14s %18s  %s\n", "defense cost", "residual damage",
              "portfolio");
  for (const auto& p : defense::defense_front(m, catalogue, opt)) {
    std::printf("%14g %18g  [", p.defense_cost, p.residual_damage);
    for (std::size_t i = 0; i < p.portfolio.size(); ++i)
      std::printf("%s%s", i ? ", " : "", p.portfolio[i].c_str());
    std::printf("]\n");
  }

  // Greedy planning under a fixed security budget.
  std::printf("\nGreedy plan with defense budget 12:\n");
  for (const auto& step : defense::greedy_defense(m, catalogue, 12.0, opt)) {
    std::printf("  spend %4g -> residual %5g", step.defense_cost,
                step.residual_damage);
    if (!step.portfolio.empty())
      std::printf("  (+ %s)", step.portfolio.back().c_str());
    std::printf("\n");
  }

  // Robustness: cost/damage estimates are soft — check the residual
  // bracket if every decoration is off by up to 25%.
  std::printf("\nRobustness of the unhardened model (25%% uncertainty):\n");
  const auto im = robust::widen(m, 0.25);
  const auto rd = robust::robust_dgc(im, 30.0);
  std::printf("  attacker damage for budget 30 lies in [%g, %g]\n",
              rd.damage_lo, rd.damage_hi);
  const auto rf = robust::robust_cdpf(im);
  std::printf("  bounding fronts: optimistic %zu points, pessimistic %zu "
              "points\n", rf.optimistic.size(), rf.pessimistic.size());

  // Which estimates matter most?  One-at-a-time sensitivity of the
  // attacker's optimum — refine these numbers first.
  std::printf("\nTop decoration sensitivities for DgC(budget 30), ±10%%:\n");
  const auto sens = robust::dgc_sensitivity(m, 30.0, 0.1);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sens.size()); ++i)
    std::printf("  %-28s %-7s swing %6.2f  (%g .. %g)\n",
                sens[i].name.c_str(), sens[i].is_cost ? "cost" : "damage",
                sens[i].swing, sens[i].dgc_minus, sens[i].dgc_plus);
  return 0;
}
