/// atcd_suite — runs declarative scenario suites (src/suite/) through
/// four independent execution paths and byte-compares the responses:
///
///   dispatcher — in-process api::Dispatcher (the reference path)
///   cli        — spawns atcd_cli <model> <subcmd> --envelope per case
///   server     — in-process TCP JSON-lines net::Server + net::Client
///   router     — two net::Server workers behind a shard-by-hash
///                net::Router; requests via net::Client to the router
///
/// Every case's expectations (expected optima, pinned front, canonical
/// response hash) are checked on the reference path; any other path
/// whose bytes differ fails the case with a first-difference diff.
/// Cross-transport drift — a CLI flag mapped wrong, a codec change,
/// an engine defaulting differently — fails loudly here instead of
/// shipping.
///
/// Usage:
///   atcd_suite <suite-file>... [--cli <path>] [--no-cli] [--no-server]
///              [--no-router] [--print-expect]
///
///   --cli <path>     the atcd_cli binary for the CLI path (default:
///                    "./atcd_cli", i.e. run from the build directory)
///   --no-cli         skip the CLI path (e.g. cross-compiled runners)
///   --no-server      skip the TCP server path
///   --no-router      skip the 2-shard router path
///   --print-expect   print each case's canonical response hash
///                    (`expect_hash = <hex>`) instead of checking
///                    expectations — the suite-authoring aid
///
/// Exit code 0 when every case in every suite passes, 1 otherwise.
/// The suite format is documented in src/suite/suite.hpp; checked-in
/// suites live in suites/*.suite.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "suite/runner.hpp"

using namespace atcd;

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string cli_binary = "./atcd_cli";
  bool use_cli = true, use_server = true, use_router = true;
  suite::RunnerOptions ropt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cli") == 0 && i + 1 < argc)
      cli_binary = argv[++i];
    else if (std::strcmp(argv[i], "--no-cli") == 0)
      use_cli = false;
    else if (std::strcmp(argv[i], "--no-server") == 0)
      use_server = false;
    else if (std::strcmp(argv[i], "--no-router") == 0)
      use_router = false;
    else if (std::strcmp(argv[i], "--print-expect") == 0)
      ropt.print_expect = true;
    else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: atcd_suite <suite-file>... [--cli <path>] "
                   "[--no-cli] [--no-server] [--no-router] "
                   "[--print-expect]\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "atcd_suite: no suite files given\n");
    return 2;
  }

  std::vector<suite::Path> paths;
  paths.push_back(suite::dispatcher_path());
  if (use_cli) paths.push_back(suite::cli_path(cli_binary));
  if (use_server) paths.push_back(suite::server_path());
  if (use_router) paths.push_back(suite::router_path());

  bool all_ok = true;
  for (const std::string& file : files) {
    suite::Suite s;
    std::string error;
    if (!suite::load_suite_file(file, &s, &error)) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), error.c_str());
      all_ok = false;
      continue;
    }
    // file: model paths resolve relative to the suite file's directory.
    const std::string base_dir =
        std::filesystem::path(file).parent_path().string();
    const suite::SuiteReport report =
        suite::run_suite(s, base_dir.empty() ? "." : base_dir, paths, ropt);
    std::fputs(suite::to_text(report).c_str(), stdout);
    if (!report.ok()) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
