/// Case study: privacy attacks on a wireless IoT sensor network tracking
/// giant pandas (paper Sec. X-A, Fig. 4).  Walks through the security
/// analysis the paper performs: compute both Pareto fronts, identify the
/// minimal attacks that anchor them, and derive defense priorities.

#include <cstdio>

#include "casestudies/panda.hpp"
#include "core/problems.hpp"

using namespace atcd;

int main() {
  const auto model = casestudies::make_panda();
  const auto det = model.deterministic();
  std::printf("Panda-reservation IoT sensor network (Fig. 4)\n");
  std::printf("nodes: %zu, attack steps: %zu, attacks: 2^%zu\n\n",
              model.tree.node_count(), model.tree.bas_count(),
              model.tree.bas_count());

  // Deterministic analysis: which attacks are worth defending against?
  std::printf("Deterministic cost-damage Pareto front:\n");
  const auto front = cdpf(det);
  for (const auto& p : front) {
    if (p.value.cost == 0) continue;
    std::printf("  cost %3g -> damage %3g MUSD  %s\n", p.value.cost,
                p.value.damage,
                attack_to_string(model.tree, p.witness).c_str());
  }

  std::printf("\nReading the front like the paper does:\n");
  std::printf(" * {b18} (internal leakage) does 20 MUSD for cost 3 — the\n"
              "   cheapest damaging attack.\n");
  std::printf(" * base-station compromise ({b19,b20} or {b21,b22}) does 50\n"
              "   MUSD for cost 4 — the best damage-per-cost on the front.\n");
  std::printf(" * beyond cost 7 the curve tapers off: extra budget buys\n"
              "   ever less damage, so defenses should focus on internal\n"
              "   leakage and the base station.\n");

  // Attacker profiling via DgC (paper Sec. IV-A application).
  std::printf("\nAttacker profiles (DgC):\n");
  for (double budget : {4.0, 11.0, 30.0}) {
    const auto r = dgc(det, budget);
    std::printf("  budget %4g: damage %5g  %s\n", budget, r.damage,
                attack_to_string(model.tree, r.witness).c_str());
  }

  // Defender-side what-if: if internal leakage (b18) were fully
  // mitigated, how does the front move?  (Model the mitigation as an
  // unaffordable cost.)
  auto hardened = det;
  hardened.cost[model.tree.bas_index(
      *model.tree.find("b18_internal_leakage"))] = 1e6;
  std::printf("\nAfter hardening b18 (internal leakage impossible):\n");
  for (const auto& p : cdpf(hardened)) {
    if (p.value.cost == 0 || p.value.cost > 40) continue;
    std::printf("  cost %3g -> damage %3g MUSD  %s\n", p.value.cost,
                p.value.damage,
                attack_to_string(model.tree, p.witness).c_str());
  }
  std::printf("  (the paper: 'after defenses are put in place, a new "
              "cost-damage analysis is needed')\n");

  // Probabilistic analysis: steps can fail, so redundancy pays.
  std::printf("\nProbabilistic front (first entries):\n");
  const auto pfront = cedpf(model);
  std::size_t shown = 0;
  for (const auto& p : pfront) {
    if (p.value.cost == 0) continue;
    std::printf("  cost %3g -> E[damage] %6.3f  %s\n", p.value.cost,
                p.value.damage,
                attack_to_string(model.tree, p.witness).c_str());
    if (++shown == 5) break;
  }
  std::printf("  ... (%zu Pareto-optimal attacks vs %zu deterministic —\n"
              "  attempting redundant OR children buys success "
              "probability)\n", pfront.size(), front.size());
  return 0;
}
