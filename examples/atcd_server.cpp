/// atcd_server — serves the solve API over stdin/stdout in either of
/// the two wire formats of src/api/:
///
///   * default: the legacy line protocol (src/service/protocol.hpp) —
///     one command per line, model blocks terminated by `end`,
///     key=value response blocks terminated by `done`.
///   * --json: the v1 JSON envelope (src/api/json.hpp) — one request
///     object per line (`{"v":1,"id":"7","op":"solve",...}`), one
///     response object per line.  With --threads N > 1 requests are
///     *pipelined*: workers dispatch them concurrently and responses
///     come back as they complete, possibly out of order, matched by
///     the client-supplied "id".
///
/// Both modes transcode onto the same api::Dispatcher, so a given
/// operation behaves identically — same solver results, same caches,
/// same `stats` counters — regardless of the wire format.  Either mode
/// ends with a structured shutdown response (on `quit` and on EOF).
///
/// With --listen host:port the same dispatcher moves onto the network
/// (src/net/): a multi-client TCP server speaking the JSON-lines
/// envelope (one connection = one pipelined session, exactly the
/// --json stdin semantics), or — with --http — a minimal HTTP/1.1
/// endpoint (POST /api/v1 carrying one envelope per request, GET
/// /healthz, GET /metrics).  SIGTERM/SIGINT drain gracefully:
/// accepting stops, in-flight requests finish, and every open
/// JSON-lines connection reads the structured shutdown response as its
/// final line.  --max-conns caps concurrent connections (excess
/// clients get one typed `capacity` error and are closed);
/// --max-line-bytes caps a single request line; --threads sizes each
/// connection's pipelining pool.
///
/// Usage:
///   atcd_server [--json] [--timing] [--threads N] [--slow-ms N]
///               [--trace-dir D] [--trace-max-files N]
///               [--listen host:port] [--http] [--max-conns N]
///               [--max-line-bytes N] [--max-queue N]
///               [--shards N] [--entries N] [--bytes N] [--no-cache]
///               [--subtree-entries N] [--subtree-bytes N]
///               [--no-subtree-cache]
///               [--snapshot FILE] [--snapshot-interval-s N]
///               [--router --shard host:port ...]
///
/// --snapshot FILE makes the caches durable: the file is loaded on
/// boot when present (a corrupt or foreign snapshot is reported and
/// the server starts cold) and saved on shutdown, in both stdin and
/// --listen modes; --snapshot-interval-s N additionally saves every N
/// seconds.  --router turns the binary into a shard-by-model-hash
/// front door (src/net/router.hpp) over the --shard workers: no local
/// solver, every request forwards to the shard owning its canonical
/// model hash, so isomorphic resubmissions always hit the same warm
/// cache.
///
/// --slow-ms N logs any request slower than N milliseconds on stderr
/// (one structured JSON object per offender:
/// {"event":"slow_request","op":...,"id":...,"code":...,"micros":...}).
/// --trace-dir D additionally samples those slow requests as Chrome
/// trace-event JSON files (atcd_trace_<seq>_<op>.json, loadable in
/// chrome://tracing / Perfetto) into the existing directory D — without
/// --slow-ms every request is sampled — capped at --trace-max-files
/// (default 256) per server lifetime.  The `metrics` operation (line
/// mode: `metrics` / `metrics --json`) renders the full instrument
/// registry at any time.
///
/// --threads caps the worker threads for the scenario-analysis
/// fan-outs in both modes and additionally sizes the pipelined
/// dispatch pool in --json mode; 0 (default) = hardware concurrency
/// for analyses, synchronous dispatch for --json.  --timing adds
/// per-response wall micros to --json responses (omitted by default so
/// responses are byte-identical across runs and thread counts).
///
/// Line-mode one-shot example (try it interactively, or pipe in):
///
///   solve cdpf
///   bas pick cost=1 damage=2
///   bas drill cost=4 damage=1
///   or open = pick, drill damage=10
///   end
///   stats
///   quit
///
/// The same request in --json mode (the model block becomes a "model"
/// string with \n escapes):
///
///   {"v":1,"id":"1","op":"solve","problem":"cdpf","model":"bas pick cost=1 damage=2\nbas drill cost=4 damage=1\nor open = pick, drill damage=10\n"}
///   {"v":1,"id":"2","op":"stats"}
///   {"v":1,"id":"3","op":"quit"}

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/server.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/protocol.hpp"

namespace {

/// Dispatches one snapshot-save/-load through the dispatcher (so the
/// atcd_persist_* counters and gauges see it) and logs the outcome.
/// Returns false on a typed persist error — callers treat that as
/// advisory: a server never dies over a snapshot.
bool snapshot_op(atcd::api::Dispatcher& dispatcher, atcd::api::Operation op,
                 const char* verb) {
  atcd::api::Request req;
  req.op = std::move(op);
  const atcd::api::Response resp = dispatcher.dispatch(req);
  if (resp.code != atcd::api::ErrorCode::Ok) {
    std::fprintf(stderr, "atcd_server: snapshot %s failed: %s\n", verb,
                 resp.error.c_str());
    return false;
  }
  if (const auto* p =
          std::get_if<atcd::api::SnapshotPayload>(&resp.payload)) {
    std::fprintf(stderr,
                 "atcd_server: snapshot %s %s (%llu results, %llu subtrees, "
                 "%llu bytes)\n",
                 verb, p->path.c_str(),
                 static_cast<unsigned long long>(p->result_entries),
                 static_cast<unsigned long long>(p->subtree_entries),
                 static_cast<unsigned long long>(p->file_bytes));
  }
  return true;
}

bool snapshot_save(atcd::api::Dispatcher& dispatcher,
                   const std::string& path) {
  return snapshot_op(dispatcher, atcd::api::SnapshotSaveRequest{path},
                     "save");
}

/// Load-on-boot: a missing file is a normal cold start, anything else
/// (corrupt, foreign version, truncated) is reported and the server
/// continues cold — a bad snapshot must never keep a fleet down.
void snapshot_boot_load(atcd::api::Dispatcher& dispatcher,
                        const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "atcd_server: no snapshot at %s, starting cold\n",
                 path.c_str());
    return;
  }
  snapshot_op(dispatcher, atcd::api::SnapshotLoadRequest{path}, "load");
}

/// Background periodic saver (--snapshot-interval-s).  Interruptible
/// sleep via condition_variable so shutdown never waits out an
/// interval.
class PeriodicSaver {
 public:
  PeriodicSaver(atcd::api::Dispatcher& dispatcher, std::string path,
                long interval_s)
      : thread_([this, &dispatcher, path = std::move(path), interval_s] {
          std::unique_lock<std::mutex> lock(mu_);
          while (!cv_.wait_for(lock, std::chrono::seconds(interval_s),
                               [this] { return stop_; })) {
            lock.unlock();
            snapshot_save(dispatcher, path);
            lock.lock();
          }
        }) {}

  ~PeriodicSaver() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  atcd::api::Dispatcher::Options opt;
  atcd::api::JsonServeOptions jopt;
  atcd::net::ServerOptions nopt;
  bool json = false;
  bool listen = false;
  bool router = false;
  std::vector<atcd::net::ShardAddress> shard_addrs;
  std::string snapshot_path;
  long snapshot_interval_s = 0;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--timing") == 0)
      jopt.timing = true;
    else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "atcd_server: --listen wants host:port\n");
        return 2;
      }
      nopt.host = spec.substr(0, colon);
      nopt.port = static_cast<std::uint16_t>(
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
      listen = true;
    } else if (std::strcmp(argv[i], "--http") == 0)
      nopt.http = true;
    else if (std::strcmp(argv[i], "--max-conns") == 0 && i + 1 < argc)
      nopt.max_conns = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--max-line-bytes") == 0 && i + 1 < argc)
      jopt.max_line_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc)
      jopt.max_queue = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
      opt.service.cache.shards = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
      opt.service.cache.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc)
      opt.service.cache.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      opt.service.enable_cache = false;
    else if (std::strcmp(argv[i], "--subtree-entries") == 0 && i + 1 < argc)
      opt.service.subtree.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--subtree-bytes") == 0 && i + 1 < argc)
      opt.service.subtree.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-subtree-cache") == 0)
      opt.service.enable_subtree_cache = false;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc)
      opt.slow_request_micros = std::strtod(argv[++i], nullptr) * 1000.0;
    else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc)
      opt.trace_dir = argv[++i];
    else if (std::strcmp(argv[i], "--trace-max-files") == 0 && i + 1 < argc)
      opt.trace_max_files = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc)
      snapshot_path = argv[++i];
    else if (std::strcmp(argv[i], "--snapshot-interval-s") == 0 &&
             i + 1 < argc)
      snapshot_interval_s = std::strtol(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--router") == 0)
      router = true;
    else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "atcd_server: --shard wants host:port\n");
        return 2;
      }
      shard_addrs.push_back(
          {spec.substr(0, colon),
           static_cast<std::uint16_t>(
               std::strtoul(spec.c_str() + colon + 1, nullptr, 10))});
    } else {
      std::fprintf(stderr,
                   "usage: atcd_server [--json] [--timing] [--threads N] "
                   "[--slow-ms N] [--trace-dir D] [--trace-max-files N] "
                   "[--listen host:port] [--http] [--max-conns N] "
                   "[--max-line-bytes N] [--max-queue N] "
                   "[--shards N] [--entries N] [--bytes N] [--no-cache] "
                   "[--subtree-entries N] [--subtree-bytes N] "
                   "[--no-subtree-cache] "
                   "[--snapshot FILE] [--snapshot-interval-s N] "
                   "[--router --shard host:port ...]\n"
                   "Serves the solve API on stdin/stdout: the legacy line "
                   "protocol by default, the v1 JSON envelope with --json "
                   "(pipelined when --threads > 1).  With --listen, a "
                   "multi-client TCP (or, with --http, HTTP/1.1) server "
                   "speaking the same envelope.  --snapshot FILE loads the "
                   "cache snapshot on boot (if present) and saves it on "
                   "shutdown; --snapshot-interval-s N also saves every N "
                   "seconds.  --router turns the binary into a "
                   "shard-by-model-hash front door over the given --shard "
                   "workers (no local solver).  See the README's \"Network "
                   "transport\" and \"Persistence & scale-out\" sections.\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  opt.service.batch.threads = threads;
  jopt.threads = threads;

  if (router) {
    // Front-door mode: no local solver, every request forwards to a
    // worker chosen by canonical model hash.
    atcd::net::RouterOptions ropt;
    if (listen) {
      ropt.host = nopt.host;
      ropt.port = nopt.port;
    }
    ropt.shards = std::move(shard_addrs);
    ropt.max_conns = nopt.max_conns;
    ropt.max_line_bytes = jopt.max_line_bytes;
    ropt.timing = jopt.timing;
    atcd::net::Router front(std::move(ropt));
    std::string err;
    if (!front.start(&err)) {
      std::fprintf(stderr, "atcd_server: %s\n", err.c_str());
      return 2;
    }
    front.install_signal_handlers();
    std::fprintf(stderr,
                 "atcd_server: routing on %s:%u over %zu shards "
                 "(max %zu conns)\n",
                 (listen ? nopt.host : std::string("127.0.0.1")).c_str(),
                 static_cast<unsigned>(front.port()),
                 front.shard_count(), nopt.max_conns);
    front.wait();  // returns after SIGTERM/SIGINT graceful drain
    std::fprintf(stderr,
                 "atcd_server: router drained after %llu handled "
                 "(%llu forwarded)\n",
                 static_cast<unsigned long long>(front.handled()),
                 static_cast<unsigned long long>(front.forwarded()));
    return 0;
  }

  atcd::api::Dispatcher dispatcher(opt);

  if (!snapshot_path.empty()) snapshot_boot_load(dispatcher, snapshot_path);
  std::unique_ptr<PeriodicSaver> saver;
  if (!snapshot_path.empty() && snapshot_interval_s > 0)
    saver = std::make_unique<PeriodicSaver>(dispatcher, snapshot_path,
                                            snapshot_interval_s);

  if (listen) {
    nopt.serve = jopt;
    atcd::net::Server server(dispatcher, nopt);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "atcd_server: %s\n", err.c_str());
      return 2;
    }
    server.install_signal_handlers();
    std::fprintf(stderr,
                 "atcd_server: listening on %s:%u (%s, max %zu conns, "
                 "%zu worker threads/conn)\n",
                 nopt.host.c_str(), static_cast<unsigned>(server.port()),
                 nopt.http ? "http" : "json-lines", nopt.max_conns,
                 jopt.threads);
    server.wait();  // returns after SIGTERM/SIGINT graceful drain
    saver.reset();  // stop periodic saves before the final image
    if (!snapshot_path.empty()) snapshot_save(dispatcher, snapshot_path);
    const auto s = dispatcher.stats();
    std::fprintf(stderr,
                 "atcd_server: drained after %llu solves "
                 "(requests=%llu errors=%llu)\n",
                 static_cast<unsigned long long>(server.handled()),
                 static_cast<unsigned long long>(s.api.requests),
                 static_cast<unsigned long long>(s.api.errors));
    return 0;
  }

  std::fprintf(stderr,
               "atcd_server: ready (%s mode, cache %s, %zu shards, "
               "%zu entries, %zu bytes)\n",
               json ? "json" : "line",
               opt.service.enable_cache ? "on" : "off",
               opt.service.cache.shards, opt.service.cache.max_entries,
               opt.service.cache.max_bytes);
  const std::size_t n =
      json ? atcd::api::serve_json(std::cin, std::cout, dispatcher, jopt)
           : atcd::service::serve(std::cin, std::cout, dispatcher);
  saver.reset();  // stop periodic saves before the final image
  if (!snapshot_path.empty()) snapshot_save(dispatcher, snapshot_path);
  const auto s = dispatcher.stats();
  std::fprintf(stderr,
               "atcd_server: session end after %zu solves "
               "(requests=%llu errors=%llu; cache hits=%llu misses=%llu "
               "evictions=%llu collisions=%llu; subtree hits=%llu "
               "misses=%llu entries=%zu)\n",
               n, static_cast<unsigned long long>(s.api.requests),
               static_cast<unsigned long long>(s.api.errors),
               static_cast<unsigned long long>(s.cache.hits),
               static_cast<unsigned long long>(s.cache.misses),
               static_cast<unsigned long long>(s.cache.evictions),
               static_cast<unsigned long long>(s.cache.collisions),
               static_cast<unsigned long long>(s.subtree.hits),
               static_cast<unsigned long long>(s.subtree.misses),
               s.subtree.entries);
  return 0;
}
