/// atcd_server — serves the line-oriented solve protocol
/// (src/service/protocol.hpp) over stdin/stdout.
///
/// Usage:
///   atcd_server [--shards N] [--entries N] [--bytes N] [--no-cache]
///               [--subtree-entries N] [--subtree-bytes N]
///               [--no-subtree-cache] [--threads N]
///
/// --threads caps the worker threads the scenario analyses (`analyze
/// sweep|sensitivity|portfolio`) fan their derived solves out on; 0
/// (default) = hardware concurrency.  `stats --json` emits the counters
/// as one machine-readable json= line for bench harnesses.
///
/// One-shot example (try it interactively, or pipe a script in):
///
///   solve cdpf
///   bas pick cost=1 damage=2
///   bas drill cost=4 damage=1
///   or open = pick, drill damage=10
///   end
///   stats
///   quit
///
/// Incremental-session example (open/edit/resolve/close):
///
///   open dgc bound=5
///   bas pick cost=1 damage=2
///   bas drill cost=4 damage=1
///   or open = pick, drill damage=10
///   end                      # -> session=1
///   resolve 1
///   edit 1 set-cost pick 3
///   resolve 1                # recomputes only pick's root-path
///   close 1
///
/// Every response is a block of key=value lines terminated by `done`, so
/// shell scripts can drive it with a coprocess.  The caches are shared
/// across the whole connection: resubmitting a model — even renamed or
/// with permuted child lists — comes back with cache=hit, and distinct
/// models sharing subtrees reuse each other's bottom-up fronts through
/// the subtree cache (see `stats`' subtree_* counters).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "service/protocol.hpp"

int main(int argc, char** argv) {
  atcd::service::SolveService::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
      opt.cache.shards = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
      opt.cache.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc)
      opt.cache.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      opt.enable_cache = false;
    else if (std::strcmp(argv[i], "--subtree-entries") == 0 && i + 1 < argc)
      opt.subtree.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--subtree-bytes") == 0 && i + 1 < argc)
      opt.subtree.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-subtree-cache") == 0)
      opt.enable_subtree_cache = false;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      opt.batch.threads = std::strtoull(argv[++i], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: atcd_server [--shards N] [--entries N] "
                   "[--bytes N] [--no-cache] [--subtree-entries N] "
                   "[--subtree-bytes N] [--no-subtree-cache] "
                   "[--threads N]\n"
                   "Serves the solve protocol on stdin/stdout; see the "
                   "README's \"Serving layer\", \"Incremental "
                   "sessions\", and \"Analysis layer\" sections.\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  atcd::service::SolveService service(opt);
  std::fprintf(stderr,
               "atcd_server: ready (cache %s, %zu shards, %zu entries, "
               "%zu bytes)\n",
               opt.enable_cache ? "on" : "off", opt.cache.shards,
               opt.cache.max_entries, opt.cache.max_bytes);
  atcd::service::SessionManager sessions;
  const std::size_t n =
      atcd::service::serve(std::cin, std::cout, service, &sessions);
  const auto s = service.cache().stats();
  const auto st = service.subtree_cache().stats();
  std::fprintf(stderr,
               "atcd_server: session end after %zu solves "
               "(hits=%llu misses=%llu evictions=%llu collisions=%llu; "
               "subtree hits=%llu misses=%llu entries=%zu)\n",
               n, static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses),
               static_cast<unsigned long long>(s.evictions),
               static_cast<unsigned long long>(s.collisions),
               static_cast<unsigned long long>(st.hits),
               static_cast<unsigned long long>(st.misses), st.entries);
  return 0;
}
