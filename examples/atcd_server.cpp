/// atcd_server — serves the line-oriented solve protocol
/// (src/service/protocol.hpp) over stdin/stdout.
///
/// Usage:
///   atcd_server [--shards N] [--entries N] [--bytes N] [--no-cache]
///
/// Session example (try it interactively, or pipe a script in):
///
///   solve cdpf
///   bas pick cost=1 damage=2
///   bas drill cost=4 damage=1
///   or open = pick, drill damage=10
///   end
///   stats
///   quit
///
/// Every response is a block of key=value lines terminated by `done`, so
/// shell scripts can drive it with a coprocess.  The cache is shared
/// across the whole session: resubmitting a model — even renamed or with
/// permuted child lists — comes back with cache=hit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "service/protocol.hpp"

int main(int argc, char** argv) {
  atcd::service::SolveService::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
      opt.cache.shards = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
      opt.cache.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc)
      opt.cache.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      opt.enable_cache = false;
    else {
      std::fprintf(stderr,
                   "usage: atcd_server [--shards N] [--entries N] "
                   "[--bytes N] [--no-cache]\n"
                   "Serves the solve protocol on stdin/stdout; see the "
                   "README's \"Serving layer\" section.\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  atcd::service::SolveService service(opt);
  std::fprintf(stderr,
               "atcd_server: ready (cache %s, %zu shards, %zu entries, "
               "%zu bytes)\n",
               opt.enable_cache ? "on" : "off", opt.cache.shards,
               opt.cache.max_entries, opt.cache.max_bytes);
  const std::size_t n =
      atcd::service::serve(std::cin, std::cout, service);
  const auto s = service.cache().stats();
  std::fprintf(stderr,
               "atcd_server: session end after %zu solves "
               "(hits=%llu misses=%llu evictions=%llu collisions=%llu)\n",
               n, static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses),
               static_cast<unsigned long long>(s.evictions),
               static_cast<unsigned long long>(s.collisions));
  return 0;
}
