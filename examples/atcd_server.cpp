/// atcd_server — serves the solve API over stdin/stdout in either of
/// the two wire formats of src/api/:
///
///   * default: the legacy line protocol (src/service/protocol.hpp) —
///     one command per line, model blocks terminated by `end`,
///     key=value response blocks terminated by `done`.
///   * --json: the v1 JSON envelope (src/api/json.hpp) — one request
///     object per line (`{"v":1,"id":"7","op":"solve",...}`), one
///     response object per line.  With --threads N > 1 requests are
///     *pipelined*: workers dispatch them concurrently and responses
///     come back as they complete, possibly out of order, matched by
///     the client-supplied "id".
///
/// Both modes transcode onto the same api::Dispatcher, so a given
/// operation behaves identically — same solver results, same caches,
/// same `stats` counters — regardless of the wire format.  Either mode
/// ends with a structured shutdown response (on `quit` and on EOF).
///
/// Usage:
///   atcd_server [--json] [--timing] [--threads N] [--slow-ms N]
///               [--shards N] [--entries N] [--bytes N] [--no-cache]
///               [--subtree-entries N] [--subtree-bytes N]
///               [--no-subtree-cache]
///
/// --slow-ms N logs any request slower than N milliseconds on stderr
/// (one `atcd: slow request ...` line per offender).  The `metrics`
/// operation (line mode: `metrics` / `metrics --json`) renders the
/// full instrument registry at any time.
///
/// --threads caps the worker threads for the scenario-analysis
/// fan-outs in both modes and additionally sizes the pipelined
/// dispatch pool in --json mode; 0 (default) = hardware concurrency
/// for analyses, synchronous dispatch for --json.  --timing adds
/// per-response wall micros to --json responses (omitted by default so
/// responses are byte-identical across runs and thread counts).
///
/// Line-mode one-shot example (try it interactively, or pipe in):
///
///   solve cdpf
///   bas pick cost=1 damage=2
///   bas drill cost=4 damage=1
///   or open = pick, drill damage=10
///   end
///   stats
///   quit
///
/// The same request in --json mode (the model block becomes a "model"
/// string with \n escapes):
///
///   {"v":1,"id":"1","op":"solve","problem":"cdpf","model":"bas pick cost=1 damage=2\nbas drill cost=4 damage=1\nor open = pick, drill damage=10\n"}
///   {"v":1,"id":"2","op":"stats"}
///   {"v":1,"id":"3","op":"quit"}

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "api/server.hpp"
#include "service/protocol.hpp"

int main(int argc, char** argv) {
  atcd::api::Dispatcher::Options opt;
  atcd::api::JsonServeOptions jopt;
  bool json = false;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--timing") == 0)
      jopt.timing = true;
    else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
      opt.service.cache.shards = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc)
      opt.service.cache.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc)
      opt.service.cache.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      opt.service.enable_cache = false;
    else if (std::strcmp(argv[i], "--subtree-entries") == 0 && i + 1 < argc)
      opt.service.subtree.max_entries = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--subtree-bytes") == 0 && i + 1 < argc)
      opt.service.subtree.max_bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--no-subtree-cache") == 0)
      opt.service.enable_subtree_cache = false;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc)
      opt.slow_request_micros = std::strtod(argv[++i], nullptr) * 1000.0;
    else {
      std::fprintf(stderr,
                   "usage: atcd_server [--json] [--timing] [--threads N] "
                   "[--slow-ms N] "
                   "[--shards N] [--entries N] [--bytes N] [--no-cache] "
                   "[--subtree-entries N] [--subtree-bytes N] "
                   "[--no-subtree-cache]\n"
                   "Serves the solve API on stdin/stdout: the legacy line "
                   "protocol by default, the v1 JSON envelope with --json "
                   "(pipelined when --threads > 1).  See the README's "
                   "\"API\" section.\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  opt.service.batch.threads = threads;
  jopt.threads = threads;

  atcd::api::Dispatcher dispatcher(opt);
  std::fprintf(stderr,
               "atcd_server: ready (%s mode, cache %s, %zu shards, "
               "%zu entries, %zu bytes)\n",
               json ? "json" : "line",
               opt.service.enable_cache ? "on" : "off",
               opt.service.cache.shards, opt.service.cache.max_entries,
               opt.service.cache.max_bytes);
  const std::size_t n =
      json ? atcd::api::serve_json(std::cin, std::cout, dispatcher, jopt)
           : atcd::service::serve(std::cin, std::cout, dispatcher);
  const auto s = dispatcher.stats();
  std::fprintf(stderr,
               "atcd_server: session end after %zu solves "
               "(requests=%llu errors=%llu; cache hits=%llu misses=%llu "
               "evictions=%llu collisions=%llu; subtree hits=%llu "
               "misses=%llu entries=%zu)\n",
               n, static_cast<unsigned long long>(s.api.requests),
               static_cast<unsigned long long>(s.api.errors),
               static_cast<unsigned long long>(s.cache.hits),
               static_cast<unsigned long long>(s.cache.misses),
               static_cast<unsigned long long>(s.cache.evictions),
               static_cast<unsigned long long>(s.cache.collisions),
               static_cast<unsigned long long>(s.subtree.hits),
               static_cast<unsigned long long>(s.subtree.misses),
               s.subtree.entries);
  return 0;
}
