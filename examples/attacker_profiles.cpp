/// Attacker profiling with cost-damage analysis (paper Sec. IV-A: "DgC
/// can be used to determine the damaging capabilities of different
/// attacker profiles").
///
/// We sweep three attacker profiles over the panda IoT model and compare
/// the deterministic view (capability: what a competent attacker WILL
/// achieve) with the probabilistic view (what an attacker with realistic
/// failure rates achieves in EXPECTATION), plus a Monte-Carlo sanity
/// check of the probabilistic numbers.

#include <cstdio>

#include "casestudies/panda.hpp"
#include "core/problems.hpp"
#include "util/rng.hpp"

using namespace atcd;

int main() {
  const auto model = casestudies::make_panda();
  const auto det = model.deterministic();

  struct Profile {
    const char* name;
    double budget;
  };
  const Profile profiles[] = {
      {"script kiddie (budget 4)", 4.0},
      {"criminal group (budget 12)", 12.0},
      {"nation state (budget 40)", 40.0},
  };

  std::printf("Attacker profiles on the panda IoT network\n");
  std::printf("%-28s %16s %18s\n", "profile", "damage (det.)",
              "E[damage] (prob.)");
  for (const auto& p : profiles) {
    const auto d = dgc(det, p.budget);
    const auto e = edgc(model, p.budget);
    std::printf("%-28s %16g %18.3f\n", p.name, d.damage, e.damage);
  }

  // The two views pick different attacks: show the nation-state case.
  const auto d = dgc(det, 40.0);
  const auto e = edgc(model, 40.0);
  std::printf("\nnation-state optimal attack, deterministic view:\n  %s\n",
              attack_to_string(model.tree, d.witness).c_str());
  std::printf("nation-state optimal attack, probabilistic view:\n  %s\n",
              attack_to_string(model.tree, e.witness).c_str());
  std::printf("(the probabilistic attacker buys redundancy: extra OR\n"
              " children raise activation probability — Example 10)\n");

  // Monte-Carlo check: simulate the probabilistic attack.
  Rng rng(42);
  double sum = 0;
  const int runs = 100000;
  for (int i = 0; i < runs; ++i) sum += sample_damage(model, e.witness, rng);
  std::printf("\nMonte-Carlo over %d simulated attacks: mean damage %.3f "
              "(engine says %.3f)\n", runs, sum / runs, e.damage);

  // Defender view: minimum attacker budget per damage level (CgD sweep).
  std::printf("\nDefender's table — budget an attacker needs per damage "
              "level:\n");
  std::printf("%12s %18s\n", "damage >=", "attacker cost");
  for (double level : {20.0, 50.0, 75.0, 100.0}) {
    const auto r = cgd(det, level);
    if (r.feasible)
      std::printf("%12g %18g\n", level, r.cost);
    else
      std::printf("%12g %18s\n", level, "impossible");
  }
  return 0;
}
