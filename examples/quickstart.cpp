/// Quickstart: build a cost-damage attack tree with the public API, run
/// the three deterministic analyses, then the probabilistic ones.
///
/// The model is the paper's running example (Fig. 1): production in a
/// factory can be shut down by a cyberattack, or by destroying the
/// production robot (force the door, then place a bomb).

#include <cstdio>

#include "core/problems.hpp"

using namespace atcd;

int main() {
  // 1. Build the tree: leaves first, gates over existing nodes, then
  //    finalize().  Node ids index the damage vector; BAS indices (order
  //    of add_bas calls) index cost/probability vectors and attacks.
  CdAt m;
  const NodeId ca = m.tree.add_bas("cyberattack");
  const NodeId pb = m.tree.add_bas("place_bomb");
  const NodeId fd = m.tree.add_bas("force_door");
  const NodeId dr = m.tree.add_gate(NodeType::AND, "destroy_robot", {pb, fd});
  const NodeId ps = m.tree.add_gate(NodeType::OR, "production_shutdown",
                                    {ca, dr});
  m.tree.set_root(ps);
  m.tree.finalize();

  // 2. Decorate: costs on BASs, damage on any node (that is the point of
  //    this paper — internal nodes carry damage of their own).
  m.cost = {1.0, 3.0, 2.0};  // ca, pb, fd — in BAS order
  m.damage.assign(m.tree.node_count(), 0.0);
  m.damage[fd] = 10.0;   // broken door
  m.damage[dr] = 100.0;  // destroyed robot
  m.damage[ps] = 200.0;  // halted production
  m.validate();

  // 3. The cost-damage Pareto front: what can an attacker with any given
  //    budget do to us?  Engine::Auto picks bottom-up for this tree.
  std::printf("Cost-damage Pareto front:\n");
  for (const auto& p : cdpf(m))
    std::printf("  budget %3g -> damage %3g  via %s\n", p.value.cost,
                p.value.damage, attack_to_string(m.tree, p.witness).c_str());

  // 4. Single-objective queries.
  const auto most = dgc(m, /*budget=*/2.0);
  std::printf("\nDgC: attacker with budget 2 does at most %g damage (%s)\n",
              most.damage, attack_to_string(m.tree, most.witness).c_str());
  const auto cheapest = cgd(m, /*threshold=*/300.0);
  std::printf("CgD: damage >= 300 costs the attacker at least %g (%s)\n",
              cheapest.cost,
              attack_to_string(m.tree, cheapest.witness).c_str());

  // 5. Probabilistic setting: attack steps may fail (Def. 5).  The same
  //    API over CdpAt optimizes *expected* damage.
  CdpAt pm{m.tree, m.cost, m.damage, {0.2, 0.4, 0.9}};
  std::printf("\nCost vs expected damage (success probs 0.2/0.4/0.9):\n");
  for (const auto& p : cedpf(pm))
    std::printf("  budget %3g -> E[damage] %6.4g  via %s\n", p.value.cost,
                p.value.damage, attack_to_string(m.tree, p.witness).c_str());
  return 0;
}
