/// atcd_cli — command-line front-end for the library's textual model
/// format (at/parser.hpp).
///
/// Every solve and analysis subcommand builds a typed api::Request and
/// runs it through the same api::Dispatcher facade as atcd_server, so
/// the CLI and the server cannot drift: identical solver results,
/// identical error taxonomy.  Exit codes are deterministic, mapped from
/// api::ErrorCode:
///
///   0  success
///   2  usage / invalid argument (unknown problem, engine, bad spec)
///   3  model error (unparseable or structurally invalid model)
///   4  solver failure (unsupported class, capacity, numeric failure)
///
/// Usage:
///   atcd_cli <model-file> info
///   atcd_cli <model-file> cdpf | cedpf          [--engine <name>]
///   atcd_cli <model-file> dgc  <budget>   [--prob] [--engine <name>]
///   atcd_cli <model-file> cgd  <threshold> [--prob] [--engine <name>]
///   atcd_cli <model-file> engines
///   atcd_cli <model-file> dot
///
/// Scenario analyses (src/analysis/; axis spec is
/// <attr>:<node>:<lo>:<hi>:<steps> with <attr> in cost|prob|damage, or
/// defense:<bas>; defense spec is <name>:<cost>:<bas>[+<bas>...]):
///   atcd_cli <model-file> sweep <problem> <axis> [<axis>]
///            [--bound <num>] [--engine <name>]
///   atcd_cli <model-file> sensitivity [--prob] [--step <rel>]
///            [--engine <name>]
///   atcd_cli <model-file> portfolio <defense-budget>
///            --defense <spec> [--defense <spec> ...]
///            [--prob] [--bound <attacker-budget>] [--engine <name>]
///
/// Solve commands additionally accept:
///   --threads N   fan the batch (or the analysis scenarios) out on N
///                 worker threads
///   --repeat K    submit the instance K times as one api batch
///                 request (exercises the service result cache and
///                 request coalescing; prints cache statistics)
///
/// Every dispatcher-backed command additionally accepts:
///   --envelope      print the canonical v1 JSON response line (the
///                   exact bytes the server would send, minus micros)
///                   instead of the human tables — errors included, so
///                   transports can be byte-compared
///   --trace-out F   trace the request and write the recorded span tree
///                   as Chrome trace-event JSON to F (loadable in
///                   chrome://tracing and Perfetto)
///
/// --engine picks a specific backend by registry name (see `engines`);
/// without it the planner selects the paper's Table I method for the
/// model class.
///
/// The model format is one statement per line ('#' comments):
///   bas  <name> [cost=<c>] [damage=<d>] [prob=<p>]
///   or   <name> = <child>, <child>, ... [damage=<d>]
///   and  <name> = <child>, <child>, ... [damage=<d>]
///   root <name>
///
/// A sample model ships in examples/data/factory.atcd.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/json.hpp"
#include "at/dot.hpp"
#include "at/parser.hpp"
#include "engine/registry.hpp"
#include "obs/trace_export.hpp"
#include "util/timer.hpp"

using namespace atcd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: atcd_cli <model-file> "
               "(info | cdpf | cedpf | dgc <U> [--prob] | "
               "cgd <L> [--prob] | engines | dot) [--engine <name>]\n"
               "                [--threads N] [--repeat K]\n"
               "       atcd_cli <model-file> sweep <problem> <axis> "
               "[<axis>] [--bound U] [--engine <name>]\n"
               "       atcd_cli <model-file> sensitivity [--prob] "
               "[--step r] [--engine <name>]\n"
               "       atcd_cli <model-file> portfolio <defense-budget> "
               "--defense <spec> ... [--prob] [--bound U]\n"
               "  --engine <name>  solve with a specific backend "
               "(see the `engines` command)\n"
               "  --threads N      solve (or fan scenarios out) on N "
               "worker threads\n"
               "  --repeat K       submit the instance K times as one "
               "batch through the\n"
               "                   service cache (prints cache "
               "statistics)\n"
               "  axis spec: <attr>:<node>:<lo>:<hi>:<steps> "
               "(attr: cost|prob|damage) or defense:<bas>\n"
               "  defense spec: <name>:<cost>:<bas>[+<bas>...]\n"
               "  --metrics-dump   print the metrics registry "
               "(Prometheus text) on stderr at exit\n"
               "  --envelope       print the canonical v1 JSON response "
               "line instead of tables\n"
               "  --trace-out F    trace the request and write the span "
               "tree as Chrome\n"
               "                   trace-event JSON to F (open in "
               "chrome://tracing or Perfetto)\n"
               "exit codes: 0 ok, 2 usage, 3 model error, 4 solver "
               "failure\n");
  return 2;
}

/// Arguments not consumed by any --flag: skips every flag and, for the
/// value-taking ones (all but the booleans --prob, --metrics-dump and
/// --envelope), its value.
std::vector<std::string> positionals(int argc, char** argv, int from) {
  std::vector<std::string> out;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strcmp(argv[i], "--prob") != 0 &&
          std::strcmp(argv[i], "--metrics-dump") != 0 &&
          std::strcmp(argv[i], "--envelope") != 0 && i + 1 < argc)
        ++i;
      continue;
    }
    out.push_back(argv[i]);
  }
  return out;
}

/// --metrics-dump: renders the dispatcher's registry on stderr when the
/// process exits, whatever path it takes — scoped so the exit code of
/// every `return` above it is untouched.
struct MetricsDump {
  const api::Dispatcher* dispatcher = nullptr;
  ~MetricsDump() {
    if (dispatcher)
      std::fputs(dispatcher->metrics_payload().text.c_str(), stderr);
  }
};

/// Reports a failed response on stderr and maps its code to the
/// deterministic exit code (2 usage / 3 model / 4 solver).
int report_error(const api::Response& resp) {
  std::fprintf(stderr, "error: %s\n", resp.error.c_str());
  return api::exit_code(resp.code);
}

void print_solve(const api::SolvePayload& p, const char* damage_col) {
  std::printf("# engine: %s\n", p.backend.c_str());
  if (p.is_front) {
    std::printf("%10s %12s  %s\n", "cost", damage_col, "attack");
    for (const auto& pt : p.points)
      std::printf("%10g %12g  %s\n", pt.cost, pt.damage, pt.attack.c_str());
  } else if (!p.feasible) {
    std::printf("infeasible\n");
  } else {
    std::printf("cost=%g damage=%g attack=%s\n", p.cost, p.damage,
                p.attack.c_str());
  }
}

/// Batch/cache knobs from --threads / --repeat, plus the output mode.
struct RunOptions {
  std::size_t threads = 1;
  std::size_t repeat = 1;
  /// --envelope: print the canonical v1 JSON response line (no micros,
  /// no trace) instead of the human tables, for both success and
  /// failure — what the suite runner byte-compares across transports.
  bool envelope = false;
  /// --trace-out FILE: trace the request and write the recorded span
  /// tree as Chrome trace-event JSON (chrome://tracing / Perfetto).
  std::string trace_out;
};

/// Writes the response's trace block (if any) as a Chrome trace file.
void write_trace_file(const api::Response& resp, const std::string& path) {
  if (!resp.trace) {
    std::fprintf(stderr, "warning: response carries no trace\n");
    return;
  }
  std::vector<obs::ExportSpan> spans;
  spans.reserve(resp.trace->spans.size());
  for (const auto& s : resp.trace->spans)
    spans.push_back({s.name, s.depth, s.start_us, s.dur_us});
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << obs::chrome_trace_json(spans, resp.trace->facts, "atcd_cli");
  if (!out)
    std::fprintf(stderr, "warning: cannot write trace file '%s'\n",
                 path.c_str());
}

/// Envelope mode epilogue: one canonical response line on stdout
/// (trace and micros stripped — the deterministic bytes), exit code
/// still mapped from the error code.
int print_envelope(api::Response resp) {
  const int code = api::exit_code(resp.code);
  resp.trace.reset();
  std::printf("%s\n", api::encode_response(resp, false).c_str());
  return code;
}

/// Runs one solve spec through the dispatcher and prints the result.
/// With --repeat/--threads the spec is fanned out as one api batch
/// request (same service cache + coalescing the server uses), and a
/// summary line reports the batch timing plus cache statistics.
int run(api::Dispatcher& dispatcher, api::SolveSpec spec,
        const char* damage_col, const RunOptions& ro) {
  if (ro.repeat <= 1 && ro.threads <= 1) {
    api::Request req;
    req.op = api::SolveRequest{std::move(spec)};
    req.trace = !ro.trace_out.empty();
    const api::Response resp = dispatcher.dispatch(req);
    if (!ro.trace_out.empty()) write_trace_file(resp, ro.trace_out);
    if (ro.envelope) return print_envelope(resp);
    if (resp.code != api::ErrorCode::Ok) return report_error(resp);
    print_solve(std::get<api::SolvePayload>(resp.payload), damage_col);
    return 0;
  }
  api::BatchRequest batch;
  batch.items.assign(ro.repeat, spec);
  batch.threads = ro.threads;
  api::Request req;
  req.op = std::move(batch);
  req.trace = !ro.trace_out.empty();
  Timer timer;
  const api::Response resp = dispatcher.dispatch(req);
  const double ms = timer.millis();
  if (!ro.trace_out.empty()) write_trace_file(resp, ro.trace_out);
  if (ro.envelope) return print_envelope(resp);
  if (resp.code != api::ErrorCode::Ok) return report_error(resp);
  const auto& items = std::get<api::BatchPayload>(resp.payload).items;
  const auto s = dispatcher.stats().cache;
  std::printf("# batch: %zu requests on %zu threads in %.2f ms "
              "(cache hits=%llu misses=%llu)\n",
              ro.repeat, ro.threads, ms,
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses));
  const auto& first = items.front();
  if (first.code != api::ErrorCode::Ok) {
    std::fprintf(stderr, "error: %s\n", first.error.c_str());
    return api::exit_code(first.code);
  }
  print_solve(first.solve, damage_col);
  return 0;
}

/// Dispatches an analysis request and prints its table.
int run_analysis(api::Dispatcher& dispatcher, api::Request req,
                 const RunOptions& ro) {
  req.trace = !ro.trace_out.empty();
  const api::Response resp = dispatcher.dispatch(req);
  if (!ro.trace_out.empty()) write_trace_file(resp, ro.trace_out);
  if (ro.envelope) return print_envelope(resp);
  if (resp.code != api::ErrorCode::Ok) return report_error(resp);
  std::fputs(std::get<api::AnalysisPayload>(resp.payload).table.c_str(),
             stdout);
  return 0;
}

bool parse_positive_size(const char* s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || v == 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();

  // The model travels as text through the typed API (the dispatcher
  // parses and classifies failures); info/dot parse locally below.
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open model file '%s'\n", argv[1]);
    return 3;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string model_text = buffer.str();

  const std::string cmd = argv[2];
  bool metrics_dump = false;
  bool use_prob = false;
  std::string engine_name;
  RunOptions ro;
  double bound = 0.0;
  bool have_bound = false;
  double step = 0.0;
  bool have_step = false;
  std::vector<std::string> defenses;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prob") == 0) use_prob = true;
    if (std::strcmp(argv[i], "--metrics-dump") == 0) metrics_dump = true;
    if (std::strcmp(argv[i], "--envelope") == 0) ro.envelope = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      ro.trace_out = argv[i + 1];
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
      engine_name = argv[i + 1];
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_positive_size(argv[i + 1], &ro.threads)) return usage();
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      if (!parse_positive_size(argv[i + 1], &ro.repeat)) return usage();
    }
    if (std::strcmp(argv[i], "--bound") == 0 && i + 1 < argc) {
      bound = std::atof(argv[i + 1]);
      have_bound = true;
    }
    if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc) {
      step = std::atof(argv[i + 1]);
      have_step = true;
    }
    if (std::strcmp(argv[i], "--defense") == 0 && i + 1 < argc)
      defenses.push_back(argv[i + 1]);
  }

  // One dispatcher per invocation: the same facade the server runs on,
  // with the analysis fan-outs sized by --threads.
  api::Dispatcher::Options dopt;
  dopt.service.batch.threads = ro.threads;
  api::Dispatcher dispatcher(dopt);
  MetricsDump dump{metrics_dump ? &dispatcher : nullptr};

  const auto make_spec = [&](engine::Problem problem, double b,
                             bool has_b) {
    api::SolveSpec spec;
    spec.problem = problem;
    spec.bound = b;
    spec.has_bound = has_b;
    spec.engine = engine_name;
    spec.model = model_text;
    return spec;
  };

  if (cmd == "sweep") {
    const std::vector<std::string> pos = positionals(argc, argv, 3);
    if (pos.size() < 2) return usage();
    const auto problem = api::parse_problem(pos[0]);
    if (!problem) {
      std::fprintf(stderr, "error: unknown problem '%s'\n", pos[0].c_str());
      return 2;
    }
    api::AnalyzeSweepRequest r;
    r.problem = *problem;
    r.axes.assign(pos.begin() + 1, pos.end());
    r.bound = bound;
    r.has_bound = have_bound;
    r.engine = engine_name;
    r.model = model_text;
    api::Request req;
    req.op = std::move(r);
    return run_analysis(dispatcher, std::move(req), ro);
  }
  if (cmd == "sensitivity") {
    api::AnalyzeSensitivityRequest r;
    r.problem = use_prob ? engine::Problem::Cedpf : engine::Problem::Cdpf;
    if (have_step) {
      r.step = step;
      r.has_step = true;
    }
    r.engine = engine_name;
    r.model = model_text;
    api::Request req;
    req.op = std::move(r);
    return run_analysis(dispatcher, std::move(req), ro);
  }
  if (cmd == "portfolio" && argc >= 4) {
    char* end = nullptr;
    const double defense_budget = std::strtod(argv[3], &end);
    if (end == argv[3] || *end != '\0' || !(defense_budget >= 0.0)) {
      std::fprintf(stderr,
                   "error: portfolio takes a numeric defense budget, "
                   "got '%s'\n", argv[3]);
      return 2;
    }
    api::AnalyzePortfolioRequest r;
    r.problem = use_prob ? engine::Problem::Edgc : engine::Problem::Dgc;
    r.defenses = defenses;
    r.budget = defense_budget;
    r.has_budget = true;
    r.bound = bound;
    r.has_bound = have_bound;
    r.engine = engine_name;
    r.model = model_text;
    api::Request req;
    req.op = std::move(r);
    return run_analysis(dispatcher, std::move(req), ro);
  }

  if (cmd == "info" || cmd == "dot") {
    try {
      const auto parsed = parse_model(model_text);
      if (cmd == "dot") {
        std::printf("%s", to_dot(parsed.tree, parsed.cost, parsed.damage,
                                 parsed.prob).c_str());
        return 0;
      }
      std::printf("nodes: %zu (BASs: %zu), edges: %zu, shape: %s\n",
                  parsed.tree.node_count(), parsed.tree.bas_count(),
                  parsed.tree.edge_count(),
                  parsed.tree.is_treelike() ? "treelike" : "DAG");
      double total_damage_sum = 0, total_cost_sum = 0;
      for (double d : parsed.damage) total_damage_sum += d;
      for (double c : parsed.cost) total_cost_sum += c;
      std::printf("total decorated damage: %g, total BAS cost: %g\n",
                  total_damage_sum, total_cost_sum);
      std::printf("root: %s\n",
                  parsed.tree.name(parsed.tree.root()).c_str());
      return 0;
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 3;
    }
  }
  if (cmd == "engines") {
    for (const auto* b : engine::default_registry().all()) {
      const auto c = b->capabilities();
      std::printf("%-12s %s, %s;", b->name(),
                  c.exact ? "exact" : "approximate",
                  c.fronts ? "fronts+single" : "single-objective only");
      std::printf(" classes:%s%s%s%s", c.tree_det ? " tree-det" : "",
                  c.dag_det ? " dag-det" : "", c.tree_prob ? " tree-prob" : "",
                  c.dag_prob ? " dag-prob" : "");
      if (c.additive_only) std::printf(" (additive models only)");
      if (c.max_bas != engine::kNoCap)
        std::printf(" (|B| <= %zu)", c.max_bas);
      std::printf("\n");
    }
    return 0;
  }

  if (cmd == "cdpf")
    return run(dispatcher, make_spec(engine::Problem::Cdpf, 0.0, false),
               "damage", ro);
  if (cmd == "cedpf")
    return run(dispatcher, make_spec(engine::Problem::Cedpf, 0.0, false),
               "E[damage]", ro);
  if (cmd == "dgc" && argc >= 4) {
    const double budget = std::atof(argv[3]);
    return run(dispatcher,
               make_spec(use_prob ? engine::Problem::Edgc
                                  : engine::Problem::Dgc,
                         budget, true),
               use_prob ? "E[damage]" : "damage", ro);
  }
  if (cmd == "cgd" && argc >= 4) {
    const double threshold = std::atof(argv[3]);
    return run(dispatcher,
               make_spec(use_prob ? engine::Problem::Cged
                                  : engine::Problem::Cgd,
                         threshold, true),
               use_prob ? "E[damage]" : "damage", ro);
  }
  return usage();
}
