/// atcd_cli — command-line front-end for the library's textual model
/// format (at/parser.hpp).
///
/// Usage:
///   atcd_cli <model-file> info
///   atcd_cli <model-file> cdpf | cedpf
///   atcd_cli <model-file> dgc  <budget>  [--prob]
///   atcd_cli <model-file> cgd  <threshold> [--prob]
///   atcd_cli <model-file> dot
///
/// The model format is one statement per line ('#' comments):
///   bas  <name> [cost=<c>] [damage=<d>] [prob=<p>]
///   or   <name> = <child>, <child>, ... [damage=<d>]
///   and  <name> = <child>, <child>, ... [damage=<d>]
///   root <name>
///
/// A sample model ships in examples/data/factory.atcd.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "at/dot.hpp"
#include "at/parser.hpp"
#include "core/problems.hpp"

using namespace atcd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: atcd_cli <model-file> "
               "(info | cdpf | cedpf | dgc <U> [--prob] | "
               "cgd <L> [--prob] | dot)\n");
  return 2;
}

void print_front(const AttackTree& t, const Front2d& f, const char* damage_col) {
  std::printf("%10s %12s  %s\n", "cost", damage_col, "attack");
  for (const auto& p : f)
    std::printf("%10g %12g  %s\n", p.value.cost, p.value.damage,
                attack_to_string(t, p.witness).c_str());
}

void print_opt(const AttackTree& t, const OptAttack& r) {
  if (!r.feasible) {
    std::printf("infeasible\n");
    return;
  }
  std::printf("cost=%g damage=%g attack=%s\n", r.cost, r.damage,
              attack_to_string(t, r.witness).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  try {
    const auto parsed = parse_model_file(argv[1]);
    const CdAt det{parsed.tree, parsed.cost, parsed.damage};
    const CdpAt prob{parsed.tree, parsed.cost, parsed.damage, parsed.prob};
    const std::string cmd = argv[2];
    const bool use_prob = argc > 3 && std::strcmp(argv[argc - 1], "--prob") == 0;

    if (cmd == "info") {
      std::printf("nodes: %zu (BASs: %zu), edges: %zu, shape: %s\n",
                  parsed.tree.node_count(), parsed.tree.bas_count(),
                  parsed.tree.edge_count(),
                  parsed.tree.is_treelike() ? "treelike" : "DAG");
      double total_damage_sum = 0, total_cost_sum = 0;
      for (double d : parsed.damage) total_damage_sum += d;
      for (double c : parsed.cost) total_cost_sum += c;
      std::printf("total decorated damage: %g, total BAS cost: %g\n",
                  total_damage_sum, total_cost_sum);
      std::printf("root: %s\n",
                  parsed.tree.name(parsed.tree.root()).c_str());
      return 0;
    }
    if (cmd == "cdpf") {
      print_front(parsed.tree, cdpf(det), "damage");
      return 0;
    }
    if (cmd == "cedpf") {
      print_front(parsed.tree, cedpf(prob), "E[damage]");
      return 0;
    }
    if (cmd == "dgc" && argc >= 4) {
      const double budget = std::atof(argv[3]);
      print_opt(parsed.tree,
                use_prob ? edgc(prob, budget) : dgc(det, budget));
      return 0;
    }
    if (cmd == "cgd" && argc >= 4) {
      const double threshold = std::atof(argv[3]);
      print_opt(parsed.tree,
                use_prob ? cged(prob, threshold) : cgd(det, threshold));
      return 0;
    }
    if (cmd == "dot") {
      std::printf("%s", to_dot(parsed.tree, parsed.cost, parsed.damage,
                               parsed.prob).c_str());
      return 0;
    }
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
