/// atcd_cli — command-line front-end for the library's textual model
/// format (at/parser.hpp).
///
/// Usage:
///   atcd_cli <model-file> info
///   atcd_cli <model-file> cdpf | cedpf          [--engine <name>]
///   atcd_cli <model-file> dgc  <budget>   [--prob] [--engine <name>]
///   atcd_cli <model-file> cgd  <threshold> [--prob] [--engine <name>]
///   atcd_cli <model-file> engines
///   atcd_cli <model-file> dot
///
/// Scenario analyses (src/analysis/; axis spec is
/// <attr>:<node>:<lo>:<hi>:<steps> with <attr> in cost|prob|damage, or
/// defense:<bas>; defense spec is <name>:<cost>:<bas>[+<bas>...]):
///   atcd_cli <model-file> sweep <problem> <axis> [<axis>]
///            [--bound <num>] [--engine <name>]
///   atcd_cli <model-file> sensitivity [--prob] [--step <rel>]
///            [--engine <name>]
///   atcd_cli <model-file> portfolio <defense-budget>
///            --defense <spec> [--defense <spec> ...]
///            [--prob] [--bound <attacker-budget>] [--engine <name>]
///
/// Solve commands additionally accept:
///   --threads N   solve through the batch API on N worker threads
///   --repeat K    submit the instance K times (exercises the result
///                 cache: the batch attaches a service::ResultCache, so
///                 up to K-1 of the K solves are cache hits; concurrent
///                 workers may race past an empty cache and solve
///                 independently — the engine hook does not coalesce)
///
/// --engine picks a specific backend by registry name (see `engines`);
/// without it the planner selects the paper's Table I method for the
/// model class.
///
/// The model format is one statement per line ('#' comments):
///   bas  <name> [cost=<c>] [damage=<d>] [prob=<p>]
///   or   <name> = <child>, <child>, ... [damage=<d>]
///   and  <name> = <child>, <child>, ... [damage=<d>]
///   root <name>
///
/// A sample model ships in examples/data/factory.atcd.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analysis/portfolio.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweep.hpp"
#include "at/dot.hpp"
#include "at/parser.hpp"
#include "engine/batch.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "util/timer.hpp"

using namespace atcd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: atcd_cli <model-file> "
               "(info | cdpf | cedpf | dgc <U> [--prob] | "
               "cgd <L> [--prob] | engines | dot) [--engine <name>]\n"
               "                [--threads N] [--repeat K]\n"
               "       atcd_cli <model-file> sweep <problem> <axis> "
               "[<axis>] [--bound U] [--engine <name>]\n"
               "       atcd_cli <model-file> sensitivity [--prob] "
               "[--step r] [--engine <name>]\n"
               "       atcd_cli <model-file> portfolio <defense-budget> "
               "--defense <spec> ... [--prob] [--bound U]\n"
               "  --engine <name>  solve with a specific backend "
               "(see the `engines` command)\n"
               "  --threads N      solve (or fan scenarios out) on N "
               "worker threads\n"
               "  --repeat K       submit the instance K times through "
               "the result cache\n"
               "                   (up to K-1 hits; prints cache "
               "statistics)\n"
               "  axis spec: <attr>:<node>:<lo>:<hi>:<steps> "
               "(attr: cost|prob|damage) or defense:<bas>\n"
               "  defense spec: <name>:<cost>:<bas>[+<bas>...]\n");
  return 2;
}

/// Arguments not consumed by any --flag: skips every flag and, for the
/// value-taking ones (all but --prob), its value.
std::vector<std::string> positionals(int argc, char** argv, int from) {
  std::vector<std::string> out;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strcmp(argv[i], "--prob") != 0 && i + 1 < argc) ++i;
      continue;
    }
    out.push_back(argv[i]);
  }
  return out;
}

void print_front(const AttackTree& t, const Front2d& f, const char* damage_col) {
  std::printf("%10s %12s  %s\n", "cost", damage_col, "attack");
  for (const auto& p : f)
    std::printf("%10g %12g  %s\n", p.value.cost, p.value.damage,
                attack_to_string(t, p.witness).c_str());
}

void print_opt(const AttackTree& t, const OptAttack& r) {
  if (!r.feasible) {
    std::printf("infeasible\n");
    return;
  }
  std::printf("cost=%g damage=%g attack=%s\n", r.cost, r.damage,
              attack_to_string(t, r.witness).c_str());
}

/// Batch/cache knobs from --threads / --repeat.
struct RunOptions {
  std::size_t threads = 1;
  std::size_t repeat = 1;
};

/// Runs one instance through the engine subsystem and prints the result.
/// With --repeat/--threads the instance is fanned out through
/// solve_all() with an attached result cache, and a summary line reports
/// the batch timing plus cache statistics.
int run(const AttackTree& t, const engine::Instance& in,
        const char* damage_col, const RunOptions& ro) {
  engine::SolveResult r;
  if (ro.repeat <= 1 && ro.threads <= 1) {
    r = engine::solve_one(in);
  } else {
    atcd::service::ResultCache cache;
    engine::BatchOptions opt;
    opt.threads = ro.threads;
    opt.cache = &cache;
    const std::vector<engine::Instance> batch(ro.repeat, in);
    Timer timer;
    const auto results = engine::solve_all(batch, opt);
    const double ms = timer.millis();
    r = results.front();
    const auto s = cache.stats();
    std::printf("# batch: %zu requests on %zu threads in %.2f ms "
                "(cache hits=%llu misses=%llu)\n",
                ro.repeat, ro.threads, ms,
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses));
  }
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("# engine: %s\n", r.backend.c_str());
  if (engine::is_front(in.problem))
    print_front(t, r.front, damage_col);
  else
    print_opt(t, r.attack);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  try {
    const auto parsed = parse_model_file(argv[1]);
    const CdAt det{parsed.tree, parsed.cost, parsed.damage};
    const CdpAt prob{parsed.tree, parsed.cost, parsed.damage, parsed.prob};
    const std::string cmd = argv[2];
    bool use_prob = false;
    std::string engine_name;
    RunOptions ro;
    double bound = 0.0;
    bool have_bound = false;
    double step = 0.05;
    std::vector<defense::Countermeasure> catalogue;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--prob") == 0) use_prob = true;
      if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
        engine_name = argv[i + 1];
      if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        ro.threads = std::strtoull(argv[i + 1], nullptr, 10);
      if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc)
        ro.repeat = std::strtoull(argv[i + 1], nullptr, 10);
      if (std::strcmp(argv[i], "--bound") == 0 && i + 1 < argc) {
        bound = std::atof(argv[i + 1]);
        have_bound = true;
      }
      if (std::strcmp(argv[i], "--step") == 0 && i + 1 < argc)
        step = std::atof(argv[i + 1]);
      if (std::strcmp(argv[i], "--defense") == 0 && i + 1 < argc) {
        std::string err;
        const auto cm = analysis::parse_countermeasure(argv[i + 1], &err);
        if (!cm) {
          std::fprintf(stderr, "error: %s\n", err.c_str());
          return 2;
        }
        catalogue.push_back(*cm);
      }
    }
    if (ro.repeat == 0 || ro.threads == 0) return usage();

    // Shared analysis knobs: scenario fan-outs run on --threads workers
    // and reuse subtree fronts across scenarios via a local cache.
    service::SubtreeCache subtree_cache;
    analysis::Options aopt;
    aopt.engine_name = engine_name;
    aopt.batch.threads = ro.threads;
    aopt.shared = &subtree_cache;
    aopt.sensitivity_step = step;

    if (cmd == "sweep") {
      const std::vector<std::string> pos = positionals(argc, argv, 3);
      if (pos.empty()) return usage();
      const auto problem = service::parse_problem(pos[0]);
      if (!problem) {
        std::fprintf(stderr, "error: unknown problem '%s'\n",
                     pos[0].c_str());
        return 2;
      }
      std::vector<analysis::Axis> axes;
      for (std::size_t i = 1; i < pos.size(); ++i) {
        std::string err;
        const auto axis = analysis::parse_axis(pos[i], &err);
        if (!axis) {
          std::fprintf(stderr, "error: %s\n", err.c_str());
          return 2;
        }
        axes.push_back(*axis);
      }
      if (axes.empty()) return usage();
      aopt.problem = *problem;
      aopt.bound = bound;
      const std::string table =
          engine::is_probabilistic(*problem)
              ? analysis::to_table(analysis::sweep(prob, axes, aopt))
              : analysis::to_table(analysis::sweep(det, axes, aopt));
      std::fputs(table.c_str(), stdout);
      return 0;
    }
    if (cmd == "sensitivity") {
      const std::string table =
          use_prob ? analysis::to_table(analysis::sensitivity(prob, aopt))
                   : analysis::to_table(analysis::sensitivity(det, aopt));
      std::fputs(table.c_str(), stdout);
      return 0;
    }
    if (cmd == "portfolio" && argc >= 4) {
      char* end = nullptr;
      const double defense_budget = std::strtod(argv[3], &end);
      if (end == argv[3] || *end != '\0' || !(defense_budget >= 0.0)) {
        std::fprintf(stderr,
                     "error: portfolio takes a numeric defense budget, "
                     "got '%s'\n", argv[3]);
        return 2;
      }
      if (catalogue.empty()) {
        std::fprintf(stderr,
                     "error: portfolio needs at least one --defense "
                     "<name>:<cost>:<bas>[+<bas>...]\n");
        return 2;
      }
      aopt.bound = have_bound
                       ? bound
                       : std::numeric_limits<double>::infinity();
      const std::string table =
          use_prob ? analysis::to_table(analysis::portfolio(
                         prob, catalogue, defense_budget, aopt))
                   : analysis::to_table(analysis::portfolio(
                         det, catalogue, defense_budget, aopt));
      std::fputs(table.c_str(), stdout);
      return 0;
    }

    if (cmd == "info") {
      std::printf("nodes: %zu (BASs: %zu), edges: %zu, shape: %s\n",
                  parsed.tree.node_count(), parsed.tree.bas_count(),
                  parsed.tree.edge_count(),
                  parsed.tree.is_treelike() ? "treelike" : "DAG");
      double total_damage_sum = 0, total_cost_sum = 0;
      for (double d : parsed.damage) total_damage_sum += d;
      for (double c : parsed.cost) total_cost_sum += c;
      std::printf("total decorated damage: %g, total BAS cost: %g\n",
                  total_damage_sum, total_cost_sum);
      std::printf("root: %s\n",
                  parsed.tree.name(parsed.tree.root()).c_str());
      return 0;
    }
    if (cmd == "engines") {
      for (const auto* b : engine::default_registry().all()) {
        const auto c = b->capabilities();
        std::printf("%-12s %s, %s;", b->name(),
                    c.exact ? "exact" : "approximate",
                    c.fronts ? "fronts+single" : "single-objective only");
        std::printf(" classes:%s%s%s%s", c.tree_det ? " tree-det" : "",
                    c.dag_det ? " dag-det" : "", c.tree_prob ? " tree-prob" : "",
                    c.dag_prob ? " dag-prob" : "");
        if (c.additive_only) std::printf(" (additive models only)");
        if (c.max_bas != engine::kNoCap)
          std::printf(" (|B| <= %zu)", c.max_bas);
        std::printf("\n");
      }
      return 0;
    }
    if (cmd == "cdpf")
      return run(parsed.tree,
                 engine::Instance::of(engine::Problem::Cdpf, det, 0.0,
                                      engine_name),
                 "damage", ro);
    if (cmd == "cedpf")
      return run(parsed.tree,
                 engine::Instance::of(engine::Problem::Cedpf, prob, 0.0,
                                      engine_name),
                 "E[damage]", ro);
    if (cmd == "dgc" && argc >= 4) {
      const double budget = std::atof(argv[3]);
      return use_prob
                 ? run(parsed.tree,
                       engine::Instance::of(engine::Problem::Edgc, prob,
                                            budget, engine_name),
                       "E[damage]", ro)
                 : run(parsed.tree,
                       engine::Instance::of(engine::Problem::Dgc, det,
                                            budget, engine_name),
                       "damage", ro);
    }
    if (cmd == "cgd" && argc >= 4) {
      const double threshold = std::atof(argv[3]);
      return use_prob
                 ? run(parsed.tree,
                       engine::Instance::of(engine::Problem::Cged, prob,
                                            threshold, engine_name),
                       "E[damage]", ro)
                 : run(parsed.tree,
                       engine::Instance::of(engine::Problem::Cgd, det,
                                            threshold, engine_name),
                       "damage", ro);
    }
    if (cmd == "dot") {
      std::printf("%s", to_dot(parsed.tree, parsed.cost, parsed.damage,
                               parsed.prob).c_str());
      return 0;
    }
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
