#pragma once
/// \file bdd.hpp
/// A reduced ordered binary decision diagram (ROBDD) manager.
///
/// Substrate for the probabilistic DAG engine (bdd/at_bdd.hpp): the
/// structure function of a DAG-shaped AT node is a monotone boolean
/// function of the BAS variables; compiling it to a shared ROBDD lets us
/// evaluate success probabilities P(S(Y_x, v) = 1) exactly even when
/// children share BASs (where the treelike per-node product rule breaks).
/// Also provides the classic BDD-based AT metrics (min attack cost,
/// number of successful attacks) in the style of Budde & Stoelinga,
/// CSF'21 [12].
///
/// Implementation: unique table + binary-apply cache, terminals 0 and 1,
/// variable order = BAS index order.  No dynamic reordering (models here
/// are small); no complement edges (simplicity).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace atcd::bdd {

/// Index of a BDD node inside its manager.  0/1 are the terminals.
using Ref = std::uint32_t;

inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

class Manager {
 public:
  /// Creates a manager over \p num_vars variables (levels 0..num_vars-1;
  /// lower level = closer to the root).
  explicit Manager(std::uint32_t num_vars);

  std::uint32_t num_vars() const { return num_vars_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// The BDD of the single variable \p level.
  Ref var(std::uint32_t level);

  Ref apply_and(Ref a, Ref b);
  Ref apply_or(Ref a, Ref b);
  Ref negate(Ref a);

  /// Cofactor: the BDD with variable \p level fixed to \p value.
  Ref restrict_var(Ref a, std::uint32_t level, bool value);

  /// P(f = 1) when variable i is independently true with probability p[i].
  /// Linear in the number of BDD nodes reachable from \p a.
  double probability(Ref a, const std::vector<double>& p) const;

  /// Evaluates f under a full assignment (bit i of `assignment` = var i).
  bool evaluate(Ref a, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(Ref a) const;

  /// Minimum of Σ_{i: x_i = 1} weight[i] over satisfying assignments x;
  /// +inf if unsatisfiable.  Weights must be >= 0.  This is the classic
  /// "min attack cost over successful attacks" metric.
  double min_true_weight(Ref a, const std::vector<double>& weight) const;

  /// Level of a node (for terminals: num_vars()).
  std::uint32_t level(Ref a) const { return nodes_[a].level; }
  Ref low(Ref a) const { return nodes_[a].lo; }
  Ref high(Ref a) const { return nodes_[a].hi; }

 private:
  struct Node {
    std::uint32_t level;
    Ref lo, hi;
  };

  Ref make(std::uint32_t level, Ref lo, Ref hi);
  Ref apply(int op, Ref a, Ref b);  // op: 0 = AND, 1 = OR

  std::uint32_t num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> cache_;
};

}  // namespace atcd::bdd
