#pragma once
/// \file at_bdd.hpp
/// BDD-based analysis of attack trees.
///
/// Two roles:
///
///  1. *Probabilistic DAG engine.*  The paper leaves CEDPF / EDgC / CgED
///     on DAG-like ATs as an open problem (its BILP constraints become
///     nonlinear).  Here we provide the exact — exponential in |B| —
///     fallback: compile S(·,v) of every node to one shared ROBDD;
///     P(S(Y_x, v) = 1) is then the BDD probability under per-variable
///     success probabilities x_i·p(i) (the per-node products stay exact
///     on DAGs because the BDD tracks shared BASs).  Enumerating attacks
///     with these exact expected damages yields CEDPF.  This both solves
///     small open-problem instances exactly and cross-validates the
///     treelike engine in tests.
///
///  2. *Classic metrics* on DAG ATs (Budde & Stoelinga CSF'21 style):
///     minimal cost of a *successful* attack and the number of successful
///     attacks — useful contrast with this paper's semantics, where
///     unsuccessful attacks matter too.

#include "bdd/bdd.hpp"
#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"

namespace atcd {

/// Shared-BDD compilation of every node's structure function.
class AtBdd {
 public:
  /// Compiles S(·, v) for all v.  Variable i of the manager is the BAS
  /// with dense index i.
  explicit AtBdd(const AttackTree& t);

  const bdd::Manager& manager() const { return mgr_; }

  /// BDD of node v's structure function.
  bdd::Ref node_function(NodeId v) const { return fn_[v]; }

  /// PS(x, v) = P(S(Y_x, v) = 1) for all nodes — exact on DAGs.
  std::vector<double> probabilistic_structure(const CdpAt& m,
                                              const Attack& x) const;

  /// d̂_E(x) = Σ_v PS(x,v) d(v) — exact on DAGs.
  double expected_damage(const CdpAt& m, const Attack& x) const;

 private:
  const AttackTree& tree_;
  bdd::Manager mgr_;
  std::vector<bdd::Ref> fn_;
};

/// CEDPF for arbitrary (tree- or DAG-shaped) probabilistic models by
/// attack enumeration with exact BDD expected damages.  Capacity-guarded.
Front2d cedpf_bdd(const CdpAt& m, std::size_t max_bas = 22);

/// EDgC for arbitrary probabilistic models (enumeration + BDD).
OptAttack edgc_bdd(const CdpAt& m, double budget, std::size_t max_bas = 22);

/// CgED for arbitrary probabilistic models (enumeration + BDD).
OptAttack cged_bdd(const CdpAt& m, double threshold,
                   std::size_t max_bas = 22);

/// Minimal total cost over *successful* attacks (S(x, root) = 1); +inf if
/// the root is unreachable.  Linear in the BDD size.
double min_cost_of_successful_attack(const CdAt& m);

/// Number of successful attacks (out of 2^|B|).
double count_successful_attacks(const AttackTree& t);

/// Probability that the root is reached when every BAS is attempted
/// ("all-in" attack), exact on DAGs.
double root_reach_probability_all_in(const CdpAt& m);

}  // namespace atcd
