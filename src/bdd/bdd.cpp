#include "bdd/bdd.hpp"

#include <cmath>
#include <limits>

namespace atcd::bdd {
namespace {

// Exact (injective) key packing for the unique table: 16 bits of level,
// 24 bits per child ref.  kMaxNodes keeps the packing injective.
constexpr std::uint32_t kMaxNodes = 1u << 24;
constexpr std::uint32_t kMaxLevels = 1u << 16;

std::uint64_t pack3(std::uint32_t level, Ref lo, Ref hi) {
  return (static_cast<std::uint64_t>(level) << 48) |
         (static_cast<std::uint64_t>(lo) << 24) | hi;
}

}  // namespace

Manager::Manager(std::uint32_t num_vars) : num_vars_(num_vars) {
  if (num_vars + 1 >= kMaxLevels) throw Error("bdd: too many variables");
  // Terminals: level == num_vars (below every variable).
  nodes_.push_back({num_vars_, kFalse, kFalse});  // 0
  nodes_.push_back({num_vars_, kTrue, kTrue});    // 1
}

Ref Manager::make(std::uint32_t lvl, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const std::uint64_t key = pack3(lvl, lo, hi);
  if (const auto it = unique_.find(key); it != unique_.end())
    return it->second;
  if (nodes_.size() >= kMaxNodes)
    throw CapacityError("bdd: node limit (2^24) exceeded");
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back({lvl, lo, hi});
  unique_.emplace(key, r);
  return r;
}

Ref Manager::var(std::uint32_t level) {
  if (level >= num_vars_) throw Error("bdd: variable level out of range");
  return make(level, kFalse, kTrue);
}

Ref Manager::apply(int op, Ref a, Ref b) {
  // Terminal cases.
  if (op == 0) {  // AND
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
  } else {  // OR
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
  }
  if (a == b) return a;
  if (a > b) std::swap(a, b);  // commutative: canonicalize the cache key

  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32 | b) * 2 + static_cast<unsigned>(op);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const std::uint32_t la = nodes_[a].level, lb = nodes_[b].level;
  const std::uint32_t top = la < lb ? la : lb;
  const Ref a_lo = la == top ? nodes_[a].lo : a;
  const Ref a_hi = la == top ? nodes_[a].hi : a;
  const Ref b_lo = lb == top ? nodes_[b].lo : b;
  const Ref b_hi = lb == top ? nodes_[b].hi : b;
  const Ref lo = apply(op, a_lo, b_lo);
  const Ref hi = apply(op, a_hi, b_hi);
  const Ref r = make(top, lo, hi);
  cache_.emplace(key, r);
  return r;
}

Ref Manager::apply_and(Ref a, Ref b) { return apply(0, a, b); }
Ref Manager::apply_or(Ref a, Ref b) { return apply(1, a, b); }

Ref Manager::negate(Ref a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32 | 0xFFFFFFFFull) * 2;
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Ref r =
      make(nodes_[a].level, negate(nodes_[a].lo), negate(nodes_[a].hi));
  cache_.emplace(key, r);
  return r;
}

Ref Manager::restrict_var(Ref a, std::uint32_t lvl, bool value) {
  if (a <= kTrue) return a;
  const Node& n = nodes_[a];
  if (n.level > lvl) return a;
  if (n.level == lvl) return value ? n.hi : n.lo;
  return make(n.level, restrict_var(n.lo, lvl, value),
              restrict_var(n.hi, lvl, value));
}

double Manager::probability(Ref a, const std::vector<double>& p) const {
  if (p.size() != num_vars_) throw Error("bdd: probability vector size");
  std::unordered_map<Ref, double> memo;
  memo[kFalse] = 0.0;
  memo[kTrue] = 1.0;
  // Iterative post-order to avoid deep recursion.
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    const Ref r = stack.back();
    if (memo.count(r)) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[r];
    const bool lo_done = memo.count(n.lo), hi_done = memo.count(n.hi);
    if (lo_done && hi_done) {
      const double pv = p[n.level];
      memo[r] = (1.0 - pv) * memo[n.lo] + pv * memo[n.hi];
      stack.pop_back();
    } else {
      if (!lo_done) stack.push_back(n.lo);
      if (!hi_done) stack.push_back(n.hi);
    }
  }
  return memo[a];
}

bool Manager::evaluate(Ref a, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_) throw Error("bdd: assignment size");
  while (a > kTrue) {
    const Node& n = nodes_[a];
    a = assignment[n.level] ? n.hi : n.lo;
  }
  return a == kTrue;
}

double Manager::sat_count(Ref a) const {
  std::unordered_map<Ref, double> memo;
  memo[kFalse] = 0.0;
  memo[kTrue] = 1.0;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    const Ref r = stack.back();
    if (memo.count(r)) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[r];
    if (memo.count(n.lo) && memo.count(n.hi)) {
      // Each child count is over assignments of variables strictly below
      // its own level; scale by the skipped levels.
      const double lo = memo[n.lo] *
                        std::pow(2.0, nodes_[n.lo].level - n.level - 1);
      const double hi = memo[n.hi] *
                        std::pow(2.0, nodes_[n.hi].level - n.level - 1);
      memo[r] = lo + hi;
      stack.pop_back();
    } else {
      if (!memo.count(n.lo)) stack.push_back(n.lo);
      if (!memo.count(n.hi)) stack.push_back(n.hi);
    }
  }
  return memo[a] * std::pow(2.0, nodes_[a].level);
}

double Manager::min_true_weight(Ref a,
                                const std::vector<double>& weight) const {
  if (weight.size() != num_vars_) throw Error("bdd: weight vector size");
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::unordered_map<Ref, double> memo;
  memo[kFalse] = inf;
  memo[kTrue] = 0.0;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    const Ref r = stack.back();
    if (memo.count(r)) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[r];
    if (memo.count(n.lo) && memo.count(n.hi)) {
      memo[r] = std::min(memo[n.lo], weight[n.level] + memo[n.hi]);
      stack.pop_back();
    } else {
      if (!memo.count(n.lo)) stack.push_back(n.lo);
      if (!memo.count(n.hi)) stack.push_back(n.hi);
    }
  }
  return memo[a];
}

}  // namespace atcd::bdd
