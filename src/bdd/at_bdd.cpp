#include "bdd/at_bdd.hpp"

namespace atcd {
namespace {

void check_cap(const AttackTree& t, std::size_t max_bas, const char* who) {
  if (t.bas_count() > max_bas)
    throw CapacityError(std::string(who) + ": " +
                        std::to_string(t.bas_count()) +
                        " BASs exceeds the enumeration cap of " +
                        std::to_string(max_bas));
}

}  // namespace

AtBdd::AtBdd(const AttackTree& t)
    : tree_(t), mgr_(static_cast<std::uint32_t>(t.bas_count())) {
  if (!t.finalized()) throw ModelError("AtBdd: tree not finalized");
  fn_.assign(t.node_count(), bdd::kFalse);
  for (NodeId v : t.topological_order()) {
    const auto& n = t.node(v);
    switch (n.type) {
      case NodeType::BAS:
        fn_[v] = mgr_.var(n.bas_index);
        break;
      case NodeType::OR: {
        bdd::Ref acc = bdd::kFalse;
        for (NodeId c : n.children) acc = mgr_.apply_or(acc, fn_[c]);
        fn_[v] = acc;
        break;
      }
      case NodeType::AND: {
        bdd::Ref acc = bdd::kTrue;
        for (NodeId c : n.children) acc = mgr_.apply_and(acc, fn_[c]);
        fn_[v] = acc;
        break;
      }
    }
  }
}

std::vector<double> AtBdd::probabilistic_structure(const CdpAt& m,
                                                   const Attack& x) const {
  if (x.size() != tree_.bas_count() || m.prob.size() != tree_.bas_count())
    throw ModelError("AtBdd: attack size mismatch");
  // P(var i) = p_i if attempted, 0 otherwise; the BDD handles shared BASs.
  std::vector<double> q(tree_.bas_count(), 0.0);
  for (std::size_t i = 0; i < q.size(); ++i)
    if (x.test(i)) q[i] = m.prob[i];
  std::vector<double> ps(tree_.node_count(), 0.0);
  for (NodeId v = 0; v < tree_.node_count(); ++v)
    ps[v] = mgr_.probability(fn_[v], q);
  return ps;
}

double AtBdd::expected_damage(const CdpAt& m, const Attack& x) const {
  const auto ps = probabilistic_structure(m, x);
  double sum = 0.0;
  for (NodeId v = 0; v < tree_.node_count(); ++v) sum += ps[v] * m.damage[v];
  return sum;
}

Front2d cedpf_bdd(const CdpAt& m, std::size_t max_bas) {
  m.validate();
  check_cap(m.tree, max_bas, "cedpf_bdd");
  const AtBdd compiled(m.tree);
  const std::size_t nb = m.tree.bas_count();
  std::vector<FrontPoint> cands;
  cands.reserve(std::size_t{1} << nb);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << nb); ++mask) {
    Attack x = Attack::from_mask(nb, mask);
    double c = 0.0;
    for (std::size_t i = 0; i < nb; ++i)
      if (mask >> i & 1) c += m.cost[i];
    cands.push_back({CdPoint{c, compiled.expected_damage(m, x)}, std::move(x)});
  }
  return Front2d::of_candidates(std::move(cands));
}

OptAttack edgc_bdd(const CdpAt& m, double budget, std::size_t max_bas) {
  const auto front = cedpf_bdd(m, max_bas);
  const FrontPoint* p = front.max_damage_within_cost(budget);
  if (!p) return {};
  return OptAttack{true, p->value.cost, p->value.damage, p->witness};
}

OptAttack cged_bdd(const CdpAt& m, double threshold, std::size_t max_bas) {
  const auto front = cedpf_bdd(m, max_bas);
  const FrontPoint* p = front.min_cost_with_damage(threshold);
  if (!p) return {};
  return OptAttack{true, p->value.cost, p->value.damage, p->witness};
}

double min_cost_of_successful_attack(const CdAt& m) {
  m.validate();
  const AtBdd compiled(m.tree);
  return compiled.manager().min_true_weight(
      compiled.node_function(m.tree.root()), m.cost);
}

double count_successful_attacks(const AttackTree& t) {
  const AtBdd compiled(t);
  return compiled.manager().sat_count(compiled.node_function(t.root()));
}

double root_reach_probability_all_in(const CdpAt& m) {
  m.validate();
  const AtBdd compiled(m.tree);
  return compiled.manager().probability(
      compiled.node_function(m.tree.root()), m.prob);
}

}  // namespace atcd
