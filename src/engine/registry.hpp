#pragma once
/// \file registry.hpp
/// Name -> Backend registry.
///
/// The registry replaces the old compile-time Engine enum as the source
/// of truth for which solution methods exist: benches resolve `--engine
/// <name>` through it, the planner iterates it, and new engines become
/// reachable everywhere by a single add() call.  `default_registry()` is
/// a process-wide instance pre-seeded with the built-in backends
/// (builtin_backends.cpp): enumerative, bottom-up, bilp, bdd, nsga2,
/// knapsack.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/backend.hpp"

namespace atcd::engine {

class Registry {
 public:
  Registry() = default;

  /// Registers a backend.  Throws Error on a duplicate name.
  void add(std::shared_ptr<const Backend> backend);

  /// Looks a backend up by name(); nullptr when absent.
  const Backend* find(std::string_view name) const;

  /// Like find(), but throws UnsupportedError listing the registered
  /// names when absent — the right behavior for user-supplied names.
  const Backend& at(std::string_view name) const;

  /// All backends in registration order.
  std::vector<const Backend*> all() const;

  /// Comma-separated registered names (for error messages / --help).
  std::string names() const;

  bool empty() const { return backends_.empty(); }
  std::size_t size() const { return backends_.size(); }

  /// A registry holding the built-in backends.
  static Registry with_builtins();

 private:
  std::vector<std::shared_ptr<const Backend>> backends_;
};

/// The process-wide registry, lazily constructed with the built-ins.
/// Mutable so applications can add their own backends at startup; the
/// built-ins themselves are stateless and thread-safe.
Registry& default_registry();

}  // namespace atcd::engine
