/// \file builtin_backends.cpp
/// Adapters wrapping the library's solution methods as engine Backends,
/// plus Registry::with_builtins().  Capability metadata mirrors each
/// method's documented scope:
///
///   engine       | tree det | DAG det | tree prob | DAG prob | exact | fronts
///   enumerative  |    x     |    x    |     x     |          |  yes  |  yes
///   bottom-up    |    x     |         |     x     |          |  yes  |  yes
///   bilp         |    x     |    x    |           |          |  yes  |  yes
///   bdd          |          |         |     x     |    x     |  yes  |  yes
///   nsga2        |    x     |    x    |     x     |    x     |  no   |  yes
///   knapsack     |    x*    |    x*   |           |          |  yes  |  no
///
///   * additive models only (zero damage on internal nodes).

#include <memory>

#include "bdd/at_bdd.hpp"
#include "core/bilp_method.hpp"
#include "core/bottom_up.hpp"
#include "core/bottom_up_prob.hpp"
#include "core/enumerative.hpp"
#include "core/knapsack.hpp"
#include "engine/registry.hpp"
#include "ga/nsga2.hpp"

namespace atcd::engine {
namespace {

/// Derives a single-objective answer from a front point (null = infeasible).
OptAttack from_front(const FrontPoint* p) {
  if (!p) return OptAttack{};
  return OptAttack{true, p->value.cost, p->value.damage, p->witness};
}

// ---------------------------------------------------------------------------

class EnumerativeBackend final : public Backend {
 public:
  const char* name() const override { return "enumerative"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_det = c.dag_det = c.tree_prob = true;  // DAG prob needs the BDD
    c.exact = true;
    c.fronts = true;
    c.max_bas = kEnumDefaultCap;
    return c;
  }
  Front2d cdpf(const CdAt& m) const override { return cdpf_enumerative(m); }
  OptAttack dgc(const CdAt& m, double u) const override {
    return dgc_enumerative(m, u);
  }
  OptAttack cgd(const CdAt& m, double l) const override {
    return cgd_enumerative(m, l);
  }
  Front2d cedpf(const CdpAt& m) const override { return cedpf_enumerative(m); }
  OptAttack edgc(const CdpAt& m, double u) const override {
    return edgc_enumerative(m, u);
  }
  OptAttack cged(const CdpAt& m, double l) const override {
    return cged_enumerative(m, l);
  }
};

class BottomUpBackend final : public Backend {
 public:
  const char* name() const override { return "bottom-up"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_det = c.tree_prob = true;  // unsound on DAGs (shared subtrees)
    c.exact = true;
    c.fronts = true;
    c.incremental = true;  // compositional sweep; subtree-memo aware
    return c;
  }
  Front2d cdpf(const CdAt& m) const override { return cdpf_bottom_up(m); }
  OptAttack dgc(const CdAt& m, double u) const override {
    return dgc_bottom_up(m, u);
  }
  OptAttack cgd(const CdAt& m, double l) const override {
    return cgd_bottom_up(m, l);
  }
  Front2d cedpf(const CdpAt& m) const override { return cedpf_bottom_up(m); }
  OptAttack edgc(const CdpAt& m, double u) const override {
    return edgc_bottom_up(m, u);
  }
  OptAttack cged(const CdpAt& m, double l) const override {
    return cged_bottom_up(m, l);
  }

  // Context entry points: bind the memo to the exact budget-class each
  // sweep prunes with — kNoBudget for the front problems and CgD/CgED
  // (which run the budgetless CDPF/CEDPF sweep), the budget for DgC/EDgC.
  Front2d cdpf(const CdAt& m, const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, kNoBudget);
    return cdpf_bottom_up(m, vis.get());
  }
  OptAttack dgc(const CdAt& m, double u,
                const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, u);
    return dgc_bottom_up(m, u, vis.get());
  }
  OptAttack cgd(const CdAt& m, double l,
                const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, kNoBudget);
    return cgd_bottom_up(m, l, vis.get());
  }
  Front2d cedpf(const CdpAt& m, const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, kNoBudget);
    return cedpf_bottom_up(m, vis.get());
  }
  OptAttack edgc(const CdpAt& m, double u,
                 const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, u);
    return edgc_bottom_up(m, u, vis.get());
  }
  OptAttack cged(const CdpAt& m, double l,
                 const SolveContext& ctx) const override {
    const auto vis = bind(ctx, m, kNoBudget);
    return cged_bottom_up(m, l, vis.get());
  }

 private:
  template <class Model>
  static std::unique_ptr<atcd::detail::SubtreeVisitor> bind(
      const SolveContext& ctx, const Model& m, double budget) {
    return ctx.subtree ? ctx.subtree->bind(m, budget) : nullptr;
  }
};

class BilpBackend final : public Backend {
 public:
  const char* name() const override { return "bilp"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_det = c.dag_det = true;  // probabilistic DAGs: nonlinear (Sec. IX)
    c.exact = true;
    c.fronts = true;
    return c;
  }
  Front2d cdpf(const CdAt& m) const override { return cdpf_bilp(m); }
  OptAttack dgc(const CdAt& m, double u) const override {
    return dgc_bilp(m, u);
  }
  OptAttack cgd(const CdAt& m, double l) const override {
    return cgd_bilp(m, l);
  }
};

class BddBackend final : public Backend {
 public:
  const char* name() const override { return "bdd"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_prob = c.dag_prob = true;  // the open-problem fallback
    c.exact = true;
    c.fronts = true;
    c.max_bas = 22;  // attack enumeration with exact BDD damages
    return c;
  }
  Front2d cedpf(const CdpAt& m) const override { return cedpf_bdd(m); }
  OptAttack edgc(const CdpAt& m, double u) const override {
    return edgc_bdd(m, u);
  }
  OptAttack cged(const CdpAt& m, double l) const override {
    return cged_bdd(m, l);
  }
};

/// NSGA-II: approximate, any model class.  Probabilistic DAGs are
/// evaluated with exact per-attack expected damages from the shared BDD;
/// single-objective problems are read off the approximated front.
class Nsga2Backend final : public Backend {
 public:
  const char* name() const override { return "nsga2"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_det = c.dag_det = c.tree_prob = c.dag_prob = true;
    c.exact = false;  // attainable points, but the front may be incomplete
    c.fronts = true;
    return c;
  }
  Front2d cdpf(const CdAt& m) const override { return ga::nsga2_cdpf(m); }
  OptAttack dgc(const CdAt& m, double u) const override {
    const Front2d f = cdpf(m);
    return from_front(f.max_damage_within_cost(u));
  }
  OptAttack cgd(const CdAt& m, double l) const override {
    const Front2d f = cdpf(m);
    return from_front(f.min_cost_with_damage(l));
  }
  Front2d cedpf(const CdpAt& m) const override {
    if (m.tree.is_treelike()) return ga::nsga2_cedpf(m);
    const AtBdd bdd(m.tree);
    return ga::nsga2_front(
        m.tree.bas_count(),
        [&](const Attack& x) {
          return CdPoint{total_cost(m, x), bdd.expected_damage(m, x)};
        },
        ga::Nsga2Options{});
  }
  OptAttack edgc(const CdpAt& m, double u) const override {
    const Front2d f = cedpf(m);
    return from_front(f.max_damage_within_cost(u));
  }
  OptAttack cged(const CdpAt& m, double l) const override {
    const Front2d f = cedpf(m);
    return from_front(f.min_cost_with_damage(l));
  }
};

/// Knapsack: exact single-objective solver for *additive* deterministic
/// models — zero damage on every internal node makes d̂(x) = Σ x_i d_i,
/// so DgC is a 0/1 knapsack (Thm 1 read backwards) and CgD its covering
/// variant.  No fronts: an additive front can have 2^|B| points.
class KnapsackBackend final : public Backend {
 public:
  const char* name() const override { return "knapsack"; }
  Capabilities capabilities() const override {
    Capabilities c;
    c.tree_det = c.dag_det = true;
    c.exact = true;
    c.fronts = false;
    c.additive_only = true;
    return c;
  }
  OptAttack dgc(const CdAt& m, double u) const override {
    KnapsackInstance inst = to_instance(m, Problem::Dgc);
    inst.capacity = u;
    return solve_knapsack(inst);
  }
  OptAttack cgd(const CdAt& m, double l) const override {
    return solve_knapsack_cover(to_instance(m, Problem::Cgd), l);
  }

 private:
  KnapsackInstance to_instance(const CdAt& m, Problem p) const {
    const Traits t = traits_of(m);
    if (!t.additive) reject(p, t);
    KnapsackInstance inst;
    for (NodeId b : m.tree.bas_ids()) {
      inst.value.push_back(m.damage_of(b));
      inst.weight.push_back(m.cost_of(b));
    }
    return inst;
  }
};

}  // namespace

Registry Registry::with_builtins() {
  Registry r;
  r.add(std::make_shared<EnumerativeBackend>());
  r.add(std::make_shared<BottomUpBackend>());
  r.add(std::make_shared<BilpBackend>());
  r.add(std::make_shared<BddBackend>());
  r.add(std::make_shared<Nsga2Backend>());
  r.add(std::make_shared<KnapsackBackend>());
  return r;
}

}  // namespace atcd::engine
