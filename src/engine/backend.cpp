#include "engine/backend.hpp"

namespace atcd::engine {

const char* to_string(Problem p) {
  constexpr const char* names[] = {"cdpf", "dgc", "cgd",
                                   "cedpf", "edgc", "cged"};
  static_assert(sizeof(names) / sizeof(names[0]) ==
                static_cast<std::size_t>(Problem::Cged) + 1);
  return names[static_cast<std::size_t>(p)];
}

namespace {

bool is_additive(const AttackTree& t, const std::vector<double>& damage) {
  for (NodeId v = 0; v < static_cast<NodeId>(t.node_count()); ++v)
    if (!t.is_bas(v) && damage[v] != 0.0) return false;
  return true;
}

}  // namespace

Traits traits_of(const CdAt& m) {
  return Traits{m.tree.is_treelike(), /*probabilistic=*/false,
                is_additive(m.tree, m.damage), m.tree.bas_count()};
}

Traits traits_of(const CdpAt& m) {
  return Traits{m.tree.is_treelike(), /*probabilistic=*/true,
                is_additive(m.tree, m.damage), m.tree.bas_count()};
}

bool Backend::supports(Problem p, const Traits& t) const {
  return unsupported_reason(p, t).empty();
}

std::string Backend::unsupported_reason(Problem p, const Traits& t) const {
  const Capabilities c = capabilities();
  const bool prob = is_probabilistic(p);
  const bool cell = t.treelike ? (prob ? c.tree_prob : c.tree_det)
                               : (prob ? c.dag_prob : c.dag_det);
  if (!cell) {
    // Name the coarser missing capability when a whole row/column is
    // absent; otherwise name the precise Table I cell.
    if (prob && !c.tree_prob && !c.dag_prob)
      return "does not support probabilistic models (problem " +
             std::string(to_string(p)) + " needs expected damage)";
    if (!prob && !c.tree_det && !c.dag_det)
      return "supports only probabilistic models (problem " +
             std::string(to_string(p)) + " is deterministic)";
    if (!t.treelike)
      return "does not support DAG-shaped models (requires treelike)";
    return std::string("does not support treelike ") +
           (prob ? "probabilistic" : "deterministic") + " models";
  }
  if (is_front(p) && !c.fronts)
    return "does not compute Pareto fronts (problem " +
           std::string(to_string(p)) + ")";
  if (c.additive_only && !t.additive)
    return "requires an additive model (zero damage on internal nodes)";
  return {};
}

void Backend::reject(Problem p, const Traits& t) const {
  std::string reason = unsupported_reason(p, t);
  if (reason.empty())
    reason = std::string("does not implement problem ") + to_string(p);
  throw UnsupportedError(std::string(to_string(p)) + ": engine '" + name() +
                         "' " + reason);
}

Front2d Backend::cdpf(const CdAt& m, const SolveContext&) const {
  return cdpf(m);
}
OptAttack Backend::dgc(const CdAt& m, double budget,
                       const SolveContext&) const {
  return dgc(m, budget);
}
OptAttack Backend::cgd(const CdAt& m, double threshold,
                       const SolveContext&) const {
  return cgd(m, threshold);
}
Front2d Backend::cedpf(const CdpAt& m, const SolveContext&) const {
  return cedpf(m);
}
OptAttack Backend::edgc(const CdpAt& m, double budget,
                        const SolveContext&) const {
  return edgc(m, budget);
}
OptAttack Backend::cged(const CdpAt& m, double threshold,
                        const SolveContext&) const {
  return cged(m, threshold);
}

Front2d Backend::cdpf(const CdAt& m) const {
  reject(Problem::Cdpf, traits_of(m));
}
OptAttack Backend::dgc(const CdAt& m, double) const {
  reject(Problem::Dgc, traits_of(m));
}
OptAttack Backend::cgd(const CdAt& m, double) const {
  reject(Problem::Cgd, traits_of(m));
}
Front2d Backend::cedpf(const CdpAt& m) const {
  reject(Problem::Cedpf, traits_of(m));
}
OptAttack Backend::edgc(const CdpAt& m, double) const {
  reject(Problem::Edgc, traits_of(m));
}
OptAttack Backend::cged(const CdpAt& m, double) const {
  reject(Problem::Cged, traits_of(m));
}

}  // namespace atcd::engine
