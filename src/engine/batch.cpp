#include "engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/trace.hpp"

namespace atcd::engine {

Instance Instance::of(Problem p, const CdAt& m, double bound,
                      std::string backend) {
  Instance in;
  in.problem = p;
  in.det = &m;
  in.bound = bound;
  in.backend = std::move(backend);
  return in;
}

Instance Instance::of(Problem p, const CdpAt& m, double bound,
                      std::string backend) {
  Instance in;
  in.problem = p;
  in.prob = &m;
  in.bound = bound;
  in.backend = std::move(backend);
  return in;
}

std::string instance_error(const Instance& in) {
  const bool needs_prob = is_probabilistic(in.problem);
  const std::string head = std::string("instance for ") + to_string(in.problem);
  if (in.det && in.prob)
    return head + " sets both a deterministic and a probabilistic model; "
                  "exactly one must be set";
  if (!in.det && !in.prob)
    return head + " lacks a model (neither det nor prob is set)";
  if (needs_prob && !in.prob)
    return head + " lacks a probabilistic model: " + to_string(in.problem) +
           " is probabilistic but the instance carries a deterministic model";
  if (!needs_prob && !in.det)
    return head + " lacks a deterministic model: " + to_string(in.problem) +
           " is deterministic but the instance carries a probabilistic model";
  return {};
}

namespace {

SolveResult run_instance(const Instance& in, const Planner& planner,
                         const SolveContext& ctx) {
  SolveResult out;
  if (std::string err = instance_error(in); !err.empty()) {
    out.error = std::move(err);
    return out;
  }
  const bool needs_prob = is_probabilistic(in.problem);
  const Traits t = needs_prob ? traits_of(*in.prob) : traits_of(*in.det);
  const Backend& b = in.backend.empty()
                         ? planner.plan(in.problem, t)
                         : planner.resolve(in.backend, in.problem, t);
  out.backend = b.name();
  switch (in.problem) {
    case Problem::Cdpf:
      out.front = b.cdpf(*in.det, ctx);
      break;
    case Problem::Dgc:
      out.attack = b.dgc(*in.det, in.bound, ctx);
      break;
    case Problem::Cgd:
      out.attack = b.cgd(*in.det, in.bound, ctx);
      break;
    case Problem::Cedpf:
      out.front = b.cedpf(*in.prob, ctx);
      break;
    case Problem::Edgc:
      out.attack = b.edgc(*in.prob, in.bound, ctx);
      break;
    case Problem::Cged:
      out.attack = b.cged(*in.prob, in.bound, ctx);
      break;
  }
  out.ok = true;
  return out;
}

Planner make_planner(const BatchOptions& opt) {
  const Registry& r = opt.registry ? *opt.registry : default_registry();
  const Policy& p = opt.policy ? *opt.policy : table_one_policy();
  return Planner(r, p);
}

/// run_instance() behind the optional cache hook: hits skip the solve,
/// successful misses are offered back for storage.  A whole-model hit
/// returns before the subtree memo is bound, so enabling both caches
/// never performs (or accounts) the same work twice.
SolveResult run_cached(const Instance& in, const Planner& planner,
                       const BatchOptions& opt) {
  SolveResult out;
  if (opt.cache && opt.cache->lookup(in, &out)) return out;
  SolveContext ctx;
  ctx.subtree = opt.subtree;
  {
    obs::SpanScope span("engine.solve");
    out = run_instance(in, planner, ctx);
  }
  if (out.ok && opt.cache) opt.cache->store(in, out);
  return out;
}

}  // namespace

SolveResult solve_one(const Instance& instance, const BatchOptions& opt) {
  const Planner planner = make_planner(opt);
  try {
    return run_cached(instance, planner, opt);
  } catch (const std::exception& e) {
    SolveResult out;
    out.error = e.what();
    return out;
  }
}

std::vector<SolveResult> solve_all(std::span<const Instance> instances,
                                   const BatchOptions& opt) {
  std::vector<SolveResult> results(instances.size());
  if (instances.empty()) return results;

  const Planner planner = make_planner(opt);
  std::size_t n_threads = opt.threads;
  if (n_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_threads = hw == 0 ? 2 : hw;
  }
  n_threads = std::min(n_threads, instances.size());

  // Work-stealing by atomic index: each worker pulls the next unsolved
  // instance, so fast instances don't wait behind slow ones.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= instances.size()) return;
      try {
        results[i] = run_cached(instances[i], planner, opt);
      } catch (const std::exception& e) {
        results[i].ok = false;
        results[i].error = e.what();
      }
    }
  };

  if (n_threads <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace atcd::engine
