#pragma once
/// \file backend.hpp
/// The engine subsystem's polymorphic solver interface.
///
/// A Backend bundles one solution method for the six cost-damage problems
/// (paper Secs. VI-IX) together with *capability metadata*: which of the
/// four model classes of Table I it handles (treelike/DAG x
/// deterministic/probabilistic), whether it is exact or approximate,
/// whether it can produce whole Pareto fronts, and any capacity bound on
/// the number of BASs.  The planner (planner.hpp) matches instances
/// against these capabilities instead of hard-coding Table I in
/// per-problem switches; the registry (registry.hpp) makes backends
/// discoverable by name for CLIs and benches.
///
/// A backend implements only the entry points its capabilities advertise;
/// the base-class defaults throw UnsupportedError with the precise
/// missing capability.

#include <cstddef>
#include <memory>
#include <string>

#include "core/bottom_up_core.hpp"
#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"
#include "util/error.hpp"

namespace atcd::engine {

/// The six cost-damage problems (Table I columns).
enum class Problem { Cdpf, Dgc, Cgd, Cedpf, Edgc, Cged };

const char* to_string(Problem p);

/// CEDPF / EDgC / CgED take a CdpAt; the other three take a CdAt.
inline bool is_probabilistic(Problem p) {
  return p == Problem::Cedpf || p == Problem::Edgc || p == Problem::Cged;
}

/// CDPF / CEDPF produce a Front2d; the rest a single OptAttack.
inline bool is_front(Problem p) {
  return p == Problem::Cdpf || p == Problem::Cedpf;
}

/// "No capacity bound" sentinel for Capabilities::max_bas.
inline constexpr std::size_t kNoCap = static_cast<std::size_t>(-1);

/// What a backend can do.  The four booleans in the first block are the
/// cells of the paper's Table I.
struct Capabilities {
  bool tree_det = false;   ///< treelike, deterministic (CDPF/DgC/CgD)
  bool dag_det = false;    ///< DAG-shaped, deterministic
  bool tree_prob = false;  ///< treelike, probabilistic (CEDPF/EDgC/CgED)
  bool dag_prob = false;   ///< DAG-shaped, probabilistic

  bool exact = true;     ///< results provably optimal (vs. approximate)
  bool fronts = true;    ///< supports the Pareto-front problems
  bool additive_only = false;  ///< requires zero damage on internal nodes
  /// The backend's computation is compositional over the tree and can
  /// consult/populate a per-subtree memo (SolveContext::subtree) — the
  /// capability incremental sessions (service/session.hpp) key on.
  bool incremental = false;
  std::size_t max_bas = kNoCap;  ///< capacity bound on |B| (enumeration)
};

/// Instance traits the planner matches against Capabilities.
struct Traits {
  bool treelike = true;
  bool probabilistic = false;
  bool additive = false;  ///< every internal node carries zero damage
  std::size_t bas = 0;    ///< |B|
};

Traits traits_of(const CdAt& m);
Traits traits_of(const CdpAt& m);

/// Factory for per-solve subtree memo visitors, implemented above the
/// engine layer (service::SubtreeCache).  An incremental-capable backend
/// binds a visitor to the exact (model, budget-class) its sweep runs
/// with — the budget is part of the memo key because budget pruning
/// (min_U) makes per-node fronts budget-dependent.  bind() may return
/// nullptr when the model is not memoizable (e.g. DAG-shaped); the
/// returned visitor borrows the model and must not outlive the call.
/// Implementations must be thread-safe (bound concurrently by batch
/// workers); each returned visitor is used from one thread only.
class SubtreeMemo {
 public:
  virtual ~SubtreeMemo() = default;
  virtual std::unique_ptr<atcd::detail::SubtreeVisitor> bind(
      const CdAt& m, double budget) = 0;
  virtual std::unique_ptr<atcd::detail::SubtreeVisitor> bind(
      const CdpAt& m, double budget) = 0;
};

/// Per-solve context passed alongside an instance.  Default-constructed
/// means "no extras" — the context entry points then behave exactly like
/// the plain ones.
struct SolveContext {
  SubtreeMemo* subtree = nullptr;  ///< per-subtree memo; null = none
};

/// One solution method with capability metadata.  Stateless and
/// thread-safe: all entry points are const and reentrant (the batch API
/// calls them from multiple threads).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// The six problem entry points.  Defaults throw UnsupportedError.
  virtual Front2d cdpf(const CdAt& m) const;
  virtual OptAttack dgc(const CdAt& m, double budget) const;
  virtual OptAttack cgd(const CdAt& m, double threshold) const;
  virtual Front2d cedpf(const CdpAt& m) const;
  virtual OptAttack edgc(const CdpAt& m, double budget) const;
  virtual OptAttack cged(const CdpAt& m, double threshold) const;

  /// Context-taking entry points.  Backends advertising `incremental`
  /// override these to consult ctx.subtree; the defaults ignore the
  /// context and delegate to the plain entry points, so callers can pass
  /// a context unconditionally.
  virtual Front2d cdpf(const CdAt& m, const SolveContext& ctx) const;
  virtual OptAttack dgc(const CdAt& m, double budget,
                        const SolveContext& ctx) const;
  virtual OptAttack cgd(const CdAt& m, double threshold,
                        const SolveContext& ctx) const;
  virtual Front2d cedpf(const CdpAt& m, const SolveContext& ctx) const;
  virtual OptAttack edgc(const CdpAt& m, double budget,
                         const SolveContext& ctx) const;
  virtual OptAttack cged(const CdpAt& m, double threshold,
                         const SolveContext& ctx) const;

  /// True when the capabilities cover problem \p p on a model with traits
  /// \p t.  Capacity (max_bas) is deliberately *not* checked here: it is
  /// advisory planner metadata; over-capacity runs throw CapacityError
  /// from the backend itself.
  bool supports(Problem p, const Traits& t) const;

  /// Human-readable reason why (p, t) is unsupported — names the missing
  /// capability (e.g. "does not support DAG-shaped models").  Empty when
  /// supported.
  std::string unsupported_reason(Problem p, const Traits& t) const;

 protected:
  /// Throws UnsupportedError("<name>: <reason>") for problem \p p on
  /// traits \p t; used by the default entry points.
  [[noreturn]] void reject(Problem p, const Traits& t) const;
};

}  // namespace atcd::engine
