#pragma once
/// \file planner.hpp
/// Capability-based engine selection, replacing the old pick_det /
/// pick_prob switches in core/problems.cpp.
///
/// Planner::plan() answers "which registered backend should solve problem
/// P on a model with these traits?" by delegating to a Policy.  The
/// default TableOnePolicy preserves the paper's Table I choices —
/// bottom-up on treelike models, BILP on deterministic DAGs, the BDD
/// fallback on probabilistic DAGs — expressed as a preference order over
/// engine names instead of hard-coded branches, so registering a new
/// exact engine makes it schedulable without touching the dispatch code.
/// Planner::resolve() handles explicit engine requests and produces
/// capability-naming UnsupportedErrors on mismatch.

#include <string>
#include <string_view>
#include <vector>

#include "engine/registry.hpp"

namespace atcd::engine {

/// Chooses a backend for a (problem, traits) pair.  Subclass to override
/// scheduling wholesale; for mild tweaks construct a TableOnePolicy with
/// a custom preference order.
class Policy {
 public:
  virtual ~Policy() = default;
  /// The chosen backend, or nullptr when no registered backend applies.
  virtual const Backend* choose(const Registry& r, Problem p,
                                const Traits& t) const = 0;
};

/// The default policy: paper Table I as a preference order.  Among
/// applicable *exact* backends the first in preference order wins (then
/// any remaining applicable exact backend in registration order).
/// Approximate backends are never auto-selected.  Backends whose
/// capacity bound the instance exceeds are chosen only when nothing
/// within capacity applies; they then raise CapacityError themselves,
/// matching the legacy auto-dispatch behavior.
class TableOnePolicy : public Policy {
 public:
  TableOnePolicy() = default;
  explicit TableOnePolicy(std::vector<std::string> preference)
      : preference_(std::move(preference)) {}

  const Backend* choose(const Registry& r, Problem p,
                        const Traits& t) const override;

 private:
  std::vector<std::string> preference_ = {"bottom-up", "bilp", "bdd",
                                          "knapsack", "enumerative"};
};

/// Shared instance of the default policy.
const Policy& table_one_policy();

/// Facade combining a registry and a policy.
class Planner {
 public:
  /// Uses default_registry() and the Table I policy.
  Planner();
  explicit Planner(const Registry& registry,
                   const Policy& policy = table_one_policy());

  /// Auto selection.  Throws UnsupportedError naming the problem and
  /// model class when no registered backend applies.
  const Backend& plan(Problem p, const Traits& t) const;

  /// Explicit selection by name.  Throws UnsupportedError when the name
  /// is unknown, or when the backend's capabilities do not cover (p, t)
  /// — the message names the missing capability
  /// (treelike/probabilistic/front/additive).
  const Backend& resolve(std::string_view name, Problem p,
                         const Traits& t) const;

  const Registry& registry() const { return *registry_; }

 private:
  const Registry* registry_;
  const Policy* policy_;
};

}  // namespace atcd::engine
