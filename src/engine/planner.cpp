#include "engine/planner.hpp"

#include <algorithm>

namespace atcd::engine {
namespace {

bool applicable(const Backend& b, Problem p, const Traits& t,
                bool respect_capacity) {
  const Capabilities c = b.capabilities();
  if (!c.exact) return false;  // approximate engines are opt-in only
  if (respect_capacity && t.bas > c.max_bas) return false;
  return b.supports(p, t);
}

}  // namespace

const Backend* TableOnePolicy::choose(const Registry& r, Problem p,
                                      const Traits& t) const {
  for (const bool respect_capacity : {true, false}) {
    for (const std::string& name : preference_)
      if (const Backend* b = r.find(name))
        if (applicable(*b, p, t, respect_capacity)) return b;
    for (const Backend* b : r.all()) {
      if (std::find(preference_.begin(), preference_.end(), b->name()) !=
          preference_.end())
        continue;  // already tried in preference order
      if (applicable(*b, p, t, respect_capacity)) return b;
    }
  }
  return nullptr;
}

const Policy& table_one_policy() {
  static const TableOnePolicy instance;
  return instance;
}

Planner::Planner() : Planner(default_registry()) {}

Planner::Planner(const Registry& registry, const Policy& policy)
    : registry_(&registry), policy_(&policy) {}

const Backend& Planner::plan(Problem p, const Traits& t) const {
  if (const Backend* b = policy_->choose(*registry_, p, t)) return *b;
  throw UnsupportedError(
      std::string(to_string(p)) + ": no registered engine supports " +
      (t.treelike ? "treelike " : "DAG-shaped ") +
      (t.probabilistic ? "probabilistic" : "deterministic") +
      " models (registered: " + registry_->names() + ")");
}

const Backend& Planner::resolve(std::string_view name, Problem p,
                                const Traits& t) const {
  const Backend& b = registry_->at(name);
  if (std::string reason = b.unsupported_reason(p, t); !reason.empty())
    throw UnsupportedError(std::string(to_string(p)) + ": engine '" +
                           b.name() + "' " + reason);
  return b;
}

}  // namespace atcd::engine
