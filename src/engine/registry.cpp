#include "engine/registry.hpp"

namespace atcd::engine {

void Registry::add(std::shared_ptr<const Backend> backend) {
  if (!backend) throw Error("Registry::add: null backend");
  if (find(backend->name()))
    throw Error(std::string("Registry::add: duplicate engine name '") +
                backend->name() + "'");
  backends_.push_back(std::move(backend));
}

const Backend* Registry::find(std::string_view name) const {
  for (const auto& b : backends_)
    if (name == b->name()) return b.get();
  return nullptr;
}

const Backend& Registry::at(std::string_view name) const {
  if (const Backend* b = find(name)) return *b;
  throw UnsupportedError("unknown engine '" + std::string(name) +
                         "' (registered: " + names() + ")");
}

std::vector<const Backend*> Registry::all() const {
  std::vector<const Backend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

std::string Registry::names() const {
  std::string out;
  for (const auto& b : backends_) {
    if (!out.empty()) out += ", ";
    out += b->name();
  }
  return out;
}

Registry& default_registry() {
  static Registry instance = Registry::with_builtins();
  return instance;
}

}  // namespace atcd::engine
