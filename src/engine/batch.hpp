#pragma once
/// \file batch.hpp
/// Batch solve API: fan a set of problem instances out across a small
/// thread pool — the first step toward the serving / heavy-traffic goal.
///
/// Instances reference caller-owned models (no copies); every backend is
/// stateless and reentrant, so concurrent solves need no locking.
/// solve_all() is deterministic: each instance is solved independently,
/// so results are identical to sequential solve_one() calls in any
/// thread configuration.  Per-instance failures (capacity, unsupported
/// class, solver errors) are captured in the result instead of tearing
/// down the batch.

#include <span>
#include <string>
#include <vector>

#include "engine/planner.hpp"

namespace atcd::engine {

/// One problem instance.  Exactly one of det/prob must be set, matching
/// is_probabilistic(problem); `bound` is the budget (DgC/EDgC) or
/// threshold (CgD/CgED) and is ignored by the front problems.
struct Instance {
  Problem problem = Problem::Cdpf;
  const CdAt* det = nullptr;
  const CdpAt* prob = nullptr;
  double bound = 0.0;
  std::string backend;  ///< explicit engine name; empty = planner's choice

  static Instance of(Problem p, const CdAt& m, double bound = 0.0,
                     std::string backend = {});
  static Instance of(Problem p, const CdpAt& m, double bound = 0.0,
                     std::string backend = {});
};

/// Outcome of one instance.
struct SolveResult {
  bool ok = false;
  std::string error;         ///< what() of the failure when !ok
  std::string backend;       ///< name of the engine that ran
  Front2d front;             ///< CDPF / CEDPF result
  OptAttack attack;          ///< DgC / CgD / EDgC / CgED result
};

/// Optional result-cache hook consulted by solve_one()/solve_all().
/// The engine layer defines only this interface; the implementation
/// lives above it (service::ResultCache keys entries by canonical model
/// hash).  Implementations must be thread-safe: solve_all() calls them
/// concurrently from every worker.
class SolveCache {
 public:
  virtual ~SolveCache() = default;
  /// Returns true and fills \p out when the instance's result is cached.
  virtual bool lookup(const Instance& in, SolveResult* out) = 0;
  /// Offers a successful result for storage (failures are never offered).
  virtual void store(const Instance& in, const SolveResult& result) = 0;
};

struct BatchOptions {
  /// Worker threads; 0 = min(hardware_concurrency, batch size).
  std::size_t threads = 0;
  /// Registry to resolve engines against; null = default_registry().
  const Registry* registry = nullptr;
  /// Auto-selection policy; null = the Table I default.
  const Policy* policy = nullptr;
  /// Result cache consulted before and fed after each solve; null = none.
  SolveCache* cache = nullptr;
  /// Per-subtree memo bound by incremental-capable backends (see
  /// Capabilities::incremental); null = none.  Independent of `cache`:
  /// a whole-model cache hit skips the solve entirely, so the two never
  /// store the same work twice — and each accounts only its own bytes.
  SubtreeMemo* subtree = nullptr;
};

/// Validates the model/problem pairing of an instance: exactly one of
/// det/prob must be set and it must match is_probabilistic(problem).
/// Returns an empty string when valid, else a message naming the
/// mismatch.  solve_one()/solve_all() report it as an ok=false result.
std::string instance_error(const Instance& instance);

/// Solves one instance synchronously.
SolveResult solve_one(const Instance& instance, const BatchOptions& opt = {});

/// Solves every instance, fanning out across the thread pool.  The i-th
/// result corresponds to the i-th instance.
std::vector<SolveResult> solve_all(std::span<const Instance> instances,
                                   const BatchOptions& opt = {});

}  // namespace atcd::engine
