#pragma once
/// \file batch.hpp
/// Batch solve API: fan a set of problem instances out across a small
/// thread pool — the first step toward the serving / heavy-traffic goal.
///
/// Instances reference caller-owned models (no copies); every backend is
/// stateless and reentrant, so concurrent solves need no locking.
/// solve_all() is deterministic: each instance is solved independently,
/// so results are identical to sequential solve_one() calls in any
/// thread configuration.  Per-instance failures (capacity, unsupported
/// class, solver errors) are captured in the result instead of tearing
/// down the batch.

#include <span>
#include <string>
#include <vector>

#include "engine/planner.hpp"

namespace atcd::engine {

/// One problem instance.  Exactly one of det/prob must be set, matching
/// is_probabilistic(problem); `bound` is the budget (DgC/EDgC) or
/// threshold (CgD/CgED) and is ignored by the front problems.
struct Instance {
  Problem problem = Problem::Cdpf;
  const CdAt* det = nullptr;
  const CdpAt* prob = nullptr;
  double bound = 0.0;
  std::string backend;  ///< explicit engine name; empty = planner's choice

  static Instance of(Problem p, const CdAt& m, double bound = 0.0,
                     std::string backend = {});
  static Instance of(Problem p, const CdpAt& m, double bound = 0.0,
                     std::string backend = {});
};

/// Outcome of one instance.
struct SolveResult {
  bool ok = false;
  std::string error;         ///< what() of the failure when !ok
  std::string backend;       ///< name of the engine that ran
  Front2d front;             ///< CDPF / CEDPF result
  OptAttack attack;          ///< DgC / CgD / EDgC / CgED result
};

struct BatchOptions {
  /// Worker threads; 0 = min(hardware_concurrency, batch size).
  std::size_t threads = 0;
  /// Registry to resolve engines against; null = default_registry().
  const Registry* registry = nullptr;
  /// Auto-selection policy; null = the Table I default.
  const Policy* policy = nullptr;
};

/// Solves one instance synchronously.
SolveResult solve_one(const Instance& instance, const BatchOptions& opt = {});

/// Solves every instance, fanning out across the thread pool.  The i-th
/// result corresponds to the i-th instance.
std::vector<SolveResult> solve_all(std::span<const Instance> instances,
                                   const BatchOptions& opt = {});

}  // namespace atcd::engine
