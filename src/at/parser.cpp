#include "at/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace atcd {
namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

struct Cursor {
  const std::string& s;
  std::size_t pos = 0;
  int line;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  bool eof() {
    skip_ws();
    return pos >= s.size();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("line " + std::to_string(line) + ": " + msg);
  }
  std::string name() {
    skip_ws();
    std::size_t start = pos;
    while (pos < s.size() && is_name_char(s[pos])) ++pos;
    if (pos == start) fail("expected a name");
    return s.substr(start, pos - start);
  }
  double number() {
    skip_ws();
    std::size_t consumed = 0;
    double v = 0;
    try {
      v = std::stod(s.substr(pos), &consumed);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos += consumed;
    return v;
  }
  bool accept(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!accept(c)) fail(std::string("expected '") + c + "'");
  }
};

struct Attrs {
  double cost = 0, damage = 0, prob = 1;
};

Attrs parse_attrs(Cursor& cur) {
  Attrs a;
  while (!cur.eof()) {
    const std::string key = cur.name();
    cur.expect('=');
    const double v = cur.number();
    if (key == "cost")
      a.cost = v;
    else if (key == "damage")
      a.damage = v;
    else if (key == "prob")
      a.prob = v;
    else
      cur.fail("unknown attribute '" + key + "'");
  }
  return a;
}

}  // namespace

ParsedModel parse_model(const std::string& text) {
  ParsedModel m;
  std::unordered_map<std::string, NodeId> by_name;
  std::unordered_map<NodeId, double> node_damage;
  std::string root_name;
  bool have_root = false;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comment.
    if (const auto h = raw.find('#'); h != std::string::npos) raw.erase(h);
    Cursor cur{raw, 0, lineno};
    if (cur.eof()) continue;
    const std::string kw = cur.name();

    if (kw == "root") {
      root_name = cur.name();
      have_root = true;
      if (!cur.eof()) cur.fail("trailing input after root statement");
      continue;
    }

    if (kw == "bas") {
      const std::string name = cur.name();
      const Attrs a = parse_attrs(cur);
      const NodeId id = m.tree.add_bas(name);
      by_name[name] = id;
      m.cost.push_back(a.cost);
      if (a.prob < 0.0 || a.prob > 1.0)
        cur.fail("prob must lie in [0,1]");
      m.prob.push_back(a.prob);
      node_damage[id] = a.damage;
      continue;
    }

    if (kw == "or" || kw == "and") {
      const std::string name = cur.name();
      cur.expect('=');
      std::vector<NodeId> children;
      do {
        const std::string cname = cur.name();
        const auto it = by_name.find(cname);
        if (it == by_name.end())
          cur.fail("child '" + cname + "' not defined before use");
        children.push_back(it->second);
      } while (cur.accept(','));
      // Remaining tokens are attributes.
      const Attrs a = parse_attrs(cur);
      const NodeId id = m.tree.add_gate(
          kw == "or" ? NodeType::OR : NodeType::AND, name, std::move(children));
      by_name[name] = id;
      node_damage[id] = a.damage;
      continue;
    }

    cur.fail("unknown statement '" + kw + "'");
  }

  if (have_root) {
    const auto it = by_name.find(root_name);
    if (it == by_name.end())
      throw ParseError("root '" + root_name + "' was never defined");
    m.tree.set_root(it->second);
  }
  m.tree.finalize();
  m.damage.assign(m.tree.node_count(), 0.0);
  for (const auto& [id, d] : node_damage) m.damage[id] = d;
  return m;
}

ParsedModel parse_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open model file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_model(buf.str());
}

std::string serialize_model(const AttackTree& t,
                            const std::vector<double>& cost,
                            const std::vector<double>& damage,
                            const std::vector<double>* prob) {
  std::ostringstream out;
  out.precision(17);
  for (NodeId v : t.topological_order()) {
    const auto& n = t.node(v);
    if (n.type == NodeType::BAS) {
      out << "bas " << n.name;
      if (cost[n.bas_index] != 0) out << " cost=" << cost[n.bas_index];
      if (damage[v] != 0) out << " damage=" << damage[v];
      if (prob && (*prob)[n.bas_index] != 1.0)
        out << " prob=" << (*prob)[n.bas_index];
      out << '\n';
    } else {
      out << (n.type == NodeType::OR ? "or " : "and ") << n.name << " =";
      for (std::size_t i = 0; i < n.children.size(); ++i)
        out << (i ? ", " : " ") << t.name(n.children[i]);
      if (damage[v] != 0) out << " damage=" << damage[v];
      out << '\n';
    }
  }
  out << "root " << t.name(t.root()) << '\n';
  return out.str();
}

}  // namespace atcd
