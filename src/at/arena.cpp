#include "at/arena.hpp"

namespace atcd {

ArenaTree ArenaTree::of(const AttackTree& t) {
  if (!t.finalized()) throw ModelError("arena: tree not finalized");
  const std::uint32_t n = static_cast<std::uint32_t>(t.node_count());

  ArenaTree a;
  a.treelike_ = t.is_treelike();
  a.bas_count_ = static_cast<std::uint32_t>(t.bas_count());
  a.type_.reserve(n);
  a.bas_index_.reserve(n);
  a.subtree_size_.reserve(n);
  a.orig_.reserve(n);
  a.arena_of_.assign(n, ~std::uint32_t{0});

  // Iterative DFS post-order from the root, children in original order.
  // Each node is assigned its arena id when it *finishes* — children
  // (and, on DAGs, every node already discovered) get smaller ids.
  struct Frame {
    NodeId v;
    std::uint32_t next_child = 0;  // index into t.children(v)
  };
  std::vector<Frame> stack;
  stack.push_back({t.root()});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& cs = t.node(f.v).children;
    if (f.next_child < cs.size()) {
      const NodeId c = cs[f.next_child++];
      // On DAGs a shared child is assigned once, at its first finish; an
      // unfinished child can never be re-reached (that would be a cycle).
      if (a.arena_of_[c] == ~std::uint32_t{0}) stack.push_back({c});
      continue;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(a.orig_.size());
    a.arena_of_[f.v] = id;
    a.orig_.push_back(f.v);
    const auto& node = t.node(f.v);
    a.type_.push_back(node.type);
    a.bas_index_.push_back(node.type == NodeType::BAS ? node.bas_index
                                                      : ~std::uint32_t{0});
    std::uint32_t sz = 1;
    if (a.treelike_)
      for (NodeId c : node.children) sz += a.subtree_size_[a.arena_of_[c]];
    a.subtree_size_.push_back(sz);
    stack.pop_back();
  }

  // CSR children: offsets first, then edges, both in arena order.
  a.child_off_.assign(n + 1, 0);
  for (std::uint32_t id = 0; id < n; ++id)
    a.child_off_[id + 1] =
        a.child_off_[id] +
        static_cast<std::uint32_t>(t.node(a.orig_[id]).children.size());
  a.child_.resize(a.child_off_[n]);
  for (std::uint32_t id = 0; id < n; ++id) {
    std::uint32_t at = a.child_off_[id];
    for (NodeId c : t.node(a.orig_[id]).children) a.child_[at++] = a.arena_of_[c];
  }
  return a;
}

ArenaModel ArenaModel::of(const AttackTree& t, const std::vector<double>& cost,
                          const std::vector<double>& damage,
                          const std::vector<double>* prob) {
  ArenaModel m;
  m.tree = ArenaTree::of(t);
  const std::uint32_t n = m.tree.size();
  m.cost.assign(n, 0.0);
  m.damage.resize(n);
  m.prob.assign(n, 1.0);
  for (std::uint32_t a = 0; a < n; ++a) {
    m.damage[a] = damage[m.tree.orig_of(a)];
    if (m.tree.is_bas(a)) {
      const std::uint32_t b = m.tree.bas_index(a);
      m.cost[a] = cost[b];
      if (prob) m.prob[a] = (*prob)[b];
    }
  }
  return m;
}

ArenaModel ArenaModel::of(const CdAt& m) {
  m.validate();
  return of(m.tree, m.cost, m.damage, nullptr);
}

ArenaModel ArenaModel::of(const CdpAt& m) {
  m.validate();
  return of(m.tree, m.cost, m.damage, &m.prob);
}

void arena_structure(const ArenaTree& t, const Attack& x,
                     std::vector<char>* s) {
  const std::uint32_t n = t.size();
  s->resize(n);
  char* sv = s->data();
  const std::uint32_t* edges = t.child_edges().data();
  const std::vector<std::uint32_t>& off = t.child_offsets();
  for (std::uint32_t a = 0; a < n; ++a) {
    switch (t.type(a)) {
      case NodeType::BAS:
        sv[a] = x.test(t.bas_index(a)) ? 1 : 0;
        break;
      case NodeType::OR: {
        char val = 0;
        for (std::uint32_t e = off[a]; e < off[a + 1]; ++e) val |= sv[edges[e]];
        sv[a] = val;
        break;
      }
      case NodeType::AND: {
        char val = 1;
        for (std::uint32_t e = off[a]; e < off[a + 1]; ++e) val &= sv[edges[e]];
        sv[a] = val;
        break;
      }
    }
  }
}

double arena_total_damage(const ArenaTree& t, const Attack& x,
                          const std::vector<double>& damage_by_orig,
                          std::vector<char>* s) {
  arena_structure(t, x, s);
  // Sum in original NodeId order: bit-identical to total_damage().
  const char* sv = s->data();
  double sum = 0.0;
  for (NodeId v = 0; v < damage_by_orig.size(); ++v)
    if (sv[t.arena_of(v)]) sum += damage_by_orig[v];
  return sum;
}

void arena_probabilistic_structure(const ArenaModel& m, const Attack& x,
                                   std::vector<double>* ps) {
  const ArenaTree& t = m.tree;
  if (!t.treelike())
    throw UnsupportedError(
        "arena_probabilistic_structure: per-node products are only exact on "
        "treelike ATs; use the BDD engine for DAGs");
  const std::uint32_t n = t.size();
  ps->resize(n);
  double* pv = ps->data();
  const std::uint32_t* edges = t.child_edges().data();
  const std::vector<std::uint32_t>& off = t.child_offsets();
  for (std::uint32_t a = 0; a < n; ++a) {
    switch (t.type(a)) {
      case NodeType::BAS:
        pv[a] = x.test(t.bas_index(a)) ? m.prob[a] : 0.0;
        break;
      case NodeType::OR: {
        // p ⋆ q = p + q - pq folded in child order — the association of
        // probabilistic_structure() and the bottom-up engine, so all
        // three paths agree to the last ulp.
        double p = 0.0;
        for (std::uint32_t e = off[a]; e < off[a + 1]; ++e) {
          const double q = pv[edges[e]];
          p = p + q - p * q;
        }
        pv[a] = p;
        break;
      }
      case NodeType::AND: {
        double p = 1.0;
        for (std::uint32_t e = off[a]; e < off[a + 1]; ++e) p *= pv[edges[e]];
        pv[a] = p;
        break;
      }
    }
  }
}

double arena_expected_damage(const ArenaModel& m, const Attack& x,
                             const std::vector<double>& damage_by_orig,
                             std::vector<double>* ps) {
  arena_probabilistic_structure(m, x, ps);
  const double* pv = ps->data();
  double sum = 0.0;
  for (NodeId v = 0; v < damage_by_orig.size(); ++v)
    sum += pv[m.tree.arena_of(v)] * damage_by_orig[v];
  return sum;
}

}  // namespace atcd
