#include "at/structure.hpp"

namespace atcd {

std::vector<char> evaluate_structure(const AttackTree& t, const Attack& x) {
  if (!t.finalized()) throw ModelError("evaluate_structure: tree not finalized");
  if (x.size() != t.bas_count())
    throw ModelError("evaluate_structure: attack size mismatch");
  std::vector<char> s(t.node_count(), 0);
  for (NodeId v : t.topological_order()) {
    const auto& n = t.node(v);
    switch (n.type) {
      case NodeType::BAS:
        s[v] = x.test(n.bas_index) ? 1 : 0;
        break;
      case NodeType::OR: {
        char val = 0;
        for (NodeId c : n.children) val |= s[c];
        s[v] = val;
        break;
      }
      case NodeType::AND: {
        char val = 1;
        for (NodeId c : n.children) val &= s[c];
        s[v] = val;
        break;
      }
    }
  }
  return s;
}

bool structure(const AttackTree& t, const Attack& x, NodeId v) {
  return evaluate_structure(t, x)[v] != 0;
}

bool is_successful(const AttackTree& t, const Attack& x) {
  return structure(t, x, t.root());
}

Attack empty_attack(const AttackTree& t) { return Attack(t.bas_count()); }

Attack make_attack(const AttackTree& t,
                   const std::vector<std::string>& bas_names) {
  Attack x(t.bas_count());
  for (const auto& name : bas_names) {
    const auto id = t.find(name);
    if (!id) throw ModelError("make_attack: unknown BAS '" + name + "'");
    if (!t.is_bas(*id))
      throw ModelError("make_attack: node '" + name + "' is not a BAS");
    x.set(t.bas_index(*id));
  }
  return x;
}

std::string attack_to_string(const AttackTree& t, const Attack& x) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!x.test(i)) continue;
    if (!first) out += ", ";
    out += t.name(t.bas_id(static_cast<std::uint32_t>(i)));
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace atcd
