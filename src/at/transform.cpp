#include "at/transform.hpp"

namespace atcd {

BinarizeResult binarize(const AttackTree& t) {
  if (!t.finalized()) throw ModelError("binarize: tree not finalized");
  BinarizeResult r;
  r.node_map.assign(t.node_count(), kNoNode);

  // Creation order of t is children-before-parents, so a single pass can
  // rebuild every node after its children.
  for (NodeId v : t.topological_order()) {
    const auto& n = t.node(v);
    if (n.type == NodeType::BAS) {
      const NodeId nv = r.tree.add_bas(n.name);
      r.node_map[v] = nv;
      continue;
    }
    // Map children, then chain them pairwise right-to-left:
    // g(c1, c2, ..., ck) => g(c1, g(c2, ... g(c_{k-1}, c_k)...)).
    std::vector<NodeId> cs;
    cs.reserve(n.children.size());
    for (NodeId c : n.children) cs.push_back(r.node_map[c]);
    if (cs.size() <= 2) {
      r.node_map[v] = r.tree.add_gate(n.type, n.name, cs);
      continue;
    }
    NodeId acc = cs.back();
    int aux = 0;
    for (std::size_t i = cs.size() - 1; i-- > 1;) {
      acc = r.tree.add_gate(n.type, n.name + "#aux" + std::to_string(aux++),
                            {cs[i], acc});
    }
    r.node_map[v] = r.tree.add_gate(n.type, n.name, {cs[0], acc});
  }

  r.tree.set_root(r.node_map[t.root()]);
  r.tree.finalize();

  r.origin.assign(r.tree.node_count(), kNoNode);
  for (NodeId v = 0; v < t.node_count(); ++v) r.origin[r.node_map[v]] = v;
  return r;
}

SubtreeResult subtree(const AttackTree& t, NodeId v) {
  if (!t.finalized()) throw ModelError("subtree: tree not finalized");
  if (v >= t.node_count()) throw ModelError("subtree: unknown node");

  // Mark reachable nodes.
  std::vector<char> reach(t.node_count(), 0);
  std::vector<NodeId> stack{v};
  reach[v] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId c : t.children(u))
      if (!reach[c]) {
        reach[c] = 1;
        stack.push_back(c);
      }
  }

  SubtreeResult r;
  r.node_map.assign(t.node_count(), kNoNode);
  for (NodeId u : t.topological_order()) {
    if (!reach[u]) continue;
    const auto& n = t.node(u);
    if (n.type == NodeType::BAS) {
      r.node_map[u] = r.tree.add_bas(n.name);
    } else {
      std::vector<NodeId> cs;
      cs.reserve(n.children.size());
      for (NodeId c : n.children) cs.push_back(r.node_map[c]);
      r.node_map[u] = r.tree.add_gate(n.type, n.name, cs);
    }
  }
  r.tree.set_root(r.node_map[v]);
  r.tree.finalize();
  return r;
}

}  // namespace atcd
