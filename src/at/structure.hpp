#pragma once
/// \file structure.hpp
/// The structure function S : A x N -> B of Definition 3: given an attack
/// x (a set of activated BASs) and a node v, S(x,v) says whether v is
/// reached by x.  Evaluated for all nodes at once in O(|N|+|E|) over the
/// topological order — this also serves as the inner loop of the
/// enumerative baseline.

#include <vector>

#include "at/attack_tree.hpp"
#include "util/bitset.hpp"

namespace atcd {

/// An attack: bit i corresponds to the BAS with dense index i (Def. 2).
using Attack = DynBitset;

/// Returns S(x, v) for every node v, indexed by NodeId.
/// Precondition: t.finalized() and x.size() == t.bas_count().
std::vector<char> evaluate_structure(const AttackTree& t, const Attack& x);

/// Returns S(x, v) for a single node (evaluates the whole sub-DAG).
bool structure(const AttackTree& t, const Attack& x, NodeId v);

/// True iff the attack reaches the root (a "successful" attack in the
/// terminology of prior work; this paper deliberately also scores
/// unsuccessful attacks).
bool is_successful(const AttackTree& t, const Attack& x);

/// The empty attack over t's BASs.
Attack empty_attack(const AttackTree& t);

/// Attack activating exactly the named BASs.  Throws ModelError if a name
/// is unknown or names a non-leaf.
Attack make_attack(const AttackTree& t, const std::vector<std::string>& bas_names);

/// Human-readable set notation, e.g. "{pb, fd}".
std::string attack_to_string(const AttackTree& t, const Attack& x);

}  // namespace atcd
