#pragma once
/// \file attack_tree.hpp
/// The attack-tree (AT) data structure of the paper, Definition 1:
/// a rooted directed acyclic graph whose nodes are typed BAS / OR / AND,
/// where exactly the leaves are BASs.
///
/// Despite the name an AT is not necessarily a tree; when the underlying
/// DAG is a tree it is called *treelike*, otherwise *DAG-like*.  Several
/// engines (the bottom-up ones) are only correct on treelike ATs, so the
/// class exposes an O(|N|+|E|) treelike test.
///
/// Node identity is a dense index NodeId in [0, node_count()).  BASs are
/// additionally given a dense *BAS index* in [0, bas_count()) in order of
/// creation; attacks (util/bitset.hpp) are indexed by BAS index.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace atcd {

/// Node type, Definition 1.  gamma(v) = BAS iff v is a leaf.
enum class NodeType : std::uint8_t { BAS, OR, AND };

/// Returns "BAS" / "OR" / "AND".
const char* to_string(NodeType t);

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = ~NodeId{0};

/// A rooted DAG with BAS/OR/AND nodes.
///
/// Build-up protocol: add nodes with add_bas()/add_gate(), children must
/// already exist (this makes cycles impossible by construction), then call
/// set_root() (or rely on the single parentless node) and finalize().
/// finalize() validates the model and computes derived data (topological
/// order, parent lists, BAS list, treelike flag).  Analyses require a
/// finalized tree.
class AttackTree {
 public:
  /// Per-node record.
  struct Node {
    NodeType type = NodeType::BAS;
    std::string name;
    std::vector<NodeId> children;  ///< empty iff type == BAS
    std::vector<NodeId> parents;   ///< filled by finalize()
    std::uint32_t bas_index = 0;   ///< dense index among BASs (BAS only)
  };

  AttackTree() = default;

  /// Adds a leaf node.  \p name must be unique and non-empty.
  NodeId add_bas(std::string name);

  /// Adds an internal node of type \p type (OR or AND) over \p children.
  /// Children must be existing node ids.  At least one child is required;
  /// single-child gates are allowed (they occur in published case studies
  /// as chain nodes).
  NodeId add_gate(NodeType type, std::string name,
                  std::vector<NodeId> children);

  /// Declares the root explicitly.  Optional if exactly one node has no
  /// parent at finalize() time.
  void set_root(NodeId v);

  /// Validates and freezes the structure.  Throws ModelError on: empty
  /// tree, no/ambiguous root, nodes unreachable from the root, or a gate
  /// with zero children.  Idempotent.
  void finalize();

  bool finalized() const { return finalized_; }

  // ---- Introspection (valid after finalize(), except counts/name). ----

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t bas_count() const { return bas_ids_.size(); }

  const Node& node(NodeId v) const { return nodes_.at(v); }
  NodeType type(NodeId v) const { return nodes_.at(v).type; }
  bool is_bas(NodeId v) const { return type(v) == NodeType::BAS; }
  const std::string& name(NodeId v) const { return nodes_.at(v).name; }
  const std::vector<NodeId>& children(NodeId v) const {
    return nodes_.at(v).children;
  }
  const std::vector<NodeId>& parents(NodeId v) const {
    return nodes_.at(v).parents;
  }

  NodeId root() const { return root_; }

  /// Node ids of all BASs, in BAS-index order.
  const std::vector<NodeId>& bas_ids() const { return bas_ids_; }

  /// Dense BAS index of leaf \p v.  Precondition: is_bas(v).
  std::uint32_t bas_index(NodeId v) const { return nodes_.at(v).bas_index; }

  /// Node id of the BAS with dense index \p i.
  NodeId bas_id(std::uint32_t i) const { return bas_ids_.at(i); }

  /// Looks a node up by name.
  std::optional<NodeId> find(const std::string& name) const;

  /// True iff every node has at most one parent (and hence the DAG is a
  /// tree rooted at root()).
  bool is_treelike() const { return treelike_; }

  /// Children-before-parents order covering all nodes reachable from the
  /// root (i.e. all nodes, by the finalize() validation).
  const std::vector<NodeId>& topological_order() const { return topo_; }

  /// Number of edges.
  std::size_t edge_count() const { return edge_count_; }

  /// Process-unique id of this tree's frozen structure, assigned by
  /// finalize() (0 before).  Copies of a finalized tree share the id —
  /// the structure can never diverge again — so it is a sound cache key
  /// for structure-derived data (e.g. the arena mirror) across
  /// copy-on-write model clones.
  std::uint64_t structure_id() const { return structure_id_; }

 private:
  void require_not_finalized() const;

  std::vector<Node> nodes_;
  std::vector<NodeId> bas_ids_;
  std::vector<NodeId> topo_;
  NodeId root_ = kNoNode;
  std::size_t edge_count_ = 0;
  std::uint64_t structure_id_ = 0;
  bool treelike_ = false;
  bool finalized_ = false;
};

}  // namespace atcd
