#pragma once
/// \file dot.hpp
/// Graphviz DOT export of decorated attack trees, for documentation and
/// debugging.  Gates are drawn as boxes labelled with their type, BASs as
/// ellipses; nonzero damage/cost/probability values are shown in the label
/// in the style of the paper's figures.

#include <string>
#include <vector>

#include "at/attack_tree.hpp"

namespace atcd {

/// Renders the tree as a DOT digraph.  Any decoration vector may be empty
/// to omit that attribute.  \p cost and \p prob are indexed by BAS index,
/// \p damage by NodeId.
std::string to_dot(const AttackTree& t,
                   const std::vector<double>& cost = {},
                   const std::vector<double>& damage = {},
                   const std::vector<double>& prob = {});

}  // namespace atcd
