#include "at/attack_tree.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

namespace atcd {

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::BAS:
      return "BAS";
    case NodeType::OR:
      return "OR";
    case NodeType::AND:
      return "AND";
  }
  return "?";
}

void AttackTree::require_not_finalized() const {
  if (finalized_)
    throw ModelError("AttackTree: cannot modify a finalized tree");
}

NodeId AttackTree::add_bas(std::string name) {
  require_not_finalized();
  if (name.empty()) throw ModelError("AttackTree: node name must be non-empty");
  if (find(name)) throw ModelError("AttackTree: duplicate node name '" + name + "'");
  Node n;
  n.type = NodeType::BAS;
  n.name = std::move(name);
  n.bas_index = static_cast<std::uint32_t>(bas_ids_.size());
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  bas_ids_.push_back(id);
  return id;
}

NodeId AttackTree::add_gate(NodeType type, std::string name,
                            std::vector<NodeId> children) {
  require_not_finalized();
  if (type == NodeType::BAS)
    throw ModelError("AttackTree: add_gate requires OR or AND");
  if (name.empty()) throw ModelError("AttackTree: node name must be non-empty");
  if (find(name)) throw ModelError("AttackTree: duplicate node name '" + name + "'");
  if (children.empty())
    throw ModelError("AttackTree: gate '" + name + "' must have children");
  std::unordered_set<NodeId> seen;
  for (NodeId c : children) {
    if (c >= nodes_.size())
      throw ModelError("AttackTree: gate '" + name + "' references unknown child");
    if (!seen.insert(c).second)
      throw ModelError("AttackTree: gate '" + name + "' has duplicate child '" +
                       nodes_[c].name + "'");
  }
  Node n;
  n.type = type;
  n.name = std::move(name);
  n.children = std::move(children);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  return id;
}

void AttackTree::set_root(NodeId v) {
  require_not_finalized();
  if (v >= nodes_.size()) throw ModelError("AttackTree: set_root on unknown node");
  root_ = v;
}

std::optional<NodeId> AttackTree::find(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return i;
  return std::nullopt;
}

void AttackTree::finalize() {
  if (finalized_) return;
  if (nodes_.empty()) throw ModelError("AttackTree: empty tree");

  // Parent lists and edge count.
  edge_count_ = 0;
  for (auto& n : nodes_) n.parents.clear();
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    for (NodeId c : nodes_[v].children) {
      nodes_[c].parents.push_back(v);
      ++edge_count_;
    }
  }

  // Root: explicit, or the unique parentless node.
  if (root_ == kNoNode) {
    NodeId candidate = kNoNode;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (nodes_[v].parents.empty()) {
        if (candidate != kNoNode)
          throw ModelError(
              "AttackTree: multiple parentless nodes ('" +
              nodes_[candidate].name + "', '" + nodes_[v].name +
              "'); call set_root()");
        candidate = v;
      }
    }
    if (candidate == kNoNode)
      throw ModelError("AttackTree: no parentless node found for root");
    root_ = candidate;
  }

  // Reachability from the root; every node must be part of the model.
  // Children always precede their parent in creation order is NOT
  // guaranteed for reachability, so do an explicit DFS.
  std::vector<char> reached(nodes_.size(), 0);
  std::vector<NodeId> stack{root_};
  reached[root_] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId c : nodes_[v].children) {
      if (!reached[c]) {
        reached[c] = 1;
        stack.push_back(c);
      }
    }
  }
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (!reached[v])
      throw ModelError("AttackTree: node '" + nodes_[v].name +
                       "' unreachable from root '" + nodes_[root_].name + "'");

  // Children are created before parents (add_gate checks ids exist), so
  // creation order is already a valid children-before-parents order.
  topo_.resize(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) topo_[v] = v;

  treelike_ = std::all_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return n.parents.size() <= 1;
  });

  // Structure is immutable from here on; the id outlives copies (which
  // keep it — they can never diverge structurally).
  static std::atomic<std::uint64_t> next_structure_id{1};
  structure_id_ = next_structure_id.fetch_add(1, std::memory_order_relaxed);

  finalized_ = true;
}

}  // namespace atcd
