#include "at/dot.hpp"

#include <sstream>

namespace atcd {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const AttackTree& t, const std::vector<double>& cost,
                   const std::vector<double>& damage,
                   const std::vector<double>& prob) {
  std::ostringstream out;
  out << "digraph attack_tree {\n  rankdir=TB;\n";
  for (NodeId v = 0; v < t.node_count(); ++v) {
    const auto& n = t.node(v);
    std::ostringstream label;
    label << escape(n.name);
    if (n.type != NodeType::BAS) label << "\\n[" << to_string(n.type) << "]";
    if (!damage.empty() && damage[v] != 0) label << "\\nd=" << damage[v];
    if (n.type == NodeType::BAS) {
      if (!cost.empty() && cost[n.bas_index] != 0)
        label << "\\nc=" << cost[n.bas_index];
      if (!prob.empty() && prob[n.bas_index] != 1.0)
        label << "\\np=" << prob[n.bas_index];
    }
    out << "  n" << v << " [label=\"" << label.str() << "\", shape="
        << (n.type == NodeType::BAS ? "ellipse" : "box") << "];\n";
  }
  for (NodeId v = 0; v < t.node_count(); ++v)
    for (NodeId c : t.children(v)) out << "  n" << v << " -> n" << c << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace atcd
