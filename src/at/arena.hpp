#pragma once
/// \file arena.hpp
/// Flat arena mirror of a finalized AttackTree — the hot-path model
/// representation.
///
/// AttackTree is built for construction and introspection: per-node
/// std::vector children, heap-scattered Node records, name strings.  The
/// solver inner loops (the bottom-up sweep, per-attack structure
/// evaluation in the enumerative engine) only ever need types, child
/// lists, and decoration values — so ArenaTree packs exactly those into
/// contiguous structure-of-arrays columns:
///
///   * nodes are re-indexed 0..size()-1 in DFS *post-order* (children
///     before parents, child order preserved).  Any bottom-up pass is a
///     single forward array walk, no recursion.  On treelike models the
///     post-order additionally makes every subtree a contiguous index
///     range [v - subtree_size(v) + 1, v], which the arena sweep uses to
///     skip memoized subtrees and to run its front stack discipline.
///   * children are stored CSR-style: one shared edge array plus a
///     per-node offset pair — one indirection, perfectly prefetchable.
///   * per-node columns (type, BAS index, original NodeId) are separate
///     flat arrays, so a pass that needs only types touches only types.
///
/// The arena is a *view by copy*: building one is O(|N|+|E|) and does not
/// modify the AttackTree.  NodeId mappings (orig_of / arena_of) are kept
/// in both directions so callers that speak original NodeIds — the
/// SubtreeVisitor memo hooks, service::Session dirty-path tracking — keep
/// working unchanged on top of arena-routed solves.
///
/// ArenaModel additionally carries the decoration columns of a CdAt /
/// CdpAt re-indexed to arena order (cost and prob are per arena node,
/// zero / one on gates), so the sweep reads all per-node data from
/// adjacent arrays.

#include <cstdint>
#include <vector>

#include "at/attack_tree.hpp"
#include "core/cdat.hpp"

namespace atcd {

/// Flat, immutable, cache-friendly mirror of a finalized AttackTree.
class ArenaTree {
 public:
  /// Builds the arena.  Throws ModelError if \p t is not finalized.
  static ArenaTree of(const AttackTree& t);

  /// Number of nodes (== t.node_count()).
  std::uint32_t size() const { return static_cast<std::uint32_t>(type_.size()); }
  std::uint32_t bas_count() const { return bas_count_; }
  bool treelike() const { return treelike_; }

  /// The root is always the last node in post-order.
  std::uint32_t root() const { return size() - 1; }

  NodeType type(std::uint32_t a) const { return type_[a]; }
  bool is_bas(std::uint32_t a) const { return type_[a] == NodeType::BAS; }

  /// Children of arena node \p a, in the original child order.
  const std::uint32_t* child_begin(std::uint32_t a) const {
    return child_.data() + child_off_[a];
  }
  const std::uint32_t* child_end(std::uint32_t a) const {
    return child_.data() + child_off_[a + 1];
  }
  std::uint32_t child_count(std::uint32_t a) const {
    return child_off_[a + 1] - child_off_[a];
  }

  /// Dense BAS index of arena node \p a (BAS nodes only; the same index
  /// space as AttackTree::bas_index, so attacks translate 1:1).
  std::uint32_t bas_index(std::uint32_t a) const { return bas_index_[a]; }

  /// Original NodeId of arena node \p a and the inverse mapping.
  NodeId orig_of(std::uint32_t a) const { return orig_[a]; }
  std::uint32_t arena_of(NodeId v) const { return arena_of_[v]; }

  /// Number of nodes in the subtree rooted at \p a.  On treelike models
  /// the subtree occupies exactly [a - subtree_size(a) + 1, a]; on DAGs
  /// it counts the nodes first *discovered* below a (used only for
  /// traversal bookkeeping there).
  std::uint32_t subtree_size(std::uint32_t a) const { return subtree_size_[a]; }

  /// Raw columns, for kernels that stream whole arrays.
  const std::vector<NodeType>& types() const { return type_; }
  const std::vector<std::uint32_t>& child_offsets() const { return child_off_; }
  const std::vector<std::uint32_t>& child_edges() const { return child_; }

 private:
  std::vector<NodeType> type_;          // per arena node
  std::vector<std::uint32_t> child_off_;  // CSR offsets, size() + 1
  std::vector<std::uint32_t> child_;      // CSR edges (arena ids)
  std::vector<std::uint32_t> bas_index_;  // per arena node; ~0u on gates
  std::vector<std::uint32_t> subtree_size_;
  std::vector<NodeId> orig_;              // arena -> original NodeId
  std::vector<std::uint32_t> arena_of_;   // original NodeId -> arena
  std::uint32_t bas_count_ = 0;
  bool treelike_ = false;
};

/// An ArenaTree plus decoration columns in arena order.  `cost` and
/// `prob` are per *arena node* (0 / 1 on gates) so the sweep's BAS case
/// reads cost, damage, and probability from adjacent flat arrays;
/// `damage` is per arena node for all nodes.  `prob` is all-ones for
/// deterministic models — the same p = 1 embedding the bottom-up core
/// uses, so one sweep serves both settings.
struct ArenaModel {
  ArenaTree tree;
  std::vector<double> cost;    ///< per arena node; 0 on gates
  std::vector<double> damage;  ///< per arena node
  std::vector<double> prob;    ///< per arena node; 1 on gates

  /// Builds the arena model.  The model must validate().
  static ArenaModel of(const CdAt& m);
  static ArenaModel of(const CdpAt& m);
  static ArenaModel of(const AttackTree& t, const std::vector<double>& cost,
                       const std::vector<double>& damage,
                       const std::vector<double>* prob);
};

/// Evaluates the structure function bottom-up over the arena into \p s
/// (resized to tree.size(), indexed by *arena* id).  Equivalent to
/// at/structure.hpp's evaluate_structure, as a linear CSR walk.
void arena_structure(const ArenaTree& t, const Attack& x, std::vector<char>* s);

/// d̂(x) with the damage sum taken in *original NodeId order* — the exact
/// FP addition order of total_damage(), so arena-routed engines produce
/// bit-identical values.  \p damage_by_orig is the CdAt's damage vector;
/// \p s is scratch reused across calls.
double arena_total_damage(const ArenaTree& t, const Attack& x,
                          const std::vector<double>& damage_by_orig,
                          std::vector<char>* s);

/// PS(x, v) per arena node (treelike only — same precondition as
/// probabilistic_structure), OR gates folded in child order with
/// p ⋆ q = p + q - pq.  \p ps is scratch, resized to tree.size().
void arena_probabilistic_structure(const ArenaModel& m, const Attack& x,
                                   std::vector<double>* ps);

/// d̂_E(x) with the sum taken in original NodeId order — bit-identical to
/// expected_damage().  Treelike only.
double arena_expected_damage(const ArenaModel& m, const Attack& x,
                             const std::vector<double>& damage_by_orig,
                             std::vector<double>* ps);

}  // namespace atcd
