#pragma once
/// \file transform.hpp
/// Structural AT transformations.
///
/// The paper's bottom-up formalisation (Sec. VI) assumes binary gates
/// ("purely to simplify notation"); our engines fold n-ary gates natively,
/// but binarize() is provided for parity and is exercised by tests showing
/// both formulations agree.

#include <vector>

#include "at/attack_tree.hpp"

namespace atcd {

/// Result of binarize(): the rewritten tree plus index maps relating it to
/// the original so decorations (cost/damage/probability) can be carried over.
struct BinarizeResult {
  AttackTree tree;  ///< finalized; every gate has exactly 1 or 2 children
  /// For each node of the *original* tree, the corresponding node in the
  /// binarized tree (the node that carries its damage value).
  std::vector<NodeId> node_map;
  /// For each node of the *binarized* tree, the original node it stems
  /// from, or kNoNode for auxiliary gates introduced by the rewrite.
  std::vector<NodeId> origin;
};

/// Rewrites every k-ary gate (k > 2) into a right-leaning chain of binary
/// gates of the same type.  Auxiliary nodes are named "<name>#aux<i>" and
/// represent zero-damage intermediates.  BAS order (and hence attack
/// vectors) is preserved.
BinarizeResult binarize(const AttackTree& t);

/// Extracts the sub-DAG rooted at \p v as a standalone finalized tree.
/// node_map maps original reachable nodes to new ids (kNoNode elsewhere).
struct SubtreeResult {
  AttackTree tree;
  std::vector<NodeId> node_map;
};
SubtreeResult subtree(const AttackTree& t, NodeId v);

}  // namespace atcd
