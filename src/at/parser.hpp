#pragma once
/// \file parser.hpp
/// Textual model format for cost-damage attack trees.
///
/// Grammar (one statement per line; '#' starts a comment):
///
///   bas  <name> [cost=<num>] [damage=<num>] [prob=<num>]
///   or   <name> = <child> , <child> , ...   [damage=<num>]
///   and  <name> = <child> , <child> , ...   [damage=<num>]
///   root <name>
///
/// Names may contain letters, digits, '_', '-', '.'.  Children must be
/// defined before they are referenced (this guarantees acyclicity at parse
/// time).  `root` is optional when exactly one node is parentless.
/// Defaults: cost=0, damage=0, prob=1.
///
/// The parser is decoration-agnostic glue: it returns the bare AttackTree
/// plus decoration vectors; core/cdat.hpp assembles them into CdAt/CdpAt.

#include <iosfwd>
#include <string>
#include <vector>

#include "at/attack_tree.hpp"

namespace atcd {

/// Parse result: a finalized tree plus decorations.
struct ParsedModel {
  AttackTree tree;
  std::vector<double> cost;    ///< per BAS index
  std::vector<double> prob;    ///< per BAS index
  std::vector<double> damage;  ///< per NodeId
};

/// Parses the textual format above.  Throws ParseError with a line number
/// on malformed input, ModelError on structural problems.
ParsedModel parse_model(const std::string& text);

/// Reads a file and parses it.  Throws ParseError if unreadable.
ParsedModel parse_model_file(const std::string& path);

/// Serialises a model in the same format (topological order, so the output
/// always re-parses).  `with_prob` controls emission of prob= attributes.
std::string serialize_model(const AttackTree& t,
                            const std::vector<double>& cost,
                            const std::vector<double>& damage,
                            const std::vector<double>* prob = nullptr);

}  // namespace atcd
