#pragma once
/// \file lp.hpp
/// A small dense linear-programming solver (two-phase primal simplex).
///
/// This is the substrate the paper outsources to Gurobi [19] via YALMIP
/// [21]: the BILP translation of Sec. VII needs a continuous-relaxation
/// oracle for the branch-and-bound integer solver in ilp/ilp.hpp.  The
/// models arising from ATs are small (|N| variables, O(|E|) rows), so a
/// dense tableau with Bland anti-cycling is simple, robust and fast
/// enough; no sparsity or warm-starting is attempted.
///
/// Model form:  minimize c·x  subject to  row_lo ⋈ a·x ⋈ row_hi  (as LE /
/// GE / EQ rows) and per-variable bounds lo <= x <= hi (lo finite, hi may
/// be +inf).

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace atcd::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { LE, GE, EQ };

/// One linear constraint: terms · x  (sense)  rhs.
struct Row {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coeff)
  Sense sense = Sense::LE;
  double rhs = 0.0;
};

/// A linear program in minimization form.
class LinearProgram {
 public:
  /// Adds a variable with bounds [lo, hi] and objective coefficient obj.
  /// lo must be finite; hi may be kInf.  Returns the variable index.
  int add_var(double lo, double hi, double obj);

  /// Adds a constraint row.  Variable indices must exist.
  void add_row(std::vector<std::pair<int, double>> terms, Sense sense,
               double rhs);

  /// Overrides the bounds of an existing variable (used by branch & bound).
  void set_bounds(int var, double lo, double hi);

  /// Overrides the objective coefficient of an existing variable.
  void set_obj(int var, double obj);

  int num_vars() const { return static_cast<int>(obj_.size()); }
  std::size_t num_rows() const { return rows_.size(); }
  double lower_bound(int v) const { return lo_[static_cast<std::size_t>(v)]; }
  double upper_bound(int v) const { return hi_[static_cast<std::size_t>(v)]; }
  double objective_coeff(int v) const {
    return obj_[static_cast<std::size_t>(v)];
  }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> lo_, hi_, obj_;
  std::vector<Row> rows_;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

const char* to_string(LpStatus s);

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;       ///< valid when Optimal
  std::vector<double> x;        ///< primal solution (original variables)
  std::size_t iterations = 0;   ///< simplex pivots performed
};

/// Solves the LP.  Deterministic; tolerance ~1e-9.
LpResult solve(const LinearProgram& lp);

}  // namespace atcd::lp
