#include "lp/lp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace atcd::lp {
namespace {

constexpr double kTol = 1e-9;
constexpr std::size_t kMaxIters = 200000;

/// Dense simplex tableau in canonical equality form.
///
/// Layout: rows 0..m-1 are constraints, columns 0..n-1 are variables,
/// column n is the right-hand side.  `basis[i]` is the variable basic in
/// row i; basic columns are kept as unit columns.  `obj` is the reduced
/// cost row (length n+1); obj[n] is the *negated* current objective value.
struct Tableau {
  std::size_t m = 0, n = 0;
  std::vector<std::vector<double>> a;  // m x (n+1)
  std::vector<double> obj;             // n+1
  std::vector<int> basis;              // m
  std::size_t iterations = 0;

  void pivot(std::size_t row, std::size_t col) {
    const double piv = a[row][col];
    for (double& v : a[row]) v /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == row) continue;
      const double f = a[i][col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= n; ++j) a[i][j] -= f * a[row][j];
    }
    const double f = obj[col];
    if (f != 0.0)
      for (std::size_t j = 0; j <= n; ++j) obj[j] -= f * a[row][j];
    basis[row] = static_cast<int>(col);
    ++iterations;
  }

  /// Runs the simplex loop.  `allowed(j)` filters entering columns (used
  /// to ban artificials in phase 2).  Returns Optimal / Unbounded /
  /// IterationLimit.
  template <typename Allowed>
  LpStatus run(Allowed&& allowed) {
    std::size_t degenerate_streak = 0;
    while (true) {
      if (iterations > kMaxIters) return LpStatus::IterationLimit;
      const bool bland = degenerate_streak > 2 * (m + n);

      // Entering column: most negative reduced cost (Dantzig), or the
      // lowest-index negative one under Bland's anti-cycling rule.
      std::size_t enter = n;
      double best = -kTol;
      for (std::size_t j = 0; j < n; ++j) {
        if (!allowed(j)) continue;
        if (obj[j] < best) {
          best = obj[j];
          enter = j;
          if (bland) break;
        }
      }
      if (enter == n) return LpStatus::Optimal;

      // Leaving row: minimum ratio; Bland tie-break on basis index.
      std::size_t leave = m;
      double best_ratio = kInf;
      for (std::size_t i = 0; i < m; ++i) {
        if (a[i][enter] <= kTol) continue;
        const double ratio = a[i][n] / a[i][enter];
        if (ratio < best_ratio - kTol ||
            (ratio < best_ratio + kTol && leave != m &&
             basis[i] < basis[leave])) {
          best_ratio = ratio;
          leave = i;
        }
      }
      if (leave == m) return LpStatus::Unbounded;

      const double before = obj[n];
      pivot(leave, enter);
      degenerate_streak = std::abs(obj[n] - before) < kTol
                              ? degenerate_streak + 1
                              : 0;
    }
  }
};

}  // namespace

const char* to_string(LpStatus s) {
  switch (s) {
    case LpStatus::Optimal:
      return "optimal";
    case LpStatus::Infeasible:
      return "infeasible";
    case LpStatus::Unbounded:
      return "unbounded";
    case LpStatus::IterationLimit:
      return "iteration-limit";
  }
  return "?";
}

int LinearProgram::add_var(double lo, double hi, double obj) {
  if (!std::isfinite(lo)) throw SolverError("lp: lower bound must be finite");
  if (hi < lo) throw SolverError("lp: empty variable domain");
  lo_.push_back(lo);
  hi_.push_back(hi);
  obj_.push_back(obj);
  return static_cast<int>(obj_.size()) - 1;
}

void LinearProgram::add_row(std::vector<std::pair<int, double>> terms,
                            Sense sense, double rhs) {
  for (const auto& [v, coeff] : terms) {
    (void)coeff;
    if (v < 0 || v >= num_vars())
      throw SolverError("lp: row references unknown variable");
  }
  rows_.push_back(Row{std::move(terms), sense, rhs});
}

void LinearProgram::set_bounds(int var, double lo, double hi) {
  if (var < 0 || var >= num_vars()) throw SolverError("lp: unknown variable");
  if (!std::isfinite(lo)) throw SolverError("lp: lower bound must be finite");
  if (hi < lo) throw SolverError("lp: empty variable domain");
  lo_[static_cast<std::size_t>(var)] = lo;
  hi_[static_cast<std::size_t>(var)] = hi;
}

void LinearProgram::set_obj(int var, double obj) {
  if (var < 0 || var >= num_vars()) throw SolverError("lp: unknown variable");
  obj_[static_cast<std::size_t>(var)] = obj;
}

LpResult solve(const LinearProgram& lp) {
  const std::size_t nv = static_cast<std::size_t>(lp.num_vars());

  // Shift variables to z_j = x_j - lo_j >= 0 and turn finite upper bounds
  // into explicit LE rows.
  struct NormRow {
    std::vector<double> coeff;  // dense over structural vars
    Sense sense;
    double rhs;
  };
  std::vector<NormRow> norm;
  norm.reserve(lp.num_rows() + nv);
  for (const auto& r : lp.rows()) {
    NormRow nr{std::vector<double>(nv, 0.0), r.sense, r.rhs};
    for (const auto& [v, c] : r.terms) {
      nr.coeff[static_cast<std::size_t>(v)] += c;
      nr.rhs -= c * lp.lower_bound(v);
    }
    norm.push_back(std::move(nr));
  }
  for (std::size_t j = 0; j < nv; ++j) {
    const double hi = lp.upper_bound(static_cast<int>(j));
    if (std::isfinite(hi)) {
      NormRow nr{std::vector<double>(nv, 0.0), Sense::LE,
                 hi - lp.lower_bound(static_cast<int>(j))};
      nr.coeff[j] = 1.0;
      norm.push_back(std::move(nr));
    }
  }
  // Normalize signs so every rhs is >= 0.
  for (auto& r : norm) {
    if (r.rhs < 0.0) {
      for (double& c : r.coeff) c = -c;
      r.rhs = -r.rhs;
      if (r.sense == Sense::LE)
        r.sense = Sense::GE;
      else if (r.sense == Sense::GE)
        r.sense = Sense::LE;
    }
  }

  // ---- Power-of-two equilibration. ----
  // Models with hardened decorations (analysis/ multiplies BAS costs by
  // factors up to ~1e9) put coefficients of wildly different magnitude
  // into one tableau.  The pivoting tolerances here are absolute, so at
  // that scale accumulated rounding noise (~1e9 * 1e-16) dwarfs kTol:
  // phantom negative reduced costs keep the loop pivoting between noise
  // vertices until the iteration limit.  Scaling rows and columns by
  // powers of two is *exact* in binary floating point (mantissas are
  // untouched), and the variable bound rows built above anchor every
  // column near 1 — so a few alternating passes bring all row and column
  // maxima into [0.5, 1) without introducing a single rounding error.
  // The solution maps back as z_j = colscale_j * z'_j.
  auto pow2_inv = [](double amax) {
    if (amax <= 0.0 || !std::isfinite(amax)) return 1.0;
    int e = 0;
    std::frexp(amax, &e);
    return std::ldexp(1.0, -e);  // amax * result in [0.5, 1)
  };
  std::vector<double> colscale(nv, 1.0);
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    for (auto& r : norm) {
      double amax = 0.0;
      for (double c : r.coeff) amax = std::max(amax, std::abs(c));
      const double s = pow2_inv(amax);
      if (s != 1.0) {
        for (double& c : r.coeff) c *= s;
        r.rhs *= s;
        changed = true;
      }
    }
    for (std::size_t j = 0; j < nv; ++j) {
      double amax = 0.0;
      for (const auto& r : norm) amax = std::max(amax, std::abs(r.coeff[j]));
      const double s = pow2_inv(amax);
      if (s != 1.0) {
        for (auto& r : norm) r.coeff[j] *= s;
        colscale[j] *= s;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Scaled phase-2 objective (the reported objective value is recomputed
  // from the original coefficients at the end, so this only conditions
  // the reduced-cost row).
  std::vector<double> sobj(nv, 0.0);
  double obj_amax = 0.0;
  for (std::size_t j = 0; j < nv; ++j) {
    sobj[j] = lp.objective_coeff(static_cast<int>(j)) * colscale[j];
    obj_amax = std::max(obj_amax, std::abs(sobj[j]));
  }
  const double objscale = pow2_inv(obj_amax);
  for (double& c : sobj) c *= objscale;

  const std::size_t m = norm.size();
  // Column layout: [structural | slacks/surpluses | artificials].
  std::size_t n_slack = 0, n_art = 0;
  for (const auto& r : norm) {
    if (r.sense != Sense::EQ) ++n_slack;
    if (r.sense != Sense::LE) ++n_art;
  }
  const std::size_t n = nv + n_slack + n_art;
  const std::size_t art_begin = nv + n_slack;

  Tableau t;
  t.m = m;
  t.n = n;
  t.a.assign(m, std::vector<double>(n + 1, 0.0));
  t.basis.assign(m, -1);

  std::size_t slack_at = nv, art_at = art_begin;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& r = norm[i];
    for (std::size_t j = 0; j < nv; ++j) t.a[i][j] = r.coeff[j];
    t.a[i][n] = r.rhs;
    switch (r.sense) {
      case Sense::LE:
        t.a[i][slack_at] = 1.0;
        t.basis[i] = static_cast<int>(slack_at++);
        break;
      case Sense::GE:
        t.a[i][slack_at++] = -1.0;
        t.a[i][art_at] = 1.0;
        t.basis[i] = static_cast<int>(art_at++);
        break;
      case Sense::EQ:
        t.a[i][art_at] = 1.0;
        t.basis[i] = static_cast<int>(art_at++);
        break;
    }
  }

  LpResult result;

  // ---- Phase 1: minimize the sum of artificials. ----
  if (n_art > 0) {
    t.obj.assign(n + 1, 0.0);
    // Reduced costs of c1 = (0,...,0,1,...,1) w.r.t. the artificial basis:
    // subtract every artificial-basic row from the objective row.
    for (std::size_t i = 0; i < m; ++i) {
      if (static_cast<std::size_t>(t.basis[i]) >= art_begin)
        for (std::size_t j = 0; j <= n; ++j) t.obj[j] -= t.a[i][j];
    }
    for (std::size_t j = art_begin; j < n; ++j) t.obj[j] += 1.0;

    const LpStatus s1 = t.run([](std::size_t) { return true; });
    if (s1 == LpStatus::IterationLimit) {
      result.status = s1;
      result.iterations = t.iterations;
      return result;
    }
    if (-t.obj[n] > 1e-7) {  // phase-1 optimum > 0
      result.status = LpStatus::Infeasible;
      result.iterations = t.iterations;
      return result;
    }
    // Drive remaining artificials out of the basis where possible.
    for (std::size_t i = 0; i < m; ++i) {
      if (static_cast<std::size_t>(t.basis[i]) < art_begin) continue;
      std::size_t col = n;
      for (std::size_t j = 0; j < art_begin; ++j)
        if (std::abs(t.a[i][j]) > 1e-7) {
          col = j;
          break;
        }
      if (col < n) t.pivot(i, col);
      // else: redundant row; the artificial stays basic at value 0 and is
      // banned from re-entering in phase 2.
    }
  }

  // ---- Phase 2: scaled objective over the shifted, scaled variables. ----
  t.obj.assign(n + 1, 0.0);
  for (std::size_t j = 0; j < nv; ++j) t.obj[j] = sobj[j];
  // Make reduced costs of basic variables zero.
  for (std::size_t i = 0; i < m; ++i) {
    const auto b = static_cast<std::size_t>(t.basis[i]);
    const double cb = b < nv ? sobj[b] : 0.0;
    if (cb != 0.0)
      for (std::size_t j = 0; j <= n; ++j) t.obj[j] -= cb * t.a[i][j];
  }

  const LpStatus s2 =
      t.run([art_begin](std::size_t j) { return j < art_begin; });
  result.iterations = t.iterations;
  if (s2 != LpStatus::Optimal) {
    result.status = s2;
    return result;
  }

  // Extract the solution, un-scale, and un-shift.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    z[static_cast<std::size_t>(t.basis[i])] = t.a[i][n];
  result.x.resize(nv);
  result.objective = 0.0;
  for (std::size_t j = 0; j < nv; ++j) {
    result.x[j] = colscale[j] * z[j] + lp.lower_bound(static_cast<int>(j));
    result.objective += lp.objective_coeff(static_cast<int>(j)) * result.x[j];
  }
  result.status = LpStatus::Optimal;
  return result;
}

}  // namespace atcd::lp
