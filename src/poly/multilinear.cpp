#include "poly/multilinear.hpp"

#include <cmath>

namespace atcd::poly {

Multilinear Multilinear::constant(double c) {
  Multilinear p;
  if (c != 0.0) p.terms_.emplace(0, c);
  return p;
}

Multilinear Multilinear::variable(std::uint32_t i) {
  if (i >= kMaxVars) throw Error("multilinear: variable index out of range");
  Multilinear p;
  p.terms_.emplace(std::uint64_t{1} << i, 1.0);
  return p;
}

void Multilinear::add_term(std::uint64_t mask, double coeff) {
  if (coeff == 0.0) return;
  auto [it, inserted] = terms_.try_emplace(mask, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second == 0.0) terms_.erase(it);
  }
}

void Multilinear::check_capacity() const {
  if (terms_.size() > kMaxTerms)
    throw CapacityError(
        "multilinear: term count exceeded the capacity bound; the model "
        "has too many interacting shared nodes for the polynomial engine "
        "(use the BDD engine instead)");
}

Multilinear& Multilinear::operator+=(const Multilinear& o) {
  for (const auto& [mask, c] : o.terms_) add_term(mask, c);
  check_capacity();
  return *this;
}

Multilinear& Multilinear::operator-=(const Multilinear& o) {
  for (const auto& [mask, c] : o.terms_) add_term(mask, -c);
  check_capacity();
  return *this;
}

Multilinear operator*(const Multilinear& a, const Multilinear& b) {
  Multilinear out;
  for (const auto& [ma, ca] : a.terms_)
    for (const auto& [mb, cb] : b.terms_) out.add_term(ma | mb, ca * cb);
  out.check_capacity();
  return out;
}

Multilinear or_combine(const Multilinear& a, const Multilinear& b) {
  Multilinear out = a;
  out += b;
  out -= a * b;
  return out;
}

double Multilinear::evaluate(const std::vector<double>& q) const {
  double sum = 0.0;
  for (const auto& [mask, c] : terms_) {
    double prod = c;
    std::uint64_t m = mask;
    while (m) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
      if (i >= q.size())
        throw Error("multilinear: evaluation vector too short");
      prod *= q[i];
      m &= m - 1;
    }
    sum += prod;
  }
  return sum;
}

double Multilinear::coefficient(std::uint64_t mask) const {
  const auto it = terms_.find(mask);
  return it == terms_.end() ? 0.0 : it->second;
}

}  // namespace atcd::poly
