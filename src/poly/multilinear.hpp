#pragma once
/// \file multilinear.hpp
/// Multilinear polynomials over boolean indicator variables.
///
/// Substrate for the polynomial-ring engine (poly/poly_engine.hpp) that
/// the paper's conclusion sketches for probabilistic DAG-like ATs: "use a
/// bottom-up approach, but in a polynomial ring with formal variables for
/// nodes that occur multiple times ... and tweak addition to prevent
/// double counting".
///
/// A polynomial is a finite sum of monomials c · Π_{i∈S} t_i where every
/// t_i is a {0,1}-valued indicator.  Because t_i² = t_i, monomials are
/// identified by their variable *set* S (a bitmask), and products reduce
/// by set union.  For independent t_i with E[t_i] = q_i, linearity gives
/// E[poly] = Σ_S c_S Π_{i∈S} q_i — evaluation is exact, which is the
/// whole point: PS(x,v) of a DAG node is such a polynomial in the shared
/// BAS indicators, and expectation distributes over it.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace atcd::poly {

/// Maximum number of formal variables (monomial masks are 64-bit).
inline constexpr std::uint32_t kMaxVars = 40;

class Multilinear {
 public:
  /// The zero polynomial.
  Multilinear() = default;

  /// A constant polynomial.
  static Multilinear constant(double c);

  /// The single-variable polynomial t_i.
  static Multilinear variable(std::uint32_t i);

  bool is_zero() const { return terms_.empty(); }
  std::size_t term_count() const { return terms_.size(); }

  Multilinear& operator+=(const Multilinear& o);
  Multilinear& operator-=(const Multilinear& o);
  friend Multilinear operator+(Multilinear a, const Multilinear& b) {
    return a += b;
  }
  friend Multilinear operator-(Multilinear a, const Multilinear& b) {
    return a -= b;
  }

  /// Multilinear product: monomials combine by variable-set union
  /// (t_i² = t_i).
  friend Multilinear operator*(const Multilinear& a, const Multilinear& b);

  /// p ⋆ q = p + q - p·q — the OR-combinator of eq. (8), lifted to
  /// polynomials ("tweaked addition that prevents double counting").
  friend Multilinear or_combine(const Multilinear& a, const Multilinear& b);

  /// E[poly] for independent variables with E[t_i] = q[i].
  double evaluate(const std::vector<double>& q) const;

  /// Bound on the number of terms before CapacityError is thrown by the
  /// arithmetic (guards the exponential worst case).
  static constexpr std::size_t kMaxTerms = 1u << 20;

  /// Access for tests: coefficient of the monomial with variable mask m.
  double coefficient(std::uint64_t mask) const;

 private:
  void add_term(std::uint64_t mask, double coeff);
  void check_capacity() const;

  // monomial variable mask -> coefficient; zero coefficients are erased.
  std::unordered_map<std::uint64_t, double> terms_;
};

}  // namespace atcd::poly
