#include "poly/poly_engine.hpp"

namespace atcd {

PolyEngine::PolyEngine(const AttackTree& t) : tree_(t) {
  if (!t.finalized()) throw ModelError("PolyEngine: tree not finalized");
  // Count root->node paths; a BAS on >= 2 paths can be double-counted by
  // naive per-node products and therefore gets a formal variable.
  std::vector<double> paths(t.node_count(), 0.0);
  paths[t.root()] = 1.0;
  const auto& topo = t.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    for (NodeId c : t.children(*it)) paths[c] += paths[*it];
  }
  std::uint32_t next_var = 0;
  for (NodeId b : t.bas_ids()) {
    if (paths[b] >= 2.0) {
      if (next_var >= poly::kMaxVars)
        throw CapacityError(
            "PolyEngine: more shared BASs than the polynomial engine "
            "supports (" + std::to_string(poly::kMaxVars) + ")");
      var_of_bas_.emplace(t.bas_index(b), next_var++);
    }
  }
}

std::vector<double> PolyEngine::probabilistic_structure(
    const CdpAt& m, const Attack& x) const {
  if (x.size() != tree_.bas_count() || m.prob.size() != tree_.bas_count())
    throw ModelError("PolyEngine: attack/model size mismatch");

  // Expectation vector for the formal variables.
  std::vector<double> q(var_of_bas_.size(), 0.0);
  for (const auto& [bas, var] : var_of_bas_)
    q[var] = x.test(bas) ? m.prob[bas] : 0.0;

  std::vector<poly::Multilinear> ps(tree_.node_count());
  std::vector<double> out(tree_.node_count(), 0.0);
  for (NodeId v : tree_.topological_order()) {
    const auto& n = tree_.node(v);
    switch (n.type) {
      case NodeType::BAS: {
        const auto it = var_of_bas_.find(n.bas_index);
        if (it != var_of_bas_.end())
          ps[v] = poly::Multilinear::variable(it->second);
        else
          ps[v] = poly::Multilinear::constant(
              x.test(n.bas_index) ? m.prob[n.bas_index] : 0.0);
        break;
      }
      case NodeType::AND: {
        poly::Multilinear acc = poly::Multilinear::constant(1.0);
        for (NodeId c : n.children) acc = acc * ps[c];
        ps[v] = std::move(acc);
        break;
      }
      case NodeType::OR: {
        poly::Multilinear acc;  // zero
        for (NodeId c : n.children) acc = or_combine(acc, ps[c]);
        ps[v] = std::move(acc);
        break;
      }
    }
    out[v] = ps[v].evaluate(q);
  }
  return out;
}

double PolyEngine::expected_damage(const CdpAt& m, const Attack& x) const {
  const auto ps = probabilistic_structure(m, x);
  double sum = 0.0;
  for (NodeId v = 0; v < tree_.node_count(); ++v) sum += ps[v] * m.damage[v];
  return sum;
}

Front2d cedpf_poly(const CdpAt& m, std::size_t max_bas) {
  m.validate();
  if (m.tree.bas_count() > max_bas)
    throw CapacityError("cedpf_poly: " + std::to_string(m.tree.bas_count()) +
                        " BASs exceeds the enumeration cap of " +
                        std::to_string(max_bas));
  const PolyEngine engine(m.tree);
  const std::size_t nb = m.tree.bas_count();
  std::vector<FrontPoint> cands;
  cands.reserve(std::size_t{1} << nb);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << nb); ++mask) {
    Attack x = Attack::from_mask(nb, mask);
    double c = 0.0;
    for (std::size_t i = 0; i < nb; ++i)
      if (mask >> i & 1) c += m.cost[i];
    cands.push_back({CdPoint{c, engine.expected_damage(m, x)}, std::move(x)});
  }
  return Front2d::of_candidates(std::move(cands));
}

}  // namespace atcd
