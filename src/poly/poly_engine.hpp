#pragma once
/// \file poly_engine.hpp
/// The polynomial-ring engine for probabilistic DAG-like ATs — an
/// implementation of the approach the paper's conclusion proposes for its
/// open problem:
///
///   "One approach would be to use a bottom-up approach, but in a
///    polynomial ring with formal variables for nodes that occur multiple
///    times, rather than in the real numbers.  In that way, one can keep
///    track of which nodes occur twice, and tweak addition to prevent
///    double counting."
///
/// Per attack x, PS(x,v) is computed bottom-up as a multilinear
/// polynomial: BASs reachable from the root along more than one path get
/// a formal indicator variable (their successes would otherwise be
/// double-counted); single-path BASs contribute plain numbers.  AND
/// combines by polynomial product, OR by p ⋆ q = p + q − pq.  Evaluating
/// at E[t_b] = x_b·p(b) is exact because the polynomial is multilinear
/// and BAS successes are independent.
///
/// Complexity: exponential only in the number of *shared* BASs (vs the
/// BDD engine, whose cost depends on the whole structure) — the two
/// engines are complementary and cross-validate each other in tests.

#include "core/cdat.hpp"
#include "core/opt_result.hpp"
#include "pareto/front2d.hpp"
#include "poly/multilinear.hpp"

namespace atcd {

/// Per-tree compilation of the polynomial engine.
class PolyEngine {
 public:
  /// Analyzes sharing and assigns formal variables.  Throws CapacityError
  /// if more than poly::kMaxVars BASs are shared.
  explicit PolyEngine(const AttackTree& t);

  /// BASs that received a formal variable (multiple root paths).
  std::size_t shared_bas_count() const { return var_of_bas_.size(); }

  /// PS(x, v) for every node — exact on DAGs.
  std::vector<double> probabilistic_structure(const CdpAt& m,
                                              const Attack& x) const;

  /// d̂_E(x) — exact on DAGs.
  double expected_damage(const CdpAt& m, const Attack& x) const;

 private:
  const AttackTree& tree_;
  /// BAS index -> variable index, for shared BASs only.
  std::unordered_map<std::uint32_t, std::uint32_t> var_of_bas_;
};

/// CEDPF for arbitrary probabilistic models by attack enumeration with
/// polynomial-engine expected damages.  Capacity-guarded.
Front2d cedpf_poly(const CdpAt& m, std::size_t max_bas = 22);

}  // namespace atcd
