#include "net/client.hpp"

#include <sys/socket.h>

#include <cctype>
#include <cstdlib>

namespace atcd::net {

namespace {
constexpr std::size_t kClientLineCap = 64u << 20;  // trust the server
}

Client::Client(const std::string& host, std::uint16_t port,
               std::string* error)
    : io_(connect_tcp(host, port, error)) {
  if (io_.fd() >= 0) set_nodelay(io_.fd());
}

bool Client::send_line(const std::string& line) {
  return io_.write_all(line + "\n");
}

bool Client::read_line(std::string* line) {
  return io_.read_line(*line, kClientLineCap) ==
         api::LineTransport::ReadStatus::Line;
}

bool Client::request(const std::string& line, std::string* response) {
  return send_line(line) && read_line(response);
}

void Client::half_close() {
  if (io_.fd() >= 0) ::shutdown(io_.fd(), SHUT_WR);
}

bool Client::read_http_response(int* status, std::string* body) {
  std::string line;
  if (io_.read_line(line, kClientLineCap) !=
      api::LineTransport::ReadStatus::Line)
    return false;
  // "HTTP/1.1 200 OK"
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) return false;
  *status = std::atoi(line.c_str() + sp + 1);
  std::size_t content_length = 0;
  while (true) {
    if (io_.read_line(line, kClientLineCap) !=
        api::LineTransport::ReadStatus::Line)
      return false;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    if (name == "content-length")
      content_length = std::strtoull(line.c_str() + colon + 1, nullptr, 10);
  }
  return io_.read_exact(*body, content_length);
}

bool Client::http_post(const std::string& path, const std::string& body,
                       int* status, std::string* response_body) {
  const std::string req = "POST " + path +
                          " HTTP/1.1\r\nHost: atcd\r\nContent-Type: "
                          "application/json\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  return io_.write_all(req) && read_http_response(status, response_body);
}

bool Client::http_get(const std::string& path, int* status,
                      std::string* response_body) {
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: atcd\r\n\r\n";
  return io_.write_all(req) && read_http_response(status, response_body);
}

}  // namespace atcd::net
