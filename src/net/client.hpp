#pragma once
/// \file client.hpp
/// Minimal blocking client for the net transports — the test and
/// load-harness counterpart of net::Server.  JSON-lines mode speaks
/// one request line / one response line; HTTP mode frames POSTs and
/// parses the status + body back out.  No retries, no pooling: one
/// Client is one TCP connection.

#include <cstdint>
#include <string>

#include "net/socket.hpp"

namespace atcd::net {

class Client {
 public:
  /// Connects; valid() reports success, \p error the reason otherwise.
  Client(const std::string& host, std::uint16_t port, std::string* error);

  bool valid() const { return io_.fd() >= 0; }

  /// Sends one JSON-lines request (newline appended).
  bool send_line(const std::string& line);

  /// Reads one response line; false on EOF/error.
  bool read_line(std::string* line);

  /// Lockstep convenience: send_line + read_line.
  bool request(const std::string& line, std::string* response);

  /// Half-closes the write side: the server sees EOF, drains, and
  /// writes its final structured shutdown response, which read_line
  /// can still collect.
  void half_close();

  /// One HTTP exchange on this connection (keep-alive).  Returns false
  /// on transport failure; otherwise \p status and \p body carry the
  /// response.
  bool http_post(const std::string& path, const std::string& body,
                 int* status, std::string* response_body);
  bool http_get(const std::string& path, int* status,
                std::string* response_body);

 private:
  bool read_http_response(int* status, std::string* body);

  BufferedFd io_;
};

}  // namespace atcd::net
