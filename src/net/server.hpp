#pragma once
/// \file server.hpp
/// net::Server — the multi-client TCP (and minimal HTTP/1.1) front-end
/// of the serving stack.
///
/// Architecture: one blocking accept loop (poll over the listen socket
/// and a self-pipe), one thread per connection, every connection
/// running the same transport-agnostic serving core (api::serve_lines)
/// against one shared, thread-safe api::Dispatcher — so all
/// connections hit the same caches, sessions, and metrics registry.
/// Per-connection pipelining, queue bounds, and line caps come from
/// api::JsonServeOptions exactly as on the stdin transport; HTTP
/// connections are forced synchronous (HTTP/1.1 responses must be
/// ordered).
///
/// Capacity: at `max_conns` open connections a new client is answered
/// with one typed `capacity` error line (HTTP: 503 + the same JSON
/// body) and closed — counted in atcd_net_rejected_total, never
/// silently dropped.
///
/// Graceful drain (SIGTERM/SIGINT via install_signal_handlers(), or
/// request_drain() programmatically): the listen socket closes, every
/// open connection gets `::shutdown(SHUT_RD)` — its reader sees EOF,
/// finishes the requests already in flight, and writes the structured
/// shutdown response as its final line — and wait() returns once the
/// last connection thread has exited.  The signal handler itself only
/// writes one byte to a self-pipe (async-signal-safe); all real work
/// happens on the accept thread.
///
/// Instruments (the PR 7 registry, shared with the dispatcher):
///   atcd_net_accepted_total / atcd_net_rejected_total
///   atcd_net_bytes_read_total / atcd_net_bytes_written_total
///   atcd_net_write_errors_total   (from the serving core)
///   atcd_net_connections          (gauge: currently open)
///   atcd_net_connection_requests  (histogram: requests per connection,
///                                  recorded at connection close)

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/server.hpp"
#include "net/socket.hpp"

namespace atcd::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  /// Serve HTTP/1.1 (POST /api/v1 + GET /healthz, /metrics) instead of
  /// raw JSON lines.
  bool http = false;
  /// Open-connection cap; further clients get a typed capacity
  /// rejection.
  std::size_t max_conns = 64;
  int backlog = 64;
  /// Per-connection serving options (pipelining depth, line cap,
  /// timing) — the same knobs as the stdin transport.
  api::JsonServeOptions serve;
};

class Server {
 public:
  Server(api::Dispatcher& dispatcher, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.  False + \p error on
  /// failure (port in use, bad address, ...).
  bool start(std::string* error);

  /// The bound port (after start(); resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Begins a graceful drain: stop accepting, EOF every open
  /// connection's read side, let in-flight requests finish.  Safe to
  /// call from any thread and more than once; the signal handler path
  /// reduces to exactly this.
  void request_drain();

  /// Blocks until the drain completes and every connection thread has
  /// exited.  (request_drain() + wait() == orderly stop.)
  void wait();

  /// Routes SIGTERM/SIGINT to request_drain() of this server (one
  /// server per process owns the handlers; last call wins).
  void install_signal_handlers();

  /// Solve/resolve/analyze requests handled across all closed
  /// connections (live connections report at close).
  std::uint64_t handled() const { return handled_.load(); }

  /// Connections currently open.
  std::size_t open_connections() const;

 private:
  void accept_loop();
  void connection_main(std::uint64_t id, Fd fd);
  void reject(Fd fd);
  void reap_finished();

  api::Dispatcher& dispatcher_;
  ServerOptions options_;

  Fd listen_fd_;
  Fd pipe_rd_, pipe_wr_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> handled_{0};

  mutable std::mutex conns_mu_;
  std::map<std::uint64_t, int> conn_fds_;  ///< open connections, raw fd view
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_;  ///< ids ready to join
  std::uint64_t next_conn_id_ = 0;

  // Registry instruments, resolved in start().
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  obs::Histogram* conn_requests_ = nullptr;
};

}  // namespace atcd::net
