#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "api/dispatcher.hpp"
#include "api/json.hpp"

namespace atcd::net {

namespace {

/// Header lines (request line included) are short by construction; 16
/// KiB tolerates generous client headers without opening a buffer hole.
constexpr std::size_t kHeaderLineBytes = 16u << 10;
constexpr int kMaxHeaders = 100;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim_ws(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Typed JSON error body for HTTP-level framing failures, so curl
/// clients see the same taxonomy the JSON-lines transport speaks.
std::string error_body(api::ErrorCode code, const std::string& message) {
  return api::encode_response(api::error_response("", code, message), false) +
         "\n";
}

struct StatusLine {
  int status;
  const char* reason;
};

StatusLine status_of(api::ErrorCode code) {
  switch (code) {
    case api::ErrorCode::Ok:
      return {200, "OK"};
    case api::ErrorCode::NoSuchSession:
      return {404, "Not Found"};
    case api::ErrorCode::Capacity:
      return {413, "Payload Too Large"};
    case api::ErrorCode::SolverFailure:
    case api::ErrorCode::Internal:
      return {500, "Internal Server Error"};
    default:
      return {400, "Bad Request"};
  }
}

}  // namespace

bool HttpTransport::respond(int status, const char* reason,
                            const std::string& content_type,
                            const std::string& body, bool close_conn) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\n";
  if (close_conn) head += "Connection: close\r\n";
  head += "\r\n";
  return io_.write_all(head) && io_.write_all(body);
}

api::LineTransport::ReadStatus HttpTransport::read_line(
    std::string& line, std::size_t max_bytes) {
  while (true) {
    if (close_after_) return ReadStatus::Eof;

    std::string start;
    ReadStatus st = io_.read_line(start, kHeaderLineBytes);
    if (st == ReadStatus::Eof) return ReadStatus::Eof;
    if (st == ReadStatus::TooLong) {
      respond(431, "Request Header Fields Too Large",
              "application/json",
              error_body(api::ErrorCode::Capacity, "request line too long"),
              true);
      return ReadStatus::Eof;
    }
    if (start.empty()) continue;  // stray CRLF between requests is legal

    // "METHOD SP path SP HTTP/1.x"
    const std::size_t sp1 = start.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : start.find(' ', sp1 + 1);
    const bool http11 = sp2 != std::string::npos &&
                        start.compare(sp2 + 1, 7, "HTTP/1.") == 0;
    if (!http11) {
      respond(400, "Bad Request", "application/json",
              error_body(api::ErrorCode::MalformedRequest,
                         "malformed HTTP request line"),
              true);
      return ReadStatus::Eof;
    }
    const std::string method = start.substr(0, sp1);
    const std::string path = start.substr(sp1 + 1, sp2 - sp1 - 1);

    // Headers: only Content-Length and Connection matter here.
    std::uint64_t content_length = 0;
    bool have_length = false;
    bool close_requested = false;
    bool headers_ok = true;
    for (int i = 0;; ++i) {
      std::string h;
      st = io_.read_line(h, kHeaderLineBytes);
      if (st == ReadStatus::Eof) return ReadStatus::Eof;  // truncated frame
      if (st == ReadStatus::TooLong || i >= kMaxHeaders) {
        respond(431, "Request Header Fields Too Large", "application/json",
                error_body(api::ErrorCode::Capacity, "oversized headers"),
                true);
        return ReadStatus::Eof;
      }
      if (h.empty()) break;
      const std::size_t colon = h.find(':');
      if (colon == std::string::npos) {
        headers_ok = false;
        continue;
      }
      const std::string name = lower(trim_ws(h.substr(0, colon)));
      const std::string value = trim_ws(h.substr(colon + 1));
      if (name == "content-length") {
        char* end = nullptr;
        content_length = std::strtoull(value.c_str(), &end, 10);
        have_length = end && *end == '\0' && !value.empty();
        if (!have_length) headers_ok = false;
      } else if (name == "connection" && lower(value) == "close") {
        close_requested = true;
      }
    }
    if (!headers_ok) {
      respond(400, "Bad Request", "application/json",
              error_body(api::ErrorCode::MalformedRequest,
                         "malformed HTTP header"),
              true);
      return ReadStatus::Eof;
    }

    if (method == "GET") {
      if (path == "/healthz") {
        if (!respond(200, "OK", "text/plain", "ok\n", close_requested))
          return ReadStatus::Eof;
      } else if (path == "/metrics") {
        if (!respond(200, "OK", "text/plain",
                     dispatcher_.metrics_payload().text, close_requested))
          return ReadStatus::Eof;
      } else {
        if (!respond(404, "Not Found", "application/json",
                     error_body(api::ErrorCode::UnknownOperation,
                                "no such path: " + path),
                     close_requested))
          return ReadStatus::Eof;
      }
      if (close_requested) return ReadStatus::Eof;
      continue;
    }
    if (method != "POST") {
      respond(405, "Method Not Allowed", "application/json",
              error_body(api::ErrorCode::UnknownOperation,
                         "method not allowed: " + method),
              true);
      return ReadStatus::Eof;
    }
    if (path != "/" && path != "/api/v1") {
      respond(404, "Not Found", "application/json",
              error_body(api::ErrorCode::UnknownOperation,
                         "no such path: " + path),
              true);
      return ReadStatus::Eof;
    }
    if (!have_length) {
      respond(411, "Length Required", "application/json",
              error_body(api::ErrorCode::MalformedRequest,
                         "POST requires Content-Length"),
              true);
      return ReadStatus::Eof;
    }
    if (content_length > max_bytes) {
      // Surface the refusal through the serving core's capacity path so
      // it is typed and counted exactly like an oversized JSON line.
      pending_ = true;
      close_after_ = true;
      return ReadStatus::TooLong;
    }
    if (!io_.read_exact(line, static_cast<std::size_t>(content_length)))
      return ReadStatus::Eof;  // truncated body
    pending_ = true;
    if (close_requested) close_after_ = true;
    return ReadStatus::Line;
  }
}

bool HttpTransport::write_line(const std::string& line) {
  if (!pending_) {
    // The serving core's trailing shutdown response: with no HTTP
    // exchange outstanding (client EOF or server drain) there is no
    // legal frame to carry it — drop it and let the connection close.
    return true;
  }
  pending_ = false;
  StatusLine sl{200, "OK"};
  const api::Decoded<api::Response> dec = api::decode_response(line);
  if (dec.code == api::ErrorCode::Ok) sl = status_of(dec.value.code);
  return respond(sl.status, sl.reason, "application/json", line + "\n",
                 close_after_);
}

}  // namespace atcd::net
