#pragma once
/// \file http.hpp
/// Minimal HTTP/1.1 endpoint over the JSON envelope — an
/// api::LineTransport whose "lines" are POST bodies.
///
/// The surface is deliberately tiny (this is a solver, not a web
/// framework):
///
///   POST /api/v1      body = one v1 JSON request envelope
///                     -> application/json, body = the response line
///   GET  /healthz     -> 200 "ok"
///   GET  /metrics     -> Prometheus text exposition of the registry
///
/// The response status maps off the typed ErrorCode (ok -> 200, client
/// errors -> 400/404/413, solver/internal failures -> 500), and the
/// body is byte-identical to the JSON-lines transport's response line —
/// HTTP is a framing, not a second wire format.  Requests on one
/// connection are served strictly in order (HTTP/1.1 pipelining
/// requires ordered responses), so the server runs HTTP connections
/// with a synchronous serving core.  keep-alive is the default; `quit`
/// or `Connection: close` ends the connection after the response.
///
/// Framing errors (bad request line, unknown path, missing
/// Content-Length, oversized body) are answered with a typed status +
/// JSON error body and never crash the connection loop; tests/test_net
/// pins the taxonomy.

#include <cstddef>
#include <string>

#include "api/server.hpp"
#include "net/socket.hpp"

namespace atcd::api {
class Dispatcher;
}  // namespace atcd::api

namespace atcd::net {

class HttpTransport final : public api::LineTransport {
 public:
  /// \p dispatcher is only consulted for GET /metrics (rendering the
  /// registry); every POST flows through the serving core like any
  /// other transport's line.
  HttpTransport(BufferedFd io, api::Dispatcher& dispatcher)
      : io_(std::move(io)), dispatcher_(dispatcher) {}

  ReadStatus read_line(std::string& line, std::size_t max_bytes) override;
  bool write_line(const std::string& line) override;

 private:
  /// Writes one framed response; \p close_conn appends Connection: close.
  bool respond(int status, const char* reason, const std::string& content_type,
               const std::string& body, bool close_conn);

  BufferedFd io_;
  api::Dispatcher& dispatcher_;
  /// True between returning a POST body from read_line and framing its
  /// response in write_line.  The serving core's final shutdown
  /// response arrives with no request outstanding (client EOF / server
  /// drain) and is dropped — there is no HTTP exchange to carry it.
  bool pending_ = false;
  /// Set once the connection must end after the in-flight response
  /// (quit, Connection: close, or a framing error).
  bool close_after_ = false;
};

}  // namespace atcd::net
