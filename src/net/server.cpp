#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <memory>

#include "api/json.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"

namespace atcd::net {

namespace {

/// Raw JSON-lines transport: the serving core's lines map 1:1 onto the
/// socket's lines.
class TcpLineTransport final : public api::LineTransport {
 public:
  explicit TcpLineTransport(BufferedFd io) : io_(std::move(io)) {}

  ReadStatus read_line(std::string& line, std::size_t max_bytes) override {
    return io_.read_line(line, max_bytes);
  }

  bool write_line(const std::string& line) override {
    // One send per response line keeps latency at one TCP_NODELAY
    // packet instead of two.
    buf_.assign(line);
    buf_.push_back('\n');
    return io_.write_all(buf_);
  }

 private:
  BufferedFd io_;
  std::string buf_;
};

/// The self-pipe write end the signal handlers poke.  One byte per
/// signal; the accept loop treats any readable byte as "drain now".
std::atomic<int> g_signal_pipe_wr{-1};

extern "C" void drain_signal_handler(int) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 'q';
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

}  // namespace

Server::Server(api::Dispatcher& dispatcher, ServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options)) {}

Server::~Server() {
  request_drain();
  wait();
}

bool Server::start(std::string* error) {
  listen_fd_ = listen_tcp(options_.host, options_.port, options_.backlog,
                          error);
  if (!listen_fd_.valid()) return false;
  port_ = local_port(listen_fd_.get());

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    if (error) *error = "pipe: cannot create drain self-pipe";
    listen_fd_.reset();
    return false;
  }
  ::fcntl(pipefd[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(pipefd[1], F_SETFD, FD_CLOEXEC);
  pipe_rd_.reset(pipefd[0]);
  pipe_wr_.reset(pipefd[1]);

  obs::Registry& reg = dispatcher_.metrics();
  accepted_ = &reg.counter("atcd_net_accepted_total");
  rejected_ = &reg.counter("atcd_net_rejected_total");
  bytes_read_ = &reg.counter("atcd_net_bytes_read_total");
  bytes_written_ = &reg.counter("atcd_net_bytes_written_total");
  connections_ = &reg.gauge("atcd_net_connections");
  conn_requests_ = &reg.histogram("atcd_net_connection_requests");

  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::request_drain() {
  if (!pipe_wr_.valid()) return;
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(pipe_wr_.get(), &b, 1);
}

void Server::install_signal_handlers() {
  g_signal_pipe_wr.store(pipe_wr_.get(), std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

std::size_t Server::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conn_fds_.size();
}

void Server::reject(Fd fd) {
  rejected_->add();
  BufferedFd io(std::move(fd),
                ByteCounters{bytes_read_, bytes_written_});
  const std::string body =
      api::encode_response(
          api::error_response(
              "", api::ErrorCode::Capacity,
              "connection limit reached (max " +
                  std::to_string(options_.max_conns) + ")"),
          false) +
      "\n";
  if (options_.http) {
    io.write_all("HTTP/1.1 503 Service Unavailable\r\nContent-Type: "
                 "application/json\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n");
  }
  io.write_all(body);
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0},
                     {pipe_rd_.get(), POLLIN, 0}};
    // Finite timeout so finished connection threads get reaped even on
    // an idle listener.
    const int rc = ::poll(fds, 2, 250);
    reap_finished();
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) break;  // drain requested
    if (!(fds[0].revents & POLLIN)) continue;

    Fd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;
    set_nodelay(conn.get());

    std::uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conn_fds_.size() >= options_.max_conns) {
        // Reject outside the lock-free fast path but without holding
        // conns_mu_ across a send.
        id = 0;
      } else {
        id = ++next_conn_id_;
        conn_fds_.emplace(id, conn.get());
      }
    }
    if (id == 0) {
      reject(std::move(conn));
      continue;
    }
    accepted_->add();
    connections_->set(static_cast<double>(open_connections()));
    std::thread th([this, id, fd = std::move(conn)]() mutable {
      connection_main(id, std::move(fd));
    });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_threads_.emplace(id, std::move(th));
    }
  }

  // Drain: stop accepting, EOF every open connection's read side (the
  // write side stays up for the final shutdown response), then join.
  draining_.store(true);
  listen_fd_.reset();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  while (true) {
    std::map<std::uint64_t, std::thread> remaining;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      remaining.swap(conn_threads_);
      finished_.clear();
    }
    if (remaining.empty()) break;
    for (auto& [id, th] : remaining)
      if (th.joinable()) th.join();
  }
}

void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = finished_.begin(); it != finished_.end();) {
      auto t = conn_threads_.find(*it);
      if (t != conn_threads_.end()) {
        done.push_back(std::move(t->second));
        conn_threads_.erase(t);
        it = finished_.erase(it);
      } else {
        // The connection outpaced its registration in the accept loop;
        // leave the id for the next reap.
        ++it;
      }
    }
  }
  for (std::thread& th : done)
    if (th.joinable()) th.join();
}

void Server::connection_main(std::uint64_t id, Fd fd) {
  api::JsonServeOptions serve = options_.serve;
  std::size_t n = 0;
  {
    BufferedFd io(std::move(fd), ByteCounters{bytes_read_, bytes_written_});
    std::unique_ptr<api::LineTransport> transport;
    if (options_.http) {
      // HTTP/1.1 responses must come back in request order; serve the
      // connection synchronously.
      serve.threads = 0;
      transport = std::make_unique<HttpTransport>(std::move(io), dispatcher_);
    } else {
      transport = std::make_unique<TcpLineTransport>(std::move(io));
    }
    n = api::serve_lines(*transport, dispatcher_, serve);

    // Deregister while the transport still owns the (open) fd: the
    // drain path shutdown()s every registered fd, and a closed fd
    // number can be recycled by a new accept — it must leave the table
    // before it can be closed.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(id);
    connections_->set(static_cast<double>(conn_fds_.size()));
  }
  handled_.fetch_add(n);
  conn_requests_->record(n);
  std::lock_guard<std::mutex> lock(conns_mu_);
  finished_.push_back(id);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

}  // namespace atcd::net
