#include "net/router.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <optional>

#include "api/json.hpp"
#include "api/line.hpp"
#include "at/parser.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::net {

namespace {

/// The router's own drain self-pipe (net::Server has its own; a process
/// runs one front door, so last install wins either way).
std::atomic<int> g_router_signal_pipe_wr{-1};

extern "C" void router_drain_signal_handler(int) {
  const int fd = g_router_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 'q';
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

/// Same deterministic number rendering as the registry exposition, so a
/// merged metrics document looks exactly like a single registry's.
std::string fmt_num(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2e18) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
      std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace

std::uint64_t routing_hash(engine::Problem problem, const std::string& model) {
  try {
    ParsedModel parsed = parse_model(model);
    if (engine::is_probabilistic(problem)) {
      CdpAt m;
      m.tree = std::move(parsed.tree);
      m.cost = std::move(parsed.cost);
      m.damage = std::move(parsed.damage);
      m.prob = std::move(parsed.prob);
      m.validate();
      return service::model_fingerprint(m);
    }
    CdAt m;
    m.tree = std::move(parsed.tree);
    m.cost = std::move(parsed.cost);
    m.damage = std::move(parsed.damage);
    m.validate();
    return service::model_fingerprint(m);
  } catch (...) {
    // Unparseable/invalid model: every shard produces the identical
    // typed error, so any deterministic choice works — FNV-1a over the
    // raw bytes.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : model) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }
}

/// Per-connection forwarding state: one lazily connected client per
/// shard.  Lockstep request/response means at most one in-flight
/// request per shard per connection — the serve loop's queue bound,
/// expressed as TCP backpressure through the router.
struct Router::Connection {
  Router& router;
  std::vector<std::unique_ptr<Client>> clients;

  explicit Connection(Router& r)
      : router(r), clients(r.options_.shards.size()) {}

  Client* client(std::size_t shard, std::string* error) {
    auto& c = clients[shard];
    if (c && c->valid()) return c.get();
    const ShardAddress& addr = router.options_.shards[shard];
    c = std::make_unique<Client>(addr.host, addr.port, error);
    if (!c->valid()) {
      c.reset();
      return nullptr;
    }
    return c.get();
  }
};

Router::Router(RouterOptions options, obs::Registry* metrics)
    : options_(std::move(options)) {
  if (metrics) {
    metrics_ = metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
}

Router::~Router() {
  request_drain();
  wait();
}

bool Router::start(std::string* error) {
  if (options_.shards.empty()) {
    if (error) *error = "router needs at least one --shard host:port";
    return false;
  }
  listen_fd_ =
      listen_tcp(options_.host, options_.port, options_.backlog, error);
  if (!listen_fd_.valid()) return false;
  port_ = local_port(listen_fd_.get());

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    if (error) *error = "pipe: cannot create drain self-pipe";
    listen_fd_.reset();
    return false;
  }
  ::fcntl(pipefd[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(pipefd[1], F_SETFD, FD_CLOEXEC);
  pipe_rd_.reset(pipefd[0]);
  pipe_wr_.reset(pipefd[1]);

  accepted_ = &metrics_->counter("atcd_router_accepted_total");
  rejected_ = &metrics_->counter("atcd_router_rejected_total");
  requests_ = &metrics_->counter("atcd_router_requests_total");
  forwards_ = &metrics_->counter("atcd_router_forwards_total");
  shard_errors_ = &metrics_->counter("atcd_router_shard_errors_total");

  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Router::request_drain() {
  if (!pipe_wr_.valid()) return;
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(pipe_wr_.get(), &b, 1);
}

void Router::install_signal_handlers() {
  g_router_signal_pipe_wr.store(pipe_wr_.get(), std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = router_drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Router::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Router::reject(Fd fd) {
  rejected_->add();
  BufferedFd io(std::move(fd));
  io.write_all(
      api::encode_response(
          api::error_response(
              "", api::ErrorCode::Capacity,
              "connection limit reached (max " +
                  std::to_string(options_.max_conns) + ")"),
          false) +
      "\n");
}

void Router::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0},
                     {pipe_rd_.get(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, 250);
    reap_finished();
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) break;  // drain requested
    if (!(fds[0].revents & POLLIN)) continue;

    Fd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;
    set_nodelay(conn.get());

    std::uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conn_fds_.size() >= options_.max_conns) {
        id = 0;
      } else {
        id = ++next_conn_id_;
        conn_fds_.emplace(id, conn.get());
      }
    }
    if (id == 0) {
      reject(std::move(conn));
      continue;
    }
    accepted_->add();
    std::thread th([this, id, fd = std::move(conn)]() mutable {
      connection_main(id, std::move(fd));
    });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_threads_.emplace(id, std::move(th));
    }
  }

  listen_fd_.reset();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  while (true) {
    std::map<std::uint64_t, std::thread> remaining;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      remaining.swap(conn_threads_);
      finished_.clear();
    }
    if (remaining.empty()) break;
    for (auto& [id, th] : remaining)
      if (th.joinable()) th.join();
  }
}

void Router::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = finished_.begin(); it != finished_.end();) {
      auto t = conn_threads_.find(*it);
      if (t != conn_threads_.end()) {
        done.push_back(std::move(t->second));
        conn_threads_.erase(t);
        it = finished_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& th : done)
    if (th.joinable()) th.join();
}

api::Response Router::forward(Connection& conn, std::size_t shard,
                              const api::Request& request) {
  std::string err;
  Client* client = conn.client(shard, &err);
  if (!client) {
    shard_errors_->add(1);
    return api::error_response(
        request.id, api::ErrorCode::Internal,
        "shard " + std::to_string(shard) + " unreachable: " + err);
  }
  std::string reply;
  if (!client->request(api::encode_request(request), &reply)) {
    // Drop the dead connection so the next request redials.
    conn.clients[shard].reset();
    shard_errors_->add(1);
    return api::error_response(
        request.id, api::ErrorCode::Internal,
        "shard " + std::to_string(shard) + " connection lost");
  }
  forwards_->add(1);
  forwarded_.fetch_add(1);
  api::Decoded<api::Response> dec = api::decode_response(reply);
  if (dec.code != api::ErrorCode::Ok) {
    shard_errors_->add(1);
    return api::error_response(
        request.id, api::ErrorCode::Internal,
        "shard " + std::to_string(shard) + ": bad response: " + dec.error);
  }
  return std::move(dec.value);
}

api::Response Router::merged_stats(Connection& conn,
                                   const api::Request& request) {
  api::StatsPayload merged;
  const auto add_cache = [](auto* into, const auto& from) {
    into->hits += from.hits;
    into->misses += from.misses;
    into->insertions += from.insertions;
    into->evictions += from.evictions;
    into->collisions += from.collisions;
    into->entries += from.entries;
    into->bytes += from.bytes;
  };
  for (std::size_t s = 0; s < options_.shards.size(); ++s) {
    api::Response r = forward(conn, s, request);
    if (r.code != api::ErrorCode::Ok) return r;
    const auto* p = std::get_if<api::StatsPayload>(&r.payload);
    if (!p)
      return api::error_response(
          request.id, api::ErrorCode::Internal,
          "shard " + std::to_string(s) + " returned a non-stats payload");
    add_cache(&merged.cache, p->cache);
    add_cache(&merged.subtree, p->subtree);
    merged.sessions += p->sessions;
    merged.api.requests += p->api.requests;
    merged.api.solves += p->api.solves;
    merged.api.batches += p->api.batches;
    merged.api.session_opens += p->api.session_opens;
    merged.api.session_edits += p->api.session_edits;
    merged.api.session_resolves += p->api.session_resolves;
    merged.api.session_closes += p->api.session_closes;
    merged.api.analyses += p->api.analyses;
    merged.api.errors += p->api.errors;
    merged.latency.count += p->latency.count;
    merged.latency.sum_micros += p->latency.sum_micros;
    // Percentiles do not add across shards; report the worst shard.
    merged.latency.p50 = std::max(merged.latency.p50, p->latency.p50);
    merged.latency.p95 = std::max(merged.latency.p95, p->latency.p95);
    merged.latency.p99 = std::max(merged.latency.p99, p->latency.p99);
    merged.persist.saves += p->persist.saves;
    merged.persist.loads += p->persist.loads;
    merged.persist.save_errors += p->persist.save_errors;
    merged.persist.load_errors += p->persist.load_errors;
    merged.persist.snapshot_bytes =
        std::max(merged.persist.snapshot_bytes, p->persist.snapshot_bytes);
  }
  api::Response resp;
  resp.id = request.id;
  resp.payload = std::move(merged);
  return resp;
}

api::Response Router::merged_metrics(Connection& conn,
                                     const api::Request& request) {
  struct HistAgg {
    std::uint64_t count = 0, sum = 0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistAgg> hists;

  for (std::size_t s = 0; s < options_.shards.size(); ++s) {
    api::Response r = forward(conn, s, request);
    if (r.code != api::ErrorCode::Ok) return r;
    const auto* p = std::get_if<api::MetricsPayload>(&r.payload);
    if (!p)
      return api::error_response(
          request.id, api::ErrorCode::Internal,
          "shard " + std::to_string(s) + " returned a non-metrics payload");
    api::json::Value doc;
    std::string perr;
    if (!api::json::parse(p->json, &doc, &perr))
      return api::error_response(
          request.id, api::ErrorCode::Internal,
          "shard " + std::to_string(s) + ": bad metrics json: " + perr);
    if (const api::json::Value* cs = doc.find("counters");
        cs && cs->kind == api::json::Value::Kind::Object)
      for (const auto& [name, v] : cs->members)
        if (v.kind == api::json::Value::Kind::Number)
          counters[name] += static_cast<std::uint64_t>(v.number);
    if (const api::json::Value* gs = doc.find("gauges");
        gs && gs->kind == api::json::Value::Kind::Object)
      for (const auto& [name, v] : gs->members)
        if (v.kind == api::json::Value::Kind::Number) gauges[name] += v.number;
    if (const api::json::Value* hs = doc.find("histograms");
        hs && hs->kind == api::json::Value::Kind::Object)
      for (const auto& [name, v] : hs->members) {
        if (v.kind != api::json::Value::Kind::Object) continue;
        HistAgg& h = hists[name];
        const auto num = [&](const char* key) {
          const api::json::Value* f = v.find(key);
          return f && f->kind == api::json::Value::Kind::Number ? f->number
                                                                : 0.0;
        };
        h.count += static_cast<std::uint64_t>(num("count"));
        h.sum += static_cast<std::uint64_t>(num("sum"));
        h.p50 = std::max(h.p50, num("p50"));
        h.p95 = std::max(h.p95, num("p95"));
        h.p99 = std::max(h.p99, num("p99"));
      }
  }

  // Render the merged fleet view in exactly the registry's canonical
  // shapes (obs::Registry::to_json / to_prometheus), so scrapers cannot
  // tell a router from a single server.
  api::MetricsPayload merged;
  merged.json = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) merged.json += ',';
    first = false;
    merged.json += '"' + name + "\":" + fmt_u64(v);
  }
  merged.json += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) merged.json += ',';
    first = false;
    merged.json += '"' + name + "\":" + fmt_num(v);
  }
  merged.json += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists) {
    if (!first) merged.json += ',';
    first = false;
    merged.json += '"' + name + "\":{\"count\":" + fmt_u64(h.count) +
                   ",\"sum\":" + fmt_u64(h.sum) + ",\"p50\":" +
                   fmt_num(h.p50) + ",\"p95\":" + fmt_num(h.p95) +
                   ",\"p99\":" + fmt_num(h.p99) + '}';
  }
  merged.json += "}}";

  for (const auto& [name, v] : counters)
    merged.text +=
        "# TYPE " + name + " counter\n" + name + ' ' + fmt_u64(v) + '\n';
  for (const auto& [name, v] : gauges)
    merged.text +=
        "# TYPE " + name + " gauge\n" + name + ' ' + fmt_num(v) + '\n';
  for (const auto& [name, h] : hists) {
    merged.text += "# TYPE " + name + " summary\n";
    merged.text += name + "{quantile=\"0.5\"} " + fmt_num(h.p50) + '\n';
    merged.text += name + "{quantile=\"0.95\"} " + fmt_num(h.p95) + '\n';
    merged.text += name + "{quantile=\"0.99\"} " + fmt_num(h.p99) + '\n';
    merged.text += name + "_sum " + fmt_u64(h.sum) + '\n';
    merged.text += name + "_count " + fmt_u64(h.count) + '\n';
  }

  api::Response resp;
  resp.id = request.id;
  resp.payload = std::move(merged);
  return resp;
}

api::Response Router::route(Connection& conn, api::Request request) {
  const std::size_t n_shards = options_.shards.size();
  const auto by_model = [&](engine::Problem problem,
                            const std::string& model) {
    return static_cast<std::size_t>(routing_hash(problem, model) % n_shards);
  };

  if (const auto* r = std::get_if<api::SolveRequest>(&request.op))
    return forward(conn, by_model(r->spec.problem, r->spec.model), request);
  if (const auto* r = std::get_if<api::BatchRequest>(&request.op)) {
    // A batch shares one response, so it routes whole: by its first
    // item's model (an empty batch can go anywhere).
    const std::size_t shard =
        r->items.empty() ? 0
                         : by_model(r->items[0].problem, r->items[0].model);
    return forward(conn, shard, request);
  }
  if (const auto* r = std::get_if<api::SessionOpenRequest>(&request.op)) {
    const std::size_t shard = by_model(r->spec.problem, r->spec.model);
    api::Response resp = forward(conn, shard, request);
    if (resp.code == api::ErrorCode::Ok)
      if (auto* p = std::get_if<api::SessionOpenedPayload>(&resp.payload)) {
        // Translate the worker's id into the router's own sequential
        // space; the worker id never leaves the router.
        std::lock_guard<std::mutex> lock(sessions_mu_);
        const std::uint64_t id = ++next_session_;
        sessions_.emplace(id, SessionRoute{shard, p->session});
        p->session = id;
      }
    return resp;
  }

  const auto pinned =
      [&](std::uint64_t session) -> std::optional<SessionRoute> {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return std::nullopt;
    return it->second;
  };
  const auto no_session = [&](std::uint64_t session) {
    // The dispatcher's exact wording, so clients cannot tell a router
    // miss from a worker miss.
    return api::error_response(request.id, api::ErrorCode::NoSuchSession,
                               "no session " + std::to_string(session));
  };

  if (auto* r = std::get_if<api::SessionEditRequest>(&request.op)) {
    const auto at = pinned(r->session);
    if (!at) return no_session(r->session);
    r->session = at->worker_session;
    return forward(conn, at->shard, request);
  }
  if (auto* r = std::get_if<api::SessionResolveRequest>(&request.op)) {
    const auto at = pinned(r->session);
    if (!at) return no_session(r->session);
    r->session = at->worker_session;
    return forward(conn, at->shard, request);
  }
  if (auto* r = std::get_if<api::SessionCloseRequest>(&request.op)) {
    const std::uint64_t router_sid = r->session;
    const auto at = pinned(router_sid);
    if (!at) return no_session(router_sid);
    r->session = at->worker_session;
    api::Response resp = forward(conn, at->shard, request);
    if (resp.code == api::ErrorCode::Ok) {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.erase(router_sid);
    }
    return resp;
  }

  if (const auto* r = std::get_if<api::AnalyzeSweepRequest>(&request.op))
    return forward(conn, by_model(r->problem, r->model), request);
  if (const auto* r =
          std::get_if<api::AnalyzeSensitivityRequest>(&request.op))
    return forward(conn, by_model(r->problem, r->model), request);
  if (const auto* r = std::get_if<api::AnalyzePortfolioRequest>(&request.op))
    return forward(conn, by_model(r->problem, r->model), request);

  if (std::holds_alternative<api::StatsRequest>(request.op))
    return merged_stats(conn, request);
  if (std::holds_alternative<api::MetricsRequest>(request.op))
    return merged_metrics(conn, request);

  // Snapshot ops address one worker's local disk; a fleet-wide file
  // path is ambiguous, so the router declines rather than guesses.
  if (std::holds_alternative<api::SnapshotSaveRequest>(request.op) ||
      std::holds_alternative<api::SnapshotLoadRequest>(request.op))
    return api::error_response(
        request.id, api::ErrorCode::InvalidArgument,
        "snapshot ops are per-worker; run them against a shard directly");

  // Shutdown is answered by the connection loop; anything else landing
  // here is a programming error upstream.
  api::Response resp;
  resp.id = request.id;
  resp.payload = api::ShutdownPayload{0};
  return resp;
}

void Router::connection_main(std::uint64_t id, Fd fd) {
  std::size_t handled = 0;
  {
    BufferedFd io(std::move(fd));
    Connection conn(*this);
    bool sink_ok = true;
    const auto emit = [&](const api::Response& resp) {
      if (!sink_ok) return;
      std::string line = api::encode_response(resp, options_.timing);
      line.push_back('\n');
      sink_ok = io.write_all(line);
    };

    std::string quit_id;
    std::string raw;
    while (sink_ok) {
      const BufferedFd::ReadStatus status =
          io.read_line(raw, options_.max_line_bytes);
      if (status == BufferedFd::ReadStatus::Eof) break;
      if (status == BufferedFd::ReadStatus::TooLong) {
        emit(api::error_response(
            "", api::ErrorCode::Capacity,
            "input line exceeds " + std::to_string(options_.max_line_bytes) +
                " bytes"));
        continue;
      }
      const std::string line = api::detail::trim(raw);
      if (line.empty() || line[0] == '#') continue;
      api::Decoded<api::Request> dec = api::decode_request(line);
      requests_->add(1);
      if (dec.code != api::ErrorCode::Ok) {
        emit(api::error_response(dec.value.id, dec.code, dec.error));
        continue;
      }
      if (std::holds_alternative<api::ShutdownRequest>(dec.value.op)) {
        quit_id = dec.value.id;
        break;
      }
      const api::Request req = std::move(dec.value);
      const api::Response resp = route(conn, req);
      handled += api::handled_increment(req, resp);
      emit(resp);
    }

    // The structured shutdown response, exactly like the serve loop:
    // the last line a client reads — on quit and on EOF — is always
    // kind=shutdown with the per-connection handled count.
    if (sink_ok) {
      api::Response resp;
      resp.id = quit_id;
      resp.payload = api::ShutdownPayload{handled};
      emit(resp);
    }

    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(id);
  }
  handled_.fetch_add(handled);
  std::lock_guard<std::mutex> lock(conns_mu_);
  finished_.push_back(id);
}

}  // namespace atcd::net
