#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

namespace atcd::net {

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) reset(o.release());
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

bool resolve_v4(const std::string& host, std::uint16_t port,
                sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string h =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (h == "*" || h == "0.0.0.0") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
    if (error) *error = "cannot parse IPv4 address '" + host + "'";
    return false;
  }
  return true;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::string* error) {
  sockaddr_in addr;
  if (!resolve_v4(host, port, &addr, error)) return Fd{};
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd{};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error) *error = errno_string("bind");
    return Fd{};
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error) *error = errno_string("listen");
    return Fd{};
  }
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::string* error) {
  sockaddr_in addr;
  if (!resolve_v4(host, port, &addr, error)) return Fd{};
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd{};
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error) *error = errno_string("connect");
    return Fd{};
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// BufferedFd.
// ---------------------------------------------------------------------------

bool BufferedFd::fill() {
  if (pos_ > 0) {
    rbuf_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;  // peer closed (or SHUT_RD drain) / error
  if (counters_.read) counters_.read->add(static_cast<std::uint64_t>(n));
  rbuf_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

BufferedFd::ReadStatus BufferedFd::read_line(std::string& line,
                                             std::size_t max_bytes) {
  line.clear();
  bool toolong = false;
  while (true) {
    const std::size_t nl = rbuf_.find('\n', pos_);
    if (nl != std::string::npos) {
      if (!toolong && line.size() + (nl - pos_) <= max_bytes)
        line.append(rbuf_, pos_, nl - pos_);
      else
        toolong = true;
      pos_ = nl + 1;
      if (toolong) {
        line.clear();
        return ReadStatus::TooLong;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return ReadStatus::Line;
    }
    // No newline buffered yet: keep at most max_bytes of payload; an
    // overlong line's surplus is dropped chunk by chunk right here, so
    // memory never exceeds the cap + one recv chunk.
    if (!toolong) {
      const std::size_t avail = rbuf_.size() - pos_;
      if (line.size() + avail <= max_bytes) {
        line.append(rbuf_, pos_, avail);
      } else {
        toolong = true;
        line.clear();
      }
    }
    rbuf_.clear();
    pos_ = 0;
    if (!fill()) {
      if (toolong) return ReadStatus::TooLong;  // unterminated overlong tail
      if (!line.empty()) {
        if (line.back() == '\r') line.pop_back();
        return ReadStatus::Line;  // partial line at EOF, like getline
      }
      return ReadStatus::Eof;
    }
  }
}

bool BufferedFd::read_exact(std::string& out, std::size_t n) {
  out.clear();
  while (out.size() < n) {
    const std::size_t avail = rbuf_.size() - pos_;
    if (avail > 0) {
      const std::size_t take = std::min(avail, n - out.size());
      out.append(rbuf_, pos_, take);
      pos_ += take;
      continue;
    }
    if (!fill()) return false;
  }
  return true;
}

bool BufferedFd::write_all(const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w;
    do {
      w = ::send(fd_.get(), data + off, n - off, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w <= 0) return false;
    if (counters_.written) counters_.written->add(static_cast<std::uint64_t>(w));
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace atcd::net
