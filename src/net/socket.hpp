#pragma once
/// \file socket.hpp
/// Thin POSIX TCP plumbing for src/net/: listen/connect helpers, an
/// owning fd wrapper, and a buffered reader/writer with the bounded
/// line-read semantics the serving core (api/server.hpp) requires.
///
/// Everything here is deliberately boring: blocking sockets, one
/// syscall wrapper per concept, no event loop.  Concurrency lives a
/// layer up (net::Server runs a thread per connection); graceful drain
/// works by `::shutdown(fd, SHUT_RD)` from the acceptor — in-flight
/// reads return EOF while the write side stays open for the final
/// structured shutdown response.
///
/// All writes use MSG_NOSIGNAL so a peer that went away surfaces as a
/// write *error* (which the serving core counts and acts on) instead of
/// a process-killing SIGPIPE.

#include <cstddef>
#include <cstdint>
#include <string>

#include "api/server.hpp"

namespace atcd::obs {
class Counter;
}  // namespace atcd::obs

namespace atcd::net {

/// Owning file descriptor.  Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (IPv4 dotted quad or "localhost").
/// port 0 binds an ephemeral port — read it back with local_port().
/// Returns an invalid Fd and sets \p error on failure.
Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::string* error);

/// Blocking connect to host:port.  Returns an invalid Fd and sets
/// \p error on failure.
Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::string* error);

/// The locally bound port of a socket (resolves ephemeral binds).
std::uint16_t local_port(int fd);

/// Disables Nagle so one-line requests/responses don't wait out the
/// coalescing timer.
void set_nodelay(int fd);

/// Optional byte-flow instruments a BufferedFd reports into; null
/// members are simply not counted.
struct ByteCounters {
  obs::Counter* read = nullptr;
  obs::Counter* written = nullptr;
};

/// Buffered reader/writer over a connected socket.  Owns the fd.
///
/// read_line implements the LineTransport bounded-read contract: an
/// overlong line is discarded chunk by chunk as it arrives, never
/// accumulated, and reported as TooLong once.  read_exact serves the
/// HTTP transport's Content-Length body reads.
class BufferedFd {
 public:
  using ReadStatus = api::LineTransport::ReadStatus;

  explicit BufferedFd(Fd fd, ByteCounters counters = {})
      : fd_(std::move(fd)), counters_(counters) {}

  int fd() const { return fd_.get(); }

  /// Reads one '\n'-terminated line (terminator stripped; a trailing
  /// '\r' is stripped too, so HTTP header lines read naturally).  A
  /// partial line at EOF comes back as Line; the next call reports Eof.
  ReadStatus read_line(std::string& line, std::size_t max_bytes);

  /// Reads exactly \p n bytes into \p out.  False on EOF/error first.
  bool read_exact(std::string& out, std::size_t n);

  /// Writes all of \p data (looping over partial sends, MSG_NOSIGNAL).
  bool write_all(const char* data, std::size_t n);
  bool write_all(const std::string& data) {
    return write_all(data.data(), data.size());
  }

 private:
  /// Refills rbuf_ from the socket; false on EOF or error.
  bool fill();

  Fd fd_;
  ByteCounters counters_;
  std::string rbuf_;
  std::size_t pos_ = 0;  ///< consumed prefix of rbuf_
};

}  // namespace atcd::net
