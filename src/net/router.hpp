#pragma once
/// \file router.hpp
/// net::Router — a shard-by-canonical-hash front door over K workers.
///
/// The router listens like net::Server (one accept loop, one thread per
/// connection, self-pipe drain) but owns no solver: every request is
/// forwarded over net::Client to one of K JSON-lines workers, chosen by
/// the request's *canonical* model hash (service::model_fingerprint).
/// The hash is invariant under node renaming and child reordering, so
/// isomorphic resubmissions of one model — the result cache's whole
/// reason to exist — always land on the same warm shard, and a fleet of
/// K workers behaves like one cache K times the size.
///
/// Routing rules:
///   * solve / open / analyze: canonical hash of the request's model,
///     modulo K.  A model that fails to parse hashes by raw bytes — any
///     shard produces the identical typed error, the choice just has to
///     be deterministic.
///   * batch: routed whole by its first item's model (items share one
///     response, so they cannot be split without reassembly).
///   * edit / resolve / close: pinned to the shard that opened the
///     session.  The router speaks its own session-id space (sequential
///     from 1, exactly like a single dispatcher) and translates ids on
///     both legs, so clients cannot observe K id generators colliding;
///     an unknown id is answered locally with the dispatcher's exact
///     no_such_session error.
///   * stats / metrics: fanned out to every shard and merged — counters
///     and sums add, latency percentiles take the worst shard.
///   * quit: answered locally with the structured shutdown response
///     (it ends the *client's* connection, not the fleet).
///
/// Forwarding is lockstep per connection (one in-flight request per
/// downstream connection), so a fast client is backpressured by its
/// slowest shard exactly as the serve-loop queue bound backpressures a
/// single server.  Responses relay as decoded+re-encoded canonical
/// envelopes; since both codecs are canonical, a routed response is
/// byte-identical to the worker's (and, cache disposition aside, to an
/// in-process dispatcher's — suites/golden.suite pins this).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/api.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace atcd::net {

/// One worker address.
struct ShardAddress {
  std::string host;
  std::uint16_t port = 0;
};

struct RouterOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  /// The worker fleet; at least one.
  std::vector<ShardAddress> shards;
  /// Open-connection cap; further clients get a typed capacity
  /// rejection (same contract as net::Server).
  std::size_t max_conns = 64;
  int backlog = 64;
  /// Longest accepted input line (same cap + typed error as the serve
  /// loop).
  std::size_t max_line_bytes = 1u << 20;  // 1 MiB
  /// Echo per-response wall micros on locally synthesized responses.
  bool timing = false;
};

/// Deterministic shard choice for a model: the canonical
/// (isomorphism-invariant) fingerprint when the model parses, a raw
/// byte hash otherwise.  Exposed for tests and for the suite's router
/// path.
std::uint64_t routing_hash(engine::Problem problem, const std::string& model);

class Router {
 public:
  /// \p metrics is the instrument home (atcd_router_*); null = a
  /// private registry.
  explicit Router(RouterOptions options, obs::Registry* metrics = nullptr);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds, listens, and starts the accept loop.  Fails when no shards
  /// are configured or the listen socket cannot be bound.
  bool start(std::string* error);

  /// The bound port (after start(); resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Number of configured worker shards.
  std::size_t shard_count() const { return options_.shards.size(); }

  /// Graceful drain, exactly net::Server's contract: stop accepting,
  /// EOF every connection's read side, finish in-flight requests.
  void request_drain();

  /// Blocks until the drain completes.
  void wait();

  /// Routes SIGTERM/SIGINT to request_drain() of this router.
  void install_signal_handlers();

  /// Requests forwarded to shards over the router's lifetime.
  std::uint64_t forwarded() const { return forwarded_.load(); }

  /// Solve/resolve/analyze requests handled across closed connections.
  std::uint64_t handled() const { return handled_.load(); }

 private:
  /// Where a router session lives: the shard and the worker's own id.
  struct SessionRoute {
    std::size_t shard = 0;
    std::uint64_t worker_session = 0;
  };

  /// Per-connection forwarding state: one lazy net::Client per shard
  /// (lockstep request/response, so one in-flight request per shard
  /// per connection).
  struct Connection;

  void accept_loop();
  void connection_main(std::uint64_t id, Fd fd);
  void reject(Fd fd);
  void reap_finished();

  /// Forwards \p request to \p shard and decodes the worker's reply.
  /// Transport or decode failures come back as typed Internal errors.
  api::Response forward(Connection& conn, std::size_t shard,
                        const api::Request& request);
  /// Full routing switch (everything except quit, which the connection
  /// loop answers locally).
  api::Response route(Connection& conn, api::Request request);
  api::Response merged_stats(Connection& conn, const api::Request& request);
  api::Response merged_metrics(Connection& conn,
                               const api::Request& request);

  RouterOptions options_;
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;

  Fd listen_fd_;
  Fd pipe_rd_, pipe_wr_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> handled_{0};

  /// Router-global session table: ids are sequential from 1 (the same
  /// id discipline as a single dispatcher's SessionManager).
  std::mutex sessions_mu_;
  std::unordered_map<std::uint64_t, SessionRoute> sessions_;
  std::uint64_t next_session_ = 0;

  mutable std::mutex conns_mu_;
  std::map<std::uint64_t, int> conn_fds_;
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_conn_id_ = 0;

  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* forwards_ = nullptr;
  obs::Counter* shard_errors_ = nullptr;
};

}  // namespace atcd::net
