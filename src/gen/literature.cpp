#include "gen/literature.hpp"

namespace atcd::gen {
namespace {

using NT = NodeType;

/// Small helper DSL: bas(i) names leaves b0..bk, gates get g-names.
struct B {
  AttackTree t;
  int next_bas = 0, next_gate = 0;
  NodeId bas() { return t.add_bas("b" + std::to_string(next_bas++)); }
  NodeId gate(NT type, std::vector<NodeId> cs) {
    return t.add_gate(type, "g" + std::to_string(next_gate++), std::move(cs));
  }
  AttackTree done(NodeId root) {
    t.set_root(root);
    t.finalize();
    return std::move(t);
  }
};

// [11] Kumar et al., Fig. 1 — 12 nodes, DAG (b1 shared).
AttackTree kumar_fig1() {
  B b;
  const auto a0 = b.bas(), a1 = b.bas(), a2 = b.bas(), a3 = b.bas(),
             a4 = b.bas(), a5 = b.bas();
  const auto g1 = b.gate(NT::AND, {a0, a1});
  const auto g2 = b.gate(NT::OR, {a1, a2});  // a1 shared -> DAG
  const auto g3 = b.gate(NT::AND, {a3, a4});
  const auto g4 = b.gate(NT::OR, {g3, a5});
  const auto g5 = b.gate(NT::AND, {g1, g2});
  return b.done(b.gate(NT::OR, {g5, g4}));
}

// [11] Kumar et al., Fig. 8 — 20 nodes, DAG (b2 shared).
AttackTree kumar_fig8() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 10; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1]});
  const auto g2 = b.gate(NT::OR, {a[2], a[3]});
  const auto g3 = b.gate(NT::AND, {g2, a[4]});
  const auto g4 = b.gate(NT::OR, {a[5], a[6]});
  const auto g5 = b.gate(NT::AND, {g4, a[7]});
  const auto g6 = b.gate(NT::OR, {g1, g3});
  const auto g7 = b.gate(NT::AND, {a[8], a[9]});
  const auto g8 = b.gate(NT::OR, {g5, g7});
  const auto g9 = b.gate(NT::AND, {g6, a[2]});  // a2 shared -> DAG
  return b.done(b.gate(NT::OR, {g8, g9}));
}

// [11] Kumar et al., Fig. 9 — 12 nodes, DAG (b1, b3 shared).
AttackTree kumar_fig9() {
  B b;
  const auto a0 = b.bas(), a1 = b.bas(), a2 = b.bas(), a3 = b.bas(),
             a4 = b.bas(), a5 = b.bas();
  const auto g1 = b.gate(NT::OR, {a0, a1});
  const auto g2 = b.gate(NT::OR, {a1, a2});  // a1 shared
  const auto g3 = b.gate(NT::AND, {a3, a4});
  const auto g4 = b.gate(NT::AND, {g1, g2});
  const auto g5 = b.gate(NT::OR, {g3, a3});  // a3 shared
  return b.done(b.gate(NT::AND, {g4, g5, a5}));
}

// [8] Arnold et al. (SAFECOMP'15), Fig. 1 — 16 nodes, DAG.
AttackTree arnold15_fig1() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 8; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1]});
  const auto g2 = b.gate(NT::OR, {a[2], a[3]});
  const auto g3 = b.gate(NT::AND, {a[4], g2});
  const auto g4 = b.gate(NT::OR, {a[5], a[6]});
  const auto g5 = b.gate(NT::AND, {g4, a[7]});
  const auto g6 = b.gate(NT::OR, {g1, g3, g2});  // g2 shared -> DAG
  const auto g7 = b.gate(NT::AND, {g5, g6});
  return b.done(b.gate(NT::OR, {g7, g3}));  // g3 shared
}

// [17] Kordy & Wideł, Fig. 1 (attack part) — 15 nodes, treelike.
AttackTree kordy_fig1() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 8; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1]});
  const auto g2 = b.gate(NT::OR, {a[2], a[3]});
  const auto g3 = b.gate(NT::AND, {a[4], a[5]});
  const auto g4 = b.gate(NT::OR, {a[6], a[7]});
  const auto g5 = b.gate(NT::OR, {g1, g2});
  const auto g6 = b.gate(NT::AND, {g3, g4});
  return b.done(b.gate(NT::OR, {g5, g6}));
}

// [40] Arnold et al. (POST'14), Fig. 3 — 8 nodes, treelike.
AttackTree arnold14_fig3() {
  B b;
  const auto a0 = b.bas(), a1 = b.bas(), a2 = b.bas(), a3 = b.bas(),
             a4 = b.bas();
  const auto g1 = b.gate(NT::AND, {a0, a1});
  const auto g2 = b.gate(NT::OR, {a2, a3, a4});
  return b.done(b.gate(NT::OR, {g1, g2}));
}

// [40] Arnold et al. (POST'14), Fig. 5 — 21 nodes, treelike.
AttackTree arnold14_fig5() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 11; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1]});
  const auto g2 = b.gate(NT::OR, {a[2], a[3]});
  const auto g3 = b.gate(NT::AND, {a[4], a[5]});
  const auto g4 = b.gate(NT::OR, {a[6], a[7]});
  const auto g5 = b.gate(NT::AND, {a[8], a[9], a[10]});
  const auto g6 = b.gate(NT::OR, {g1, g2});
  const auto g7 = b.gate(NT::AND, {g3, g4});
  const auto g8 = b.gate(NT::OR, {g7, g5});
  const auto g9 = b.gate(NT::AND, {g6, g8});
  return b.done(b.gate(NT::OR, {g9}));
}

// [40] Arnold et al. (POST'14), Fig. 7 — 25 nodes, treelike.
AttackTree arnold14_fig7() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 13; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1]});
  const auto g2 = b.gate(NT::OR, {a[2], a[3]});
  const auto g3 = b.gate(NT::AND, {a[4], a[5]});
  const auto g4 = b.gate(NT::OR, {a[6], a[7]});
  const auto g5 = b.gate(NT::AND, {a[8], a[9]});
  const auto g6 = b.gate(NT::OR, {a[10], a[11]});
  const auto g7 = b.gate(NT::OR, {g1, g2});
  const auto g8 = b.gate(NT::AND, {g3, g4});
  const auto g9 = b.gate(NT::OR, {g5, g6});
  const auto g10 = b.gate(NT::AND, {g7, g8});
  const auto g11 = b.gate(NT::OR, {g9, a[12]});
  return b.done(b.gate(NT::AND, {g10, g11}));
}

// [41] Fraile et al. ATM case study, Fig. 2 (attack part) — 20 nodes, tree.
AttackTree fraile_fig2() {
  B b;
  std::vector<NodeId> a;
  for (int i = 0; i < 11; ++i) a.push_back(b.bas());
  const auto g1 = b.gate(NT::AND, {a[0], a[1], a[2]});
  const auto g2 = b.gate(NT::OR, {a[3], a[4]});
  const auto g3 = b.gate(NT::AND, {a[5], a[6]});
  const auto g4 = b.gate(NT::OR, {a[7], a[8], a[9]});
  const auto g5 = b.gate(NT::OR, {g1, g2});
  const auto g6 = b.gate(NT::AND, {g3, g4});
  const auto g7 = b.gate(NT::AND, {g6, a[10]});
  const auto g8 = b.gate(NT::OR, {g5, g7});
  return b.done(b.gate(NT::OR, {g8}));
}

}  // namespace

std::vector<Block> literature_blocks() {
  std::vector<Block> blocks;
  blocks.push_back({"kumar_fig1", false, kumar_fig1()});
  blocks.push_back({"kumar_fig8", false, kumar_fig8()});
  blocks.push_back({"kumar_fig9", false, kumar_fig9()});
  blocks.push_back({"arnold15_fig1", false, arnold15_fig1()});
  blocks.push_back({"kordy_fig1", true, kordy_fig1()});
  blocks.push_back({"arnold14_fig3", true, arnold14_fig3()});
  blocks.push_back({"arnold14_fig5", true, arnold14_fig5()});
  blocks.push_back({"arnold14_fig7", true, arnold14_fig7()});
  blocks.push_back({"fraile_fig2", true, fraile_fig2()});
  return blocks;
}

std::vector<Block> literature_blocks_treelike() {
  std::vector<Block> out;
  for (auto& b : literature_blocks())
    if (b.treelike) out.push_back(std::move(b));
  return out;
}

}  // namespace atcd::gen
