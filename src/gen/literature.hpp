#pragma once
/// \file literature.hpp
/// The nine literature attack trees of the paper's Table IV, used as
/// building blocks for the random AT suites of Sec. X-D.
///
/// The cited figures ([11] Figs. 1/8/9, [8] Fig. 1, [17] Fig. 1,
/// [40] Figs. 3/5/7, [41] Fig. 2) are not reproducible from the paper's
/// text, so these are structurally representative stand-ins with the
/// *exact* node counts and tree/DAG shapes of Table IV — the only
/// properties the suite generator consumes (documented substitution,
/// DESIGN.md §2).
///
///   name              |N| | shape
///   kumar_fig1         12 | DAG          arnold14_fig3    8 | tree
///   kumar_fig8         20 | DAG          arnold14_fig5   21 | tree
///   kumar_fig9         12 | DAG          arnold14_fig7   25 | tree
///   arnold15_fig1      16 | DAG          fraile_fig2     20 | tree
///   kordy_fig1         15 | tree

#include <vector>

#include "at/attack_tree.hpp"

namespace atcd::gen {

/// A named building block.
struct Block {
  const char* name;
  bool treelike;
  AttackTree tree;
};

/// All nine blocks of Table IV (finalized trees).
std::vector<Block> literature_blocks();

/// Only the treelike blocks (used for the Ttree suite).
std::vector<Block> literature_blocks_treelike();

}  // namespace atcd::gen
