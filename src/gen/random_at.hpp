#pragma once
/// \file random_at.hpp
/// Random attack-tree generation (paper Sec. X-D, following [39]).
///
/// ATs are grown by repeatedly combining literature building blocks
/// (gen/literature.hpp) with one of three operators:
///
///   1. *Leaf substitution*: a random BAS of the first AT is replaced by
///      the root of the second (joins the ATs; preserves treelikeness).
///   2. *New root*: the two roots get a common parent of random type
///      (preserves treelikeness).
///   3. *New root + identification*: like 2, but additionally one random
///      BAS from each AT is identified — the shared node makes the result
///      DAG-shaped.
///
/// Suites: for every 1 <= n <= max_n, combine blocks until |N| >= n, five
/// times per n — giving the paper's 500-AT suites Ttree (methods 1-2 over
/// treelike blocks) and TDAG (all methods over all blocks).  Deterministic
/// given the Rng seed.

#include <vector>

#include "at/attack_tree.hpp"
#include "gen/literature.hpp"
#include "util/rng.hpp"

namespace atcd::gen {

enum class CombineMethod { LeafSubstitution, NewRoot, NewRootIdentify };

/// Combines two ATs with the given method.  \p tag must be unique per
/// call site (it prefixes node names to keep them unique).  Random
/// choices (which BAS, which gate type) come from \p rng.
AttackTree combine(const AttackTree& a, const AttackTree& b,
                   CombineMethod method, const std::string& tag, Rng& rng);

struct SuiteOptions {
  std::size_t max_n = 100;   ///< sizes 1..max_n
  std::size_t per_size = 5;  ///< ATs per size target
  bool treelike = false;     ///< Ttree (true) or TDAG (false)
  /// Hard cap on BAS count per generated AT; combination stops growing a
  /// model past its size target, but a block substitution can overshoot —
  /// the cap rejects extreme outliers so downstream engines stay in range.
  std::size_t max_bas = 192;
};

/// A generated suite entry.
struct SuiteEntry {
  AttackTree tree;
  std::size_t size_target;  ///< the n this entry was generated for
};

/// Generates the suite (paper: 500 ATs for max_n=100, per_size=5).
std::vector<SuiteEntry> make_suite(const SuiteOptions& opt, Rng& rng);

}  // namespace atcd::gen
