#include "gen/random_at.hpp"

#include <unordered_map>

namespace atcd::gen {
namespace {

/// Copies every node of \p src into \p dst, prefixing names with \p tag.
/// \p override_map (src NodeId -> existing dst NodeId) redirects selected
/// source nodes to nodes already present in dst (leaf substitution /
/// identification).  Returns the full src -> dst id map.
std::vector<NodeId> copy_into(
    AttackTree& dst, const AttackTree& src, const std::string& tag,
    const std::unordered_map<NodeId, NodeId>& override_map) {
  std::vector<NodeId> map(src.node_count(), kNoNode);
  for (NodeId v : src.topological_order()) {
    if (const auto it = override_map.find(v); it != override_map.end()) {
      map[v] = it->second;
      continue;
    }
    const auto& n = src.node(v);
    if (n.type == NodeType::BAS) {
      map[v] = dst.add_bas(tag + n.name);
    } else {
      std::vector<NodeId> cs;
      cs.reserve(n.children.size());
      for (NodeId c : n.children) cs.push_back(map[c]);
      map[v] = dst.add_gate(n.type, tag + n.name, cs);
    }
  }
  return map;
}

NodeId random_bas(const AttackTree& t, Rng& rng) {
  return t.bas_id(static_cast<std::uint32_t>(rng.below(t.bas_count())));
}

NodeType random_gate_type(Rng& rng) {
  return rng.chance(0.5) ? NodeType::OR : NodeType::AND;
}

}  // namespace

AttackTree combine(const AttackTree& a, const AttackTree& b,
                   CombineMethod method, const std::string& tag, Rng& rng) {
  if (!a.finalized() || !b.finalized())
    throw ModelError("gen::combine: inputs must be finalized");
  AttackTree out;

  switch (method) {
    case CombineMethod::LeafSubstitution: {
      // Replace a random BAS of `a` by the root of `b`.
      const NodeId victim = random_bas(a, rng);
      const auto bmap = copy_into(out, b, tag + "r.", {});
      const auto amap =
          copy_into(out, a, tag + "l.", {{victim, bmap[b.root()]}});
      out.set_root(amap[a.root()]);
      break;
    }
    case CombineMethod::NewRoot: {
      const auto amap = copy_into(out, a, tag + "l.", {});
      const auto bmap = copy_into(out, b, tag + "r.", {});
      out.set_root(out.add_gate(random_gate_type(rng), tag + "root",
                                {amap[a.root()], bmap[b.root()]}));
      break;
    }
    case CombineMethod::NewRootIdentify: {
      const auto amap = copy_into(out, a, tag + "l.", {});
      // Identify one random BAS of `b` with one of `a`.
      const NodeId from_b = random_bas(b, rng);
      const NodeId into_a = amap[random_bas(a, rng)];
      const auto bmap = copy_into(out, b, tag + "r.", {{from_b, into_a}});
      out.set_root(out.add_gate(random_gate_type(rng), tag + "root",
                                {amap[a.root()], bmap[b.root()]}));
      break;
    }
  }
  out.finalize();
  return out;
}

std::vector<SuiteEntry> make_suite(const SuiteOptions& opt, Rng& rng) {
  const auto blocks =
      opt.treelike ? literature_blocks_treelike() : literature_blocks();
  if (blocks.empty()) throw ModelError("make_suite: no building blocks");

  auto random_block = [&]() -> const AttackTree& {
    return blocks[rng.below(blocks.size())].tree;
  };
  auto random_method = [&]() {
    if (opt.treelike)
      return rng.chance(0.5) ? CombineMethod::LeafSubstitution
                             : CombineMethod::NewRoot;
    switch (rng.below(3)) {
      case 0:
        return CombineMethod::LeafSubstitution;
      case 1:
        return CombineMethod::NewRoot;
      default:
        return CombineMethod::NewRootIdentify;
    }
  };

  std::vector<SuiteEntry> suite;
  suite.reserve(opt.max_n * opt.per_size);
  std::size_t unique_tag = 0;
  for (std::size_t n = 1; n <= opt.max_n; ++n) {
    for (std::size_t k = 0; k < opt.per_size; ++k) {
      for (;;) {  // retry if the BAS cap is exceeded
        AttackTree t = random_block();
        while (t.node_count() < n) {
          const std::string tag = "c" + std::to_string(unique_tag++) + ".";
          t = combine(t, random_block(), random_method(), tag, rng);
        }
        if (t.bas_count() <= opt.max_bas) {
          suite.push_back({std::move(t), n});
          break;
        }
      }
    }
  }
  return suite;
}

}  // namespace atcd::gen
