#include "ilp/ilp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

namespace atcd::ilp {
namespace {

/// A search node: bound overrides relative to the root LP, stored as a
/// chain to keep nodes O(1) in size.
struct Node {
  std::shared_ptr<const Node> parent;
  int var = -1;
  double lo = 0.0, hi = 0.0;  // override for `var`
  double bound = -lp::kInf;   // LP relaxation value at the *parent*
  std::size_t depth = 0;
};

struct QueueEntry {
  std::shared_ptr<const Node> node;
  double bound;
  std::size_t depth;
  std::uint64_t seq;  // deterministic FIFO tie-break
};

struct BestFirst {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-bound first
    if (a.depth != b.depth) return a.depth < b.depth;  // deeper first
    return a.seq > b.seq;
  }
};

void apply_bounds(lp::LinearProgram& prog, const Node* node) {
  // Walk leaf -> root; the leaf-most override of a variable is the
  // tightest (child intervals are nested), so apply only the first one.
  std::vector<char> seen(static_cast<std::size_t>(prog.num_vars()), 0);
  for (const Node* n = node; n && n->var >= 0; n = n->parent.get()) {
    auto& s = seen[static_cast<std::size_t>(n->var)];
    if (!s) {
      prog.set_bounds(n->var, n->lo, n->hi);
      s = 1;
    }
  }
}

}  // namespace

const char* to_string(IlpStatus s) {
  switch (s) {
    case IlpStatus::Optimal:
      return "optimal";
    case IlpStatus::Infeasible:
      return "infeasible";
    case IlpStatus::NodeLimit:
      return "node-limit";
  }
  return "?";
}

IlpResult solve(const IntegerProgram& ip, const IlpOptions& opt) {
  for (int v : ip.integer_vars) {
    if (v < 0 || v >= ip.base.num_vars())
      throw SolverError("ilp: unknown integer variable");
    if (!std::isfinite(ip.base.upper_bound(v)))
      throw SolverError("ilp: integer variables must be bounded");
  }

  IlpResult result;
  bool have_incumbent = false;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, BestFirst> open;
  std::uint64_t seq = 0;
  open.push({std::make_shared<Node>(), -lp::kInf, 0, seq++});

  while (!open.empty()) {
    const QueueEntry entry = open.top();
    open.pop();
    if (have_incumbent &&
        entry.bound >= result.objective - opt.absolute_gap)
      continue;  // cannot improve the incumbent
    if (result.nodes_explored >= opt.node_limit) {
      result.status = have_incumbent ? IlpStatus::NodeLimit
                                     : IlpStatus::NodeLimit;
      return result;
    }
    ++result.nodes_explored;

    lp::LinearProgram prog = ip.base;
    apply_bounds(prog, entry.node.get());
    const lp::LpResult rel = lp::solve(prog);
    result.lp_iterations += rel.iterations;
    if (rel.status == lp::LpStatus::Infeasible) continue;
    if (rel.status == lp::LpStatus::Unbounded)
      throw SolverError("ilp: LP relaxation unbounded");
    if (rel.status == lp::LpStatus::IterationLimit)
      throw SolverError("ilp: simplex iteration limit hit");
    if (have_incumbent &&
        rel.objective >= result.objective - opt.absolute_gap)
      continue;

    // Most-fractional integer variable.
    int branch_var = -1;
    double branch_val = 0.0, best_frac = opt.integrality_tol;
    for (int v : ip.integer_vars) {
      const double val = rel.x[static_cast<std::size_t>(v)];
      const double frac = std::abs(val - std::round(val));
      if (frac > best_frac) {
        best_frac = frac;
        branch_var = v;
        branch_val = val;
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      result.objective = rel.objective;
      result.x = rel.x;
      for (int v : ip.integer_vars) {
        auto& xv = result.x[static_cast<std::size_t>(v)];
        xv = std::round(xv);
      }
      have_incumbent = true;
      continue;
    }

    // Determine the effective bounds of branch_var at this node.
    double lo = ip.base.lower_bound(branch_var);
    double hi = ip.base.upper_bound(branch_var);
    for (const Node* n = entry.node.get(); n && n->var >= 0;
         n = n->parent.get()) {
      if (n->var == branch_var) {
        lo = n->lo;
        hi = n->hi;
        break;
      }
    }
    const double floor_v = std::floor(branch_val);
    // Down child: x <= floor(v); up child: x >= floor(v)+1.
    if (floor_v >= lo) {
      auto child = std::make_shared<Node>();
      child->parent = entry.node;
      child->var = branch_var;
      child->lo = lo;
      child->hi = floor_v;
      child->depth = entry.depth + 1;
      open.push({std::move(child), rel.objective, entry.depth + 1, seq++});
    }
    if (floor_v + 1.0 <= hi) {
      auto child = std::make_shared<Node>();
      child->parent = entry.node;
      child->var = branch_var;
      child->lo = floor_v + 1.0;
      child->hi = hi;
      child->depth = entry.depth + 1;
      open.push({std::move(child), rel.objective, entry.depth + 1, seq++});
    }
  }

  result.status = have_incumbent ? IlpStatus::Optimal : IlpStatus::Infeasible;
  return result;
}

}  // namespace atcd::ilp
