#pragma once
/// \file ilp.hpp
/// Integer linear programming by LP-based branch & bound.
///
/// Together with lp/lp.hpp this supplies the single-objective ILP oracle
/// the paper takes from Gurobi (Sec. VII, Thm 7).  Scope is deliberately
/// matched to the models this library generates: all integer variables
/// are bounded (the AT translation uses binaries), instances have at most
/// a few hundred variables, and no cutting planes are needed at that size.
///
/// Search: best-first on the LP relaxation bound, most-fractional
/// branching, depth-first dive tie-break.  Deterministic.

#include <cstddef>
#include <vector>

#include "lp/lp.hpp"

namespace atcd::ilp {

/// An ILP: an LP plus the set of variables required to be integral.
struct IntegerProgram {
  lp::LinearProgram base;
  std::vector<int> integer_vars;
};

enum class IlpStatus { Optimal, Infeasible, NodeLimit };

const char* to_string(IlpStatus s);

struct IlpResult {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;          ///< integral entries rounded exactly
  std::size_t nodes_explored = 0;
  std::size_t lp_iterations = 0;  ///< total simplex pivots
};

struct IlpOptions {
  std::size_t node_limit = 1u << 20;
  double integrality_tol = 1e-6;
  /// Prune nodes whose bound cannot improve the incumbent by more than
  /// this absolute amount.
  double absolute_gap = 1e-9;
};

/// Solves min c·x over the mixed-integer feasible set.
IlpResult solve(const IntegerProgram& ip, const IlpOptions& opt = {});

}  // namespace atcd::ilp
