#pragma once
/// \file bilp.hpp
/// Biobjective integer linear programming (BILP, paper Sec. VII, eq. (6)).
///
/// Computes the full nondominated set of  min (f1·x, f2·x)  over an
/// integer-feasible region by the lexicographic ε-constraint sweep used in
/// multi-objective integer programming [Özlen & Azizoğlu, 18]:
///
///   1. lexicographically minimize (f1, then f2)    -> point (z1, z2)
///   2. add the constraint f1 <= z1 - ε and repeat until infeasible.
///
/// Each iteration yields the next nondominated point with strictly larger
/// f1... (strictly smaller f1 on the sweep axis), so the loop terminates
/// after exactly |front| + 1 ILP pairs.
///
/// ε must separate distinct attainable f1 values.  When every f1
/// coefficient lies on a rational grid (detect_grid()), ε = grid/2 is
/// exact.  All models in this library have decimal costs, so the sweep is
/// exact in practice; callers may override ε.

#include <optional>
#include <vector>

#include "ilp/ilp.hpp"

namespace atcd::ilp {

/// A biobjective program: the feasible region of `base` (whose own
/// objective is ignored) with integer variables, and two linear
/// objectives to minimize.
struct BiObjectiveProgram {
  lp::LinearProgram base;
  std::vector<int> integer_vars;
  std::vector<double> obj1;  ///< dense, size == base.num_vars()
  std::vector<double> obj2;
};

/// One nondominated point with a witness solution.
struct BiPoint {
  double f1 = 0.0, f2 = 0.0;
  std::vector<double> x;
};

struct BilpStats {
  std::size_t ilp_solves = 0;
  std::size_t bnb_nodes = 0;
};

/// Finds the grid g in {10^0, 10^-1, ..., 10^-6} such that every value is
/// an integer multiple of g (within 1e-9 of one); nullopt if none fits.
std::optional<double> detect_grid(const std::vector<double>& values);

/// Computes the complete nondominated set, sorted by ascending f1
/// (descending f2).  \p epsilon: sweep step on f1; if <= 0 it is derived
/// from detect_grid(obj1 coefficients) and a SolverError is thrown when no
/// grid fits.
std::vector<BiPoint> nondominated_set(const BiObjectiveProgram& bp,
                                      double epsilon = 0.0,
                                      BilpStats* stats = nullptr);

/// Lexicographic minimum: minimize obj `first`, then obj `second` among
/// its optima (ties broken by a second ILP with an equality-like bound).
/// Returns nullopt when infeasible.
std::optional<BiPoint> lex_min(const BiObjectiveProgram& bp, bool f1_first,
                               BilpStats* stats = nullptr);

}  // namespace atcd::ilp
