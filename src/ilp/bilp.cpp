#include "ilp/bilp.hpp"

#include <algorithm>
#include <cmath>

namespace atcd::ilp {
namespace {

double dot(const std::vector<double>& c, const std::vector<double>& x) {
  double s = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) s += c[i] * x[i];
  return s;
}

std::vector<std::pair<int, double>> dense_row(const std::vector<double>& c) {
  std::vector<std::pair<int, double>> terms;
  for (std::size_t i = 0; i < c.size(); ++i)
    if (c[i] != 0.0) terms.emplace_back(static_cast<int>(i), c[i]);
  return terms;
}

/// Tolerance separating distinct attainable objective values, used when
/// pinning the first objective during the lexicographic refinement.
double lex_tolerance(const std::vector<double>& coeffs, double at) {
  if (const auto g = detect_grid(coeffs)) return *g / 2.0;
  return 1e-7 * (1.0 + std::abs(at));
}

std::optional<BiPoint> lex_min_impl(const lp::LinearProgram& region,
                                    const std::vector<int>& ints,
                                    const std::vector<double>& first,
                                    const std::vector<double>& second,
                                    const std::vector<double>& obj1,
                                    const std::vector<double>& obj2,
                                    BilpStats* stats) {
  lp::LinearProgram prog = region;
  for (int v = 0; v < prog.num_vars(); ++v)
    prog.set_obj(v, first[static_cast<std::size_t>(v)]);
  IlpResult r1 = solve(IntegerProgram{prog, ints});
  if (stats) {
    ++stats->ilp_solves;
    stats->bnb_nodes += r1.nodes_explored;
  }
  if (r1.status == IlpStatus::Infeasible) return std::nullopt;
  if (r1.status != IlpStatus::Optimal)
    throw SolverError("bilp: branch-and-bound node limit reached");

  const double z1 = dot(first, r1.x);
  prog.add_row(dense_row(first), lp::Sense::LE,
               z1 + lex_tolerance(first, z1));
  for (int v = 0; v < prog.num_vars(); ++v)
    prog.set_obj(v, second[static_cast<std::size_t>(v)]);
  IlpResult r2 = solve(IntegerProgram{prog, ints});
  if (stats) {
    ++stats->ilp_solves;
    stats->bnb_nodes += r2.nodes_explored;
  }
  if (r2.status != IlpStatus::Optimal)
    throw SolverError("bilp: lexicographic refinement failed");

  BiPoint p;
  p.x = std::move(r2.x);
  p.f1 = dot(obj1, p.x);
  p.f2 = dot(obj2, p.x);
  return p;
}

}  // namespace

std::optional<double> detect_grid(const std::vector<double>& values) {
  double g = 1.0;
  for (int k = 0; k <= 6; ++k, g /= 10.0) {
    bool ok = true;
    for (double v : values) {
      const double scaled = v / g;
      if (std::abs(scaled - std::round(scaled)) > 1e-9 * (1.0 + std::abs(scaled))) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  return std::nullopt;
}

std::optional<BiPoint> lex_min(const BiObjectiveProgram& bp, bool f1_first,
                               BilpStats* stats) {
  const auto& a = f1_first ? bp.obj1 : bp.obj2;
  const auto& b = f1_first ? bp.obj2 : bp.obj1;
  return lex_min_impl(bp.base, bp.integer_vars, a, b, bp.obj1, bp.obj2,
                      stats);
}

std::vector<BiPoint> nondominated_set(const BiObjectiveProgram& bp,
                                      double epsilon, BilpStats* stats) {
  const std::size_t nv = static_cast<std::size_t>(bp.base.num_vars());
  if (bp.obj1.size() != nv || bp.obj2.size() != nv)
    throw SolverError("bilp: objective vector size mismatch");

  if (epsilon <= 0.0) {
    const auto g = detect_grid(bp.obj2);
    if (!g)
      throw SolverError(
          "bilp: cannot derive a sweep step; obj2 coefficients are not on a "
          "decimal grid — pass an explicit epsilon");
    epsilon = *g / 2.0;
  }

  std::vector<BiPoint> front;
  lp::LinearProgram region = bp.base;
  const auto obj2_terms = dense_row(bp.obj2);
  for (;;) {
    // Nondominated point with the best f1 among solutions satisfying the
    // current f2 budget; minimal f2 among those (lexicographic).
    const auto p = lex_min_impl(region, bp.integer_vars, bp.obj1, bp.obj2,
                                bp.obj1, bp.obj2, stats);
    if (!p) break;
    front.push_back(*p);
    // Require the next point to be strictly cheaper in f2.
    region.add_row(obj2_terms, lp::Sense::LE, p->f2 - epsilon);
  }
  // Produced in descending f2 (ascending f1); return ascending f2.
  std::reverse(front.begin(), front.end());
  return front;
}

}  // namespace atcd::ilp
