#pragma once
/// \file adaptive.hpp
/// The sequential-attacker extension of the paper's Sec. VIII:
///
///   "BASs are attempted one by one and the attacker may choose to
///    reallocate their budget based on BASs that have succeeded or failed
///    their activation thus far.  Such extensions lead to more
///    complicated models, and are left to future work."
///
/// Model: the attacker attempts one BAS at a time, pays its cost whether
/// it succeeds or not (assumption 3 of the paper), observes the outcome,
/// and then picks the next BAS — or stops.  Each BAS can be attempted at
/// most once (assumption 5).  The objective is the expected final damage
/// d̂(S) of the set S of *succeeded* BASs, subject to total spend <= U.
///
/// Because damage is monotone and costs only gate feasibility, stopping
/// early is never strictly better, but the *order* and *choice* of
/// attempts matter: after a cheap OR-child succeeds, budget is better
/// spent elsewhere than on its redundant sibling.  Hence
/// adaptive value >= static EDgC value, with strict gaps in general.
///
/// Algorithm: exact expectimax over (attempted, succeeded) state pairs
/// with memoization — O(3^|B|) states, capacity-guarded.  This
/// deliberately trades generality for exactness, mirroring the library's
/// other open-problem engines; it quantifies how much the paper's static
/// model (all BASs committed up front) underestimates a reactive
/// adversary (bench/ext_adaptive_attacker).

#include <cstdint>

#include "core/cdat.hpp"
#include "core/opt_result.hpp"

namespace atcd::adaptive {

/// Result of the adaptive analysis.
struct AdaptiveResult {
  double expected_damage = 0.0;
  /// The optimal first attempt, or kNoNode when attempting nothing is
  /// optimal (no affordable BAS improves expected damage).
  NodeId first_move = kNoNode;
  std::size_t states_explored = 0;
};

/// Optimal adaptive expected damage under cost budget \p budget
/// (the sequential analogue of EDgC).  Works on trees and DAGs: damage
/// of an outcome set is evaluated with the plain structure function.
/// Throws CapacityError when |B| > max_bas (default 14; 3^14 ~ 4.8M
/// states).
AdaptiveResult adaptive_edgc(const CdpAt& m, double budget,
                             std::size_t max_bas = 14);

/// Simulates the optimal adaptive policy once, drawing BAS outcomes from
/// \p rng; returns the realized damage.  Used for Monte-Carlo validation.
double simulate_adaptive_policy(const CdpAt& m, double budget, Rng& rng,
                                std::size_t max_bas = 14);

}  // namespace atcd::adaptive
