#include "adaptive/adaptive.hpp"

#include <unordered_map>

namespace atcd::adaptive {
namespace {

/// Shared evaluation context for one adaptive_edgc call.
struct Search {
  const CdpAt& m;
  const CdAt det;
  double budget;
  std::size_t nb;
  std::unordered_map<std::uint64_t, double> memo;
  std::unordered_map<std::uint64_t, double> damage_memo;

  explicit Search(const CdpAt& model, double u)
      : m(model),
        det{model.tree, model.cost, model.damage},
        budget(u),
        nb(model.tree.bas_count()) {}

  static std::uint64_t key(std::uint64_t attempted, std::uint64_t succeeded) {
    return attempted << 32 | succeeded;
  }

  double damage_of(std::uint64_t succeeded) {
    auto [it, inserted] = damage_memo.try_emplace(succeeded, 0.0);
    if (inserted)
      it->second = total_damage(det, Attack::from_mask(nb, succeeded));
    return it->second;
  }

  /// Value of the state where `attempted` BASs were tried (costing
  /// `spent`) and `succeeded` of them succeeded.
  double value(std::uint64_t attempted, std::uint64_t succeeded,
               double spent) {
    const auto k = key(attempted, succeeded);
    if (const auto it = memo.find(k); it != memo.end()) return it->second;

    // Stopping yields the damage of the current success set; attempting
    // any affordable BAS can only help (damage is monotone), so take the
    // max over stop and all affordable continuations.
    double best = damage_of(succeeded);
    for (std::size_t b = 0; b < nb; ++b) {
      if (attempted >> b & 1) continue;
      const double c = m.cost[b];
      if (spent + c > budget) continue;
      const double p = m.prob[b];
      const std::uint64_t att2 = attempted | (std::uint64_t{1} << b);
      const double v = p * value(att2, succeeded | (std::uint64_t{1} << b),
                                 spent + c) +
                       (1.0 - p) * value(att2, succeeded, spent + c);
      if (v > best) best = v;
    }
    memo.emplace(k, best);
    return best;
  }

  /// Optimal next attempt at a state, or kNoNode when stopping is optimal.
  NodeId best_move(std::uint64_t attempted, std::uint64_t succeeded,
                   double spent) {
    double best = damage_of(succeeded);
    NodeId move = kNoNode;
    for (std::size_t b = 0; b < nb; ++b) {
      if (attempted >> b & 1) continue;
      const double c = m.cost[b];
      if (spent + c > budget) continue;
      const double p = m.prob[b];
      const std::uint64_t att2 = attempted | (std::uint64_t{1} << b);
      const double v = p * value(att2, succeeded | (std::uint64_t{1} << b),
                                 spent + c) +
                       (1.0 - p) * value(att2, succeeded, spent + c);
      if (v > best + 1e-15) {
        best = v;
        move = m.tree.bas_id(static_cast<std::uint32_t>(b));
      }
    }
    return move;
  }
};

void check_cap(const CdpAt& m, std::size_t max_bas, const char* who) {
  m.validate();
  if (m.tree.bas_count() > max_bas)
    throw CapacityError(std::string(who) + ": " +
                        std::to_string(m.tree.bas_count()) +
                        " BASs exceeds the state-space cap of " +
                        std::to_string(max_bas));
}

}  // namespace

AdaptiveResult adaptive_edgc(const CdpAt& m, double budget,
                             std::size_t max_bas) {
  check_cap(m, max_bas, "adaptive_edgc");
  Search s(m, budget);
  AdaptiveResult r;
  r.expected_damage = s.value(0, 0, 0.0);
  r.first_move = s.best_move(0, 0, 0.0);
  r.states_explored = s.memo.size();
  return r;
}

double simulate_adaptive_policy(const CdpAt& m, double budget, Rng& rng,
                                std::size_t max_bas) {
  check_cap(m, max_bas, "simulate_adaptive_policy");
  Search s(m, budget);
  std::uint64_t attempted = 0, succeeded = 0;
  double spent = 0.0;
  for (;;) {
    const NodeId move = s.best_move(attempted, succeeded, spent);
    if (move == kNoNode) break;
    const std::uint32_t b = m.tree.bas_index(move);
    attempted |= std::uint64_t{1} << b;
    spent += m.cost[b];
    if (rng.chance(m.prob[b])) succeeded |= std::uint64_t{1} << b;
  }
  return total_damage(CdAt{m.tree, m.cost, m.damage},
                      Attack::from_mask(m.tree.bas_count(), succeeded));
}

}  // namespace atcd::adaptive
