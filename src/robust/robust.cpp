#include "robust/robust.hpp"

#include <algorithm>
#include <cmath>

#include "core/problems.hpp"

namespace atcd::robust {

void IntervalCdAt::validate() const {
  if (!tree.finalized()) throw ModelError("interval cd-AT: tree not finalized");
  if (cost.size() != tree.bas_count())
    throw ModelError("interval cd-AT: cost vector size mismatch");
  if (damage.size() != tree.node_count())
    throw ModelError("interval cd-AT: damage vector size mismatch");
  for (const auto& i : cost)
    if (!(0.0 <= i.lo && i.lo <= i.hi))
      throw ModelError("interval cd-AT: bad cost interval");
  for (const auto& i : damage)
    if (!(0.0 <= i.lo && i.lo <= i.hi))
      throw ModelError("interval cd-AT: bad damage interval");
}

CdAt IntervalCdAt::optimistic() const {
  CdAt m;
  m.tree = tree;
  for (const auto& i : cost) m.cost.push_back(i.hi);
  for (const auto& i : damage) m.damage.push_back(i.lo);
  return m;
}

CdAt IntervalCdAt::pessimistic() const {
  CdAt m;
  m.tree = tree;
  for (const auto& i : cost) m.cost.push_back(i.lo);
  for (const auto& i : damage) m.damage.push_back(i.hi);
  return m;
}

CdAt IntervalCdAt::sample(Rng& rng) const {
  CdAt m;
  m.tree = tree;
  for (const auto& i : cost) m.cost.push_back(rng.uniform(i.lo, i.hi));
  for (const auto& i : damage) m.damage.push_back(rng.uniform(i.lo, i.hi));
  return m;
}

IntervalCdAt widen(const CdAt& m, double slack) {
  if (slack < 0.0 || slack >= 1.0)
    throw ModelError("widen: slack must lie in [0, 1)");
  IntervalCdAt out;
  out.tree = m.tree;
  for (double c : m.cost)
    out.cost.push_back({c * (1.0 - slack), c * (1.0 + slack)});
  for (double d : m.damage)
    out.damage.push_back({d * (1.0 - slack), d * (1.0 + slack)});
  out.validate();
  return out;
}

RobustFront robust_cdpf(const IntervalCdAt& m) {
  m.validate();
  return RobustFront{cdpf(m.optimistic()), cdpf(m.pessimistic())};
}

RobustDgc robust_dgc(const IntervalCdAt& m, double budget) {
  m.validate();
  RobustDgc r;
  r.damage_lo = dgc(m.optimistic(), budget).damage;
  r.damage_hi = dgc(m.pessimistic(), budget).damage;
  return r;
}

std::vector<Sensitivity> dgc_sensitivity(const CdAt& m, double budget,
                                         double delta) {
  m.validate();
  if (delta <= 0.0 || delta >= 1.0)
    throw ModelError("dgc_sensitivity: delta must lie in (0, 1)");
  std::vector<Sensitivity> out;
  auto probe = [&](double& slot, const std::string& name, bool is_cost) {
    const double original = slot;
    if (original == 0.0) return;  // scaling zero is a no-op
    Sensitivity s;
    s.name = name;
    s.is_cost = is_cost;
    slot = original * (1.0 - delta);
    s.dgc_minus = dgc(m, budget).damage;
    slot = original * (1.0 + delta);
    s.dgc_plus = dgc(m, budget).damage;
    slot = original;
    s.swing = std::abs(s.dgc_plus - s.dgc_minus);
    out.push_back(std::move(s));
  };
  // The const_cast is contained: probe restores every slot before
  // returning, and `m` is logically unchanged.
  auto& mm = const_cast<CdAt&>(m);
  for (NodeId b : m.tree.bas_ids())
    probe(mm.cost[m.tree.bas_index(b)], m.tree.name(b), /*is_cost=*/true);
  for (NodeId v = 0; v < m.tree.node_count(); ++v)
    probe(mm.damage[v], m.tree.name(v), /*is_cost=*/false);
  std::sort(out.begin(), out.end(), [](const Sensitivity& a,
                                       const Sensitivity& b) {
    return a.swing > b.swing;
  });
  return out;
}

CdpAt refund_model(const CdpAt& m, double gamma) {
  m.validate();
  if (gamma < 0.0 || gamma > 1.0)
    throw ModelError("refund_model: gamma must lie in [0, 1]");
  CdpAt out = m;
  for (std::size_t i = 0; i < out.cost.size(); ++i) {
    const double p = m.prob[i];
    out.cost[i] = m.cost[i] * (p + (1.0 - p) * (1.0 - gamma));
  }
  return out;
}

}  // namespace atcd::robust
