#pragma once
/// \file robust.hpp
/// Robust cost-damage analysis under decoration uncertainty, and the
/// cost-refund extension of the probabilistic model — two of the
/// extensions the paper explicitly proposes:
///
///  * Conclusion: "the cost and damage values may not be precisely known,
///    but carry some uncertainty.  A more elaborate analysis can
///    incorporate this uncertainty ... to obtain a robust version of the
///    cost-damage Pareto front."  We implement interval decorations:
///    every cost and damage is a closed interval, and the analysis
///    returns two fronts bracketing every realization —
///      - the OPTIMISTIC front (defender-friendly: attacks cost their
///        maximum and damage their minimum), and
///      - the PESSIMISTIC front (attacks cost their minimum and damage
///        their maximum).
///    Monotonicity of ĉ and d̂ in the decorations makes these exact
///    bounds: for any fixed attack x, (ĉ, d̂)(x) under any realization
///    lies in the box spanned by its evaluations on the two corner
///    models.  Every realized front is dominated by the pessimistic front
///    and dominates the optimistic one.
///
///  * Sec. VIII: "the attacker might recoup some of the costs of failed
///    activations".  refund_model() rescales BAS costs to their expected
///    value under a refund fraction γ ∈ [0,1]: a failed BAS costs
///    (1-γ)·c(v), so E[cost] = c(v)·(p(v) + (1-p(v))(1-γ)).  The
///    resulting model is a plain cdp-AT and all engines apply unchanged.

#include <string>
#include <vector>

#include "core/cdat.hpp"
#include "pareto/front2d.hpp"

namespace atcd::robust {

/// A closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// A cd-AT whose decorations are intervals.
struct IntervalCdAt {
  AttackTree tree;
  std::vector<Interval> cost;    ///< per BAS index
  std::vector<Interval> damage;  ///< per NodeId

  /// Checks sizes, lo <= hi, lo >= 0.  Throws ModelError.
  void validate() const;

  /// Corner models.
  CdAt optimistic() const;   ///< cost = hi, damage = lo
  CdAt pessimistic() const;  ///< cost = lo, damage = hi

  /// A realization with decorations drawn uniformly from the intervals.
  CdAt sample(Rng& rng) const;
};

/// Builds an interval model from a point model with symmetric relative
/// slack: value v becomes [v(1-slack), v(1+slack)].
IntervalCdAt widen(const CdAt& m, double slack);

/// The two bounding fronts.
struct RobustFront {
  Front2d optimistic;   ///< lower envelope of all realized fronts
  Front2d pessimistic;  ///< upper envelope of all realized fronts
};

/// Computes both bounding fronts with the strongest applicable engine.
RobustFront robust_cdpf(const IntervalCdAt& m);

/// Robust DgC: bounds on the maximal damage for a cost budget.  The
/// budget is compared against pessimistic (lo) costs for the upper bound
/// and optimistic (hi) costs for the lower bound.
struct RobustDgc {
  double damage_lo = 0.0;  ///< guaranteed achievable by the attacker
  double damage_hi = 0.0;  ///< worst case for the defender
};
RobustDgc robust_dgc(const IntervalCdAt& m, double budget);

/// Sec. VIII refund extension: expected-cost model under refund fraction
/// gamma (0 = paper's base model: full cost paid regardless of outcome;
/// 1 = failed BASs are free).
CdpAt refund_model(const CdpAt& m, double gamma);

/// One-at-a-time sensitivity of DgC to the decorations: how much does the
/// attacker's optimal damage move when a single cost or damage value is
/// perturbed by ±delta (relative)?  The classic "tornado" view of which
/// estimates are worth refining before trusting the analysis.
struct Sensitivity {
  std::string name;      ///< BAS name (cost entries) or node name (damage)
  bool is_cost = false;  ///< true: BAS cost perturbed; false: node damage
  double dgc_minus = 0;  ///< DgC with the value scaled by (1 - delta)
  double dgc_plus = 0;   ///< DgC with the value scaled by (1 + delta)
  double swing = 0;      ///< |dgc_plus - dgc_minus|
};

/// Computes the sensitivity of dgc(m, budget) to every nonzero cost and
/// damage entry, sorted by descending swing.
std::vector<Sensitivity> dgc_sensitivity(const CdAt& m, double budget,
                                         double delta = 0.1);

}  // namespace atcd::robust
