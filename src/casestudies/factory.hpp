#pragma once
/// \file factory.hpp
/// The running example of the paper (Fig. 1): production in a factory is
/// shut down either by a cyberattack or by destroying the production
/// robot (force the door, place a bomb).  Damage in 1000 USD on the
/// internal nodes; Example 8 adds success probabilities.
///
/// Ground truth used in tests (paper Examples 1-2, eq. (3), Fig. 3):
///   PF(T) = {(0,0), (1,200), (3,210), (5,310)}.

#include "core/cdat.hpp"

namespace atcd::casestudies {

/// Deterministic model of Fig. 1 / Example 1.
CdAt make_factory();

/// Probabilistic extension of Example 8: p(ca)=0.2, p(pb)=0.4, p(fd)=0.9.
CdpAt make_factory_probabilistic();

}  // namespace atcd::casestudies
