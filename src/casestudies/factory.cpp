#include "casestudies/factory.hpp"

namespace atcd::casestudies {

CdAt make_factory() {
  CdAt m;
  auto& t = m.tree;
  const NodeId ca = t.add_bas("ca");  // cyberattack
  const NodeId pb = t.add_bas("pb");  // place bomb
  const NodeId fd = t.add_bas("fd");  // force door
  const NodeId dr = t.add_gate(NodeType::AND, "dr", {pb, fd});  // destroy robot
  const NodeId ps = t.add_gate(NodeType::OR, "ps", {ca, dr});   // prod. shutdown
  t.set_root(ps);
  t.finalize();

  m.cost = {/*ca*/ 1.0, /*pb*/ 3.0, /*fd*/ 2.0};
  m.damage.assign(t.node_count(), 0.0);
  m.damage[fd] = 10.0;
  m.damage[dr] = 100.0;
  m.damage[ps] = 200.0;
  m.validate();
  return m;
}

CdpAt make_factory_probabilistic() {
  const CdAt det = make_factory();
  CdpAt m{det.tree, det.cost, det.damage, {/*ca*/ 0.2, /*pb*/ 0.4, /*fd*/ 0.9}};
  m.validate();
  return m;
}

}  // namespace atcd::casestudies
