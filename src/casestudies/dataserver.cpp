#include "casestudies/dataserver.hpp"

namespace atcd::casestudies {

CdAt make_dataserver() {
  CdAt m;
  auto& t = m.tree;
  auto bas = [&](const char* name, double cost) {
    const NodeId id = t.add_bas(name);
    m.cost.push_back(cost);
    return id;
  };

  // --- SMTP path (b1-b5). ---
  const NodeId b1 = bas("b1_internet_connection_smtp", 100);
  const NodeId b2 = bas("b2_ftp_rhost_attack_smtp", 161);
  const NodeId b3 = bas("b3_rsh_login_smtp", 147);
  const NodeId b4 = bas("b4_licq_remote_to_user", 155);
  const NodeId b5 = bas("b5_local_bo_at_daemon", 150);
  const NodeId smtp_auth_bypassed =
      t.add_gate(NodeType::AND, "smtp_authentication_bypassed", {b1, b2});
  const NodeId user_access_smtp = t.add_gate(
      NodeType::AND, "user_access_smtp_server", {smtp_auth_bypassed, b3});
  const NodeId user_access_terminal = t.add_gate(
      NodeType::AND, "user_access_terminal", {user_access_smtp, b4});
  const NodeId root_access_terminal = t.add_gate(
      NodeType::AND, "root_access_terminal", {user_access_terminal, b5});

  // --- FTP path (b6-b10); b6 is shared by three exploits (DAG). ---
  const NodeId b6 = bas("b6_internet_connection_ftp", 100);
  const NodeId b7 = bas("b7_attack_via_ssh", 155);
  const NodeId b8 = bas("b8_attack_via_ftp", 150);
  const NodeId b9 = bas("b9_ftp_rhost_attack_ftp", 147);
  const NodeId b10 = bas("b10_rsh_login_ftp", 161);
  const NodeId ssh_bo =
      t.add_gate(NodeType::AND, "ssh_buffer_overflow", {b6, b7});
  const NodeId ftp_bo =
      t.add_gate(NodeType::AND, "ftp_buffer_overflow", {b6, b8});
  const NodeId root_access_ftp =
      t.add_gate(NodeType::OR, "root_access_ftp_server", {ssh_bo, ftp_bo});
  const NodeId ftp_auth_bypassed =
      t.add_gate(NodeType::AND, "ftp_authentication_bypassed", {b6, b9});
  const NodeId login_ftp =
      t.add_gate(NodeType::AND, "login_ftp_server", {ftp_auth_bypassed, b10});
  const NodeId user_access_ftp = t.add_gate(
      NodeType::OR, "user_access_ftp_server", {login_ftp, root_access_ftp});

  // --- Data server (b11, b12); reachable from either path (DAG). ---
  const NodeId b11 = bas("b11_licq_remote_to_user_ds", 155);
  const NodeId b12 = bas("b12_suid_buffer_overflow", 163);
  // root_access_terminal is deliberately redundant for reaching the top
  // (it requires user_access_smtp, itself a child of this OR) but carries
  // damage — exactly the paper's remark about UserAccessToTerminal.
  const NodeId connect_ds = t.add_gate(
      NodeType::OR, "connect_data_server",
      {user_access_ftp, user_access_smtp, root_access_terminal});
  const NodeId user_access_ds = t.add_gate(
      NodeType::AND, "user_access_data_server", {connect_ds, b11});
  const NodeId root_access_ds = t.add_gate(
      NodeType::AND, "root_access_data_server", {user_access_ds, b12});
  t.set_root(root_access_ds);
  t.finalize();

  m.damage.assign(t.node_count(), 0.0);
  m.damage[user_access_smtp] = 10.8;
  m.damage[user_access_terminal] = 5.0;
  m.damage[root_access_terminal] = 7.0;
  m.damage[root_access_ftp] = 10.5;
  m.damage[user_access_ftp] = 13.5;
  m.damage[root_access_ds] = 36.0;
  m.validate();
  return m;
}

}  // namespace atcd::casestudies
