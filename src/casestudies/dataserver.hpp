#pragma once
/// \file dataserver.hpp
/// Case study 2 (paper Sec. X-B, Fig. 5): attacking a data server on a
/// network behind a firewall using known exploits (Dewri et al. [23]).
/// DAG-shaped (the FTP-server connection and SMTP user access feed several
/// parents), 25 nodes, 12 BASs.  Damage values are the unitless composite
/// scores of [23]; costs are expected attack durations (in 1/100 s,
/// following Zhao et al. [38]).  Deterministic analysis only, like the
/// paper.
///
/// Reconstruction note: calibrated so every published Pareto point of
/// Fig. 6c is exact (verified in tests):
///   (0,0) (250,24) (568,60) (976,70.8) (1131,75.8) (1281,82.8),
/// with (250,24) = {b6,b8} the only optimal attack missing the top node.

#include "core/cdat.hpp"

namespace atcd::casestudies {

/// The cd-AT of Fig. 5.
CdAt make_dataserver();

}  // namespace atcd::casestudies
