#include "casestudies/panda.hpp"

namespace atcd::casestudies {

CdpAt make_panda() {
  CdpAt m;
  auto& t = m.tree;
  std::vector<double> damage_by_id;
  auto bas = [&](const char* name, double cost, double prob) {
    const NodeId id = t.add_bas(name);
    m.cost.push_back(cost);
    m.prob.push_back(prob);
    return id;
  };

  // --- Branch 1: messages deciphered (b1-b3). ---
  const NodeId b1 = bas("b1_obtain_messages", 1, 0.5);
  const NodeId b2 = bas("b2_analytical_reasoning", 4, 0.5);
  const NodeId b3 = bas("b3_brute_force", 3, 0.3);
  const NodeId password_cracked =
      t.add_gate(NodeType::OR, "password_cracked", {b2, b3});
  const NodeId messages_deciphered =
      t.add_gate(NodeType::AND, "messages_deciphered", {b1, password_cracked});

  // --- Branch 2: info obtained through a compromised node (b4-b6). ---
  const NodeId b4 = bas("b4_look_for_nodes", 2, 0.5);
  const NodeId b5 = bas("b5_crack_security", 3, 0.5);
  const NodeId b6 = bas("b6_search_information", 2, 0.7);
  const NodeId node_compromised =
      t.add_gate(NodeType::AND, "node_compromised", {b4, b5});
  const NodeId info_through_node = t.add_gate(
      NodeType::AND, "info_obtained_through_node", {node_compromised, b6});
  const NodeId location_info_captured =
      t.add_gate(NodeType::OR, "location_info_captured",
                 {messages_deciphered, info_through_node});

  // --- Branch 3: global eavesdropping (b7-b10). ---
  const NodeId b7 = bas("b7_high_monitor_equipment", 4, 0.9);
  const NodeId b8 = bas("b8_physical_layer", 2, 0.7);
  const NodeId b9 = bas("b9_mac_layer", 3, 0.7);
  const NodeId b10 = bas("b10_appliance_layer", 3, 0.7);
  const NodeId global_traffic = t.add_gate(
      NodeType::OR, "global_traffic_info_collection", {b8, b9, b10});
  const NodeId global_eavesdropping = t.add_gate(
      NodeType::AND, "global_eavesdropping", {b7, global_traffic});
  const NodeId global_info_compromised = t.add_gate(
      NodeType::OR, "global_info_compromised", {global_eavesdropping});

  // --- Branch 4: group / local eavesdropping (b11-b16). ---
  const NodeId b11 = bas("b11_compute_local_location_info", 2, 0.9);
  const NodeId b12 = bas("b12_group_monitor_equipment", 3, 0.9);
  const NodeId b13 = bas("b13_traffic_information_collection", 3, 0.9);
  const NodeId b14 = bas("b14_analyze_collected_information", 2, 0.5);
  const NodeId b15 = bas("b15_find_base_station", 1, 0.7);
  const NodeId b16 = bas("b16_follow_hop_by_hop", 3, 0.5);
  const NodeId group_eavesdropping = t.add_gate(
      NodeType::AND, "group_eavesdropping", {b11, b12, b13});
  const NodeId local_eavesdropping = t.add_gate(
      NodeType::AND, "local_eavesdropping", {b14, b15, b16});
  const NodeId location_info_eavesdropped =
      t.add_gate(NodeType::OR, "location_info_eavesdropped",
                 {group_eavesdropping, local_eavesdropping});

  // --- Branch 5: purchased info (b17, b18). ---
  const NodeId b17 = bas("b17_purchase_from_3rd_party", 5, 0.5);
  const NodeId b18 = bas("b18_internal_leakage", 3, 0.9);
  const NodeId location_info_purchased = t.add_gate(
      NodeType::OR, "location_info_purchased", {b17, b18});

  // --- Branch 6: base station compromised (b19-b22). ---
  const NodeId b19 = bas("b19_look_for_base_station", 1, 0.7);
  const NodeId b20 = bas("b20_crack_password", 3, 0.3);
  const NodeId b21 = bas("b21_send_malicious_codes", 1, 0.3);
  const NodeId b22 = bas("b22_malicious_codes_ran", 3, 0.3);
  const NodeId physical_theft =
      t.add_gate(NodeType::AND, "physical_theft", {b19, b20});
  const NodeId code_theft =
      t.add_gate(NodeType::AND, "code_theft", {b21, b22});
  const NodeId base_station_compromised =
      t.add_gate(NodeType::OR, "base_station_compromised",
                 {physical_theft, code_theft});

  const NodeId root = t.add_gate(
      NodeType::OR, "location_privacy_leakage",
      {location_info_captured, global_info_compromised,
       location_info_eavesdropped, base_station_compromised,
       location_info_purchased});
  t.set_root(root);
  t.finalize();

  m.damage.assign(t.node_count(), 0.0);
  m.damage[messages_deciphered] = 10.0;
  m.damage[node_compromised] = 5.0;
  m.damage[global_info_compromised] = 15.0;
  m.damage[group_eavesdropping] = 5.0;
  m.damage[base_station_compromised] = 45.0;
  m.damage[location_info_purchased] = 15.0;
  m.damage[root] = 5.0;
  m.validate();
  return m;
}

}  // namespace atcd::casestudies
