#pragma once
/// \file panda.hpp
/// Case study 1 (paper Sec. X-A, Fig. 4): privacy attacks on an IoT
/// wireless-sensor network tracking giant pandas in a Chinese reservation
/// (Jiang, Luo & Wang [22]).  Treelike, 38 nodes, 22 BASs.  Costs and
/// success probabilities are the values of [22] (probabilities converted
/// to 0.1-0.9); damage (million USD) estimated from panda economic value,
/// with the big-ticket items on internal nodes: base-station compromise
/// leaks every panda's location (d = 45), purchased/compromised global
/// info d = 15, the top event itself only d = 5.
///
/// This is a reconstruction from the paper's figure: the text dump leaves
/// a few gate attachments ambiguous, so the tree was calibrated to make
/// every published Pareto point of Fig. 6a exact (verified in tests) and
/// Fig. 6b accurate to rounding.
///
/// Ground truth (Fig. 6a, deterministic CDPF):
///   (0,0) (3,20) (4,50) (7,65) (11,75) (13,80) (17,90) (22,95) (30,100).

#include "core/cdat.hpp"

namespace atcd::casestudies {

/// The cdp-AT of Fig. 4 (deterministic analyses use .deterministic()).
CdpAt make_panda();

}  // namespace atcd::casestudies
