#pragma once
/// \file snapshot.hpp
/// Versioned, checksummed binary snapshots of the serving caches —
/// warm restarts for the result cache and the Merkle subtree cache
/// (ROADMAP item 2).
///
/// Format.  A snapshot is `magic + version + section table`:
///
///   bytes 0..8    magic "ATCDSNAP"
///   bytes 8..12   u32 format version (kFormatVersion; forward-
///                 incompatible versions are rejected as BadVersion)
///   bytes 12..16  u32 section count
///   per section:  u32 tag, u64 payload size, u32 CRC-32 of the
///                 payload, payload bytes
///
/// Two sections are written: the ResultCache ('RC\0\1') and the
/// SubtreeCache ('SC\0\1').  Models are serialized as at/parser.hpp
/// text (printed at 17 significant digits, so every double round-trips
/// bit-exactly), fronts ride in one FrontSoaStore image per section,
/// and witnesses are raw DynBitset words.  Entries are listed shard by
/// shard, least-recently-used first, so a load that replays them
/// through the caches' normal insert paths reproduces the LRU order —
/// and an over-budget load into a smaller cache evicts exactly the
/// least recent entries.  Byte/entry bookkeeping is never serialized:
/// the receiving cache recomputes it, so a snapshot can never talk a
/// cache out of its budgets and the two sections can never double-count
/// each other's bytes.
///
/// Integrity.  decode_snapshot() is all-or-nothing: the whole image is
/// decoded into staging storage (every model reparsed, every canonical
/// hash recomputed and verified) before either cache is touched, so a
/// truncated, bit-flipped, or version-bumped file loads as a typed
/// LoadStatus and leaves the caches exactly as they were.  save is
/// atomic: write to `<path>.tmp`, fsync-free rename over `<path>`.
///
/// The byte layout uses native (little-endian) integer and IEEE-754
/// encodings; snapshots are a warm-restart/fleet-handoff format for
/// like machines, not an archival interchange format.

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/cache.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::persist {

/// Snapshot format version this build writes and accepts.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Magic prefix of every snapshot file.
inline constexpr char kMagic[8] = {'A', 'T', 'C', 'D', 'S', 'N', 'A', 'P'};

/// Typed outcome of a snapshot load.  Everything except Ok leaves the
/// target caches untouched.
enum class LoadStatus {
  Ok = 0,
  IoError,           ///< file missing or unreadable
  BadMagic,          ///< not a snapshot file
  BadVersion,        ///< written by an incompatible (newer) format
  Truncated,         ///< shorter than its own section table claims
  ChecksumMismatch,  ///< a section's CRC-32 does not match its bytes
  Corrupt,           ///< CRC passed but the payload does not decode
};

/// Stable wire name of a load status ("ok", "bad_version", ...).
const char* to_string(LoadStatus status);

/// What a save wrote / a load restored.
struct SnapshotInfo {
  std::size_t result_entries = 0;   ///< ResultCache entries in the image
  std::size_t subtree_entries = 0;  ///< SubtreeCache entries in the image
  std::size_t bytes = 0;            ///< encoded image size
};

/// CRC-32 (IEEE 802.3, reflected) of a byte range; \p seed chains
/// incremental updates (pass the previous return value).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Serializes both caches into a snapshot image.
std::string encode_snapshot(const service::ResultCache& results,
                            const service::SubtreeCache& subtrees,
                            SnapshotInfo* info = nullptr);

/// Decodes an image and replays its entries into the given caches
/// through their normal insert paths (budget-enforced, MRU-ordered).
/// All-or-nothing: any status other than Ok leaves both caches
/// untouched.  Either cache pointer may be null to skip its section.
/// \p error (optional) receives a human-readable diagnostic.
LoadStatus decode_snapshot(const std::string& bytes,
                           service::ResultCache* results,
                           service::SubtreeCache* subtrees,
                           SnapshotInfo* info = nullptr,
                           std::string* error = nullptr);

/// encode_snapshot() to `<path>.tmp`, then atomic rename over \p path.
/// Returns false (with \p error set) when the file cannot be written.
bool save_snapshot(const std::string& path,
                   const service::ResultCache& results,
                   const service::SubtreeCache& subtrees,
                   SnapshotInfo* info = nullptr, std::string* error = nullptr);

/// Reads \p path and decode_snapshot()s it into the caches.
LoadStatus load_snapshot(const std::string& path,
                         service::ResultCache* results,
                         service::SubtreeCache* subtrees,
                         SnapshotInfo* info = nullptr,
                         std::string* error = nullptr);

}  // namespace atcd::persist
