#include "persist/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "at/parser.hpp"
#include "pareto/front_soa.hpp"
#include "service/subtree_cache.hpp"

namespace atcd::persist {

const char* to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::Ok: return "ok";
    case LoadStatus::IoError: return "io_error";
    case LoadStatus::BadMagic: return "bad_magic";
    case LoadStatus::BadVersion: return "bad_version";
    case LoadStatus::Truncated: return "truncated";
    case LoadStatus::ChecksumMismatch: return "checksum_mismatch";
    case LoadStatus::Corrupt: return "corrupt";
  }
  return "corrupt";
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
// ---------------------------------------------------------------------------

namespace {

struct Crc32Table {
  std::uint32_t at[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      at[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table.at[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Little helpers: append/read fixed-width values on a byte string.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kResultTag = fourcc('R', 'C', '0', '1');
constexpr std::uint32_t kSubtreeTag = fourcc('S', 'C', '0', '1');

void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void put_u32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::string* out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_str(std::string* out, const std::string& s) {
  put_u64(out, s.size());
  out->append(s);
}
void put_bitset(std::string* out, const DynBitset& w) {
  put_u64(out, w.size());
  for (std::size_t i = 0; i < w.word_count(); ++i) put_u64(out, w.word(i));
}

/// Thrown by the payload readers on any malformed content inside a
/// CRC-validated section; the decoder maps it to LoadStatus::Corrupt.
struct CorruptPayload {
  std::string what;
};

[[noreturn]] void corrupt(std::string what) {
  throw CorruptPayload{std::move(what)};
}

/// Bounds-checked cursor over one section payload.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : p_(data), n_(size) {}

  bool done() const { return off_ == n_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(p_[off_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, p_ + off_, 4);
    off_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, p_ + off_, 8);
    off_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(p_ + off_, static_cast<std::size_t>(len));
    off_ += static_cast<std::size_t>(len);
    return s;
  }
  DynBitset bitset() {
    const std::uint64_t nbits = u64();
    if (nbits > (std::uint64_t{1} << 32)) corrupt("witness width overflow");
    DynBitset w(static_cast<std::size_t>(nbits));
    for (std::size_t i = 0; i < w.word_count(); ++i) w.set_word(i, u64());
    // Padding bits above nbits must be zero (DynBitset invariant —
    // operator== and hashing depend on it).
    if (nbits % 64 != 0 && w.word_count() > 0 &&
        (w.word(w.word_count() - 1) >> (nbits % 64)) != 0)
      corrupt("witness padding bits set");
    return w;
  }

 private:
  void need(std::uint64_t k) {
    if (k > n_ - off_) corrupt("payload shorter than its contents claim");
  }
  const char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// ResultCache section.
// ---------------------------------------------------------------------------

std::string encode_result_section(const service::ResultCache& cache,
                                  std::size_t* count) {
  const auto entries = cache.export_entries();
  *count = entries.size();
  FrontSoaStore fronts;
  for (const auto& e : entries) fronts.add(e.result->front);
  std::string out;
  put_u64(&out, entries.size());
  put_str(&out, fronts.to_bytes());
  for (const auto& e : entries) {
    put_u64(&out, e.key.model);
    put_u8(&out, static_cast<std::uint8_t>(e.key.problem));
    put_f64(&out, e.key.bound);
    put_str(&out, e.key.backend);
    put_u8(&out, e.prob ? 1 : 0);
    put_str(&out, e.prob ? serialize_model(e.prob->tree, e.prob->cost,
                                           e.prob->damage, &e.prob->prob)
                         : serialize_model(e.det->tree, e.det->cost,
                                           e.det->damage, nullptr));
    put_str(&out, e.result->backend);
    put_u8(&out, e.result->attack.feasible ? 1 : 0);
    put_f64(&out, e.result->attack.cost);
    put_f64(&out, e.result->attack.damage);
    put_bitset(&out, e.result->attack.witness);
  }
  return out;
}

struct StagedResult {
  service::CacheKey key;
  std::shared_ptr<const CdAt> det;
  std::shared_ptr<const CdpAt> prob;
  engine::SolveResult result;
};

std::vector<StagedResult> decode_result_section(const std::string& payload) {
  Reader r(payload.data(), payload.size());
  const std::uint64_t n = r.u64();
  const auto fronts = FrontSoaStore::from_bytes(r.str());
  if (!fronts) corrupt("front store image does not decode");
  if (fronts->size() != n) corrupt("front count does not match entry count");
  std::vector<StagedResult> staged;
  for (std::uint64_t i = 0; i < n; ++i) {
    StagedResult s;
    s.key.model = r.u64();
    const std::uint8_t problem = r.u8();
    if (problem > static_cast<std::uint8_t>(engine::Problem::Cged))
      corrupt("unknown problem id");
    s.key.problem = static_cast<engine::Problem>(problem);
    s.key.bound = r.f64();
    s.key.backend = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > 1) corrupt("unknown model kind");
    if ((kind == 1) != engine::is_probabilistic(s.key.problem))
      corrupt("model kind does not match problem");
    const std::string model_text = r.str();
    try {
      ParsedModel parsed = parse_model(model_text);
      if (kind == 1) {
        auto m = std::make_shared<CdpAt>();
        m->tree = std::move(parsed.tree);
        m->cost = std::move(parsed.cost);
        m->damage = std::move(parsed.damage);
        m->prob = std::move(parsed.prob);
        m->validate();
        s.prob = std::move(m);
      } else {
        auto m = std::make_shared<CdAt>();
        m->tree = std::move(parsed.tree);
        m->cost = std::move(parsed.cost);
        m->damage = std::move(parsed.damage);
        m->validate();
        s.det = std::move(m);
      }
    } catch (const std::exception& e) {
      corrupt(std::string("embedded model does not parse: ") + e.what());
    }
    // The canonical hash must still identify the model, or lookups on
    // the restored entry would misbehave — recompute and verify.
    const std::uint64_t fp = s.prob
                                 ? service::model_fingerprint(*s.prob)
                                 : service::model_fingerprint(*s.det);
    if (fp != s.key.model) corrupt("canonical hash does not match model");
    s.result.ok = true;
    s.result.backend = r.str();
    s.result.front = fronts->get(static_cast<std::uint32_t>(i));
    s.result.attack.feasible = r.u8() != 0;
    s.result.attack.cost = r.f64();
    s.result.attack.damage = r.f64();
    s.result.attack.witness = r.bitset();
    staged.push_back(std::move(s));
  }
  if (!r.done()) corrupt("trailing bytes after last entry");
  return staged;
}

// ---------------------------------------------------------------------------
// SubtreeCache section.
// ---------------------------------------------------------------------------

std::string encode_subtree_section(const service::SubtreeCache& cache,
                                   std::size_t* count) {
  const auto entries = cache.export_entries();
  *count = entries.size();
  std::string out;
  put_u64(&out, entries.size());
  for (const auto& e : entries) {
    put_u64(&out, e.hash);
    put_f64(&out, e.budget);
    put_str(&out, *e.sig);
    put_u64(&out, e.front->size());
    for (const AttrTriple& t : *e.front) {
      put_f64(&out, t.t.cost);
      put_f64(&out, t.t.damage);
      put_f64(&out, t.t.act);
      put_bitset(&out, t.witness);
    }
  }
  return out;
}

struct StagedSubtree {
  std::uint64_t hash = 0;
  double budget = 0.0;
  std::string sig;
  std::vector<AttrTriple> front;
};

std::vector<StagedSubtree> decode_subtree_section(const std::string& payload) {
  Reader r(payload.data(), payload.size());
  const std::uint64_t n = r.u64();
  std::vector<StagedSubtree> staged;
  for (std::uint64_t i = 0; i < n; ++i) {
    StagedSubtree s;
    s.hash = r.u64();
    s.budget = r.f64();
    s.sig = r.str();
    const std::uint64_t points = r.u64();
    // Exact reserve: SubtreeCache::put charges capacity(), so a
    // restored front must not carry push_back growth slack.  Clamped
    // by what the payload could possibly hold (each point is >= 24
    // bytes) so a corrupt count cannot trigger a huge allocation.
    s.front.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(points, payload.size() / 24 + 1)));
    for (std::uint64_t k = 0; k < points; ++k) {
      AttrTriple t;
      t.t.cost = r.f64();
      t.t.damage = r.f64();
      t.t.act = r.f64();
      t.witness = r.bitset();
      s.front.push_back(std::move(t));
    }
    staged.push_back(std::move(s));
  }
  if (!r.done()) corrupt("trailing bytes after last entry");
  return staged;
}

void append_section(std::string* out, std::uint32_t tag,
                    const std::string& payload) {
  put_u32(out, tag);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload.data(), payload.size()));
  out->append(payload);
}

}  // namespace

// ---------------------------------------------------------------------------
// Whole-image encode / decode.
// ---------------------------------------------------------------------------

std::string encode_snapshot(const service::ResultCache& results,
                            const service::SubtreeCache& subtrees,
                            SnapshotInfo* info) {
  SnapshotInfo local;
  std::string out(kMagic, sizeof kMagic);
  put_u32(&out, kFormatVersion);
  put_u32(&out, 2);  // section count
  append_section(&out, kResultTag,
                 encode_result_section(results, &local.result_entries));
  append_section(&out, kSubtreeTag,
                 encode_subtree_section(subtrees, &local.subtree_entries));
  local.bytes = out.size();
  if (info) *info = local;
  return out;
}

LoadStatus decode_snapshot(const std::string& bytes,
                           service::ResultCache* results,
                           service::SubtreeCache* subtrees,
                           SnapshotInfo* info, std::string* error) {
  const auto fail = [&](LoadStatus status, std::string message) {
    if (error) *error = std::move(message);
    return status;
  };
  if (std::memcmp(bytes.data(), kMagic,
                  std::min(bytes.size(), sizeof kMagic)) != 0)
    return fail(LoadStatus::BadMagic, "not a snapshot file (bad magic)");
  if (bytes.size() < sizeof kMagic + 8)
    return fail(LoadStatus::Truncated, "file shorter than the header");
  std::uint32_t version, sections;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&sections, bytes.data() + 12, 4);
  if (version != kFormatVersion)
    return fail(LoadStatus::BadVersion,
                "snapshot format v" + std::to_string(version) +
                    " (this build reads v" + std::to_string(kFormatVersion) +
                    ")");

  // Walk the section table, CRC-checking each payload, and decode every
  // section into staging storage.  Nothing touches the caches until the
  // whole image has decoded.
  std::vector<StagedResult> staged_results;
  std::vector<StagedSubtree> staged_subtrees;
  bool saw_results = false, saw_subtrees = false;
  std::size_t off = 16;
  for (std::uint32_t s = 0; s < sections; ++s) {
    if (bytes.size() - off < 16)
      return fail(LoadStatus::Truncated, "section header cut short");
    std::uint32_t tag, crc;
    std::uint64_t size;
    std::memcpy(&tag, bytes.data() + off, 4);
    std::memcpy(&size, bytes.data() + off + 4, 8);
    std::memcpy(&crc, bytes.data() + off + 12, 4);
    off += 16;
    if (size > bytes.size() - off)
      return fail(LoadStatus::Truncated, "section payload cut short");
    const std::string payload = bytes.substr(off, size);
    off += static_cast<std::size_t>(size);
    if (crc32(payload.data(), payload.size()) != crc)
      return fail(LoadStatus::ChecksumMismatch,
                  "section checksum does not match its bytes");
    try {
      if (tag == kResultTag && !saw_results) {
        staged_results = decode_result_section(payload);
        saw_results = true;
      } else if (tag == kSubtreeTag && !saw_subtrees) {
        staged_subtrees = decode_subtree_section(payload);
        saw_subtrees = true;
      } else {
        return fail(LoadStatus::Corrupt, "unknown or duplicate section tag");
      }
    } catch (const CorruptPayload& c) {
      return fail(LoadStatus::Corrupt, c.what);
    } catch (const std::exception& e) {
      return fail(LoadStatus::Corrupt, e.what());
    }
  }
  if (off != bytes.size())
    return fail(LoadStatus::Corrupt, "trailing bytes after last section");

  // Fully decoded — apply.  Replaying least-recent-first through the
  // normal insert paths rebuilds the LRU order and lets the receiving
  // cache enforce its own budgets (over-budget loads evict in LRU
  // order; nothing here bypasses those checks).
  if (results)
    for (StagedResult& s : staged_results)
      results->insert(s.key, std::move(s.det), std::move(s.prob), s.result);
  if (subtrees)
    for (StagedSubtree& s : staged_subtrees)
      subtrees->restore_entry(s.hash, s.budget, s.sig, std::move(s.front));
  if (info) {
    info->result_entries = staged_results.size();
    info->subtree_entries = staged_subtrees.size();
    info->bytes = bytes.size();
  }
  return LoadStatus::Ok;
}

// ---------------------------------------------------------------------------
// File I/O: atomic save, whole-file load.
// ---------------------------------------------------------------------------

bool save_snapshot(const std::string& path,
                   const service::ResultCache& results,
                   const service::SubtreeCache& subtrees, SnapshotInfo* info,
                   std::string* error) {
  const std::string image = encode_snapshot(results, subtrees, info);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot write " + tmp;
    return false;
  }
  const bool wrote =
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    if (error) *error = "short write to " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error) *error = "cannot rename " + tmp + " over " + path;
    return false;
  }
  return true;
}

LoadStatus load_snapshot(const std::string& path,
                         service::ResultCache* results,
                         service::SubtreeCache* subtrees, SnapshotInfo* info,
                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (error) *error = "cannot read " + path;
    return LoadStatus::IoError;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error) *error = "read failure on " + path;
    return LoadStatus::IoError;
  }
  return decode_snapshot(bytes, results, subtrees, info, error);
}

}  // namespace atcd::persist
