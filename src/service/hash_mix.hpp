#pragma once
/// \file hash_mix.hpp
/// The splitmix64-style mixing step shared by canonical hashing
/// (canon.cpp) and cache key/shard hashing (cache.cpp).  One definition:
/// the cache re-mixes values produced by canonical hashing, so the two
/// sides must never diverge.

#include <bit>
#include <cstdint>

namespace atcd::service {

/// Bit-exact double embedding for hashing/signatures, with -0.0
/// normalized to 0.0 (the two compare equal, so they must digest
/// equally).  Shared by the WL canonical hasher (canon.cpp) and the
/// Merkle subtree hasher (subtree_cache.cpp) so the two never diverge.
inline std::uint64_t double_bits(double d) {
  return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
}

/// Folds \p v into \p h; order-sensitive, so order-insensitive digests
/// are obtained by sorting before folding.
inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

}  // namespace atcd::service
