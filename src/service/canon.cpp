#include "service/canon.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "service/hash_mix.hpp"

namespace atcd::service {
namespace {

using atcd::service::mix64;

/// Decorations are compared bit-exactly; -0.0 is normalized so it hashes
/// like 0.0 (the two compare equal).
std::uint64_t double_bits(double d) {
  return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
}

/// Borrowed view of a decorated model of either kind.
struct View {
  const AttackTree& tree;
  const std::vector<double>& cost;
  const std::vector<double>& damage;
  const std::vector<double>* prob;  // nullptr for deterministic models
};

std::uint64_t initial_color(const View& m, NodeId v) {
  const auto& n = m.tree.node(v);
  std::uint64_t c = mix64(0x5eedull, static_cast<std::uint64_t>(n.type));
  c = mix64(c, double_bits(m.damage[v]));
  if (n.type == NodeType::BAS) {
    c = mix64(c, double_bits(m.cost[n.bas_index]));
    if (m.prob) c = mix64(c, double_bits((*m.prob)[n.bas_index]));
  } else {
    c = mix64(c, n.children.size());
  }
  return c;
}

std::uint64_t fold_sorted(std::uint64_t seed, std::vector<std::uint64_t>& v) {
  std::sort(v.begin(), v.end());
  std::uint64_t h = seed;
  for (std::uint64_t x : v) h = mix64(h, x);
  return h;
}

std::size_t distinct_count(const std::vector<std::uint64_t>& colors) {
  return std::unordered_set<std::uint64_t>(colors.begin(), colors.end()).size();
}

/// WL color refinement over the (bidirectional) DAG.  Folding the old
/// color into the new one makes the partition monotonically finer, so
/// iterating until the distinct-color count stops growing terminates.
std::vector<std::uint64_t> refined_colors(const View& m) {
  const std::size_t n = m.tree.node_count();
  std::vector<std::uint64_t> color(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
    color[v] = initial_color(m, v);

  std::vector<std::uint64_t> next(n), buf;
  std::size_t distinct = distinct_count(color);
  for (std::size_t round = 0; round < n; ++round) {
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      const auto& node = m.tree.node(v);
      std::uint64_t c = mix64(color[v], 0xC01Dull);
      buf.clear();
      for (NodeId ch : node.children) buf.push_back(color[ch]);
      c = mix64(c, fold_sorted(0xC41Dull, buf));
      buf.clear();
      for (NodeId p : node.parents) buf.push_back(color[p]);
      c = mix64(c, fold_sorted(0xFA7Eull, buf));
      next[v] = c;
    }
    color.swap(next);
    const std::size_t d = distinct_count(color);
    if (d == distinct || d == n) break;
    distinct = d;
  }
  return color;
}

bool decorations_equal(const View& a, NodeId u, const View& b, NodeId v) {
  const auto& nu = a.tree.node(u);
  const auto& nv = b.tree.node(v);
  if (nu.type != nv.type) return false;
  if (a.damage[u] != b.damage[v]) return false;
  if (nu.type == NodeType::BAS) {
    if (a.cost[nu.bas_index] != b.cost[nv.bas_index]) return false;
    if (a.prob && (*a.prob)[nu.bas_index] != (*b.prob)[nv.bas_index])
      return false;
  }
  return true;
}

/// Color-guided isomorphism matching: map a's nodes in topological
/// (children-first) order onto same-colored b-nodes whose mapped children
/// multiset matches exactly.  Backtracks over ties with a step budget;
/// when node counts are equal a children-preserving injection is a full
/// isomorphism, so a completed map is verified by construction.  Returns
/// the a-node -> b-node map, empty on failure.
std::vector<NodeId> find_isomorphism(const View& a,
                                     const std::vector<std::uint64_t>& ca,
                                     const View& b,
                                     const std::vector<std::uint64_t>& cb) {
  const std::size_t n = a.tree.node_count();
  std::unordered_map<std::uint64_t, std::vector<NodeId>> by_color;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
    by_color[cb[v]].push_back(v);

  const std::vector<NodeId>& order = a.tree.topological_order();
  std::vector<NodeId> map(n, kNoNode);
  std::vector<bool> used(n, false);
  std::vector<NodeId> mapped_children, b_children;

  auto candidate_ok = [&](NodeId u, NodeId v) {
    if (!decorations_equal(a, u, b, v)) return false;
    const auto& cu = a.tree.children(u);
    const auto& cv = b.tree.children(v);
    if (cu.size() != cv.size()) return false;
    mapped_children.clear();
    for (NodeId ch : cu) mapped_children.push_back(map[ch]);
    b_children = cv;
    std::sort(mapped_children.begin(), mapped_children.end());
    std::sort(b_children.begin(), b_children.end());
    return mapped_children == b_children;
  };

  // Explicit stack of (position in order, next candidate index to try).
  std::vector<std::size_t> cand_pos(n, 0);
  std::size_t pos = 0;
  std::size_t budget = 200000;
  while (pos < n) {
    const NodeId u = order[pos];
    const auto it = by_color.find(ca[u]);
    if (it == by_color.end()) return {};
    const std::vector<NodeId>& cands = it->second;
    bool advanced = false;
    while (cand_pos[pos] < cands.size()) {
      const NodeId v = cands[cand_pos[pos]++];
      if (used[v]) continue;
      if (budget-- == 0) return {};
      if (!candidate_ok(u, v)) continue;
      map[u] = v;
      used[v] = true;
      ++pos;
      advanced = true;
      break;
    }
    if (advanced) continue;
    // Exhausted candidates: backtrack.
    cand_pos[pos] = 0;
    if (pos == 0) return {};
    --pos;
    const NodeId prev = order[pos];
    used[map[prev]] = false;
    map[prev] = kNoNode;
  }
  if (map[a.tree.root()] != b.tree.root()) return {};
  return map;
}

CanonHash hash_view(const View& m) {
  std::vector<std::uint64_t> colors = refined_colors(m);
  std::uint64_t h = mix64(0xA7CDull, m.prob ? 2 : 1);
  h = mix64(h, m.tree.node_count());
  h = mix64(h, m.tree.bas_count());
  h = mix64(h, m.tree.edge_count());
  h = mix64(h, colors[m.tree.root()]);
  return mix64(h, fold_sorted(0x0DDBall, colors));
}

std::vector<NodeId> iso_view(const View& a, const View& b) {
  if ((a.prob == nullptr) != (b.prob == nullptr)) return {};
  if (a.tree.node_count() != b.tree.node_count()) return {};
  if (a.tree.bas_count() != b.tree.bas_count()) return {};
  if (a.tree.edge_count() != b.tree.edge_count()) return {};
  std::vector<std::uint64_t> ca = refined_colors(a);
  std::vector<std::uint64_t> cb = refined_colors(b);
  std::vector<std::uint64_t> sa = ca, sb = cb;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  if (sa != sb) return {};
  return find_isomorphism(a, ca, b, cb);
}

bool equal_view(const View& a, const View& b) {
  return !iso_view(a, b).empty();
}

}  // namespace

CanonHash canonical_hash(const AttackTree& t, const std::vector<double>& cost,
                         const std::vector<double>& damage,
                         const std::vector<double>* prob) {
  return hash_view(View{t, cost, damage, prob});
}

CanonHash canonical_hash(const CdAt& m) {
  return hash_view(View{m.tree, m.cost, m.damage, nullptr});
}

CanonHash canonical_hash(const CdpAt& m) {
  return hash_view(View{m.tree, m.cost, m.damage, &m.prob});
}

bool equal_canonical(const AttackTree& ta, const std::vector<double>& cost_a,
                     const std::vector<double>& damage_a,
                     const std::vector<double>* prob_a, const AttackTree& tb,
                     const std::vector<double>& cost_b,
                     const std::vector<double>& damage_b,
                     const std::vector<double>* prob_b) {
  return equal_view(View{ta, cost_a, damage_a, prob_a},
                    View{tb, cost_b, damage_b, prob_b});
}

bool equal_canonical(const CdAt& a, const CdAt& b) {
  return equal_view(View{a.tree, a.cost, a.damage, nullptr},
                    View{b.tree, b.cost, b.damage, nullptr});
}

bool equal_canonical(const CdpAt& a, const CdpAt& b) {
  return equal_view(View{a.tree, a.cost, a.damage, &a.prob},
                    View{b.tree, b.cost, b.damage, &b.prob});
}

std::vector<NodeId> canonical_isomorphism(const CdAt& a, const CdAt& b) {
  return iso_view(View{a.tree, a.cost, a.damage, nullptr},
                  View{b.tree, b.cost, b.damage, nullptr});
}

std::vector<NodeId> canonical_isomorphism(const CdpAt& a, const CdpAt& b) {
  return iso_view(View{a.tree, a.cost, a.damage, &a.prob},
                  View{b.tree, b.cost, b.damage, &b.prob});
}

}  // namespace atcd::service
