#pragma once
/// \file protocol.hpp
/// Line-oriented request/response protocol over the solve service.
///
/// Requests (one command per line; '#' starts a comment outside model
/// blocks too):
///
///   solve <problem> [bound=<num>] [engine=<name>]
///   <model lines in the at/parser.hpp format>
///   end
///
///   open <problem> [bound=<num>] [engine=<name>]   # incremental session
///   <model lines>
///   end
///   edit <sid> set-cost <bas> <num>
///   edit <sid> set-prob <bas> <num>
///   edit <sid> set-damage <node> <num>
///   edit <sid> toggle-defense <bas>
///   edit <sid> replace-subtree <node>
///   <model lines for the replacement subtree>
///   end
///   resolve <sid>    # re-solve, reusing memoized unchanged subtrees
///   close <sid>
///
///   analyze sweep <problem> axis=<spec> [axis=<spec>]
///           [bound=<num>] [engine=<name>]
///   <model lines>
///   end
///   analyze sensitivity <problem> [step=<num>] [engine=<name>]
///   <model lines>
///   end
///   analyze portfolio <problem> defense=<spec> [defense=<spec> ...]
///           [budget=<num>] [bound=<num>] [engine=<name>]
///   <model lines>
///   end
///
///   stats [--json]   # result-cache + subtree-cache counters; --json
///                    # emits them as one machine-readable json= line
///   quit             # end the session
///
/// <problem> is one of cdpf, dgc, cgd, cedpf, edgc, cged.  The model
/// block between the `solve`/`open`/`analyze` line (or a
/// `replace-subtree` edit) and the `end` line is the textual model
/// format of at/parser.hpp verbatim.  `open` answers `session=<sid>`;
/// edits answer plain ok=true/ok=false blocks; `resolve` answers like
/// `solve`.
///
/// `analyze` runs the scenario analyses of src/analysis/ over the model
/// block: `sweep` grids 1-2 axes (axis spec
/// <attr>:<node>:<lo>:<hi>:<steps> with <attr> in cost|prob|damage, or
/// defense:<bas>) through an incremental session; `sensitivity`
/// (cdpf/cedpf only) ranks every leaf parameter by its front impact;
/// `portfolio` (dgc/edgc only) optimizes the defense subset (spec
/// <name>:<cost>:<bas>[+<bas>...]) under the defender budget= — bound=
/// is the attacker budget, unbounded when omitted.  Responses carry the
/// analysis table verbatim, one row.<i>= line per table line.
///
/// Responses are stable key=value lines terminated by a single `done`
/// line.  Successful solves:
///
///   ok=true
///   engine=<backend>  cache=hit|miss|coalesced  hash=<16 hex digits>
///   micros=<float>
///   kind=front  points=<n>  point.<i>=<cost> <damage> {<bas, ...>}
///     — or —
///   kind=attack  feasible=true|false  cost=... damage=... attack={...}
///   done
///
/// Failures: ok=false, error=<single-line message>, done.

#include <iosfwd>
#include <optional>
#include <string>

#include "service/service.hpp"
#include "service/session.hpp"

namespace atcd::service {

/// Parses a protocol problem name (as printed by engine::to_string).
std::optional<engine::Problem> parse_problem(const std::string& name);

/// Renders one response as the key=value block described above.
std::string format_response(const Response& response);

/// Renders the stats response block: result-cache counters,
/// subtree-cache counters (subtree_ prefix), and the number of open
/// sessions.
std::string format_stats(const ResultCache::Stats& stats,
                         const SubtreeCache::Stats& subtree,
                         std::size_t sessions);

/// Renders the same counters as a single `json=` line (stable key
/// order), so bench harnesses and dashboards parse them without
/// scraping the key=value block.
std::string format_stats_json(const ResultCache::Stats& stats,
                              const SubtreeCache::Stats& subtree,
                              std::size_t sessions);

/// Serves requests from \p in to \p out until EOF or `quit`.  Protocol
/// errors (unknown command, bad solve header, unterminated model block)
/// produce ok=false responses; the session keeps going.  A `solve`,
/// `open`, or `analyze` line (and a `replace-subtree` edit) is always
/// followed by a model block, which is consumed even when the header is
/// invalid — one response block per request, so clients never desync.
/// Returns the number of solve/resolve/analyze requests handled.
///
/// \p sessions holds this connection's incremental sessions; pass a
/// shared manager to share sessions across connections, or null to give
/// the connection a private manager (sessions die with it).
std::size_t serve(std::istream& in, std::ostream& out, SolveService& service,
                  SessionManager* sessions = nullptr);

}  // namespace atcd::service
