#pragma once
/// \file protocol.hpp
/// Line-oriented request/response protocol over the solve service —
/// legacy but fully supported.
///
/// Since the api/ refactor this file is a *thin adapter*: every command
/// line transcodes into a typed api::Request (api/line.hpp) and runs
/// through the same api::Dispatcher as the v1 JSON envelope
/// (api/json.hpp, api/server.hpp), so the two transports cannot drift.
/// The wire syntax below is unchanged.
///
/// Requests (one command per line; '#' starts a comment outside model
/// blocks too):
///
///   solve <problem> [bound=<num>] [engine=<name>]
///   <model lines in the at/parser.hpp format>
///   end
///
///   open <problem> [bound=<num>] [engine=<name>]   # incremental session
///   <model lines>
///   end
///   edit <sid> set-cost <bas> <num>
///   edit <sid> set-prob <bas> <num>
///   edit <sid> set-damage <node> <num>
///   edit <sid> toggle-defense <bas>
///   edit <sid> replace-subtree <node>
///   <model lines for the replacement subtree>
///   end
///   resolve <sid>    # re-solve, reusing memoized unchanged subtrees
///   close <sid>
///
///   analyze sweep <problem> axis=<spec> [axis=<spec>]
///           [bound=<num>] [engine=<name>]
///   <model lines>
///   end
///   analyze sensitivity <problem> [step=<num>] [engine=<name>]
///   <model lines>
///   end
///   analyze portfolio <problem> defense=<spec> [defense=<spec> ...]
///           [budget=<num>] [bound=<num>] [engine=<name>]
///   <model lines>
///   end
///
///   stats [--json]   # unified counters (caches, sessions, api_* op
///                    # counts); --json emits one machine-readable
///                    # json= line
///   quit             # end the session
///
/// <problem> is one of cdpf, dgc, cgd, cedpf, edgc, cged.  Responses
/// are stable key=value lines terminated by a single `done` line;
/// failures are `ok=false` / `error=<one line>` / `done` blocks (the
/// typed api::ErrorCode taxonomy is a JSON-envelope feature — the line
/// protocol keeps its historical shape).  The session always ends with
/// a structured shutdown block
///
///   ok=true
///   kind=shutdown
///   handled=<n>
///   done
///
/// whether it ended by `quit` or by EOF.

#include <iosfwd>
#include <optional>
#include <string>

#include "api/dispatcher.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace atcd::service {

/// Parses a protocol problem name (as printed by engine::to_string).
std::optional<engine::Problem> parse_problem(const std::string& name);

/// Serves line-protocol requests from \p in to \p out until EOF or
/// `quit`, dispatching every command through \p dispatcher.  Protocol
/// errors (unknown command, bad solve header, unterminated model block)
/// produce ok=false responses; the session keeps going.  A `solve`,
/// `open`, or `analyze` line (and a `replace-subtree` edit) is always
/// followed by a model block, which is consumed even when the header is
/// invalid — one response block per request, so clients never desync.
/// Returns the number of solve/resolve/analyze requests handled.
std::size_t serve(std::istream& in, std::ostream& out,
                  api::Dispatcher& dispatcher);

/// Legacy form: wraps \p service (and \p sessions, or a private manager
/// when null) in a borrowing dispatcher for this call.  Existing call
/// sites keep working; new code should hold a Dispatcher so the api_*
/// counters survive across connections.
std::size_t serve(std::istream& in, std::ostream& out, SolveService& service,
                  SessionManager* sessions = nullptr);

}  // namespace atcd::service
