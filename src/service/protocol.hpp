#pragma once
/// \file protocol.hpp
/// Line-oriented request/response protocol over the solve service.
///
/// Requests (one command per line; '#' starts a comment outside model
/// blocks too):
///
///   solve <problem> [bound=<num>] [engine=<name>]
///   <model lines in the at/parser.hpp format>
///   end
///
///   stats        # dump cache counters
///   quit         # end the session
///
/// <problem> is one of cdpf, dgc, cgd, cedpf, edgc, cged.  The model
/// block between the `solve` line and the `end` line is the textual
/// model format of at/parser.hpp verbatim.
///
/// Responses are stable key=value lines terminated by a single `done`
/// line.  Successful solves:
///
///   ok=true
///   engine=<backend>  cache=hit|miss|coalesced  hash=<16 hex digits>
///   micros=<float>
///   kind=front  points=<n>  point.<i>=<cost> <damage> {<bas, ...>}
///     — or —
///   kind=attack  feasible=true|false  cost=... damage=... attack={...}
///   done
///
/// Failures: ok=false, error=<single-line message>, done.

#include <iosfwd>
#include <optional>
#include <string>

#include "service/service.hpp"

namespace atcd::service {

/// Parses a protocol problem name (as printed by engine::to_string).
std::optional<engine::Problem> parse_problem(const std::string& name);

/// Renders one response as the key=value block described above.
std::string format_response(const Response& response);

/// Renders cache counters as a stats response block.
std::string format_stats(const ResultCache::Stats& stats);

/// Serves requests from \p in to \p out until EOF or `quit`.  Protocol
/// errors (unknown command, bad solve header, unterminated model block)
/// produce ok=false responses; the session keeps going.  A `solve` line
/// is always followed by a model block, which is consumed even when the
/// header is invalid — one response block per request, so clients never
/// desync.  Returns the number of solve requests handled.
std::size_t serve(std::istream& in, std::ostream& out,
                  SolveService& service);

}  // namespace atcd::service
