#include "service/subtree_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/trace.hpp"
#include "service/canon.hpp"
#include "service/hash_mix.hpp"

namespace atcd::service {
namespace {


void append_hex(std::string& out, std::uint64_t v) {
  // Manual hex: signature materialization appends hundreds of these per
  // subtree, and snprintf is an order of magnitude slower.
  constexpr char digits[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 15];
    v >>= 4;
  }
  out.append(buf, 16);
}

std::size_t front_bytes(const std::vector<AttrTriple>& front) {
  std::size_t b = front.capacity() * sizeof(AttrTriple);
  for (const auto& t : front)
    b += (t.witness.size() + 63) / 64 * 8;
  return b;
}

// Merkle subtree hashing, shared by the binding and the standalone
// fingerprint: a BAS hashes its decorations, a gate folds its damage,
// arity, and child hashes in sorted order (so child permutations and
// renames don't matter).
std::uint64_t bas_hash(double cost, double damage, double prob) {
  std::uint64_t h = mix64(0xBA5E5ull, double_bits(cost));
  h = mix64(h, double_bits(damage));
  return mix64(h, double_bits(prob));
}

std::uint64_t gate_hash_seed(NodeType type, double damage,
                             std::size_t arity) {
  std::uint64_t h =
      mix64(type == NodeType::AND ? 0xA17Dull : 0x0Bull, double_bits(damage));
  return mix64(h, arity);
}

}  // namespace

std::uint64_t treelike_fingerprint(const AttackTree& tree,
                                   const std::vector<double>& cost,
                                   const std::vector<double>& damage,
                                   const std::vector<double>* prob) {
  if (!tree.finalized() || !tree.is_treelike()) return 0;
  std::vector<std::uint64_t> h(tree.node_count());
  std::vector<std::uint64_t> buf;
  for (NodeId v : tree.topological_order()) {
    const auto& node = tree.node(v);
    if (node.type == NodeType::BAS) {
      h[v] = bas_hash(cost[node.bas_index], damage[v],
                      prob ? (*prob)[node.bas_index] : 1.0);
      continue;
    }
    buf.clear();
    for (NodeId c : node.children) buf.push_back(h[c]);
    std::sort(buf.begin(), buf.end());
    std::uint64_t g = gate_hash_seed(node.type, damage[v],
                                     node.children.size());
    for (std::uint64_t ch : buf) g = mix64(g, ch);
    h[v] = g;
  }
  return h[tree.root()];
}

std::uint64_t treelike_fingerprint_update(
    const AttackTree& tree, const std::vector<double>& cost,
    const std::vector<double>& damage, const std::vector<double>* prob,
    std::vector<std::uint64_t>* node_hash, std::vector<char>* node_valid) {
  if (!tree.finalized() || !tree.is_treelike()) return 0;
  const std::size_t n = tree.node_count();
  if (node_hash->size() != n || node_valid->size() != n) {
    node_hash->assign(n, 0);
    node_valid->assign(n, 0);
  }
  std::vector<std::uint64_t>& h = *node_hash;
  std::vector<std::uint64_t> buf;
  for (NodeId v : tree.topological_order()) {
    if ((*node_valid)[v]) continue;
    const auto& node = tree.node(v);
    if (node.type == NodeType::BAS) {
      h[v] = bas_hash(cost[node.bas_index], damage[v],
                      prob ? (*prob)[node.bas_index] : 1.0);
    } else {
      buf.clear();
      for (NodeId c : node.children) buf.push_back(h[c]);
      std::sort(buf.begin(), buf.end());
      std::uint64_t g =
          gate_hash_seed(node.type, damage[v], node.children.size());
      for (std::uint64_t ch : buf) g = mix64(g, ch);
      h[v] = g;
    }
    (*node_valid)[v] = 1;
  }
  return h[tree.root()];
}

std::uint64_t model_fingerprint(const CdAt& m) {
  return m.tree.is_treelike()
             ? treelike_fingerprint(m.tree, m.cost, m.damage, nullptr)
             : canonical_hash(m);
}

std::uint64_t model_fingerprint(const CdpAt& m) {
  return m.tree.is_treelike()
             ? treelike_fingerprint(m.tree, m.cost, m.damage, &m.prob)
             : canonical_hash(m);
}

// ---------------------------------------------------------------------------
// Binding: the per-solve visitor translating between the host model's
// BAS space and the canonical subtree-local leaf space.
// ---------------------------------------------------------------------------

class SubtreeBinding final : public atcd::detail::SubtreeVisitor {
 public:
  SubtreeBinding(SubtreeCache& cache, const AttackTree& tree,
                 const std::vector<double>& cost,
                 const std::vector<double>& damage,
                 const std::vector<double>* prob, double budget)
      : cache_(cache),
        tree_(tree),
        cost_(cost),
        damage_(damage),
        prob_(prob),
        budget_(double_bits(budget) == double_bits(0.0) ? 0.0 : budget) {
    const std::size_t n = tree.node_count();
    hash_.resize(n);
    count_.resize(n);
    offset_.resize(n);
    order_.resize(n);
    sig_.resize(n);
    // Children-first order, so child hashes exist when a gate's is
    // built.  The canonical child order sorts by (subtree hash,
    // original position) — the index tiebreak keeps the order
    // deterministic across bindings of the same model, and
    // equal-content children are isomorphic, so any consistent
    // assignment maps decoration-identical leaves onto each other.  (A
    // hash collision between *different* siblings could order two
    // submissions differently, but then their full signatures differ
    // too, so the deep check below turns the reuse into a miss.)
    for (NodeId v : tree.topological_order()) {
      const auto& node = tree.node(v);
      if (node.type == NodeType::BAS) {
        // The deterministic sweep runs with implicit p = 1 (the paper's
        // embedding); spell it out so CdAt and all-ones CdpAt subtrees
        // share entries.
        hash_[v] = bas_hash(cost[node.bas_index], damage[v],
                            prob ? (*prob)[node.bas_index] : 1.0);
        count_[v] = 1;
      } else {
        order_[v] = node.children;
        std::sort(order_[v].begin(), order_[v].end(),
                  [&](NodeId a, NodeId b) {
                    return hash_[a] != hash_[b] ? hash_[a] < hash_[b] : a < b;
                  });
        std::uint64_t h =
            gate_hash_seed(node.type, damage[v], node.children.size());
        std::size_t cnt = 0;
        for (NodeId c : order_[v]) {
          h = mix64(h, hash_[c]);
          cnt += count_[c];
        }
        hash_[v] = h;
        count_[v] = cnt;
      }
    }
    // One canonical-order DFS lays every node's leaf list out
    // contiguously in canon_leaves_ (a gate's children are visited
    // back-to-back, so its range is the concatenation of theirs) —
    // per-node leaf *vectors* would be O(n * depth), quadratic on
    // chain-shaped models, paid on every solve the cache is attached to.
    canon_leaves_.reserve(tree.bas_count());
    std::vector<std::pair<NodeId, std::size_t>> dfs{{tree.root(), 0}};
    while (!dfs.empty()) {
      const NodeId v = dfs.back().first;
      const std::size_t child = dfs.back().second;
      if (child == 0) offset_[v] = canon_leaves_.size();
      if (tree.node(v).type == NodeType::BAS) {
        canon_leaves_.push_back(tree.node(v).bas_index);
        dfs.pop_back();
        continue;
      }
      if (child == order_[v].size()) {
        dfs.pop_back();
        continue;
      }
      ++dfs.back().second;
      dfs.push_back({order_[v][child], 0});
    }
  }

  bool lookup(NodeId v, std::vector<AttrTriple>* out) override {
    if (count_[v] < cache_.config_.min_leaves) return false;
    const auto front =
        cache_.find(key_of(v), [&]() -> const std::string& { return sig(v); });
    if (!front) return false;
    // Local -> host: local leaf position i is the host BAS leaf(v, i).
    out->clear();
    out->reserve(front->size());
    for (const AttrTriple& t : *front) {
      AttrTriple g;
      g.t = t.t;
      g.witness = Attack(tree_.bas_count());
      for (std::size_t i : t.witness.ones()) g.witness.set(leaf(v, i));
      out->push_back(std::move(g));
    }
    return true;
  }

  void store(NodeId v, const std::vector<AttrTriple>& front) override {
    const std::size_t n_local = count_[v];
    if (n_local < cache_.config_.min_leaves) return;
    // Host -> local inverse map over this subtree's leaves only; a
    // witness bit outside the subtree would be a sweep invariant
    // violation — bail rather than cache a wrong front.
    constexpr std::uint32_t kAbsent = ~std::uint32_t{0};
    std::vector<std::uint32_t> local_of(tree_.bas_count(), kAbsent);
    for (std::size_t i = 0; i < n_local; ++i) local_of[leaf(v, i)] = i;
    std::vector<AttrTriple> local;
    local.reserve(front.size());
    for (const AttrTriple& t : front) {
      AttrTriple l;
      l.t = t.t;
      l.witness = Attack(n_local);
      for (std::size_t i : t.witness.ones()) {
        if (local_of[i] == kAbsent) return;
        l.witness.set(local_of[i]);
      }
      local.push_back(std::move(l));
    }
    cache_.put(key_of(v), sig(v), std::move(local));
  }

  std::uint64_t root_hash() const { return hash_[tree_.root()]; }

 private:
  SubtreeCache::Key key_of(NodeId v) const {
    return SubtreeCache::Key{hash_[v], budget_};
  }

  /// Host BAS index of subtree v's i-th canonical leaf.
  std::uint32_t leaf(NodeId v, std::size_t i) const {
    return canon_leaves_[offset_[v] + i];
  }

  /// The full canonical signature — the collision deep check.  Built
  /// lazily: the hot path (a warm re-solve) only ever materializes the
  /// signatures of the few nodes whose keys are actually present or
  /// stored, not all O(n) of them.
  const std::string& sig(NodeId v) {
    std::string& s = sig_[v];
    if (s.empty()) append_sig(v, s);
    return s;
  }

  void append_sig(NodeId v, std::string& out) const {
    if (!sig_[v].empty()) {  // already materialized: splice it in
      out += sig_[v];
      return;
    }
    const auto& node = tree_.node(v);
    if (node.type == NodeType::BAS) {
      out += 'B';
      append_hex(out, double_bits(cost_[node.bas_index]));
      out += ',';
      append_hex(out, double_bits(damage_[v]));
      out += ',';
      append_hex(out, double_bits(prob_ ? (*prob_)[node.bas_index] : 1.0));
      return;
    }
    out += node.type == NodeType::AND ? 'A' : 'O';
    append_hex(out, double_bits(damage_[v]));
    out += '(';
    for (NodeId c : order_[v]) {
      append_sig(c, out);
      out += ';';
    }
    out += ')';
  }

  SubtreeCache& cache_;
  const AttackTree& tree_;
  const std::vector<double>& cost_;
  const std::vector<double>& damage_;
  const std::vector<double>* prob_;
  double budget_;
  std::vector<std::uint64_t> hash_;   ///< Merkle subtree hash
  std::vector<std::size_t> count_;    ///< subtree leaf count
  std::vector<std::size_t> offset_;   ///< start of v's leaves in canon_leaves_
  std::vector<std::uint32_t> canon_leaves_;  ///< flat canonical leaf order
  std::vector<std::vector<NodeId>> order_;   ///< children, canonical order
  std::vector<std::string> sig_;             ///< lazy; "" = not materialized
};

// ---------------------------------------------------------------------------
// SubtreeCache.
// ---------------------------------------------------------------------------

std::size_t SubtreeCache::KeyHasher::operator()(const Key& k) const {
  return static_cast<std::size_t>(mix64(k.hash, double_bits(k.budget)));
}

SubtreeCache::SubtreeCache() : SubtreeCache(Config{}) {}

SubtreeCache::SubtreeCache(Config config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  entry_budget_per_shard_ =
      std::max<std::size_t>(1, (config_.max_entries + config_.shards - 1) /
                                   config_.shards);
  byte_budget_per_shard_ =
      std::max<std::size_t>(1, (config_.max_bytes + config_.shards - 1) /
                                   config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  obs::Registry* reg = config_.metrics;
  if (!reg) {
    owned_metrics_ = std::make_unique<obs::Registry>();
    reg = owned_metrics_.get();
  }
  hits_ = &reg->counter("atcd_subtree_cache_hits_total");
  misses_ = &reg->counter("atcd_subtree_cache_misses_total");
  insertions_ = &reg->counter("atcd_subtree_cache_insertions_total");
  evictions_ = &reg->counter("atcd_subtree_cache_evictions_total");
  collisions_ = &reg->counter("atcd_subtree_cache_collisions_total");
}

std::unique_ptr<atcd::detail::SubtreeVisitor> SubtreeCache::bind(
    const CdAt& m, double budget) {
  return bind(m.tree, m.cost, m.damage, nullptr, budget);
}

std::unique_ptr<atcd::detail::SubtreeVisitor> SubtreeCache::bind(
    const CdpAt& m, double budget) {
  return bind(m.tree, m.cost, m.damage, &m.prob, budget);
}

std::unique_ptr<atcd::detail::SubtreeVisitor> SubtreeCache::bind(
    const AttackTree& tree, const std::vector<double>& cost,
    const std::vector<double>& damage, const std::vector<double>* prob,
    double budget) {
  if (!tree.finalized() || !tree.is_treelike()) return nullptr;
  return std::make_unique<SubtreeBinding>(*this, tree, cost, damage, prob,
                                          budget);
}

SubtreeCache::Shard& SubtreeCache::shard_of(const Key& key) {
  return *shards_[static_cast<std::size_t>(
                      mix64(0x54B7Eull, KeyHasher{}(key))) %
                  shards_.size()];
}

std::shared_ptr<const std::vector<AttrTriple>> SubtreeCache::find(
    const Key& key, const std::function<const std::string&()>& sig_of) {
  Shard& shard = shard_of(key);
  std::shared_ptr<const std::string> e_sig;
  std::shared_ptr<const std::vector<AttrTriple>> e_front;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_->add(1);
      obs::trace_fact("subtree_cache_misses", 1);
      return nullptr;
    }
    e_sig = it->second->sig;
    e_front = it->second->front;
    // Refreshing recency before the deep check means an (astronomically
    // rare) colliding probe also touches the entry — harmless.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
  // The signature deep check runs outside the lock (the entry fields are
  // shared immutable); sig_of materializes the probe's signature only
  // now that there is an entry to check it against.
  if (*e_sig != sig_of()) {
    collisions_->add(1);
    misses_->add(1);
    obs::trace_fact("subtree_cache_misses", 1);
    return nullptr;
  }
  hits_->add(1);
  obs::trace_fact("subtree_cache_hits", 1);
  return e_front;
}

void SubtreeCache::put(const Key& key, const std::string& sig,
                       std::vector<AttrTriple> front) {
  const std::size_t bytes =
      sizeof(Entry) + sig.size() + front_bytes(front);
  if (bytes > byte_budget_per_shard_) return;  // would evict a whole shard
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    if (*it->second->sig != sig) {
      // True hash collision: keep the incumbent so the two subtrees
      // don't keep evicting each other's entry.
      collisions_->add(1);
      return;
    }
    // Same subtree recomputed (e.g. concurrent bindings): the fronts are
    // equivalent, just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{
      key, std::make_shared<const std::string>(sig),
      std::make_shared<const std::vector<AttrTriple>>(std::move(front)),
      bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  insertions_->add(1);
  evict_to_budget(shard);
}

void SubtreeCache::evict_to_budget(Shard& shard) {
  while (!shard.lru.empty() && (shard.lru.size() > entry_budget_per_shard_ ||
                                shard.bytes > byte_budget_per_shard_)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->add(1);
  }
}

std::vector<SubtreeCache::ExportedEntry> SubtreeCache::export_entries()
    const {
  std::vector<ExportedEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it)
      out.push_back({it->key.hash, it->key.budget, it->sig, it->front});
  }
  return out;
}

void SubtreeCache::restore_entry(std::uint64_t hash, double budget,
                                 const std::string& sig,
                                 std::vector<AttrTriple> front) {
  // Same budget normalization as SubtreeBinding: -0.0 keys as 0.0.
  Key key{hash, double_bits(budget) == double_bits(0.0) ? 0.0 : budget};
  put(key, sig, std::move(front));
}

SubtreeCache::Stats SubtreeCache::stats() const {
  Stats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.insertions = insertions_->value();
  s.evictions = evictions_->value();
  s.collisions = collisions_->value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  return s;
}

void SubtreeCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

// ---------------------------------------------------------------------------
// ChainedSubtreeMemo.
// ---------------------------------------------------------------------------

namespace {

class ChainVisitor final : public atcd::detail::SubtreeVisitor {
 public:
  ChainVisitor(std::unique_ptr<atcd::detail::SubtreeVisitor> a,
               std::unique_ptr<atcd::detail::SubtreeVisitor> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  bool lookup(NodeId v, std::vector<AttrTriple>* out) override {
    if (a_->lookup(v, out)) return true;
    if (b_->lookup(v, out)) {
      a_->store(v, *out);  // promote so later resolves hit the fast layer
      return true;
    }
    return false;
  }

  void store(NodeId v, const std::vector<AttrTriple>& front) override {
    a_->store(v, front);
    b_->store(v, front);
  }

  // Fast paths forward so a zero-copy-capable primary (the session memo)
  // keeps its advantage under a chained shared cache.  Behavior matches
  // the lookup()/store() pair exactly, promotion included.

  const std::vector<AttrTriple>* lookup_ref(
      NodeId v, std::vector<AttrTriple>* scratch) override {
    if (const auto* hit = a_->lookup_ref(v, scratch)) return hit;
    if (b_->lookup(v, scratch)) {
      a_->store(v, *scratch);
      return scratch;
    }
    return nullptr;
  }

  void store_soa(NodeId v, const TripleView& f, std::size_t nbits,
                 std::vector<AttrTriple>* scratch) override {
    a_->store_soa(v, f, nbits, scratch);
    view_to_aos_into(f, nbits, scratch);
    b_->store(v, *scratch);
  }

 private:
  std::unique_ptr<atcd::detail::SubtreeVisitor> a_;
  std::unique_ptr<atcd::detail::SubtreeVisitor> b_;
};

}  // namespace

std::unique_ptr<atcd::detail::SubtreeVisitor> ChainedSubtreeMemo::chain(
    std::unique_ptr<atcd::detail::SubtreeVisitor> a,
    std::unique_ptr<atcd::detail::SubtreeVisitor> b) {
  if (!a) return b;
  if (!b) return a;
  return std::make_unique<ChainVisitor>(std::move(a), std::move(b));
}

std::unique_ptr<atcd::detail::SubtreeVisitor> ChainedSubtreeMemo::bind(
    const CdAt& m, double budget) {
  return chain(primary_ ? primary_->bind(m, budget) : nullptr,
               fallback_ ? fallback_->bind(m, budget) : nullptr);
}

std::unique_ptr<atcd::detail::SubtreeVisitor> ChainedSubtreeMemo::bind(
    const CdpAt& m, double budget) {
  return chain(primary_ ? primary_->bind(m, budget) : nullptr,
               fallback_ ? fallback_->bind(m, budget) : nullptr);
}

}  // namespace atcd::service
