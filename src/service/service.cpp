#include "service/service.hpp"

#include "obs/trace.hpp"
#include "service/timing.hpp"

namespace atcd::service {

Request Request::of(engine::Problem p, const CdAt& m, double bound,
                    std::string engine) {
  Request r;
  r.problem = p;
  r.bound = bound;
  r.engine_name = std::move(engine);
  r.det = std::make_shared<CdAt>(m);
  return r;
}

Request Request::of(engine::Problem p, const CdpAt& m, double bound,
                    std::string engine) {
  Request r;
  r.problem = p;
  r.bound = bound;
  r.engine_name = std::move(engine);
  r.prob = std::make_shared<CdpAt>(m);
  return r;
}

Request Request::of_text(engine::Problem p, std::string text, double bound,
                         std::string engine) {
  Request r;
  r.problem = p;
  r.bound = bound;
  r.engine_name = std::move(engine);
  r.model_text = std::move(text);
  return r;
}

SolveService::SolveService() : SolveService(Options{}) {}

namespace {

/// Pre-construction Options normalization: materialize the fallback
/// registry and point both cache configs at the stack's registry, so the
/// cache members (constructed next in the init list) resolve their
/// counters there.
SolveService::Options with_metrics(SolveService::Options o,
                                   std::unique_ptr<obs::Registry>* owned) {
  if (!o.metrics) {
    *owned = std::make_unique<obs::Registry>();
    o.metrics = owned->get();
  }
  o.cache.metrics = o.metrics;
  o.subtree.metrics = o.metrics;
  return o;
}

}  // namespace

SolveService::SolveService(Options options)
    : options_(with_metrics(std::move(options), &owned_metrics_)),
      handle_micros_(&options_.metrics->histogram("atcd_service_handle_micros")),
      cache_(options_.cache),
      subtree_cache_(options_.subtree) {}

Response SolveService::finish(Response resp,
                              const detail::Clock::time_point& t0) {
  resp.micros = detail::micros_since(t0);
  handle_micros_->record(static_cast<std::uint64_t>(resp.micros));
  return resp;
}

engine::SolveResult SolveService::solve(const Request& request) {
  obs::SpanScope span("service.solve");
  engine::Instance in;
  in.problem = request.problem;
  in.det = request.det.get();
  in.prob = request.prob.get();
  in.bound = request.bound;
  in.backend = request.engine_name;
  engine::BatchOptions opt = options_.batch;
  opt.cache = nullptr;  // the service layers its own cache + coalescing
  opt.subtree = shared_subtree_cache();
  return engine::solve_one(in, opt);
}

Response SolveService::handle(const Request& request) {
  const auto t0 = detail::Clock::now();
  Response resp;
  resp.problem = request.problem;

  // 1. Materialize the model: passed-in parsed model, or parse the text.
  Request req = request;
  if (!req.det && !req.prob) {
    obs::SpanScope span("service.parse");
    try {
      ParsedModel parsed = parse_model(req.model_text);
      if (engine::is_probabilistic(req.problem)) {
        auto m = std::make_shared<CdpAt>();
        m->tree = std::move(parsed.tree);
        m->cost = std::move(parsed.cost);
        m->damage = std::move(parsed.damage);
        m->prob = std::move(parsed.prob);
        m->validate();
        req.prob = std::move(m);
      } else {
        auto m = std::make_shared<CdAt>();
        m->tree = std::move(parsed.tree);
        m->cost = std::move(parsed.cost);
        m->damage = std::move(parsed.damage);
        m->validate();
        req.det = std::move(m);
      }
    } catch (const std::exception& e) {
      resp.result.error = e.what();
      return finish(std::move(resp), t0);
    }
  }
  resp.det = req.det;
  resp.prob = req.prob;

  // 2. Validate the model/problem pairing before touching the cache.
  engine::Instance probe;
  probe.problem = req.problem;
  probe.det = req.det.get();
  probe.prob = req.prob.get();
  probe.bound = req.bound;
  probe.backend = req.engine_name;
  if (std::string err = engine::instance_error(probe); !err.empty()) {
    resp.result.error = std::move(err);
    return finish(std::move(resp), t0);
  }

  // 3. One canonical hash per request; key the cache and coalescing map.
  // make_key() declines (nullopt) for uncacheable instances, e.g. a
  // non-finite bound; those solve directly.
  const auto key = make_key(probe);
  resp.model_hash = key ? key->model
                        : (req.det ? model_fingerprint(*req.det)
                                   : model_fingerprint(*req.prob));

  if (!options_.enable_cache || !key) {
    resp.result = solve(req);
    return finish(std::move(resp), t0);
  }

  {
    obs::SpanScope span("service.cache");
    if (auto cached = cache_.lookup(*key, req.det.get(), req.prob.get())) {
      resp.result = std::move(*cached);
      resp.cache_hit = true;
      return finish(std::move(resp), t0);
    }
  }

  // 4. Coalesce: either join an identical in-flight solve, or lead one.
  // The global lock guards only the map itself; all expensive work
  // (isomorphism deep checks, the cache re-check, solving) runs outside.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  bool registered = false;  // we own the in-flight map entry for *key
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(*key);
    if (it != inflight_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<InFlight>();
      flight->det = req.det;
      flight->prob = req.prob;
      leader = true;
      registered = inflight_.emplace(*key, flight).second;
    }
  }

  // A leader for this key may have completed (cache insert happens
  // before the map erase) between our first miss and registering, so
  // re-check the cache — now outside the lock, with ourselves already
  // registered so concurrent identical requests coalesce onto us either
  // way.  The first lookup already counted this request's miss.
  if (leader) {
    if (auto cached = cache_.lookup(*key, req.det.get(), req.prob.get(),
                                    /*count_stats=*/false)) {
      resp.result = std::move(*cached);
      resp.cache_hit = true;
      if (registered) {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(*key);
      }
      {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->result = resp.result;
        flight->done = true;
      }
      flight->cv.notify_all();
      return finish(std::move(resp), t0);
    }
  }

  if (!leader) {
    // The flight's model fields are immutable after publication, so the
    // deep check is safe without the lock.  An empty bijection means our
    // key equals a canonically *different* in-flight model — a hash
    // collision; such a request solves independently (and must not wait
    // on, or later erase, the other model's flight).
    const std::vector<NodeId> join_iso =
        flight->det
            ? (req.det ? canonical_isomorphism(*flight->det, *req.det)
                       : std::vector<NodeId>{})
            : (req.prob ? canonical_isomorphism(*flight->prob, *req.prob)
                        : std::vector<NodeId>{});
    if (join_iso.empty()) {
      resp.result = solve(req);
      return finish(std::move(resp), t0);
    }
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    resp.result = flight->result;
    // The leader's witnesses are in *its* submission's BAS indexing;
    // translate them into ours.
    if (resp.result.ok)
      remap_witnesses(flight->det ? flight->det->tree : flight->prob->tree,
                      req.det ? req.det->tree : req.prob->tree, join_iso,
                      &resp.result);
    resp.coalesced = true;
    return finish(std::move(resp), t0);
  }

  resp.result = solve(req);
  if (resp.result.ok) {
    try {
      cache_.insert(*key, req.det, req.prob, resp.result);
    } catch (...) {
      // A failed insert only loses caching; the flight below must still
      // complete or coalesced waiters would block forever.
    }
  }
  if (registered) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(*key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = resp.result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return finish(std::move(resp), t0);
}

}  // namespace atcd::service
