#pragma once
/// \file cache.hpp
/// Sharded LRU result cache for the solve service.
///
/// Entries are keyed by (canonical model hash, problem, bound, backend):
/// the canonical hash (service/canon.hpp) makes renamed / child-permuted
/// resubmissions of the same model collide on purpose, the bound is
/// normalized to 0 for the front problems (which ignore it), and the
/// backend component is the *requested* engine name ("" for planner
/// auto-selection) so an explicit engine override never serves another
/// engine's result.
///
/// Because a 64-bit canonical hash can collide, every entry retains a
/// copy of its model and lookups deep-check it with equal_canonical();
/// a mismatch is counted as a collision and served as a miss — a
/// colliding model can cost a cache miss but never a wrong answer.
///
/// The cache is mutex-striped into N independent shards (shard chosen by
/// key hash); each shard runs its own LRU list under its own lock with
/// 1/N of the global entry and byte budgets, so concurrent lookups from
/// the batch workers contend only when they land on the same shard.
///
/// ResultCache also implements engine::SolveCache, so it can be attached
/// to engine::BatchOptions::cache and transparently memoize
/// solve_one()/solve_all() calls.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/batch.hpp"
#include "obs/metrics.hpp"
#include "service/canon.hpp"

namespace atcd::service {

/// Cache key; see the file comment for the semantics of each component.
struct CacheKey {
  CanonHash model = 0;
  engine::Problem problem = engine::Problem::Cdpf;
  double bound = 0.0;    ///< 0 for front problems (they ignore it)
  std::string backend;   ///< requested engine name; "" = auto

  bool operator==(const CacheKey&) const = default;
};

/// Hash over all key components (model hash, problem, bound, backend).
std::size_t hash_of(const CacheKey& key);

/// Functor form of hash_of for unordered containers keyed by CacheKey.
struct CacheKeyHasher {
  std::size_t operator()(const CacheKey& key) const { return hash_of(key); }
};

/// Builds the key for an instance: computes the canonical model hash and
/// normalizes the bound.  Returns nullopt when the instance's model/
/// problem pairing is invalid, or when a bound-using problem carries a
/// non-finite bound (NaN never compares equal, so such keys could
/// neither be found again nor evicted) — either way the instance
/// bypasses the cache.
std::optional<CacheKey> make_key(const engine::Instance& in);

/// Rewrites the witness bitsets of \p result from model \p from's BAS
/// indexing to model \p to's, through the node bijection \p iso as
/// returned by canonical_isomorphism(from, to).  Costs and damages are
/// untouched (the models are isomorphic, so they transfer verbatim);
/// only which BAS index denotes which leaf changes.  No-op when the
/// bijection preserves BAS indices.
void remap_witnesses(const AttackTree& from, const AttackTree& to,
                     const std::vector<NodeId>& iso,
                     engine::SolveResult* result);

class ResultCache final : public engine::SolveCache {
 public:
  struct Config {
    std::size_t shards = 8;              ///< mutex stripes; >= 1
    std::size_t max_entries = 4096;      ///< whole-cache entry budget
    std::size_t max_bytes = 64u << 20;   ///< whole-cache byte budget
    /// Home for the cache's counters (atcd_result_cache_*).  Null = the
    /// cache keeps a private registry, so standalone instances stay
    /// isolated; the service injects its own so all layers share one.
    obs::Registry* metrics = nullptr;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< entries dropped by LRU/budget
    std::uint64_t collisions = 0;  ///< equal-key lookups failing the deep check
    std::size_t entries = 0;       ///< current resident entries
    std::size_t bytes = 0;         ///< current approximate resident bytes
  };

  ResultCache();  // default Config (GCC can't parse `= {}` here)
  explicit ResultCache(Config config);

  // -- Key-level API (the service computes the canonical hash once). ----

  /// Returns the cached result for \p key, deep-checking the entry's
  /// retained model against the probe model (exactly one of det/prob
  /// non-null, matching the key's problem).  Counts a hit, miss, or
  /// collision; pass count_stats=false for a re-check of a request whose
  /// first lookup already counted (each request contributes exactly one
  /// hit-or-miss to the counters).
  std::optional<engine::SolveResult> lookup(const CacheKey& key,
                                            const CdAt* det,
                                            const CdpAt* prob,
                                            bool count_stats = true);

  /// Inserts a successful result, retaining shared ownership of the model
  /// for the collision deep check.  An equal-key entry for a *different*
  /// model (a true hash collision) keeps the incumbent; an equal-key
  /// entry for the same model is refreshed.  Entries larger than a whole
  /// shard's byte budget are not stored.
  void insert(const CacheKey& key, std::shared_ptr<const CdAt> det,
              std::shared_ptr<const CdpAt> prob,
              const engine::SolveResult& result);

  // -- engine::SolveCache hook (computes the hash per call). -------------

  bool lookup(const engine::Instance& in, engine::SolveResult* out) override;
  void store(const engine::Instance& in,
             const engine::SolveResult& result) override;

  Stats stats() const;
  void clear();

  std::size_t shard_count() const { return shards_.size(); }
  /// Which shard a key lands on — exposed so tests can craft per-shard
  /// workloads.
  std::size_t shard_index(const CacheKey& key) const;

  /// One resident entry in snapshot form (src/persist/): the key, the
  /// retained model (exactly one of det/prob), and the cached result.
  /// Byte bookkeeping is not exported — insert() recomputes it.
  struct ExportedEntry {
    CacheKey key;
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
    std::shared_ptr<const engine::SolveResult> result;
  };

  /// Every resident entry, shard by shard, least-recently-used first
  /// within each shard — replaying the list through insert() into an
  /// empty cache reproduces both the contents and the LRU recency
  /// order (so a snapshot round-trips byte-identically), and into a
  /// smaller cache evicts exactly the least recent entries.
  std::vector<ExportedEntry> export_entries() const;

 private:
  /// Model and result are shared immutable so lookups can release the
  /// shard lock before the isomorphism deep check and witness remap.
  struct Entry {
    CacheKey key;
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
    std::shared_ptr<const engine::SolveResult> result;
    std::size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHasher>
        index;
    std::size_t bytes = 0;  ///< resident bytes; guarded by mu
  };

  /// Drops LRU-tail entries until the shard is within both budgets.
  /// Caller holds the shard lock.
  void evict_to_budget(Shard& shard);

  Config config_;
  std::size_t entry_budget_per_shard_;
  std::size_t byte_budget_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry-backed counters (see Config::metrics); resolved once at
  // construction so hot-path counting is a single sharded relaxed add.
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* collisions_ = nullptr;
};

}  // namespace atcd::service
