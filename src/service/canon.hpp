#pragma once
/// \file canon.hpp
/// Canonical model fingerprints for the solve service.
///
/// The six cost-damage problems are pure functions of (model, problem,
/// bound), so identical submissions can be served from a cache — but
/// "identical" must mean *semantically* identical, not textually: the
/// same model resubmitted with renamed nodes, reordered statements, or
/// permuted OR/AND child lists should hit the same cache entry.
///
/// canonical_hash() computes a structural fingerprint that is invariant
/// under node renaming and child reordering while remaining sensitive to
/// everything that affects the solution: node types, DAG sharing
/// structure, and all decorations (cost, damage, and — for CdpAt —
/// probability).  It is a Weisfeiler-Leman style color refinement: every
/// node starts with a color derived from its type and decorations, then
/// colors are repeatedly mixed with the sorted colors of children and
/// parents until the partition stabilizes; the model hash digests the
/// color multiset, the root color, and the model kind.
///
/// A 64-bit hash can collide, so cache entries are guarded by
/// equal_canonical(): an exact isomorphism test (color-guided backtracking
/// matching with a step budget) that never returns true for semantically
/// different models.  It may return false for isomorphic models with very
/// large automorphism groups once the budget is exhausted — that costs a
/// cache miss, never a wrong answer.

#include <cstdint>
#include <vector>

#include "core/cdat.hpp"

namespace atcd::service {

/// Structural fingerprint; equal for isomorphic decorated models.
using CanonHash = std::uint64_t;

/// Fingerprint of a bare (tree, decorations) triple.  \p prob selects the
/// probabilistic model kind: passing nullptr and passing a vector of all
/// ones hash differently on purpose (CdAt vs CdpAt solve different
/// problems).  The tree must be finalized.
CanonHash canonical_hash(const AttackTree& t, const std::vector<double>& cost,
                         const std::vector<double>& damage,
                         const std::vector<double>* prob = nullptr);

CanonHash canonical_hash(const CdAt& m);
CanonHash canonical_hash(const CdpAt& m);

/// Exact semantic equality: true iff there is a type-, decoration- and
/// edge-preserving bijection between the two models' nodes.  Sound (never
/// true for non-isomorphic models); complete up to an internal step
/// budget that only very large automorphism groups exhaust.
bool equal_canonical(const AttackTree& ta, const std::vector<double>& cost_a,
                     const std::vector<double>& damage_a,
                     const std::vector<double>* prob_a, const AttackTree& tb,
                     const std::vector<double>& cost_b,
                     const std::vector<double>& damage_b,
                     const std::vector<double>* prob_b);

bool equal_canonical(const CdAt& a, const CdAt& b);
bool equal_canonical(const CdpAt& a, const CdpAt& b);

/// The node bijection witnessing equal_canonical: map[v] is the b-node
/// matching a-node v (types, decorations, edges, and the root all
/// correspond).  Empty when the models are not (detectably) isomorphic.
/// Consumers use it to translate attack witnesses between the BAS
/// indexings of two isomorphic submissions of the same model.
std::vector<NodeId> canonical_isomorphism(const CdAt& a, const CdAt& b);
std::vector<NodeId> canonical_isomorphism(const CdpAt& a, const CdpAt& b);

}  // namespace atcd::service
