#pragma once
/// \file timing.hpp
/// The serving layer's latency clock, shared by SolveService and
/// Session so the two report micros the same way.

#include <chrono>

namespace atcd::service::detail {

using Clock = std::chrono::steady_clock;

/// Microseconds elapsed since \p t0.
inline double micros_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

}  // namespace atcd::service::detail
