#pragma once
/// \file service.hpp
/// SolveService: the request/response front door of the library.
///
/// A Request carries a problem, a bound, an optional explicit engine
/// name, and a model — either already parsed (shared ownership, so the
/// cache can retain it) or as raw text in the at/parser.hpp format.
/// handle() parses if needed, validates the model/problem pairing,
/// computes the canonical model hash once, consults the sharded result
/// cache, coalesces concurrent identical requests onto a single backend
/// invocation, and routes misses through the engine planner/registry.
///
/// The Response wraps the engine's SolveResult with serving metadata:
/// whether it was a cache hit, whether the call piggybacked on an
/// in-flight identical solve, the canonical hash, and the wall time
/// spent inside handle().
///
/// handle() is thread-safe; a SolveService is meant to be shared by all
/// connection/worker threads of a server (examples/atcd_server.cpp).

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "at/parser.hpp"
#include "engine/batch.hpp"
#include "obs/metrics.hpp"
#include "service/cache.hpp"
#include "service/subtree_cache.hpp"
#include "service/timing.hpp"

namespace atcd::service {

/// One solve request.  Exactly one model source must be set: a parsed
/// det/prob model (matching is_probabilistic(problem)) or model_text.
struct Request {
  engine::Problem problem = engine::Problem::Cdpf;
  double bound = 0.0;        ///< budget/threshold; ignored by the fronts
  std::string engine_name;   ///< explicit engine; "" = planner's choice
  std::string model_text;    ///< textual model, parsed when no model is set
  std::shared_ptr<const CdAt> det;
  std::shared_ptr<const CdpAt> prob;

  /// Builders for parsed models (the model is copied into shared
  /// ownership so the cache may retain it past the caller's scope).
  static Request of(engine::Problem p, const CdAt& m, double bound = 0.0,
                    std::string engine = {});
  static Request of(engine::Problem p, const CdpAt& m, double bound = 0.0,
                    std::string engine = {});
  static Request of_text(engine::Problem p, std::string text,
                         double bound = 0.0, std::string engine = {});
};

/// A solve result plus serving metadata.
struct Response {
  engine::Problem problem = engine::Problem::Cdpf;  ///< echoed from the request
  engine::SolveResult result;
  bool cache_hit = false;   ///< served from the result cache
  bool coalesced = false;   ///< waited on an identical in-flight solve
  CanonHash model_hash = 0; ///< 0 when the model could not be parsed
  double micros = 0.0;      ///< wall time inside handle()
  /// The model the request was served against (the parse result for text
  /// requests) — lets callers render witnesses without reparsing.
  std::shared_ptr<const CdAt> det;
  std::shared_ptr<const CdpAt> prob;
};

class SolveService {
 public:
  struct Options {
    engine::BatchOptions batch;  ///< registry/policy for the solve path
    ResultCache::Config cache;
    bool enable_cache = true;  ///< false: every request solves (benchmarks)
    /// The shared per-subtree front cache (service/subtree_cache.hpp):
    /// consulted by incremental-capable backends on the one-shot solve
    /// path and layered under every session's private memo, so distinct
    /// models sharing subtrees reuse each other's work.
    SubtreeCache::Config subtree;
    bool enable_subtree_cache = true;
    /// Instrument home for the whole serving stack: the service's own
    /// latency histogram plus both caches' counters land here (the
    /// cache/subtree Config::metrics fields are overwritten with this
    /// registry).  Null = the service owns a private registry, so
    /// standalone services keep isolated counters; the API dispatcher
    /// injects its registry to get one source of truth per stack.
    obs::Registry* metrics = nullptr;
  };

  SolveService();  // default Options (GCC can't parse `= {}` here)
  explicit SolveService(Options options);

  /// Serves one request.  Never throws: parse, validation, and solver
  /// failures come back as ok=false results with a message.
  Response handle(const Request& request);

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  SubtreeCache& subtree_cache() { return subtree_cache_; }
  const SubtreeCache& subtree_cache() const { return subtree_cache_; }
  const Options& options() const { return options_; }

  /// The stack's instrument registry (Options::metrics, or the private
  /// fallback); never null.
  obs::Registry& metrics() const { return *options_.metrics; }

  /// The shared subtree cache when enabled, else null — what the solve
  /// path and new sessions attach.
  SubtreeCache* shared_subtree_cache() {
    return options_.enable_subtree_cache ? &subtree_cache_ : nullptr;
  }

 private:
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    engine::SolveResult result;
    // The leader's model, for the coalescing collision deep check.
    std::shared_ptr<const CdAt> det;
    std::shared_ptr<const CdpAt> prob;
  };

  engine::SolveResult solve(const Request& request);
  /// Stamps the response's wall time and records it in the service's
  /// latency histogram — every handle() exit path funnels through here,
  /// so latency lands in the registry whether or not callers echo it.
  Response finish(Response resp, const detail::Clock::time_point& t0);

  /// Declared before options_: the Options-normalizing constructor step
  /// may point options_.metrics at this.
  std::unique_ptr<obs::Registry> owned_metrics_;
  Options options_;
  obs::Histogram* handle_micros_ = nullptr;
  ResultCache cache_;
  SubtreeCache subtree_cache_;
  std::mutex inflight_mu_;
  std::unordered_map<CacheKey, std::shared_ptr<InFlight>, CacheKeyHasher>
      inflight_;
};

}  // namespace atcd::service
