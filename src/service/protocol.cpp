#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "at/structure.hpp"

namespace atcd::service {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Error messages travel on one line; fold any embedded newlines.
std::string one_line(std::string s) {
  for (auto pos = s.find('\n'); pos != std::string::npos;
       pos = s.find('\n', pos))
    s.replace(pos, 1, "; ");
  return s;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string micros_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string error_block(const std::string& message) {
  return "ok=false\nerror=" + one_line(message) + "\ndone\n";
}

const AttackTree* tree_of(const Response& r) {
  if (r.det) return &r.det->tree;
  if (r.prob) return &r.prob->tree;
  return nullptr;
}

}  // namespace

std::optional<engine::Problem> parse_problem(const std::string& name) {
  using engine::Problem;
  for (Problem p : {Problem::Cdpf, Problem::Dgc, Problem::Cgd, Problem::Cedpf,
                    Problem::Edgc, Problem::Cged})
    if (name == engine::to_string(p)) return p;
  return std::nullopt;
}

std::string format_response(const Response& r) {
  if (!r.result.ok) return error_block(r.result.error);
  std::ostringstream out;
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(r.model_hash));
  out << "ok=true\n"
      << "engine=" << r.result.backend << '\n'
      << "cache=" << (r.cache_hit ? "hit" : r.coalesced ? "coalesced" : "miss")
      << '\n'
      << "hash=" << hash << '\n'
      << "micros=" << micros_str(r.micros) << '\n';
  const AttackTree* tree = tree_of(r);
  if (engine::is_front(r.problem)) {
    out << "kind=front\n"
        << "points=" << r.result.front.size() << '\n';
    for (std::size_t i = 0; i < r.result.front.size(); ++i) {
      const FrontPoint& p = r.result.front[i];
      out << "point." << i << '=' << num(p.value.cost) << ' '
          << num(p.value.damage) << ' '
          << (tree ? attack_to_string(*tree, p.witness) : p.witness.to_string())
          << '\n';
    }
  } else {
    const OptAttack& a = r.result.attack;
    out << "kind=attack\n"
        << "feasible=" << (a.feasible ? "true" : "false") << '\n';
    if (a.feasible)
      out << "cost=" << num(a.cost) << '\n'
          << "damage=" << num(a.damage) << '\n'
          << "attack="
          << (tree ? attack_to_string(*tree, a.witness) : a.witness.to_string())
          << '\n';
  }
  out << "done\n";
  return out.str();
}

std::string format_stats(const ResultCache::Stats& s) {
  std::ostringstream out;
  out << "ok=true\n"
      << "hits=" << s.hits << '\n'
      << "misses=" << s.misses << '\n'
      << "insertions=" << s.insertions << '\n'
      << "evictions=" << s.evictions << '\n'
      << "collisions=" << s.collisions << '\n'
      << "entries=" << s.entries << '\n'
      << "bytes=" << s.bytes << '\n'
      << "done\n";
  return out.str();
}

std::size_t serve(std::istream& in, std::ostream& out,
                  SolveService& service) {
  std::size_t handled = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = trim(raw);
    if (const auto h = line.find('#'); h != std::string::npos)
      line = trim(line.substr(0, h));
    if (line.empty()) continue;
    const std::vector<std::string> tok = split_ws(line);

    if (tok[0] == "quit" || tok[0] == "exit") break;

    if (tok[0] == "stats") {
      out << format_stats(service.cache().stats());
      out.flush();
      continue;
    }

    if (tok[0] != "solve") {
      out << error_block("unknown command '" + tok[0] +
                         "' (expected solve, stats, or quit)");
      out.flush();
      continue;
    }

    // -- solve header --------------------------------------------------
    // Header problems are collected, not reported yet: the client sends
    // a model block after every solve line, so the block must be
    // consumed either way or the stream desyncs (model lines would be
    // re-parsed as commands).
    std::string header_error;
    std::optional<engine::Problem> problem;
    double bound = 0.0;
    std::string engine_name;
    if (tok.size() < 2) {
      header_error = "solve requires a problem name "
                     "(cdpf|dgc|cgd|cedpf|edgc|cged)";
    } else if (!(problem = parse_problem(tok[1]))) {
      header_error = "unknown problem '" + tok[1] +
                     "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)";
    }
    for (std::size_t i = 2; i < tok.size() && header_error.empty(); ++i) {
      if (tok[i].rfind("bound=", 0) == 0) {
        const std::string val = tok[i].substr(6);
        std::size_t consumed = 0;
        try {
          bound = std::stod(val, &consumed);
        } catch (const std::exception&) {
          consumed = 0;
        }
        if (val.empty() || consumed != val.size())  // reject trailing junk
          header_error = "bad bound '" + tok[i] + "'";
        else if (!std::isfinite(bound))
          header_error = "bad bound '" + tok[i] + "' (must be finite)";
      } else if (tok[i].rfind("engine=", 0) == 0) {
        engine_name = tok[i].substr(7);
      } else {
        header_error = "unknown solve argument '" + tok[i] +
                       "' (expected bound=<num> or engine=<name>)";
      }
    }

    // -- model block (always consumed) ---------------------------------
    std::string model_text;
    bool terminated = false;
    while (std::getline(in, raw)) {
      // The terminator may carry a trailing comment ('#' starts a
      // comment everywhere in the protocol), so strip it before testing.
      std::string stripped = raw;
      if (const auto h = stripped.find('#'); h != std::string::npos)
        stripped.erase(h);
      if (trim(stripped) == "end") {
        terminated = true;
        break;
      }
      model_text += raw;
      model_text += '\n';
    }

    if (!header_error.empty()) {
      out << error_block(header_error);
      out.flush();
      continue;
    }
    if (!terminated) {
      out << error_block("unterminated model block (missing 'end' line)");
      out.flush();
      continue;
    }

    const Response r = service.handle(Request::of_text(
        *problem, std::move(model_text), bound, std::move(engine_name)));
    out << format_response(r);
    out.flush();
    ++handled;
  }
  return handled;
}

}  // namespace atcd::service
