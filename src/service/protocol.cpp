#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "analysis/portfolio.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/sweep.hpp"
#include "at/structure.hpp"
#include "service/timing.hpp"

namespace atcd::service {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Error messages travel on one line; fold any embedded newlines.
std::string one_line(std::string s) {
  for (auto pos = s.find('\n'); pos != std::string::npos;
       pos = s.find('\n', pos))
    s.replace(pos, 1, "; ");
  return s;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string micros_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string error_block(const std::string& message) {
  return "ok=false\nerror=" + one_line(message) + "\ndone\n";
}

const AttackTree* tree_of(const Response& r) {
  if (r.det) return &r.det->tree;
  if (r.prob) return &r.prob->tree;
  return nullptr;
}

}  // namespace

std::optional<engine::Problem> parse_problem(const std::string& name) {
  using engine::Problem;
  for (Problem p : {Problem::Cdpf, Problem::Dgc, Problem::Cgd, Problem::Cedpf,
                    Problem::Edgc, Problem::Cged})
    if (name == engine::to_string(p)) return p;
  return std::nullopt;
}

std::string format_response(const Response& r) {
  if (!r.result.ok) return error_block(r.result.error);
  std::ostringstream out;
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(r.model_hash));
  out << "ok=true\n"
      << "engine=" << r.result.backend << '\n'
      << "cache=" << (r.cache_hit ? "hit" : r.coalesced ? "coalesced" : "miss")
      << '\n'
      << "hash=" << hash << '\n'
      << "micros=" << micros_str(r.micros) << '\n';
  const AttackTree* tree = tree_of(r);
  if (engine::is_front(r.problem)) {
    out << "kind=front\n"
        << "points=" << r.result.front.size() << '\n';
    for (std::size_t i = 0; i < r.result.front.size(); ++i) {
      const FrontPoint& p = r.result.front[i];
      out << "point." << i << '=' << num(p.value.cost) << ' '
          << num(p.value.damage) << ' '
          << (tree ? attack_to_string(*tree, p.witness) : p.witness.to_string())
          << '\n';
    }
  } else {
    const OptAttack& a = r.result.attack;
    out << "kind=attack\n"
        << "feasible=" << (a.feasible ? "true" : "false") << '\n';
    if (a.feasible)
      out << "cost=" << num(a.cost) << '\n'
          << "damage=" << num(a.damage) << '\n'
          << "attack="
          << (tree ? attack_to_string(*tree, a.witness) : a.witness.to_string())
          << '\n';
  }
  out << "done\n";
  return out.str();
}

std::string format_stats_json(const ResultCache::Stats& s,
                              const SubtreeCache::Stats& sub,
                              std::size_t sessions) {
  const auto counters = [](const auto& c) {
    std::ostringstream out;
    out << "{\"hits\":" << c.hits << ",\"misses\":" << c.misses
        << ",\"insertions\":" << c.insertions << ",\"evictions\":"
        << c.evictions << ",\"collisions\":" << c.collisions
        << ",\"entries\":" << c.entries << ",\"bytes\":" << c.bytes << '}';
    return out.str();
  };
  std::ostringstream out;
  out << "ok=true\njson={\"cache\":" << counters(s) << ",\"subtree\":"
      << counters(sub) << ",\"sessions\":" << sessions << "}\ndone\n";
  return out.str();
}

std::string format_stats(const ResultCache::Stats& s,
                         const SubtreeCache::Stats& sub,
                         std::size_t sessions) {
  std::ostringstream out;
  out << "ok=true\n"
      << "hits=" << s.hits << '\n'
      << "misses=" << s.misses << '\n'
      << "insertions=" << s.insertions << '\n'
      << "evictions=" << s.evictions << '\n'
      << "collisions=" << s.collisions << '\n'
      << "entries=" << s.entries << '\n'
      << "bytes=" << s.bytes << '\n'
      << "subtree_hits=" << sub.hits << '\n'
      << "subtree_misses=" << sub.misses << '\n'
      << "subtree_insertions=" << sub.insertions << '\n'
      << "subtree_evictions=" << sub.evictions << '\n'
      << "subtree_collisions=" << sub.collisions << '\n'
      << "subtree_entries=" << sub.entries << '\n'
      << "subtree_bytes=" << sub.bytes << '\n'
      << "sessions=" << sessions << '\n'
      << "done\n";
  return out.str();
}

namespace {

bool parse_value(const std::string& tok, double* value) {
  std::size_t consumed = 0;
  try {
    *value = std::stod(tok, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == tok.size() && std::isfinite(*value);
}

/// Parsed `solve`/`open` header; `error` set when malformed.
struct SolveHeader {
  std::string error;
  std::optional<engine::Problem> problem;
  double bound = 0.0;
  std::string engine_name;
};

SolveHeader parse_solve_header(const std::vector<std::string>& tok) {
  SolveHeader h;
  if (tok.size() < 2) {
    h.error = tok[0] + " requires a problem name "
              "(cdpf|dgc|cgd|cedpf|edgc|cged)";
    return h;
  }
  if (!(h.problem = parse_problem(tok[1]))) {
    h.error = "unknown problem '" + tok[1] +
              "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)";
    return h;
  }
  for (std::size_t i = 2; i < tok.size(); ++i) {
    if (tok[i].rfind("bound=", 0) == 0) {
      // Strict numeric parse shared with the edit values: full
      // consumption (no trailing junk) and finite.
      if (!parse_value(tok[i].substr(6), &h.bound)) {
        h.error = "bad bound '" + tok[i] + "' (must be finite)";
        return h;
      }
    } else if (tok[i].rfind("engine=", 0) == 0) {
      h.engine_name = tok[i].substr(7);
    } else {
      h.error = "unknown " + tok[0] + " argument '" + tok[i] +
                "' (expected bound=<num> or engine=<name>)";
      return h;
    }
  }
  return h;
}

/// Reads lines up to the `end` terminator into \p model_text.  Returns
/// false when the stream ends first.
bool read_model_block(std::istream& in, std::string* model_text) {
  std::string raw;
  while (std::getline(in, raw)) {
    // The terminator may carry a trailing comment ('#' starts a comment
    // everywhere in the protocol), so strip it before testing.
    std::string stripped = raw;
    if (const auto h = stripped.find('#'); h != std::string::npos)
      stripped.erase(h);
    if (trim(stripped) == "end") return true;
    *model_text += raw;
    *model_text += '\n';
  }
  return false;
}

bool parse_session_id(const std::string& tok, std::uint64_t* id) {
  if (tok.empty()) return false;
  std::size_t consumed = 0;
  try {
    *id = std::stoull(tok, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == tok.size();
}

/// Applies one `edit` command (tokens after the session id).  The
/// replace-subtree model block has already been consumed into
/// \p subtree_text by the caller.
std::string apply_edit(Session& session, const std::vector<std::string>& tok,
                       const std::string& subtree_text) {
  const std::string& op = tok[2];
  if (op == "replace-subtree") {
    if (tok.size() != 4) return "edit replace-subtree takes: <node>";
    return session.replace_subtree(tok[3], subtree_text);
  }
  if (op == "toggle-defense") {
    if (tok.size() != 4) return "edit toggle-defense takes: <bas>";
    return session.toggle_defense(tok[3]);
  }
  if (op == "set-cost" || op == "set-prob" || op == "set-damage") {
    if (tok.size() != 5) return "edit " + op + " takes: <name> <value>";
    double value = 0.0;
    if (!parse_value(tok[4], &value))
      return "edit " + op + ": bad value '" + tok[4] + "'";
    if (op == "set-cost") return session.set_cost(tok[3], value);
    if (op == "set-prob") return session.set_prob(tok[3], value);
    return session.set_damage(tok[3], value);
  }
  return "unknown edit op '" + op +
         "' (expected set-cost, set-prob, set-damage, toggle-defense, or "
         "replace-subtree)";
}

/// Wraps an analysis table as a response block: the table rides along
/// verbatim, one row.<i>= line per table line, so clients get exactly
/// the byte-stable rendering the library produces.
std::string analysis_block(const char* kind, const std::string& table,
                           double micros) {
  std::ostringstream out;
  out << "ok=true\nkind=" << kind << "\nmicros=" << micros_str(micros)
      << '\n';
  std::size_t rows = 0, start = 0;
  std::ostringstream body;
  while (start < table.size()) {
    std::size_t nl = table.find('\n', start);
    if (nl == std::string::npos) nl = table.size();
    body << "row." << rows++ << '=' << table.substr(start, nl - start)
         << '\n';
    start = nl + 1;
  }
  out << "rows=" << rows << '\n' << body.str() << "done\n";
  return out.str();
}

/// Handles one `analyze` command (model block already consumed).  Sets
/// \p ran when an analysis actually executed (for the serve() counter).
std::string handle_analyze(const std::vector<std::string>& tok,
                           const std::string& model_text,
                           SolveService& service, bool* ran) {
  if (tok.size() < 3)
    return error_block(
        "analyze takes: (sweep|sensitivity|portfolio) <problem> ...");
  const std::string& what = tok[1];
  if (what != "sweep" && what != "sensitivity" && what != "portfolio")
    return error_block("unknown analysis '" + what +
                       "' (expected sweep, sensitivity, or portfolio)");
  const auto problem = parse_problem(tok[2]);
  if (!problem)
    return error_block("unknown problem '" + tok[2] +
                       "' (expected cdpf|dgc|cgd|cedpf|edgc|cged)");

  analysis::Options aopt;
  aopt.problem = *problem;
  aopt.engine_name.clear();
  aopt.batch = service.options().batch;
  aopt.shared = service.shared_subtree_cache();
  std::vector<analysis::Axis> axes;
  std::vector<defense::Countermeasure> catalogue;
  double defense_budget = std::numeric_limits<double>::infinity();
  bool have_bound = false;
  for (std::size_t i = 3; i < tok.size(); ++i) {
    std::string err;
    if (tok[i].rfind("axis=", 0) == 0) {
      const auto axis = analysis::parse_axis(tok[i].substr(5), &err);
      if (!axis) return error_block(err);
      axes.push_back(*axis);
    } else if (tok[i].rfind("defense=", 0) == 0) {
      const auto cm = analysis::parse_countermeasure(tok[i].substr(8), &err);
      if (!cm) return error_block(err);
      catalogue.push_back(*cm);
    } else if (tok[i].rfind("budget=", 0) == 0) {
      if (what != "portfolio")
        return error_block("budget= only applies to analyze portfolio");
      if (!parse_value(tok[i].substr(7), &defense_budget) ||
          defense_budget < 0.0)
        return error_block("bad budget '" + tok[i] + "' (must be >= 0)");
    } else if (tok[i].rfind("bound=", 0) == 0) {
      if (what == "sensitivity")
        return error_block("bound= does not apply to analyze sensitivity "
                           "(the front problems ignore it)");
      if (!parse_value(tok[i].substr(6), &aopt.bound))
        return error_block("bad bound '" + tok[i] + "' (must be finite)");
      have_bound = true;
    } else if (tok[i].rfind("step=", 0) == 0) {
      if (what != "sensitivity")
        return error_block("step= only applies to analyze sensitivity");
      if (!parse_value(tok[i].substr(5), &aopt.sensitivity_step) ||
          aopt.sensitivity_step <= 0.0)
        return error_block("bad step '" + tok[i] + "' (must be > 0)");
    } else if (tok[i].rfind("engine=", 0) == 0) {
      aopt.engine_name = tok[i].substr(7);
    } else {
      return error_block("unknown analyze argument '" + tok[i] + "'");
    }
  }
  if (what == "sweep" && axes.empty())
    return error_block("analyze sweep needs at least one axis=<spec>");
  if (what != "sweep" && !axes.empty())
    return error_block("axis= only applies to analyze sweep");
  if (what == "sensitivity" && !engine::is_front(*problem))
    return error_block("analyze sensitivity takes a front problem "
                       "(cdpf or cedpf)");
  if (what == "portfolio" &&
      (*problem != engine::Problem::Dgc && *problem != engine::Problem::Edgc))
    return error_block("analyze portfolio takes dgc or edgc");
  if (what == "portfolio" && catalogue.empty())
    return error_block(
        "analyze portfolio needs at least one defense=<name>:<cost>:<bas>");
  if (what != "portfolio" && !catalogue.empty())
    return error_block("defense= only applies to analyze portfolio");
  // An unbounded attacker is the portfolio default; the clamp to the
  // hardening scale happens inside portfolio().
  if (what == "portfolio" && !have_bound)
    aopt.bound = std::numeric_limits<double>::infinity();

  try {
    const auto t0 = detail::Clock::now();
    ParsedModel parsed = parse_model(model_text);
    std::string table;
    if (engine::is_probabilistic(*problem)) {
      const CdpAt m{std::move(parsed.tree), std::move(parsed.cost),
                    std::move(parsed.damage), std::move(parsed.prob)};
      m.validate();
      if (what == "sweep")
        table = analysis::to_table(analysis::sweep(m, axes, aopt));
      else if (what == "sensitivity")
        table = analysis::to_table(analysis::sensitivity(m, aopt));
      else
        table = analysis::to_table(
            analysis::portfolio(m, catalogue, defense_budget, aopt));
    } else {
      const CdAt m{std::move(parsed.tree), std::move(parsed.cost),
                   std::move(parsed.damage)};
      m.validate();
      if (what == "sweep")
        table = analysis::to_table(analysis::sweep(m, axes, aopt));
      else if (what == "sensitivity")
        table = analysis::to_table(analysis::sensitivity(m, aopt));
      else
        table = analysis::to_table(
            analysis::portfolio(m, catalogue, defense_budget, aopt));
    }
    *ran = true;
    return analysis_block(what.c_str(), table, detail::micros_since(t0));
  } catch (const std::exception& e) {
    return error_block(e.what());
  }
}

}  // namespace

std::size_t serve(std::istream& in, std::ostream& out, SolveService& service,
                  SessionManager* sessions) {
  SessionManager local_sessions;
  SessionManager& mgr = sessions ? *sessions : local_sessions;
  std::size_t handled = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = trim(raw);
    if (const auto h = line.find('#'); h != std::string::npos)
      line = trim(line.substr(0, h));
    if (line.empty()) continue;
    const std::vector<std::string> tok = split_ws(line);

    if (tok[0] == "quit" || tok[0] == "exit") break;

    if (tok[0] == "stats") {
      const bool json = tok.size() >= 2 && tok[1] == "--json";
      out << (json ? format_stats_json(service.cache().stats(),
                                       service.subtree_cache().stats(),
                                       mgr.size())
                   : format_stats(service.cache().stats(),
                                  service.subtree_cache().stats(),
                                  mgr.size()));
      out.flush();
      continue;
    }

    if (tok[0] == "analyze") {
      // Like solve/open, an analyze line is always followed by a model
      // block, consumed even when the header is bad (desync guard).
      std::string model_text;
      const bool terminated = read_model_block(in, &model_text);
      bool ran = false;
      out << (terminated
                  ? handle_analyze(tok, model_text, service, &ran)
                  : error_block(
                        "unterminated model block (missing 'end' line)"));
      out.flush();
      if (ran) ++handled;
      continue;
    }

    if (tok[0] == "solve" || tok[0] == "open") {
      // Header problems are collected, not reported yet: the client
      // sends a model block after every solve/open line, so the block
      // must be consumed either way or the stream desyncs (model lines
      // would be re-parsed as commands).
      SolveHeader header = parse_solve_header(tok);
      std::string model_text;
      const bool terminated = read_model_block(in, &model_text);
      if (!header.error.empty()) {
        out << error_block(header.error);
        out.flush();
        continue;
      }
      if (!terminated) {
        out << error_block("unterminated model block (missing 'end' line)");
        out.flush();
        continue;
      }
      if (tok[0] == "solve") {
        const Response r = service.handle(
            Request::of_text(*header.problem, std::move(model_text),
                             header.bound, std::move(header.engine_name)));
        out << format_response(r);
        out.flush();
        ++handled;
        continue;
      }
      // open: build an incremental session over the service's engine
      // configuration, sharing the service-wide subtree cache.
      Session::Options sopt;
      sopt.problem = *header.problem;
      sopt.bound = header.bound;
      sopt.engine_name = std::move(header.engine_name);
      sopt.batch = service.options().batch;
      sopt.shared = service.shared_subtree_cache();
      try {
        const std::uint64_t id = mgr.open(
            std::make_unique<Session>(model_text, std::move(sopt)));
        out << "ok=true\nsession=" << id << "\ndone\n";
      } catch (const std::exception& e) {
        out << error_block(e.what());
      }
      out.flush();
      continue;
    }

    if (tok[0] == "edit") {
      // A replace-subtree edit is followed by a model block, which must
      // be consumed even when the header or session id is bad — also
      // check the op's shifted position (a forgotten session id moves
      // it), or the block's model lines would be re-parsed as commands
      // and desync the stream.  Only the op positions are checked:
      // "replace-subtree" is a legal *node name*, so an operand match
      // (e.g. `edit 1 set-cost replace-subtree 3`) must not eat a block.
      const bool has_block =
          (tok.size() >= 2 && tok[1] == "replace-subtree") ||
          (tok.size() >= 3 && tok[2] == "replace-subtree");
      std::string subtree_text;
      bool terminated = true;
      if (has_block) terminated = read_model_block(in, &subtree_text);
      std::uint64_t id = 0;
      std::string err;
      if (tok.size() < 3 || !parse_session_id(tok[1], &id)) {
        err = "edit takes: <session-id> <op> ...";
      } else if (!terminated) {
        err = "unterminated model block (missing 'end' line)";
      } else if (const auto session = mgr.find(id); !session) {
        err = "no session " + tok[1];
      } else {
        err = apply_edit(*session, tok, subtree_text);
      }
      out << (err.empty() ? "ok=true\ndone\n" : error_block(err));
      out.flush();
      continue;
    }

    if (tok[0] == "resolve" || tok[0] == "close") {
      std::uint64_t id = 0;
      if (tok.size() != 2 || !parse_session_id(tok[1], &id)) {
        out << error_block(tok[0] + " takes: <session-id>");
        out.flush();
        continue;
      }
      if (tok[0] == "close") {
        out << (mgr.close(id) ? "ok=true\ndone\n"
                              : error_block("no session " + tok[1]));
        out.flush();
        continue;
      }
      const auto session = mgr.find(id);
      if (!session) {
        out << error_block("no session " + tok[1]);
        out.flush();
        continue;
      }
      out << format_response(session->resolve());
      out.flush();
      ++handled;
      continue;
    }

    out << error_block("unknown command '" + tok[0] +
                       "' (expected solve, open, edit, resolve, close, "
                       "analyze, stats, or quit)");
    out.flush();
  }
  return handled;
}

}  // namespace atcd::service
