#include "service/protocol.hpp"

#include <istream>
#include <ostream>

#include "api/line.hpp"

namespace atcd::service {

using api::detail::trim;

std::optional<engine::Problem> parse_problem(const std::string& name) {
  return api::parse_problem(name);
}

std::size_t serve(std::istream& in, std::ostream& out,
                  api::Dispatcher& dispatcher) {
  std::size_t handled = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = trim(raw);
    if (const auto h = line.find('#'); h != std::string::npos)
      line = trim(line.substr(0, h));
    if (line.empty()) continue;

    api::LineRequest lr = api::read_line_request(line, in);
    if (lr.code != api::ErrorCode::Ok) {
      out << api::format_line(api::error_response({}, lr.code, lr.error));
      out.flush();
      continue;
    }
    if (std::holds_alternative<api::ShutdownRequest>(lr.request.op)) break;

    const api::Response resp = dispatcher.dispatch(lr.request);
    handled += api::handled_increment(lr.request, resp);
    if (lr.stats_json && resp.code == api::ErrorCode::Ok) {
      out << api::format_stats_json_line(
          std::get<api::StatsPayload>(resp.payload));
    } else if (lr.metrics_json && resp.code == api::ErrorCode::Ok) {
      out << api::format_metrics_json_line(
          std::get<api::MetricsPayload>(resp.payload));
    } else {
      out << api::format_line(resp);
    }
    out.flush();
  }

  // Structured shutdown block on `quit` *and* on EOF — the session
  // never ends silently.
  api::Request shutdown;
  shutdown.op = api::ShutdownRequest{};
  api::Response resp = dispatcher.dispatch(shutdown);
  if (auto* p = std::get_if<api::ShutdownPayload>(&resp.payload))
    p->handled = handled;
  out << api::format_line(resp);
  out.flush();
  return handled;
}

std::size_t serve(std::istream& in, std::ostream& out, SolveService& service,
                  SessionManager* sessions) {
  api::Dispatcher dispatcher(service, sessions);
  return serve(in, out, dispatcher);
}

}  // namespace atcd::service
