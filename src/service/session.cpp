#include "service/session.hpp"

#include <unordered_set>
#include <utility>

#include "core/bottom_up_core.hpp"
#include "obs/trace.hpp"
#include "service/timing.hpp"

namespace atcd::service {
namespace {

double effective_cost(double base, bool defended,
                      const defense::HardeningSemantics& s) {
  if (!defended) return base;
  return base > 0.0 ? base * s.cost_factor : s.cost_factor;
}

}  // namespace

// ---------------------------------------------------------------------------
// The private NodeId-keyed memo: no hashing, no witness translation —
// NodeIds and the BAS indexing are stable between structural edits, so a
// valid node's front is returned verbatim.  One visitor per resolve;
// the session mutex is held for the whole solve, so no extra locking.
// ---------------------------------------------------------------------------

class Session::NodeMemoVisitor final : public atcd::detail::SubtreeVisitor {
 public:
  explicit NodeMemoVisitor(Session& s)
      : s_(s), nbits_(s.tree().bas_count()) {}

  // AoS protocol (pointer sweep): converts at the memo boundary.  Same
  // hit/miss decisions, values, and stats as the SoA fast paths below.
  bool lookup(NodeId v, std::vector<AttrTriple>* out) override {
    if (!s_.memo_valid_[v]) {
      ++s_.memo_stats_.misses;
      return false;
    }
    ++s_.memo_stats_.hits;
    view_to_aos_into(s_.memo_soa_[v].view(), nbits_, out);
    return true;
  }

  void store(NodeId v, const std::vector<AttrTriple>& front) override {
    s_.memo_soa_[v] = TripleBuf::from_aos(front, nbits_);
    s_.memo_valid_[v] = 1;
    ++s_.memo_stats_.stores;
  }

  // SoA fast paths (arena sweep): the memo IS SoA, so a hit hands out a
  // view of the stored columns and a store is four column copies —
  // no per-triple witness allocations, no pointer chasing.

  ViewResult lookup_view(NodeId v, TripleView* out) override {
    if (!s_.memo_valid_[v]) {
      ++s_.memo_stats_.misses;
      return ViewResult::kMiss;
    }
    ++s_.memo_stats_.hits;
    *out = s_.memo_soa_[v].view();
    return ViewResult::kHit;
  }

  void store_soa(NodeId v, const TripleView& f, std::size_t /*nbits*/,
                 std::vector<AttrTriple>* /*scratch*/) override {
    TripleBuf& b = s_.memo_soa_[v];
    b.set_wpa(static_cast<std::uint32_t>((nbits_ + 63) / 64));
    b.clear();
    if (f.n > 0) {
      b.cost.assign(f.cost, f.cost + f.n);
      b.damage.assign(f.damage, f.damage + f.n);
      b.act.assign(f.act, f.act + f.n);
      b.wit.assign(f.wit, f.wit + f.n * b.wpa());
    }
    s_.memo_valid_[v] = 1;
    ++s_.memo_stats_.stores;
  }

 private:
  Session& s_;
  std::size_t nbits_;
};

/// engine::SubtreeMemo facade over the private memo, chainable with the
/// shared SubtreeCache.  Guards the budget-class: the backend binds CgD
/// with kNoBudget but DgC with the bound — only the session's own class
/// may touch the memo (a mismatch would poison it).
class Session::MemoAdapter final : public engine::SubtreeMemo {
 public:
  explicit MemoAdapter(Session& s) : s_(s) {}

  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdAt& m,
                                                     double budget) override {
    return bind_checked(&m.tree == &s_.tree(), budget);
  }
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind(const CdpAt& m,
                                                     double budget) override {
    return bind_checked(&m.tree == &s_.tree(), budget);
  }

 private:
  std::unique_ptr<atcd::detail::SubtreeVisitor> bind_checked(bool same_model,
                                                             double budget) {
    if (!same_model) return nullptr;
    if (budget != s_.memo_budget()) return nullptr;
    return std::make_unique<NodeMemoVisitor>(s_);
  }

  Session& s_;
};

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

Session::Session(const std::string& model_text, Options options)
    : options_(std::move(options)),
      probabilistic_(engine::is_probabilistic(options_.problem)) {
  ParsedModel parsed = parse_model(model_text);
  init(std::move(parsed.tree), std::move(parsed.cost),
       std::move(parsed.damage), std::move(parsed.prob));
}

Session::Session(CdAt model, Options options)
    : options_(std::move(options)),
      probabilistic_(engine::is_probabilistic(options_.problem)) {
  if (probabilistic_)
    throw ModelError(std::string("session for ") +
                     engine::to_string(options_.problem) +
                     " needs a probabilistic model");
  model.validate();
  init(std::move(model.tree), std::move(model.cost), std::move(model.damage),
       {});
}

Session::Session(CdpAt model, Options options)
    : options_(std::move(options)),
      probabilistic_(engine::is_probabilistic(options_.problem)) {
  if (!probabilistic_)
    throw ModelError(std::string("session for ") +
                     engine::to_string(options_.problem) +
                     " needs a deterministic model");
  model.validate();
  init(std::move(model.tree), std::move(model.cost), std::move(model.damage),
       std::move(model.prob));
}

void Session::init(AttackTree tree, std::vector<double> cost,
                   std::vector<double> damage, std::vector<double> prob) {
  if (options_.metrics) {
    memo_hits_c_ = &options_.metrics->counter("atcd_session_memo_hits_total");
    memo_misses_c_ =
        &options_.metrics->counter("atcd_session_memo_misses_total");
    memo_stores_c_ =
        &options_.metrics->counter("atcd_session_memo_stores_total");
  }
  base_cost_ = cost;
  defended_.assign(tree.bas_count(), false);
  if (probabilistic_) {
    if (prob.empty()) prob.assign(tree.bas_count(), 1.0);
    base_prob_ = prob;
    prob_ = std::make_shared<CdpAt>(CdpAt{std::move(tree), std::move(cost),
                                          std::move(damage),
                                          std::move(prob)});
    prob_->validate();
  } else {
    det_ = std::make_shared<CdAt>(
        CdAt{std::move(tree), std::move(cost), std::move(damage)});
    det_->validate();
  }
  const std::size_t n = this->tree().node_count();
  memo_valid_.assign(n, 0);
  memo_soa_.assign(n, {});
  portion_valid_.assign(n, 0);
  fp_hash_.assign(n, 0);
  fp_valid_.assign(n, 0);
  hash_dirty_ = true;
}

// ---------------------------------------------------------------------------
// Edits.
// ---------------------------------------------------------------------------

void Session::ensure_unique() {
  // Copy-on-write keyed on an explicit handed_out_ flag, NOT on
  // use_count(): a use_count()==1 observation does not happen-after a
  // concurrent reader's final release (the reason shared_ptr::unique()
  // was deprecated), so mutating in place on it would race with that
  // reader's last reads.  The flag is set under this same mutex whenever
  // a snapshot pointer leaves the session, and cleared once we clone —
  // conservative (the holder may already be gone) but race-free.
  if (!handed_out_) return;
  if (det_) det_ = std::make_shared<CdAt>(*det_);
  if (prob_) prob_ = std::make_shared<CdpAt>(*prob_);
  handed_out_ = false;
}

void Session::mark_dirty(NodeId v) {
  // Walk every ancestor unconditionally.  Validity is NOT a safe
  // visited-marker for the upward walk: a shared-cache promotion can
  // re-validate an ancestor (an edit-undo brings back a front the
  // shared layer still holds) while deeper path nodes stay invalid, so
  // stopping at the first invalid node would strand stale valid
  // ancestors above it.
  dirty_seen_.assign(tree().node_count(), 0);
  std::vector<NodeId> stack{v};
  dirty_seen_[v] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    memo_valid_[u] = 0;
    portion_valid_[u] = 0;
    fp_valid_[u] = 0;
    for (NodeId p : tree().parents(u))
      if (!dirty_seen_[p]) {
        dirty_seen_[p] = 1;
        stack.push_back(p);
      }
  }
}

double Session::memo_budget() const {
  switch (options_.problem) {
    case engine::Problem::Dgc:
    case engine::Problem::Edgc:
      return options_.bound;  // budget-pruned sweep
    default:
      return kNoBudget;  // fronts, and CgD/CgED via the full front
  }
}

std::string Session::set_cost(const std::string& bas, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto v = tree().find(bas);
  if (!v || !tree().is_bas(*v))
    return "set-cost: no BAS named '" + bas + "'";
  if (!(value >= 0.0)) return "set-cost: cost must be >= 0";
  ensure_unique();
  const std::uint32_t i = tree().bas_index(*v);
  base_cost_[i] = value;
  (det_ ? det_->cost : prob_->cost)[i] =
      effective_cost(value, defended_[i], options_.hardening);
  mark_dirty(*v);
  hash_dirty_ = true;
  ++edits_;
  return {};
}

std::string Session::set_prob(const std::string& bas, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!probabilistic_)
    return "set-prob: session problem " +
           std::string(engine::to_string(options_.problem)) +
           " is deterministic";
  const auto v = tree().find(bas);
  if (!v || !tree().is_bas(*v))
    return "set-prob: no BAS named '" + bas + "'";
  if (!(value >= 0.0 && value <= 1.0))
    return "set-prob: probability must lie in [0,1]";
  ensure_unique();
  const std::uint32_t i = tree().bas_index(*v);
  base_prob_[i] = value;
  prob_->prob[i] =
      defended_[i] ? value * options_.hardening.prob_factor : value;
  mark_dirty(*v);
  hash_dirty_ = true;
  ++edits_;
  return {};
}

std::string Session::set_damage(const std::string& node, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto v = tree().find(node);
  if (!v) return "set-damage: no node named '" + node + "'";
  if (!(value >= 0.0)) return "set-damage: damage must be >= 0";
  ensure_unique();
  (det_ ? det_->damage : prob_->damage)[*v] = value;
  mark_dirty(*v);
  hash_dirty_ = true;
  ++edits_;
  return {};
}

std::string Session::toggle_defense(const std::string& bas) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto v = tree().find(bas);
  if (!v || !tree().is_bas(*v))
    return "toggle-defense: no BAS named '" + bas + "'";
  ensure_unique();
  const std::uint32_t i = tree().bas_index(*v);
  defended_[i] = !defended_[i];
  (det_ ? det_->cost : prob_->cost)[i] =
      effective_cost(base_cost_[i], defended_[i], options_.hardening);
  if (probabilistic_)
    prob_->prob[i] = defended_[i]
                         ? base_prob_[i] * options_.hardening.prob_factor
                         : base_prob_[i];
  mark_dirty(*v);
  hash_dirty_ = true;
  ++edits_;
  return {};
}

std::string Session::replace_subtree(const std::string& node,
                                     const std::string& subtree_text) {
  std::lock_guard<std::mutex> lock(mu_);
  const AttackTree& old = tree();
  const auto target_opt = old.find(node);
  if (!target_opt) return "replace-subtree: no node named '" + node + "'";
  const NodeId target = *target_opt;

  ParsedModel sub;
  try {
    sub = parse_model(subtree_text);
  } catch (const std::exception& e) {
    return std::string("replace-subtree: bad subtree model: ") + e.what();
  }

  // The removed region: everything reachable from the target.  Every
  // removed node other than the target must be reachable *only* through
  // the region, or splicing it out would break an outside parent —
  // automatic on treelike models, checked explicitly for DAGs.
  std::vector<bool> removed(old.node_count(), false);
  std::vector<NodeId> stack{target};
  removed[target] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId c : old.children(v))
      if (!removed[c]) {
        removed[c] = true;
        stack.push_back(c);
      }
  }
  for (NodeId v = 0; v < static_cast<NodeId>(old.node_count()); ++v) {
    if (!removed[v] || v == target) continue;
    for (NodeId p : old.parents(v))
      if (!removed[p])
        return "replace-subtree: node '" + old.name(v) + "' below '" + node +
               "' is shared with the rest of the model; only "
               "exclusively-owned subtrees can be replaced";
  }

  // Surviving names must not collide with the new subtree's.
  std::unordered_set<std::string> kept;
  for (NodeId v = 0; v < static_cast<NodeId>(old.node_count()); ++v)
    if (!removed[v]) kept.insert(old.name(v));
  for (NodeId v = 0; v < static_cast<NodeId>(sub.tree.node_count()); ++v)
    if (kept.count(sub.tree.name(v)))
      return "replace-subtree: name '" + sub.tree.name(v) +
             "' already exists outside the replaced subtree";

  // Build the spliced tree: the new subtree first (its topological order
  // is children-first), then the survivors, re-pointing references to
  // the target at the new subtree's root.  Everything goes into
  // temporaries and is validated before any member changes.
  const std::vector<double>& old_damage = det_ ? det_->damage : prob_->damage;
  AttackTree nt;
  std::vector<double> n_base_cost, n_base_prob, n_damage;
  std::vector<bool> n_defended;
  std::vector<NodeId> sub2new(sub.tree.node_count(), kNoNode);
  std::vector<NodeId> old2new(old.node_count(), kNoNode);
  try {
    for (NodeId v : sub.tree.topological_order()) {
      const auto& n = sub.tree.node(v);
      if (n.type == NodeType::BAS) {
        sub2new[v] = nt.add_bas(n.name);
        n_base_cost.push_back(sub.cost[n.bas_index]);
        n_base_prob.push_back(sub.prob[n.bas_index]);
        n_defended.push_back(false);
      } else {
        std::vector<NodeId> cs;
        cs.reserve(n.children.size());
        for (NodeId c : n.children) cs.push_back(sub2new[c]);
        sub2new[v] = nt.add_gate(n.type, n.name, std::move(cs));
      }
      n_damage.push_back(sub.damage[v]);
    }
    for (NodeId v : old.topological_order()) {
      if (removed[v]) continue;
      const auto& n = old.node(v);
      if (n.type == NodeType::BAS) {
        old2new[v] = nt.add_bas(n.name);
        n_base_cost.push_back(base_cost_[n.bas_index]);
        n_base_prob.push_back(probabilistic_ ? base_prob_[n.bas_index] : 1.0);
        n_defended.push_back(defended_[n.bas_index]);
      } else {
        std::vector<NodeId> cs;
        cs.reserve(n.children.size());
        for (NodeId c : n.children)
          cs.push_back(c == target ? sub2new[sub.tree.root()] : old2new[c]);
        old2new[v] = nt.add_gate(n.type, n.name, std::move(cs));
      }
      n_damage.push_back(old_damage[v]);
    }
    nt.set_root(target == old.root() ? sub2new[sub.tree.root()]
                                     : old2new[old.root()]);
    nt.finalize();

    std::vector<double> n_cost(n_base_cost.size());
    std::vector<double> n_prob(n_base_prob.size());
    for (std::size_t i = 0; i < n_cost.size(); ++i) {
      n_cost[i] =
          effective_cost(n_base_cost[i], n_defended[i], options_.hardening);
      n_prob[i] = n_defended[i]
                      ? n_base_prob[i] * options_.hardening.prob_factor
                      : n_base_prob[i];
    }
    if (probabilistic_) {
      auto m = std::make_shared<CdpAt>(CdpAt{std::move(nt), std::move(n_cost),
                                             std::move(n_damage),
                                             std::move(n_prob)});
      m->validate();
      prob_ = std::move(m);
    } else {
      auto m = std::make_shared<CdAt>(
          CdAt{std::move(nt), std::move(n_cost), std::move(n_damage)});
      m->validate();
      det_ = std::move(m);
    }
  } catch (const std::exception& e) {
    return std::string("replace-subtree: ") + e.what();
  }

  base_cost_ = std::move(n_base_cost);
  base_prob_ = probabilistic_ ? std::move(n_base_prob)
                              : std::vector<double>{};
  defended_ = std::move(n_defended);
  // The freshly built model is not shared with anyone yet; clearing the
  // flag spares the next edit a pointless whole-model clone.
  handed_out_ = false;
  // NodeIds and BAS indices moved: the private memo resets wholesale.
  // Attach a shared SubtreeCache (Options::shared) to re-cover unchanged
  // subtrees by canonical hash instead.
  const std::size_t n = tree().node_count();
  memo_valid_.assign(n, 0);
  memo_soa_.assign(n, {});
  portion_valid_.assign(n, 0);
  fp_hash_.assign(n, 0);
  fp_valid_.assign(n, 0);
  hash_dirty_ = true;
  ++edits_;
  return {};
}

// ---------------------------------------------------------------------------
// Resolve.
// ---------------------------------------------------------------------------

Response Session::resolve() {
  std::lock_guard<std::mutex> lock(mu_);
  return resolve_locked();
}

Response Session::resolve_locked() {
  const auto t0 = detail::Clock::now();
  obs::SpanScope span("session.resolve");
  Response resp;
  resp.problem = options_.problem;
  if (options_.snapshots) {
    resp.det = det_;
    resp.prob = prob_;
    handed_out_ = true;
  }
  if (hash_dirty_) {
    // Treelike models rehash only the edit-dirtied root-paths (the same
    // O(depth) set the front memo recomputes); the value is identical to
    // model_fingerprint()'s.
    if (tree().is_treelike())
      hash_ = det_ ? treelike_fingerprint_update(det_->tree, det_->cost,
                                                 det_->damage, nullptr,
                                                 &fp_hash_, &fp_valid_)
                   : treelike_fingerprint_update(prob_->tree, prob_->cost,
                                                 prob_->damage, &prob_->prob,
                                                 &fp_hash_, &fp_valid_);
    else
      hash_ = det_ ? model_fingerprint(*det_) : model_fingerprint(*prob_);
    hash_dirty_ = false;
  }
  resp.model_hash = hash_;

  engine::Instance in;
  in.problem = options_.problem;
  in.det = det_.get();
  in.prob = prob_.get();
  in.bound = options_.bound;
  in.backend = options_.engine_name;

  engine::BatchOptions opt = options_.batch;
  opt.cache = nullptr;  // the per-subtree memo chain subsumes it here
  MemoAdapter private_memo(*this);
  ChainedSubtreeMemo chain(&private_memo, options_.shared);
  opt.subtree = &chain;

  const MemoStats before = memo_stats_;
  resp.result = engine::solve_one(in, opt);
  if (options_.shared && !tree().is_treelike()) populate_shared_portions();
  ++resolves_;
  // Mirror this resolve's memo activity into the registry and the
  // active trace (if any) as one batched delta per counter.
  const std::uint64_t d_hits = memo_stats_.hits - before.hits;
  const std::uint64_t d_misses = memo_stats_.misses - before.misses;
  const std::uint64_t d_stores = memo_stats_.stores - before.stores;
  if (memo_hits_c_) {
    if (d_hits) memo_hits_c_->add(d_hits);
    if (d_misses) memo_misses_c_->add(d_misses);
    if (d_stores) memo_stores_c_->add(d_stores);
  }
  obs::trace_fact("session_memo_hits", d_hits);
  obs::trace_fact("session_memo_misses", d_misses);
  obs::trace_fact("session_memo_stores", d_stores);
  resp.micros = detail::micros_since(t0);
  return resp;
}

void Session::populate_shared_portions() {
  const AttackTree& t = tree();
  const std::size_t n = t.node_count();
  // excl[v]: every strict descendant of v has exactly one parent, so the
  // region below v is a tree owned exclusively through v — exactly the
  // precondition replace_subtree checks, and the shape whose bottom-up
  // front is a pure function of the region (cacheable across models).
  std::vector<char> excl(n, 0);
  std::vector<std::size_t> leaves(n, 0);
  for (NodeId v : t.topological_order()) {
    if (t.is_bas(v)) {
      excl[v] = 1;
      leaves[v] = 1;
      continue;
    }
    excl[v] = 1;
    for (NodeId c : t.children(v)) {
      if (!excl[c] || t.parents(c).size() != 1) excl[v] = 0;
      leaves[v] += leaves[c];  // only read when excl[v] (else over-counts)
    }
  }
  // A portion whose front blows up would stall the resolve; the sweep is
  // capped at a leaf count far beyond any portion worth sharing.
  constexpr std::size_t kMaxPortionLeaves = 128;
  const std::vector<double>& host_cost = det_ ? det_->cost : prob_->cost;
  const std::vector<double>& host_damage =
      det_ ? det_->damage : prob_->damage;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (!excl[v] || t.is_bas(v)) continue;
    if (leaves[v] < 2 || leaves[v] > kMaxPortionLeaves) continue;
    // Maximality: a single-parent node inside an exclusive parent's
    // portion is covered by that parent's sweep — but only when the
    // parent is itself sweepable (within the leaf cap); under an
    // over-cap parent, this node is the largest portion that actually
    // gets cached.  (A multi-parent node is never inside a portion:
    // its parents all fail the exclusivity test.)
    if (t.parents(v).size() == 1 && excl[t.parents(v)[0]] &&
        leaves[t.parents(v)[0]] <= kMaxPortionLeaves)
      continue;
    // Unedited since the last sweep: nothing new to offer (mark_dirty
    // clears this along every edited root-path).
    if (portion_valid_[v]) continue;
    try {
      // Extract the portion as a standalone model; the cache keys
      // canonically, so the extracted ids don't matter.
      std::vector<char> in_region(n, 0);
      std::vector<NodeId> stack{v};
      in_region[v] = 1;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (NodeId c : t.children(u))
          if (!in_region[c]) {
            in_region[c] = 1;
            stack.push_back(c);
          }
      }
      AttackTree sub;
      std::vector<double> s_cost, s_damage, s_prob;
      std::vector<NodeId> map(n, kNoNode);
      for (NodeId u : t.topological_order()) {
        if (!in_region[u]) continue;
        if (t.is_bas(u)) {
          map[u] = sub.add_bas(t.name(u));
          s_cost.push_back(host_cost[t.bas_index(u)]);
          s_prob.push_back(probabilistic_ ? prob_->prob[t.bas_index(u)]
                                          : 1.0);
        } else {
          std::vector<NodeId> cs;
          cs.reserve(t.children(u).size());
          for (NodeId c : t.children(u)) cs.push_back(map[c]);
          map[u] = sub.add_gate(t.type(u), t.name(u), std::move(cs));
        }
        s_damage.push_back(host_damage[u]);
      }
      sub.set_root(map[v]);
      sub.finalize();
      const auto vis =
          options_.shared->bind(sub, s_cost, s_damage,
                                probabilistic_ ? &s_prob : nullptr,
                                memo_budget());
      if (!vis) continue;
      // A cached root front (e.g. another session populated it) means
      // the whole portion is covered — skip the sweep.
      std::vector<AttrTriple> cached;
      if (!vis->lookup(map[v], &cached)) {
        atcd::detail::BottomUpOptions bopt;
        bopt.budget = memo_budget();
        bopt.visitor = vis.get();
        atcd::detail::bottom_up_root_front(sub, s_cost, s_damage, s_prob,
                                           bopt);
      }
      portion_valid_[v] = 1;
    } catch (const std::exception&) {
      // Population is best-effort; a portion the sweep rejects (or that
      // exceeds a backend guard) just stays uncached.
    }
  }
}

std::uint64_t Session::edit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edits_;
}

std::uint64_t Session::resolve_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolves_;
}

std::shared_ptr<const CdAt> Session::snapshot_det() {
  std::lock_guard<std::mutex> lock(mu_);
  if (det_) handed_out_ = true;
  return det_;
}

std::shared_ptr<const CdpAt> Session::snapshot_prob() {
  std::lock_guard<std::mutex> lock(mu_);
  if (prob_) handed_out_ = true;
  return prob_;
}

Session::MemoStats Session::memo_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_stats_;
}

// ---------------------------------------------------------------------------
// SessionManager.
// ---------------------------------------------------------------------------

std::uint64_t SessionManager::open(std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  sessions_.emplace(id, std::shared_ptr<Session>(std::move(session)));
  return id;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::close(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(id) != 0;
}

std::size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace atcd::service
